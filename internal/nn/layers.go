package nn

import (
	"math/rand"

	"repro/internal/tensor"
)

// Dense is a fully connected layer y = act(x @ W + b).
type Dense struct {
	W, B *Param
	Act  func(t *Tape, n *Node) *Node // nil = identity
}

// NewDense creates a dense layer with Xavier init.
func NewDense(name string, in, out int, act func(*Tape, *Node) *Node, rng *rand.Rand) *Dense {
	return &Dense{
		W:   NewParam(name+".W", in, out, rng),
		B:   NewParamZero(name+".b", 1, out),
		Act: act,
	}
}

// Forward applies the layer on the tape.
func (d *Dense) Forward(t *Tape, x *Node) *Node {
	h := t.AddBias(t.MatMul(x, t.Use(d.W)), t.Use(d.B))
	if d.Act != nil {
		h = d.Act(t, h)
	}
	return h
}

// Params returns the trainable parameters.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// ActReLU, ActTanh and ActSigmoid are activation adapters for Dense.
func ActReLU(t *Tape, n *Node) *Node    { return t.ReLU(n) }
func ActTanh(t *Tape, n *Node) *Node    { return t.Tanh(n) }
func ActSigmoid(t *Tape, n *Node) *Node { return t.Sigmoid(n) }

// MLP is a stack of dense layers.
type MLP struct {
	Layers []*Dense
}

// NewMLP builds dims[0] -> dims[1] -> ... with act on all but the last
// layer.
func NewMLP(name string, dims []int, act func(*Tape, *Node) *Node, rng *rand.Rand) *MLP {
	m := &MLP{}
	for i := 0; i+1 < len(dims); i++ {
		var a func(*Tape, *Node) *Node
		if i+2 < len(dims) {
			a = act
		}
		m.Layers = append(m.Layers, NewDense(name, dims[i], dims[i+1], a, rng))
	}
	return m
}

// Forward applies the stack.
func (m *MLP) Forward(t *Tape, x *Node) *Node {
	for _, l := range m.Layers {
		x = l.Forward(t, x)
	}
	return x
}

// Params returns all layer parameters.
func (m *MLP) Params() []*Param {
	var ps []*Param
	for _, l := range m.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// LSTMCell is a standard LSTM cell used by the LSTM AGGREGATE operator and
// the Evolving GNN's sequence model. Gates are packed [i f g o].
type LSTMCell struct {
	Wx, Wh, B *Param
	Hidden    int
}

// NewLSTMCell creates a cell mapping input size in to hidden size h.
func NewLSTMCell(name string, in, h int, rng *rand.Rand) *LSTMCell {
	return &LSTMCell{
		Wx:     NewParam(name+".Wx", in, 4*h, rng),
		Wh:     NewParam(name+".Wh", h, 4*h, rng),
		B:      NewParamZero(name+".b", 1, 4*h),
		Hidden: h,
	}
}

// Step advances the cell one timestep: x is B x in, hPrev and cPrev are
// B x h (nil means zeros). It returns the new hidden and cell states.
func (l *LSTMCell) Step(t *Tape, x, hPrev, cPrev *Node) (hNext, cNext *Node) {
	b := x.Val.Rows
	if hPrev == nil {
		hPrev = t.Input(tensor.New(b, l.Hidden))
	}
	if cPrev == nil {
		cPrev = t.Input(tensor.New(b, l.Hidden))
	}
	z := t.AddBias(t.Add(t.MatMul(x, t.Use(l.Wx)), t.MatMul(hPrev, t.Use(l.Wh))), t.Use(l.B))
	h := l.Hidden
	i := t.Sigmoid(t.SliceCols(z, 0, h))
	f := t.Sigmoid(t.SliceCols(z, h, 2*h))
	g := t.Tanh(t.SliceCols(z, 2*h, 3*h))
	o := t.Sigmoid(t.SliceCols(z, 3*h, 4*h))
	cNext = t.Add(t.Mul(f, cPrev), t.Mul(i, g))
	hNext = t.Mul(o, t.Tanh(cNext))
	return hNext, cNext
}

// Params returns the trainable parameters.
func (l *LSTMCell) Params() []*Param { return []*Param{l.Wx, l.Wh, l.B} }

// SelfAttention is the structured self-attention of Lin et al. used by
// GATNE's edge-type attention: scores = softmax(w2 @ tanh(W1 @ Xᵀ)),
// output = scores @ X.
type SelfAttention struct {
	W1, W2 *Param
	DA     int
}

// NewSelfAttention creates an attention head over d-dimensional inputs with
// da attention units.
func NewSelfAttention(name string, d, da int, rng *rand.Rand) *SelfAttention {
	return &SelfAttention{
		W1: NewParam(name+".W1", d, da, rng),
		W2: NewParam(name+".W2", da, 1, rng),
		DA: da,
	}
}

// Forward computes attention weights over the K rows of x (K x d) and
// returns (weights K x 1 via softmax over rows, pooled 1 x d).
func (a *SelfAttention) Forward(t *Tape, x *Node) (weights, pooled *Node) {
	// scores: K x 1
	scores := t.MatMul(t.Tanh(t.MatMul(x, t.Use(a.W1))), t.Use(a.W2))
	// Softmax over the K rows: transpose trick via reshape — scores is K x 1
	// so softmax must run down the column. Use exp/sum for a column softmax.
	e := t.Exp(scores)
	total := t.SumAll(e)
	// weights_i = e_i / total: implement as e * (1/total) via division node.
	weights = t.DivScalarNode(e, total)
	// pooled = weightsᵀ @ x : 1 x d
	pooled = t.MatMul(t.TransposeNode(weights), x)
	return weights, pooled
}

// Params returns the trainable parameters.
func (a *SelfAttention) Params() []*Param { return []*Param{a.W1, a.W2} }

// TransposeNode transposes a node's matrix differentiably.
func (t *Tape) TransposeNode(a *Node) *Node {
	val := a.Val.Transpose()
	out := t.node(val, a.needs, nil)
	if a.needs {
		out.back = func() {
			gt := out.grad.Transpose()
			a.grad.AddInPlace(gt)
		}
	}
	return out
}

// DivScalarNode divides every element of a by the 1x1 scalar node s.
func (t *Tape) DivScalarNode(a, s *Node) *Node {
	sv := s.Val.Data[0]
	val := a.Val.Clone()
	val.ScaleInPlace(1 / sv)
	needs := a.needs || s.needs
	out := t.node(val, needs, nil)
	if needs {
		out.back = func() {
			if a.needs {
				a.grad.Axpy(1/sv, out.grad)
			}
			if s.needs {
				g := 0.0
				for i, ov := range out.grad.Data {
					g -= ov * a.Val.Data[i] / (sv * sv)
				}
				s.grad.Data[0] += g
			}
		}
	}
	return out
}
