package nn

import (
	"math"

	"repro/internal/tensor"
)

// Losses. Each returns a scalar (1x1) node suitable for Tape.Backward.

// MSE returns mean((pred - target)²) where target is a constant.
func (t *Tape) MSE(pred *Node, target *tensor.Matrix) *Node {
	diff := t.Sub(pred, t.Input(target))
	return t.MeanAll(t.Mul(diff, diff))
}

// BCEWithLogits computes the numerically stable mean binary cross entropy
// between logits x and constant {0,1} labels y:
// mean(max(x,0) - x*y + log(1+e^{-|x|})).
func (t *Tape) BCEWithLogits(logits *Node, labels *tensor.Matrix) *Node {
	if logits.Val.Rows != labels.Rows || logits.Val.Cols != labels.Cols {
		panic("nn: BCEWithLogits shape mismatch")
	}
	n := float64(len(labels.Data))
	val := tensor.New(1, 1)
	for i, x := range logits.Val.Data {
		y := labels.Data[i]
		val.Data[0] += math.Max(x, 0) - x*y + math.Log1p(math.Exp(-math.Abs(x)))
	}
	val.Data[0] /= n
	out := t.node(val, logits.needs, nil)
	if logits.needs {
		out.back = func() {
			g := out.grad.Data[0] / n
			for i, x := range logits.Val.Data {
				logits.grad.Data[i] += g * (sigmoid(x) - labels.Data[i])
			}
		}
	}
	return out
}

// SoftmaxCE computes the mean cross entropy of row-wise softmax(logits)
// against integer class labels.
func (t *Tape) SoftmaxCE(logits *Node, labels []int) *Node {
	rows := logits.Val.Rows
	if len(labels) != rows {
		panic("nn: SoftmaxCE label count mismatch")
	}
	probs := tensor.New(rows, logits.Val.Cols)
	val := tensor.New(1, 1)
	for i := 0; i < rows; i++ {
		softmaxRow(logits.Val.Row(i), probs.Row(i))
		p := probs.At(i, labels[i])
		val.Data[0] -= math.Log(math.Max(p, 1e-12))
	}
	val.Data[0] /= float64(rows)
	out := t.node(val, logits.needs, nil)
	if logits.needs {
		out.back = func() {
			g := out.grad.Data[0] / float64(rows)
			for i := 0; i < rows; i++ {
				lrow := logits.grad.Row(i)
				prow := probs.Row(i)
				for j := range lrow {
					d := prow[j]
					if j == labels[i] {
						d -= 1
					}
					lrow[j] += g * d
				}
			}
		}
	}
	return out
}

// NegSamplingLoss is the skip-gram negative sampling objective over
// positive and negative score nodes (each R x 1 logits):
// -mean(log σ(pos)) - mean(log σ(-neg)).
func (t *Tape) NegSamplingLoss(pos, neg *Node) *Node {
	onesP := tensor.New(pos.Val.Rows, 1)
	onesP.Fill(1)
	zerosN := tensor.New(neg.Val.Rows, 1)
	lp := t.BCEWithLogits(pos, onesP)
	ln := t.BCEWithLogits(neg, zerosN)
	return t.Add(lp, ln)
}

// L2Penalty returns 0.5 * λ * Σ‖p‖² over the given parameters as a scalar
// node (the Ω(Θ) regularizer in the AHEP loss, Equation 2).
func (t *Tape) L2Penalty(lambda float64, params ...*Param) *Node {
	val := tensor.New(1, 1)
	for _, p := range params {
		for _, v := range p.Val.Data {
			val.Data[0] += 0.5 * lambda * v * v
		}
	}
	out := t.node(val, true, nil)
	out.back = func() {
		g := out.grad.Data[0]
		for _, p := range params {
			for i, v := range p.Val.Data {
				p.Grad.Data[i] += g * lambda * v
			}
		}
	}
	return out
}

// AddScalars sums scalar nodes (loss composition).
func (t *Tape) AddScalars(ns ...*Node) *Node {
	out := ns[0]
	for _, n := range ns[1:] {
		out = t.Add(out, n)
	}
	return out
}
