package nn

import (
	"math"

	"repro/internal/tensor"
)

// This file defines the differentiable operations recorded on the tape.
// Every op computes its value eagerly and registers a closure that
// accumulates gradients into its inputs when the tape unwinds.

// MatMul returns a @ b.
func (t *Tape) MatMul(a, b *Node) *Node {
	val := tensor.MatMul(a.Val, b.Val)
	needs := a.needs || b.needs
	out := t.node(val, needs, nil)
	if needs {
		out.back = func() {
			if a.needs {
				a.grad.AddInPlace(tensor.MatMulTransB(out.grad, b.Val))
			}
			if b.needs {
				b.grad.AddInPlace(tensor.MatMulTransA(a.Val, out.grad))
			}
		}
	}
	return out
}

// Add returns a + b (same shape).
func (t *Tape) Add(a, b *Node) *Node {
	val := a.Val.Clone()
	val.AddInPlace(b.Val)
	needs := a.needs || b.needs
	out := t.node(val, needs, nil)
	if needs {
		out.back = func() {
			if a.needs {
				a.grad.AddInPlace(out.grad)
			}
			if b.needs {
				b.grad.AddInPlace(out.grad)
			}
		}
	}
	return out
}

// AddBias broadcasts a 1 x C bias row across the R x C matrix a.
func (t *Tape) AddBias(a, bias *Node) *Node {
	if bias.Val.Rows != 1 || bias.Val.Cols != a.Val.Cols {
		panic("nn: AddBias expects 1xC bias matching a's columns")
	}
	val := a.Val.Clone()
	for i := 0; i < val.Rows; i++ {
		row := val.Row(i)
		for j, bv := range bias.Val.Row(0) {
			row[j] += bv
		}
	}
	needs := a.needs || bias.needs
	out := t.node(val, needs, nil)
	if needs {
		out.back = func() {
			if a.needs {
				a.grad.AddInPlace(out.grad)
			}
			if bias.needs {
				brow := bias.grad.Row(0)
				for i := 0; i < out.grad.Rows; i++ {
					for j, gv := range out.grad.Row(i) {
						brow[j] += gv
					}
				}
			}
		}
	}
	return out
}

// Sub returns a - b.
func (t *Tape) Sub(a, b *Node) *Node {
	val := a.Val.Clone()
	val.SubInPlace(b.Val)
	needs := a.needs || b.needs
	out := t.node(val, needs, nil)
	if needs {
		out.back = func() {
			if a.needs {
				a.grad.AddInPlace(out.grad)
			}
			if b.needs {
				b.grad.Axpy(-1, out.grad)
			}
		}
	}
	return out
}

// Mul returns the element-wise product a ⊙ b.
func (t *Tape) Mul(a, b *Node) *Node {
	val := a.Val.Clone()
	val.MulInPlace(b.Val)
	needs := a.needs || b.needs
	out := t.node(val, needs, nil)
	if needs {
		out.back = func() {
			if a.needs {
				for i, g := range out.grad.Data {
					a.grad.Data[i] += g * b.Val.Data[i]
				}
			}
			if b.needs {
				for i, g := range out.grad.Data {
					b.grad.Data[i] += g * a.Val.Data[i]
				}
			}
		}
	}
	return out
}

// Scale returns s * a for a constant s.
func (t *Tape) Scale(a *Node, s float64) *Node {
	val := a.Val.Clone()
	val.ScaleInPlace(s)
	out := t.node(val, a.needs, nil)
	if a.needs {
		out.back = func() { a.grad.Axpy(s, out.grad) }
	}
	return out
}

func (t *Tape) unary(a *Node, fwd func(float64) float64, dfdx func(x, y float64) float64) *Node {
	val := a.Val.Apply(fwd)
	out := t.node(val, a.needs, nil)
	if a.needs {
		out.back = func() {
			for i, g := range out.grad.Data {
				a.grad.Data[i] += g * dfdx(a.Val.Data[i], val.Data[i])
			}
		}
	}
	return out
}

// Sigmoid applies the logistic function element-wise.
func (t *Tape) Sigmoid(a *Node) *Node {
	return t.unary(a, sigmoid, func(_, y float64) float64 { return y * (1 - y) })
}

// Tanh applies tanh element-wise.
func (t *Tape) Tanh(a *Node) *Node {
	return t.unary(a, math.Tanh, func(_, y float64) float64 { return 1 - y*y })
}

// ReLU applies max(0, x) element-wise.
func (t *Tape) ReLU(a *Node) *Node {
	return t.unary(a,
		func(x float64) float64 { return math.Max(0, x) },
		func(x, _ float64) float64 {
			if x > 0 {
				return 1
			}
			return 0
		})
}

// Exp applies e^x element-wise.
func (t *Tape) Exp(a *Node) *Node {
	return t.unary(a, math.Exp, func(_, y float64) float64 { return y })
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Softmax applies a row-wise softmax.
func (t *Tape) Softmax(a *Node) *Node {
	val := tensor.New(a.Val.Rows, a.Val.Cols)
	for i := 0; i < a.Val.Rows; i++ {
		softmaxRow(a.Val.Row(i), val.Row(i))
	}
	out := t.node(val, a.needs, nil)
	if a.needs {
		out.back = func() {
			for i := 0; i < val.Rows; i++ {
				y := val.Row(i)
				g := out.grad.Row(i)
				dot := 0.0
				for j := range y {
					dot += y[j] * g[j]
				}
				arow := a.grad.Row(i)
				for j := range y {
					arow[j] += y[j] * (g[j] - dot)
				}
			}
		}
	}
	return out
}

func softmaxRow(in, out []float64) {
	max := math.Inf(-1)
	for _, v := range in {
		if v > max {
			max = v
		}
	}
	sum := 0.0
	for j, v := range in {
		out[j] = math.Exp(v - max)
		sum += out[j]
	}
	for j := range out {
		out[j] /= sum
	}
}

// Concat concatenates nodes horizontally (same row count).
func (t *Tape) Concat(ns ...*Node) *Node {
	mats := make([]*tensor.Matrix, len(ns))
	needs := false
	for i, n := range ns {
		mats[i] = n.Val
		needs = needs || n.needs
	}
	val := tensor.ConcatCols(mats...)
	out := t.node(val, needs, nil)
	if needs {
		out.back = func() {
			off := 0
			for _, n := range ns {
				if n.needs {
					for i := 0; i < n.Val.Rows; i++ {
						grow := out.grad.Row(i)[off : off+n.Val.Cols]
						nrow := n.grad.Row(i)
						for j, g := range grow {
							nrow[j] += g
						}
					}
				}
				off += n.Val.Cols
			}
		}
	}
	return out
}

// SliceCols returns columns [lo, hi) of a.
func (t *Tape) SliceCols(a *Node, lo, hi int) *Node {
	val := tensor.New(a.Val.Rows, hi-lo)
	for i := 0; i < a.Val.Rows; i++ {
		copy(val.Row(i), a.Val.Row(i)[lo:hi])
	}
	out := t.node(val, a.needs, nil)
	if a.needs {
		out.back = func() {
			for i := 0; i < val.Rows; i++ {
				arow := a.grad.Row(i)
				for j, g := range out.grad.Row(i) {
					arow[lo+j] += g
				}
			}
		}
	}
	return out
}

// Gather builds a matrix whose i-th row is a.Row(idx[i]); gradients
// scatter-add back into the gathered rows (sparse embedding update).
func (t *Tape) Gather(a *Node, idx []int) *Node {
	val := tensor.GatherRows(a.Val, idx)
	out := t.node(val, a.needs, nil)
	if a.needs {
		out.back = func() {
			for i, r := range idx {
				arow := a.grad.Row(r)
				for j, g := range out.grad.Row(i) {
					arow[j] += g
				}
			}
		}
	}
	return out
}

// MeanRows reduces R x C to 1 x C by column-wise mean.
func (t *Tape) MeanRows(a *Node) *Node {
	val := a.Val.MeanRows()
	out := t.node(val, a.needs, nil)
	if a.needs {
		inv := 1 / float64(a.Val.Rows)
		out.back = func() {
			g := out.grad.Row(0)
			for i := 0; i < a.Val.Rows; i++ {
				arow := a.grad.Row(i)
				for j, gv := range g {
					arow[j] += gv * inv
				}
			}
		}
	}
	return out
}

// MeanGroups reduces (B*K) x C to B x C by averaging each consecutive group
// of K rows; this is the batched mean-AGGREGATE over aligned sampled
// neighborhoods.
func (t *Tape) MeanGroups(a *Node, k int) *Node {
	if a.Val.Rows%k != 0 {
		panic("nn: MeanGroups row count not divisible by group size")
	}
	b := a.Val.Rows / k
	val := tensor.New(b, a.Val.Cols)
	for g := 0; g < b; g++ {
		orow := val.Row(g)
		for r := 0; r < k; r++ {
			for j, v := range a.Val.Row(g*k + r) {
				orow[j] += v
			}
		}
		for j := range orow {
			orow[j] /= float64(k)
		}
	}
	out := t.node(val, a.needs, nil)
	if a.needs {
		inv := 1 / float64(k)
		out.back = func() {
			for g := 0; g < b; g++ {
				grow := out.grad.Row(g)
				for r := 0; r < k; r++ {
					arow := a.grad.Row(g*k + r)
					for j, gv := range grow {
						arow[j] += gv * inv
					}
				}
			}
		}
	}
	return out
}

// MaxGroups reduces (B*K) x C to B x C by element-wise max over each group
// of K rows (max-pooling AGGREGATE).
func (t *Tape) MaxGroups(a *Node, k int) *Node {
	if a.Val.Rows%k != 0 {
		panic("nn: MaxGroups row count not divisible by group size")
	}
	b := a.Val.Rows / k
	val := tensor.New(b, a.Val.Cols)
	argmax := make([]int, b*a.Val.Cols)
	for g := 0; g < b; g++ {
		orow := val.Row(g)
		for j := range orow {
			orow[j] = math.Inf(-1)
		}
		for r := 0; r < k; r++ {
			row := a.Val.Row(g*k + r)
			for j, v := range row {
				if v > orow[j] {
					orow[j] = v
					argmax[g*a.Val.Cols+j] = g*k + r
				}
			}
		}
	}
	out := t.node(val, a.needs, nil)
	if a.needs {
		cols := a.Val.Cols
		out.back = func() {
			for g := 0; g < b; g++ {
				grow := out.grad.Row(g)
				for j, gv := range grow {
					a.grad.Row(argmax[g*cols+j])[j] += gv
				}
			}
		}
	}
	return out
}

// ScatterMean averages the rows of a into outRows buckets given each row's
// bucket assignment; empty buckets stay zero. It is the variable-group-size
// counterpart of MeanGroups, used when neighbor counts differ per vertex
// (full-neighborhood propagation in HEP).
func (t *Tape) ScatterMean(a *Node, rows []int, outRows int) *Node {
	if len(rows) != a.Val.Rows {
		panic("nn: ScatterMean assignment length mismatch")
	}
	counts := make([]float64, outRows)
	for _, r := range rows {
		counts[r]++
	}
	val := tensor.New(outRows, a.Val.Cols)
	for i, r := range rows {
		orow := val.Row(r)
		for j, v := range a.Val.Row(i) {
			orow[j] += v / counts[r]
		}
	}
	out := t.node(val, a.needs, nil)
	if a.needs {
		out.back = func() {
			for i, r := range rows {
				arow := a.grad.Row(i)
				for j, g := range out.grad.Row(r) {
					arow[j] += g / counts[r]
				}
			}
		}
	}
	return out
}

// SumAll reduces to a 1x1 scalar node.
func (t *Tape) SumAll(a *Node) *Node {
	s := 0.0
	for _, v := range a.Val.Data {
		s += v
	}
	val := tensor.FromSlice(1, 1, []float64{s})
	out := t.node(val, a.needs, nil)
	if a.needs {
		out.back = func() {
			g := out.grad.Data[0]
			for i := range a.grad.Data {
				a.grad.Data[i] += g
			}
		}
	}
	return out
}

// MeanAll reduces to the scalar mean of all elements.
func (t *Tape) MeanAll(a *Node) *Node {
	n := len(a.Val.Data)
	return t.Scale(t.SumAll(a), 1/float64(n))
}

// RowDot computes per-row dot products of same-shape a and b, producing
// R x 1 (the edge-score head used by every link-prediction model).
func (t *Tape) RowDot(a, b *Node) *Node {
	if !a.Val.SameShape(b.Val) {
		panic("nn: RowDot shape mismatch")
	}
	val := tensor.New(a.Val.Rows, 1)
	for i := 0; i < a.Val.Rows; i++ {
		s := 0.0
		ar, br := a.Val.Row(i), b.Val.Row(i)
		for j := range ar {
			s += ar[j] * br[j]
		}
		val.Data[i] = s
	}
	needs := a.needs || b.needs
	out := t.node(val, needs, nil)
	if needs {
		out.back = func() {
			for i := 0; i < a.Val.Rows; i++ {
				g := out.grad.Data[i]
				if a.needs {
					ar := a.grad.Row(i)
					for j, bv := range b.Val.Row(i) {
						ar[j] += g * bv
					}
				}
				if b.needs {
					br := b.grad.Row(i)
					for j, av := range a.Val.Row(i) {
						br[j] += g * av
					}
				}
			}
		}
	}
	return out
}

// RowL2Normalize normalizes each row of a to unit L2 norm (zero rows pass
// through), differentiably.
func (t *Tape) RowL2Normalize(a *Node) *Node {
	val := tensor.New(a.Val.Rows, a.Val.Cols)
	norms := make([]float64, a.Val.Rows)
	for i := 0; i < a.Val.Rows; i++ {
		row := a.Val.Row(i)
		s := 0.0
		for _, v := range row {
			s += v * v
		}
		norms[i] = math.Sqrt(s)
		orow := val.Row(i)
		if norms[i] == 0 {
			copy(orow, row)
			continue
		}
		for j, v := range row {
			orow[j] = v / norms[i]
		}
	}
	out := t.node(val, a.needs, nil)
	if a.needs {
		out.back = func() {
			for i := 0; i < a.Val.Rows; i++ {
				if norms[i] == 0 {
					arow := a.grad.Row(i)
					for j, g := range out.grad.Row(i) {
						arow[j] += g
					}
					continue
				}
				y := val.Row(i)
				g := out.grad.Row(i)
				dot := 0.0
				for j := range y {
					dot += y[j] * g[j]
				}
				arow := a.grad.Row(i)
				for j := range y {
					arow[j] += (g[j] - y[j]*dot) / norms[i]
				}
			}
		}
	}
	return out
}
