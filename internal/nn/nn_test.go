package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// numericalGrad estimates d(loss)/d(p[i]) by central differences, where
// buildLoss reconstructs the forward pass from scratch.
func numericalGrad(p *Param, i int, buildLoss func() float64) float64 {
	const eps = 1e-5
	orig := p.Val.Data[i]
	p.Val.Data[i] = orig + eps
	up := buildLoss()
	p.Val.Data[i] = orig - eps
	down := buildLoss()
	p.Val.Data[i] = orig
	return (up - down) / (2 * eps)
}

// checkGrads verifies analytic vs numerical gradients for all coordinates
// of the given params under the loss builder. build must create a fresh
// tape, run forward+backward, and return the loss value.
func checkGrads(t *testing.T, params []*Param, build func() float64, tol float64) {
	t.Helper()
	for _, p := range params {
		p.ZeroGrad()
	}
	build() // populates analytic grads
	analytic := make(map[*Param][]float64)
	for _, p := range params {
		analytic[p] = append([]float64(nil), p.Grad.Data...)
		p.ZeroGrad()
	}
	for _, p := range params {
		for i := range p.Val.Data {
			num := numericalGrad(p, i, func() float64 {
				for _, q := range params {
					q.ZeroGrad()
				}
				return build()
			})
			got := analytic[p][i]
			if math.Abs(num-got) > tol*(1+math.Abs(num)) {
				t.Fatalf("param %s[%d]: analytic %g vs numerical %g", p.Name, i, got, num)
			}
		}
	}
}

func TestGradMatMulAndBias(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := NewParam("w", 3, 2, rng)
	b := NewParamZero("b", 1, 2)
	b.Val.GaussianInit(rng, 0.1)
	x := tensor.New(4, 3)
	x.GaussianInit(rng, 1)
	target := tensor.New(4, 2)
	target.GaussianInit(rng, 1)

	build := func() float64 {
		tp := NewTape()
		h := tp.AddBias(tp.MatMul(tp.Input(x), tp.Use(w)), tp.Use(b))
		loss := tp.MSE(h, target)
		tp.Backward(loss)
		return loss.Val.Data[0]
	}
	checkGrads(t, []*Param{w, b}, build, 1e-5)
}

func TestGradActivations(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := NewParam("w", 2, 2, rng)
	x := tensor.New(3, 2)
	x.GaussianInit(rng, 1)
	target := tensor.New(3, 2)
	target.GaussianInit(rng, 0.3)

	for name, act := range map[string]func(*Tape, *Node) *Node{
		"sigmoid": (*Tape).Sigmoid,
		"tanh":    (*Tape).Tanh,
		"relu":    (*Tape).ReLU,
		"exp":     (*Tape).Exp,
	} {
		build := func() float64 {
			tp := NewTape()
			h := act(tp, tp.MatMul(tp.Input(x), tp.Use(w)))
			loss := tp.MSE(h, target)
			tp.Backward(loss)
			return loss.Val.Data[0]
		}
		t.Run(name, func(t *testing.T) { checkGrads(t, []*Param{w}, build, 1e-4) })
	}
}

func TestGradSoftmaxCE(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := NewParam("w", 3, 4, rng)
	x := tensor.New(5, 3)
	x.GaussianInit(rng, 1)
	labels := []int{0, 1, 2, 3, 1}
	build := func() float64 {
		tp := NewTape()
		logits := tp.MatMul(tp.Input(x), tp.Use(w))
		loss := tp.SoftmaxCE(logits, labels)
		tp.Backward(loss)
		return loss.Val.Data[0]
	}
	checkGrads(t, []*Param{w}, build, 1e-5)
}

func TestGradBCEWithLogits(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	w := NewParam("w", 2, 1, rng)
	x := tensor.New(6, 2)
	x.GaussianInit(rng, 1)
	labels := tensor.FromSlice(6, 1, []float64{1, 0, 1, 1, 0, 0})
	build := func() float64 {
		tp := NewTape()
		logits := tp.MatMul(tp.Input(x), tp.Use(w))
		loss := tp.BCEWithLogits(logits, labels)
		tp.Backward(loss)
		return loss.Val.Data[0]
	}
	checkGrads(t, []*Param{w}, build, 1e-5)
}

func TestGradGatherConcatSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	emb := NewParam("emb", 5, 3, rng)
	target := tensor.New(4, 6)
	target.GaussianInit(rng, 1)
	idx := []int{0, 2, 2, 4}
	build := func() float64 {
		tp := NewTape()
		g1 := tp.Gather(tp.Use(emb), idx)
		g2 := tp.Gather(tp.Use(emb), []int{1, 1, 3, 0})
		cat := tp.Concat(g1, g2) // 4 x 6
		sl := tp.SliceCols(cat, 1, 5)
		pad := tp.Concat(tp.SliceCols(cat, 0, 1), sl, tp.SliceCols(cat, 5, 6))
		loss := tp.MSE(pad, target)
		tp.Backward(loss)
		return loss.Val.Data[0]
	}
	checkGrads(t, []*Param{emb}, build, 1e-5)
}

func TestGradGroupReductionsAndRowOps(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	emb := NewParam("emb", 6, 3, rng)
	target := tensor.New(2, 3)
	target.GaussianInit(rng, 1)
	build := func() float64 {
		tp := NewTape()
		x := tp.Gather(tp.Use(emb), []int{0, 1, 2, 3, 4, 5})
		mean := tp.MeanGroups(x, 3) // 2 x 3
		norm := tp.RowL2Normalize(mean)
		loss := tp.MSE(norm, target)
		tp.Backward(loss)
		return loss.Val.Data[0]
	}
	checkGrads(t, []*Param{emb}, build, 1e-4)
}

func TestGradMaxGroups(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	emb := NewParam("emb", 4, 2, rng)
	target := tensor.New(2, 2)
	target.GaussianInit(rng, 1)
	build := func() float64 {
		tp := NewTape()
		x := tp.Gather(tp.Use(emb), []int{0, 1, 2, 3})
		mx := tp.MaxGroups(x, 2)
		loss := tp.MSE(mx, target)
		tp.Backward(loss)
		return loss.Val.Data[0]
	}
	checkGrads(t, []*Param{emb}, build, 1e-4)
}

func TestGradRowDotAndSoftmax(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := NewParam("a", 4, 3, rng)
	b := NewParam("b", 4, 3, rng)
	labels := tensor.FromSlice(4, 1, []float64{1, 0, 1, 0})
	build := func() float64 {
		tp := NewTape()
		s := tp.RowDot(tp.Use(a), tp.Softmax(tp.Use(b)))
		loss := tp.BCEWithLogits(s, labels)
		tp.Backward(loss)
		return loss.Val.Data[0]
	}
	checkGrads(t, []*Param{a, b}, build, 1e-4)
}

func TestGradLSTMCell(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cell := NewLSTMCell("lstm", 3, 2, rng)
	x1 := tensor.New(2, 3)
	x1.GaussianInit(rng, 1)
	x2 := tensor.New(2, 3)
	x2.GaussianInit(rng, 1)
	target := tensor.New(2, 2)
	target.GaussianInit(rng, 0.5)
	build := func() float64 {
		tp := NewTape()
		h, c := cell.Step(tp, tp.Input(x1), nil, nil)
		h, _ = cell.Step(tp, tp.Input(x2), h, c)
		loss := tp.MSE(h, target)
		tp.Backward(loss)
		return loss.Val.Data[0]
	}
	checkGrads(t, cell.Params(), build, 1e-4)
}

func TestGradSelfAttention(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	att := NewSelfAttention("att", 3, 4, rng)
	x := tensor.New(5, 3) // 5 items to attend over
	x.GaussianInit(rng, 1)
	target := tensor.New(1, 3)
	target.GaussianInit(rng, 0.5)
	build := func() float64 {
		tp := NewTape()
		_, pooled := att.Forward(tp, tp.Input(x))
		loss := tp.MSE(pooled, target)
		tp.Backward(loss)
		return loss.Val.Data[0]
	}
	checkGrads(t, att.Params(), build, 1e-4)
}

func TestGradL2PenaltyAndNegSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := NewParam("a", 3, 2, rng)
	b := NewParam("b", 3, 2, rng)
	build := func() float64 {
		tp := NewTape()
		pos := tp.RowDot(tp.Use(a), tp.Use(b))
		neg := tp.RowDot(tp.Use(a), tp.Scale(tp.Use(b), -0.5))
		loss := tp.AddScalars(tp.NegSamplingLoss(pos, neg), tp.L2Penalty(0.01, a, b))
		tp.Backward(loss)
		return loss.Val.Data[0]
	}
	checkGrads(t, []*Param{a, b}, build, 1e-4)
}

func TestAttentionWeightsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	att := NewSelfAttention("att", 4, 3, rng)
	x := tensor.New(6, 4)
	x.GaussianInit(rng, 1)
	tp := NewTape()
	w, _ := att.Forward(tp, tp.Input(x))
	sum := 0.0
	for _, v := range w.Val.Data {
		if v < 0 {
			t.Fatalf("negative attention weight %f", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum = %f", sum)
	}
}

func TestMLPTrainsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	mlp := NewMLP("xor", []int{2, 8, 1}, ActTanh, rng)
	x := tensor.FromSlice(4, 2, []float64{0, 0, 0, 1, 1, 0, 1, 1})
	y := tensor.FromSlice(4, 1, []float64{0, 1, 1, 0})
	opt := NewAdam(0.05)
	var loss float64
	for epoch := 0; epoch < 400; epoch++ {
		tp := NewTape()
		out := mlp.Forward(tp, tp.Input(x))
		l := tp.BCEWithLogits(out, y)
		tp.Backward(l)
		opt.Step(mlp.Params())
		loss = l.Val.Data[0]
	}
	if loss > 0.1 {
		t.Fatalf("XOR did not converge: loss=%f", loss)
	}
}

func TestOptimizersDecreaseLoss(t *testing.T) {
	for name, mk := range map[string]func() Optimizer{
		"sgd":      func() Optimizer { return SGD{LR: 0.1} },
		"momentum": func() Optimizer { return NewMomentum(0.05, 0.9) },
		"adagrad":  func() Optimizer { return NewAdaGrad(0.5) },
		"adam":     func() Optimizer { return NewAdam(0.05) },
	} {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(14))
			w := NewParam("w", 3, 1, rng)
			x := tensor.New(20, 3)
			x.GaussianInit(rng, 1)
			// Ground truth: y = x @ [1, -2, 0.5]
			truth := tensor.FromSlice(3, 1, []float64{1, -2, 0.5})
			y := tensor.MatMul(x, truth)
			opt := mk()
			first, last := 0.0, 0.0
			for i := 0; i < 100; i++ {
				tp := NewTape()
				pred := tp.MatMul(tp.Input(x), tp.Use(w))
				l := tp.MSE(pred, y)
				tp.Backward(l)
				opt.Step([]*Param{w})
				if i == 0 {
					first = l.Val.Data[0]
				}
				last = l.Val.Data[0]
			}
			if last >= first/2 {
				t.Fatalf("%s failed to reduce loss: %f -> %f", name, first, last)
			}
		})
	}
}

func TestClipGrad(t *testing.T) {
	p := NewParamZero("p", 1, 4)
	copy(p.Grad.Data, []float64{3, 4, 0, 0}) // norm 5
	ClipGrad([]*Param{p}, 1.0)
	if math.Abs(p.Grad.Norm2()-1.0) > 1e-9 {
		t.Fatalf("clipped norm = %f", p.Grad.Norm2())
	}
	// Below the cap: untouched.
	copy(p.Grad.Data, []float64{0.1, 0, 0, 0})
	ClipGrad([]*Param{p}, 1.0)
	if p.Grad.Data[0] != 0.1 {
		t.Fatal("grad below cap must be unchanged")
	}
}

func TestBackwardRequiresScalar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tp := NewTape()
	n := tp.Input(tensor.New(2, 2))
	tp.Backward(n)
}

func TestBackwardConstantLossNoop(t *testing.T) {
	tp := NewTape()
	loss := tp.MeanAll(tp.Input(tensor.FromSlice(2, 2, []float64{1, 2, 3, 4})))
	tp.Backward(loss) // must not panic even though nothing requires grad
	if loss.Val.Data[0] != 2.5 {
		t.Fatalf("loss = %f", loss.Val.Data[0])
	}
}

func TestAdaGradSkipsZeroGradRows(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	emb := NewParam("emb", 4, 2, rng)
	before := emb.Val.Clone()
	opt := NewAdaGrad(0.1)
	// Only touch row 1.
	emb.Grad.Set(1, 0, 1.0)
	opt.Step([]*Param{emb})
	if emb.Val.At(0, 0) != before.At(0, 0) {
		t.Fatal("untouched row moved")
	}
	if emb.Val.At(1, 0) == before.At(1, 0) {
		t.Fatal("touched row did not move")
	}
}

func TestGradScatterMean(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	emb := NewParam("emb", 5, 3, rng)
	target := tensor.New(2, 3)
	target.GaussianInit(rng, 1)
	rows := []int{0, 1, 1, 0, 1} // variable group sizes: bucket 0 has 2, bucket 1 has 3
	build := func() float64 {
		tp := NewTape()
		x := tp.Gather(tp.Use(emb), []int{0, 1, 2, 3, 4})
		sm := tp.ScatterMean(x, rows, 2)
		loss := tp.MSE(sm, target)
		tp.Backward(loss)
		return loss.Val.Data[0]
	}
	checkGrads(t, []*Param{emb}, build, 1e-5)
}

func TestScatterMeanEmptyBucket(t *testing.T) {
	tp := NewTape()
	x := tp.Input(tensor.FromSlice(2, 2, []float64{1, 2, 3, 4}))
	sm := tp.ScatterMean(x, []int{0, 0}, 3)
	if sm.Val.Rows != 3 {
		t.Fatalf("rows = %d", sm.Val.Rows)
	}
	if sm.Val.At(0, 0) != 2 || sm.Val.At(0, 1) != 3 {
		t.Fatalf("bucket 0 = %v", sm.Val.Row(0))
	}
	if sm.Val.At(1, 0) != 0 || sm.Val.At(2, 1) != 0 {
		t.Fatal("empty buckets must stay zero")
	}
}

func TestGradTransposeAndDivScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	w := NewParam("w", 3, 2, rng)
	target := tensor.New(2, 3)
	target.GaussianInit(rng, 1)
	build := func() float64 {
		tp := NewTape()
		x := tp.Use(w)
		xt := tp.TransposeNode(x)       // 2 x 3
		s := tp.SumAll(tp.Exp(x))       // positive scalar
		y := tp.DivScalarNode(xt, s)
		loss := tp.MSE(y, target)
		tp.Backward(loss)
		return loss.Val.Data[0]
	}
	checkGrads(t, []*Param{w}, build, 1e-4)
}
