package nn

import (
	"math"

	"repro/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients and clears
// them. Updating modes (synchronous here; the distributed trainer shards
// mini-batches) follow Section 3.3's note that samplers and operators both
// carry backward computations.
type Optimizer interface {
	Step(params []*Param)
}

// SGD is plain stochastic gradient descent with optional weight decay.
type SGD struct {
	LR          float64
	WeightDecay float64
}

// Step implements Optimizer.
func (o SGD) Step(params []*Param) {
	for _, p := range params {
		for i, g := range p.Grad.Data {
			if o.WeightDecay != 0 {
				g += o.WeightDecay * p.Val.Data[i]
			}
			p.Val.Data[i] -= o.LR * g
		}
		p.ZeroGrad()
	}
}

// Momentum is SGD with classical momentum.
type Momentum struct {
	LR, Beta float64
	vel      map[*Param]*tensor.Matrix
}

// NewMomentum creates a momentum optimizer.
func NewMomentum(lr, beta float64) *Momentum {
	return &Momentum{LR: lr, Beta: beta, vel: make(map[*Param]*tensor.Matrix)}
}

// Step implements Optimizer.
func (o *Momentum) Step(params []*Param) {
	for _, p := range params {
		v := o.vel[p]
		if v == nil {
			v = tensor.New(p.Val.Rows, p.Val.Cols)
			o.vel[p] = v
		}
		for i, g := range p.Grad.Data {
			v.Data[i] = o.Beta*v.Data[i] + g
			p.Val.Data[i] -= o.LR * v.Data[i]
		}
		p.ZeroGrad()
	}
}

// AdaGrad adapts per-coordinate learning rates by accumulated squared
// gradients; a good default for sparse embedding tables.
type AdaGrad struct {
	LR  float64
	Eps float64
	acc map[*Param]*tensor.Matrix
}

// NewAdaGrad creates an AdaGrad optimizer.
func NewAdaGrad(lr float64) *AdaGrad {
	return &AdaGrad{LR: lr, Eps: 1e-8, acc: make(map[*Param]*tensor.Matrix)}
}

// Step implements Optimizer.
func (o *AdaGrad) Step(params []*Param) {
	for _, p := range params {
		a := o.acc[p]
		if a == nil {
			a = tensor.New(p.Val.Rows, p.Val.Cols)
			o.acc[p] = a
		}
		for i, g := range p.Grad.Data {
			if g == 0 {
				continue // sparse embedding rows: skip untouched coordinates
			}
			a.Data[i] += g * g
			p.Val.Data[i] -= o.LR * g / (math.Sqrt(a.Data[i]) + o.Eps)
		}
		p.ZeroGrad()
	}
}

// Adam is the Adam optimizer (Kingma & Ba).
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	t                     int
	m, v                  map[*Param]*tensor.Matrix
}

// NewAdam creates Adam with standard hyper-parameters.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*Param]*tensor.Matrix), v: make(map[*Param]*tensor.Matrix),
	}
}

// Step implements Optimizer.
func (o *Adam) Step(params []*Param) {
	o.t++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.t))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for _, p := range params {
		m, v := o.m[p], o.v[p]
		if m == nil {
			m = tensor.New(p.Val.Rows, p.Val.Cols)
			v = tensor.New(p.Val.Rows, p.Val.Cols)
			o.m[p], o.v[p] = m, v
		}
		for i, g := range p.Grad.Data {
			m.Data[i] = o.Beta1*m.Data[i] + (1-o.Beta1)*g
			v.Data[i] = o.Beta2*v.Data[i] + (1-o.Beta2)*g*g
			mh := m.Data[i] / bc1
			vh := v.Data[i] / bc2
			p.Val.Data[i] -= o.LR * mh / (math.Sqrt(vh) + o.Eps)
		}
		p.ZeroGrad()
	}
}

// ClipGrad rescales gradients so their global norm is at most maxNorm.
func ClipGrad(params []*Param, maxNorm float64) {
	total := 0.0
	for _, p := range params {
		for _, g := range p.Grad.Data {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if norm <= maxNorm || norm == 0 {
		return
	}
	scale := maxNorm / norm
	for _, p := range params {
		p.Grad.ScaleInPlace(scale)
	}
}
