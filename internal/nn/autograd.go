// Package nn is the neural-network substrate: a tape-based reverse-mode
// autograd engine over dense matrices, common layers (dense, LSTM cell,
// self-attention), losses and optimizers. The AGGREGATE and COMBINE
// operators of the operator layer (internal/operator) and every GNN in
// internal/algo are built on it, replacing the TensorFlow runtime of the
// paper's production deployment.
package nn

import (
	"math/rand"

	"repro/internal/tensor"
)

// Param is a trainable parameter: a value matrix plus an accumulated
// gradient of the same shape. Params persist across training steps and are
// updated by an Optimizer.
type Param struct {
	Name string
	Val  *tensor.Matrix
	Grad *tensor.Matrix
}

// NewParam allocates a parameter with Xavier initialization.
func NewParam(name string, rows, cols int, rng *rand.Rand) *Param {
	p := &Param{Name: name, Val: tensor.New(rows, cols), Grad: tensor.New(rows, cols)}
	p.Val.XavierInit(rng)
	return p
}

// NewParamGaussian allocates a parameter with N(0, std²) initialization.
func NewParamGaussian(name string, rows, cols int, std float64, rng *rand.Rand) *Param {
	p := &Param{Name: name, Val: tensor.New(rows, cols), Grad: tensor.New(rows, cols)}
	p.Val.GaussianInit(rng, std)
	return p
}

// NewParamZero allocates a zero-initialized parameter (biases).
func NewParamZero(name string, rows, cols int) *Param {
	return &Param{Name: name, Val: tensor.New(rows, cols), Grad: tensor.New(rows, cols)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Node is a value in the computation graph. Nodes are created through Tape
// operations; leaves come from Input (constants) or Use (parameters).
type Node struct {
	Val  *tensor.Matrix
	grad *tensor.Matrix

	tape  *Tape
	needs bool   // participates in backprop
	back  func() // accumulates into input grads; nil for leaves
	param *Param // non-nil for parameter leaves
}

// Grad exposes the accumulated gradient of a node after Backward; intended
// for tests and diagnostics.
func (n *Node) Grad() *tensor.Matrix { return n.grad }

// Tape records operations in execution order so Backward can replay them in
// reverse. A tape is used for one forward/backward pass and then discarded;
// allocation is cheap relative to the matmuls it records.
type Tape struct {
	nodes []*Node
}

// NewTape creates an empty tape.
func NewTape() *Tape { return &Tape{} }

func (t *Tape) node(val *tensor.Matrix, needs bool, back func()) *Node {
	n := &Node{Val: val, tape: t, needs: needs, back: back}
	if needs {
		n.grad = tensor.New(val.Rows, val.Cols)
	}
	t.nodes = append(t.nodes, n)
	return n
}

// Input registers a constant leaf (no gradient).
func (t *Tape) Input(m *tensor.Matrix) *Node {
	return t.node(m, false, nil)
}

// Use registers a parameter leaf; gradients accumulate into p.Grad.
func (t *Tape) Use(p *Param) *Node {
	n := t.node(p.Val, true, nil)
	n.grad = p.Grad // accumulate directly into the parameter's gradient
	n.param = p
	return n
}

// Backward runs reverse-mode differentiation from a scalar (1x1) loss node.
func (t *Tape) Backward(loss *Node) {
	if loss.Val.Rows != 1 || loss.Val.Cols != 1 {
		panic("nn: Backward requires a scalar loss node")
	}
	if !loss.needs {
		return // loss does not depend on any parameter
	}
	loss.grad.Data[0] = 1
	for i := len(t.nodes) - 1; i >= 0; i-- {
		n := t.nodes[i]
		if n.back != nil && n.needs {
			n.back()
		}
	}
}
