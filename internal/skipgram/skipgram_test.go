package skipgram

import (
	"math/rand"
	"testing"

	"repro/internal/eval"
	"repro/internal/graph"
	"repro/internal/walk"
)

// twoCommunities builds a graph of two dense clusters and returns it with
// the cluster size.
func twoCommunities(size int, rng *rand.Rand) *graph.Graph {
	b := graph.NewBuilder(graph.SimpleSchema(), false)
	b.AddVertices(0, 2*size)
	for c := 0; c < 2; c++ {
		base := c * size
		for i := 0; i < size; i++ {
			for k := 0; k < 5; k++ {
				j := rng.Intn(size)
				if i != j {
					b.AddEdge(graph.ID(base+i), graph.ID(base+j), 0, 1)
				}
			}
		}
	}
	b.AddEdge(0, graph.ID(size), 0, 1)
	return b.Finalize()
}

func TestSGNSLearnsCommunities(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const size = 25
	g := twoCommunities(size, rng)
	corpus := walk.UniformCorpus(g, 6, 10, 0, rng)
	cfg := Config{Dim: 16, Window: 3, Negative: 4, Epochs: 3, LR: 0.05}
	m := TrainCorpus(g.NumVertices(), corpus, cfg, rng)

	intra, inter := 0.0, 0.0
	n := 0
	for i := 0; i < 50; i++ {
		a := graph.ID(rng.Intn(size))
		b := graph.ID(rng.Intn(size))
		c := graph.ID(size + rng.Intn(size))
		intra += eval.Cosine(m.Embedding(a), m.Embedding(b))
		inter += eval.Cosine(m.Embedding(a), m.Embedding(c))
		n++
	}
	if intra/float64(n) <= inter/float64(n)+0.1 {
		t.Fatalf("intra %.3f not above inter %.3f", intra/float64(n), inter/float64(n))
	}
}

func TestModelDeterministicGivenSeed(t *testing.T) {
	build := func() *Model {
		rng := rand.New(rand.NewSource(9))
		g := twoCommunities(10, rng)
		corpus := walk.UniformCorpus(g, 2, 5, 0, rng)
		return TrainCorpus(g.NumVertices(), corpus, Config{Dim: 8, Window: 2, Negative: 2, Epochs: 1, LR: 0.05}, rng)
	}
	a, b := build(), build()
	for i := range a.In.Data {
		if a.In.Data[i] != b.In.Data[i] {
			t.Fatal("training is not deterministic for a fixed seed")
		}
	}
}

func TestEmbeddingAccessor(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewModel(5, 4, rng)
	e := m.Embedding(3)
	if len(e) != 4 {
		t.Fatalf("embedding dim = %d", len(e))
	}
	e[0] = 42
	if m.In.At(3, 0) != 42 {
		t.Fatal("Embedding must return a live view")
	}
}

func TestTrainEmptyCorpusNoop(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewModel(3, 4, rng)
	before := m.In.Clone()
	m.Train(nil, DefaultConfig(), rng)
	for i := range before.Data {
		if m.In.Data[i] != before.Data[i] {
			t.Fatal("empty corpus modified embeddings")
		}
	}
}
