// Package skipgram implements skip-gram with negative sampling (SGNS) over
// random-walk corpora. It is the shared training engine behind DeepWalk,
// Node2Vec, Metapath2Vec, PMNE, MNE, MVE and the random-walk half of GATNE
// (Section 4.2, Equation 4: the objective -log P(v_p' | v) approximated by
// negative sampling). Updates are hand-rolled SGD on raw slices — SGNS is
// the throughput bottleneck of every baseline and does not need the
// autograd tape.
package skipgram

import (
	"math"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/sampling"
	"repro/internal/tensor"
	"repro/internal/walk"
)

// Config holds SGNS hyper-parameters.
type Config struct {
	Dim      int
	Window   int
	Negative int
	Epochs   int
	LR       float64
}

// DefaultConfig mirrors common DeepWalk settings scaled to laptop runs.
func DefaultConfig() Config {
	return Config{Dim: 32, Window: 4, Negative: 4, Epochs: 2, LR: 0.025}
}

// Model holds the input ("in") and context ("out") embedding tables.
type Model struct {
	Dim int
	In  *tensor.Matrix // n x dim; the embeddings exported to consumers
	Out *tensor.Matrix
}

// NewModel allocates a model for n vertices.
func NewModel(n, dim int, rng *rand.Rand) *Model {
	m := &Model{Dim: dim, In: tensor.New(n, dim), Out: tensor.New(n, dim)}
	for i := range m.In.Data {
		m.In.Data[i] = (rng.Float64() - 0.5) / float64(dim)
	}
	return m
}

// Embedding returns the learned embedding of v (shared slice).
func (m *Model) Embedding(v graph.ID) []float64 { return m.In.Row(int(v)) }

// Train runs SGNS over the corpus. Negative samples are drawn from the
// corpus unigram distribution raised to 0.75.
func (m *Model) Train(corpus walk.Corpus, cfg Config, rng *rand.Rand) {
	counts := make([]float64, m.In.Rows)
	for _, w := range corpus {
		for _, v := range w {
			counts[v]++
		}
	}
	for i, c := range counts {
		counts[i] = math.Pow(c, sampling.NegativePower)
	}
	table := sampling.NewAlias(counts)

	lr := cfg.LR
	totalSteps := cfg.Epochs * len(corpus)
	step := 0
	for ep := 0; ep < cfg.Epochs; ep++ {
		for _, w := range corpus {
			m.trainWalk(w, cfg, table, lr, rng)
			step++
			// Linear learning-rate decay to 10% of the initial rate.
			lr = cfg.LR * math.Max(0.1, 1-float64(step)/float64(totalSteps))
		}
	}
}

func (m *Model) trainWalk(w []graph.ID, cfg Config, table *sampling.Alias, lr float64, rng *rand.Rand) {
	grad := make([]float64, m.Dim)
	for i, center := range w {
		lo := i - cfg.Window
		if lo < 0 {
			lo = 0
		}
		hi := i + cfg.Window
		if hi >= len(w) {
			hi = len(w) - 1
		}
		for j := lo; j <= hi; j++ {
			if j == i {
				continue
			}
			m.pair(center, w[j], 1, grad, lr)
			for k := 0; k < cfg.Negative; k++ {
				neg := graph.ID(table.Draw(rng))
				if neg == w[j] {
					continue
				}
				m.pair(center, neg, 0, grad, lr)
			}
			// Apply accumulated input gradient for this (center, context)
			// group.
			in := m.In.Row(int(center))
			for d := 0; d < m.Dim; d++ {
				in[d] += grad[d]
				grad[d] = 0
			}
		}
	}
}

// pair applies one SGNS update for (center -> ctx) with the given label,
// accumulating the center gradient into grad and updating the context
// vector immediately.
func (m *Model) pair(center, ctx graph.ID, label float64, grad []float64, lr float64) {
	in := m.In.Row(int(center))
	out := m.Out.Row(int(ctx))
	dot := 0.0
	for d := 0; d < m.Dim; d++ {
		dot += in[d] * out[d]
	}
	g := (label - sigmoid(dot)) * lr
	for d := 0; d < m.Dim; d++ {
		grad[d] += g * out[d]
		out[d] += g * in[d]
	}
}

func sigmoid(x float64) float64 {
	if x > 8 {
		return 1
	}
	if x < -8 {
		return 0
	}
	return 1 / (1 + math.Exp(-x))
}

// TrainCorpus is a convenience wrapper: allocate a model over n vertices and
// train on the corpus.
func TrainCorpus(n int, corpus walk.Corpus, cfg Config, rng *rand.Rand) *Model {
	m := NewModel(n, cfg.Dim, rng)
	m.Train(corpus, cfg, rng)
	return m
}
