// Package graphio reads and writes graphs in a simple TSV interchange
// format, supporting the paper's claim that AliGraph "supports various
// kinds of raw data from different file systems, partitioned or not".
//
// Vertex file: one record per line,
//
//	id \t vertex-type-name [\t attr1,attr2,...]
//
// Edge file: one record per line,
//
//	src \t dst \t edge-type-name \t weight [\t attr1,attr2,...]
//
// Vertex IDs in the files are arbitrary int64 keys; they are densified in
// first-seen order and the mapping is returned.
package graphio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// Loader incrementally assembles a graph from TSV streams.
type Loader struct {
	schema  *graph.Schema
	builder *graph.Builder
	idMap   map[int64]graph.ID
}

// NewLoader creates a loader for the given schema.
func NewLoader(schema *graph.Schema, directed bool) *Loader {
	return &Loader{
		schema:  schema,
		builder: graph.NewBuilder(schema, directed),
		idMap:   make(map[int64]graph.ID),
	}
}

// ReadVertices consumes a vertex TSV stream.
func (l *Loader) ReadVertices(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, "\t")
		if len(fields) < 2 {
			return fmt.Errorf("graphio: vertex line %d: need id and type", line)
		}
		rawID, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return fmt.Errorf("graphio: vertex line %d: bad id %q", line, fields[0])
		}
		vt, ok := l.schema.VertexTypeByName(fields[1])
		if !ok {
			return fmt.Errorf("graphio: vertex line %d: unknown vertex type %q", line, fields[1])
		}
		var attr []float64
		if len(fields) >= 3 && fields[2] != "" {
			attr, err = parseAttrs(fields[2])
			if err != nil {
				return fmt.Errorf("graphio: vertex line %d: %v", line, err)
			}
		}
		if _, dup := l.idMap[rawID]; dup {
			return fmt.Errorf("graphio: vertex line %d: duplicate id %d", line, rawID)
		}
		l.idMap[rawID] = l.builder.AddVertex(vt, attr)
	}
	return sc.Err()
}

// ReadEdges consumes an edge TSV stream; all endpoints must have been
// loaded.
func (l *Loader) ReadEdges(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, "\t")
		if len(fields) < 3 {
			return fmt.Errorf("graphio: edge line %d: need src, dst and type", line)
		}
		src, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return fmt.Errorf("graphio: edge line %d: bad src %q", line, fields[0])
		}
		dst, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return fmt.Errorf("graphio: edge line %d: bad dst %q", line, fields[1])
		}
		et, ok := l.schema.EdgeTypeByName(fields[2])
		if !ok {
			return fmt.Errorf("graphio: edge line %d: unknown edge type %q", line, fields[2])
		}
		w := 1.0
		if len(fields) >= 4 && fields[3] != "" {
			w, err = strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return fmt.Errorf("graphio: edge line %d: bad weight %q", line, fields[3])
			}
		}
		var attr []float64
		if len(fields) >= 5 && fields[4] != "" {
			attr, err = parseAttrs(fields[4])
			if err != nil {
				return fmt.Errorf("graphio: edge line %d: %v", line, err)
			}
		}
		s, ok := l.idMap[src]
		if !ok {
			return fmt.Errorf("graphio: edge line %d: unknown vertex %d", line, src)
		}
		d, ok := l.idMap[dst]
		if !ok {
			return fmt.Errorf("graphio: edge line %d: unknown vertex %d", line, dst)
		}
		l.builder.AddEdgeAttr(s, d, et, w, attr)
	}
	return sc.Err()
}

// Finalize returns the built graph and the raw-id to dense-id mapping.
func (l *Loader) Finalize() (*graph.Graph, map[int64]graph.ID) {
	return l.builder.Finalize(), l.idMap
}

func parseAttrs(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad attribute %q", p)
		}
		out[i] = v
	}
	return out, nil
}

// WriteVertices emits the vertex TSV of g.
func WriteVertices(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	for v := 0; v < g.NumVertices(); v++ {
		vt := g.Schema().VertexTypeName(g.VertexType(graph.ID(v)))
		if attr := g.VertexAttr(graph.ID(v)); attr != nil {
			fmt.Fprintf(bw, "%d\t%s\t%s\n", v, vt, formatAttrs(attr))
		} else {
			fmt.Fprintf(bw, "%d\t%s\n", v, vt)
		}
	}
	return bw.Flush()
}

// WriteEdges emits the edge TSV of g (undirected edges written once).
func WriteEdges(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	for t := 0; t < g.Schema().NumEdgeTypes(); t++ {
		name := g.Schema().EdgeTypeName(graph.EdgeType(t))
		var ferr error
		g.EdgesOfType(graph.EdgeType(t), func(src, dst graph.ID, wt float64) bool {
			if !g.Directed() && src > dst {
				return true
			}
			_, ferr = fmt.Fprintf(bw, "%d\t%d\t%s\t%g\n", src, dst, name, wt)
			return ferr == nil
		})
		if ferr != nil {
			return ferr
		}
	}
	return bw.Flush()
}

// WriteEmbeddings emits one "id \t v1,v2,..." line per row of emb.
func WriteEmbeddings(w io.Writer, emb interface {
	Row(i int) []float64
}, n int) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < n; i++ {
		fmt.Fprintf(bw, "%d\t%s\n", i, formatAttrs(emb.Row(i)))
	}
	return bw.Flush()
}

func formatAttrs(a []float64) string {
	parts := make([]string, len(a))
	for i, v := range a {
		parts[i] = strconv.FormatFloat(v, 'g', -1, 64)
	}
	return strings.Join(parts, ",")
}
