package graphio

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/graph"
)

func schema() *graph.Schema {
	return graph.MustSchema([]string{"user", "item"}, []string{"click", "buy"})
}

func TestRoundTrip(t *testing.T) {
	l := NewLoader(schema(), true)
	vs := "100\tuser\t1,0\n200\titem\t9.5\n300\titem\n"
	es := "100\t200\tclick\t2.5\n100\t300\tbuy\n"
	if err := l.ReadVertices(strings.NewReader(vs)); err != nil {
		t.Fatal(err)
	}
	if err := l.ReadEdges(strings.NewReader(es)); err != nil {
		t.Fatal(err)
	}
	g, idMap := l.Finalize()
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	u := idMap[100]
	if g.VertexType(u) != 0 {
		t.Fatal("vertex type")
	}
	if a := g.VertexAttr(idMap[200]); len(a) != 1 || a[0] != 9.5 {
		t.Fatalf("attr = %v", a)
	}
	if g.VertexAttr(idMap[300]) != nil {
		t.Fatal("attr should be nil")
	}
	ws := g.OutWeights(u, 0)
	if len(ws) != 1 || ws[0] != 2.5 {
		t.Fatalf("weight = %v", ws)
	}
	if w := g.OutWeights(u, 1); len(w) != 1 || w[0] != 1.0 {
		t.Fatalf("default weight = %v", w)
	}

	// Write it back out and reload.
	var vbuf, ebuf bytes.Buffer
	if err := WriteVertices(&vbuf, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteEdges(&ebuf, g); err != nil {
		t.Fatal(err)
	}
	l2 := NewLoader(schema(), true)
	if err := l2.ReadVertices(&vbuf); err != nil {
		t.Fatal(err)
	}
	if err := l2.ReadEdges(&ebuf); err != nil {
		t.Fatal(err)
	}
	g2, _ := l2.Finalize()
	if g2.NumVertices() != 3 || g2.NumEdges() != 2 {
		t.Fatalf("round trip: n=%d m=%d", g2.NumVertices(), g2.NumEdges())
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	l := NewLoader(schema(), true)
	in := "# header\n\n1\tuser\n"
	if err := l.ReadVertices(strings.NewReader(in)); err != nil {
		t.Fatal(err)
	}
	g, _ := l.Finalize()
	if g.NumVertices() != 1 {
		t.Fatal("comment handling")
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name     string
		vertices string
		edges    string
	}{
		{"missing type", "1\n", ""},
		{"bad id", "x\tuser\n", ""},
		{"unknown vtype", "1\tnope\n", ""},
		{"bad attr", "1\tuser\tx,y\n", ""},
		{"dup id", "1\tuser\n1\tuser\n", ""},
		{"edge fields", "1\tuser\n", "1\t1\n"},
		{"edge unknown type", "1\tuser\n", "1\t1\tnope\n"},
		{"edge bad weight", "1\tuser\n", "1\t1\tclick\tx\n"},
		{"edge unknown vertex", "1\tuser\n", "1\t2\tclick\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l := NewLoader(schema(), true)
			verr := l.ReadVertices(strings.NewReader(tc.vertices))
			if tc.edges == "" {
				if verr == nil {
					t.Fatal("expected vertex error")
				}
				return
			}
			if verr != nil {
				t.Fatal(verr)
			}
			if err := l.ReadEdges(strings.NewReader(tc.edges)); err == nil {
				t.Fatal("expected edge error")
			}
		})
	}
}

func TestEdgeAttrs(t *testing.T) {
	l := NewLoader(schema(), true)
	if err := l.ReadVertices(strings.NewReader("1\tuser\n2\titem\n")); err != nil {
		t.Fatal(err)
	}
	if err := l.ReadEdges(strings.NewReader("1\t2\tclick\t1.0\t7,8\n")); err != nil {
		t.Fatal(err)
	}
	g, idMap := l.Finalize()
	a := g.EdgeAttr(idMap[1], 0, 0)
	if len(a) != 2 || a[1] != 8 {
		t.Fatalf("edge attr = %v", a)
	}
}
