// Package plan is the adaptive sampling planner: it decides, per (edge
// type, hop) lane, HOW the cluster client should execute neighbor
// expansions — not what they return. The client already implements three
// strategies implicitly; the planner makes the choice explicit and
// per-lane:
//
//   - Hybrid (the built-in default): probe the neighbor cache, send misses
//     to the server-side SampleNeighbors draw path, and admit the full
//     short lists that ride back on the replies. A reasonable middle
//     ground for every lane, optimal for none.
//   - ClientDraws: probe the cache, fetch misses as full adjacency lists
//     (one Neighbors RPC per owning shard), admit them, and draw locally
//     with the slot-pure stream. Right for hub-heavy, heavily reused lanes:
//     after warm-up nearly every expansion is answered without a network
//     round trip.
//   - ServerDraws: skip the cache probe and admission entirely and let the
//     servers draw. Right for cold, sparse lanes whose vertices never
//     recur: admitting their lists into a replacing (LRU) cache only
//     evicts entries a hot lane needed (cache churn), and probing buys
//     nothing.
//
// Every strategy produces bit-identical values for a fixed seed: draws are
// pure functions of (seed, batch slot, adjacency list), so a strategy
// changes where a value is computed, never what it is. That is what makes
// the planner safe to run live — plans can switch mid-training without
// perturbing a fixed-seed loss curve, which the cluster package's
// forced-plan matrix test asserts.
//
// The planner itself (Planner) follows the greedy, statistics-free idiom:
// no cost model, no calibration — it periodically snapshots the client's
// per-lane observability counters (the per-(edge type, hop) lanes the obs
// registry already exports), computes each lane's windowed cache-hit rate,
// and applies two thresholds. High hit rate: the cache is carrying the
// lane, go ClientDraws. Near-zero hit rate: the cache is dead weight, go
// ServerDraws and stop admitting. In between: Hybrid. Hysteresis (a
// candidate must win several consecutive windows) keeps noisy lanes from
// flapping, and periodic probe windows re-measure ServerDraws lanes — the
// only strategy that stops producing its own decision signal — so a lane
// whose reuse pattern changes can escape.
package plan

import (
	"fmt"
	"sort"
	"strings"
)

// Strategy is one lane's execution choice.
type Strategy uint8

const (
	// Auto defers to the plan's default (resolved as Hybrid); it is the
	// zero value so an unset LanePlan never forces anything.
	Auto Strategy = iota
	// Hybrid probes the cache and sends misses to the server-side draw
	// path, admitting replies.
	Hybrid
	// ClientDraws probes the cache and fetches misses as full adjacency
	// lists, drawing locally.
	ClientDraws
	// ServerDraws skips cache probe and admission; servers draw everything.
	ServerDraws
)

// String names the strategy as CLIs accept and print it.
func (s Strategy) String() string {
	switch s {
	case Hybrid:
		return "hybrid"
	case ClientDraws:
		return "client"
	case ServerDraws:
		return "server"
	default:
		return "auto"
	}
}

// ParseStrategy parses the CLI spelling of a strategy ("hybrid", "client",
// "server").
func ParseStrategy(s string) (Strategy, error) {
	switch s {
	case "hybrid":
		return Hybrid, nil
	case "client":
		return ClientDraws, nil
	case "server":
		return ServerDraws, nil
	default:
		return Auto, fmt.Errorf("plan: unknown strategy %q (want hybrid, client or server)", s)
	}
}

// Lane identifies one (edge type, hop) sampling lane. Hop 0 collects
// direct, untagged calls; hops 1.. are the NEIGHBORHOOD sampler's tags.
type Lane struct {
	Type int
	Hop  int
}

func (l Lane) String() string { return fmt.Sprintf("t%d.h%d", l.Type, l.Hop) }

// LaneStats is one lane's cumulative observability counters, as fetched
// from the client (cluster.Client.LaneStats). The planner works on window
// deltas of these.
type LaneStats struct {
	Calls       int64 // batch expansions
	Slots       int64 // batch slots across those calls
	RPCs        int64 // per-shard sub-requests issued
	Lookups     int64 // cache probes (one per unique vertex probed)
	CacheHits   int64 // probes answered by the cache
	EpochMisses int64 // probes that failed only on epoch validity
	Degraded    int64 // draws served from stale state (shard down)
	Nanos       int64 // wall clock across expansions
}

// sub returns the windowed delta s - prev (counters are monotone).
func (s LaneStats) sub(prev LaneStats) LaneStats {
	return LaneStats{
		Calls:       s.Calls - prev.Calls,
		Slots:       s.Slots - prev.Slots,
		RPCs:        s.RPCs - prev.RPCs,
		Lookups:     s.Lookups - prev.Lookups,
		CacheHits:   s.CacheHits - prev.CacheHits,
		EpochMisses: s.EpochMisses - prev.EpochMisses,
		Degraded:    s.Degraded - prev.Degraded,
		Nanos:       s.Nanos - prev.Nanos,
	}
}

// LanePlan is the plan's choice for one lane: the execution strategy plus
// whether fetched lists may be admitted into a replacing neighbor cache.
// Admission gating is the per-lane cache-admission control: a lane marked
// Admit=false stops churning the shared LRU (its entries never earned
// their slots), while static importance caches ignore the bit — for them
// Observe is revalidation of preloaded entries, not admission.
type LanePlan struct {
	Strategy Strategy
	Admit    bool
}

// resolve maps Auto to the concrete default so call sites never branch on
// the zero value.
func (lp LanePlan) resolve() LanePlan {
	if lp.Strategy == Auto {
		return LanePlan{Strategy: Hybrid, Admit: true}
	}
	return lp
}

// lanePlanFor is the canonical admission pairing per strategy: admitting
// strategies admit, ServerDraws does not.
func lanePlanFor(s Strategy) LanePlan {
	return LanePlan{Strategy: s, Admit: s != ServerDraws}
}

// Plan maps lanes to their execution choice. A Plan is immutable once
// published: the client reads it lock-free behind an atomic pointer, so
// never mutate a Plan that has been handed to SetPlan.
type Plan struct {
	Lanes map[Lane]LanePlan
	// Default answers lanes not present in Lanes (Auto resolves to
	// Hybrid+admit, the client's built-in behavior).
	Default LanePlan
}

// For returns the (resolved) choice for lane (t, hop). Nil plans answer
// the built-in default.
func (p *Plan) For(t, hop int) LanePlan {
	if p == nil {
		return LanePlan{}.resolve()
	}
	if lp, ok := p.Lanes[Lane{Type: t, Hop: hop}]; ok {
		return lp.resolve()
	}
	return p.Default.resolve()
}

// Uniform returns a plan forcing one strategy (with its canonical
// admission choice) on every lane — the CLI's forced mode and the matrix
// test's subject.
func Uniform(s Strategy) *Plan {
	return &Plan{Default: lanePlanFor(s)}
}

// String renders the plan compactly ("t0.h1=client+admit t1.h2=server"),
// lanes sorted, for -stats output and logs.
func (p *Plan) String() string {
	if p == nil {
		return "default=hybrid+admit"
	}
	lanes := make([]Lane, 0, len(p.Lanes))
	for l := range p.Lanes {
		lanes = append(lanes, l)
	}
	sort.Slice(lanes, func(i, j int) bool {
		if lanes[i].Type != lanes[j].Type {
			return lanes[i].Type < lanes[j].Type
		}
		return lanes[i].Hop < lanes[j].Hop
	})
	var b strings.Builder
	fmt.Fprintf(&b, "default=%s", formatLanePlan(p.Default.resolve()))
	for _, l := range lanes {
		fmt.Fprintf(&b, " %s=%s", l, formatLanePlan(p.Lanes[l].resolve()))
	}
	return b.String()
}

func formatLanePlan(lp LanePlan) string {
	if lp.Admit {
		return lp.Strategy.String() + "+admit"
	}
	return lp.Strategy.String()
}
