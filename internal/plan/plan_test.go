package plan

import (
	"testing"

	"repro/internal/obs"
)

func TestPlanResolution(t *testing.T) {
	var nilPlan *Plan
	if lp := nilPlan.For(0, 1); lp.Strategy != Hybrid || !lp.Admit {
		t.Fatalf("nil plan resolved to %+v, want hybrid+admit", lp)
	}
	p := &Plan{
		Lanes:   map[Lane]LanePlan{{Type: 0, Hop: 1}: {Strategy: ClientDraws, Admit: true}},
		Default: LanePlan{Strategy: ServerDraws},
	}
	if lp := p.For(0, 1); lp.Strategy != ClientDraws {
		t.Fatalf("lane override resolved to %+v", lp)
	}
	if lp := p.For(1, 2); lp.Strategy != ServerDraws || lp.Admit {
		t.Fatalf("default resolved to %+v, want server without admission", lp)
	}
	if lp := (&Plan{}).For(3, 3); lp.Strategy != Hybrid || !lp.Admit {
		t.Fatalf("Auto default resolved to %+v, want hybrid+admit", lp)
	}
	u := Uniform(ServerDraws)
	if lp := u.For(7, 4); lp.Strategy != ServerDraws || lp.Admit {
		t.Fatalf("Uniform(server) resolved to %+v", lp)
	}
	for _, name := range []string{"hybrid", "client", "server"} {
		s, err := ParseStrategy(name)
		if err != nil || s.String() != name {
			t.Fatalf("ParseStrategy(%q) = %v, %v", name, s, err)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Fatal("ParseStrategy accepted garbage")
	}
}

// synthetic lane driver: each window adds the configured per-window deltas
// to cumulative counters, with the hit rate controlled per window.
type synthLane struct {
	cum     LaneStats
	lookups int64
	hitRate func(window int) float64
}

func (s *synthLane) tick(window int) LaneStats {
	s.cum.Calls += 10
	s.cum.Slots += s.lookups
	s.cum.Lookups += s.lookups
	s.cum.CacheHits += int64(float64(s.lookups) * s.hitRate(window))
	s.cum.RPCs += 10
	return s.cum
}

// TestPlannerConvergesUnderSkew is the hysteresis/convergence test: a
// hub-heavy reused lane and a cold sparse lane are fed through the
// planner; the plan must settle on ClientDraws for the hot lane and
// ServerDraws (admission off) for the cold one, and once settled it must
// stop switching entirely — convergence, not flapping.
func TestPlannerConvergesUnderSkew(t *testing.T) {
	hot := &synthLane{lookups: 1000, hitRate: func(int) float64 { return 0.92 }}
	cold := &synthLane{lookups: 1000, hitRate: func(int) float64 { return 0.02 }}
	window := 0
	pl := NewPlanner(Config{ProbeEvery: -1}, func() map[Lane]LaneStats {
		window++
		return map[Lane]LaneStats{
			{Type: 0, Hop: 1}: hot.tick(window),
			{Type: 1, Hop: 1}: cold.tick(window),
		}
	}, nil)

	var settled *Plan
	for i := 0; i < 10; i++ {
		settled = pl.Step()
	}
	if lp := settled.For(0, 1); lp.Strategy != ClientDraws || !lp.Admit {
		t.Fatalf("hot lane settled on %+v, want client+admit", lp)
	}
	if lp := settled.For(1, 1); lp.Strategy != ServerDraws || lp.Admit {
		t.Fatalf("cold lane settled on %+v, want server without admission", lp)
	}
	switchesAt10 := pl.Switches()
	for i := 0; i < 40; i++ {
		pl.Step()
	}
	if got := pl.Switches(); got != switchesAt10 {
		t.Fatalf("planner kept switching after convergence: %d -> %d", switchesAt10, got)
	}
	if pl.Windows() != 50 {
		t.Fatalf("windows = %d, want 50", pl.Windows())
	}
}

// TestPlannerHysteresisNoFlap: a lane whose hit rate oscillates across the
// ClientDraws threshold every window must never switch — a verdict has to
// repeat Hysteresis consecutive windows, and a strict alternation never
// does.
func TestPlannerHysteresisNoFlap(t *testing.T) {
	noisy := &synthLane{lookups: 1000, hitRate: func(w int) float64 {
		if w%2 == 0 {
			return 0.95 // says ClientDraws
		}
		return 0.40 // says Hybrid
	}}
	window := 0
	pl := NewPlanner(Config{Hysteresis: 2, ProbeEvery: -1}, func() map[Lane]LaneStats {
		window++
		return map[Lane]LaneStats{{Type: 0, Hop: 1}: noisy.tick(window)}
	}, nil)
	for i := 0; i < 30; i++ {
		if lp := pl.Step().For(0, 1); lp.Strategy != Hybrid {
			t.Fatalf("window %d: noisy lane switched to %v", i, lp.Strategy)
		}
	}
	if pl.Switches() != 0 {
		t.Fatalf("switches = %d, want 0 under strict alternation", pl.Switches())
	}
}

// TestPlannerProbeEscape: a lane that went ServerDraws stops producing its
// own hit-rate signal; the periodic probe window must re-measure it, and
// when the workload turned reusable the lane must escape on the probe's
// verdict.
func TestPlannerProbeEscape(t *testing.T) {
	cum := LaneStats{}
	probed := false
	pl := NewPlanner(Config{Hysteresis: 1, ProbeEvery: 3}, nil, nil)
	lane := Lane{Type: 0, Hop: 1}
	pl.fetch = func() map[Lane]LaneStats {
		cum.Calls += 10
		cum.Slots += 1000
		cum.RPCs += 10
		if cur := pl.Plan(); cur == nil || cur.For(lane.Type, lane.Hop).Strategy != ServerDraws {
			// Probes (and the pre-ServerDraws windows) see live lookups;
			// once probing starts, the workload has turned hot.
			cum.Lookups += 1000
			if probed {
				cum.CacheHits += 900
			}
		}
		return map[Lane]LaneStats{lane: cum}
	}

	// Drive until the lane settles on ServerDraws (cold phase).
	settled := false
	for i := 0; i < 6; i++ {
		if pl.Step().For(lane.Type, lane.Hop).Strategy == ServerDraws {
			settled = true
			break
		}
	}
	if !settled {
		t.Fatal("lane never settled on ServerDraws")
	}
	probed = true // workload turns hot; only probe windows can see it
	for i := 0; i < 12; i++ {
		pl.Step()
	}
	if lp := pl.Plan().For(lane.Type, lane.Hop); lp.Strategy == ServerDraws {
		t.Fatalf("lane stuck in ServerDraws after workload turned hot: %+v", lp)
	}
}

// TestPlannerObsGauges: decisions and their inputs are visible through an
// obs registry, with the strategy gauge non-zero for every planned lane.
func TestPlannerObsGauges(t *testing.T) {
	hot := &synthLane{lookups: 1000, hitRate: func(int) float64 { return 0.9 }}
	window := 0
	pl := NewPlanner(Config{ProbeEvery: -1}, func() map[Lane]LaneStats {
		window++
		return map[Lane]LaneStats{{Type: 0, Hop: 1}: hot.tick(window)}
	}, nil)
	r := obs.NewRegistry()
	pl.RegisterObs(r)
	for i := 0; i < 5; i++ {
		pl.Step()
	}
	snap := r.Snapshot()
	if snap.Gauges["plan.windows"] != 5 {
		t.Fatalf("plan.windows = %d, want 5", snap.Gauges["plan.windows"])
	}
	if v := snap.Counters["plan.lane.t0.h1.strategy"]; v != int64(ClientDraws) {
		t.Fatalf("strategy gauge = %d, want %d", v, ClientDraws)
	}
	if v := snap.Counters["plan.lane.t0.h1.hit_pct"]; v < 80 {
		t.Fatalf("hit_pct gauge = %d, want the observed ~90", v)
	}
	if snap.Gauges["plan.switches"] == 0 {
		t.Fatal("the hot lane's switch to client draws was not counted")
	}
}
