package plan

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// Config tunes the adaptive planner. The zero value is usable: defaults
// are filled by NewPlanner.
type Config struct {
	// Interval is the decision-window length for Start (default 2s).
	// Step() can instead be driven manually (tests, benchmarks).
	Interval time.Duration

	// MinSlots gates judging: a lane must have expanded at least this many
	// batch slots in a window to produce a verdict (default 64). Quieter
	// lanes keep their current choice — a handful of probes is noise.
	MinSlots int64

	// MinLookups gates the hit-rate signal itself: fewer cache probes than
	// this in a window (a ServerDraws lane between probe windows) means
	// "no evidence", not "zero hit rate" (default 16).
	MinLookups int64

	// HitHigh and HitLow are the greedy thresholds on the windowed
	// cache-hit rate (hits / probes): at or above HitHigh the lane goes
	// ClientDraws, at or below HitLow it goes ServerDraws, in between
	// Hybrid. Defaults 0.75 and 0.10.
	HitHigh float64
	HitLow  float64

	// Hysteresis is how many consecutive windows a changed verdict must
	// repeat before the lane actually switches (default 2). This is the
	// anti-flap control: one noisy window moves nothing.
	Hysteresis int

	// ProbeEvery re-measures ServerDraws lanes: every ProbeEvery windows
	// such a lane runs one window as Hybrid (probes on, admission on) so
	// its hit rate becomes observable again — ServerDraws is the only
	// strategy that silences its own decision signal. A probe window's
	// verdict applies immediately (the cadence itself bounds flapping to
	// at most one switch per ProbeEvery windows). Default 8; negative
	// disables probing (tests). 0 means the default.
	ProbeEvery int
}

func (c *Config) defaults() {
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.MinSlots <= 0 {
		c.MinSlots = 64
	}
	if c.MinLookups <= 0 {
		c.MinLookups = 16
	}
	if c.HitHigh == 0 {
		c.HitHigh = 0.75
	}
	if c.HitLow == 0 {
		c.HitLow = 0.10
	}
	if c.Hysteresis <= 0 {
		c.Hysteresis = 2
	}
	if c.ProbeEvery == 0 {
		c.ProbeEvery = 8
	}
}

// laneState is the planner's per-lane memory between windows.
type laneState struct {
	settled LanePlan  // the lane's current committed choice
	cand    Strategy  // pending verdict awaiting hysteresis
	streak  int       // consecutive windows cand has won
	probing bool      // the window now closing ran as a probe (Hybrid)
	sinceProbe int    // windows since the last probe while in ServerDraws
	last    LaneStats // cumulative counters at the previous window edge

	// Published decision inputs, for gauges: the last windowed hit rate
	// (percent) and probe count this lane was judged on.
	hitPct  int64
	lookups int64
}

// Planner periodically snapshots per-lane counters, applies the greedy
// threshold rules with hysteresis, and publishes the resulting Plan.
// Safe for concurrent use; Step, Start and Close may interleave.
type Planner struct {
	cfg     Config
	fetch   func() map[Lane]LaneStats
	publish func(*Plan)

	mu       sync.Mutex
	lanes    map[Lane]*laneState
	cur      *Plan
	windows  int64
	switches int64

	startOnce sync.Once
	stopOnce  sync.Once
	quit      chan struct{}
	done      chan struct{}
}

// NewPlanner builds a planner over a counter source and a plan sink —
// typically cluster.Client.LaneStats and cluster.Client.SetPlan (see
// Client.NewPlanner, which wires exactly that).
func NewPlanner(cfg Config, fetch func() map[Lane]LaneStats, publish func(*Plan)) *Planner {
	cfg.defaults()
	return &Planner{
		cfg:     cfg,
		fetch:   fetch,
		publish: publish,
		lanes:   make(map[Lane]*laneState),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
	}
}

// Step closes one decision window: snapshot counters, judge every lane on
// its windowed delta, publish the (possibly unchanged) plan. Returns the
// published plan. Deterministic given the counter deltas — tests and
// benchmarks drive it directly instead of running Start's ticker.
func (p *Planner) Step() *Plan {
	stats := p.fetch()
	p.mu.Lock()
	for lane, cum := range stats {
		st, ok := p.lanes[lane]
		if !ok {
			// A lane's first window judges its whole history — for a lane
			// that just appeared that IS one window, and for a planner
			// started mid-run it seeds the baseline with a real verdict.
			st = &laneState{settled: LanePlan{}.resolve()}
			p.lanes[lane] = st
		}
		d := cum.sub(st.last)
		st.last = cum
		p.judgeLocked(st, d)
	}
	next := &Plan{
		Lanes:   make(map[Lane]LanePlan, len(p.lanes)),
		Default: LanePlan{}.resolve(),
	}
	for lane, st := range p.lanes {
		lp := st.settled
		if st.probing {
			// Probe window: run the lane as Hybrid so the next Step sees a
			// live hit rate again.
			lp = LanePlan{Strategy: Hybrid, Admit: true}
		}
		next.Lanes[lane] = lp
	}
	p.windows++
	p.cur = next
	p.mu.Unlock()
	if p.publish != nil {
		p.publish(next)
	}
	return next
}

// judgeLocked applies one window's evidence to one lane.
func (p *Planner) judgeLocked(st *laneState, d LaneStats) {
	wasProbe := st.probing
	st.probing = false
	defer func() {
		// Schedule the next probe while the lane sits in ServerDraws; any
		// other strategy keeps producing its own signal.
		if st.settled.Strategy == ServerDraws && p.cfg.ProbeEvery > 0 {
			st.sinceProbe++
			if st.sinceProbe >= p.cfg.ProbeEvery {
				st.probing = true
				st.sinceProbe = 0
			}
		} else {
			st.sinceProbe = 0
		}
	}()
	if d.Slots < p.cfg.MinSlots {
		// Too quiet to judge; hold the choice and any pending candidate.
		return
	}
	desired := st.settled.Strategy
	if d.Lookups >= p.cfg.MinLookups {
		hit := float64(d.CacheHits) / float64(d.Lookups)
		st.hitPct = int64(hit * 100)
		st.lookups = d.Lookups
		switch {
		case hit >= p.cfg.HitHigh:
			desired = ClientDraws
		case hit <= p.cfg.HitLow:
			desired = ServerDraws
		default:
			desired = Hybrid
		}
	}
	switch {
	case desired == st.settled.Strategy:
		st.cand, st.streak = Auto, 0
	case desired == st.cand || wasProbe:
		st.streak++
		need := p.cfg.Hysteresis
		if wasProbe {
			// A probe window's verdict acts at once: the lane already paid
			// hysteresis to settle into ServerDraws, and probes are
			// ProbeEvery windows apart, so this cannot flap per-window.
			need = 1
		}
		if st.streak >= need {
			st.settled = lanePlanFor(desired)
			st.cand, st.streak = Auto, 0
			p.switches++
		}
	default:
		st.cand, st.streak = desired, 1
	}
}

// Plan returns the most recently published plan (nil before the first
// Step).
func (p *Planner) Plan() *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cur
}

// Windows and Switches report how many decision windows have closed and
// how many lane strategy switches they committed.
func (p *Planner) Windows() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.windows
}

func (p *Planner) Switches() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.switches
}

// Summary is the -stats line: window/switch counts plus the current plan.
func (p *Planner) Summary() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return fmt.Sprintf("%d windows, %d switches, plan: %s", p.windows, p.switches, p.cur.String())
}

// Start runs Step every Interval on a background goroutine until Close.
func (p *Planner) Start() {
	p.startOnce.Do(func() {
		go func() {
			defer close(p.done)
			t := time.NewTicker(p.cfg.Interval)
			defer t.Stop()
			for {
				select {
				case <-p.quit:
					return
				case <-t.C:
					p.Step()
				}
			}
		}()
	})
}

// Close stops the Start goroutine (no-op if Start never ran).
func (p *Planner) Close() {
	p.stopOnce.Do(func() {
		close(p.quit)
		p.startOnce.Do(func() { close(p.done) }) // never started: unblock done
		<-p.done
	})
}

// RegisterObs publishes the planner's decisions and their observed inputs
// in r: plan.windows / plan.switches counters plus, per lane,
// plan.lane.t<type>.h<hop>.{strategy,admit,hit_pct,lookups} gauges. The
// strategy gauge is the Strategy enum value (hybrid=1, client=2,
// server=3), never 0 once the lane has been planned — a dashboard
// asserting non-zero proves the planner is live.
func (p *Planner) RegisterObs(r *obs.Registry) {
	r.Gauge("plan.windows", p.Windows)
	r.Gauge("plan.switches", p.Switches)
	r.Collect(func(emit func(name string, v int64)) {
		p.mu.Lock()
		defer p.mu.Unlock()
		if p.cur == nil {
			return
		}
		for lane, lp := range p.cur.Lanes {
			st := p.lanes[lane]
			pre := "plan.lane." + lane.String() + "."
			emit(pre+"strategy", int64(lp.Strategy))
			if lp.Admit {
				emit(pre+"admit", 1)
			} else {
				emit(pre+"admit", 0)
			}
			if st != nil {
				emit(pre+"hit_pct", st.hitPct)
				emit(pre+"lookups", st.lookups)
			}
		}
	})
}
