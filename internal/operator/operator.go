// Package operator implements the operator layer of Section 3.4: the
// AGGREGATE and COMBINE plugins consumed by every GNN. An Aggregator
// reduces the aligned neighbor embeddings produced by NEIGHBORHOOD sampling
// (B*K x d, K per vertex) into one vector per vertex (B x d); a Combiner
// merges a vertex's previous-hop embedding with the aggregated neighborhood
// into the next-hop embedding. All operators are differentiable: forward
// builds tape nodes, backward is handled by the autograd engine, matching
// the paper's "a typical operator is made up of forward and backward
// computations".
package operator

import (
	"math/rand"

	"repro/internal/nn"
)

// Aggregator reduces grouped neighbor embeddings. Input is (B*K) x d where
// each consecutive group of K rows belongs to one vertex; output is B x out.
type Aggregator interface {
	Name() string
	Aggregate(t *nn.Tape, neigh *nn.Node, k int) *nn.Node
	Params() []*nn.Param
	OutDim() int
}

// Combiner merges self (B x d1) and aggregated neighborhood (B x d2) into
// B x out.
type Combiner interface {
	Name() string
	Combine(t *nn.Tape, self, neigh *nn.Node) *nn.Node
	Params() []*nn.Param
	OutDim() int
}

// ---------------------------------------------------------------------------
// Aggregators

// MeanAggregator is the weighted element-wise mean of GraphSAGE-mean:
// mean over the group followed by a dense projection.
type MeanAggregator struct {
	dense *nn.Dense
	out   int
}

// NewMeanAggregator creates a mean aggregator projecting d -> out.
func NewMeanAggregator(name string, d, out int, rng *rand.Rand) *MeanAggregator {
	return &MeanAggregator{dense: nn.NewDense(name+".mean", d, out, nn.ActReLU, rng), out: out}
}

// Name implements Aggregator.
func (a *MeanAggregator) Name() string { return "mean" }

// Aggregate implements Aggregator.
func (a *MeanAggregator) Aggregate(t *nn.Tape, neigh *nn.Node, k int) *nn.Node {
	return a.dense.Forward(t, t.MeanGroups(neigh, k))
}

// Params implements Aggregator.
func (a *MeanAggregator) Params() []*nn.Param { return a.dense.Params() }

// OutDim implements Aggregator.
func (a *MeanAggregator) OutDim() int { return a.out }

// SumAggregator sums the group (GCN-style un-normalized convolution) and
// projects.
type SumAggregator struct {
	dense *nn.Dense
	out   int
}

// NewSumAggregator creates a sum aggregator projecting d -> out.
func NewSumAggregator(name string, d, out int, rng *rand.Rand) *SumAggregator {
	return &SumAggregator{dense: nn.NewDense(name+".sum", d, out, nn.ActReLU, rng), out: out}
}

// Name implements Aggregator.
func (a *SumAggregator) Name() string { return "sum" }

// Aggregate implements Aggregator.
func (a *SumAggregator) Aggregate(t *nn.Tape, neigh *nn.Node, k int) *nn.Node {
	return a.dense.Forward(t, t.Scale(t.MeanGroups(neigh, k), float64(k)))
}

// Params implements Aggregator.
func (a *SumAggregator) Params() []*nn.Param { return a.dense.Params() }

// OutDim implements Aggregator.
func (a *SumAggregator) OutDim() int { return a.out }

// MaxPoolAggregator is GraphSAGE-pool: a per-neighbor dense transform
// followed by element-wise max over the group.
type MaxPoolAggregator struct {
	pre *nn.Dense
	out int
}

// NewMaxPoolAggregator creates a max-pool aggregator projecting d -> out.
func NewMaxPoolAggregator(name string, d, out int, rng *rand.Rand) *MaxPoolAggregator {
	return &MaxPoolAggregator{pre: nn.NewDense(name+".pool", d, out, nn.ActReLU, rng), out: out}
}

// Name implements Aggregator.
func (a *MaxPoolAggregator) Name() string { return "maxpool" }

// Aggregate implements Aggregator.
func (a *MaxPoolAggregator) Aggregate(t *nn.Tape, neigh *nn.Node, k int) *nn.Node {
	return t.MaxGroups(a.pre.Forward(t, neigh), k)
}

// Params implements Aggregator.
func (a *MaxPoolAggregator) Params() []*nn.Param { return a.pre.Params() }

// OutDim implements Aggregator.
func (a *MaxPoolAggregator) OutDim() int { return a.out }

// LSTMAggregator is GraphSAGE-LSTM: the K neighbors of each vertex are fed
// through an LSTM as a sequence; the final hidden state is the aggregate.
// Neighbor order comes from the sampler's (random) order, as in the paper.
type LSTMAggregator struct {
	cell *nn.LSTMCell
	out  int
}

// NewLSTMAggregator creates an LSTM aggregator with hidden size out.
func NewLSTMAggregator(name string, d, out int, rng *rand.Rand) *LSTMAggregator {
	return &LSTMAggregator{cell: nn.NewLSTMCell(name+".lstm", d, out, rng), out: out}
}

// Name implements Aggregator.
func (a *LSTMAggregator) Name() string { return "lstm" }

// Aggregate implements Aggregator.
func (a *LSTMAggregator) Aggregate(t *nn.Tape, neigh *nn.Node, k int) *nn.Node {
	b := neigh.Val.Rows / k
	var h, c *nn.Node
	// Timestep r consumes the r-th neighbor of every vertex: rows r, k+r,
	// 2k+r, ... gathered into a B x d slab.
	for r := 0; r < k; r++ {
		idx := make([]int, b)
		for g := 0; g < b; g++ {
			idx[g] = g*k + r
		}
		x := t.Gather(neigh, idx)
		h, c = a.cell.Step(t, x, h, c)
	}
	return h
}

// Params implements Aggregator.
func (a *LSTMAggregator) Params() []*nn.Param { return a.cell.Params() }

// OutDim implements Aggregator.
func (a *LSTMAggregator) OutDim() int { return a.out }

// ---------------------------------------------------------------------------
// Combiners

// SumCombiner computes act(W(self + neigh) + b), the "summed together and
// fed into a deep neural network" default of Section 3.4 (requires
// matching dims).
type SumCombiner struct {
	dense *nn.Dense
	out   int
}

// NewSumCombiner creates a sum combiner d -> out.
func NewSumCombiner(name string, d, out int, rng *rand.Rand) *SumCombiner {
	return &SumCombiner{dense: nn.NewDense(name+".comb", d, out, nn.ActReLU, rng), out: out}
}

// Name implements Combiner.
func (c *SumCombiner) Name() string { return "sum" }

// Combine implements Combiner.
func (c *SumCombiner) Combine(t *nn.Tape, self, neigh *nn.Node) *nn.Node {
	return c.dense.Forward(t, t.Add(self, neigh))
}

// Params implements Combiner.
func (c *SumCombiner) Params() []*nn.Param { return c.dense.Params() }

// OutDim implements Combiner.
func (c *SumCombiner) OutDim() int { return c.out }

// SumCombinerProj projects self into the neighborhood dimension before
// adding (the GCN self-loop when the feature and hidden dims differ):
// act(W_s·self + neigh + b).
type SumCombinerProj struct {
	proj *nn.Dense
	out  int
}

// NewSumCombinerProj creates a projecting sum combiner dSelf -> out.
func NewSumCombinerProj(name string, dSelf, out int, rng *rand.Rand) *SumCombinerProj {
	return &SumCombinerProj{proj: nn.NewDense(name+".proj", dSelf, out, nil, rng), out: out}
}

// Name implements Combiner.
func (c *SumCombinerProj) Name() string { return "sumproj" }

// Combine implements Combiner.
func (c *SumCombinerProj) Combine(t *nn.Tape, self, neigh *nn.Node) *nn.Node {
	return t.ReLU(t.Add(c.proj.Forward(t, self), neigh))
}

// Params implements Combiner.
func (c *SumCombinerProj) Params() []*nn.Param { return c.proj.Params() }

// OutDim implements Combiner.
func (c *SumCombinerProj) OutDim() int { return c.out }

// ConcatCombiner computes act(W[self || neigh] + b), the GraphSAGE
// combine.
type ConcatCombiner struct {
	dense *nn.Dense
	out   int
}

// NewConcatCombiner creates a concat combiner (d1+d2) -> out with ReLU.
func NewConcatCombiner(name string, d1, d2, out int, rng *rand.Rand) *ConcatCombiner {
	return NewConcatCombinerAct(name, d1, d2, out, nn.ActReLU, rng)
}

// NewConcatCombinerAct creates a concat combiner with an explicit
// activation (nil = linear). Final-hop combiners should be linear: a ReLU
// output layer dies under the negative-sampling objective, which pushes
// most pair scores negative.
func NewConcatCombinerAct(name string, d1, d2, out int, act func(*nn.Tape, *nn.Node) *nn.Node, rng *rand.Rand) *ConcatCombiner {
	return &ConcatCombiner{dense: nn.NewDense(name+".comb", d1+d2, out, act, rng), out: out}
}

// Name implements Combiner.
func (c *ConcatCombiner) Name() string { return "concat" }

// Combine implements Combiner.
func (c *ConcatCombiner) Combine(t *nn.Tape, self, neigh *nn.Node) *nn.Node {
	return c.dense.Forward(t, t.Concat(self, neigh))
}

// Params implements Combiner.
func (c *ConcatCombiner) Params() []*nn.Param { return c.dense.Params() }

// OutDim implements Combiner.
func (c *ConcatCombiner) OutDim() int { return c.out }
