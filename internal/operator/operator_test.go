package operator

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

func allAggregators(d, out int, rng *rand.Rand) []Aggregator {
	return []Aggregator{
		NewMeanAggregator("m", d, out, rng),
		NewSumAggregator("s", d, out, rng),
		NewMaxPoolAggregator("p", d, out, rng),
		NewLSTMAggregator("l", d, out, rng),
	}
}

func TestAggregatorShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const b, k, d, out = 3, 4, 5, 6
	x := tensor.New(b*k, d)
	x.GaussianInit(rng, 1)
	for _, agg := range allAggregators(d, out, rng) {
		tp := nn.NewTape()
		y := agg.Aggregate(tp, tp.Input(x), k)
		if y.Val.Rows != b || y.Val.Cols != out {
			t.Fatalf("%s: shape %dx%d want %dx%d", agg.Name(), y.Val.Rows, y.Val.Cols, b, out)
		}
		if agg.OutDim() != out {
			t.Fatalf("%s: OutDim %d", agg.Name(), agg.OutDim())
		}
		if len(agg.Params()) == 0 {
			t.Fatalf("%s: no params", agg.Name())
		}
	}
}

func TestAggregatorsTrain(t *testing.T) {
	// Each aggregator must be able to fit a tiny regression target, proving
	// forward+backward are wired.
	rng := rand.New(rand.NewSource(2))
	const b, k, d, out = 4, 3, 4, 2
	x := tensor.New(b*k, d)
	x.GaussianInit(rng, 1)
	target := tensor.New(b, out)
	target.GaussianInit(rng, 0.3)
	for _, agg := range allAggregators(d, out, rng) {
		opt := nn.NewAdam(0.02)
		first, last := 0.0, 0.0
		for i := 0; i < 150; i++ {
			tp := nn.NewTape()
			y := agg.Aggregate(tp, tp.Input(x), k)
			loss := tp.MSE(y, target)
			tp.Backward(loss)
			opt.Step(agg.Params())
			if i == 0 {
				first = loss.Val.Data[0]
			}
			last = loss.Val.Data[0]
		}
		if last >= first*0.9 {
			t.Fatalf("%s did not learn: %f -> %f", agg.Name(), first, last)
		}
	}
}

func TestMeanAggregatorPermutationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const b, k, d, out = 1, 4, 3, 5
	agg := NewMeanAggregator("m", d, out, rng)
	x := tensor.New(b*k, d)
	x.GaussianInit(rng, 1)
	perm := tensor.New(b*k, d)
	order := []int{2, 0, 3, 1}
	for i, r := range order {
		copy(perm.Row(i), x.Row(r))
	}
	tp := nn.NewTape()
	y1 := agg.Aggregate(tp, tp.Input(x), k)
	y2 := agg.Aggregate(tp, tp.Input(perm), k)
	for i := range y1.Val.Data {
		if math.Abs(y1.Val.Data[i]-y2.Val.Data[i]) > 1e-9 {
			t.Fatal("mean aggregator must be permutation invariant")
		}
	}
}

func TestMaxPoolPermutationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const k, d, out = 4, 3, 5
	agg := NewMaxPoolAggregator("p", d, out, rng)
	x := tensor.New(k, d)
	x.GaussianInit(rng, 1)
	perm := tensor.New(k, d)
	for i, r := range []int{3, 1, 0, 2} {
		copy(perm.Row(i), x.Row(r))
	}
	tp := nn.NewTape()
	y1 := agg.Aggregate(tp, tp.Input(x), k)
	y2 := agg.Aggregate(tp, tp.Input(perm), k)
	for i := range y1.Val.Data {
		if math.Abs(y1.Val.Data[i]-y2.Val.Data[i]) > 1e-9 {
			t.Fatal("max-pool aggregator must be permutation invariant")
		}
	}
}

func TestLSTMAggregatorOrderSensitive(t *testing.T) {
	// The LSTM aggregator is deliberately order-sensitive (the paper uses
	// the sampler's random order); verify it actually distinguishes orders.
	rng := rand.New(rand.NewSource(5))
	const k, d, out = 3, 3, 4
	agg := NewLSTMAggregator("l", d, out, rng)
	x := tensor.New(k, d)
	x.GaussianInit(rng, 2)
	rev := tensor.New(k, d)
	for i := 0; i < k; i++ {
		copy(rev.Row(i), x.Row(k-1-i))
	}
	tp := nn.NewTape()
	y1 := agg.Aggregate(tp, tp.Input(x), k)
	y2 := agg.Aggregate(tp, tp.Input(rev), k)
	diff := 0.0
	for i := range y1.Val.Data {
		diff += math.Abs(y1.Val.Data[i] - y2.Val.Data[i])
	}
	if diff < 1e-9 {
		t.Fatal("LSTM aggregator produced identical output for reversed input")
	}
}

func TestCombiners(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const b, d, out = 3, 4, 5
	self := tensor.New(b, d)
	self.GaussianInit(rng, 1)
	neigh := tensor.New(b, d)
	neigh.GaussianInit(rng, 1)

	sum := NewSumCombiner("sc", d, out, rng)
	cat := NewConcatCombiner("cc", d, d, out, rng)
	for _, c := range []Combiner{sum, cat} {
		tp := nn.NewTape()
		y := c.Combine(tp, tp.Input(self), tp.Input(neigh))
		if y.Val.Rows != b || y.Val.Cols != out {
			t.Fatalf("%s shape %dx%d", c.Name(), y.Val.Rows, y.Val.Cols)
		}
		if c.OutDim() != out || len(c.Params()) != 2 {
			t.Fatalf("%s metadata", c.Name())
		}
	}
}

func TestSumCombinerIsSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const b, d, out = 2, 3, 3
	c := NewSumCombiner("sc", d, out, rng)
	a := tensor.New(b, d)
	a.GaussianInit(rng, 1)
	bb := tensor.New(b, d)
	bb.GaussianInit(rng, 1)
	tp := nn.NewTape()
	y1 := c.Combine(tp, tp.Input(a), tp.Input(bb))
	y2 := c.Combine(tp, tp.Input(bb), tp.Input(a))
	for i := range y1.Val.Data {
		if math.Abs(y1.Val.Data[i]-y2.Val.Data[i]) > 1e-9 {
			t.Fatal("sum combiner must be symmetric in its inputs")
		}
	}
}
