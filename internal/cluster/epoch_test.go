package cluster

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/sampling"
	"repro/internal/storage"
)

// splitServers builds a 2-shard cluster over a small power-law graph.
func splitServers(t *testing.T, n int) (*graph.Graph, *partition.Assignment, []*Server) {
	t.Helper()
	g := powerLawTestGraph(n)
	a, err := (partition.HashPartitioner{}).Partition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	return g, a, FromGraph(g, a)
}

// Sampling replies are stamped with the serving shard's update epoch; a
// client epoch view accumulates them per consumer, and an applied update
// makes batches that span both shards detectably mixed.
func TestEpochViewDetectsMixedEpochs(t *testing.T) {
	g, a, servers := splitServers(t, 200)
	tr := NewLocalTransport(servers, 0, 0)
	c := NewClient(a, tr, storage.NoCache{})

	batch := make([]graph.ID, 64)
	for i := range batch {
		batch[i] = graph.ID(i) // hash partitioning spreads these over both shards
	}
	dst := make([]graph.ID, len(batch)*3)

	view := c.EpochView()
	vbs := view.(sampling.BatchSampler) // views keep the server-side draw path
	if err := vbs.SampleBatch(dst, batch, 0, 3, false, 1); err != nil {
		t.Fatal(err)
	}
	span := view.Span()
	if !span.Seen {
		t.Fatal("span saw no replies")
	}
	if span.Mixed() {
		t.Fatalf("fresh cluster reported mixed epochs: %+v", span)
	}
	if span.Min != 0 || span.Max != 0 {
		t.Fatalf("fresh cluster epochs = [%d, %d], want [0, 0]", span.Min, span.Max)
	}

	// Apply an update to shard 0 only; its epoch advances.
	src0 := servers[0].LocalVertices()[0]
	var reply UpdateReply
	if err := servers[0].ServeUpdate(UpdateRequest{Add: []RawEdge{{Src: src0, Dst: 1, Type: 0, Weight: 1}}}, &reply); err != nil {
		t.Fatal(err)
	}
	if servers[0].UpdateEpoch() != 1 || servers[1].UpdateEpoch() != 0 {
		t.Fatalf("epochs after update: %d/%d, want 1/0",
			servers[0].UpdateEpoch(), servers[1].UpdateEpoch())
	}

	view.ResetSpan()
	if view.Span().Seen {
		t.Fatal("reset span not empty")
	}
	if err := vbs.SampleBatch(dst, batch, 0, 3, false, 2); err != nil {
		t.Fatal(err)
	}
	span = view.Span()
	if !span.Mixed() || span.Min != 0 || span.Max != 1 {
		t.Fatalf("post-update span = %+v, want mixed [0, 1]", span)
	}
	_ = g
}

// MiniBatches assembled over a cluster environment are pinned to one
// snapshot at assembly time: every batch — even one whose assembly
// straddles an update landing on one shard — reports a single-valued epoch
// span (Mixed() is an invariant violation now, not a detector), and the
// pin advances once the update is observed.
func TestMiniBatchEpochStamping(t *testing.T) {
	_, a, servers := splitServers(t, 200)
	tr := NewLocalTransport(servers, 0, 0)
	c := NewClient(a, tr, storage.NoCache{})

	rng := rand.New(rand.NewSource(3))
	cfg := core.TrainerConfig{EdgeType: 0, HopNums: []int{3, 2}, Batch: 32, NegK: 2, LR: 0.01}
	trn, err := core.NewLinkTrainerOver(NewEnv(c, 1), c, &core.Encoder{}, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	src := core.NewSyncSource(trn)

	mb, err := src.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !mb.Epochs.Seen || mb.Epochs.Mixed() {
		t.Fatalf("fresh-cluster batch span = %+v, want single-valued", mb.Epochs)
	}
	if mb.Pin == nil || len(mb.Pin.Epochs) != a.P {
		t.Fatalf("batch not pinned: %+v", mb.Pin)
	}
	firstStamp := mb.Epochs.Min
	if mb.Pin.Epochs[0] != 0 || mb.Pin.Epochs[1] != 0 {
		t.Fatalf("fresh cluster pin epochs = %v, want [0 0]", mb.Pin.Epochs)
	}
	src.Recycle(mb)

	// An update lands on shard 1 only: the shards now sit at different
	// update generations — the regime that used to produce mixed batches.
	src1 := servers[1].LocalVertices()[0]
	var reply UpdateReply
	if err := servers[1].ServeUpdate(UpdateRequest{Add: []RawEdge{{Src: src1, Dst: 0, Type: 0, Weight: 1}}}, &reply); err != nil {
		t.Fatal(err)
	}
	// The first post-update batch may still read the old pin (the update is
	// only observable through reply heads); drive a couple of batches and
	// require every one single-valued, with the pin eventually advancing to
	// the new snapshot.
	sawNewPin := false
	for i := 0; i < 3; i++ {
		mb, err = src.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !mb.Epochs.Seen || mb.Epochs.Mixed() {
			t.Fatalf("post-update batch %d span = %+v, want single-valued", i, mb.Epochs)
		}
		if mb.Pin.Epochs[1] == 1 {
			sawNewPin = true
			if mb.Epochs.Min == firstStamp {
				t.Fatalf("re-pinned batch kept the old stamp %d", firstStamp)
			}
		}
		src.Recycle(mb)
	}
	if !sawNewPin {
		t.Fatal("pin never advanced to the post-update snapshot")
	}
}

// The Bootstrap RPC serves everything a graph-free worker needs: the
// partition assignment and the schema, from any shard.
func TestBootstrapServesAssignmentAndSchema(t *testing.T) {
	g, a, servers := splitServers(t, 120)
	tr := NewLocalTransport(servers, 0, 0)
	for part := 0; part < a.P; part++ {
		got, schema, err := Bootstrap(tr, part)
		if err != nil {
			t.Fatal(err)
		}
		if got.P != a.P || len(got.Of) != len(a.Of) {
			t.Fatalf("bootstrap shape: %d/%d, want %d/%d", got.P, len(got.Of), a.P, len(a.Of))
		}
		for v := range a.Of {
			if got.Of[v] != a.Of[v] {
				t.Fatalf("vertex %d assigned to %d, want %d", v, got.Of[v], a.Of[v])
			}
		}
		if schema.NumEdgeTypes() != g.Schema().NumEdgeTypes() ||
			schema.NumVertexTypes() != g.Schema().NumVertexTypes() {
			t.Fatalf("bootstrap schema %d/%d types", schema.NumVertexTypes(), schema.NumEdgeTypes())
		}
		if schema.EdgeTypeName(0) != g.Schema().EdgeTypeName(0) {
			t.Fatalf("edge type name %q", schema.EdgeTypeName(0))
		}
	}
	// A bare server (no SetBootstrap) must refuse rather than serve junk.
	bare := NewServer(0, 1)
	var reply BootstrapReply
	if err := bare.ServeBootstrap(BootstrapRequest{}, &reply); err == nil {
		t.Fatal("bare server served bootstrap")
	}
}

// The attribute LRU serves repeated hot vertices without another RPC round
// and returns rows identical to the direct path.
func TestAttrCacheServesHotVertices(t *testing.T) {
	_, a, servers := splitServers(t, 120)
	tr := NewLocalTransport(servers, 0, 0)
	c := NewClient(a, tr, storage.NoCache{})

	vs := []graph.ID{5, 9, 5, 17, 9, 33}
	direct, err := c.Attrs(vs)
	if err != nil {
		t.Fatal(err)
	}

	cache := NewAttrCache(c, 64)
	got, err := cache.Attrs(vs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vs {
		if len(got[i]) != len(direct[i]) {
			t.Fatalf("row %d length %d, want %d", i, len(got[i]), len(direct[i]))
		}
		for j := range got[i] {
			if got[i][j] != direct[i][j] {
				t.Fatalf("row %d differs at %d", i, j)
			}
		}
	}

	tr.ResetCalls()
	if _, err := cache.Attrs(vs); err != nil {
		t.Fatal(err)
	}
	if local, remote := tr.Calls(); local+remote != 0 {
		t.Fatalf("hot batch cost %d RPCs, want 0", local+remote)
	}
	if cache.HitRate() == 0 {
		t.Fatal("hit rate not tracked")
	}

	// Eviction: a capacity-1 cache still answers correctly.
	tiny := NewAttrCache(c, 1)
	if _, err := tiny.Attrs(vs); err != nil {
		t.Fatal(err)
	}
	if tiny.Len() != 1 {
		t.Fatalf("tiny cache holds %d rows, want 1", tiny.Len())
	}
}
