package cluster

import (
	"io"
	"math"
	"math/rand"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/storage"
)

// TestRPCServerRestartMidTraining is the transport-level recovery test: a
// live aligraph-server is killed and relaunched on the same address — with
// a FRESH store whose epoch numbering restarts at 0 — under depth-4
// pipelined training. The retry layer must outwait the downtime, the
// transport must redial, the pin manager must accept the head regression
// (re-lease at the new incarnation's epoch 0, flushing the neighbor cache),
// and training must continue without a panic or a surfaced error.
func TestRPCServerRestartMidTraining(t *testing.T) {
	g := churnTestGraph(160)
	a, err := (partition.HashPartitioner{}).Partition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	servers := FromGraph(g, a)
	rs0, err := ServeRPC(servers[0], "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rs0.Close()
	rs1, err := ServeRPC(servers[1], "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rs1.Close()
	addr1 := rs1.Addr()

	rpcTr, err := DialRPC([]string{rs0.Addr(), addr1})
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRetryTransport(rpcTr, 2, CallPolicy{
		Timeout:       2 * time.Second,
		Attempts:      4,
		Backoff:       time.Millisecond,
		MaxBackoff:    20 * time.Millisecond,
		FailThreshold: 3,
		Cooldown:      20 * time.Millisecond,
	}, 5)
	defer rt.Close()

	c := NewClient(a, rt, storage.NewLRUNeighborCache(2048))
	rng := rand.New(rand.NewSource(5))
	cfg := faultTrainerConfig()
	enc := churnEncoder(g.NumVertices(), cfg.HopNums, rng)
	trn, err := core.NewLinkTrainerOver(NewEnv(c, 1), c, enc, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	pl := core.NewPipeline(trn, core.PipelineConfig{Depth: 4, Workers: 3})
	trn.SetSource(pl)
	defer pl.Close()

	var losses []float64
	step := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			l, err := trn.StepNext()
			if err != nil {
				t.Fatalf("step %d: %v", len(losses), err)
			}
			losses = append(losses, l)
		}
	}

	step(8)

	// Advance shard 1's epoch so the eventual restart is a genuine head
	// REGRESSION, not a benign rejoin at the same numbering.
	local1 := localVertices(a, 1, 2)
	for i := 0; i < 3; i++ {
		req := UpdateRequest{Add: []RawEdge{{Src: local1[0], Dst: local1[1], Type: 1, Weight: 1}}}
		if err := servers[1].ServeUpdate(req, &UpdateReply{}); err != nil {
			t.Fatal(err)
		}
	}
	step(4)
	if pin := c.currentPin(); pin == nil || pin.Epochs[1] == 0 {
		t.Fatalf("pre-restart pin should be at shard 1's advanced epoch, got %+v", pin)
	}

	// Kill: the listener closes AND established connections are severed, so
	// in-flight calls observe io.EOF exactly as with a dead process.
	if err := rs1.Close(); err != nil {
		t.Fatal(err)
	}

	// Relaunch on the same address with a fresh shard (epoch 0, empty lease
	// table), retrying the bind while the OS releases the port.
	fresh := FromGraph(g, a)[1]
	var rs1b *RPCServer
	for i := 0; ; i++ {
		rs1b, err = ServeRPC(fresh, addr1)
		if err == nil {
			break
		}
		if i >= 100 {
			t.Fatalf("rebind %s: %v", addr1, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	defer rs1b.Close()

	step(8)

	for i, l := range losses {
		if math.IsNaN(l) || math.IsInf(l, 0) {
			t.Fatalf("step %d: non-finite loss %v", i, l)
		}
	}
	pin := c.currentPin()
	if pin == nil {
		t.Fatal("no live pin after recovery")
	}
	if pin.Epochs[1] != 0 {
		t.Fatalf("post-restart pin still at old incarnation's epoch %d; head regression was not adopted", pin.Epochs[1])
	}
	if rt.Retries() == 0 {
		t.Fatal("restart produced no retries; the outage window was never exercised")
	}
}

// localVertices returns the first n vertices owned by part.
func localVertices(a *partition.Assignment, part, n int) []graph.ID {
	out := make([]graph.ID, 0, n)
	for v := range a.Of {
		if a.Of[v] == part {
			out = append(out, graph.ID(v))
			if len(out) == n {
				break
			}
		}
	}
	return out
}

// TestDialRPCLazyAndEager: eager dialing fails fast on an unreachable
// address; lazy construction succeeds and defers the failure to first use,
// which then heals once a server appears.
func TestDialRPCLazyAndEager(t *testing.T) {
	// A listener we close immediately: the address is valid but dead.
	g := churnTestGraph(40)
	a, err := (partition.HashPartitioner{}).Partition(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv := FromGraph(g, a)[0]
	rs, err := ServeRPC(srv, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := rs.Addr()
	rs.Close()

	if _, err := DialRPC([]string{addr}); err == nil {
		t.Fatal("eager dial of a dead address must fail construction")
	}

	lt, err := DialRPCConfig([]string{addr}, DialConfig{Timeout: 200 * time.Millisecond, Lazy: true})
	if err != nil {
		t.Fatalf("lazy dial must not fail construction: %v", err)
	}
	defer lt.Close()
	var sr StatsReply
	if err := lt.Stats(0, StatsRequest{}, &sr); err == nil {
		t.Fatal("first use against a dead address must fail")
	}

	// Boot the server; the next call dials fresh and succeeds.
	rs2, err := ServeRPC(srv, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rs2.Close()
	if err := lt.Stats(0, StatsRequest{}, &sr); err != nil {
		t.Fatalf("lazy transport did not heal once the server appeared: %v", err)
	}
	if sr.NumVertices == 0 {
		t.Fatal("healed call returned empty stats")
	}
}

// TestRPCTransportDoubleClose: Close is idempotent and calls after Close
// fail cleanly instead of panicking or redialing.
func TestRPCTransportDoubleClose(t *testing.T) {
	g := churnTestGraph(40)
	a, err := (partition.HashPartitioner{}).Partition(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv := FromGraph(g, a)[0]
	rs, err := ServeRPC(srv, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()

	tr, err := DialRPC([]string{rs.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	var sr StatsReply
	if err := tr.Stats(0, StatsRequest{}, &sr); err == nil {
		t.Fatal("call after Close must fail")
	}
}

// TestDeadlineKickSeversHungConnection: a server that accepts and then goes
// silent (a partition with no FIN/RST) must not pin every retry to the same
// hung connection. On each deadline expiry the retry layer kicks the shard's
// conn — unblocking the abandoned attempt's goroutine — and the next attempt
// dials a FRESH connection, observable as one accepted conn per attempt.
func TestDeadlineKickSeversHungConnection(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	var accepted atomic.Int64
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			accepted.Add(1)
			go io.Copy(io.Discard, conn) // swallow requests, never reply
		}
	}()

	tr, err := DialRPCConfig([]string{lis.Addr().String()}, DialConfig{Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	rt := NewRetryTransport(tr, 1, CallPolicy{
		Timeout:    50 * time.Millisecond,
		Attempts:   3,
		Backoff:    time.Millisecond,
		MaxBackoff: 2 * time.Millisecond,
	}, 1)

	var sr StatsReply
	if err := rt.Stats(0, StatsRequest{}, &sr); !IsShardDown(err) {
		t.Fatalf("want ShardDownError from a silent server, got %v", err)
	}
	if got := accepted.Load(); got != 3 {
		t.Fatalf("accepted %d connections for 3 attempts; retries re-queued on a hung conn", got)
	}
	tr.mu.Lock()
	c0 := tr.clients[0]
	tr.mu.Unlock()
	if c0 != nil {
		t.Fatal("deadline expiry left the hung connection installed")
	}
}
