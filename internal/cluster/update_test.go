package cluster

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/partition"
)

func TestServeUpdate(t *testing.T) {
	g := testGraph(t)
	a, _ := partition.HashPartitioner{}.Partition(g, 2)
	servers := FromGraph(g, a)

	// Add an edge 0 -> 7 (click) on server 0, remove 0 -> 4.
	var reply UpdateReply
	err := servers[0].ServeUpdate(UpdateRequest{
		Add:    []RawEdge{{Src: 0, Dst: 7, Type: 0, Weight: 2}},
		Remove: []RawEdge{{Src: 0, Dst: 4, Type: 0}},
	}, &reply)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Added != 1 || reply.Removed != 1 {
		t.Fatalf("reply = %+v", reply)
	}
	ns, ws, ok := servers[0].Neighbors(0, 0)
	if !ok {
		t.Fatal("vertex 0 must stay local")
	}
	has7, has4 := false, false
	for i, u := range ns {
		if u == 7 {
			has7 = true
			if ws[i] != 2 {
				t.Fatalf("weight = %f", ws[i])
			}
		}
		if u == 4 {
			has4 = true
		}
	}
	if !has7 || has4 {
		t.Fatalf("after update: neighbors = %v", ns)
	}

	// Removing an absent edge is idempotent.
	reply = UpdateReply{}
	if err := servers[0].ServeUpdate(UpdateRequest{
		Remove: []RawEdge{{Src: 0, Dst: 99, Type: 0}},
	}, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.Removed != 0 {
		t.Fatal("phantom removal")
	}

	// Adding for a non-local source fails.
	if err := servers[0].ServeUpdate(UpdateRequest{
		Add: []RawEdge{{Src: 1, Dst: 2, Type: 0}},
	}, &reply); err == nil {
		t.Fatal("expected ownership error")
	}
}

func TestApplyDelta(t *testing.T) {
	g := testGraph(t)
	a, _ := partition.HashPartitioner{}.Partition(g, 2)
	servers := FromGraph(g, a)

	delta := graph.EdgeDelta{
		Added: []graph.Edge{
			{Src: 0, Dst: 6, Type: 0, Weight: 1},
			{Src: 1, Dst: 7, Type: 0, Weight: 1},
		},
		Removed: []graph.Edge{{Src: 2, Dst: 6, Type: 0}},
	}
	added, removed, err := ApplyDelta(servers, a.Part, delta)
	if err != nil {
		t.Fatal(err)
	}
	if added != 2 || removed != 1 {
		t.Fatalf("added=%d removed=%d", added, removed)
	}
	// Each addition landed on its owner.
	if ns, _, _ := servers[0].Neighbors(0, 0); !contains(ns, 6) {
		t.Fatal("edge 0->6 missing")
	}
	if ns, _, _ := servers[1].Neighbors(1, 0); !contains(ns, 7) {
		t.Fatal("edge 1->7 missing")
	}
	if ns, _, _ := servers[0].Neighbors(2, 0); contains(ns, 6) {
		t.Fatal("edge 2->6 should be removed")
	}
}

func contains(ns []graph.ID, v graph.ID) bool {
	for _, u := range ns {
		if u == v {
			return true
		}
	}
	return false
}

func TestUpdateOverRPC(t *testing.T) {
	g := testGraph(t)
	a, _ := partition.HashPartitioner{}.Partition(g, 1)
	servers := FromGraph(g, a)
	rs, err := ServeRPC(servers[0], "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	tr, err := DialRPC([]string{rs.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	// Updates travel over the same wire as reads.
	var reply UpdateReply
	if err := tr.clients[0].Call("Graph.Update", UpdateRequest{
		Add: []RawEdge{{Src: 0, Dst: 7, Type: 1, Weight: 1}},
	}, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.Added != 1 {
		t.Fatalf("rpc update reply = %+v", reply)
	}
}
