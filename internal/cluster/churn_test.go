package cluster

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/operator"
	"repro/internal/partition"
	"repro/internal/storage"
	"repro/internal/version"
)

// churnTestGraph builds a two-edge-type power-law graph: type 0 ("train")
// carries the training edges, type 1 ("churn") is the one update storms
// hammer, so the trained subgraph is bit-identical at every epoch.
func churnTestGraph(n int) *graph.Graph {
	rng := rand.New(rand.NewSource(9))
	s := graph.MustSchema([]string{"v"}, []string{"train", "churn"})
	b := graph.NewBuilder(s, true)
	for i := 0; i < n; i++ {
		b.AddVertex(0, []float64{float64(i), 1})
	}
	targets := []graph.ID{0, 1}
	b.AddEdge(1, 0, 0, 1)
	for v := graph.ID(2); v < graph.ID(n); v++ {
		for e := 0; e < 3; e++ {
			dst := targets[rng.Intn(len(targets))]
			if dst != v {
				b.AddEdge(v, dst, 0, 1+rng.Float64())
				targets = append(targets, dst, v)
			}
		}
	}
	return b.Finalize()
}

// churnEncoder builds the GraphSAGE-style encoder the platform uses, seeded
// deterministically.
func churnEncoder(n int, hops []int, rng *rand.Rand) *core.Encoder {
	const dim = 8
	feat := core.NewTableFeatures("emb", n, dim, rng)
	enc := &core.Encoder{Features: feat, Materialize: true, Normalize: true}
	in := dim
	for k := range hops {
		enc.Agg = append(enc.Agg, operator.NewMeanAggregator("agg", in, dim, rng))
		act := nn.ActReLU
		if k == len(hops)-1 {
			act = nil
		}
		enc.Comb = append(enc.Comb, operator.NewConcatCombinerAct("comb", in, dim, dim, act, rng))
		in = dim
	}
	return enc
}

// newChurnTrainer wires a deterministic cluster trainer over fresh servers
// for g: same seed => same draws, whatever happens on the churn edge type.
func newChurnTrainer(t *testing.T, g *graph.Graph, seed int64) (*core.LinkTrainer, []*Server) {
	return newChurnTrainerCache(t, g, seed, func([]*Server, *partition.Assignment) storage.NeighborCache {
		return storage.NoCache{}
	})
}

// newChurnTrainerCache is newChurnTrainer with a caller-chosen neighbor
// cache; the factory sees the live servers and assignment so test caches
// can cross-check served lists against store ground truth.
func newChurnTrainerCache(t *testing.T, g *graph.Graph, seed int64, mkCache func([]*Server, *partition.Assignment) storage.NeighborCache) (*core.LinkTrainer, []*Server) {
	t.Helper()
	a, err := (partition.HashPartitioner{}).Partition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	servers := FromGraph(g, a)
	c := NewClient(a, NewLocalTransport(servers, 0, 0), mkCache(servers, a))
	rng := rand.New(rand.NewSource(seed))
	enc := churnEncoder(g.NumVertices(), []int{3, 2}, rng)
	cfg := core.TrainerConfig{EdgeType: 0, HopNums: []int{3, 2}, Batch: 16, NegK: 2, LR: 0.05}
	trn, err := core.NewLinkTrainerOver(NewEnv(c, 1), c, enc, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	return trn, servers
}

// TestPinnedTrainingUnderChurn is the acceptance test for epoch pinning:
// depth-4 pipelined training while goroutines storm ServeUpdate on the
// churn edge type. Every completed batch must report a single pinned epoch
// (Mixed() never true — it is an invariant now, not a detector), the pins
// must actually advance as updates land, and because the storms never touch
// the trained edge type, the loss curve must be bit-identical to a quiesced
// run at the pinned epoch. Run with -race: this is also the concurrency
// test for the multi-version store under a live sampling load.
func TestPinnedTrainingUnderChurn(t *testing.T) {
	const steps = 30
	g := churnTestGraph(200)

	// Reference: identical trainer, no churn.
	quiet, _ := newChurnTrainer(t, g, 42)
	qpl := core.NewPipeline(quiet, core.PipelineConfig{Depth: 4, Workers: 3})
	quiet.SetSource(qpl)
	want, err := quiet.Train(steps)
	if cerr := qpl.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if err != nil {
		t.Fatal(err)
	}

	// Churned: same seed, with update storms on edge type 1 throughout.
	trn, servers := newChurnTrainer(t, g, 42)
	pl := core.NewPipeline(trn, core.PipelineConfig{Depth: 4, Workers: 3})
	trn.SetSource(pl)
	defer pl.Close()

	stop := make(chan struct{})
	var storm sync.WaitGroup
	for w := 0; w < 4; w++ {
		storm.Add(1)
		go func(seed int64) {
			defer storm.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				srv := servers[rng.Intn(len(servers))]
				local := srv.LocalVertices()
				src := local[rng.Intn(len(local))]
				req := UpdateRequest{Add: []RawEdge{{Src: src, Dst: graph.ID(rng.Intn(200)), Type: 1, Weight: 1}}}
				if i%3 == 0 {
					req.Remove = []RawEdge{{Src: src, Dst: graph.ID(rng.Intn(200)), Type: 1}}
				}
				var reply UpdateReply
				if err := srv.ServeUpdate(req, &reply); err != nil {
					t.Errorf("storm update: %v", err)
					return
				}
			}
		}(int64(w + 1))
	}

	var got []float64
	maxStamp := uint64(0)
	var lastPinEpochs []uint64
	for i := 0; i < steps; i++ {
		mb, err := pl.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !mb.Epochs.Seen {
			t.Fatalf("step %d: batch observed no epochs", i)
		}
		if mb.Epochs.Mixed() {
			t.Fatalf("step %d: pinned batch reports mixed epochs %+v", i, mb.Epochs)
		}
		if mb.Pin == nil {
			t.Fatalf("step %d: batch not pinned", i)
		}
		if s := mb.Epochs.Min; s > maxStamp {
			maxStamp = s
		}
		lastPinEpochs = append(lastPinEpochs[:0], mb.Pin.Epochs...)
		l, err := trn.Step(mb)
		if err != nil {
			t.Fatal(err)
		}
		pl.Recycle(mb)
		got = append(got, l)
	}
	close(stop)
	storm.Wait()

	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("step %d: churned loss %g != quiesced loss %g", i, got[i], want[i])
		}
	}
	// The storms ran the whole time: the training must have re-pinned onto
	// post-update snapshots, not ridden epoch 0 throughout.
	if maxStamp < 2 {
		t.Fatalf("pin stamp never advanced past %d under continuous churn", maxStamp)
	}
	advanced := false
	for _, e := range lastPinEpochs {
		if e > 0 {
			advanced = true
		}
	}
	if !advanced {
		t.Fatalf("final batch still pinned the pre-churn snapshot: %v", lastPinEpochs)
	}
}

// TestEvictionRepinRetry: a batch holding a pin whose lease the server lost
// (forced eviction, simulating a restart) must transparently re-pin the
// current snapshot and retry, completing with a single-valued span at the
// new epoch instead of surfacing an error.
func TestEvictionRepinRetry(t *testing.T) {
	s := graph.MustSchema([]string{"v"}, []string{"e"})
	b := graph.NewBuilder(s, true)
	for i := 0; i < 8; i++ {
		b.AddVertex(0, []float64{float64(i)})
	}
	for v := graph.ID(0); v < 8; v++ {
		b.AddEdge(v, (v+1)%8, 0, 1)
		b.AddEdge(v, (v+3)%8, 0, 1)
	}
	g := b.Finalize()

	srv := NewServerRetain(0, 1, 2) // retain only 2 epochs
	for v := 0; v < g.NumVertices(); v++ {
		srv.AddVertex(graph.ID(v), g.VertexAttr(graph.ID(v)))
		ns := g.OutNeighbors(graph.ID(v), 0)
		ws := g.OutWeights(graph.ID(v), 0)
		for i, u := range ns {
			srv.AddEdge(graph.ID(v), u, 0, ws[i])
		}
	}
	srv.Seal()
	a := &partition.Assignment{P: 1, Of: make([]int, g.NumVertices())}
	c := NewClient(a, NewLocalTransport([]*Server{srv}, 0, 0), storage.NoCache{})

	rng := rand.New(rand.NewSource(5))
	cfg := core.TrainerConfig{EdgeType: 0, HopNums: []int{2, 2}, Batch: 8, NegK: 2, LR: 0.05}
	trn, err := core.NewLinkTrainerOver(NewEnv(c, 1), c, &core.Encoder{}, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	src := core.NewSyncSource(trn)

	// Batch 1 pins epoch 0.
	mb, err := src.Next()
	if err != nil {
		t.Fatal(err)
	}
	if mb.Pin == nil || mb.Pin.Epochs[0] != 0 {
		t.Fatalf("first batch pin = %+v, want epoch 0", mb.Pin)
	}
	src.Recycle(mb)
	if srv.Store().Leases(0) == 0 {
		t.Fatal("client lease on epoch 0 not held server-side")
	}

	// Updates land without the client observing them (nothing sampled), so
	// its pin still references epoch 0; then the server loses the lease.
	for i := 0; i < 3; i++ {
		var reply UpdateReply
		if err := srv.ServeUpdate(UpdateRequest{Add: []RawEdge{{Src: graph.ID(i), Dst: graph.ID(i + 4), Type: 0, Weight: 1}}}, &reply); err != nil {
			t.Fatal(err)
		}
	}
	srv.Store().Evict(0)
	if _, err := srv.Store().At(0); !version.IsEvicted(err) {
		t.Fatalf("setup: epoch 0 still readable: %v", err)
	}

	// Batch 2 starts on the dead pin, hits the eviction, and must re-pin
	// the head and complete.
	mb, err = src.Next()
	if err != nil {
		t.Fatalf("batch after eviction failed instead of re-pinning: %v", err)
	}
	if mb.Pin == nil || mb.Pin.Epochs[0] != 3 {
		t.Fatalf("re-pinned batch pin = %+v, want epoch 3", mb.Pin)
	}
	if !mb.Epochs.Seen || mb.Epochs.Mixed() {
		t.Fatalf("re-pinned batch span = %+v, want single-valued", mb.Epochs)
	}
	if mb.Epochs.Min < 2 {
		t.Fatalf("re-pinned batch kept stamp %d", mb.Epochs.Min)
	}
	src.Recycle(mb)
	if srv.Store().Leases(3) == 0 {
		t.Fatal("new pin holds no lease on the head epoch")
	}

	// Session teardown releases the idle pin's lease so long-running
	// servers do not accumulate one permanently pinned epoch per client.
	c.ReleaseIdlePins()
	if n := srv.Store().Leases(3); n != 0 {
		t.Fatalf("%d leases on the head epoch after ReleaseIdlePins", n)
	}
}

// TestServerRestartFutureEpochRepin: a shard restart rebuilds its store at
// epoch 0, so a client pin referencing a higher epoch now points at the
// FUTURE of the fresh store. The retry path must treat that exactly like
// eviction — re-pin the (new) head and complete — and the pin manager must
// accept the shard's lower post-restart head instead of re-leasing forever.
func TestServerRestartFutureEpochRepin(t *testing.T) {
	g := churnTestGraph(60)
	a := &partition.Assignment{P: 1, Of: make([]int, g.NumVertices())}
	build := func() *Server {
		servers := FromGraph(g, a)
		return servers[0]
	}
	srv := build()
	tr := NewLocalTransport([]*Server{srv}, 0, 0)
	c := NewClient(a, tr, storage.NoCache{})
	rng := rand.New(rand.NewSource(5))
	cfg := core.TrainerConfig{EdgeType: 0, HopNums: []int{2, 2}, Batch: 8, NegK: 2, LR: 0.05}
	trn, err := core.NewLinkTrainerOver(NewEnv(c, 1), c, &core.Encoder{}, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	src := core.NewSyncSource(trn)

	next := func() *core.MiniBatch {
		t.Helper()
		mb, err := src.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !mb.Epochs.Seen || mb.Epochs.Mixed() {
			t.Fatalf("batch span = %+v, want single-valued", mb.Epochs)
		}
		return mb
	}
	src.Recycle(next()) // observes head 0
	for i := 0; i < 2; i++ {
		var reply UpdateReply
		if err := srv.ServeUpdate(UpdateRequest{Add: []RawEdge{{Src: graph.ID(i), Dst: graph.ID(i + 1), Type: 0, Weight: 1}}}, &reply); err != nil {
			t.Fatal(err)
		}
	}
	src.Recycle(next()) // still on pin 0, but observes head 2 in replies
	mb := next()        // re-pins at epoch 2
	if mb.Pin.Epochs[0] != 2 {
		t.Fatalf("pre-restart pin = %v, want [2]", mb.Pin.Epochs)
	}
	src.Recycle(mb)
	// Baseline: a steady batch on a fresh pin makes no Lease calls.
	base0, _ := tr.Calls()
	src.Recycle(next())
	base1, _ := tr.Calls()
	steady := base1 - base0

	// Restart: the shard comes back with a fresh store at epoch 0. The
	// client's live pin now references epoch 2 of a store that has never
	// reached it.
	tr.Servers[0] = build()

	mb = next()
	if mb.Pin.Epochs[0] != 0 {
		t.Fatalf("post-restart pin = %v, want the fresh head [0]", mb.Pin.Epochs)
	}
	src.Recycle(mb)
	// The manager accepted the lower head: the following batch reuses the
	// pin and costs exactly the pre-restart steady rate (no lease round).
	local0, _ := tr.Calls()
	src.Recycle(next())
	if local1, _ := tr.Calls(); local1-local0 != steady {
		t.Fatalf("steady post-restart batch cost %d calls, want %d (re-leasing every batch?)", local1-local0, steady)
	}
}

// TestAttrCacheEpochInvalidation: the attribute LRU must converge to the
// rewritten row once an attribute-epoch advance is observed, and must NOT
// flush on edge-only updates.
func TestAttrCacheEpochInvalidation(t *testing.T) {
	g := churnTestGraph(120)
	a, err := (partition.HashPartitioner{}).Partition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	servers := FromGraph(g, a)
	tr := NewLocalTransport(servers, 0, 0)
	c := NewClient(a, tr, storage.NoCache{})
	cache := NewAttrCache(c, 64)

	// Warm vertex 0's row (owned by server 0 under hash partitioning).
	rows, err := cache.Attrs([]graph.ID{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	oldVal := rows[0][0]

	// Edge-only update: epoch advances, attr epoch does not; the cache must
	// stay warm (no flush on the next miss-carrying fetch).
	var reply UpdateReply
	src0 := servers[0].LocalVertices()[0]
	if err := servers[0].ServeUpdate(UpdateRequest{Add: []RawEdge{{Src: src0, Dst: 1, Type: 0, Weight: 1}}}, &reply); err != nil {
		t.Fatal(err)
	}
	if _, err := cache.Attrs([]graph.ID{0, 4}); err != nil { // 4 is a miss on server 0
		t.Fatal(err)
	}
	if cache.Flushes() != 0 {
		t.Fatalf("edge-only update flushed the attr cache (%d flushes)", cache.Flushes())
	}

	// Attribute rewrite on vertex 0: the next fetch that reaches server 0
	// observes the attr-epoch advance, flushes, and subsequent fetches of
	// vertex 0 serve the new row.
	if err := servers[0].ServeUpdate(UpdateRequest{SetAttr: []AttrUpdate{{V: 0, Attr: []float64{4242}}}}, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.AttrsSet != 1 {
		t.Fatalf("attr update reply = %+v", reply)
	}
	if _, err := cache.Attrs([]graph.ID{0, 6}); err != nil { // miss on 6 triggers the fetch
		t.Fatal(err)
	}
	if cache.Flushes() != 1 {
		t.Fatalf("attr rewrite caused %d flushes, want 1", cache.Flushes())
	}
	rows, err = cache.Attrs([]graph.ID{0})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0] != 4242 {
		t.Fatalf("post-invalidation row = %v (stale %v not dropped)", rows[0], oldVal)
	}
}

// TestStreamSourceTrainsOnLiveGraph drives the streaming BatchSource over a
// live cluster: queued update batches apply between training batches, the
// shards' epochs advance, and every batch stays single-epoch.
func TestStreamSourceTrainsOnLiveGraph(t *testing.T) {
	g := churnTestGraph(120)
	trn, servers := newChurnTrainer(t, g, 7)
	feed := NewUpdateStream(NewLocalTransport(servers, 0, 0))
	ss := core.NewStreamSource(trn.Source(), feed, core.StreamConfig{MaxPerTick: 2})
	trn.SetSource(ss)

	// Queue live updates: new training-type edges (the stream changes what
	// is being learned) plus an attribute rewrite.
	for i := 0; i < 6; i++ {
		p := i % len(servers)
		src := servers[p].LocalVertices()[i]
		feed.Push(p, UpdateRequest{Add: []RawEdge{{Src: src, Dst: graph.ID(i), Type: 0, Weight: 1}}})
	}
	feed.Push(0, UpdateRequest{SetAttr: []AttrUpdate{{V: servers[0].LocalVertices()[0], Attr: []float64{1, 2}}}})

	for i := 0; i < 4; i++ {
		mb, err := ss.Next()
		if err != nil {
			t.Fatal(err)
		}
		if mb.Epochs.Mixed() {
			t.Fatalf("streamed batch %d mixed: %+v", i, mb.Epochs)
		}
		ss.Recycle(mb)
	}
	if ss.Applied() != 7 {
		t.Fatalf("applied %d update batches, want 7 (4 ticks x up to 2)", ss.Applied())
	}
	if feed.Pending() != 0 {
		t.Fatalf("%d updates still pending", feed.Pending())
	}
	epochs := servers[0].UpdateEpoch() + servers[1].UpdateEpoch()
	if epochs == 0 {
		t.Fatal("stream applied but no server epoch advanced")
	}
}
