package cluster

import (
	"math/rand"
	"sync"

	"repro/internal/graph"
	"repro/internal/sampling"
)

// The per-vertex ClientSource adapter (one RPC per vertex per hop) is gone:
// Client itself implements the batch-first sampling.Source and
// sampling.BatchSampler contracts, so NEIGHBORHOOD sampling pays at most
// one SampleNeighbors RPC per owning server per hop. This file holds the
// remaining adapter: the trainer environment (core.TrainEnv) that lets
// core.LinkTrainer run its TRAVERSE and NEGATIVE stages against live
// shards.

// Env adapts a Client to the trainer environment seam: positive edges come
// from the distributed TRAVERSE (SampleEdges RPCs), the negative pool is
// merged from per-server destination counts, and the vertex universe is the
// partition assignment's domain. Env is safe for concurrent use.
type Env struct {
	C *Client

	mu  sync.Mutex
	rng *rand.Rand
}

// NewEnv creates a trainer environment over c; seed drives edge-batch
// randomness.
func NewEnv(c *Client, seed int64) *Env {
	return &Env{C: c, rng: rand.New(rand.NewSource(seed))}
}

// SampleEdges draws n positive edges of type t uniformly over the cluster.
func (e *Env) SampleEdges(t graph.EdgeType, n int) ([]graph.Edge, error) {
	e.mu.Lock()
	seed := uint64(e.rng.Int63())
	e.mu.Unlock()
	return e.C.SampleEdges(t, n, seed)
}

// AppendEdges implements the trainer's batch-environment capability
// (core.BatchEnv): the same distributed TRAVERSE draw appended into a
// recycled buffer, reading the pinned snapshot when the batch carries one,
// with each contributing server's reply recorded into span so mini-batches
// are stamped with what their edge batch saw.
func (e *Env) AppendEdges(dst []graph.Edge, t graph.EdgeType, n int, pin *sampling.Pin, span *sampling.EpochSpan) ([]graph.Edge, error) {
	return e.C.AppendSampleEdges(dst, t, n, e.EdgeSeed(), pin, span)
}

// EdgeSeed implements core.SeededBatchEnv: one draw from the sequential
// edge-seed stream. Batch sources draw it exactly once per batch and reuse
// it across retries, so a transient fault that forces a TRAVERSE replay
// consumes no extra stream positions — the property behind bit-identical
// losses under injected faults.
func (e *Env) EdgeSeed() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return uint64(e.rng.Int63())
}

// AppendEdgesSeeded implements core.SeededBatchEnv: AppendEdges with the
// caller-supplied seed instead of a fresh stream draw.
func (e *Env) AppendEdgesSeeded(dst []graph.Edge, t graph.EdgeType, n int, seed uint64, pin *sampling.Pin, span *sampling.EpochSpan) ([]graph.Edge, error) {
	return e.C.AppendSampleEdges(dst, t, n, seed, pin, span)
}

// ObservedEpoch implements core.EpochedEnv: the newest head epoch observed
// on any shard — the staleness clock that triggers negative-pool refreshes.
func (e *Env) ObservedEpoch() uint64 { return e.C.MaxObservedHead() }

// NegativePool returns global negative candidates with in-degree counts.
func (e *Env) NegativePool(t graph.EdgeType) ([]graph.ID, []float64, error) {
	return e.C.NegativePool(t)
}

// NumVertices reports the size of the vertex universe.
func (e *Env) NumVertices() int { return len(e.C.Assign.Of) }
