package cluster

import (
	"repro/internal/graph"
)

// ClientSource adapts a distributed Client to the sampling.Source interface
// so NEIGHBORHOOD sampling (and therefore the whole GNN training loop) can
// run against a live cluster instead of a local graph. Weights are not
// shipped over the wire on this path; neighbor selection is uniform, which
// matches the node-wise samplers of Section 4.1.
type ClientSource struct {
	C *Client
}

// SampleNeighbors implements sampling.Source.
func (s ClientSource) SampleNeighbors(v graph.ID, t graph.EdgeType) ([]graph.ID, []float64, error) {
	ns, err := s.C.Neighbors(v, t)
	return ns, nil, err
}
