package cluster

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/sampling"
	"repro/internal/storage"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	s := graph.MustSchema([]string{"user", "item"}, []string{"click", "buy"})
	b := graph.NewBuilder(s, true)
	// 4 users, 4 items; user u clicks items u and u+1 mod 4, buys item u.
	for i := 0; i < 4; i++ {
		b.AddVertex(0, []float64{float64(i)})
	}
	for i := 0; i < 4; i++ {
		b.AddVertex(1, []float64{float64(100 + i)})
	}
	for u := graph.ID(0); u < 4; u++ {
		b.AddEdge(u, 4+u, 0, 1)
		b.AddEdge(u, 4+(u+1)%4, 0, 1)
		b.AddEdge(u, 4+u, 1, 1)
	}
	return b.Finalize()
}

func setup(t *testing.T, cache storage.NeighborCache) (*Client, *LocalTransport, *graph.Graph) {
	t.Helper()
	g := testGraph(t)
	a, err := partition.HashPartitioner{}.Partition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	servers := FromGraph(g, a)
	tr := NewLocalTransport(servers, 0, 0)
	return NewClient(a, tr, cache), tr, g
}

func TestServerOwnership(t *testing.T) {
	g := testGraph(t)
	a, _ := partition.HashPartitioner{}.Partition(g, 2)
	servers := FromGraph(g, a)
	totalV, totalE := 0, 0
	for _, s := range servers {
		totalV += s.NumLocalVertices()
		totalE += s.NumLocalEdges()
	}
	if totalV != g.NumVertices() {
		t.Fatalf("vertices: %d want %d", totalV, g.NumVertices())
	}
	if totalE != 12 {
		t.Fatalf("edges: %d", totalE)
	}
	// A server must reject vertices it does not own.
	var reply NeighborsReply
	err := servers[0].ServeNeighbors(NeighborsRequest{Vertices: []graph.ID{1}, EdgeType: 0}, &reply)
	if err == nil {
		t.Fatal("server 0 should not own odd vertices under hash partition")
	}
}

func TestClientNeighbors(t *testing.T) {
	c, _, g := setup(t, nil)
	for v := graph.ID(0); v < 4; v++ {
		ns, err := c.Neighbors(v, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := g.OutNeighbors(v, 0)
		if len(ns) != len(want) {
			t.Fatalf("neighbors(%d) = %v want %v", v, ns, want)
		}
	}
}

func TestClientBatchStitching(t *testing.T) {
	c, tr, g := setup(t, nil)
	vs := []graph.ID{0, 1, 2, 3}
	got, err := c.BatchNeighbors(vs, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vs {
		want := g.OutNeighbors(v, 0)
		if len(got[i]) != len(want) {
			t.Fatalf("batch[%d] = %v want %v", i, got[i], want)
		}
		for j := range want {
			if got[i][j] != want[j] {
				t.Fatalf("batch[%d] = %v want %v", i, got[i], want)
			}
		}
	}
	// Sub-batching: 4 vertices over 2 partitions must cost exactly 2 calls,
	// one of them local (home=0).
	local, remote := tr.Calls()
	if local != 1 || remote != 1 {
		t.Fatalf("calls = local %d remote %d, want 1/1", local, remote)
	}
}

func TestClientAttrs(t *testing.T) {
	c, _, g := setup(t, nil)
	attrs, err := c.Attrs([]graph.ID{3, 4, 0})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range []graph.ID{3, 4, 0} {
		want := g.VertexAttr(v)
		if len(attrs[i]) != len(want) || attrs[i][0] != want[0] {
			t.Fatalf("attr(%d) = %v want %v", v, attrs[i], want)
		}
	}
}

func TestClientCacheAvoidsRemoteCalls(t *testing.T) {
	g := testGraph(t)
	a, _ := partition.HashPartitioner{}.Partition(g, 2)
	servers := FromGraph(g, a)
	tr := NewLocalTransport(servers, 0, 0)
	cache := storage.NewLRUNeighborCache(64)
	c := NewClient(a, tr, cache)

	if _, err := c.Neighbors(1, 0); err != nil { // vertex 1 lives on server 1: remote
		t.Fatal(err)
	}
	_, remote1 := tr.Calls()
	if remote1 != 1 {
		t.Fatalf("first access should be remote, calls=%d", remote1)
	}
	if _, err := c.Neighbors(1, 0); err != nil { // now cached
		t.Fatal(err)
	}
	_, remote2 := tr.Calls()
	if remote2 != 1 {
		t.Fatalf("second access should hit cache, remote=%d", remote2)
	}
}

func TestMultiHop(t *testing.T) {
	c, _, _ := setup(t, nil)
	fr, err := c.MultiHop(0, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Hop 1 of user 0 under click: items 4, 5. Items have no out-edges.
	if len(fr[0]) != 2 {
		t.Fatalf("hop1 = %v", fr[0])
	}
	if len(fr[1]) != 0 {
		t.Fatalf("hop2 = %v", fr[1])
	}
}

func TestMultiHopUsesImportanceCache(t *testing.T) {
	g := testGraph(t)
	a, _ := partition.HashPartitioner{}.Partition(g, 2)
	servers := FromGraph(g, a)
	tr := NewLocalTransport(servers, 0, 0)
	// Static cache with every vertex cached at hops 1..2.
	cache := storage.NewImportanceCacheTopFraction(g, 2, 1.0)
	c := NewClient(a, tr, cache)
	fr, err := c.MultiHop(1, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(fr[0]) == 0 {
		t.Fatalf("hop1 empty: %v", fr)
	}
	if _, remote := tr.Calls(); remote != 0 {
		t.Fatalf("fully cached expansion made %d remote calls", remote)
	}
}

func TestBuildServersParallel(t *testing.T) {
	g := testGraph(t)
	vs, es := Extract(g)
	for _, workers := range []int{1, 2, 4} {
		servers, a := BuildServers(vs, es, BuildConfig{
			NumPartitions: 2,
			NumWorkers:    workers,
			NumEdgeTypes:  2,
			Assign:        func(v graph.ID) int { return int(v) % 2 },
		})
		totalE := 0
		for _, s := range servers {
			totalE += s.NumLocalEdges()
		}
		if totalE != len(es) {
			t.Fatalf("workers=%d edges=%d want %d", workers, totalE, len(es))
		}
		if a.P != 2 || len(a.Of) != g.NumVertices() {
			t.Fatalf("assignment: %+v", a)
		}
		// Every edge must be on the server owning its source.
		for _, e := range es {
			srv := servers[int(e.Src)%2]
			ns, _, ok := srv.Neighbors(e.Src, e.Type)
			if !ok {
				t.Fatalf("server missing source %d", e.Src)
			}
			found := false
			for _, u := range ns {
				if u == e.Dst {
					found = true
				}
			}
			if !found {
				t.Fatalf("edge (%d,%d) not found on owner", e.Src, e.Dst)
			}
		}
	}
}

func TestRPCTransport(t *testing.T) {
	g := testGraph(t)
	a, _ := partition.HashPartitioner{}.Partition(g, 2)
	servers := FromGraph(g, a)

	addrs := make([]string, len(servers))
	var rpcServers []*RPCServer
	for i, s := range servers {
		rs, err := ServeRPC(s, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer rs.Close()
		rpcServers = append(rpcServers, rs)
		addrs[i] = rs.Addr()
	}

	tr, err := DialRPC(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	c := NewClient(a, tr, nil)
	ns, err := c.Neighbors(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := g.OutNeighbors(0, 0)
	if len(ns) != len(want) {
		t.Fatalf("rpc neighbors = %v want %v", ns, want)
	}
	attrs, err := c.Attrs([]graph.ID{5})
	if err != nil {
		t.Fatal(err)
	}
	if attrs[0][0] != 101 {
		t.Fatalf("rpc attr = %v", attrs[0])
	}
	// Error path: unknown vertex partition index out of range.
	var reply NeighborsReply
	if err := tr.Neighbors(9, NeighborsRequest{}, &reply); err == nil {
		t.Fatal("expected error for bad partition")
	}
}

func TestLocalTransportErrors(t *testing.T) {
	tr := NewLocalTransport(nil, 0, 0)
	var reply NeighborsReply
	if err := tr.Neighbors(0, NeighborsRequest{}, &reply); err == nil {
		t.Fatal("expected error with no servers")
	}
}

func TestImportanceCacheCutsRemoteTraffic(t *testing.T) {
	// Power-law-ish graph split across 4 partitions: the importance cache
	// should cut remote calls versus no cache for multi-hop expansion.
	rng := rand.New(rand.NewSource(9))
	b := graph.NewBuilder(graph.SimpleSchema(), true)
	const n = 300
	b.AddVertices(0, n)
	targets := []graph.ID{0, 1}
	b.AddEdge(1, 0, 0, 1)
	for v := graph.ID(2); v < n; v++ {
		for e := 0; e < 3; e++ {
			dst := targets[rng.Intn(len(targets))]
			if dst != v {
				b.AddEdge(v, dst, 0, 1)
				targets = append(targets, dst, v)
			}
		}
	}
	g := b.Finalize()
	a, _ := partition.HashPartitioner{}.Partition(g, 4)
	servers := FromGraph(g, a)

	count := func(cache storage.NeighborCache) int64 {
		tr := NewLocalTransport(servers, 0, 0)
		c := NewClient(a, tr, cache)
		for v := graph.ID(0); v < 50; v++ {
			if _, err := c.MultiHop(v, 0, 2); err != nil {
				t.Fatal(err)
			}
		}
		_, remote := tr.Calls()
		return remote
	}

	noCacheRemote := count(storage.NoCache{})
	impRemote := count(storage.NewImportanceCacheTopFraction(g, 2, 0.2))
	if impRemote >= noCacheRemote {
		t.Fatalf("importance cache did not reduce remote calls: %d vs %d", impRemote, noCacheRemote)
	}
}

func TestClientSourceDistributedSampling(t *testing.T) {
	// NEIGHBORHOOD sampling over a live distributed client must produce
	// the same aligned context shape as the local path and populate it
	// with genuine neighbors.
	g := testGraph(t)
	a, _ := partition.HashPartitioner{}.Partition(g, 2)
	servers := FromGraph(g, a)
	tr := NewLocalTransport(servers, 0, 0)
	client := NewClient(a, tr, storage.NewLRUNeighborCache(32))

	nbr := sampling.NewNeighborhood(ClientSource{C: client}, rand.New(rand.NewSource(1)))
	ctx, err := nbr.Sample(0, []graph.ID{0, 1, 2}, []int{3, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(ctx.Layers[1]) != 9 || len(ctx.Layers[2]) != 18 {
		t.Fatalf("layer sizes %d %d", len(ctx.Layers[1]), len(ctx.Layers[2]))
	}
	for i, v := range ctx.Layers[0] {
		for _, u := range ctx.NeighborsOf(0, i) {
			if u != v && !g.HasEdge(v, u, 0) {
				t.Fatalf("%d -> %d is not an edge", v, u)
			}
		}
	}
}
