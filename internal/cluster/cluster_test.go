package cluster

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/sampling"
	"repro/internal/storage"
)

// powerLawTestGraph builds a small preferential-attachment graph whose hubs
// dominate traffic, the regime the importance cache targets.
func powerLawTestGraph(n int) *graph.Graph {
	rng := rand.New(rand.NewSource(9))
	b := graph.NewBuilder(graph.SimpleSchema(), true)
	b.AddVertices(0, n)
	targets := []graph.ID{0, 1}
	b.AddEdge(1, 0, 0, 1)
	for v := graph.ID(2); v < graph.ID(n); v++ {
		for e := 0; e < 3; e++ {
			dst := targets[rng.Intn(len(targets))]
			if dst != v {
				b.AddEdge(v, dst, 0, 1+rng.Float64())
				targets = append(targets, dst, v)
			}
		}
	}
	return b.Finalize()
}

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	s := graph.MustSchema([]string{"user", "item"}, []string{"click", "buy"})
	b := graph.NewBuilder(s, true)
	// 4 users, 4 items; user u clicks items u and u+1 mod 4, buys item u.
	for i := 0; i < 4; i++ {
		b.AddVertex(0, []float64{float64(i)})
	}
	for i := 0; i < 4; i++ {
		b.AddVertex(1, []float64{float64(100 + i)})
	}
	for u := graph.ID(0); u < 4; u++ {
		b.AddEdge(u, 4+u, 0, 1)
		b.AddEdge(u, 4+(u+1)%4, 0, 1)
		b.AddEdge(u, 4+u, 1, 1)
	}
	return b.Finalize()
}

func setup(t *testing.T, cache storage.NeighborCache) (*Client, *LocalTransport, *graph.Graph) {
	t.Helper()
	g := testGraph(t)
	a, err := partition.HashPartitioner{}.Partition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	servers := FromGraph(g, a)
	tr := NewLocalTransport(servers, 0, 0)
	return NewClient(a, tr, cache), tr, g
}

func TestServerOwnership(t *testing.T) {
	g := testGraph(t)
	a, _ := partition.HashPartitioner{}.Partition(g, 2)
	servers := FromGraph(g, a)
	totalV, totalE := 0, 0
	for _, s := range servers {
		totalV += s.NumLocalVertices()
		totalE += s.NumLocalEdges()
	}
	if totalV != g.NumVertices() {
		t.Fatalf("vertices: %d want %d", totalV, g.NumVertices())
	}
	if totalE != 12 {
		t.Fatalf("edges: %d", totalE)
	}
	// A server must reject vertices it does not own.
	var reply NeighborsReply
	err := servers[0].ServeNeighbors(NeighborsRequest{Vertices: []graph.ID{1}, EdgeType: 0}, &reply)
	if err == nil {
		t.Fatal("server 0 should not own odd vertices under hash partition")
	}
}

func TestClientNeighbors(t *testing.T) {
	c, _, g := setup(t, nil)
	for v := graph.ID(0); v < 4; v++ {
		ns, err := c.Neighbors(v, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := g.OutNeighbors(v, 0)
		if len(ns) != len(want) {
			t.Fatalf("neighbors(%d) = %v want %v", v, ns, want)
		}
	}
}

func TestClientBatchStitching(t *testing.T) {
	c, tr, g := setup(t, nil)
	vs := []graph.ID{0, 1, 2, 3}
	got, err := c.BatchNeighbors(vs, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vs {
		want := g.OutNeighbors(v, 0)
		if len(got[i]) != len(want) {
			t.Fatalf("batch[%d] = %v want %v", i, got[i], want)
		}
		for j := range want {
			if got[i][j] != want[j] {
				t.Fatalf("batch[%d] = %v want %v", i, got[i], want)
			}
		}
	}
	// Sub-batching: 4 vertices over 2 partitions must cost exactly 2 calls,
	// one of them local (home=0).
	local, remote := tr.Calls()
	if local != 1 || remote != 1 {
		t.Fatalf("calls = local %d remote %d, want 1/1", local, remote)
	}
}

func TestClientAttrs(t *testing.T) {
	c, _, g := setup(t, nil)
	attrs, err := c.Attrs([]graph.ID{3, 4, 0})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range []graph.ID{3, 4, 0} {
		want := g.VertexAttr(v)
		if len(attrs[i]) != len(want) || attrs[i][0] != want[0] {
			t.Fatalf("attr(%d) = %v want %v", v, attrs[i], want)
		}
	}
}

func TestClientCacheAvoidsRemoteCalls(t *testing.T) {
	g := testGraph(t)
	a, _ := partition.HashPartitioner{}.Partition(g, 2)
	servers := FromGraph(g, a)
	tr := NewLocalTransport(servers, 0, 0)
	cache := storage.NewLRUNeighborCache(64)
	c := NewClient(a, tr, cache)

	if _, err := c.Neighbors(1, 0); err != nil { // vertex 1 lives on server 1: remote
		t.Fatal(err)
	}
	_, remote1 := tr.Calls()
	if remote1 != 1 {
		t.Fatalf("first access should be remote, calls=%d", remote1)
	}
	if _, err := c.Neighbors(1, 0); err != nil { // now cached
		t.Fatal(err)
	}
	_, remote2 := tr.Calls()
	if remote2 != 1 {
		t.Fatalf("second access should hit cache, remote=%d", remote2)
	}
}

func TestMultiHop(t *testing.T) {
	c, _, _ := setup(t, nil)
	fr, err := c.MultiHop(0, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Hop 1 of user 0 under click: items 4, 5. Items have no out-edges.
	if len(fr[0]) != 2 {
		t.Fatalf("hop1 = %v", fr[0])
	}
	if len(fr[1]) != 0 {
		t.Fatalf("hop2 = %v", fr[1])
	}
}

func TestMultiHopUsesImportanceCache(t *testing.T) {
	g := testGraph(t)
	a, _ := partition.HashPartitioner{}.Partition(g, 2)
	servers := FromGraph(g, a)
	tr := NewLocalTransport(servers, 0, 0)
	// Static cache with every vertex cached at hops 1..2.
	cache := storage.NewImportanceCacheTopFraction(g, 2, 1.0)
	c := NewClient(a, tr, cache)
	fr, err := c.MultiHop(1, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(fr[0]) == 0 {
		t.Fatalf("hop1 empty: %v", fr)
	}
	if _, remote := tr.Calls(); remote != 0 {
		t.Fatalf("fully cached expansion made %d remote calls", remote)
	}
}

func TestBuildServersParallel(t *testing.T) {
	g := testGraph(t)
	vs, es := Extract(g)
	for _, workers := range []int{1, 2, 4} {
		servers, a := BuildServers(vs, es, BuildConfig{
			NumPartitions: 2,
			NumWorkers:    workers,
			NumEdgeTypes:  2,
			Assign:        func(v graph.ID) int { return int(v) % 2 },
		})
		totalE := 0
		for _, s := range servers {
			totalE += s.NumLocalEdges()
		}
		if totalE != len(es) {
			t.Fatalf("workers=%d edges=%d want %d", workers, totalE, len(es))
		}
		if a.P != 2 || len(a.Of) != g.NumVertices() {
			t.Fatalf("assignment: %+v", a)
		}
		// Every edge must be on the server owning its source.
		for _, e := range es {
			srv := servers[int(e.Src)%2]
			ns, _, ok := srv.Neighbors(e.Src, e.Type)
			if !ok {
				t.Fatalf("server missing source %d", e.Src)
			}
			found := false
			for _, u := range ns {
				if u == e.Dst {
					found = true
				}
			}
			if !found {
				t.Fatalf("edge (%d,%d) not found on owner", e.Src, e.Dst)
			}
		}
	}
}

func TestRPCTransport(t *testing.T) {
	g := testGraph(t)
	a, _ := partition.HashPartitioner{}.Partition(g, 2)
	servers := FromGraph(g, a)

	addrs := make([]string, len(servers))
	var rpcServers []*RPCServer
	for i, s := range servers {
		rs, err := ServeRPC(s, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer rs.Close()
		rpcServers = append(rpcServers, rs)
		addrs[i] = rs.Addr()
	}

	tr, err := DialRPC(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	c := NewClient(a, tr, nil)
	ns, err := c.Neighbors(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := g.OutNeighbors(0, 0)
	if len(ns) != len(want) {
		t.Fatalf("rpc neighbors = %v want %v", ns, want)
	}
	attrs, err := c.Attrs([]graph.ID{5})
	if err != nil {
		t.Fatal(err)
	}
	if attrs[0][0] != 101 {
		t.Fatalf("rpc attr = %v", attrs[0])
	}
	// Error path: unknown vertex partition index out of range.
	var reply NeighborsReply
	if err := tr.Neighbors(9, NeighborsRequest{}, &reply); err == nil {
		t.Fatal("expected error for bad partition")
	}
}

func TestLocalTransportErrors(t *testing.T) {
	tr := NewLocalTransport(nil, 0, 0)
	var reply NeighborsReply
	if err := tr.Neighbors(0, NeighborsRequest{}, &reply); err == nil {
		t.Fatal("expected error with no servers")
	}
}

func TestImportanceCacheCutsRemoteTraffic(t *testing.T) {
	// Power-law-ish graph split across 4 partitions: the importance cache
	// should cut remote calls versus no cache for multi-hop expansion.
	g := powerLawTestGraph(300)
	a, _ := partition.HashPartitioner{}.Partition(g, 4)
	servers := FromGraph(g, a)

	count := func(cache storage.NeighborCache) int64 {
		tr := NewLocalTransport(servers, 0, 0)
		c := NewClient(a, tr, cache)
		for v := graph.ID(0); v < 50; v++ {
			if _, err := c.MultiHop(v, 0, 2); err != nil {
				t.Fatal(err)
			}
		}
		_, remote := tr.Calls()
		return remote
	}

	noCacheRemote := count(storage.NoCache{})
	impRemote := count(storage.NewImportanceCacheTopFraction(g, 2, 0.2))
	if impRemote >= noCacheRemote {
		t.Fatalf("importance cache did not reduce remote calls: %d vs %d", impRemote, noCacheRemote)
	}
}

func TestClientBatchedDistributedSampling(t *testing.T) {
	// NEIGHBORHOOD sampling over a live distributed client must produce
	// the same aligned context shape as the local path, populate it with
	// genuine neighbors, and — the point of the batch-first Source — cost
	// O(servers x hops) RPCs per mini-batch, not O(vertices).
	g := testGraph(t)
	a, _ := partition.HashPartitioner{}.Partition(g, 2)
	servers := FromGraph(g, a)
	tr := NewLocalTransport(servers, 0, 0)
	client := NewClient(a, tr, storage.NewLRUNeighborCache(32))

	nbr := sampling.NewNeighborhood(client, rand.New(rand.NewSource(1)))
	ctx, err := nbr.Sample(0, []graph.ID{0, 1, 2}, []int{3, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(ctx.Layers[1]) != 9 || len(ctx.Layers[2]) != 18 {
		t.Fatalf("layer sizes %d %d", len(ctx.Layers[1]), len(ctx.Layers[2]))
	}
	for i, v := range ctx.Layers[0] {
		for _, u := range ctx.NeighborsOf(0, i) {
			if u != v && !g.HasEdge(v, u, 0) {
				t.Fatalf("%d -> %d is not an edge", v, u)
			}
		}
	}
	// 3 + 9 = 12 sampled vertices over 2 hops: the per-vertex path paid one
	// RPC each (minus cache hits); the batched path pays at most one
	// SampleNeighbors RPC per owning server per hop.
	local, remote := tr.Calls()
	if calls := local + remote; calls > int64(len(servers)*len(ctx.HopNums)) {
		t.Fatalf("mini-batch cost %d RPCs, want <= servers*hops = %d", calls, len(servers)*len(ctx.HopNums))
	}
}

// weightedStarGraph builds a graph whose vertex 0 has out-neighbors 1..n
// with the given weights.
func weightedStarGraph(weights []float64) *graph.Graph {
	b := graph.NewBuilder(graph.SimpleSchema(), true)
	b.AddVertices(0, len(weights)+1)
	for i, w := range weights {
		b.AddEdge(0, graph.ID(i+1), 0, w)
	}
	return b.Finalize()
}

// TestRemoteWeightedSampleChiSquare verifies that server-side weighted
// draws (SampleNeighbors RPC through the per-server AliasIndex) follow the
// edge weights with the same statistics as the local engine: chi-square
// goodness-of-fit on 60k draws, p=0.001 critical value, deterministic
// seeds. The weights and bound match TestAliasIndexChiSquare in
// internal/sampling.
func TestRemoteWeightedSampleChiSquare(t *testing.T) {
	weights := []float64{1, 2, 3, 4, 10}
	g := weightedStarGraph(weights)
	a, _ := partition.HashPartitioner{}.Partition(g, 2)
	servers := FromGraph(g, a)
	tr := NewLocalTransport(servers, 0, 0)
	client := NewClient(a, tr, nil)

	nbr := sampling.NewNeighborhood(client, rand.New(rand.NewSource(1)))
	nbr.ByWeight = true
	const draws = 60000
	var ctx sampling.Context
	if err := nbr.SampleInto(&ctx, 0, []graph.ID{0}, []int{draws}, sampling.NewRng(12345)); err != nil {
		t.Fatal(err)
	}
	counts := make([]int, len(weights))
	for _, u := range ctx.Layers[1] {
		if u < 1 || int(u) > len(weights) {
			t.Fatalf("draw out of range: %d", u)
		}
		counts[u-1]++
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	chi2 := 0.0
	for i, c := range counts {
		exp := float64(draws) * weights[i] / total
		chi2 += (float64(c) - exp) * (float64(c) - exp) / exp
	}
	// Critical value of chi-square with df=4 at p=0.001.
	if chi2 > 18.47 {
		t.Fatalf("chi-square = %.2f > 18.47; counts = %v", chi2, counts)
	}
	// The star fits on one server: the whole batch must cost one RPC.
	if local, remote := tr.Calls(); local+remote != 1 {
		t.Fatalf("weighted draw cost %d RPCs, want 1", local+remote)
	}
}

func TestClientNegativePoolMatchesInDegrees(t *testing.T) {
	g := testGraph(t)
	a, _ := partition.HashPartitioner{}.Partition(g, 2)
	servers := FromGraph(g, a)
	client := NewClient(a, NewLocalTransport(servers, 0, 0), nil)

	cands, counts, err := client.NegativePool(0)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[graph.ID]float64)
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.InDegree(graph.ID(v), 0); d > 0 {
			want[graph.ID(v)] = float64(d)
		}
	}
	if len(cands) != len(want) {
		t.Fatalf("pool size %d, want %d", len(cands), len(want))
	}
	for i, v := range cands {
		if counts[i] != want[v] {
			t.Fatalf("count(%d) = %v, want %v", v, counts[i], want[v])
		}
	}
}

func TestClientSampleEdges(t *testing.T) {
	g := testGraph(t)
	a, _ := partition.HashPartitioner{}.Partition(g, 2)
	servers := FromGraph(g, a)
	tr := NewLocalTransport(servers, 0, 0)
	client := NewClient(a, tr, nil)

	edges, err := client.SampleEdges(0, 64, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 64 {
		t.Fatalf("got %d edges, want 64", len(edges))
	}
	for _, e := range edges {
		if !g.HasEdge(e.Src, e.Dst, 0) {
			t.Fatalf("sampled non-edge (%d,%d)", e.Src, e.Dst)
		}
	}
	// Cost: one Stats RPC per server (first call only) plus at most one
	// SampleEdges RPC per contributing server.
	local, remote := tr.Calls()
	if calls := local + remote; calls > 2*int64(len(servers)) {
		t.Fatalf("edge batch cost %d RPCs, want <= %d", calls, 2*len(servers))
	}
	// The sparser "buy" type still fills a batch from its 4 edges.
	if buys, err := client.SampleEdges(1, 8, 7); err != nil || len(buys) != 8 {
		t.Fatalf("buy edges: %d err %v", len(buys), err)
	}
}

// TestSampleBatchWarmsReplacingCache: low-degree uniform vertices come back
// from SampleNeighbors as full short lists, so an LRU cache fills up under a
// pure training workload and the next identical hop costs zero RPCs.
func TestSampleBatchWarmsReplacingCache(t *testing.T) {
	g := testGraph(t) // every user has click-degree 2 <= width 3
	a, _ := partition.HashPartitioner{}.Partition(g, 2)
	servers := FromGraph(g, a)
	tr := NewLocalTransport(servers, 0, 0)
	cache := storage.NewLRUNeighborCache(64)
	client := NewClient(a, tr, cache)

	dst := make([]graph.ID, 4*3)
	batch := []graph.ID{0, 1, 2, 3}
	if err := client.SampleBatch(dst, batch, 0, 3, false, 7); err != nil {
		t.Fatal(err)
	}
	if cache.CachedVertices() == 0 {
		t.Fatal("training hop did not warm the LRU cache")
	}
	tr.ResetCalls()
	if err := client.SampleBatch(dst, batch, 0, 3, false, 8); err != nil {
		t.Fatal(err)
	}
	if local, remote := tr.Calls(); local+remote != 0 {
		t.Fatalf("fully cached hop cost %d RPCs", local+remote)
	}
	for i, v := range batch {
		for _, u := range dst[i*3 : (i+1)*3] {
			if !g.HasEdge(v, u, 0) {
				t.Fatalf("%d -> %d is not an edge", v, u)
			}
		}
	}
}

// TestCacheKeyedByEdgeType: warming the cache with one edge type's
// neighbor lists must never serve them to a query about another type
// (regression: cache keys once omitted the edge type).
func TestCacheKeyedByEdgeType(t *testing.T) {
	g := testGraph(t) // click (0) and buy (1) edges from every user
	a, _ := partition.HashPartitioner{}.Partition(g, 2)
	servers := FromGraph(g, a)
	client := NewClient(a, NewLocalTransport(servers, 0, 0), storage.NewLRUNeighborCache(64))

	dst := make([]graph.ID, 4)
	if err := client.SampleBatch(dst, []graph.ID{0}, 0, 4, false, 7); err != nil {
		t.Fatal(err)
	}
	if err := client.SampleBatch(dst, []graph.ID{0}, 1, 4, false, 7); err != nil {
		t.Fatal(err)
	}
	for _, u := range dst {
		if !g.HasEdge(0, u, 1) {
			t.Fatalf("0 -> %d is not a buy edge (cross-type cache pollution)", u)
		}
	}
	// The static importance cache must be type-keyed too.
	imp := storage.NewImportanceCacheTopFraction(g, 2, 1.0)
	for v := graph.ID(0); v < 4; v++ {
		for et := graph.EdgeType(0); et < 2; et++ {
			ns, ok := imp.Get(v, et, 1, 0)
			if !ok {
				t.Fatalf("vertex %d type %d not cached", v, et)
			}
			want := g.OutNeighbors(v, et)
			if len(ns) != len(want) {
				t.Fatalf("cached hop1(%d, type %d) = %v, want %v", v, et, ns, want)
			}
		}
	}
}

// TestSampleEdgesSeesDynamicInserts: cached zero edge counters are
// re-confirmed against live servers, so edges streamed in after the first
// (empty) TRAVERSE become visible without rebuilding the client.
func TestSampleEdgesSeesDynamicInserts(t *testing.T) {
	s := graph.MustSchema([]string{"v"}, []string{"click", "late"})
	b := graph.NewBuilder(s, true)
	b.AddVertices(0, 4)
	b.AddEdge(0, 1, 0, 1) // type "late" (1) starts empty
	g := b.Finalize()
	a, _ := partition.HashPartitioner{}.Partition(g, 2)
	servers := FromGraph(g, a)
	client := NewClient(a, NewLocalTransport(servers, 0, 0), nil)

	if edges, err := client.SampleEdges(1, 4, 3); err != nil || len(edges) != 0 {
		t.Fatalf("empty type: %d edges, err %v", len(edges), err)
	}
	var reply UpdateReply
	if err := servers[0].ServeUpdate(UpdateRequest{Add: []RawEdge{{Src: 0, Dst: 2, Type: 1, Weight: 1}}}, &reply); err != nil {
		t.Fatal(err)
	}
	edges, err := client.SampleEdges(1, 4, 3)
	if err != nil || len(edges) != 4 {
		t.Fatalf("after insert: %d edges, err %v", len(edges), err)
	}
	for _, e := range edges {
		if e.Src != 0 || e.Dst != 2 {
			t.Fatalf("unexpected edge (%d,%d)", e.Src, e.Dst)
		}
	}
}

// TestClientConcurrentSharedCache shares one Client (and one static
// importance cache) across goroutines mixing batched sampling, neighbor
// fetches and multi-hop expansion; run with -race to validate the
// concurrency contract of the batched client.
func TestClientConcurrentSharedCache(t *testing.T) {
	g := powerLawTestGraph(300)
	a, _ := partition.HashPartitioner{}.Partition(g, 4)
	servers := FromGraph(g, a)
	tr := NewLocalTransport(servers, 0, 0)
	client := NewClient(a, tr, storage.NewImportanceCacheTopFraction(g, 2, 0.3))
	nbr := sampling.NewNeighborhood(client, rand.New(rand.NewSource(1)))
	wNbr := sampling.NewNeighborhood(client, rand.New(rand.NewSource(2)))
	wNbr.ByWeight = true

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			var ctx sampling.Context
			rng := sampling.NewRng(seed)
			batch := []graph.ID{0, 1, graph.ID(seed % 300), graph.ID((seed * 7) % 300)}
			for i := 0; i < 30; i++ {
				if err := nbr.SampleInto(&ctx, 0, batch, []int{4, 2}, rng); err != nil {
					t.Errorf("SampleInto: %v", err)
					return
				}
				if err := wNbr.SampleInto(&ctx, 0, batch, []int{3}, rng); err != nil {
					t.Errorf("weighted SampleInto: %v", err)
					return
				}
				if _, err := client.MultiHop(batch[2], 0, 2); err != nil {
					t.Errorf("MultiHop: %v", err)
					return
				}
				if _, err := client.SampleEdges(0, 16, rng.Uint64()); err != nil {
					t.Errorf("SampleEdges: %v", err)
					return
				}
			}
		}(uint64(w + 1))
	}
	wg.Wait()
}
