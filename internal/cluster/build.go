package cluster

import (
	"runtime"
	"sync"

	"repro/internal/graph"
	"repro/internal/partition"
)

// This file implements the parallel graph-building pipeline measured in
// Figure 7: raw edges are assigned to partitions by the ASSIGN function
// (Algorithm 2 lines 1-4) and loaded into graph servers by a configurable
// number of workers. Build time should fall as workers are added, and even
// large graphs build in minutes rather than the hours PowerGraph needs.

// RawEdge is an unloaded edge record as it would arrive from a file system.
type RawEdge struct {
	Src, Dst graph.ID
	Type     graph.EdgeType
	Weight   float64
}

// RawVertex is an unloaded vertex record.
type RawVertex struct {
	ID   graph.ID
	Type graph.VertexType
	Attr []float64
}

// BuildConfig configures the pipeline.
type BuildConfig struct {
	NumPartitions int
	NumWorkers    int // parallel loader goroutines; <=0 means GOMAXPROCS
	NumEdgeTypes  int
	// Assign maps a source vertex to its partition (the ASSIGN function).
	Assign func(src graph.ID) int
	// Schema, when set, is served to bootstrapping workers; nil serves
	// generated type names.
	Schema *graph.Schema
}

// BuildServers runs the load pipeline: vertices and edges are sharded by
// Assign and ingested by NumWorkers parallel loaders into per-partition
// servers. It returns the sealed servers and a vertex assignment usable by
// clients.
func BuildServers(vertices []RawVertex, edges []RawEdge, cfg BuildConfig) ([]*Server, *partition.Assignment) {
	p := cfg.NumPartitions
	workers := cfg.NumWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	servers := make([]*Server, p)
	for i := range servers {
		servers[i] = NewServer(i, cfg.NumEdgeTypes)
	}

	// Shard records by destination partition. Sharding is the sequential
	// ASSIGN pass; loading is the parallel part.
	vShards := make([][]RawVertex, p)
	for _, v := range vertices {
		q := cfg.Assign(v.ID)
		vShards[q] = append(vShards[q], v)
	}
	eShards := make([][]RawEdge, p)
	for _, e := range edges {
		q := cfg.Assign(e.Src)
		eShards[q] = append(eShards[q], e)
	}

	// Parallel load. Each shard is owned by exactly one loader task, so
	// server mutation needs no cross-task coordination beyond the server's
	// own lock (kept for the dynamic-update path).
	type task struct{ part int }
	tasks := make(chan task, p)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for tk := range tasks {
				s := servers[tk.part]
				for _, v := range vShards[tk.part] {
					s.AddVertex(v.ID, v.Attr)
				}
				for _, e := range eShards[tk.part] {
					s.AddEdge(e.Src, e.Dst, e.Type, e.Weight)
				}
				s.Seal()
			}
		}()
	}
	for q := 0; q < p; q++ {
		tasks <- task{q}
	}
	close(tasks)
	wg.Wait()

	// Derive the assignment for client routing.
	maxID := graph.ID(-1)
	for _, v := range vertices {
		if v.ID > maxID {
			maxID = v.ID
		}
	}
	of := make([]int, maxID+1)
	for _, v := range vertices {
		of[v.ID] = cfg.Assign(v.ID)
	}
	assign := &partition.Assignment{P: p, Of: of}
	for _, s := range servers {
		s.SetBootstrap(assign, cfg.Schema)
	}
	return servers, assign
}

// Extract flattens a finalized graph into raw vertex and edge records, as a
// stand-in for reading source files; benches use it to feed BuildServers.
func Extract(g *graph.Graph) ([]RawVertex, []RawEdge) {
	vs := make([]RawVertex, g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		vs[v] = RawVertex{ID: graph.ID(v), Type: g.VertexType(graph.ID(v)), Attr: g.VertexAttr(graph.ID(v))}
	}
	var es []RawEdge
	for t := 0; t < g.Schema().NumEdgeTypes(); t++ {
		g.EdgesOfType(graph.EdgeType(t), func(src, dst graph.ID, w float64) bool {
			es = append(es, RawEdge{Src: src, Dst: dst, Type: graph.EdgeType(t), Weight: w})
			return true
		})
	}
	return vs, es
}

// FromGraph builds servers directly from a finalized graph using a vertex
// assignment, for tests and the Figure 9 cache benchmarks.
func FromGraph(g *graph.Graph, a *partition.Assignment) []*Server {
	servers := make([]*Server, a.P)
	for i := range servers {
		servers[i] = NewServer(i, g.Schema().NumEdgeTypes())
	}
	for v := 0; v < g.NumVertices(); v++ {
		vid := graph.ID(v)
		s := servers[a.Part(vid)]
		s.AddVertex(vid, g.VertexAttr(vid))
		for t := 0; t < g.Schema().NumEdgeTypes(); t++ {
			et := graph.EdgeType(t)
			ns := g.OutNeighbors(vid, et)
			ws := g.OutWeights(vid, et)
			for i, u := range ns {
				s.AddEdge(vid, u, et, ws[i])
			}
		}
	}
	for _, s := range servers {
		s.Seal()
		s.SetBootstrap(a, g.Schema())
	}
	return servers
}
