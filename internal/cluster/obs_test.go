package cluster

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/sampling"
	"repro/internal/storage"
)

// TestHopMetrics asserts the per-(edge type, hop) sampling lanes: expansions
// driven through a hop-tagged epoch view land in their hop's lane, direct
// calls land in hop 0, and the lanes surface both through Metrics() and
// through a registered obs snapshot.
func TestHopMetrics(t *testing.T) {
	g := churnTestGraph(120)
	a, err := (partition.HashPartitioner{}).Partition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	servers := FromGraph(g, a)
	c := NewClient(a, NewLocalTransport(servers, 0, 0), storage.NewLRUNeighborCache(64))

	// A Neighborhood over the client's epoch view tags each hop of the
	// expansion (mirroring how the trainer's batch sources sample).
	view := c.EpochView()
	nbr := &sampling.Neighborhood{Src: view}
	var ctx sampling.Context
	rng := sampling.NewRng(7)
	seeds := []graph.ID{0, 1, 2, 3, 4, 5, 6, 7}
	for i := 0; i < 3; i++ {
		if err := nbr.SampleInto(&ctx, 0, seeds, []int{4, 3}, rng); err != nil {
			t.Fatal(err)
		}
	}
	// A direct batch call, outside any hop loop, lands in hop 0.
	dst := make([]graph.ID, len(seeds)*3)
	if err := c.SampleBatch(dst, seeds, 0, 3, false, 99); err != nil {
		t.Fatal(err)
	}

	m := c.Metrics()
	for _, lane := range []string{"t0.h0", "t0.h1", "t0.h2"} {
		hm, ok := m.Hops[lane]
		if !ok || hm.Calls == 0 {
			t.Fatalf("lane %s missing or empty: %+v", lane, m.Hops)
		}
		if hm.Slots == 0 || hm.Time <= 0 {
			t.Fatalf("lane %s has no slots/time: %+v", lane, hm)
		}
	}
	if h1 := m.Hops["t0.h1"]; h1.Calls != 3 {
		t.Fatalf("hop-1 calls = %d, want 3 (one per SampleInto)", h1.Calls)
	}
	// The LRU cache warms up across the three identical expansions, so later
	// rounds must have recorded hits in the per-hop lanes.
	totalHits := int64(0)
	for _, hm := range m.Hops {
		totalHits += hm.CacheHits
	}
	if totalHits == 0 {
		t.Fatal("no per-hop cache hits recorded over a warming LRU")
	}
	if s := m.String(); !strings.Contains(s, "t0.h1") {
		t.Fatalf("Metrics.String does not print sampling lanes:\n%s", s)
	}

	// The same lanes must appear in a registered snapshot, as dynamic
	// collector series, alongside the per-method latency histograms.
	reg := obs.NewRegistry()
	c.RegisterObs(reg)
	snap := reg.Snapshot()
	for _, name := range []string{
		"cluster.client.sample.t0.h1.calls",
		"cluster.client.sample.t0.h1.slots",
		"cluster.client.sample.t0.h2.nanos",
	} {
		if snap.Counters[name] == 0 {
			t.Fatalf("snapshot series %s missing or zero; counters: %v", name, snap.Counters)
		}
	}
	hs, ok := snap.Histograms["cluster.client.rpc.SampleNeighbors.latency"]
	if !ok || hs.Count == 0 {
		t.Fatalf("SampleNeighbors latency histogram missing or empty: %+v", snap.Histograms)
	}
	if hs.P99 < hs.P50 || hs.Max < hs.P50 {
		t.Fatalf("latency quantiles inconsistent: %+v", hs)
	}
}

// TestServerRegisterObs asserts the serve-side instruments: handler latency
// histograms fill as RPCs arrive and the snapshot-store gauges track epochs.
func TestServerRegisterObs(t *testing.T) {
	g := churnTestGraph(80)
	a, err := (partition.HashPartitioner{}).Partition(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv := FromGraph(g, a)[0]
	reg := obs.NewRegistry()
	srv.RegisterObs(reg)

	var nr NeighborsReply
	if err := srv.ServeNeighbors(NeighborsRequest{Vertices: []graph.ID{0, 1, 2}, EdgeType: 0}, &nr); err != nil {
		t.Fatal(err)
	}
	var ur UpdateReply
	req := UpdateRequest{Add: []RawEdge{{Src: 0, Dst: 5, Type: 0, Weight: 1}}}
	if err := srv.ServeUpdate(req, &ur); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if h := snap.Histograms["cluster.server.0.rpc.Neighbors.latency"]; h.Count == 0 {
		t.Fatalf("Neighbors latency histogram empty: %+v", snap.Histograms)
	}
	if h := snap.Histograms["cluster.server.0.rpc.Update.latency"]; h.Count != 1 {
		t.Fatalf("Update latency count = %d, want 1", h.Count)
	}
	if snap.Counters["cluster.server.0.updates.applied_ops"] != 1 {
		t.Fatalf("applied_ops = %d, want 1", snap.Counters["cluster.server.0.updates.applied_ops"])
	}
	if snap.Gauges["cluster.server.0.epoch.head"] != int64(ur.Epoch) {
		t.Fatalf("epoch.head gauge = %d, want %d", snap.Gauges["cluster.server.0.epoch.head"], ur.Epoch)
	}
}
