package cluster

import (
	"sync"

	"repro/internal/graph"
	"repro/internal/storage"
)

// AttrFetcher fetches attribute rows for a batch of vertices; Client
// implements it over Attrs RPCs and AttrCache decorates it with a
// client-side LRU.
type AttrFetcher interface {
	Attrs(vs []graph.ID) ([][]float64, error)
}

// AttrCache fronts a Client's attribute fetches with a mutex-guarded LRU
// over hot vertices. Mini-batches over power-law graphs repeat the same hub
// vertices in every hop-0 feature lookup, so without a cache each encode
// pays a full Attrs RPC round; with it only cold vertices cross the wire.
// Attribute rows are treated as immutable once fetched (servers do not
// mutate attributes in place today); a future attribute-update path must
// invalidate by epoch.
//
// AttrCache is safe for concurrent use — the prefetching pipeline's
// workers share one.
type AttrCache struct {
	C *Client

	mu  sync.Mutex
	lru *storage.LRU
}

// NewAttrCache creates an attribute LRU over c holding at most capacity
// rows.
func NewAttrCache(c *Client, capacity int) *AttrCache {
	return &AttrCache{C: c, lru: storage.NewLRU(capacity)}
}

// Attrs implements AttrFetcher: cached rows are served locally, the misses
// are deduplicated and fetched through the client (one Attrs RPC per owning
// server), then admitted.
func (a *AttrCache) Attrs(vs []graph.ID) ([][]float64, error) {
	out := make([][]float64, len(vs))
	var missing []graph.ID
	missIdx := make(map[graph.ID][]int)
	a.mu.Lock()
	for i, v := range vs {
		if idxs, seen := missIdx[v]; seen {
			missIdx[v] = append(idxs, i)
			continue
		}
		if row, ok := a.lru.Get(int64(v)); ok {
			out[i] = row.([]float64)
			continue
		}
		missIdx[v] = []int{i}
		missing = append(missing, v)
	}
	a.mu.Unlock()
	if len(missing) == 0 {
		return out, nil
	}
	rows, err := a.C.Attrs(missing)
	if err != nil {
		return nil, err
	}
	a.mu.Lock()
	for j, v := range missing {
		a.lru.Put(int64(v), rows[j])
	}
	a.mu.Unlock()
	for j, v := range missing {
		for _, i := range missIdx[v] {
			out[i] = rows[j]
		}
	}
	return out, nil
}

// HitRate reports the cache's cumulative hit rate.
func (a *AttrCache) HitRate() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lru.HitRate()
}

// Len reports how many rows are cached.
func (a *AttrCache) Len() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lru.Len()
}
