package cluster

import (
	"sync"

	"repro/internal/graph"
	"repro/internal/sampling"
	"repro/internal/storage"
)

// AttrFetcher fetches attribute rows for a batch of vertices, optionally at
// a pinned snapshot; Client implements it over Attrs RPCs and AttrCache
// decorates it with a client-side LRU.
type AttrFetcher interface {
	Attrs(vs []graph.ID) ([][]float64, error)
	AttrsAt(vs []graph.ID, pin *sampling.Pin) ([][]float64, error)
}

// AttrCache fronts a Client's attribute fetches with a mutex-guarded LRU
// over hot vertices. Mini-batches over power-law graphs repeat the same hub
// vertices in every hop-0 feature lookup, so without a cache each encode
// pays a full Attrs RPC round; with it only cold vertices cross the wire.
//
// Invalidation is by attribute epoch: every reply from a shard — sampling
// replies included, so even a fully-hot cache that issues no Attrs RPCs of
// its own keeps observing — carries the shard's newest attribute-rewriting
// epoch (AttrHead), and when it advances past what the cache has seen, the
// cache flushes before serving — cached rows therefore never outlive an
// observed attribute update. Admissions are version-gated on the served
// rows' AttrEpoch, so a concurrent fetch that raced a flush cannot re-admit
// rows from before it. Edge-only updates do not advance AttrHead and leave
// the cache warm. The flush is cache-wide (coarse but safe); per-row
// invalidation would need servers to ship touched-vertex lists. Under
// pinned fetches the cache may still serve a row fetched at a newer
// attribute epoch than the pin (rows are not version-keyed); strict
// per-pin attribute isolation requires AttrCache disabled.
//
// AttrCache is safe for concurrent use — the prefetching pipeline's
// workers share one.
type AttrCache struct {
	C *Client

	mu       sync.Mutex
	lru      *storage.LRU
	attrSeen map[int]uint64 // newest AttrEpoch observed per partition
	flushes  int
}

// NewAttrCache creates an attribute LRU over c holding at most capacity
// rows.
func NewAttrCache(c *Client, capacity int) *AttrCache {
	return &AttrCache{C: c, lru: storage.NewLRU(capacity), attrSeen: make(map[int]uint64)}
}

// Attrs implements AttrFetcher at the head epoch.
func (a *AttrCache) Attrs(vs []graph.ID) ([][]float64, error) {
	return a.AttrsAt(vs, nil)
}

// AttrsAt implements AttrFetcher: cached rows are served locally, the
// misses are deduplicated and fetched through the client (one Attrs RPC per
// owning server), then admitted — after any attribute-epoch advance flushed
// the stale generation.
func (a *AttrCache) AttrsAt(vs []graph.ID, pin *sampling.Pin) ([][]float64, error) {
	out := make([][]float64, len(vs))
	var missing []graph.ID
	missIdx := make(map[graph.ID][]int)
	a.mu.Lock()
	// Fold in the attr-head watermarks the client observed on ANY reply
	// since our last call; an advance flushes before we serve hits, so a
	// hot cache cannot ride out an attribute update.
	entryAdvanced := false
	for part := range a.C.pins.attrHeads {
		if ah := a.C.pins.attrHeads[part].Load(); ah > a.attrSeen[part] {
			a.attrSeen[part] = ah
			entryAdvanced = true
		}
	}
	if entryAdvanced {
		a.lru.Flush()
		a.flushes++
	}
	for i, v := range vs {
		if idxs, seen := missIdx[v]; seen {
			missIdx[v] = append(idxs, i)
			continue
		}
		if row, ok := a.lru.Get(int64(v)); ok {
			out[i] = row.([]float64)
			continue
		}
		missIdx[v] = []int{i}
		missing = append(missing, v)
	}
	a.mu.Unlock()
	if len(missing) == 0 {
		return out, nil
	}
	// replyEpochs records the attr epoch each partition served THIS call;
	// the note callback runs sequentially on this goroutine.
	replyEpochs := make(map[int]uint64)
	rows, err := a.C.attrsObserve(missing, pin, func(part int, attrEpoch uint64) {
		replyEpochs[part] = attrEpoch
	})
	if err != nil {
		return nil, err
	}
	a.mu.Lock()
	advanced := false
	for part, ae := range replyEpochs {
		if ae > a.attrSeen[part] {
			a.attrSeen[part] = ae
			advanced = true
		}
	}
	if advanced {
		a.lru.Flush()
		a.flushes++
	}
	// Admit only rows at least as new as the watermark of their serving
	// partition: a concurrent AttrsAt may have observed a newer attribute
	// epoch (and flushed) between our fetch and this admission, and
	// re-admitting our older rows would poison the cache past the flush.
	for j, v := range missing {
		if ae, ok := replyEpochs[a.C.Assign.Part(v)]; ok && ae >= a.attrSeen[a.C.Assign.Part(v)] {
			a.lru.Put(int64(v), rows[j])
		}
	}
	a.mu.Unlock()
	for j, v := range missing {
		for _, i := range missIdx[v] {
			out[i] = rows[j]
		}
	}
	return out, nil
}

// HitRate reports the cache's cumulative hit rate.
func (a *AttrCache) HitRate() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lru.HitRate()
}

// Len reports how many rows are cached.
func (a *AttrCache) Len() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lru.Len()
}

// Flushes reports how many attribute-epoch invalidations the cache has
// performed.
func (a *AttrCache) Flushes() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.flushes
}
