package cluster

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/partition"
)

// This file implements the graph-free worker bootstrap: the servers, which
// already hold the partitioned graph, also serve the global partition
// assignment and schema. A training worker therefore starts by dialing the
// cluster and asking for its view of the world instead of loading the whole
// graph locally just to recompute the deterministic assignment — the
// ROADMAP's "worker-free assignment bootstrap" item.

// BootstrapRequest asks a server for the cluster bootstrap information.
type BootstrapRequest struct{}

// BootstrapReply carries everything a worker needs to start graph-free:
// the vertex->partition assignment (dense IDs, so len(Assign) is the vertex
// universe size) and the schema's type names.
type BootstrapReply struct {
	Partitions  int
	Assign      []int
	VertexTypes []string
	EdgeTypes   []string
}

// SetBootstrap installs the bootstrap answer on the server. The cluster
// build paths (FromGraph, BuildServers) call it on every server so any
// shard can bootstrap a worker; schema may be nil when only type counts are
// known, in which case generated names are served.
func (s *Server) SetBootstrap(a *partition.Assignment, schema *graph.Schema) {
	reply := &BootstrapReply{
		Partitions: a.P,
		Assign:     append([]int(nil), a.Of...),
	}
	if schema != nil {
		for t := 0; t < schema.NumVertexTypes(); t++ {
			reply.VertexTypes = append(reply.VertexTypes, schema.VertexTypeName(graph.VertexType(t)))
		}
		for t := 0; t < schema.NumEdgeTypes(); t++ {
			reply.EdgeTypes = append(reply.EdgeTypes, schema.EdgeTypeName(graph.EdgeType(t)))
		}
	} else {
		for t := 0; t < s.store.NumEdgeTypes(); t++ {
			reply.EdgeTypes = append(reply.EdgeTypes, fmt.Sprintf("edge%d", t))
		}
		reply.VertexTypes = []string{"vertex"}
	}
	s.mu.Lock()
	s.boot = reply
	s.mu.Unlock()
}

// ServeBootstrap answers a bootstrap request.
func (s *Server) ServeBootstrap(_ BootstrapRequest, reply *BootstrapReply) error {
	s.mu.RLock()
	boot := s.boot
	s.mu.RUnlock()
	if boot == nil {
		return fmt.Errorf("cluster: server %d has no bootstrap information", s.ID)
	}
	*reply = *boot
	return nil
}

// Bootstrap fetches the partition assignment and schema from the server
// owning partition part (any server works; 0 is the convention). It is how
// `aligraph-train -cluster` and examples/distributed start without loading
// the graph locally.
func Bootstrap(t Transport, part int) (*partition.Assignment, *graph.Schema, error) {
	var reply BootstrapReply
	if err := t.Bootstrap(part, BootstrapRequest{}, &reply); err != nil {
		return nil, nil, err
	}
	if reply.Partitions <= 0 || len(reply.Assign) == 0 {
		return nil, nil, fmt.Errorf("cluster: empty bootstrap reply from partition %d", part)
	}
	schema, err := graph.NewSchema(reply.VertexTypes, reply.EdgeTypes)
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: bootstrap schema: %w", err)
	}
	return &partition.Assignment{P: reply.Partitions, Of: reply.Assign}, schema, nil
}
