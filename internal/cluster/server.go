// Package cluster implements AliGraph's distributed runtime: graph servers
// each holding one partition (edges live with their source vertex, Section
// 3.3) on a multi-version snapshot store (internal/version), a routing
// client that implements the batch-first sampling.Source seam (hub dedup,
// one stitched sub-batch per owning server, pluggable neighbor cache per
// Section 3.2, server-side fixed-width SampleNeighbors draws) and its
// epoch-pinning capability (Lease/Release RPCs let a training batch read
// one consistent snapshot across every shard while updates stream in), a
// Transport abstraction with an in-memory implementation (with simulated
// network latency, for deterministic benchmarks) and a real net/rpc
// implementation over TCP, and the parallel graph-building pipeline
// evaluated in Figure 7.
package cluster

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/graph"
	"repro/internal/sampling"
	"repro/internal/version"
)

// Server is one graph server: it stores the adjacency lists and attributes
// of the vertices assigned to it in a multi-version snapshot store.
// Neighbor lists reference global vertex IDs; a destination may live on
// another server.
//
// Every sampling RPC either reads the head epoch (stamping the reply with
// it) or, when the request carries a pin, the exact epoch the client
// leased — so a mini-batch whose requests all pin one epoch observes one
// consistent snapshot no matter how many ServeUpdate batches land
// mid-flight. Updates never rewrite shared backing arrays in place: the
// store is copy-on-write per touched vertex, and replies built from a view
// stay valid after any number of concurrent updates.
type Server struct {
	ID int

	store *version.Store

	mu sync.RWMutex
	// boot, when set, answers the Bootstrap RPC: the global partition
	// assignment and schema a worker needs to start without loading the
	// graph locally.
	boot *BootstrapReply
}

// NewServer creates an empty server for the given partition id and number of
// edge types, retaining version.DefaultRetain update epochs.
func NewServer(id, numEdgeTypes int) *Server {
	return &Server{ID: id, store: version.NewStore(numEdgeTypes)}
}

// NewServerRetain is NewServer with an explicit epoch-retention window.
func NewServerRetain(id, numEdgeTypes, retain int) *Server {
	return &Server{ID: id, store: version.NewStoreRetain(numEdgeTypes, retain)}
}

// Store exposes the server's snapshot store (tests and tooling).
func (s *Server) Store() *version.Store { return s.store }

// AddVertex registers a local vertex with its attributes (loading phase,
// before Seal).
func (s *Server) AddVertex(v graph.ID, attr []float64) { s.store.AddVertex(v, attr) }

// AddEdge appends an out-edge for local vertex src (loading phase, before
// Seal).
func (s *Server) AddEdge(src, dst graph.ID, t graph.EdgeType, w float64) {
	s.store.AddEdge(src, dst, t, w)
}

// Seal freezes the loaded data as the immutable epoch-0 base; call once
// loading completes. Subsequent mutation goes through ServeUpdate.
func (s *Server) Seal() { s.store.Seal() }

// NumLocalVertices reports how many vertices this server owns.
func (s *Server) NumLocalVertices() int { return s.store.NumVertices() }

// NumLocalEdges reports how many out-edges this server stores at the head
// epoch.
func (s *Server) NumLocalEdges() int {
	view := s.store.HeadView()
	n := int64(0)
	for t := 0; t < s.store.NumEdgeTypes(); t++ {
		n += view.EdgeCount(graph.EdgeType(t))
	}
	return int(n)
}

// LocalVertices returns the sorted local vertex IDs (shared slice).
func (s *Server) LocalVertices() []graph.ID { return s.store.LocalVertices() }

// Neighbors returns the out-neighbors and weights of local vertex v under
// edge type t at the head epoch. ok is false when v is not local.
func (s *Server) Neighbors(v graph.ID, t graph.EdgeType) (ns []graph.ID, ws []float64, ok bool) {
	return s.store.HeadView().Neighbors(v, t)
}

// UpdateEpoch reports how many update batches the server has applied (the
// head epoch of its snapshot store).
func (s *Server) UpdateEpoch() uint64 { return s.store.Head() }

// Attr returns the attribute vector of local vertex v at the head epoch.
func (s *Server) Attr(v graph.ID) ([]float64, bool) {
	return s.store.HeadView().Attr(v)
}

// view resolves the snapshot a request reads — the pinned epoch when the
// request carries one (failing with the store's evicted/future error when
// it is gone, which clients translate into a re-pin-and-retry), the head
// otherwise — plus the head/attr-head stamps every reply carries. The
// stamps come from one head view, so they are a consistent pair, and an
// unpinned request costs a single lock acquisition total.
func (s *Server) view(pinned bool, pin uint64) (view version.View, head, attrHead uint64, err error) {
	hv := s.store.HeadView()
	head, attrHead = hv.Epoch(), hv.AttrEpoch()
	if !pinned {
		return hv, head, attrHead, nil
	}
	view, err = s.store.At(pin)
	if err != nil {
		return version.View{}, 0, 0, fmt.Errorf("cluster: server %d: %w", s.ID, err)
	}
	return view, head, attrHead, nil
}

// ---------------------------------------------------------------------------
// Wire types shared by all transports. Exported fields for encoding/gob.

// NeighborsRequest asks for the out-neighbors of a batch of vertices under
// one edge type. Batching amortizes the per-call network cost; the client's
// sub-batch stitching (Section 3.3) builds these. Pinned requests read the
// leased epoch Pin instead of the head.
type NeighborsRequest struct {
	Vertices []graph.ID
	EdgeType graph.EdgeType
	Pin      uint64
	Pinned   bool
}

// NeighborsReply carries per-vertex neighbor and weight lists aligned with
// the request order. Epoch is the epoch served (the pin for pinned
// requests); Head is the server's current head epoch, which clients use to
// notice that their pin went stale; AttrHead is the newest epoch on this
// server that rewrote any attribute row, which attribute caches use to
// invalidate without ever issuing an extra RPC — the signal rides on every
// sampling reply, so even a fully-hot attribute cache observes it.
type NeighborsReply struct {
	Neighbors [][]graph.ID
	Weights   [][]float64
	Epoch     uint64
	Head      uint64
	AttrHead  uint64
}

// AttrsRequest asks for the attribute vectors of a batch of vertices,
// optionally at a pinned epoch.
type AttrsRequest struct {
	Vertices []graph.ID
	Pin      uint64
	Pinned   bool
}

// AttrsReply carries attribute vectors aligned with the request. AttrEpoch
// is the latest epoch <= the SERVED one that rewrote any attribute row
// (the version of the returned rows); AttrHead is the server's newest
// attribute-rewriting epoch regardless of pin. Client attribute caches
// flush when AttrHead advances and version-gate admissions on AttrEpoch.
type AttrsReply struct {
	Attrs     [][]float64
	Epoch     uint64
	AttrEpoch uint64
	Head      uint64
	AttrHead  uint64
}

// ServeNeighbors handles a batched neighbor request. The reply is built
// from one immutable snapshot view, so it is consistent with a single
// update generation even while ServeUpdate batches land concurrently.
func (s *Server) ServeNeighbors(req NeighborsRequest, reply *NeighborsReply) error {
	view, head, attrHead, err := s.view(req.Pinned, req.Pin)
	if err != nil {
		return err
	}
	reply.Neighbors = make([][]graph.ID, len(req.Vertices))
	reply.Weights = make([][]float64, len(req.Vertices))
	reply.Epoch = view.Epoch()
	reply.Head = head
	reply.AttrHead = attrHead
	for i, v := range req.Vertices {
		ns, ws, ok := view.Neighbors(v, req.EdgeType)
		if !ok {
			return fmt.Errorf("cluster: server %d does not own vertex %d", s.ID, v)
		}
		reply.Neighbors[i] = ns
		reply.Weights[i] = ws
	}
	return nil
}

// ServeAttrs handles a batched attribute request.
func (s *Server) ServeAttrs(req AttrsRequest, reply *AttrsReply) error {
	view, head, attrHead, err := s.view(req.Pinned, req.Pin)
	if err != nil {
		return err
	}
	reply.Attrs = make([][]float64, len(req.Vertices))
	reply.Epoch = view.Epoch()
	reply.AttrEpoch = view.AttrEpoch()
	reply.Head = head
	reply.AttrHead = attrHead
	for i, v := range req.Vertices {
		a, ok := view.Attr(v)
		if !ok {
			return fmt.Errorf("cluster: server %d does not own vertex %d", s.ID, v)
		}
		reply.Attrs[i] = a
	}
	return nil
}

// SampleRequest asks for fixed-width neighbor draws executed server-side:
// instead of shipping a hub's full adjacency list, the server returns Width
// sampled IDs per requested slot. Vertices are deduplicated by the client;
// Counts[i] (1 when nil) is how many independent Width-wide draw groups
// vertex i needs, so repeated batch entries stay uncorrelated without being
// re-sent.
type SampleRequest struct {
	Vertices []graph.ID
	Counts   []int
	EdgeType graph.EdgeType
	Width    int
	ByWeight bool
	// WantLists lets the server answer low-degree uniform vertices with
	// their full (short) adjacency list instead of draws; clients set it
	// when their cache can admit the lists.
	WantLists bool
	Seed      uint64
	Pin       uint64
	Pinned    bool
}

// SampleReply carries the drawn neighbor IDs: for each request vertex in
// order, Counts[i]*Width draws, flattened. Vertices with no out-edges of
// the requested type are padded with themselves. As an optimization, a
// uniform-draw vertex whose degree does not exceed Width ships its full
// (short) adjacency list in Lists[i] instead of contributing to Samples:
// that is never more bytes than Counts[i]*Width draws and lets the client
// draw locally and warm replacing caches. Epoch stamps the reply with the
// epoch served; Head with the server's current head.
type SampleReply struct {
	Samples  []graph.ID
	Lists    [][]graph.ID
	Epoch    uint64
	Head     uint64
	AttrHead uint64
}

// StatsRequest asks for the server's local size counters.
type StatsRequest struct{}

// StatsReply reports local vertex and per-edge-type edge counts (at the
// head epoch); clients use the edge counts to spread TRAVERSE batches
// across servers.
type StatsReply struct {
	NumVertices int
	EdgesByType []int64
}

// NegPoolRequest asks for the server's negative-sampling candidate counts
// under one edge type.
type NegPoolRequest struct {
	EdgeType graph.EdgeType
}

// NegPoolReply carries the distinct destinations of the server's local
// type-t out-edges with their occurrence counts. Summed across servers the
// counts are exactly the global in-degrees (every edge lives with its
// source), so a client can rebuild the paper's unigram^0.75 NEGATIVE
// distribution without any server holding the whole graph.
type NegPoolReply struct {
	Vertices []graph.ID
	Counts   []int64
}

// EdgesRequest asks for Count edges of one type drawn uniformly from the
// server's local edge set, optionally at a pinned epoch.
type EdgesRequest struct {
	EdgeType graph.EdgeType
	Count    int
	Seed     uint64
	Pin      uint64
	Pinned   bool
}

// EdgesReply carries sampled edges as parallel arrays (gob-friendly),
// stamped with the epoch served and the server's head.
type EdgesReply struct {
	Src, Dst []graph.ID
	Weight   []float64
	Epoch    uint64
	Head     uint64
	AttrHead uint64
}

// LeaseRequest pins the server's current head epoch against eviction.
// (In-process users that need to pin an explicit historical epoch use
// version.Store.Lease directly.)
type LeaseRequest struct{}

// LeaseReply reports the epoch actually leased, the server's head, and its
// newest attribute-rewriting epoch.
type LeaseReply struct {
	Epoch    uint64
	Head     uint64
	AttrHead uint64
}

// ReleaseRequest drops one lease on Epoch.
type ReleaseRequest struct {
	Epoch uint64
}

// ReleaseReply is empty; releases are best-effort acknowledgements.
type ReleaseReply struct{}

// ServeLease pins the current head epoch of the snapshot store. The epoch,
// head and attr-head come from one lock acquisition, so a reply never
// reports a head newer than the epoch it leased (which would make the
// client's fresh pin look stale at birth).
func (s *Server) ServeLease(_ LeaseRequest, reply *LeaseReply) error {
	epoch, attrEpoch := s.store.LeaseHeadInfo()
	reply.Epoch = epoch
	reply.Head = epoch
	reply.AttrHead = attrEpoch
	return nil
}

// ServeRelease drops one lease; unknown epochs are ignored.
func (s *Server) ServeRelease(req ReleaseRequest, reply *ReleaseReply) error {
	s.store.Release(req.Epoch)
	return nil
}

// ServeSampleNeighbors handles a server-side fixed-width draw request: the
// RPC that keeps hub adjacency lists from crossing the network. All draws
// read one snapshot view; weighted draws go through the epoch-stable base
// AliasIndex for untouched vertices and a per-vertex weighted scan for
// vertices an update rewrote — invalidation scoped to touched vertices, not
// whole edge types.
func (s *Server) ServeSampleNeighbors(req SampleRequest, reply *SampleReply) error {
	if req.Width <= 0 {
		return fmt.Errorf("cluster: non-positive sample width %d", req.Width)
	}
	if len(req.Counts) > 0 && len(req.Counts) != len(req.Vertices) {
		return fmt.Errorf("cluster: %d counts for %d vertices", len(req.Counts), len(req.Vertices))
	}
	view, head, attrHead, err := s.view(req.Pinned, req.Pin)
	if err != nil {
		return err
	}
	total := 0
	for i := range req.Vertices {
		c := 1
		if len(req.Counts) > 0 {
			c = req.Counts[i]
		}
		total += c * req.Width
	}
	var ai *sampling.AliasIndex
	if req.ByWeight {
		ai = s.store.BaseAlias(req.EdgeType)
	}
	out := make([]graph.ID, 0, total)
	var lists [][]graph.ID
	if req.WantLists {
		lists = make([][]graph.ID, len(req.Vertices))
	}
	rng := sampling.NewRng(req.Seed)

	reply.Epoch = view.Epoch()
	reply.Head = head
	reply.AttrHead = attrHead
	for i, v := range req.Vertices {
		ns, ws, slot, touched, ok := view.NeighborsSlot(v, req.EdgeType)
		if !ok {
			return fmt.Errorf("cluster: server %d does not own vertex %d", s.ID, v)
		}
		c := 1
		if len(req.Counts) > 0 {
			c = req.Counts[i]
		}
		draws := c * req.Width
		switch {
		case len(ns) == 0:
			for k := 0; k < draws; k++ {
				out = append(out, v)
			}
		case req.ByWeight:
			for k := 0; k < draws; k++ {
				d := -1
				if touched {
					d = version.WeightedDraw(ws, rng)
				} else {
					d = ai.Draw(graph.ID(slot), rng)
				}
				if d < 0 || d >= len(ns) {
					d = rng.Intn(len(ns))
				}
				out = append(out, ns[d])
			}
		case req.WantLists && len(ns) <= req.Width:
			lists[i] = append([]graph.ID(nil), ns...)
		default:
			for k := 0; k < draws; k++ {
				out = append(out, ns[rng.Intn(len(ns))])
			}
		}
	}
	reply.Samples = out
	reply.Lists = lists
	return nil
}

// ServeStats handles a size-counter request, reporting the head epoch's
// totals.
func (s *Server) ServeStats(_ StatsRequest, reply *StatsReply) error {
	view := s.store.HeadView()
	reply.NumVertices = s.store.NumVertices()
	reply.EdgesByType = view.EdgeCounts(reply.EdgesByType[:0])
	return nil
}

// ServeNegativePool handles a negative-pool request: distinct local
// out-edge destinations of type t with occurrence counts, in sorted order,
// at the head epoch.
func (s *Server) ServeNegativePool(req NegPoolRequest, reply *NegPoolReply) error {
	view := s.store.HeadView()
	counts := make(map[graph.ID]int64)
	for _, v := range s.store.LocalVertices() {
		ns, _, _ := view.Neighbors(v, req.EdgeType)
		for _, u := range ns {
			counts[u]++
		}
	}
	ids := make([]graph.ID, 0, len(counts))
	for v := range counts {
		ids = append(ids, v)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	reply.Vertices = ids
	reply.Counts = make([]int64, len(ids))
	for i, v := range ids {
		reply.Counts[i] = counts[v]
	}
	return nil
}

// ServeSampleEdges handles a TRAVERSE edge-sampling request: Count edges of
// the given type, uniform over the local edge set of the epoch served (a
// vertex drawn proportionally to its out-degree, then a uniform adjacency
// entry; vertices an update touched are mixed in exactly).
func (s *Server) ServeSampleEdges(req EdgesRequest, reply *EdgesReply) error {
	view, head, attrHead, err := s.view(req.Pinned, req.Pin)
	if err != nil {
		return err
	}
	reply.Epoch = view.Epoch()
	reply.Head = head
	reply.AttrHead = attrHead
	if req.Count <= 0 {
		return nil
	}
	rng := sampling.NewRng(req.Seed)
	reply.Src = make([]graph.ID, 0, req.Count)
	reply.Dst = make([]graph.ID, 0, req.Count)
	reply.Weight = make([]float64, 0, req.Count)
	for k := 0; k < req.Count; k++ {
		src, dst, w, ok := view.SampleEdge(req.EdgeType, rng)
		if !ok {
			break // no type-t edges at this epoch
		}
		reply.Src = append(reply.Src, src)
		reply.Dst = append(reply.Dst, dst)
		reply.Weight = append(reply.Weight, w)
	}
	return nil
}
