// Package cluster implements AliGraph's distributed runtime: graph servers
// each holding one partition (edges live with their source vertex, Section
// 3.3) on a multi-version snapshot store (internal/version), a routing
// client that implements the batch-first sampling.Source seam (hub dedup,
// one stitched sub-batch per owning server, pluggable neighbor cache per
// Section 3.2, server-side fixed-width SampleNeighbors draws) and its
// epoch-pinning capability (Lease/Release RPCs let a training batch read
// one consistent snapshot across every shard while updates stream in), a
// Transport abstraction with an in-memory implementation (with simulated
// network latency, for deterministic benchmarks) and a real net/rpc
// implementation over TCP, and the parallel graph-building pipeline
// evaluated in Figure 7.
//
// Churn is a first-class steady state: neighbor-cache reads are epoch-keyed
// (a pinned batch can never consume a list fetched at another update
// generation — replies carry per-list install stamps, storage.NeighborCache
// tracks validity intervals), TRAVERSE batch splits under a pin use the
// pinned epoch's own counters (they ride the Lease reply), draws are
// slot-pure so cache and shard layout never perturb fixed-seed training,
// and servers bound their snapshot-overlay memory by folding old overlays
// into a fresh base (Compact RPC, or the SetCompactThreshold trigger on a
// rate-limited background goroutine — ServeUpdate only signals, so the
// fold's O(V+E) walk never sits on an update's reply path) without
// disturbing leased epochs or live readers.
//
// # Failure model
//
// Transport faults are a design input, not an afterthought. The contract,
// layer by layer:
//
//   - What is retried: every read RPC (Neighbors, SampleNeighbors,
//     SampleEdges, NegativePool, Stats, Attrs, Bootstrap) is idempotent by
//     construction — draws are slot-/seed-pure at pinned epochs, so a
//     re-issued read returns bit-identical data — and RetryTransport
//     re-issues them under a CallPolicy (per-attempt deadline, bounded
//     exponential backoff with jitter, retry budget). Update, Lease and
//     Release are retried too, made safe by client idempotency tokens the
//     server deduplicates (SetUpdateDedup bounds the ring): a retry whose
//     predecessor executed returns the recorded reply instead of
//     double-applying a batch, double-pinning a lease, or double-releasing
//     one. Each client mints tokens under a crypto/rand per-process nonce,
//     so concurrent workers sharing the same servers never alias each
//     other's dedup entries.
//
//   - What reconnects: RPCTransport drops a connection on transport-level
//     failure (io.EOF, rpc.ErrShutdown, net errors) and redials lazily on
//     the next call; a per-attempt deadline expiry additionally severs the
//     shard's connection (Kicker), so a silent partition with no FIN/RST
//     cannot park every retry on the same hung conn. Either way a restarted
//     server is transparently re-adopted. Its
//     head regression then surfaces on the next Lease reply, which resets
//     the head watermark and flushes epoch-keyed caches (the PR 4/5 path),
//     and pinned batches reading now-future epochs re-pin via the existing
//     evicted/future retry machinery.
//
//   - What degrades: with Client.Degrade set, a shard whose retry budget is
//     exhausted (or whose breaker is open — three-state per-shard health in
//     RetryTransport) is served from stale cache entries instead of failing
//     the batch: neighbor hops come from cache-admitted lists via the
//     slot-pure draw path, attribute rows fall back to zeros, TRAVERSE and
//     NegativePool skip the dead shard's mass. Every such draw is counted
//     in Client.DegradedDraws so staleness is visible, never silent.
//     Without Degrade, the pipeline parks affected batches (bounded
//     backoff, release on Close) instead of killing the trainer.
//
//   - What surfaces: application errors from a live server — unknown
//     vertex, malformed request, evicted/future epoch past the re-pin
//     budget — are never retried by the policy layer (the server answered;
//     a verbatim retry cannot succeed) and propagate to the caller.
//
// # Concurrency model
//
// Every multi-shard round — a hop's neighbor fetch, a sampled expansion,
// attribute fills, TRAVERSE/NegativePool scans, Stats refreshes, the pin
// manager's Lease/Release rounds, and UpdateStream/ApplyDelta pushes — is
// built on one scatter-gather primitive (fanout.go): the per-shard
// sub-requests launch together (bounded by Client.Fanout; 0 means all at
// once, 1 restores sequential issue), so a hop costs max over the touched
// shards' RTTs rather than their sum. What stays sequential is the gather:
// each sub-request writes only its own reply slot, and the calling
// goroutine stitches replies back in ascending part order after the round
// lands. Cache admissions, span observations, pin-head bookkeeping,
// degraded-draw counting and error aggregation (the lowest-part failure
// wins) therefore happen in exactly the order a sequential client would
// produce them — and since draws are slot-/seed-pure, reply values are
// independent of arrival order too, so fixed-seed training is bit-identical
// with fan-out on or off, faults or no faults. Transports must be safe for
// concurrent per-shard calls: LocalTransport and LatencyTransport use
// atomic counters, RPCTransport multiplexes on net/rpc clients (safe by
// contract), and RetryTransport/FaultTransport guard their state with
// locks. The only ordering the scatter gives up is cross-shard update
// delivery order, which was never meaningful (different servers, epochs
// advance independently); per-shard FIFO is preserved.
//
// # Observability
//
// Both sides of the RPC surface are instrumented always-on with internal/obs
// primitives (lock-free counters, log-bucketed latency histograms). The
// client keeps one histogram per RPC method (count/sum/p50/p99/max — the
// Metrics() cumulative fields are derived from it) plus per-(edge type, hop)
// sampling lanes: each NEIGHBORHOOD hop driven through a hop-tagged epoch
// view records its wall time, RPC fan-out, cache hits, epoch-keyed misses
// and degraded draws in its own lane (direct calls land in hop 0), so "hop 2
// of edge type 1 is slow because its epoch-miss rate doubled" is readable
// off one snapshot. Servers time every RPC handler and compaction fold and
// gauge their snapshot store (epoch head/floor/base, overlay-ring occupancy,
// lease counts). Client.RegisterObs and Server.RegisterObs name the
// instruments in an obs.Registry — cluster.client.* and
// cluster.server.<ID>.* — which obs.Serve exposes at /metrics (text) and
// /metrics.json; recording happens regardless, at a cost of one clock read
// and a few atomic adds per operation, with no allocation, no lock, and no
// random-stream interaction (fixed-seed runs stay bit-identical with
// instrumentation on, which the chaos tests assert).
//
// # Adaptive sampling plans
//
// The per-lane counters are not just readable — they drive an optimizer.
// internal/plan turns each lane's windowed cache-hit rate into a strategy
// choice: hub-heavy reused lanes fetch full adjacency lists once and draw
// locally (ClientDraws), churn-only lanes skip cache probes and admission
// entirely (ServerDraws, so their one-shot lists stop evicting hubs from
// replacing caches), everything else keeps the hybrid default. The client
// consumes decisions lock-free (Client.SetPlan installs an immutable Plan;
// Client.NewPlanner wires the feedback loop over Client.LaneStats), and
// per-lane admission gating rides the same Plan. Because uniform draws are
// slot-pure, a strategy only moves where a draw executes — fixed-seed
// training is bit-identical under any plan, any mid-run plan switch, and
// the adaptive planner's live re-decisions; only RPC volume changes.
// Weighted draws always stay server-side (the server's alias-method
// stream is the one deterministic executor). Decisions and their inputs
// publish as plan.* gauges next to the lane counters they came from.
package cluster

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/sampling"
	"repro/internal/version"
)

// Server is one graph server: it stores the adjacency lists and attributes
// of the vertices assigned to it in a multi-version snapshot store.
// Neighbor lists reference global vertex IDs; a destination may live on
// another server.
//
// Every sampling RPC either reads the head epoch (stamping the reply with
// it) or, when the request carries a pin, the exact epoch the client
// leased — so a mini-batch whose requests all pin one epoch observes one
// consistent snapshot no matter how many ServeUpdate batches land
// mid-flight. Updates never rewrite shared backing arrays in place: the
// store is copy-on-write per touched vertex, and replies built from a view
// stay valid after any number of concurrent updates.
type Server struct {
	ID int

	store *version.Store

	// compactThreshold, when positive, arms threshold-triggered overlay
	// compaction once the head overlay's cumulative entry count reaches
	// it — the steady-state memory bound under an unbounded update stream.
	// The fold itself runs on a dedicated background goroutine (compactor);
	// ServeUpdate only signals it, so the O(V+E) rebuild never sits on an
	// update's critical path. Compaction is also reachable explicitly
	// through the Compact RPC.
	compactThreshold int64
	// compacting serializes threshold-triggered compactions: the Compact
	// RPC and the background compactor must not queue O(V+E) rebuilds back
	// to back when they pass the gate together.
	compacting atomic.Bool
	// compactKick (1-buffered) carries ServeUpdate's fold signals to the
	// compactor; sends never block and coalesce while a fold runs, and the
	// buffered token guarantees the state AFTER the last signaled update is
	// re-examined. compactGap rate-limits successive background folds.
	compactKick chan struct{}
	compactQuit chan struct{}
	compactWG   sync.WaitGroup
	compactGap  time.Duration

	mu sync.RWMutex
	// boot, when set, answers the Bootstrap RPC: the global partition
	// assignment and schema a worker needs to start without loading the
	// graph locally.
	boot *BootstrapReply

	// dedup is the bounded idempotency-token ring: token -> recorded reply
	// for the non-idempotent RPCs (Update, Lease, Release), evicted FIFO at
	// dedupCap entries. It makes "executed but the reply was lost" retries
	// safe.
	dedupMu   sync.Mutex
	dedup     map[uint64]any
	dedupFIFO []uint64
	dedupCap  int

	// met holds the server's always-on instruments (see serverobs.go):
	// per-RPC serve latency, compaction timings, applied-update counters.
	// RegisterObs names them in a registry together with snapshot-store
	// gauges (ring occupancy, lease counts).
	met serverMetrics
}

// defaultDedupWindow bounds the idempotency-token ring when SetUpdateDedup
// was never called.
const defaultDedupWindow = 1024

// SetUpdateDedup resizes the idempotency-token window (default 1024
// entries); n <= 0 disables dedup entirely (tokens are then ignored).
func (s *Server) SetUpdateDedup(n int) {
	s.dedupMu.Lock()
	s.dedupCap = n
	if n <= 0 {
		s.dedupCap = -1
		s.dedup = nil
		s.dedupFIFO = nil
	}
	s.dedupMu.Unlock()
}

// dedupLookup returns the recorded reply for token, if any. Token 0 (legacy
// callers) never matches.
func dedupLookup[Rep any](s *Server, token uint64) (Rep, bool) {
	var zero Rep
	if token == 0 {
		return zero, false
	}
	s.dedupMu.Lock()
	defer s.dedupMu.Unlock()
	if v, ok := s.dedup[token]; ok {
		if r, ok := v.(Rep); ok {
			return r, true
		}
	}
	return zero, false
}

// dedupRecord records a successfully executed request's reply under token.
func (s *Server) dedupRecord(token uint64, reply any) {
	if token == 0 {
		return
	}
	s.dedupMu.Lock()
	defer s.dedupMu.Unlock()
	if s.dedupCap < 0 {
		return // disabled
	}
	if s.dedupCap == 0 {
		s.dedupCap = defaultDedupWindow
	}
	if s.dedup == nil {
		s.dedup = make(map[uint64]any, s.dedupCap)
	}
	if _, ok := s.dedup[token]; ok {
		return
	}
	for len(s.dedupFIFO) >= s.dedupCap {
		delete(s.dedup, s.dedupFIFO[0])
		s.dedupFIFO = s.dedupFIFO[1:]
	}
	s.dedup[token] = reply
	s.dedupFIFO = append(s.dedupFIFO, token)
}

// NewServer creates an empty server for the given partition id and number of
// edge types, retaining version.DefaultRetain update epochs.
func NewServer(id, numEdgeTypes int) *Server {
	return &Server{ID: id, store: version.NewStore(numEdgeTypes)}
}

// NewServerRetain is NewServer with an explicit epoch-retention window.
func NewServerRetain(id, numEdgeTypes, retain int) *Server {
	return &Server{ID: id, store: version.NewStoreRetain(numEdgeTypes, retain)}
}

// Store exposes the server's snapshot store (tests and tooling).
func (s *Server) Store() *version.Store { return s.store }

// SetCompactThreshold arms automatic overlay compaction: once the head
// overlay's cumulative adjacency+attribute entry count reaches n, an
// applied update signals the background compactor, which folds the
// retention floor into a fresh base off the update path. n <= 0 disables
// the trigger (the Compact RPC still works). The first arming call starts
// the compactor goroutine; call Close to stop it.
func (s *Server) SetCompactThreshold(n int) {
	s.mu.Lock()
	s.compactThreshold = int64(n)
	if n > 0 && s.compactKick == nil {
		s.compactKick = make(chan struct{}, 1)
		s.compactQuit = make(chan struct{})
		s.compactWG.Add(1)
		go s.compactor(s.compactKick, s.compactQuit)
	}
	s.mu.Unlock()
}

// SetCompactInterval rate-limits the background compactor: at least d
// between successive threshold-triggered folds (signals arriving earlier
// coalesce and the fold runs once the gap has passed). Default 0: fold as
// soon as signaled. The Compact RPC is never rate-limited.
func (s *Server) SetCompactInterval(d time.Duration) {
	s.mu.Lock()
	s.compactGap = d
	s.mu.Unlock()
}

// Close stops the background compactor (a no-op when compaction was never
// armed). Idempotent; the server remains fully usable for RPCs afterwards,
// only the threshold trigger goes dead.
func (s *Server) Close() {
	s.mu.Lock()
	quit := s.compactQuit
	s.compactQuit = nil
	s.mu.Unlock()
	if quit != nil {
		close(quit)
	}
	s.compactWG.Wait()
}

// compactor is the background fold loop: it waits for ServeUpdate's
// signals, enforces the configured minimum gap between folds, and runs the
// same gate + fold an inline trigger would have — just never on an
// update's critical path.
func (s *Server) compactor(kick, quit chan struct{}) {
	defer s.compactWG.Done()
	var last time.Time
	for {
		select {
		case <-quit:
			return
		case <-kick:
		}
		s.mu.RLock()
		gap := s.compactGap
		s.mu.RUnlock()
		if gap > 0 && !last.IsZero() {
			if wait := gap - time.Since(last); wait > 0 {
				t := time.NewTimer(wait)
				select {
				case <-quit:
					t.Stop()
					return
				case <-t.C:
				}
			}
		}
		if s.maybeCompact() {
			last = time.Now()
		}
	}
}

// signalCompact hands an applied update's fold hint to the compactor
// without ever blocking: the 1-buffered channel coalesces bursts, and a
// pending token is consumed only after the triggering update's state is
// visible, so the gate always re-examines the newest overlay.
func (s *Server) signalCompact() {
	s.mu.RLock()
	kick, thr := s.compactKick, s.compactThreshold
	s.mu.RUnlock()
	if thr <= 0 || kick == nil {
		return
	}
	select {
	case kick <- struct{}{}:
	default:
	}
}

// AddVertex registers a local vertex with its attributes (loading phase,
// before Seal).
func (s *Server) AddVertex(v graph.ID, attr []float64) { s.store.AddVertex(v, attr) }

// AddEdge appends an out-edge for local vertex src (loading phase, before
// Seal).
func (s *Server) AddEdge(src, dst graph.ID, t graph.EdgeType, w float64) {
	s.store.AddEdge(src, dst, t, w)
}

// Seal freezes the loaded data as the immutable epoch-0 base; call once
// loading completes. Subsequent mutation goes through ServeUpdate.
func (s *Server) Seal() { s.store.Seal() }

// NumLocalVertices reports how many vertices this server owns.
func (s *Server) NumLocalVertices() int { return s.store.NumVertices() }

// NumLocalEdges reports how many out-edges this server stores at the head
// epoch.
func (s *Server) NumLocalEdges() int {
	view := s.store.HeadView()
	n := int64(0)
	for t := 0; t < s.store.NumEdgeTypes(); t++ {
		n += view.EdgeCount(graph.EdgeType(t))
	}
	return int(n)
}

// LocalVertices returns the sorted local vertex IDs (shared slice).
func (s *Server) LocalVertices() []graph.ID { return s.store.LocalVertices() }

// Neighbors returns the out-neighbors and weights of local vertex v under
// edge type t at the head epoch. ok is false when v is not local.
func (s *Server) Neighbors(v graph.ID, t graph.EdgeType) (ns []graph.ID, ws []float64, ok bool) {
	return s.store.HeadView().Neighbors(v, t)
}

// UpdateEpoch reports how many update batches the server has applied (the
// head epoch of its snapshot store).
func (s *Server) UpdateEpoch() uint64 { return s.store.Head() }

// Attr returns the attribute vector of local vertex v at the head epoch.
func (s *Server) Attr(v graph.ID) ([]float64, bool) {
	return s.store.HeadView().Attr(v)
}

// view resolves the snapshot a request reads — the pinned epoch when the
// request carries one (failing with the store's evicted/future error when
// it is gone, which clients translate into a re-pin-and-retry), the head
// otherwise — plus the head/attr-head stamps every reply carries. The
// stamps come from one head view, so they are a consistent pair, and an
// unpinned request costs a single lock acquisition total.
func (s *Server) view(pinned bool, pin uint64) (view version.View, head, attrHead uint64, err error) {
	hv := s.store.HeadView()
	head, attrHead = hv.Epoch(), hv.AttrEpoch()
	if !pinned {
		return hv, head, attrHead, nil
	}
	view, err = s.store.At(pin)
	if err != nil {
		return version.View{}, 0, 0, fmt.Errorf("cluster: server %d: %w", s.ID, err)
	}
	return view, head, attrHead, nil
}

// ---------------------------------------------------------------------------
// Wire types shared by all transports. Exported fields for encoding/gob.

// NeighborsRequest asks for the out-neighbors of a batch of vertices under
// one edge type. Batching amortizes the per-call network cost; the client's
// sub-batch stitching (Section 3.3) builds these. Pinned requests read the
// leased epoch Pin instead of the head.
type NeighborsRequest struct {
	Vertices []graph.ID
	EdgeType graph.EdgeType
	Pin      uint64
	Pinned   bool
}

// NeighborsReply carries per-vertex neighbor and weight lists aligned with
// the request order. Epoch is the epoch served (the pin for pinned
// requests); Head is the server's current head epoch, which clients use to
// notice that their pin went stale; AttrHead is the newest epoch on this
// server that rewrote any attribute row, which attribute caches use to
// invalidate without ever issuing an extra RPC — the signal rides on every
// sampling reply, so even a fully-hot attribute cache observes it. Since[i]
// is the epoch at which Neighbors[i] was installed (0 = predates every
// update): together with Epoch it gives neighbor caches the exact validity
// interval of each list.
type NeighborsReply struct {
	Neighbors [][]graph.ID
	Weights   [][]float64
	Since     []uint64
	Epoch     uint64
	Head      uint64
	AttrHead  uint64
}

// AttrsRequest asks for the attribute vectors of a batch of vertices,
// optionally at a pinned epoch.
type AttrsRequest struct {
	Vertices []graph.ID
	Pin      uint64
	Pinned   bool
}

// AttrsReply carries attribute vectors aligned with the request. AttrEpoch
// is the latest epoch <= the SERVED one that rewrote any attribute row
// (the version of the returned rows); AttrHead is the server's newest
// attribute-rewriting epoch regardless of pin. Client attribute caches
// flush when AttrHead advances and version-gate admissions on AttrEpoch.
// Since[i] is the epoch at which Attrs[i] was installed (0 = predates every
// update) — the row-level analogue of NeighborsReply.Since, so an embedding
// cache's validity interval covers feature changes exactly, per row, not
// just via the shard-wide AttrEpoch watermark.
type AttrsReply struct {
	Attrs     [][]float64
	Since     []uint64
	Epoch     uint64
	AttrEpoch uint64
	Head      uint64
	AttrHead  uint64
}

// ServeNeighbors handles a batched neighbor request. The reply is built
// from one immutable snapshot view, so it is consistent with a single
// update generation even while ServeUpdate batches land concurrently.
func (s *Server) ServeNeighbors(req NeighborsRequest, reply *NeighborsReply) error {
	defer obsSince(&s.met.neighbors, time.Now())
	view, head, attrHead, err := s.view(req.Pinned, req.Pin)
	if err != nil {
		return err
	}
	reply.Neighbors = make([][]graph.ID, len(req.Vertices))
	reply.Weights = make([][]float64, len(req.Vertices))
	reply.Since = make([]uint64, len(req.Vertices))
	reply.Epoch = view.Epoch()
	reply.Head = head
	reply.AttrHead = attrHead
	for i, v := range req.Vertices {
		ns, ws, ok := view.Neighbors(v, req.EdgeType)
		if !ok {
			return fmt.Errorf("cluster: server %d does not own vertex %d", s.ID, v)
		}
		reply.Neighbors[i] = ns
		reply.Weights[i] = ws
		reply.Since[i] = view.ChangedAt(v, req.EdgeType)
	}
	return nil
}

// ServeAttrs handles a batched attribute request.
func (s *Server) ServeAttrs(req AttrsRequest, reply *AttrsReply) error {
	defer obsSince(&s.met.attrs, time.Now())
	view, head, attrHead, err := s.view(req.Pinned, req.Pin)
	if err != nil {
		return err
	}
	reply.Attrs = make([][]float64, len(req.Vertices))
	reply.Since = make([]uint64, len(req.Vertices))
	reply.Epoch = view.Epoch()
	reply.AttrEpoch = view.AttrEpoch()
	reply.Head = head
	reply.AttrHead = attrHead
	for i, v := range req.Vertices {
		a, ok := view.Attr(v)
		if !ok {
			return fmt.Errorf("cluster: server %d does not own vertex %d", s.ID, v)
		}
		reply.Attrs[i] = a
		reply.Since[i] = view.AttrChangedAt(v)
	}
	return nil
}

// SampleRequest asks for fixed-width neighbor draws executed server-side:
// instead of shipping a hub's full adjacency list, the server returns Width
// sampled IDs per requested slot. Vertices are deduplicated by the client;
// Counts[i] (1 when nil) is how many independent Width-wide draw groups
// vertex i needs, so repeated batch entries stay uncorrelated without being
// re-sent.
type SampleRequest struct {
	Vertices []graph.ID
	Counts   []int
	// Slots carries the global batch position of every draw group,
	// flattened in Counts order (sum(Counts) entries): group j of vertex i
	// is batch slot Slots[cursor]. Draws are slot-pure — derived from
	// sampling.SlotRng(Seed, slot) — so the values a slot receives are
	// identical whether it is drawn here, from a client-side cache hit, or
	// on a different shard layout. Absent (legacy callers), the server
	// numbers groups sequentially.
	Slots    []int32
	EdgeType graph.EdgeType
	Width    int
	ByWeight bool
	// WantLists lets the server answer low-degree uniform vertices with
	// their full (short) adjacency list instead of draws; clients set it
	// when their cache can admit the lists.
	WantLists bool
	Seed      uint64
	Pin       uint64
	Pinned    bool
}

// SampleReply carries the drawn neighbor IDs: for each request vertex in
// order, Counts[i]*Width draws, flattened. Vertices with no out-edges of
// the requested type are padded with themselves. As an optimization, a
// uniform-draw vertex whose degree does not exceed Width ships its full
// (short) adjacency list in Lists[i] instead of contributing to Samples:
// that is never more bytes than Counts[i]*Width draws and lets the client
// draw locally and warm replacing caches; Since[i] stamps each shipped
// list's install epoch so the admission is version-exact. Epoch stamps the
// reply with the epoch served; Head with the server's current head.
type SampleReply struct {
	Samples  []graph.ID
	Lists    [][]graph.ID
	Since    []uint64
	Epoch    uint64
	Head     uint64
	AttrHead uint64
}

// StatsRequest asks for the server's local size counters.
type StatsRequest struct{}

// StatsReply reports local vertex and per-edge-type edge counts and edge
// weight sums (at the head epoch); clients use the edge counts to spread
// uniform TRAVERSE batches across servers, and the weight sums to spread
// weight-proportional ones. Head and AttrHead stamp the head epoch the
// counters were read at, so a Stats round doubles as a cheap head probe —
// a serving tier polls it to observe out-of-band churn without touching
// any vertex data.
type StatsReply struct {
	NumVertices  int
	EdgesByType  []int64
	WeightByType []float64
	Head         uint64
	AttrHead     uint64
}

// NegPoolRequest asks for the server's negative-sampling candidate counts
// under one edge type.
type NegPoolRequest struct {
	EdgeType graph.EdgeType
}

// NegPoolReply carries the distinct destinations of the server's local
// type-t out-edges with their occurrence counts. Summed across servers the
// counts are exactly the global in-degrees (every edge lives with its
// source), so a client can rebuild the paper's unigram^0.75 NEGATIVE
// distribution without any server holding the whole graph.
type NegPoolReply struct {
	Vertices []graph.ID
	Counts   []int64
}

// EdgesRequest asks for Count edges of one type drawn from the server's
// local edge set — uniformly, or proportionally to edge weight when
// ByWeight is set — optionally at a pinned epoch.
type EdgesRequest struct {
	EdgeType graph.EdgeType
	Count    int
	ByWeight bool
	Seed     uint64
	Pin      uint64
	Pinned   bool
}

// EdgesReply carries sampled edges as parallel arrays (gob-friendly),
// stamped with the epoch served and the server's head.
type EdgesReply struct {
	Src, Dst []graph.ID
	Weight   []float64
	Epoch    uint64
	Head     uint64
	AttrHead uint64
}

// LeaseRequest pins the server's current head epoch against eviction.
// (In-process users that need to pin an explicit historical epoch use
// version.Store.Lease directly.) Token, when non-zero, deduplicates
// retries: a lease is refcounted server-side, so a retry whose predecessor
// landed (reply lost) must not pin a second lease the client would never
// release.
type LeaseRequest struct {
	Token uint64
}

// LeaseReply reports the epoch actually leased, the server's head, and its
// newest attribute-rewriting epoch, plus the leased epoch's per-type edge
// counts and edge-weight sums. The stats ride the lease so a client can
// split pinned TRAVERSE batches across shards from the snapshot's own
// counters with zero extra RPCs.
type LeaseReply struct {
	Epoch        uint64
	Head         uint64
	AttrHead     uint64
	EdgesByType  []int64
	WeightByType []float64
}

// ReleaseRequest drops one lease on Epoch. Token, when non-zero,
// deduplicates retries — a doubled release could drop another pin's lease
// on the same epoch.
type ReleaseRequest struct {
	Epoch uint64
	Token uint64
}

// ReleaseReply is empty; releases are best-effort acknowledgements.
type ReleaseReply struct{}

// CompactRequest asks the server to fold overlays behind the retention
// floor into a fresh base snapshot (operator- or threshold-triggered).
type CompactRequest struct{}

// CompactReply reports what the compaction did: the epoch the base now
// freezes, how many cumulative overlay entries it absorbed and how many
// were pruned from retained overlays, and the server's head epoch. The
// head never moves — clients keep reading exactly the epochs they pinned.
type CompactReply struct {
	BaseEpoch uint64
	Folded    int
	Pruned    int
	Head      uint64
}

// ServeLease pins the current head epoch of the snapshot store. The epoch,
// head, attr-head and stats come from one lock acquisition, so a reply
// never reports a head newer than the epoch it leased (which would make
// the client's fresh pin look stale at birth) and the stats are exactly
// the leased snapshot's.
func (s *Server) ServeLease(req LeaseRequest, reply *LeaseReply) error {
	defer obsSince(&s.met.lease, time.Now())
	if r, ok := dedupLookup[LeaseReply](s, req.Token); ok {
		*reply = r
		return nil
	}
	epoch, attrEpoch, edges, weights := s.store.LeaseHeadStats()
	reply.Epoch = epoch
	reply.Head = epoch
	reply.AttrHead = attrEpoch
	reply.EdgesByType = edges
	reply.WeightByType = weights
	s.dedupRecord(req.Token, *reply)
	return nil
}

// ServeRelease drops one lease; unknown epochs are ignored.
func (s *Server) ServeRelease(req ReleaseRequest, reply *ReleaseReply) error {
	defer obsSince(&s.met.release, time.Now())
	if _, ok := dedupLookup[ReleaseReply](s, req.Token); ok {
		return nil
	}
	s.store.Release(req.Epoch)
	s.dedupRecord(req.Token, *reply)
	return nil
}

// ServeCompact folds overlays behind the retention floor into a fresh base
// (version.Store.Compact). Live views and leased epochs stay readable
// throughout and keep serving the same adjacency and draw distributions;
// the head epoch does not move, so from a client's perspective shard
// memory stopped growing and (at most) fixed-seed draws on fold-touched
// vertices re-randomized within their distribution.
func (s *Server) ServeCompact(_ CompactRequest, reply *CompactReply) error {
	defer obsSince(&s.met.compactRPC, time.Now())
	foldStart := time.Now()
	st, err := s.store.Compact()
	s.met.compaction.Observe(int64(time.Since(foldStart)))
	if err != nil {
		return fmt.Errorf("cluster: server %d: %w", s.ID, err)
	}
	reply.BaseEpoch = st.BaseEpoch
	reply.Folded = st.FoldedAdj + st.FoldedAttrs
	reply.Pruned = st.Pruned
	reply.Head = s.store.Head()
	return nil
}

// maybeCompact runs one threshold-armed compaction attempt (the background
// compactor's body), reporting whether a fold actually ran. The fold is an
// O(V+E) base rebuild and only prunes entries behind the retention floor,
// so beyond the entry threshold the gate also requires the floor to have
// advanced at least half a retention window past the current base — a
// workload whose in-window touched set alone exceeds the threshold then
// pays one amortized rebuild per retain/2 epochs instead of one per signal
// (which could never shrink the overlay anyway).
func (s *Server) maybeCompact() bool {
	s.mu.RLock()
	thr := s.compactThreshold
	s.mu.RUnlock()
	if thr <= 0 {
		return false
	}
	gate := func() bool {
		ov := s.store.Overlay()
		if int64(ov.AdjEntries+ov.AttrEntries) < thr {
			return false
		}
		stride := uint64(s.store.Retain() / 2)
		if stride < 1 {
			stride = 1
		}
		return s.store.Floor() >= ov.BaseEpoch+stride
	}
	if !gate() {
		return false
	}
	// Single runner: a Compact RPC that passed the gate together with the
	// compactor skips instead of queueing whole-shard rebuilds behind the
	// store's compaction mutex; the gate is re-checked after winning in
	// case a just-finished fold already advanced the base.
	if !s.compacting.CompareAndSwap(false, true) {
		return false
	}
	defer s.compacting.Store(false)
	if !gate() {
		return false
	}
	// The only Compact error is "before Seal", impossible on a serving store.
	foldStart := time.Now()
	s.store.Compact()
	s.met.compaction.Observe(int64(time.Since(foldStart)))
	return true
}

// ServeSampleNeighbors handles a server-side fixed-width draw request: the
// RPC that keeps hub adjacency lists from crossing the network. All draws
// read one snapshot view; weighted draws go through the view's epoch-stable
// base AliasIndex for untouched vertices and a per-vertex weighted scan for
// vertices an update rewrote — invalidation scoped to touched vertices, not
// whole edge types. Each draw group derives its stream from its batch slot
// (sampling.SlotRng), so the values are identical to what a client-side
// cache hit over the same adjacency would have produced.
func (s *Server) ServeSampleNeighbors(req SampleRequest, reply *SampleReply) error {
	defer obsSince(&s.met.sampleNeighbors, time.Now())
	if req.Width <= 0 {
		return fmt.Errorf("cluster: non-positive sample width %d", req.Width)
	}
	if len(req.Counts) > 0 && len(req.Counts) != len(req.Vertices) {
		return fmt.Errorf("cluster: %d counts for %d vertices", len(req.Counts), len(req.Vertices))
	}
	view, head, attrHead, err := s.view(req.Pinned, req.Pin)
	if err != nil {
		return err
	}
	total, groups := 0, 0
	for i := range req.Vertices {
		c := 1
		if len(req.Counts) > 0 {
			c = req.Counts[i]
		}
		total += c * req.Width
		groups += c
	}
	if len(req.Slots) > 0 && len(req.Slots) != groups {
		return fmt.Errorf("cluster: %d slots for %d draw groups", len(req.Slots), groups)
	}
	var ai *sampling.AliasIndex
	if req.ByWeight {
		ai = view.AliasIndex(req.EdgeType)
	}
	out := make([]graph.ID, 0, total)
	var lists [][]graph.ID
	var since []uint64
	if req.WantLists {
		lists = make([][]graph.ID, len(req.Vertices))
		since = make([]uint64, len(req.Vertices))
	}
	cursor := 0
	slotOf := func() int {
		i := cursor
		cursor++
		if len(req.Slots) > 0 {
			return int(req.Slots[i])
		}
		return i
	}

	reply.Epoch = view.Epoch()
	reply.Head = head
	reply.AttrHead = attrHead
	for i, v := range req.Vertices {
		ns, ws, slot, touched, ok := view.NeighborsSlot(v, req.EdgeType)
		if !ok {
			return fmt.Errorf("cluster: server %d does not own vertex %d", s.ID, v)
		}
		c := 1
		if len(req.Counts) > 0 {
			c = req.Counts[i]
		}
		switch {
		case len(ns) == 0:
			cursor += c
			for k := 0; k < c*req.Width; k++ {
				out = append(out, v)
			}
		case req.ByWeight:
			for g := 0; g < c; g++ {
				rng := sampling.SlotRng(req.Seed, slotOf())
				for k := 0; k < req.Width; k++ {
					d := -1
					if touched {
						d = version.WeightedDraw(ws, &rng)
					} else {
						d = ai.Draw(graph.ID(slot), &rng)
					}
					if d < 0 || d >= len(ns) {
						d = rng.Intn(len(ns))
					}
					out = append(out, ns[d])
				}
			}
		case req.WantLists && len(ns) <= req.Width:
			cursor += c
			lists[i] = append([]graph.ID(nil), ns...)
			since[i] = view.ChangedAt(v, req.EdgeType)
		default:
			for g := 0; g < c; g++ {
				rng := sampling.SlotRng(req.Seed, slotOf())
				for k := 0; k < req.Width; k++ {
					out = append(out, ns[rng.Intn(len(ns))])
				}
			}
		}
	}
	reply.Samples = out
	reply.Lists = lists
	reply.Since = since
	return nil
}

// ServeStats handles a size-counter request, reporting the head epoch's
// totals.
func (s *Server) ServeStats(_ StatsRequest, reply *StatsReply) error {
	defer obsSince(&s.met.stats, time.Now())
	view := s.store.HeadView()
	reply.NumVertices = s.store.NumVertices()
	reply.EdgesByType = view.EdgeCounts(reply.EdgesByType[:0])
	reply.WeightByType = view.EdgeWeightSums(reply.WeightByType[:0])
	reply.Head = view.Epoch()
	reply.AttrHead = view.AttrEpoch()
	return nil
}

// ServeNegativePool handles a negative-pool request: distinct local
// out-edge destinations of type t with occurrence counts, in sorted order,
// at the head epoch.
func (s *Server) ServeNegativePool(req NegPoolRequest, reply *NegPoolReply) error {
	defer obsSince(&s.met.negPool, time.Now())
	view := s.store.HeadView()
	counts := make(map[graph.ID]int64)
	for _, v := range s.store.LocalVertices() {
		ns, _, _ := view.Neighbors(v, req.EdgeType)
		for _, u := range ns {
			counts[u]++
		}
	}
	ids := make([]graph.ID, 0, len(counts))
	for v := range counts {
		ids = append(ids, v)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	reply.Vertices = ids
	reply.Counts = make([]int64, len(ids))
	for i, v := range ids {
		reply.Counts[i] = counts[v]
	}
	return nil
}

// ServeSampleEdges handles a TRAVERSE edge-sampling request: Count edges of
// the given type over the local edge set of the epoch served — uniform (a
// vertex drawn proportionally to its out-degree, then a uniform adjacency
// entry) or, with ByWeight, proportional to edge weight; vertices an update
// touched are mixed in exactly either way.
func (s *Server) ServeSampleEdges(req EdgesRequest, reply *EdgesReply) error {
	defer obsSince(&s.met.sampleEdges, time.Now())
	view, head, attrHead, err := s.view(req.Pinned, req.Pin)
	if err != nil {
		return err
	}
	reply.Epoch = view.Epoch()
	reply.Head = head
	reply.AttrHead = attrHead
	if req.Count <= 0 {
		return nil
	}
	rng := sampling.NewRng(req.Seed)
	reply.Src = make([]graph.ID, 0, req.Count)
	reply.Dst = make([]graph.ID, 0, req.Count)
	reply.Weight = make([]float64, 0, req.Count)
	for k := 0; k < req.Count; k++ {
		var src, dst graph.ID
		var w float64
		var ok bool
		if req.ByWeight {
			src, dst, w, ok = view.SampleEdgeWeighted(req.EdgeType, rng)
		} else {
			src, dst, w, ok = view.SampleEdge(req.EdgeType, rng)
		}
		if !ok {
			break // no type-t edges (or weight mass) at this epoch
		}
		reply.Src = append(reply.Src, src)
		reply.Dst = append(reply.Dst, dst)
		reply.Weight = append(reply.Weight, w)
	}
	return nil
}
