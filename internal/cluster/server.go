// Package cluster implements AliGraph's distributed runtime: graph servers
// each holding one partition (edges live with their source vertex, Section
// 3.3), a routing client with a pluggable neighbor cache (Section 3.2), a
// Transport abstraction with an in-memory implementation (with simulated
// network latency, for deterministic benchmarks) and a real net/rpc
// implementation over TCP, and the parallel graph-building pipeline
// evaluated in Figure 7.
package cluster

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/graph"
)

// Server is one graph server: it stores the adjacency lists of the vertices
// assigned to it, plus their attributes. Neighbor lists reference global
// vertex IDs; a destination may live on another server.
type Server struct {
	ID int

	mu    sync.RWMutex
	adj   []map[graph.ID][]graph.ID // per edge type: local vertex -> out-neighbors
	wts   []map[graph.ID][]float64
	attrs map[graph.ID][]float64
	local []graph.ID // sorted local vertex IDs
}

// NewServer creates an empty server for the given partition id and number of
// edge types.
func NewServer(id, numEdgeTypes int) *Server {
	s := &Server{
		ID:    id,
		adj:   make([]map[graph.ID][]graph.ID, numEdgeTypes),
		wts:   make([]map[graph.ID][]float64, numEdgeTypes),
		attrs: make(map[graph.ID][]float64),
	}
	for t := range s.adj {
		s.adj[t] = make(map[graph.ID][]graph.ID)
		s.wts[t] = make(map[graph.ID][]float64)
	}
	return s
}

// AddVertex registers a local vertex with its attributes.
func (s *Server) AddVertex(v graph.ID, attr []float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.attrs[v]; !ok {
		s.local = append(s.local, v)
	}
	s.attrs[v] = attr
}

// AddEdge appends an out-edge for local vertex src.
func (s *Server) AddEdge(src, dst graph.ID, t graph.EdgeType, w float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.adj[t][src] = append(s.adj[t][src], dst)
	s.wts[t][src] = append(s.wts[t][src], w)
}

// Seal sorts local vertex IDs; call once loading completes.
func (s *Server) Seal() {
	s.mu.Lock()
	defer s.mu.Unlock()
	sort.Slice(s.local, func(i, j int) bool { return s.local[i] < s.local[j] })
}

// NumLocalVertices reports how many vertices this server owns.
func (s *Server) NumLocalVertices() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.local)
}

// NumLocalEdges reports how many out-edges this server stores.
func (s *Server) NumLocalEdges() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for t := range s.adj {
		for _, ns := range s.adj[t] {
			n += len(ns)
		}
	}
	return n
}

// LocalVertices returns the sorted local vertex IDs (shared slice).
func (s *Server) LocalVertices() []graph.ID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.local
}

// Neighbors returns the out-neighbors and weights of local vertex v under
// edge type t. ok is false when v is not local to this server.
func (s *Server) Neighbors(v graph.ID, t graph.EdgeType) (ns []graph.ID, ws []float64, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, here := s.attrs[v]; !here {
		return nil, nil, false
	}
	return s.adj[t][v], s.wts[t][v], true
}

// Attr returns the attribute vector of local vertex v.
func (s *Server) Attr(v graph.ID) ([]float64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	a, ok := s.attrs[v]
	return a, ok
}

// ---------------------------------------------------------------------------
// Wire types shared by all transports. Exported fields for encoding/gob.

// NeighborsRequest asks for the out-neighbors of a batch of vertices under
// one edge type. Batching amortizes the per-call network cost; the client's
// sub-batch stitching (Section 3.3) builds these.
type NeighborsRequest struct {
	Vertices []graph.ID
	EdgeType graph.EdgeType
}

// NeighborsReply carries per-vertex neighbor and weight lists aligned with
// the request order.
type NeighborsReply struct {
	Neighbors [][]graph.ID
	Weights   [][]float64
}

// AttrsRequest asks for the attribute vectors of a batch of vertices.
type AttrsRequest struct {
	Vertices []graph.ID
}

// AttrsReply carries attribute vectors aligned with the request.
type AttrsReply struct {
	Attrs [][]float64
}

// ServeNeighbors handles a batched neighbor request.
func (s *Server) ServeNeighbors(req NeighborsRequest, reply *NeighborsReply) error {
	reply.Neighbors = make([][]graph.ID, len(req.Vertices))
	reply.Weights = make([][]float64, len(req.Vertices))
	for i, v := range req.Vertices {
		ns, ws, ok := s.Neighbors(v, req.EdgeType)
		if !ok {
			return fmt.Errorf("cluster: server %d does not own vertex %d", s.ID, v)
		}
		reply.Neighbors[i] = ns
		reply.Weights[i] = ws
	}
	return nil
}

// ServeAttrs handles a batched attribute request.
func (s *Server) ServeAttrs(req AttrsRequest, reply *AttrsReply) error {
	reply.Attrs = make([][]float64, len(req.Vertices))
	for i, v := range req.Vertices {
		a, ok := s.Attr(v)
		if !ok {
			return fmt.Errorf("cluster: server %d does not own vertex %d", s.ID, v)
		}
		reply.Attrs[i] = a
	}
	return nil
}
