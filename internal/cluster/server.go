// Package cluster implements AliGraph's distributed runtime: graph servers
// each holding one partition (edges live with their source vertex, Section
// 3.3), a routing client that implements the batch-first sampling.Source
// seam (hub dedup, one stitched sub-batch per owning server, pluggable
// neighbor cache per Section 3.2, server-side fixed-width SampleNeighbors
// draws), a Transport abstraction with an in-memory implementation (with
// simulated network latency, for deterministic benchmarks) and a real
// net/rpc implementation over TCP, and the parallel graph-building pipeline
// evaluated in Figure 7.
package cluster

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/graph"
	"repro/internal/sampling"
)

// Server is one graph server: it stores the adjacency lists of the vertices
// assigned to it, plus their attributes. Neighbor lists reference global
// vertex IDs; a destination may live on another server.
type Server struct {
	ID int

	mu    sync.RWMutex
	adj   []map[graph.ID][]graph.ID // per edge type: local vertex -> out-neighbors
	wts   []map[graph.ID][]float64
	attrs map[graph.ID][]float64
	local []graph.ID // sorted local vertex IDs

	// epoch counts the update batches applied since the server was sealed
	// (ServeUpdate increments it). Every sampling reply is stamped with it,
	// so clients can tell when a mini-batch straddled an update: servers of
	// a freshly built cluster all answer epoch 0, and a batch whose observed
	// epochs span more than one value is not snapshot-consistent.
	epoch uint64

	// boot, when set, answers the Bootstrap RPC: the global partition
	// assignment and schema a worker needs to start without loading the
	// graph locally.
	boot *BootstrapReply

	// Lazily built sampling indexes over the local adjacency, invalidated
	// by structural updates. localPos maps a local vertex to its slot in
	// wtAlias/degAlias, which are ordered like local at build time.
	localPos map[graph.ID]int
	wtAlias  []*sampling.AliasIndex // per edge type: weight-proportional neighbor draws
	degAlias []*sampling.Alias      // per edge type: degree-proportional vertex draws
	degPool  [][]graph.ID           // per edge type: vertex order backing degAlias
}

// NewServer creates an empty server for the given partition id and number of
// edge types.
func NewServer(id, numEdgeTypes int) *Server {
	s := &Server{
		ID:       id,
		adj:      make([]map[graph.ID][]graph.ID, numEdgeTypes),
		wts:      make([]map[graph.ID][]float64, numEdgeTypes),
		attrs:    make(map[graph.ID][]float64),
		wtAlias:  make([]*sampling.AliasIndex, numEdgeTypes),
		degAlias: make([]*sampling.Alias, numEdgeTypes),
		degPool:  make([][]graph.ID, numEdgeTypes),
	}
	for t := range s.adj {
		s.adj[t] = make(map[graph.ID][]graph.ID)
		s.wts[t] = make(map[graph.ID][]float64)
	}
	return s
}

// AddVertex registers a local vertex with its attributes.
func (s *Server) AddVertex(v graph.ID, attr []float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.attrs[v]; !ok {
		s.local = append(s.local, v)
		s.localPos = nil // slot numbering changed; indexes keyed by it follow
		for t := range s.wtAlias {
			s.invalidateLocked(graph.EdgeType(t))
		}
	}
	s.attrs[v] = attr
}

// AddEdge appends an out-edge for local vertex src.
func (s *Server) AddEdge(src, dst graph.ID, t graph.EdgeType, w float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.adj[t][src] = append(s.adj[t][src], dst)
	s.wts[t][src] = append(s.wts[t][src], w)
	s.invalidateLocked(t)
}

// invalidateLocked drops the cached sampling indexes of edge type t; the
// caller holds the write lock.
func (s *Server) invalidateLocked(t graph.EdgeType) {
	s.wtAlias[t] = nil
	s.degAlias[t] = nil
	s.degPool[t] = nil
}

// Seal sorts local vertex IDs; call once loading completes.
func (s *Server) Seal() {
	s.mu.Lock()
	defer s.mu.Unlock()
	sort.Slice(s.local, func(i, j int) bool { return s.local[i] < s.local[j] })
	s.localPos = nil // slot numbering changed; indexes keyed by it follow
	for t := range s.wtAlias {
		s.invalidateLocked(graph.EdgeType(t))
	}
}

// NumLocalVertices reports how many vertices this server owns.
func (s *Server) NumLocalVertices() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.local)
}

// NumLocalEdges reports how many out-edges this server stores.
func (s *Server) NumLocalEdges() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for t := range s.adj {
		for _, ns := range s.adj[t] {
			n += len(ns)
		}
	}
	return n
}

// LocalVertices returns the sorted local vertex IDs (shared slice).
func (s *Server) LocalVertices() []graph.ID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.local
}

// Neighbors returns the out-neighbors and weights of local vertex v under
// edge type t. ok is false when v is not local to this server.
func (s *Server) Neighbors(v graph.ID, t graph.EdgeType) (ns []graph.ID, ws []float64, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, here := s.attrs[v]; !here {
		return nil, nil, false
	}
	return s.adj[t][v], s.wts[t][v], true
}

// UpdateEpoch reports how many update batches the server has applied.
func (s *Server) UpdateEpoch() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epoch
}

// Attr returns the attribute vector of local vertex v.
func (s *Server) Attr(v graph.ID) ([]float64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	a, ok := s.attrs[v]
	return a, ok
}

// ---------------------------------------------------------------------------
// Wire types shared by all transports. Exported fields for encoding/gob.

// NeighborsRequest asks for the out-neighbors of a batch of vertices under
// one edge type. Batching amortizes the per-call network cost; the client's
// sub-batch stitching (Section 3.3) builds these.
type NeighborsRequest struct {
	Vertices []graph.ID
	EdgeType graph.EdgeType
}

// NeighborsReply carries per-vertex neighbor and weight lists aligned with
// the request order, stamped with the server's update epoch.
type NeighborsReply struct {
	Neighbors [][]graph.ID
	Weights   [][]float64
	Epoch     uint64
}

// AttrsRequest asks for the attribute vectors of a batch of vertices.
type AttrsRequest struct {
	Vertices []graph.ID
}

// AttrsReply carries attribute vectors aligned with the request.
type AttrsReply struct {
	Attrs [][]float64
}

// ServeNeighbors handles a batched neighbor request. The epoch stamp and
// every adjacency read happen under one lock acquisition, so a reply is a
// consistent snapshot of a single update generation (a concurrent update
// lands either wholly before or wholly after it).
func (s *Server) ServeNeighbors(req NeighborsRequest, reply *NeighborsReply) error {
	reply.Neighbors = make([][]graph.ID, len(req.Vertices))
	reply.Weights = make([][]float64, len(req.Vertices))
	s.mu.RLock()
	defer s.mu.RUnlock()
	reply.Epoch = s.epoch
	for i, v := range req.Vertices {
		if _, here := s.attrs[v]; !here {
			return fmt.Errorf("cluster: server %d does not own vertex %d", s.ID, v)
		}
		reply.Neighbors[i] = s.adj[req.EdgeType][v]
		reply.Weights[i] = s.wts[req.EdgeType][v]
	}
	return nil
}

// ServeAttrs handles a batched attribute request.
func (s *Server) ServeAttrs(req AttrsRequest, reply *AttrsReply) error {
	reply.Attrs = make([][]float64, len(req.Vertices))
	for i, v := range req.Vertices {
		a, ok := s.Attr(v)
		if !ok {
			return fmt.Errorf("cluster: server %d does not own vertex %d", s.ID, v)
		}
		reply.Attrs[i] = a
	}
	return nil
}

// SampleRequest asks for fixed-width neighbor draws executed server-side:
// instead of shipping a hub's full adjacency list, the server returns Width
// sampled IDs per requested slot. Vertices are deduplicated by the client;
// Counts[i] (1 when nil) is how many independent Width-wide draw groups
// vertex i needs, so repeated batch entries stay uncorrelated without being
// re-sent.
type SampleRequest struct {
	Vertices []graph.ID
	Counts   []int
	EdgeType graph.EdgeType
	Width    int
	ByWeight bool
	// WantLists lets the server answer low-degree uniform vertices with
	// their full (short) adjacency list instead of draws; clients set it
	// when their cache can admit the lists.
	WantLists bool
	Seed      uint64
}

// SampleReply carries the drawn neighbor IDs: for each request vertex in
// order, Counts[i]*Width draws, flattened. Vertices with no out-edges of
// the requested type are padded with themselves. As an optimization, a
// uniform-draw vertex whose degree does not exceed Width ships its full
// (short) adjacency list in Lists[i] instead of contributing to Samples:
// that is never more bytes than Counts[i]*Width draws and lets the client
// draw locally and warm replacing caches. Epoch stamps the reply with the
// server's update generation.
type SampleReply struct {
	Samples []graph.ID
	Lists   [][]graph.ID
	Epoch   uint64
}

// StatsRequest asks for the server's local size counters.
type StatsRequest struct{}

// StatsReply reports local vertex and per-edge-type edge counts; clients
// use the edge counts to spread TRAVERSE batches across servers.
type StatsReply struct {
	NumVertices int
	EdgesByType []int64
}

// NegPoolRequest asks for the server's negative-sampling candidate counts
// under one edge type.
type NegPoolRequest struct {
	EdgeType graph.EdgeType
}

// NegPoolReply carries the distinct destinations of the server's local
// type-t out-edges with their occurrence counts. Summed across servers the
// counts are exactly the global in-degrees (every edge lives with its
// source), so a client can rebuild the paper's unigram^0.75 NEGATIVE
// distribution without any server holding the whole graph.
type NegPoolReply struct {
	Vertices []graph.ID
	Counts   []int64
}

// EdgesRequest asks for Count edges of one type drawn uniformly from the
// server's local edge set.
type EdgesRequest struct {
	EdgeType graph.EdgeType
	Count    int
	Seed     uint64
}

// EdgesReply carries sampled edges as parallel arrays (gob-friendly),
// stamped with the server's update epoch.
type EdgesReply struct {
	Src, Dst []graph.ID
	Weight   []float64
	Epoch    uint64
}

// ensureLocalPosLocked (re)builds the vertex -> slot map; caller holds the
// write lock.
func (s *Server) ensureLocalPosLocked() {
	if s.localPos != nil {
		return
	}
	s.localPos = make(map[graph.ID]int, len(s.local))
	for i, v := range s.local {
		s.localPos[v] = i
	}
}

// weightIndex returns (building lazily) the per-server AliasIndex for
// weighted neighbor draws of edge type t, plus the vertex -> slot map it is
// ordered by.
func (s *Server) weightIndex(t graph.EdgeType) (*sampling.AliasIndex, map[graph.ID]int) {
	s.mu.RLock()
	ai, pos := s.wtAlias[t], s.localPos
	s.mu.RUnlock()
	if ai != nil && pos != nil {
		return ai, pos
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ensureLocalPosLocked()
	if s.wtAlias[t] == nil {
		ws := make([][]float64, len(s.local))
		for i, v := range s.local {
			ws[i] = s.wts[t][v]
		}
		s.wtAlias[t] = sampling.NewAliasIndexFromWeights(ws)
	}
	return s.wtAlias[t], s.localPos
}

// degreeAlias returns (building lazily) the degree-proportional vertex
// table for edge type t and the vertex order backing it; drawing a vertex
// from it and then a uniform adjacency entry yields a uniform draw over the
// server's local type-t edges.
func (s *Server) degreeAlias(t graph.EdgeType) (*sampling.Alias, []graph.ID) {
	s.mu.RLock()
	al, pool := s.degAlias[t], s.degPool[t]
	s.mu.RUnlock()
	if al != nil {
		return al, pool
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.degAlias[t] == nil {
		pool = pool[:0]
		var ws []float64
		for _, v := range s.local {
			if d := len(s.adj[t][v]); d > 0 {
				pool = append(pool, v)
				ws = append(ws, float64(d))
			}
		}
		s.degAlias[t] = sampling.NewAlias(ws)
		s.degPool[t] = pool
	}
	return s.degAlias[t], s.degPool[t]
}

// ServeSampleNeighbors handles a server-side fixed-width draw request: the
// RPC that keeps hub adjacency lists from crossing the network.
func (s *Server) ServeSampleNeighbors(req SampleRequest, reply *SampleReply) error {
	if req.Width <= 0 {
		return fmt.Errorf("cluster: non-positive sample width %d", req.Width)
	}
	if len(req.Counts) > 0 && len(req.Counts) != len(req.Vertices) {
		return fmt.Errorf("cluster: %d counts for %d vertices", len(req.Counts), len(req.Vertices))
	}
	total := 0
	for i := range req.Vertices {
		c := 1
		if len(req.Counts) > 0 {
			c = req.Counts[i]
		}
		total += c * req.Width
	}
	var ai *sampling.AliasIndex
	var pos map[graph.ID]int
	if req.ByWeight {
		ai, pos = s.weightIndex(req.EdgeType)
	}
	out := make([]graph.ID, 0, total)
	var lists [][]graph.ID
	if req.WantLists {
		lists = make([][]graph.ID, len(req.Vertices))
	}
	rng := sampling.NewRng(req.Seed)

	s.mu.RLock()
	defer s.mu.RUnlock()
	reply.Epoch = s.epoch
	for i, v := range req.Vertices {
		if _, here := s.attrs[v]; !here {
			return fmt.Errorf("cluster: server %d does not own vertex %d", s.ID, v)
		}
		c := 1
		if len(req.Counts) > 0 {
			c = req.Counts[i]
		}
		draws := c * req.Width
		ns := s.adj[req.EdgeType][v]
		switch {
		case len(ns) == 0:
			for k := 0; k < draws; k++ {
				out = append(out, v)
			}
		case req.ByWeight:
			// The alias snapshot can be stale relative to the live
			// adjacency under concurrent updates (slot missing, or degree
			// changed since the index was built); degrade those draws to
			// uniform instead of indexing out of range.
			slot, ok := pos[v]
			for k := 0; k < draws; k++ {
				d := -1
				if ok {
					d = ai.Draw(graph.ID(slot), rng)
				}
				if d < 0 || d >= len(ns) {
					d = rng.Intn(len(ns))
				}
				out = append(out, ns[d])
			}
		case req.WantLists && len(ns) <= req.Width:
			lists[i] = append([]graph.ID(nil), ns...)
		default:
			for k := 0; k < draws; k++ {
				out = append(out, ns[rng.Intn(len(ns))])
			}
		}
	}
	reply.Samples = out
	reply.Lists = lists
	return nil
}

// ServeStats handles a size-counter request.
func (s *Server) ServeStats(_ StatsRequest, reply *StatsReply) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	reply.NumVertices = len(s.local)
	reply.EdgesByType = make([]int64, len(s.adj))
	for t := range s.adj {
		for _, ns := range s.adj[t] {
			reply.EdgesByType[t] += int64(len(ns))
		}
	}
	return nil
}

// ServeNegativePool handles a negative-pool request: distinct local
// out-edge destinations of type t with occurrence counts, in sorted order.
func (s *Server) ServeNegativePool(req NegPoolRequest, reply *NegPoolReply) error {
	s.mu.RLock()
	counts := make(map[graph.ID]int64)
	for _, ns := range s.adj[req.EdgeType] {
		for _, u := range ns {
			counts[u]++
		}
	}
	s.mu.RUnlock()
	ids := make([]graph.ID, 0, len(counts))
	for v := range counts {
		ids = append(ids, v)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	reply.Vertices = ids
	reply.Counts = make([]int64, len(ids))
	for i, v := range ids {
		reply.Counts[i] = counts[v]
	}
	return nil
}

// ServeSampleEdges handles a TRAVERSE edge-sampling request: Count edges of
// the given type, uniform over the server's local edge set (a vertex drawn
// proportionally to its out-degree, then a uniform adjacency entry).
func (s *Server) ServeSampleEdges(req EdgesRequest, reply *EdgesReply) error {
	if req.Count <= 0 {
		return nil
	}
	al, pool := s.degreeAlias(req.EdgeType)
	rng := sampling.NewRng(req.Seed)
	s.mu.RLock()
	defer s.mu.RUnlock()
	reply.Epoch = s.epoch
	if al.Len() == 0 {
		return nil
	}
	reply.Src = make([]graph.ID, 0, req.Count)
	reply.Dst = make([]graph.ID, 0, req.Count)
	reply.Weight = make([]float64, 0, req.Count)
	for k := 0; k < req.Count; k++ {
		v := pool[al.DrawRng(rng)]
		ns := s.adj[req.EdgeType][v]
		if len(ns) == 0 {
			// Stale pool entry: a concurrent update removed this vertex's
			// last type-t edge after the alias was built. Skip the draw.
			continue
		}
		i := rng.Intn(len(ns))
		reply.Src = append(reply.Src, v)
		reply.Dst = append(reply.Dst, ns[i])
		reply.Weight = append(reply.Weight, s.wts[req.EdgeType][v][i])
	}
	return nil
}
