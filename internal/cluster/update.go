package cluster

import (
	"fmt"

	"repro/internal/graph"
)

// This file implements incremental maintenance on live graph servers: the
// paper's fourth challenge (dynamic graphs) requires applying structural
// updates without rebuilding the store. Streaming partitioners
// (internal/partition) are the recommended companions because their
// placement decisions need only local state.

// UpdateRequest carries a batch of edge insertions and deletions for one
// server. Exported fields for encoding/gob.
type UpdateRequest struct {
	Add    []RawEdge
	Remove []RawEdge
}

// UpdateReply reports how many operations were applied.
type UpdateReply struct {
	Added, Removed int
}

// ServeUpdate applies a batch of edge mutations. Additions whose source is
// not local are rejected; removals of absent edges are ignored (idempotent
// deletes, the common stream semantics).
func (s *Server) ServeUpdate(req UpdateRequest, reply *UpdateReply) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Every applied update batch advances the server's epoch, so sampling
	// replies issued before and after it are distinguishable (the bump also
	// covers partially applied batches that error out midway).
	defer func() {
		if reply.Added+reply.Removed > 0 {
			s.epoch++
		}
	}()
	for _, e := range req.Add {
		if _, ok := s.attrs[e.Src]; !ok {
			return fmt.Errorf("cluster: server %d does not own vertex %d", s.ID, e.Src)
		}
		s.adj[e.Type][e.Src] = append(s.adj[e.Type][e.Src], e.Dst)
		s.wts[e.Type][e.Src] = append(s.wts[e.Type][e.Src], e.Weight)
		s.invalidateLocked(e.Type)
		reply.Added++
	}
	for _, e := range req.Remove {
		ns := s.adj[e.Type][e.Src]
		ws := s.wts[e.Type][e.Src]
		for i, u := range ns {
			if u == e.Dst {
				s.adj[e.Type][e.Src] = append(ns[:i], ns[i+1:]...)
				s.wts[e.Type][e.Src] = append(ws[:i], ws[i+1:]...)
				s.invalidateLocked(e.Type)
				reply.Removed++
				break
			}
		}
	}
	return nil
}

// Update is the RPC method for incremental edge maintenance.
func (g *GraphService) Update(req UpdateRequest, reply *UpdateReply) error {
	return g.S.ServeUpdate(req, reply)
}

// ApplyDelta routes a snapshot delta (graph.Dynamic.Delta) to the owning
// servers, grouping mutations per partition.
func ApplyDelta(servers []*Server, assign func(graph.ID) int, delta graph.EdgeDelta) (added, removed int, err error) {
	reqs := make(map[int]*UpdateRequest)
	get := func(p int) *UpdateRequest {
		r, ok := reqs[p]
		if !ok {
			r = &UpdateRequest{}
			reqs[p] = r
		}
		return r
	}
	for _, e := range delta.Added {
		get(assign(e.Src)).Add = append(get(assign(e.Src)).Add, RawEdge{Src: e.Src, Dst: e.Dst, Type: e.Type, Weight: e.Weight})
	}
	for _, e := range delta.Removed {
		get(assign(e.Src)).Remove = append(get(assign(e.Src)).Remove, RawEdge{Src: e.Src, Dst: e.Dst, Type: e.Type, Weight: e.Weight})
	}
	for p, req := range reqs {
		var reply UpdateReply
		if err := servers[p].ServeUpdate(*req, &reply); err != nil {
			return added, removed, err
		}
		added += reply.Added
		removed += reply.Removed
	}
	return added, removed, nil
}
