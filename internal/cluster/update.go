package cluster

import (
	"time"

	"repro/internal/graph"
	"repro/internal/version"
)

// This file implements incremental maintenance on live graph servers: the
// paper's fourth challenge (dynamic graphs) requires applying structural
// updates without rebuilding the store. Updates land as atomic delta
// batches on the server's multi-version snapshot store: each applied batch
// becomes a new epoch, readers keep answering from the epochs they pinned,
// and partially invalid batches are rejected wholesale (all-or-nothing)
// instead of leaving earlier operations applied. Streaming partitioners
// (internal/partition) are the recommended companions because their
// placement decisions need only local state.

// AttrUpdate replaces the attribute row of one local vertex — the
// vertex-attribute op of an update batch. Exported fields for encoding/gob.
type AttrUpdate struct {
	V    graph.ID
	Attr []float64
}

// UpdateRequest carries a batch of edge insertions, edge deletions and
// attribute rewrites for one server. The batch applies atomically: either
// every operation lands (as one new epoch) or none do. Token, when
// non-zero, is a client-supplied idempotency token: a retried request whose
// predecessor already applied returns the recorded reply instead of
// re-applying the batch (RetryTransport stamps it; legacy callers send 0
// and keep at-most-once-per-call semantics).
type UpdateRequest struct {
	Add     []RawEdge
	Remove  []RawEdge
	SetAttr []AttrUpdate
	Token   uint64
}

// UpdateReply reports how many operations were applied and the epoch the
// batch became. A rejected batch reports zeros and the unchanged epoch.
type UpdateReply struct {
	Added, Removed, AttrsSet int
	Epoch                    uint64
}

// ServeUpdate applies a batch of mutations all-or-nothing. Additions and
// attribute rewrites whose vertex is not local reject the whole batch;
// removals of absent edges are ignored (idempotent deletes, the common
// stream semantics). Each applied batch advances the server's epoch by
// exactly one; in-flight readers are unaffected (their views are immutable
// snapshots) and pinned epochs stay readable until released.
func (s *Server) ServeUpdate(req UpdateRequest, reply *UpdateReply) error {
	defer obsSince(&s.met.update, time.Now())
	if r, ok := dedupLookup[UpdateReply](s, req.Token); ok {
		*reply = r
		return nil
	}
	d := version.Delta{}
	for _, e := range req.Add {
		d.Add = append(d.Add, version.EdgeOp{Src: e.Src, Dst: e.Dst, Type: e.Type, Weight: e.Weight})
	}
	for _, e := range req.Remove {
		d.Remove = append(d.Remove, version.EdgeOp{Src: e.Src, Dst: e.Dst, Type: e.Type, Weight: e.Weight})
	}
	for _, a := range req.SetAttr {
		d.SetAttr = append(d.SetAttr, version.AttrOp{V: a.V, Attr: a.Attr})
	}
	epoch, added, removed, set, err := s.store.Append(d)
	reply.Added, reply.Removed, reply.AttrsSet, reply.Epoch = added, removed, set, epoch
	if err == nil && added+removed+set > 0 {
		s.met.updatesApplied.Add(int64(added + removed + set))
		s.met.updateBatches.Inc()
	}
	if err == nil {
		// Only successful applies are recorded: a rejected batch changed
		// nothing, so retrying it verbatim is safe and should re-validate.
		s.dedupRecord(req.Token, *reply)
	}
	if err == nil && added+removed+set > 0 {
		// Threshold-armed overlay compaction: signal the background
		// compactor, which folds the retention floor into a fresh base once
		// the cumulative overlay maps grow past the bound — an unbounded
		// update stream runs in bounded memory, and the O(V+E) fold never
		// blocks this update's reply.
		s.signalCompact()
	}
	return err
}

// Update is the RPC method for incremental graph maintenance.
func (g *GraphService) Update(req UpdateRequest, reply *UpdateReply) error {
	return g.S.ServeUpdate(req, reply)
}

// Lease is the RPC method pinning a snapshot epoch.
func (g *GraphService) Lease(req LeaseRequest, reply *LeaseReply) error {
	return g.S.ServeLease(req, reply)
}

// Release is the RPC method dropping a snapshot lease.
func (g *GraphService) Release(req ReleaseRequest, reply *ReleaseReply) error {
	return g.S.ServeRelease(req, reply)
}

// Compact is the RPC method folding old overlays into a fresh base.
func (g *GraphService) Compact(req CompactRequest, reply *CompactReply) error {
	return g.S.ServeCompact(req, reply)
}

// groupByPartition routes raw mutations to their owning partitions (edges
// and attribute rewrites live with their source/subject vertex), building
// one atomic UpdateRequest per touched server. Shared by ApplyDelta and
// UpdateStream.PushEdges so the routing rule exists once.
func groupByPartition(part func(graph.ID) int, add, remove []RawEdge, attrs []AttrUpdate) map[int]*UpdateRequest {
	reqs := make(map[int]*UpdateRequest)
	get := func(v graph.ID) *UpdateRequest {
		p := part(v)
		r, ok := reqs[p]
		if !ok {
			r = &UpdateRequest{}
			reqs[p] = r
		}
		return r
	}
	for _, e := range add {
		r := get(e.Src)
		r.Add = append(r.Add, e)
	}
	for _, e := range remove {
		r := get(e.Src)
		r.Remove = append(r.Remove, e)
	}
	for _, a := range attrs {
		r := get(a.V)
		r.SetAttr = append(r.SetAttr, a)
	}
	return reqs
}

// rawEdges converts graph edges to wire records.
func rawEdges(es []graph.Edge) []RawEdge {
	out := make([]RawEdge, len(es))
	for i, e := range es {
		out[i] = RawEdge{Src: e.Src, Dst: e.Dst, Type: e.Type, Weight: e.Weight}
	}
	return out
}

// ApplyDelta routes a snapshot delta (graph.Dynamic.Delta) to the owning
// servers, grouping mutations per partition. Each per-server batch applies
// atomically and the per-server pushes run concurrently (each batch touches
// a different server); counts fold back in ascending part order and the
// lowest-part failure surfaces, so results are reproducible.
func ApplyDelta(servers []*Server, assign func(graph.ID) int, delta graph.EdgeDelta) (added, removed int, err error) {
	reqs := groupByPartition(assign, rawEdges(delta.Added), rawEdges(delta.Removed), nil)
	parts := sortedParts(reqs)
	replies := make([]UpdateReply, len(parts))
	errs := scatterGather(len(parts), 0, func(i int) error {
		return servers[parts[i]].ServeUpdate(*reqs[parts[i]], &replies[i])
	})
	for i := range parts {
		if errs[i] != nil {
			return added, removed, errs[i]
		}
		added += replies[i].Added
		removed += replies[i].Removed
	}
	return added, removed, nil
}
