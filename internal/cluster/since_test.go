package cluster

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/partition"
)

// TestSinceOfAndProbeHeads covers the row-level validity seam end to end:
// attr replies carry per-row Since stamps, Stats replies carry head stamps
// (so ProbeHeads observes out-of-band churn), and SinceOf certifies exactly
// which vertices an update touched.
func TestSinceOfAndProbeHeads(t *testing.T) {
	g := churnTestGraph(60)
	a, err := (partition.HashPartitioner{}).Partition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	servers := FromGraph(g, a)
	c := NewClient(a, NewLocalTransport(servers, 0, 0), nil)

	// Pick one vertex per shard.
	var v0, v1 graph.ID
	seen := 0
	for v := graph.ID(0); v < 60 && seen < 2; v++ {
		if a.Part(v) == 0 && v0 == 0 && seen == 0 {
			v0, seen = v, 1
		} else if a.Part(v) == 1 {
			v1, seen = v, 2
		}
	}
	if a.Part(v0) != 0 || a.Part(v1) != 1 {
		t.Fatalf("failed to pick per-shard vertices: %d %d", v0, v1)
	}

	// Quiesced: everything predates every update, proven at epoch 0.
	adj, attr, upto, err := c.SinceOf([]graph.ID{v0, v1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range adj {
		if adj[i] != 0 || attr[i] != 0 || upto[i] != 0 {
			t.Fatalf("quiesced SinceOf[%d] = (%d,%d,%d), want zeros", i, adj[i], attr[i], upto[i])
		}
	}

	// Shard 0: one edge add touching v0's adjacency, and a SetAttr on v0.
	var ur UpdateReply
	err = servers[0].ServeUpdate(UpdateRequest{
		Add:     []RawEdge{{Src: v0, Dst: v1, Type: 0, Weight: 1}},
		SetAttr: []AttrUpdate{{V: v0, Attr: []float64{7, 7}}},
	}, &ur)
	if err != nil {
		t.Fatal(err)
	}
	if ur.Epoch != 1 {
		t.Fatalf("update epoch = %d, want 1", ur.Epoch)
	}

	// The attr reply stamps the touched row with its install epoch and
	// leaves untouched rows at 0.
	var ar AttrsReply
	if err := c.T.Attrs(0, AttrsRequest{Vertices: []graph.ID{v0}}, &ar); err != nil {
		t.Fatal(err)
	}
	if len(ar.Since) != 1 || ar.Since[0] != 1 {
		t.Fatalf("attr Since = %v, want [1]", ar.Since)
	}
	if ar.Attrs[0][0] != 7 {
		t.Fatalf("attr row = %v, want the rewritten row", ar.Attrs[0])
	}

	// SinceOf: v0's adjacency and row moved at epoch 1, v1 untouched; both
	// proofs extend to the serving epoch of their shard.
	adj, attr, upto, err = c.SinceOf([]graph.ID{v0, v1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if adj[0] != 1 || attr[0] != 1 || upto[0] != 1 {
		t.Fatalf("touched SinceOf = (%d,%d,%d), want (1,1,1)", adj[0], attr[0], upto[0])
	}
	if adj[1] != 0 || attr[1] != 0 || upto[1] != 0 {
		t.Fatalf("untouched SinceOf = (%d,%d,%d), want zeros", adj[1], attr[1], upto[1])
	}

	// ProbeHeads observes the churn with zero data RPCs: shard 0 at head 1
	// (attr head 1 too, the update set a row), shard 1 still at 0.
	heads, attrHeads, err := c.ProbeHeads()
	if err != nil {
		t.Fatal(err)
	}
	if heads[0] != 1 || heads[1] != 0 {
		t.Fatalf("probed heads = %v, want [1 0]", heads)
	}
	if attrHeads[0] != 1 || attrHeads[1] != 0 {
		t.Fatalf("probed attr heads = %v, want [1 0]", attrHeads)
	}
}
