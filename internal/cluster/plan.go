package cluster

import (
	"repro/internal/graph"
	"repro/internal/plan"
	"repro/internal/sampling"
)

// This file wires the adaptive sampling planner (internal/plan) into the
// client: plan storage and resolution, the per-lane counter export the
// planner decides against, and the ClientDraws execution path (full-list
// fetch + local slot-pure draws) that only exists as an explicit strategy.
//
// The invariant every path here preserves: a strategy changes WHERE a
// sample is computed, never WHAT it is. Uniform draws are pure functions
// of (seed, batch slot, adjacency list), so cached draws, local draws
// over a fetched list, and server-side draws of the same slot return the
// same vertex — fixed-seed training is bit-identical under any plan and
// under mid-run plan switches.

// SetPlan installs p as the client's active sampling plan (nil restores
// the built-in hybrid behavior). Plans are read lock-free on the hot path
// and must not be mutated after being passed in; the adaptive planner
// publishes a fresh Plan per decision window for exactly that reason.
// Safe to call concurrently with training.
func (c *Client) SetPlan(p *plan.Plan) { c.plan.Store(p) }

// ActivePlan returns the currently installed plan (nil when running the
// built-in default).
func (c *Client) ActivePlan() *plan.Plan { return c.plan.Load() }

// lanePlan resolves the active plan's choice for one lane. ClientDraws
// degrades to Hybrid when the cache cannot admit (a static importance
// cache, or no cache at all): fetching full lists that nothing retains
// would re-ship hub adjacency every batch — strictly worse than the
// server-side draw path the strategy tries to beat.
func (c *Client) lanePlan(t graph.EdgeType, hop int) plan.LanePlan {
	lp := c.plan.Load().For(int(t), hop)
	if lp.Strategy == plan.ClientDraws && !c.cacheAdmits {
		lp.Strategy = plan.Hybrid
	}
	return lp
}

// admit routes one fetched adjacency list toward the neighbor cache,
// honoring the lane's admission choice: a replacing cache skips lanes the
// plan marked cold (their entries would only evict a hot lane's), while a
// non-admitting cache always sees the Observe — for it this is
// revalidation of preloaded entries, not admission.
func (c *Client) admit(lp plan.LanePlan, v graph.ID, t graph.EdgeType, epoch, since uint64, ns []graph.ID) {
	if c.cacheAdmits && !lp.Admit {
		return
	}
	c.Cache.Observe(v, t, 1, epoch, since, ns)
}

// LaneStats snapshots the per-(edge type, hop) sampling-lane counters in
// the planner's vocabulary — the fetch half of Client.NewPlanner.
func (c *Client) LaneStats() map[plan.Lane]plan.LaneStats {
	lanes := c.hops.snapshot()
	out := make(map[plan.Lane]plan.LaneStats, len(lanes))
	for key, hs := range lanes {
		out[plan.Lane{Type: int(key >> 8), Hop: int(key & 0xff)}] = plan.LaneStats{
			Calls:       hs.calls.Load(),
			Slots:       hs.slots.Load(),
			RPCs:        hs.rpcs.Load(),
			Lookups:     hs.lookups.Load(),
			CacheHits:   hs.cacheHits.Load(),
			EpochMisses: hs.epochMiss.Load(),
			Degraded:    hs.degraded.Load(),
			Nanos:       hs.nanos.Load(),
		}
	}
	return out
}

// NewPlanner builds an adaptive planner over this client: it snapshots the
// client's sampling lanes each window and publishes its decisions through
// SetPlan. The caller owns the lifecycle (Start/Close, or manual Step).
func (c *Client) NewPlanner(cfg plan.Config) *plan.Planner {
	return plan.NewPlanner(cfg, c.LaneStats, c.SetPlan)
}

// sampleViaLists is the ClientDraws miss path of sampleBatchSpan: fetch
// the missed vertices' full adjacency lists (one Neighbors RPC per owning
// shard), admit them, and draw every occurrence locally with the same
// slot-pure stream the server would have used — bit-identical values, but
// the next batch hitting these hubs never leaves the process. uniq, occs,
// subUniq and parts are the caller's dedup state; dst slots of cache hits
// are already filled.
func (c *Client) sampleViaLists(dst []graph.ID, t graph.EdgeType, width int, seed uint64, pin *sampling.Pin, span *sampling.EpochSpan, hs *hopStats, lp plan.LanePlan, uniq []graph.ID, occs [][]int, subUniq map[int][]int, parts []int) error {
	hs.rpcs.Add(int64(len(parts)))
	reqs := make([]NeighborsRequest, len(parts))
	for i, p := range parts {
		js := subUniq[p]
		vs := make([]graph.ID, len(js))
		for k, j := range js {
			vs[k] = uniq[j]
		}
		reqs[i] = NeighborsRequest{Vertices: vs, EdgeType: t}
		reqs[i].Pin, reqs[i].Pinned = pinFields(pin, p)
	}
	replies := make([]NeighborsReply, len(parts))
	errs := c.scatter(parts, func(i, p int) error {
		return c.timed(mNeighbors, func() error { return c.T.Neighbors(p, reqs[i], &replies[i]) })
	})
	for i, p := range parts {
		js := subUniq[p]
		if err := errs[i]; err != nil {
			if !c.degraded(err) {
				return err
			}
			// Shard down: stale cached lists through the same slot-pure
			// streams (empty lists self-pad), mirroring the hybrid path.
			for _, j := range js {
				v := uniq[j]
				ns, _ := c.staleList(v, t)
				for _, pos := range occs[j] {
					rng := sampling.SlotRng(seed, pos)
					drawInto(dst[pos*width:(pos+1)*width], v, ns, &rng)
					c.degradedDraws.Add(1)
					hs.degraded.Inc()
				}
			}
			degradeSpan(span, pin)
			continue
		}
		reply := &replies[i]
		c.observe(p, span, pin, reply.Epoch, reply.Head, reply.AttrHead)
		for li, j := range js {
			v := uniq[j]
			ns := reply.Neighbors[li]
			c.admit(lp, v, t, reply.Epoch, replySince(reply.Since, li, reply.Epoch), ns)
			for _, pos := range occs[j] {
				rng := sampling.SlotRng(seed, pos)
				drawInto(dst[pos*width:(pos+1)*width], v, ns, &rng)
			}
		}
	}
	return nil
}
