package cluster

import (
	"sync"
	"sync/atomic"

	"repro/internal/sampling"
	"repro/internal/storage"
)

// This file implements the client side of epoch pinning: a shared,
// reference-counted pin over the per-server snapshot leases. The training
// scheduler calls Pin once per mini-batch; in steady state (no updates
// since the last lease round) that is a refcount increment with zero RPCs.
// Every sampling reply carries the serving shard's head epoch, so the
// manager notices an update landing anywhere in the cluster and leases a
// fresh snapshot for the next batch — one Lease RPC per server per epoch
// advance, not per batch. Superseded pins release their leases when the
// last batch holding them recycles.

// pinState tracks one issued pin's reference count plus the per-shard
// edge-count and edge-weight stats of the leased epochs (they ride the
// Lease replies). TRAVERSE batch splits under this pin read them instead
// of the head's moving counters.
type pinState struct {
	pin     *sampling.Pin
	refs    int
	dead    bool // lease observed lost (eviction); never handed out again
	edges   [][]int64
	weights [][]float64
	// leased[part] records whether this pin actually holds a server-side
	// lease on part. A degraded Pin records a down shard's last observed
	// head WITHOUT leasing it; releasing that epoch anyway would decrement
	// a lease some other pin holds (nil means every part is leased).
	leased []bool
}

// pinManager lives inside Client.
type pinManager struct {
	mu     sync.Mutex
	cur    *pinState
	states map[*sampling.Pin]*pinState
	seq    uint64
	heads  []atomic.Uint64 // newest head epoch observed per partition
	// attrHeads is the newest attribute-rewriting epoch observed per
	// partition. Every sampling reply carries it, so the attribute cache
	// learns about attribute updates even when it is fully hot and makes
	// no Attrs RPCs of its own.
	attrHeads []atomic.Uint64
}

func newPinManager(parts int) *pinManager {
	return &pinManager{
		states:    make(map[*sampling.Pin]*pinState),
		heads:     make([]atomic.Uint64, parts),
		attrHeads: make([]atomic.Uint64, parts),
	}
}

// noteHead records the head and attr-head epochs observed on a reply from
// part.
func (m *pinManager) noteHead(part int, head, attrHead uint64) {
	advance(&m.heads[part], head)
	advance(&m.attrHeads[part], attrHead)
}

// advance raises a monotone watermark to v.
func advance(w *atomic.Uint64, v uint64) {
	for {
		old := w.Load()
		if v <= old || w.CompareAndSwap(old, v) {
			return
		}
	}
}

// staleLocked reports whether any shard's observed head moved past p.
func (m *pinManager) staleLocked(p *sampling.Pin) bool {
	for part, e := range p.Epochs {
		if m.heads[part].Load() > e {
			return true
		}
	}
	return false
}

// Pin implements sampling.PinSource: it returns a reference to the current
// pin, leasing a fresh cluster-wide snapshot only when the current one is
// stale (an update was observed) or absent.
func (c *Client) Pin() (*sampling.Pin, error) {
	m := c.pins
	m.mu.Lock()
	if m.cur != nil && !m.cur.dead && !m.staleLocked(m.cur.pin) {
		m.cur.refs++
		p := m.cur.pin
		m.mu.Unlock()
		return p, nil
	}
	m.mu.Unlock()

	// Lease the current head on every server (outside the lock: RPCs). The
	// lease round scatters to all shards concurrently — an epoch advance
	// costs one parallel round (max RTT), not shards sequential lease RPCs
	// — and replies are folded in ascending part order on this goroutine,
	// so head bookkeeping and error selection stay deterministic.
	epochs := make([]uint64, c.Assign.P)
	edges := make([][]int64, c.Assign.P)
	weights := make([][]float64, c.Assign.P)
	leased := make([]bool, c.Assign.P)
	replies := make([]LeaseReply, c.Assign.P)
	errs := c.scatter(allParts(c.Assign.P), func(i, part int) error {
		return c.timed(mLease, func() error { return c.T.Lease(part, LeaseRequest{}, &replies[i]) })
	})
	for part := 0; part < c.Assign.P; part++ {
		if err := errs[part]; err != nil {
			if c.degraded(err) {
				// Down shard under degradation: pin the last head observed
				// from it with nil stats — edgeSplit then allocates it zero
				// TRAVERSE mass and its reads degrade to stale cache
				// serving. When the shard recovers at a different epoch the
				// read errors surface as evicted/future and the existing
				// re-pin path takes over. No lease was taken, so leased[part]
				// stays false and release paths skip it.
				epochs[part] = m.heads[part].Load()
				edges[part], weights[part] = nil, nil
				c.degradedDraws.Add(1)
				continue
			}
			// Unwind every lease the round DID take (the scatter contacted
			// all shards, so later parts may hold leases too), then surface
			// the lowest-part hard failure.
			var rel []int
			for q := 0; q < c.Assign.P; q++ {
				if errs[q] == nil {
					rel = append(rel, q)
				}
			}
			c.scatter(rel, func(i, q int) error {
				return c.timed(mRelease, func() error {
					return c.T.Release(q, ReleaseRequest{Epoch: replies[q].Epoch}, &ReleaseReply{})
				})
			})
			return nil, err
		}
		reply := &replies[part]
		epochs[part] = reply.Epoch
		leased[part] = true
		edges[part] = reply.EdgesByType
		weights[part] = reply.WeightByType
		// A lease reply is authoritative about the shard's head, so store
		// it outright rather than advancing the monotone watermark: after a
		// server restart (head back near 0) the watermark would otherwise
		// stay above the new heads forever and every Pin would re-lease.
		// A regression also means the shard's epoch NUMBERING restarted:
		// neighbor-cache validity intervals recorded under the old
		// incarnation are incomparable with the new one (an old [6,10]
		// entry would wrongly hit once the fresh store reaches epoch 7),
		// so the cache is flushed.
		if old := m.heads[part].Load(); reply.Head < old {
			if f, ok := c.Cache.(storage.Flusher); ok {
				f.Flush()
			}
		}
		m.heads[part].Store(reply.Head)
		advance(&m.attrHeads[part], reply.AttrHead)
	}

	m.mu.Lock()
	m.seq++
	pin := &sampling.Pin{Stamp: m.seq, Epochs: epochs}
	st := &pinState{pin: pin, refs: 1, edges: edges, weights: weights, leased: leased}
	m.states[pin] = st
	old := m.cur
	m.cur = st
	var release *pinState
	if old != nil && old.refs == 0 {
		delete(m.states, old.pin)
		release = old
	}
	m.mu.Unlock()
	if release != nil {
		c.releaseLeases(release)
	}
	return pin, nil
}

// Unpin implements sampling.PinSource, dropping one reference. The backend
// leases of a superseded (or discarded) pin are released when its last
// reference goes.
func (c *Client) Unpin(p *sampling.Pin) {
	if p == nil {
		return
	}
	m := c.pins
	m.mu.Lock()
	st, ok := m.states[p]
	if !ok {
		m.mu.Unlock()
		return
	}
	if st.refs > 0 {
		st.refs--
	}
	var release *pinState
	if st.refs == 0 && st != m.cur {
		// Release even when the pin was Discarded: only the shard that
		// evicted the epoch lost its lease — the other shards still hold
		// theirs, and skipping the release would pin their overlays
		// forever. Server-side Release of an unknown epoch is a no-op, so
		// the dead shard safely ignores it.
		delete(m.states, p)
		release = st
	}
	m.mu.Unlock()
	if release != nil {
		c.releaseLeases(release)
	}
}

// Discard implements sampling.PinSource: p's lease was observed lost (an
// evicted-epoch error came back under it), so the next Pin leases afresh.
func (c *Client) Discard(p *sampling.Pin) {
	if p == nil {
		return
	}
	m := c.pins
	m.mu.Lock()
	var release *pinState
	if st, ok := m.states[p]; ok {
		st.dead = true
		if m.cur == st {
			m.cur = nil
		}
		if st.refs == 0 {
			delete(m.states, p)
			release = st
		}
	}
	m.mu.Unlock()
	if release != nil {
		c.releaseLeases(release)
	}
}

// releaseLeases best-effort-releases st's per-server leases in one
// concurrent scatter round; a failed release only delays that epoch's
// eviction until the ring bound would have anyway (it can never corrupt
// reads). Parts the pin never leased (degraded pins record a down shard's
// last head without a lease) are skipped: releasing them would decrement a
// lease held by another pin on the same epoch, letting the server evict an
// epoch still in use.
func (c *Client) releaseLeases(st *pinState) {
	parts := make([]int, 0, len(st.pin.Epochs))
	for part := range st.pin.Epochs {
		if st.leased != nil && !st.leased[part] {
			continue
		}
		parts = append(parts, part)
	}
	c.scatter(parts, func(i, part int) error {
		return c.timed(mRelease, func() error {
			return c.T.Release(part, ReleaseRequest{Epoch: st.pin.Epochs[part]}, &ReleaseReply{})
		})
	})
}

// statsFor returns the per-shard edge-count and edge-weight stats leased
// with p, or nils when the pin is unknown (callers then fall back to head
// stats).
func (m *pinManager) statsFor(p *sampling.Pin) ([][]int64, [][]float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if st, ok := m.states[p]; ok {
		return st.edges, st.weights
	}
	return nil, nil
}

// currentPin reports, for tests and diagnostics, the pin the manager would
// currently hand out (nil when none is live).
func (c *Client) currentPin() *sampling.Pin {
	m := c.pins
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cur == nil {
		return nil
	}
	return m.cur.pin
}

// ReleaseIdlePins releases the backend leases of every pin no batch
// references anymore — including the manager's current pin, which otherwise
// keeps one lease per shard alive for the life of the client. Call it when
// a training session ends (aligraph's Trainer.Close does); long-running
// servers would otherwise accumulate one permanently pinned epoch per
// client session. The client remains usable: the next Pin leases afresh.
func (c *Client) ReleaseIdlePins() {
	m := c.pins
	m.mu.Lock()
	var release []*pinState
	for p, st := range m.states {
		if st.refs == 0 {
			delete(m.states, p)
			release = append(release, st)
		}
	}
	m.cur = nil
	m.mu.Unlock()
	for _, st := range release {
		c.releaseLeases(st)
	}
}
