package cluster

import (
	"testing"
	"time"

	"repro/internal/partition"
)

// countingStats counts how many Stats calls reach the inner transport,
// per shard.
type countingStats struct {
	Transport
	calls [8]int
}

func (c *countingStats) Stats(part int, req StatsRequest, reply *StatsReply) error {
	c.calls[part]++
	return c.Transport.Stats(part, req, reply)
}

// TestSharedShardHealth: two RetryTransports over the same shard fleet share
// one ShardHealth. The first transport's discovery of a dead shard must
// fast-fail the second with ZERO inner calls (no duplicate probe budget),
// and one transport's successful half-open probe must close the breaker for
// both.
func TestSharedShardHealth(t *testing.T) {
	g := churnTestGraph(60)
	a, err := (partition.HashPartitioner{}).Partition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	servers := FromGraph(g, a)
	local := NewLocalTransport(servers, 0, 0)

	// Shard 1 fails its first 2 calls, then recovers. The counters are
	// per-transport so we can attribute every inner call.
	ft := NewFaultTransport(local, 2, FaultConfig{Outages: []Outage{{Part: 1, From: 0, Len: 2}}})
	ctA := &countingStats{Transport: ft}
	ctB := &countingStats{Transport: ft}

	pol := CallPolicy{Attempts: 2, FailThreshold: 2, Cooldown: 2 * time.Millisecond}
	health := NewShardHealth(2)
	rtA := NewRetryTransportShared(ctA, pol, 1, health)
	rtB := NewRetryTransportShared(ctB, pol, 2, health)

	// A's call burns the whole outage (2 attempts = 2 consecutive failures)
	// and opens the shared breaker.
	var sr StatsReply
	if err := rtA.Stats(1, StatsRequest{}, &sr); !IsShardDown(err) {
		t.Fatalf("want ShardDownError from the outage, got %v", err)
	}
	if !health.Open(1) || !rtA.BreakerOpen(1) || !rtB.BreakerOpen(1) {
		t.Fatal("breaker must be open in the shared view and both transports")
	}

	// B fast-fails inside the cooldown without touching the wire.
	if err := rtB.Stats(1, StatsRequest{}, &sr); !IsShardDown(err) {
		t.Fatalf("want fast-fail ShardDownError, got %v", err)
	}
	if ctB.calls[1] != 0 {
		t.Fatalf("B paid %d inner calls to the dead shard; shared health should cost 0", ctB.calls[1])
	}
	if rtB.FastFails() != 1 {
		t.Fatalf("B fast-fails = %d, want 1", rtB.FastFails())
	}

	// The healthy shard is unaffected for both transports.
	if err := rtB.Stats(0, StatsRequest{}, &sr); err != nil {
		t.Fatalf("healthy shard through B: %v", err)
	}
	if err := rtA.Stats(0, StatsRequest{}, &sr); err != nil {
		t.Fatalf("healthy shard through A: %v", err)
	}

	// After the cooldown, B's half-open probe succeeds (the outage is over)
	// and closes the breaker for everyone.
	time.Sleep(5 * time.Millisecond)
	if err := rtB.Stats(1, StatsRequest{}, &sr); err != nil {
		t.Fatalf("half-open probe through B: %v", err)
	}
	if health.Open(1) || rtA.BreakerOpen(1) {
		t.Fatal("successful probe must close the breaker for all sharers")
	}
	if err := rtA.Stats(1, StatsRequest{}, &sr); err != nil {
		t.Fatalf("A after shared recovery: %v", err)
	}
	if ctA.calls[1] != 3 {
		// 2 outage attempts + 1 post-recovery call; the probe was B's.
		t.Fatalf("A inner calls to shard 1 = %d, want 3", ctA.calls[1])
	}
}
