package cluster

import (
	"fmt"
	"net"
	"net/rpc"
	"sync"
)

// This file provides the real-network transport: each graph server is
// exposed over net/rpc (gob encoding) on a TCP listener, and RPCTransport
// dials every server. The wire types are the same NeighborsRequest /
// AttrsRequest pairs used by LocalTransport, so the client is oblivious to
// which transport it runs on.

// GraphService is the RPC receiver wrapping a Server.
type GraphService struct {
	S *Server
}

// Neighbors is the RPC method for batched neighbor fetches.
func (g *GraphService) Neighbors(req NeighborsRequest, reply *NeighborsReply) error {
	return g.S.ServeNeighbors(req, reply)
}

// SampleNeighbors is the RPC method for server-side fixed-width neighbor
// draws (width IDs per slot instead of full hub adjacency lists).
func (g *GraphService) SampleNeighbors(req SampleRequest, reply *SampleReply) error {
	return g.S.ServeSampleNeighbors(req, reply)
}

// SampleEdges is the RPC method for uniform local edge draws (the
// distributed TRAVERSE).
func (g *GraphService) SampleEdges(req EdgesRequest, reply *EdgesReply) error {
	return g.S.ServeSampleEdges(req, reply)
}

// NegativePool is the RPC method for local negative-candidate counts.
func (g *GraphService) NegativePool(req NegPoolRequest, reply *NegPoolReply) error {
	return g.S.ServeNegativePool(req, reply)
}

// Stats is the RPC method for local size counters.
func (g *GraphService) Stats(req StatsRequest, reply *StatsReply) error {
	return g.S.ServeStats(req, reply)
}

// Attrs is the RPC method for batched attribute fetches.
func (g *GraphService) Attrs(req AttrsRequest, reply *AttrsReply) error {
	return g.S.ServeAttrs(req, reply)
}

// Bootstrap is the RPC method serving the partition assignment and schema,
// so workers start graph-free.
func (g *GraphService) Bootstrap(req BootstrapRequest, reply *BootstrapReply) error {
	return g.S.ServeBootstrap(req, reply)
}

// RPCServer serves one graph server over TCP.
type RPCServer struct {
	lis net.Listener
	srv *rpc.Server

	mu     sync.Mutex
	closed bool
}

// ServeRPC starts serving s on addr (e.g. "127.0.0.1:0") and returns the
// bound server; the accept loop runs until Close.
func ServeRPC(s *Server, addr string) (*RPCServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen %s: %w", addr, err)
	}
	srv := rpc.NewServer()
	if err := srv.RegisterName("Graph", &GraphService{S: s}); err != nil {
		lis.Close()
		return nil, err
	}
	rs := &RPCServer{lis: lis, srv: srv}
	go rs.acceptLoop()
	return rs, nil
}

func (rs *RPCServer) acceptLoop() {
	for {
		conn, err := rs.lis.Accept()
		if err != nil {
			return // listener closed
		}
		go rs.srv.ServeConn(conn)
	}
}

// Addr returns the bound address.
func (rs *RPCServer) Addr() string { return rs.lis.Addr().String() }

// Close stops the listener.
func (rs *RPCServer) Close() error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.closed {
		return nil
	}
	rs.closed = true
	return rs.lis.Close()
}

// RPCTransport dials one RPC client per partition.
type RPCTransport struct {
	clients []*rpc.Client
}

// DialRPC connects to the given per-partition addresses.
func DialRPC(addrs []string) (*RPCTransport, error) {
	t := &RPCTransport{clients: make([]*rpc.Client, len(addrs))}
	for i, a := range addrs {
		c, err := rpc.Dial("tcp", a)
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("cluster: dial %s: %w", a, err)
		}
		t.clients[i] = c
	}
	return t, nil
}

func (t *RPCTransport) call(part int, method string, req, reply any) error {
	if part < 0 || part >= len(t.clients) {
		return fmt.Errorf("cluster: no client for partition %d", part)
	}
	return t.clients[part].Call(method, req, reply)
}

// Neighbors implements Transport.
func (t *RPCTransport) Neighbors(part int, req NeighborsRequest, reply *NeighborsReply) error {
	return t.call(part, "Graph.Neighbors", req, reply)
}

// SampleNeighbors implements Transport.
func (t *RPCTransport) SampleNeighbors(part int, req SampleRequest, reply *SampleReply) error {
	return t.call(part, "Graph.SampleNeighbors", req, reply)
}

// SampleEdges implements Transport.
func (t *RPCTransport) SampleEdges(part int, req EdgesRequest, reply *EdgesReply) error {
	return t.call(part, "Graph.SampleEdges", req, reply)
}

// NegativePool implements Transport.
func (t *RPCTransport) NegativePool(part int, req NegPoolRequest, reply *NegPoolReply) error {
	return t.call(part, "Graph.NegativePool", req, reply)
}

// Stats implements Transport.
func (t *RPCTransport) Stats(part int, req StatsRequest, reply *StatsReply) error {
	return t.call(part, "Graph.Stats", req, reply)
}

// Attrs implements Transport.
func (t *RPCTransport) Attrs(part int, req AttrsRequest, reply *AttrsReply) error {
	return t.call(part, "Graph.Attrs", req, reply)
}

// Bootstrap implements Transport.
func (t *RPCTransport) Bootstrap(part int, req BootstrapRequest, reply *BootstrapReply) error {
	return t.call(part, "Graph.Bootstrap", req, reply)
}

// Update implements Transport.
func (t *RPCTransport) Update(part int, req UpdateRequest, reply *UpdateReply) error {
	return t.call(part, "Graph.Update", req, reply)
}

// Lease implements Transport.
func (t *RPCTransport) Lease(part int, req LeaseRequest, reply *LeaseReply) error {
	return t.call(part, "Graph.Lease", req, reply)
}

// Release implements Transport.
func (t *RPCTransport) Release(part int, req ReleaseRequest, reply *ReleaseReply) error {
	return t.call(part, "Graph.Release", req, reply)
}

// Compact implements Transport.
func (t *RPCTransport) Compact(part int, req CompactRequest, reply *CompactReply) error {
	return t.call(part, "Graph.Compact", req, reply)
}

// Close implements Transport.
func (t *RPCTransport) Close() error {
	var first error
	for _, c := range t.clients {
		if c == nil {
			continue
		}
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
