package cluster

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/rpc"
	"sync"
	"time"
)

// This file provides the real-network transport: each graph server is
// exposed over net/rpc (gob encoding) on a TCP listener, and RPCTransport
// dials every server. The wire types are the same NeighborsRequest /
// AttrsRequest pairs used by LocalTransport, so the client is oblivious to
// which transport it runs on.

// GraphService is the RPC receiver wrapping a Server.
type GraphService struct {
	S *Server
}

// Neighbors is the RPC method for batched neighbor fetches.
func (g *GraphService) Neighbors(req NeighborsRequest, reply *NeighborsReply) error {
	return g.S.ServeNeighbors(req, reply)
}

// SampleNeighbors is the RPC method for server-side fixed-width neighbor
// draws (width IDs per slot instead of full hub adjacency lists).
func (g *GraphService) SampleNeighbors(req SampleRequest, reply *SampleReply) error {
	return g.S.ServeSampleNeighbors(req, reply)
}

// SampleEdges is the RPC method for uniform local edge draws (the
// distributed TRAVERSE).
func (g *GraphService) SampleEdges(req EdgesRequest, reply *EdgesReply) error {
	return g.S.ServeSampleEdges(req, reply)
}

// NegativePool is the RPC method for local negative-candidate counts.
func (g *GraphService) NegativePool(req NegPoolRequest, reply *NegPoolReply) error {
	return g.S.ServeNegativePool(req, reply)
}

// Stats is the RPC method for local size counters.
func (g *GraphService) Stats(req StatsRequest, reply *StatsReply) error {
	return g.S.ServeStats(req, reply)
}

// Attrs is the RPC method for batched attribute fetches.
func (g *GraphService) Attrs(req AttrsRequest, reply *AttrsReply) error {
	return g.S.ServeAttrs(req, reply)
}

// Bootstrap is the RPC method serving the partition assignment and schema,
// so workers start graph-free.
func (g *GraphService) Bootstrap(req BootstrapRequest, reply *BootstrapReply) error {
	return g.S.ServeBootstrap(req, reply)
}

// RPCServer serves one graph server over TCP, tracking its accepted
// connections so Close severs in-flight clients (a real process kill does;
// the restart tests rely on the same semantics in-process).
type RPCServer struct {
	lis net.Listener
	srv *rpc.Server

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
}

// ServeRPC starts serving s on addr (e.g. "127.0.0.1:0") and returns the
// bound server; the accept loop runs until Close.
func ServeRPC(s *Server, addr string) (*RPCServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen %s: %w", addr, err)
	}
	srv := rpc.NewServer()
	if err := srv.RegisterName("Graph", &GraphService{S: s}); err != nil {
		lis.Close()
		return nil, err
	}
	rs := &RPCServer{lis: lis, srv: srv, conns: make(map[net.Conn]struct{})}
	go rs.acceptLoop()
	return rs, nil
}

func (rs *RPCServer) acceptLoop() {
	for {
		conn, err := rs.lis.Accept()
		if err != nil {
			return // listener closed
		}
		rs.mu.Lock()
		if rs.closed {
			rs.mu.Unlock()
			conn.Close()
			return
		}
		rs.conns[conn] = struct{}{}
		rs.mu.Unlock()
		go func() {
			rs.srv.ServeConn(conn)
			rs.mu.Lock()
			delete(rs.conns, conn)
			rs.mu.Unlock()
		}()
	}
}

// Addr returns the bound address.
func (rs *RPCServer) Addr() string { return rs.lis.Addr().String() }

// Close stops the listener and severs every established connection, so
// clients observe the same io.EOF/ErrShutdown a crashed process would
// produce. Idempotent.
func (rs *RPCServer) Close() error {
	rs.mu.Lock()
	if rs.closed {
		rs.mu.Unlock()
		return nil
	}
	rs.closed = true
	conns := make([]net.Conn, 0, len(rs.conns))
	for c := range rs.conns {
		conns = append(conns, c)
	}
	rs.mu.Unlock()
	err := rs.lis.Close()
	for _, c := range conns {
		c.Close()
	}
	return err
}

// DefaultDialTimeout bounds connection establishment when the caller does
// not configure one; the historical DialRPC blocked indefinitely on an
// unresponsive address.
const DefaultDialTimeout = 5 * time.Second

// DialConfig tunes DialRPCConfig.
type DialConfig struct {
	// Timeout bounds each TCP connect (default DefaultDialTimeout).
	Timeout time.Duration
	// Lazy defers connecting: unreachable shards do not fail construction,
	// their connections are established (with the same timeout) on first
	// call. Combined with a RetryTransport this lets a client start while a
	// shard is still booting.
	Lazy bool
}

// RPCTransport dials one RPC client per partition, lazily redialing after a
// transport-level failure so a restarted server is transparently
// re-adopted: the dead client is dropped on the failing call and the next
// call to that shard dials afresh.
type RPCTransport struct {
	addrs       []string
	dialTimeout time.Duration

	mu      sync.Mutex
	clients []*rpc.Client
	closed  bool
}

// DialRPC connects to the given per-partition addresses eagerly with the
// default timeout; any unreachable address fails construction (the
// historical contract). Use DialRPCConfig for lazy dialing.
func DialRPC(addrs []string) (*RPCTransport, error) {
	return DialRPCConfig(addrs, DialConfig{})
}

// DialRPCConfig connects to the given per-partition addresses under cfg.
func DialRPCConfig(addrs []string, cfg DialConfig) (*RPCTransport, error) {
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultDialTimeout
	}
	t := &RPCTransport{
		addrs:       append([]string(nil), addrs...),
		dialTimeout: cfg.Timeout,
		clients:     make([]*rpc.Client, len(addrs)),
	}
	if cfg.Lazy {
		return t, nil
	}
	for i := range t.addrs {
		c, err := t.dial(i)
		if err != nil {
			t.Close()
			return nil, err
		}
		t.clients[i] = c
	}
	return t, nil
}

// dial establishes one connection with the configured timeout.
func (t *RPCTransport) dial(part int) (*rpc.Client, error) {
	conn, err := net.DialTimeout("tcp", t.addrs[part], t.dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial %s: %w", t.addrs[part], err)
	}
	return rpc.NewClient(conn), nil
}

// client returns part's live client, dialing (or redialing after a dropped
// connection) if needed.
func (t *RPCTransport) client(part int) (*rpc.Client, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, fmt.Errorf("cluster: transport closed")
	}
	if c := t.clients[part]; c != nil {
		t.mu.Unlock()
		return c, nil
	}
	t.mu.Unlock()
	c, err := t.dial(part)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		c.Close()
		return nil, fmt.Errorf("cluster: transport closed")
	}
	if cur := t.clients[part]; cur != nil {
		// A concurrent caller dialed first; use theirs.
		t.mu.Unlock()
		c.Close()
		return cur, nil
	}
	t.clients[part] = c
	t.mu.Unlock()
	return c, nil
}

// Kick severs part's current connection unconditionally (implements the
// policy layer's Kicker). Closing the rpc.Client fails its pending calls
// with ErrShutdown — unblocking any deadline-abandoned attempt still parked
// on the conn — and the next call to part dials afresh. Needed because a
// deadline expiry observed by RetryTransport never flows through this
// transport's own call path, so connFatal alone would leave a silently hung
// connection (network partition with no FIN/RST) in place forever.
func (t *RPCTransport) Kick(part int) {
	if part < 0 || part >= len(t.addrs) {
		return
	}
	t.mu.Lock()
	c := t.clients[part]
	t.clients[part] = nil
	t.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

// drop discards part's client if it is still the one that failed (pointer
// identity, so a newer redialed client is never discarded by a stale
// failure), closing the dead connection.
func (t *RPCTransport) drop(part int, c *rpc.Client) {
	t.mu.Lock()
	if t.clients[part] == c {
		t.clients[part] = nil
	}
	t.mu.Unlock()
	c.Close()
}

// connFatal reports whether a call error means the connection itself is
// dead and must be redialed.
func connFatal(err error) bool {
	if errors.Is(err, rpc.ErrShutdown) || errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne)
}

func (t *RPCTransport) call(part int, method string, req, reply any) error {
	if part < 0 || part >= len(t.clients) {
		return fmt.Errorf("cluster: no client for partition %d", part)
	}
	c, err := t.client(part)
	if err != nil {
		return err
	}
	if err := c.Call(method, req, reply); err != nil {
		if connFatal(err) {
			t.drop(part, c)
		}
		return err
	}
	return nil
}

// Neighbors implements Transport.
func (t *RPCTransport) Neighbors(part int, req NeighborsRequest, reply *NeighborsReply) error {
	return t.call(part, "Graph.Neighbors", req, reply)
}

// SampleNeighbors implements Transport.
func (t *RPCTransport) SampleNeighbors(part int, req SampleRequest, reply *SampleReply) error {
	return t.call(part, "Graph.SampleNeighbors", req, reply)
}

// SampleEdges implements Transport.
func (t *RPCTransport) SampleEdges(part int, req EdgesRequest, reply *EdgesReply) error {
	return t.call(part, "Graph.SampleEdges", req, reply)
}

// NegativePool implements Transport.
func (t *RPCTransport) NegativePool(part int, req NegPoolRequest, reply *NegPoolReply) error {
	return t.call(part, "Graph.NegativePool", req, reply)
}

// Stats implements Transport.
func (t *RPCTransport) Stats(part int, req StatsRequest, reply *StatsReply) error {
	return t.call(part, "Graph.Stats", req, reply)
}

// Attrs implements Transport.
func (t *RPCTransport) Attrs(part int, req AttrsRequest, reply *AttrsReply) error {
	return t.call(part, "Graph.Attrs", req, reply)
}

// Bootstrap implements Transport.
func (t *RPCTransport) Bootstrap(part int, req BootstrapRequest, reply *BootstrapReply) error {
	return t.call(part, "Graph.Bootstrap", req, reply)
}

// Update implements Transport.
func (t *RPCTransport) Update(part int, req UpdateRequest, reply *UpdateReply) error {
	return t.call(part, "Graph.Update", req, reply)
}

// Lease implements Transport.
func (t *RPCTransport) Lease(part int, req LeaseRequest, reply *LeaseReply) error {
	return t.call(part, "Graph.Lease", req, reply)
}

// Release implements Transport.
func (t *RPCTransport) Release(part int, req ReleaseRequest, reply *ReleaseReply) error {
	return t.call(part, "Graph.Release", req, reply)
}

// Compact implements Transport.
func (t *RPCTransport) Compact(part int, req CompactRequest, reply *CompactReply) error {
	return t.call(part, "Graph.Compact", req, reply)
}

// Close implements Transport: every client is closed even when an earlier
// close errors (the errors are joined), and double-Close is safe.
func (t *RPCTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	clients := make([]*rpc.Client, len(t.clients))
	copy(clients, t.clients)
	for i := range t.clients {
		t.clients[i] = nil
	}
	t.mu.Unlock()
	var errs []error
	for i, c := range clients {
		if c == nil {
			continue
		}
		if err := c.Close(); err != nil && !errors.Is(err, rpc.ErrShutdown) {
			errs = append(errs, fmt.Errorf("cluster: close %s: %w", t.addrs[i], err))
		}
	}
	return errors.Join(errs...)
}
