package cluster

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/storage"
)

// TestScatterGatherOrderAndErrors covers the primitive itself: sequential
// mode runs in index order, errors come back indexed like the calls, the
// deterministic aggregate is the lowest-index failure, and the limit bounds
// (or, at 0, does not bound) concurrency.
func TestScatterGatherOrderAndErrors(t *testing.T) {
	boom := errors.New("boom")

	// limit 1: inline, in index order, all calls run despite errors.
	var order []int
	errs := scatterGather(5, 1, func(i int) error {
		order = append(order, i)
		if i == 2 || i == 4 {
			return boom
		}
		return nil
	})
	for i, o := range order {
		if o != i {
			t.Fatalf("sequential order = %v", order)
		}
	}
	if errs[2] != boom || errs[4] != boom || errs[0] != nil {
		t.Fatalf("errs = %v", errs)
	}
	if firstError(errs) != boom {
		t.Fatalf("firstError = %v", firstError(errs))
	}
	if firstError(make([]error, 3)) != nil {
		t.Fatal("firstError of clean round != nil")
	}

	// limit 3: never more than 3 in flight.
	var cur, peak atomic.Int64
	scatterGather(16, 3, func(i int) error {
		c := cur.Add(1)
		for {
			m := peak.Load()
			if c <= m || peak.CompareAndSwap(m, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return nil
	})
	if p := peak.Load(); p > 3 {
		t.Fatalf("limit 3 allowed %d in flight", p)
	}

	// limit 0: genuinely unbounded — every call must be in flight at once
	// (each waits for all n to start; anything sequential would deadlock
	// into the test timeout).
	const n = 8
	var mu sync.Mutex
	started := 0
	all := make(chan struct{})
	scatterGather(n, 0, func(i int) error {
		mu.Lock()
		started++
		if started == n {
			close(all)
		}
		mu.Unlock()
		<-all
		return nil
	})
}

// TestFanoutBitIdenticalUnderFaultsRace is the satellite -race test: many
// goroutines share ONE concurrent-fan-out Client whose transport injects
// drops, lost replies and shard outages, and every draw must come back
// bit-identical to a sequential (Fanout=1) fault-free reference client.
// Slot-/seed-pure draws plus ordered gathers make the reply values
// independent of both scheduling and retries.
func TestFanoutBitIdenticalUnderFaultsRace(t *testing.T) {
	g := churnTestGraph(200)
	a, err := (partition.HashPartitioner{}).Partition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	servers := FromGraph(g, a)
	batch := []graph.ID{0, 1, 2, 3, 5, 8, 13, 21}
	const width = 4
	seeds := []uint64{101, 202, 303, 404, 505, 606, 707, 808}

	// Sequential fault-free reference.
	ref := NewClient(a, NewLocalTransport(servers, 0, 0), storage.NoCache{})
	ref.Fanout = 1
	wantSample := make(map[uint64][]graph.ID, len(seeds))
	for _, s := range seeds {
		dst := make([]graph.ID, len(batch)*width)
		if err := ref.SampleBatch(dst, batch, 0, width, false, s); err != nil {
			t.Fatal(err)
		}
		wantSample[s] = dst
	}
	wantNbrs, err := ref.BatchNeighbors(batch, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantPool, wantCounts, err := ref.NegativePool(0)
	if err != nil {
		t.Fatal(err)
	}

	// One shared fan-out client over a faulty stack. Outage windows are
	// shorter than the retry budget so every call eventually lands;
	// FailThreshold 0 keeps the breaker out of the way (an open breaker
	// would need Degrade, which trades bit-identity for availability).
	ft := NewFaultTransport(NewLocalTransport(servers, 0, 0), 2, FaultConfig{
		Seed:          5,
		DropRate:      0.05,
		ReplyDropRate: 0.02,
		Outages: []Outage{
			{Part: 1, From: 30, Len: 3},
			{Part: 0, From: 70, Len: 3},
		},
	})
	rt := NewRetryTransport(ft, 2, CallPolicy{
		Timeout:    2 * time.Second,
		Attempts:   8,
		Backoff:    50 * time.Microsecond,
		MaxBackoff: 500 * time.Microsecond,
	}, 7)
	c := NewClient(a, rt, storage.NoCache{})

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dst := make([]graph.ID, len(batch)*width)
			for iter := 0; iter < 12; iter++ {
				seed := seeds[(w+iter)%len(seeds)]
				if err := c.SampleBatch(dst, batch, 0, width, false, seed); err != nil {
					t.Errorf("SampleBatch: %v", err)
					return
				}
				for i, v := range dst {
					if v != wantSample[seed][i] {
						t.Errorf("seed %d slot %d: draw %d != sequential fault-free %d", seed, i, v, wantSample[seed][i])
						return
					}
				}
				nbrs, err := c.BatchNeighbors(batch, 0)
				if err != nil {
					t.Errorf("BatchNeighbors: %v", err)
					return
				}
				for i := range nbrs {
					if len(nbrs[i]) != len(wantNbrs[i]) {
						t.Errorf("neighbors[%d] diverged", i)
						return
					}
					for j := range nbrs[i] {
						if nbrs[i][j] != wantNbrs[i][j] {
							t.Errorf("neighbors[%d][%d] diverged", i, j)
							return
						}
					}
				}
				pool, counts, err := c.NegativePool(0)
				if err != nil {
					t.Errorf("NegativePool: %v", err)
					return
				}
				if len(pool) != len(wantPool) {
					t.Errorf("pool size %d != %d", len(pool), len(wantPool))
					return
				}
				for i := range pool {
					if pool[i] != wantPool[i] || counts[i] != wantCounts[i] {
						t.Errorf("pool[%d] diverged", i)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	drops, replyDrops, _, outages := ft.Injected()
	if drops+replyDrops+outages == 0 {
		t.Fatal("fault harness injected nothing; test proves nothing")
	}
	if rt.Retries() == 0 {
		t.Fatal("no retries issued despite injected faults")
	}
	t.Logf("injected: %d drops, %d reply drops, %d outage hits; %d retries", drops, replyDrops, outages, rt.Retries())
}

// TestNoGoroutineLeakAfterClose closes a depth-4 pipeline (workers mid
// scatter rounds over a latency transport) and checks the process returns
// to its goroutine baseline: fan-out goroutines are strictly per-round
// (WaitGroup-joined before the round returns), so nothing may linger.
func TestNoGoroutineLeakAfterClose(t *testing.T) {
	base := runtime.NumGoroutine()

	g := churnTestGraph(160)
	wrap := func(inner Transport) Transport {
		return NewLatencyTransport(inner, 200*time.Microsecond)
	}
	trn, _, _ := newFaultTrainer(t, g, 17, storage.NoCache{}, wrap, faultTrainerConfig())
	pl := core.NewPipeline(trn, core.PipelineConfig{Depth: 4, Workers: 3})
	trn.SetSource(pl)
	if _, err := trn.Train(3); err != nil {
		t.Fatal(err)
	}
	// Close with prefetched batches still queued and workers likely mid
	// fan-out.
	if err := pl.Close(); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked after Close: %d > baseline %d\n%s",
				runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClientMetrics asserts the per-RPC observability counters: sub-request
// counts per method, fan-out round accounting, retry stats pulled from the
// policy layer, and cumulative latency.
func TestClientMetrics(t *testing.T) {
	g := churnTestGraph(120)
	a, err := (partition.HashPartitioner{}).Partition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	servers := FromGraph(g, a)
	// A deterministic 2-call outage on shard 0 forces retries the metrics
	// must surface.
	ft := NewFaultTransport(NewLocalTransport(servers, 0, 0), 2, FaultConfig{
		Outages: []Outage{{Part: 0, From: 0, Len: 2}},
	})
	rt := NewRetryTransport(ft, 2, CallPolicy{
		Attempts: 4, Backoff: 50 * time.Microsecond, MaxBackoff: time.Millisecond,
	}, 3)
	c := NewClient(a, rt, storage.NoCache{})

	batch := []graph.ID{0, 1, 2, 3, 4, 5}
	dst := make([]graph.ID, len(batch)*3)
	if err := c.SampleBatch(dst, batch, 0, 3, false, 9); err != nil {
		t.Fatal(err)
	}
	if _, err := c.BatchNeighbors(batch, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.NegativePool(0); err != nil {
		t.Fatal(err)
	}

	m := c.Metrics()
	if m.RPCs == 0 {
		t.Fatal("RPCs == 0 after three multi-shard rounds")
	}
	for _, method := range []string{"SampleNeighbors", "Neighbors", "NegativePool"} {
		mm := m.Methods[method]
		if mm.Calls < 2 {
			t.Fatalf("%s calls = %d, want >= 2 (one per shard)", method, mm.Calls)
		}
		if mm.Latency <= 0 {
			t.Fatalf("%s cumulative latency = %v", method, mm.Latency)
		}
	}
	if m.Fanouts < 3 {
		t.Fatalf("fan-out rounds = %d, want >= 3", m.Fanouts)
	}
	if m.FanoutWidth < 1.5 || m.FanoutWidth > 2.0 {
		t.Fatalf("fan-out width = %.2f, want ~2 over a 2-shard cluster", m.FanoutWidth)
	}
	if m.Retries == 0 || m.Retries != rt.Retries() {
		t.Fatalf("metrics retries = %d, retry layer reports %d (want equal, nonzero)", m.Retries, rt.Retries())
	}
	if m.DegradedDraws != 0 {
		t.Fatalf("degraded draws = %d with no degradation", m.DegradedDraws)
	}
	if s := m.String(); s == "" {
		t.Fatal("Metrics.String empty")
	}
}

// updateSpy records the order Update RPCs reach each shard.
type updateSpy struct {
	Transport
	mu  sync.Mutex
	seq map[int][]float64 // part -> weight markers in arrival order
}

func (s *updateSpy) Update(part int, req UpdateRequest, reply *UpdateReply) error {
	s.mu.Lock()
	s.seq[part] = append(s.seq[part], req.Add[0].Weight)
	s.mu.Unlock()
	return s.Transport.Update(part, req, reply)
}

// TestUpdateStreamParallelApply drives the concurrent Apply path: batches
// for distinct shards deliver in one round, per-shard FIFO order holds, and
// a dead shard's batches return to the queue front in original order while
// the live shard's deliveries still count.
func TestUpdateStreamParallelApply(t *testing.T) {
	g := churnTestGraph(80)
	a, err := (partition.HashPartitioner{}).Partition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	servers := FromGraph(g, a)
	// Two local vertices per shard to build valid single-edge batches.
	local := make([][]graph.ID, 2)
	for v := range a.Of {
		p := a.Of[v]
		if len(local[p]) < 2 {
			local[p] = append(local[p], graph.ID(v))
		}
	}

	push := func(s *UpdateStream, part int, marker float64) {
		s.Push(part, UpdateRequest{Add: []RawEdge{
			{Src: local[part][0], Dst: local[part][1], Type: 1, Weight: marker},
		}})
	}

	// Healthy path: interleaved pushes, one Apply, per-shard FIFO.
	spy := &updateSpy{Transport: NewLocalTransport(servers, 0, 0), seq: make(map[int][]float64)}
	s := NewUpdateStream(spy)
	for i := 0; i < 3; i++ {
		push(s, 0, float64(10+i))
		push(s, 1, float64(20+i))
	}
	n, err := s.Apply(100)
	if err != nil || n != 6 {
		t.Fatalf("Apply = %d, %v; want 6, nil", n, err)
	}
	for part := 0; part < 2; part++ {
		got := spy.seq[part]
		if len(got) != 3 {
			t.Fatalf("shard %d saw %v", part, got)
		}
		for i := range got {
			if want := float64(part*10 + 10 + i); got[i] != want {
				t.Fatalf("shard %d delivery order %v (FIFO broken)", part, got)
			}
		}
	}
	if s.Applied() != 6 || s.Pending() != 0 {
		t.Fatalf("applied=%d pending=%d", s.Applied(), s.Pending())
	}

	// Failure path: shard 1 dead — its batches requeue at the front in
	// order, shard 0's deliveries count, the error surfaces.
	ft := NewFaultTransport(NewLocalTransport(servers, 0, 0), 2, FaultConfig{})
	ft.KillShard(1)
	spy2 := &updateSpy{Transport: ft, seq: make(map[int][]float64)}
	s2 := NewUpdateStream(spy2)
	push(s2, 1, 31)
	push(s2, 0, 41)
	push(s2, 1, 32)
	n, err = s2.Apply(100)
	if err == nil {
		t.Fatal("Apply over a dead shard returned nil error")
	}
	if n != 1 {
		t.Fatalf("delivered %d, want 1 (the live shard's batch)", n)
	}
	if s2.Pending() != 2 {
		t.Fatalf("pending = %d, want the dead shard's 2 batches requeued", s2.Pending())
	}
	// The requeued batches must retry in original order once a later push
	// joins the queue behind them.
	push(s2, 1, 33)
	if _, err := s2.Apply(100); err == nil {
		t.Fatal("dead shard resurrected unexpectedly")
	}
	// The spy sits above the fault layer, so it records attempt order even
	// though nothing reaches the server. Each Apply attempts only the dead
	// shard's FRONT batch (the first failure aborts that shard's round), so
	// both rounds must have led with 31 — 32 or 33 leading would mean the
	// requeue reordered.
	got := spy2.seq[1]
	if len(got) != 2 || got[0] != 31 || got[1] != 31 {
		t.Fatalf("dead shard attempt order %v, want [31 31]", got)
	}
}
