package cluster

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/plan"
	"repro/internal/sampling"
	"repro/internal/storage"
)

// Client is a worker's view of the distributed graph: it implements the
// batch-first sampling.Source seam (plus the BatchSampler capability) over
// live graph servers. Every hop of a mini-batch is served by deduplicating
// hub vertices (power-law batches repeat the same hot vertices), answering
// what it can from the pluggable NeighborCache (Section 3.2), and stitching
// the cache misses into one sub-batch per owning server exactly as Section
// 3.3 describes ("we first partition the vertices into sub-batches, and the
// context of each sub-batch will be stitched together after being
// returned"). Fixed-width draws additionally move the sampling to the
// server (SampleNeighbors RPC), so hub adjacency lists never cross the
// network.
//
// A Client is safe for concurrent use as long as its cache is (the static
// importance cache and the locked LRU both are).
type Client struct {
	Assign *partition.Assignment
	T      Transport
	Cache  storage.NeighborCache

	// Degrade enables graceful degradation: when a shard's call fails with
	// a transport-level (transient/shard-down) error, its hops are served
	// from stale cache entries (storage.StaleReader) via the slot-pure draw
	// path instead of failing the batch — TRAVERSE and NegativePool simply
	// skip the dead shard's mass, attribute rows fall back to zeros. Every
	// degraded draw is counted in DegradedDraws. Set it before training;
	// off (the default) such errors surface to the caller.
	Degrade bool

	// Fanout bounds how many per-shard sub-requests of one scatter round
	// run concurrently: 0 (the default) launches every target shard at
	// once, so a multi-shard hop costs max(RTT) instead of shards x RTT;
	// 1 restores strictly sequential issue order (benchmarks compare
	// against it); N > 1 caps in-flight sub-requests at N. Reply values
	// are identical in every mode — draws are slot-/seed-pure and replies
	// are gathered in sorted part order — only latency changes.
	Fanout int

	// cacheAdmits records whether Cache.Observe can admit entries; when it
	// cannot (static caches), SampleBatch skips requesting admission lists.
	cacheAdmits bool

	// kinded is Cache when it classifies misses (storage.KindedGetter), so
	// per-hop instrumentation splits epoch misses from absent-entry misses
	// without a second probe; nil otherwise.
	kinded storage.KindedGetter

	// pins manages the shared, reference-counted epoch pin (see pin.go);
	// Client implements sampling.PinSource with it.
	pins *pinManager

	// plan is the active sampling plan (see plan.go / internal/plan): per
	// (edge type, hop) lane it chooses between cached client-side draws,
	// server-side draws and the hybrid default, plus whether the lane may
	// admit into a replacing cache. Nil means the built-in hybrid behavior
	// everywhere. Swapped atomically (SetPlan) so the adaptive planner can
	// re-plan mid-training; every strategy yields bit-identical draws.
	plan atomic.Pointer[plan.Plan]

	degradedDraws obs.Counter

	// met holds the per-RPC observability counters behind Metrics(), and
	// hops the per-(edge type, hop) sampling lanes (see fanout.go). Both are
	// always on; RegisterObs names them in a registry.
	met  clientMetrics
	hops hopMetrics

	statsMu sync.Mutex
	stats   []StatsReply // nil until a full fetch succeeds
}

// NewClient creates a client. A nil cache disables caching.
func NewClient(a *partition.Assignment, t Transport, cache storage.NeighborCache) *Client {
	if cache == nil {
		cache = storage.NoCache{}
	}
	admits := true
	if ad, ok := cache.(storage.Admitter); ok {
		admits = ad.Admits()
	}
	kinded, _ := cache.(storage.KindedGetter)
	return &Client{Assign: a, T: t, Cache: cache, cacheAdmits: admits, kinded: kinded, pins: newPinManager(a.P)}
}

// cacheEpoch resolves the update epoch a cache lookup must be valid at:
// the pinned epoch of the owning shard when the read is pinned, otherwise
// the newest head the client has observed from that shard. Routing every
// cache probe through it is what makes the neighbor caches version-safe —
// a pinned batch can never consume a list fetched at a different epoch.
func (c *Client) cacheEpoch(pin *sampling.Pin, part int) uint64 {
	if pin != nil {
		return pin.Epochs[part]
	}
	return c.pins.heads[part].Load()
}

// replySince extracts the j-th install stamp of a reply's Since array,
// tolerating absent arrays from down-level servers. The fallback is the
// reply's serving epoch: the list is then only claimed valid at the single
// point it was observed ([epoch, epoch]) — claiming 0 would assert it
// predates every update, exactly the stale-entry admission the seam
// exists to prevent.
func replySince(since []uint64, j int, servedEpoch uint64) uint64 {
	if j < len(since) {
		return since[j]
	}
	return servedEpoch
}

// Neighbors returns the out-neighbors of v under edge type t, from cache if
// possible.
func (c *Client) Neighbors(v graph.ID, t graph.EdgeType) ([]graph.ID, error) {
	p := c.Assign.Part(v)
	if ns, ok := c.Cache.Get(v, t, 1, c.cacheEpoch(nil, p)); ok {
		return ns, nil
	}
	var reply NeighborsReply
	req := NeighborsRequest{Vertices: []graph.ID{v}, EdgeType: t}
	if err := c.timed(mNeighbors, func() error { return c.T.Neighbors(p, req, &reply) }); err != nil {
		return nil, err
	}
	c.pins.noteHead(p, reply.Head, reply.AttrHead)
	ns := reply.Neighbors[0]
	c.admit(c.lanePlan(t, 0), v, t, reply.Epoch, replySince(reply.Since, 0, reply.Epoch), ns)
	return ns, nil
}

// NeighborsBatch implements sampling.Source: dst[i] receives the
// out-neighbor list of vs[i]. Duplicate vertices are fetched once, cache
// hits skip the network entirely, and the misses cost at most one RPC per
// owning server.
func (c *Client) NeighborsBatch(dst [][]graph.ID, vs []graph.ID, t graph.EdgeType) error {
	return c.neighborsBatchSpan(dst, vs, t, nil, nil, 0)
}

// cacheGet is the instrumented cache probe of the batch paths: one epoch-
// keyed lookup, attributed to the (edge type, hop) lane — hits and (when the
// cache classifies its misses) epoch misses are counted where they happen,
// so per-lane hit rates come for free with the lookup.
func (c *Client) cacheGet(v graph.ID, t graph.EdgeType, epoch uint64, hs *hopStats) ([]graph.ID, bool) {
	hs.lookups.Inc()
	if c.kinded != nil {
		ns, kind := c.kinded.GetKinded(v, t, 1, epoch)
		switch kind {
		case storage.KindHit:
			hs.cacheHits.Inc()
			return ns, true
		case storage.KindEpochMiss:
			hs.epochMiss.Inc()
		}
		return nil, false
	}
	ns, ok := c.Cache.Get(v, t, 1, epoch)
	if ok {
		hs.cacheHits.Inc()
	}
	return ns, ok
}

// observe folds one reply's epoch bookkeeping: the head feeds the pin
// manager's staleness detection, the attr head feeds attribute-cache
// invalidation, and the span records either the pin's stamp (pinned reads:
// single-valued by construction, so Mixed() stays an invariant) or the
// epoch the shard served.
func (c *Client) observe(part int, span *sampling.EpochSpan, pin *sampling.Pin, epoch, head, attrHead uint64) {
	c.pins.noteHead(part, head, attrHead)
	if span == nil {
		return
	}
	if pin != nil {
		span.Observe(pin.Stamp)
	} else {
		span.Observe(epoch)
	}
}

// DegradedDraws reports how many reads were served from stale cache state
// (or padded) because a shard was unreachable with Degrade set. Safe to
// call concurrently with training; nonzero means embeddings consumed
// degraded data.
func (c *Client) DegradedDraws() int64 { return c.degradedDraws.Load() }

// MaxObservedHead reports the newest head epoch the client has observed on
// any shard (every sampling reply carries its shard's head). Trainers use
// it as the staleness clock for epoch-refreshed negative pools.
func (c *Client) MaxObservedHead() uint64 {
	h := uint64(0)
	for part := range c.pins.heads {
		if v := c.pins.heads[part].Load(); v > h {
			h = v
		}
	}
	return h
}

// ObservedHeads appends the newest head epoch the client has observed per
// shard (index = partition). A serving tier's embedding cache uses the
// vector as its staleness clock: entry validity is measured per shard, not
// against the global max.
func (c *Client) ObservedHeads(dst []uint64) []uint64 {
	for part := range c.pins.heads {
		dst = append(dst, c.pins.heads[part].Load())
	}
	return dst
}

// ObservedAttrHeads appends the newest attribute-rewriting epoch observed
// per shard, the attribute analogue of ObservedHeads.
func (c *Client) ObservedAttrHeads(dst []uint64) []uint64 {
	for part := range c.pins.attrHeads {
		dst = append(dst, c.pins.attrHeads[part].Load())
	}
	return dst
}

// ProbeHeads issues one concurrent Stats round purely to refresh the
// observed per-shard head watermarks, returning them (index = partition).
// This is how a serving tier notices out-of-band churn — updates applied by
// other writers — even when its own request stream is fully cache-hot and
// makes no data RPCs. Degraded (down) shards keep their last observed heads.
func (c *Client) ProbeHeads() ([]uint64, []uint64, error) {
	if _, err := c.clusterStats(true); err != nil {
		return nil, nil, err
	}
	return c.ObservedHeads(nil), c.ObservedAttrHeads(nil), nil
}

// degraded reports whether err should be absorbed by stale-serving: the
// client degrades (Degrade set) and the error is a transport-level failure
// (never an application error from a live server).
func (c *Client) degraded(err error) bool {
	return c.Degrade && (IsShardDown(err) || IsTransient(err))
}

// staleList fetches v's hop-1 list from the cache ignoring epoch validity —
// the degraded-read path. ok is false when the cache holds nothing for v.
func (c *Client) staleList(v graph.ID, t graph.EdgeType) ([]graph.ID, bool) {
	if sr, ok := c.Cache.(storage.StaleReader); ok {
		return sr.GetStale(v, t, 1)
	}
	return nil, false
}

// degradeSpan keeps a pinned batch's span single-valued when a shard's
// reply is replaced by stale serving (unpinned reads record nothing: they
// observed no real epoch).
func degradeSpan(span *sampling.EpochSpan, pin *sampling.Pin) {
	if span != nil && pin != nil {
		span.Observe(pin.Stamp)
	}
}

// pinFields returns the request pin fields for an optionally pinned call to
// part.
func pinFields(pin *sampling.Pin, part int) (epoch uint64, pinned bool) {
	if pin == nil {
		return 0, false
	}
	return pin.Epochs[part], true
}

func (c *Client) neighborsBatchSpan(dst [][]graph.ID, vs []graph.ID, t graph.EdgeType, pin *sampling.Pin, span *sampling.EpochSpan, hop int) error {
	if len(dst) != len(vs) {
		return fmt.Errorf("cluster: NeighborsBatch dst length %d, want %d", len(dst), len(vs))
	}
	hs := c.hops.get(t, hop)
	hs.calls.Inc()
	hs.slots.Add(int64(len(vs)))
	start := time.Now()
	defer func() { hs.nanos.Add(int64(time.Since(start))) }()
	// Full-list fetches must hit the network on a miss whatever the lane's
	// strategy, so only the plan's admission choice applies here: a lane
	// marked cold keeps its lists out of a replacing cache.
	lp := c.lanePlan(t, hop)
	// Pass 1: dedup, epoch-keyed cache lookups, sub-batch formation. The
	// lookup epoch is the owning shard's pinned epoch (or observed head),
	// so a stale-generation entry misses instead of being served.
	res := make(map[graph.ID][]graph.ID, len(vs))
	subBatch := make(map[int][]graph.ID) // part -> unique missed vertices
	for _, v := range vs {
		if _, seen := res[v]; seen {
			continue
		}
		p := c.Assign.Part(v)
		if ns, ok := c.cacheGet(v, t, c.cacheEpoch(pin, p), hs); ok {
			res[v] = ns
			continue
		}
		res[v] = nil
		subBatch[p] = append(subBatch[p], v)
	}
	// Pass 2: one request per server, issued as one concurrent scatter
	// round (a hop costs max(RTT), not servers x RTT), stitched back
	// through the dedup map in sorted part order so degraded-path ordering
	// and error selection are reproducible. Admissions carry the serving
	// epoch and each list's install stamp.
	parts := sortedParts(subBatch)
	hs.rpcs.Add(int64(len(parts)))
	replies := make([]NeighborsReply, len(parts))
	errs := c.scatter(parts, func(i, p int) error {
		req := NeighborsRequest{Vertices: subBatch[p], EdgeType: t}
		req.Pin, req.Pinned = pinFields(pin, p)
		return c.timed(mNeighbors, func() error { return c.T.Neighbors(p, req, &replies[i]) })
	})
	for i, p := range parts {
		batch := subBatch[p]
		if err := errs[i]; err != nil {
			if !c.degraded(err) {
				return err
			}
			// Shard down: serve what the cache still holds (stale), empty
			// lists otherwise, and count every list as degraded.
			for _, v := range batch {
				ns, _ := c.staleList(v, t)
				res[v] = ns
				c.degradedDraws.Add(1)
				hs.degraded.Inc()
			}
			degradeSpan(span, pin)
			continue
		}
		reply := &replies[i]
		c.observe(p, span, pin, reply.Epoch, reply.Head, reply.AttrHead)
		for j, v := range batch {
			res[v] = reply.Neighbors[j]
			c.admit(lp, v, t, reply.Epoch, replySince(reply.Since, j, reply.Epoch), reply.Neighbors[j])
		}
	}
	for i, v := range vs {
		dst[i] = res[v]
	}
	return nil
}

// BatchNeighbors fetches out-neighbor lists for a batch of vertices; it is
// NeighborsBatch with allocated results, kept for the multi-hop path.
func (c *Client) BatchNeighbors(vs []graph.ID, t graph.EdgeType) ([][]graph.ID, error) {
	out := make([][]graph.ID, len(vs))
	if err := c.NeighborsBatch(out, vs, t); err != nil {
		return nil, err
	}
	return out, nil
}

// SampleBatch implements sampling.BatchSampler: width neighbor draws per
// vertex of vs, executed where the adjacency lives. Unique vertices with a
// cached hop-1 list valid at the read epoch are drawn client-side (uniform
// only: caches hold no weights); the rest are grouped into one
// SampleNeighbors RPC per owning server, carrying each unique vertex once
// with its multiplicity and batch positions so repeated hubs get
// independent draws without being re-sent. Every draw group derives its
// stream from its batch slot (sampling.SlotRng), so a fixed seed yields
// fixed values no matter which slots hit the cache, how the graph is
// sharded, or when a replacing cache admitted an entry — the property
// behind the pipeline's bit-reproducibility with LRU caches. Low-degree
// uniform vertices come back as full (short) lists, which are drawn
// locally and admitted (with their install stamp), so replacing caches
// warm up under a pure training workload.
//
// That hybrid flow is the default; the active sampling plan (SetPlan,
// internal/plan) can override it per (edge type, hop) lane — skipping
// probe and admission entirely (ServerDraws, for cold lanes) or fetching
// misses as full lists and drawing locally (ClientDraws, for hub-heavy
// reused lanes). Slot-purity makes every strategy return the same values.
func (c *Client) SampleBatch(dst []graph.ID, vs []graph.ID, t graph.EdgeType, width int, byWeight bool, seed uint64) error {
	return c.sampleBatchSpan(dst, vs, t, width, byWeight, seed, nil, nil, 0)
}

func (c *Client) sampleBatchSpan(dst []graph.ID, vs []graph.ID, t graph.EdgeType, width int, byWeight bool, seed uint64, pin *sampling.Pin, span *sampling.EpochSpan, hop int) error {
	if len(dst) != len(vs)*width {
		return fmt.Errorf("cluster: SampleBatch dst length %d, want %d", len(dst), len(vs)*width)
	}
	hs := c.hops.get(t, hop)
	hs.calls.Inc()
	hs.slots.Add(int64(len(vs)))
	start := time.Now()
	defer func() { hs.nanos.Add(int64(time.Since(start))) }()
	// The lane's plan chooses where uniform draws execute; weighted draws
	// always go server-side (caches hold no weights, and the server's
	// alias-method stream differs from a client-side inverse-CDF draw, so
	// only one executor keeps fixed seeds bit-identical).
	lp := c.lanePlan(t, hop)
	// Dedup in first-appearance order, tracking every occurrence position.
	idx := make(map[graph.ID]int, len(vs))
	var uniq []graph.ID
	var occs [][]int
	for i, v := range vs {
		j, ok := idx[v]
		if !ok {
			j = len(uniq)
			idx[v] = j
			uniq = append(uniq, v)
			occs = append(occs, nil)
		}
		occs[j] = append(occs[j], i)
	}

	subUniq := make(map[int][]int) // part -> indices into uniq
	var parts []int
	probe := !byWeight && lp.Strategy != plan.ServerDraws
	for j, v := range uniq {
		p := c.Assign.Part(v)
		if probe {
			if ns, ok := c.cacheGet(v, t, c.cacheEpoch(pin, p), hs); ok {
				for _, pos := range occs[j] {
					rng := sampling.SlotRng(seed, pos)
					drawInto(dst[pos*width:(pos+1)*width], v, ns, &rng)
				}
				continue
			}
		}
		if _, ok := subUniq[p]; !ok {
			parts = append(parts, p)
		}
		subUniq[p] = append(subUniq[p], j)
	}
	sort.Ints(parts)
	if !byWeight && lp.Strategy == plan.ClientDraws && len(parts) > 0 {
		// ClientDraws lane: fetch the missed lists whole, admit, draw
		// locally — same values, and the lane's hubs stay resident.
		return c.sampleViaLists(dst, t, width, seed, pin, span, hs, lp, uniq, occs, subUniq, parts)
	}

	// Build every sub-request before the scatter: per-part Vertices, Counts
	// and Slots are carved out of three shared backing buffers (each
	// goroutine only reads its own sub-slice), so a round costs three
	// allocations regardless of how many servers it spans.
	totalUniq, totalSlots := 0, 0
	for _, js := range subUniq {
		totalUniq += len(js)
		for _, j := range js {
			totalSlots += len(occs[j])
		}
	}
	vertsBuf := make([]graph.ID, 0, totalUniq)
	countsBuf := make([]int, 0, totalUniq)
	slotsBuf := make([]int32, 0, totalSlots)
	reqs := make([]SampleRequest, len(parts))
	for i, p := range parts {
		js := subUniq[p]
		v0, s0 := len(vertsBuf), len(slotsBuf)
		for _, j := range js {
			vertsBuf = append(vertsBuf, uniq[j])
			countsBuf = append(countsBuf, len(occs[j]))
			for _, pos := range occs[j] {
				slotsBuf = append(slotsBuf, int32(pos))
			}
		}
		reqs[i] = SampleRequest{
			Vertices:  vertsBuf[v0:len(vertsBuf):len(vertsBuf)],
			Counts:    countsBuf[v0:len(countsBuf):len(countsBuf)],
			Slots:     slotsBuf[s0:len(slotsBuf):len(slotsBuf)],
			EdgeType:  t,
			Width:     width,
			ByWeight:  byWeight,
			WantLists: c.cacheAdmits && lp.Admit,
			Seed:      seed,
		}
		reqs[i].Pin, reqs[i].Pinned = pinFields(pin, p)
	}
	hs.rpcs.Add(int64(len(parts)))
	replies := make([]SampleReply, len(parts))
	errs := c.scatter(parts, func(i, p int) error {
		return c.timed(mSampleNeighbors, func() error { return c.T.SampleNeighbors(p, reqs[i], &replies[i]) })
	})
	for i, p := range parts {
		js := subUniq[p]
		if err := errs[i]; err != nil {
			if !c.degraded(err) {
				return err
			}
			// Shard down: draw each slot from the stale cached list via the
			// same slot-pure stream a live reply would have used (empty
			// lists self-pad, matching the server contract). Weighted draws
			// degrade to uniform over the stale list — the cache holds no
			// weights.
			for _, j := range js {
				v := uniq[j]
				ns, _ := c.staleList(v, t)
				for _, pos := range occs[j] {
					rng := sampling.SlotRng(seed, pos)
					drawInto(dst[pos*width:(pos+1)*width], v, ns, &rng)
					c.degradedDraws.Add(1)
					hs.degraded.Inc()
				}
			}
			degradeSpan(span, pin)
			continue
		}
		reply := &replies[i]
		c.observe(p, span, pin, reply.Epoch, reply.Head, reply.AttrHead)
		if len(reply.Lists) != 0 && len(reply.Lists) != len(js) {
			return fmt.Errorf("cluster: server %d returned %d lists for %d vertices", p, len(reply.Lists), len(js))
		}
		want := 0
		for li, j := range js {
			if len(reply.Lists) > 0 && reply.Lists[li] != nil {
				continue
			}
			want += len(occs[j]) * width
		}
		if len(reply.Samples) != want {
			return fmt.Errorf("cluster: server %d returned %d samples, want %d", p, len(reply.Samples), want)
		}
		k := 0
		for li, j := range js {
			v := uniq[j]
			if len(reply.Lists) > 0 && reply.Lists[li] != nil {
				ns := reply.Lists[li]
				c.admit(lp, v, t, reply.Epoch, replySince(reply.Since, li, reply.Epoch), ns)
				for _, pos := range occs[j] {
					rng := sampling.SlotRng(seed, pos)
					drawInto(dst[pos*width:(pos+1)*width], v, ns, &rng)
				}
				continue
			}
			for _, pos := range occs[j] {
				copy(dst[pos*width:(pos+1)*width], reply.Samples[k:k+width])
				k += width
			}
		}
	}
	return nil
}

// drawInto fills dst with uniform draws from ns, padding with v when ns is
// empty (mirroring the server- and graph-side contract).
func drawInto(dst []graph.ID, v graph.ID, ns []graph.ID, rng *sampling.Rng) {
	if len(ns) == 0 {
		for i := range dst {
			dst[i] = v
		}
		return
	}
	for i := range dst {
		dst[i] = ns[rng.Intn(len(ns))]
	}
}

// clusterStats returns the per-server size counters, fetching them on first
// use or when refresh is set. Errors are never cached (a transient shard
// outage must not poison the client), and only a complete fetch is.
func (c *Client) clusterStats(refresh bool) ([]StatsReply, error) {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	if c.stats != nil && !refresh {
		return c.stats, nil
	}
	// One concurrent round over every shard: a TRAVERSE split refresh is
	// never serialized behind one slow server.
	stats := make([]StatsReply, c.Assign.P)
	errs := c.scatter(allParts(c.Assign.P), func(i, p int) error {
		return c.timed(mStats, func() error { return c.T.Stats(p, StatsRequest{}, &stats[p]) })
	})
	partial := false
	for p := 0; p < c.Assign.P; p++ {
		if err := errs[p]; err != nil {
			if !c.degraded(err) {
				return nil, err
			}
			// Dead shard: zero mass, and the partial set is never cached so
			// recovery restores its share on the next refresh.
			stats[p] = StatsReply{}
			partial = true
			continue
		}
		// Stats replies carry head stamps, so a stats round doubles as a
		// head probe (noteHead is monotone: a zeroed reply cannot regress).
		c.pins.noteHead(p, stats[p].Head, stats[p].AttrHead)
	}
	if !partial {
		c.stats = stats
	}
	return stats, nil
}

// edgeSplit returns the per-server mass the TRAVERSE batch is split by:
// edge counts for uniform draws, edge-weight sums for weighted ones. For a
// pinned batch the mass comes from the pinned epoch's counters (they rode
// the Lease reply, so this costs no RPC) — the per-server allocation then
// matches the snapshot actually being sampled, not the moving head.
// Unpinned callers use the cached head stats, re-confirmed against live
// servers before concluding the type is empty (dynamic inserts).
func (c *Client) edgeSplit(t graph.EdgeType, byWeight bool, pin *sampling.Pin) ([]float64, float64, error) {
	mass := func(edges []int64, weights []float64) float64 {
		if byWeight {
			if int(t) < len(weights) {
				return weights[t]
			}
			return 0
		}
		if int(t) < len(edges) {
			return float64(edges[t])
		}
		return 0
	}
	if pin != nil {
		if edges, weights := c.pins.statsFor(pin); edges != nil {
			ws := make([]float64, c.Assign.P)
			total := 0.0
			for p := 0; p < c.Assign.P; p++ {
				ws[p] = mass(edges[p], weights[p])
				total += ws[p]
			}
			return ws, total, nil
		}
	}
	tally := func(stats []StatsReply) ([]float64, float64) {
		ws := make([]float64, len(stats))
		total := 0.0
		for p, st := range stats {
			ws[p] = mass(st.EdgesByType, st.WeightByType)
			total += ws[p]
		}
		return ws, total
	}
	stats, err := c.clusterStats(false)
	if err != nil {
		return nil, 0, err
	}
	ws, total := tally(stats)
	if total == 0 {
		// The cached counters may predate dynamic edge insertions; confirm
		// emptiness against the live servers before giving up.
		if stats, err = c.clusterStats(true); err != nil {
			return nil, 0, err
		}
		ws, total = tally(stats)
	}
	return ws, total, nil
}

// SampleEdges draws n edges of type t uniformly over the cluster's global
// edge set: the batch is split across servers proportionally to their local
// type-t edge counts, then each contributing server answers one SampleEdges
// RPC. This is the distributed TRAVERSE sampler.
func (c *Client) SampleEdges(t graph.EdgeType, n int, seed uint64) ([]graph.Edge, error) {
	return c.AppendSampleEdges(nil, t, n, seed, nil, nil)
}

// SampleEdgesWeighted draws n edges of type t proportionally to edge weight
// over the cluster's global edge set: the batch is split across servers by
// their local type-t weight sums (the Stats RPC reports them), then each
// contributing server draws weight-proportionally from its own edge set.
// The composition is exactly the global weighted draw a single machine
// would make.
func (c *Client) SampleEdgesWeighted(t graph.EdgeType, n int, seed uint64) ([]graph.Edge, error) {
	return c.appendSampleEdges(nil, t, n, seed, true, nil, nil)
}

// AppendSampleEdges is SampleEdges into a caller-owned buffer, reading the
// pinned snapshot when pin is non-nil and recording what each contributing
// server's reply observed into span (nil to skip). Batch sources use it to
// stamp MiniBatches with the epochs their TRAVERSE stage saw. Pinned
// batches are split across servers by the pinned epoch's own edge
// counters (carried on the Lease reply), so the allocation matches the
// snapshot being sampled even while the head moves.
func (c *Client) AppendSampleEdges(dst []graph.Edge, t graph.EdgeType, n int, seed uint64, pin *sampling.Pin, span *sampling.EpochSpan) ([]graph.Edge, error) {
	return c.appendSampleEdges(dst, t, n, seed, false, pin, span)
}

func (c *Client) appendSampleEdges(dst []graph.Edge, t graph.EdgeType, n int, seed uint64, byWeight bool, pin *sampling.Pin, span *sampling.EpochSpan) ([]graph.Edge, error) {
	ws, total, err := c.edgeSplit(t, byWeight, pin)
	if err != nil {
		return nil, err
	}
	if total == 0 {
		return dst, nil
	}
	rng := sampling.NewRng(seed)
	al := sampling.NewAlias(ws)
	counts := make([]int, len(ws))
	for i := 0; i < n; i++ {
		counts[al.DrawRng(rng)]++
	}
	// Per-part seeds are drawn sequentially in ascending part order BEFORE
	// the scatter, so the draw stream is identical to the sequential path
	// and reply values never depend on request issue order.
	var parts []int
	reqs := make(map[int]EdgesRequest)
	for p, k := range counts {
		if k == 0 {
			continue
		}
		req := EdgesRequest{EdgeType: t, Count: k, ByWeight: byWeight, Seed: rng.Uint64()}
		req.Pin, req.Pinned = pinFields(pin, p)
		parts = append(parts, p)
		reqs[p] = req
	}
	replies := make([]EdgesReply, len(parts))
	errs := c.scatter(parts, func(i, p int) error {
		return c.timed(mSampleEdges, func() error { return c.T.SampleEdges(p, reqs[p], &replies[i]) })
	})
	edges := dst
	for i, p := range parts {
		if err := errs[i]; err != nil {
			if !c.degraded(err) {
				return nil, err
			}
			// Dead shard: its share of the TRAVERSE batch is skipped (the
			// batch shrinks rather than failing); counted so the gap is
			// visible.
			c.degradedDraws.Add(int64(counts[p]))
			degradeSpan(span, pin)
			continue
		}
		reply := &replies[i]
		c.observe(p, span, pin, reply.Epoch, reply.Head, reply.AttrHead)
		for j := range reply.Src {
			edges = append(edges, graph.Edge{Src: reply.Src[j], Dst: reply.Dst[j], Type: t, Weight: reply.Weight[j]})
		}
	}
	return edges, nil
}

// NegativePool merges every server's local destination counts for edge type
// t into one candidate pool; the counts are exactly the global in-degrees.
func (c *Client) NegativePool(t graph.EdgeType) ([]graph.ID, []float64, error) {
	counts := make(map[graph.ID]int64)
	replies := make([]NegPoolReply, c.Assign.P)
	errs := c.scatter(allParts(c.Assign.P), func(i, p int) error {
		return c.timed(mNegativePool, func() error { return c.T.NegativePool(p, NegPoolRequest{EdgeType: t}, &replies[i]) })
	})
	for p := 0; p < c.Assign.P; p++ {
		if err := errs[p]; err != nil {
			if !c.degraded(err) {
				return nil, nil, err
			}
			// Dead shard: the pool is built without its candidates.
			c.degradedDraws.Add(1)
			continue
		}
		for i, v := range replies[p].Vertices {
			counts[v] += replies[p].Counts[i]
		}
	}
	// Deterministic (sorted) order so pools are reproducible across runs.
	cands := make([]graph.ID, 0, len(counts))
	for v := range counts {
		cands = append(cands, v)
	}
	sortIDs(cands)
	ws := make([]float64, len(cands))
	for i, v := range cands {
		ws[i] = float64(counts[v])
	}
	return cands, ws, nil
}

// Attrs fetches attribute vectors for a batch of vertices with per-server
// sub-batching and duplicate elimination, at the head epoch.
func (c *Client) Attrs(vs []graph.ID) ([][]float64, error) {
	return c.AttrsAt(vs, nil)
}

// AttrsAt is Attrs reading the pinned snapshot when pin is non-nil.
func (c *Client) AttrsAt(vs []graph.ID, pin *sampling.Pin) ([][]float64, error) {
	return c.attrsObserve(vs, pin, nil)
}

// attrsObserve is the attrs fetch core: note (nil to skip) receives each
// contributing server's partition and attribute epoch, which AttrCache uses
// for epoch-based invalidation.
func (c *Client) attrsObserve(vs []graph.ID, pin *sampling.Pin, note func(part int, attrEpoch uint64)) ([][]float64, error) {
	out := make([][]float64, len(vs))
	res := make(map[graph.ID][]float64, len(vs))
	subBatch := make(map[int][]graph.ID)
	for _, v := range vs {
		if _, seen := res[v]; seen {
			continue
		}
		res[v] = nil
		p := c.Assign.Part(v)
		subBatch[p] = append(subBatch[p], v)
	}
	parts := sortedParts(subBatch)
	replies := make([]AttrsReply, len(parts))
	errs := c.scatter(parts, func(i, p int) error {
		req := AttrsRequest{Vertices: subBatch[p]}
		req.Pin, req.Pinned = pinFields(pin, p)
		return c.timed(mAttrs, func() error { return c.T.Attrs(p, req, &replies[i]) })
	})
	for i, p := range parts {
		batch := subBatch[p]
		if err := errs[i]; err != nil {
			if !c.degraded(err) {
				return nil, err
			}
			// Dead shard: nil rows; feature layers above fill zeros.
			c.degradedDraws.Add(int64(len(batch)))
			continue
		}
		reply := &replies[i]
		c.observe(p, nil, pin, reply.Epoch, reply.Head, reply.AttrHead)
		if note != nil {
			note(p, reply.AttrEpoch)
		}
		for j, v := range batch {
			res[v] = reply.Attrs[j]
		}
	}
	for i, v := range vs {
		out[i] = res[v]
	}
	return out, nil
}

// SinceOf fetches, for each vertex, the install stamps of its current
// type-t adjacency list and attribute row, plus the epoch those stamps were
// read at on the vertex's owning shard: adj[i] (attr[i]) is the epoch vs[i]'s
// list (row) was installed at, 0 meaning it predates every update, and
// upto[i] is the serving epoch of the reply that proved it. Together they
// certify "vs[i] is unchanged over [max(adj[i],attr[i]), upto[i]]" — the
// revalidation proof an embedding cache needs to extend an entry's validity
// interval without recomputing the embedding. One concurrent scatter round
// (Neighbors + Attrs per owning shard); errors surface, never degrade — a
// proof built on stale data would defeat its purpose.
func (c *Client) SinceOf(vs []graph.ID, t graph.EdgeType) (adj, attr, upto []uint64, err error) {
	subBatch := make(map[int][]graph.ID)
	idx := make(map[graph.ID]int, len(vs))
	for i, v := range vs {
		if _, seen := idx[v]; !seen {
			idx[v] = i
			p := c.Assign.Part(v)
			subBatch[p] = append(subBatch[p], v)
		}
	}
	parts := sortedParts(subBatch)
	nReplies := make([]NeighborsReply, len(parts))
	aReplies := make([]AttrsReply, len(parts))
	errs := c.scatter(parts, func(i, p int) error {
		if e := c.timed(mNeighbors, func() error {
			return c.T.Neighbors(p, NeighborsRequest{Vertices: subBatch[p], EdgeType: t}, &nReplies[i])
		}); e != nil {
			return e
		}
		return c.timed(mAttrs, func() error {
			return c.T.Attrs(p, AttrsRequest{Vertices: subBatch[p]}, &aReplies[i])
		})
	})
	adj = make([]uint64, len(vs))
	attr = make([]uint64, len(vs))
	upto = make([]uint64, len(vs))
	for i, p := range parts {
		if errs[i] != nil {
			return nil, nil, nil, errs[i]
		}
		nr, ar := &nReplies[i], &aReplies[i]
		c.observe(p, nil, nil, nr.Epoch, nr.Head, nr.AttrHead)
		c.observe(p, nil, nil, ar.Epoch, ar.Head, ar.AttrHead)
		served := min(nr.Epoch, ar.Epoch)
		for j, v := range subBatch[p] {
			k := idx[v]
			adj[k] = replySince(nr.Since, j, nr.Epoch)
			attr[k] = replySince(ar.Since, j, ar.Epoch)
			upto[k] = served
		}
	}
	// Duplicate vertices copy their first occurrence's stamps.
	for i, v := range vs {
		if k := idx[v]; k != i {
			adj[i], attr[i], upto[i] = adj[k], attr[k], upto[k]
		}
	}
	return adj, attr, upto, nil
}

// MultiHop expands a seed set hop by hop, returning the frontier at each
// depth 1..k. Cached multi-hop neighborhoods (importance cache) are used
// when available; otherwise frontiers are fetched with batched requests.
func (c *Client) MultiHop(v graph.ID, t graph.EdgeType, k int) ([][]graph.ID, error) {
	frontiers := make([][]graph.ID, k)
	// Fast path: the whole 1..k expansion is cached and valid at the
	// NEWEST head observed on ANY shard — a multi-hop frontier can cross
	// shard boundaries, so churn anywhere must invalidate it, and a hop-1
	// reply cannot re-validate a whole frontier.
	epoch := uint64(0)
	for part := range c.pins.heads {
		if h := c.pins.heads[part].Load(); h > epoch {
			epoch = h
		}
	}
	allCached := true
	for h := 1; h <= k; h++ {
		if ns, ok := c.Cache.Get(v, t, h, epoch); ok {
			frontiers[h-1] = ns
		} else {
			allCached = false
			break
		}
	}
	if allCached {
		return frontiers, nil
	}

	frontier := []graph.ID{v}
	seen := map[graph.ID]struct{}{v: {}}
	for h := 1; h <= k; h++ {
		lists, err := c.BatchNeighbors(frontier, t)
		if err != nil {
			return nil, err
		}
		var next []graph.ID
		for _, ns := range lists {
			for _, u := range ns {
				if _, ok := seen[u]; ok {
					continue
				}
				seen[u] = struct{}{}
				next = append(next, u)
			}
		}
		frontiers[h-1] = next
		frontier = next
		if len(frontier) == 0 {
			break
		}
	}
	return frontiers, nil
}

// epochView is a single-consumer view of a shared Client that records the
// update epochs stamped on the replies it triggers. Pipeline workers each
// hold one, so a MiniBatch's epoch span costs no synchronization. With a
// pin set, every request through the view reads the pinned snapshot and
// the span records the pin's stamp.
type epochView struct {
	c    *Client
	pin  *sampling.Pin
	span sampling.EpochSpan
	hop  int // current hop tag (sampling.HopTagged); 0 = unattributed
}

// EpochView implements sampling.EpochedSource.
func (c *Client) EpochView() sampling.EpochView { return &epochView{c: c} }

// NeighborsBatch implements sampling.Source.
func (v *epochView) NeighborsBatch(dst [][]graph.ID, vs []graph.ID, t graph.EdgeType) error {
	return v.c.neighborsBatchSpan(dst, vs, t, v.pin, &v.span, v.hop)
}

// SampleBatch implements sampling.BatchSampler, preserving the server-side
// fixed-width draw path through the view.
func (v *epochView) SampleBatch(dst []graph.ID, vs []graph.ID, t graph.EdgeType, width int, byWeight bool, seed uint64) error {
	return v.c.sampleBatchSpan(dst, vs, t, width, byWeight, seed, v.pin, &v.span, v.hop)
}

// SetHop implements sampling.HopTagged: the NEIGHBORHOOD sampler tags the
// view with the 1-based hop it is expanding, and the client's per-(edge
// type, hop) lanes attribute work to it. Views are single-consumer, so the
// tag needs no synchronization.
func (v *epochView) SetHop(h int) { v.hop = h }

// Span implements sampling.EpochView.
func (v *epochView) Span() sampling.EpochSpan { return v.span }

// ResetSpan implements sampling.EpochView.
func (v *epochView) ResetSpan() { v.span.Reset() }

// SetPin implements sampling.EpochView.
func (v *epochView) SetPin(p *sampling.Pin) { v.pin = p }

// sortIDs sorts vertex IDs ascending.
func sortIDs(ids []graph.ID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
