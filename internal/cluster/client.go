package cluster

import (
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/storage"
)

// Client is a worker's view of the distributed graph: it routes vertex
// requests to the owning server via the partition assignment, consults a
// pluggable NeighborCache before paying for a remote hop (Section 3.2), and
// stitches batched requests per server exactly as Section 3.3 describes
// ("we first partition the vertices into sub-batches, and the context of
// each sub-batch will be stitched together after being returned").
type Client struct {
	Assign *partition.Assignment
	T      Transport
	Cache  storage.NeighborCache
}

// NewClient creates a client. A nil cache disables caching.
func NewClient(a *partition.Assignment, t Transport, cache storage.NeighborCache) *Client {
	if cache == nil {
		cache = storage.NoCache{}
	}
	return &Client{Assign: a, T: t, Cache: cache}
}

// Neighbors returns the out-neighbors of v under edge type t, from cache if
// possible.
func (c *Client) Neighbors(v graph.ID, t graph.EdgeType) ([]graph.ID, error) {
	if ns, ok := c.Cache.Get(v, 1); ok {
		return ns, nil
	}
	var reply NeighborsReply
	req := NeighborsRequest{Vertices: []graph.ID{v}, EdgeType: t}
	if err := c.T.Neighbors(c.Assign.Part(v), req, &reply); err != nil {
		return nil, err
	}
	ns := reply.Neighbors[0]
	c.Cache.Observe(v, 1, ns)
	return ns, nil
}

// BatchNeighbors fetches out-neighbor lists for a batch of vertices,
// grouping cache misses into one sub-batch per owning server and stitching
// the replies back into request order.
func (c *Client) BatchNeighbors(vs []graph.ID, t graph.EdgeType) ([][]graph.ID, error) {
	out := make([][]graph.ID, len(vs))

	// Pass 1: cache hits and sub-batch formation.
	subBatch := make(map[int][]graph.ID) // part -> vertices
	subIdx := make(map[int][]int)        // part -> indices into out
	for i, v := range vs {
		if ns, ok := c.Cache.Get(v, 1); ok {
			out[i] = ns
			continue
		}
		p := c.Assign.Part(v)
		subBatch[p] = append(subBatch[p], v)
		subIdx[p] = append(subIdx[p], i)
	}

	// Pass 2: one request per server, stitched back.
	for p, batch := range subBatch {
		var reply NeighborsReply
		if err := c.T.Neighbors(p, NeighborsRequest{Vertices: batch, EdgeType: t}, &reply); err != nil {
			return nil, err
		}
		for j, i := range subIdx[p] {
			out[i] = reply.Neighbors[j]
			c.Cache.Observe(batch[j], 1, reply.Neighbors[j])
		}
	}
	return out, nil
}

// Attrs fetches attribute vectors for a batch of vertices with per-server
// sub-batching.
func (c *Client) Attrs(vs []graph.ID) ([][]float64, error) {
	out := make([][]float64, len(vs))
	subBatch := make(map[int][]graph.ID)
	subIdx := make(map[int][]int)
	for i, v := range vs {
		p := c.Assign.Part(v)
		subBatch[p] = append(subBatch[p], v)
		subIdx[p] = append(subIdx[p], i)
	}
	for p, batch := range subBatch {
		var reply AttrsReply
		if err := c.T.Attrs(p, AttrsRequest{Vertices: batch}, &reply); err != nil {
			return nil, err
		}
		for j, i := range subIdx[p] {
			out[i] = reply.Attrs[j]
		}
	}
	return out, nil
}

// MultiHop expands a seed set hop by hop, returning the frontier at each
// depth 1..k. Cached multi-hop neighborhoods (importance cache) are used
// when available; otherwise frontiers are fetched with batched requests.
func (c *Client) MultiHop(v graph.ID, t graph.EdgeType, k int) ([][]graph.ID, error) {
	frontiers := make([][]graph.ID, k)
	// Fast path: the whole 1..k expansion is cached.
	allCached := true
	for h := 1; h <= k; h++ {
		if ns, ok := c.Cache.Get(v, h); ok {
			frontiers[h-1] = ns
		} else {
			allCached = false
			break
		}
	}
	if allCached {
		return frontiers, nil
	}

	frontier := []graph.ID{v}
	seen := map[graph.ID]struct{}{v: {}}
	for h := 1; h <= k; h++ {
		lists, err := c.BatchNeighbors(frontier, t)
		if err != nil {
			return nil, err
		}
		var next []graph.ID
		for _, ns := range lists {
			for _, u := range ns {
				if _, ok := seen[u]; ok {
					continue
				}
				seen[u] = struct{}{}
				next = append(next, u)
			}
		}
		frontiers[h-1] = next
		frontier = next
		if len(frontier) == 0 {
			break
		}
	}
	return frontiers, nil
}
