package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sampling"
)

// FaultTransport is the deterministic fault-injection harness: it wraps any
// Transport and injects request drops, lost replies, latency spikes, and
// per-shard outages (short error bursts or full blackouts with scheduled
// recovery). All randomness comes from one seeded stream and all schedules
// are keyed on per-shard attempted-call counts — never wall-clock time — so
// a fixed seed yields a fixed fault pattern and chaos tests are exactly
// reproducible. Injected failures are wrapped around ErrUnreachable, so the
// policy layer classifies them exactly like real network faults.

// Outage fails every call to Part whose per-shard sequence number falls in
// [From, From+Len). Len <= 0 makes the outage permanent (a dead shard). A
// short Len models an error burst; a long one a blackout with scheduled
// recovery at call From+Len.
type Outage struct {
	Part      int
	From, Len int64
}

// FaultConfig tunes a FaultTransport.
type FaultConfig struct {
	// Seed drives the drop/latency decision stream.
	Seed uint64
	// DropRate is the per-call probability the request is lost before
	// reaching the server.
	DropRate float64
	// ReplyDropRate is the per-call probability the request executes
	// server-side but its reply is lost — the case idempotency tokens exist
	// for.
	ReplyDropRate float64
	// LatencyRate is the per-call probability of an injected latency spike
	// of Latency.
	LatencyRate float64
	Latency     time.Duration
	// Outages schedules deterministic per-shard failure windows.
	Outages []Outage
}

// FaultTransport implements Transport by injecting cfg's faults in front of
// Inner. Safe for concurrent use.
type FaultTransport struct {
	Inner Transport

	mu    sync.Mutex
	cfg   FaultConfig
	rng   sampling.Rng
	calls []int64 // attempted calls per shard (the outage clock)

	drops      atomic.Int64
	replyDrops atomic.Int64
	spikes     atomic.Int64
	outageHits atomic.Int64
}

// NewFaultTransport wraps inner (serving parts shards) with cfg's faults.
func NewFaultTransport(inner Transport, parts int, cfg FaultConfig) *FaultTransport {
	if parts < 1 {
		parts = 1
	}
	return &FaultTransport{
		Inner: inner,
		cfg:   cfg,
		rng:   *sampling.NewRng(cfg.Seed ^ 0xD6E8FEB86659FD93),
		calls: make([]int64, parts),
	}
}

// KillShard schedules a permanent outage for part starting at its next call
// — the "shard died now" switch for degradation tests.
func (t *FaultTransport) KillShard(part int) {
	t.mu.Lock()
	t.cfg.Outages = append(t.cfg.Outages, Outage{Part: part, From: t.calls[part]})
	t.mu.Unlock()
}

// Calls reports how many calls part has received (attempted, including
// faulted ones).
func (t *FaultTransport) Calls(part int) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if part < 0 || part >= len(t.calls) {
		return 0
	}
	return t.calls[part]
}

// Injected reports cumulative injected faults: dropped requests, dropped
// replies, latency spikes, and outage-window failures.
func (t *FaultTransport) Injected() (drops, replyDrops, spikes, outages int64) {
	return t.drops.Load(), t.replyDrops.Load(), t.spikes.Load(), t.outageHits.Load()
}

// fault runs the per-call fault decision for part. It returns a non-nil err
// when the request is lost (outage window or random drop), and dropReply
// when the call must execute but its reply be discarded.
func (t *FaultTransport) fault(part int) (dropReply bool, err error) {
	p := part
	if p < 0 || p >= len(t.calls) {
		p = 0
	}
	t.mu.Lock()
	seq := t.calls[p]
	t.calls[p]++
	var outage bool
	for _, o := range t.cfg.Outages {
		if o.Part == p && seq >= o.From && (o.Len <= 0 || seq < o.From+o.Len) {
			outage = true
			break
		}
	}
	drop := t.cfg.DropRate > 0 && t.rng.Float64() < t.cfg.DropRate
	dropReply = t.cfg.ReplyDropRate > 0 && t.rng.Float64() < t.cfg.ReplyDropRate
	var spike time.Duration
	if t.cfg.LatencyRate > 0 && t.rng.Float64() < t.cfg.LatencyRate {
		spike = t.cfg.Latency
	}
	t.mu.Unlock()

	if outage {
		t.outageHits.Add(1)
		return false, fmt.Errorf("cluster: injected outage on shard %d (call %d): %w", p, seq, ErrUnreachable)
	}
	if spike > 0 {
		t.spikes.Add(1)
		time.Sleep(spike)
	}
	if drop {
		t.drops.Add(1)
		return false, fmt.Errorf("cluster: injected drop on shard %d (call %d): %w", p, seq, ErrUnreachable)
	}
	return dropReply, nil
}

// lostReply is the error surfaced when an executed call's reply is dropped.
func lostReply(part int) error {
	return fmt.Errorf("cluster: injected reply loss on shard %d: %w", part, ErrUnreachable)
}

// faultCall wraps one inner call with the fault decision. The reply may have
// been written when the reply is "lost" — callers above (RetryTransport)
// use a fresh reply per attempt and discard it on error, exactly as a real
// lost reply behaves.
func faultCall[Req any, Rep any](t *FaultTransport, part int, req Req, reply *Rep, call func(int, Req, *Rep) error) error {
	dropReply, err := t.fault(part)
	if err != nil {
		return err
	}
	if err := call(part, req, reply); err != nil {
		return err
	}
	if dropReply {
		t.replyDrops.Add(1)
		return lostReply(part)
	}
	return nil
}

// Neighbors implements Transport.
func (t *FaultTransport) Neighbors(part int, req NeighborsRequest, reply *NeighborsReply) error {
	return faultCall(t, part, req, reply, t.Inner.Neighbors)
}

// SampleNeighbors implements Transport.
func (t *FaultTransport) SampleNeighbors(part int, req SampleRequest, reply *SampleReply) error {
	return faultCall(t, part, req, reply, t.Inner.SampleNeighbors)
}

// SampleEdges implements Transport.
func (t *FaultTransport) SampleEdges(part int, req EdgesRequest, reply *EdgesReply) error {
	return faultCall(t, part, req, reply, t.Inner.SampleEdges)
}

// NegativePool implements Transport.
func (t *FaultTransport) NegativePool(part int, req NegPoolRequest, reply *NegPoolReply) error {
	return faultCall(t, part, req, reply, t.Inner.NegativePool)
}

// Stats implements Transport.
func (t *FaultTransport) Stats(part int, req StatsRequest, reply *StatsReply) error {
	return faultCall(t, part, req, reply, t.Inner.Stats)
}

// Attrs implements Transport.
func (t *FaultTransport) Attrs(part int, req AttrsRequest, reply *AttrsReply) error {
	return faultCall(t, part, req, reply, t.Inner.Attrs)
}

// Bootstrap implements Transport.
func (t *FaultTransport) Bootstrap(part int, req BootstrapRequest, reply *BootstrapReply) error {
	return faultCall(t, part, req, reply, t.Inner.Bootstrap)
}

// Update implements Transport. Reply drops here are what exercise the
// server-side idempotency-token dedup.
func (t *FaultTransport) Update(part int, req UpdateRequest, reply *UpdateReply) error {
	return faultCall(t, part, req, reply, t.Inner.Update)
}

// Lease implements Transport.
func (t *FaultTransport) Lease(part int, req LeaseRequest, reply *LeaseReply) error {
	return faultCall(t, part, req, reply, t.Inner.Lease)
}

// Release implements Transport.
func (t *FaultTransport) Release(part int, req ReleaseRequest, reply *ReleaseReply) error {
	return faultCall(t, part, req, reply, t.Inner.Release)
}

// Compact implements Transport.
func (t *FaultTransport) Compact(part int, req CompactRequest, reply *CompactReply) error {
	return faultCall(t, part, req, reply, t.Inner.Compact)
}

// Kick forwards a connection-sever request to the inner transport, so a
// RetryTransport stacked over fault injection over a real RPCTransport can
// still tear down a hung connection on deadline expiry.
func (t *FaultTransport) Kick(part int) {
	if k, ok := t.Inner.(Kicker); ok {
		k.Kick(part)
	}
}

// Close implements Transport; shutdown is never faulted.
func (t *FaultTransport) Close() error { return t.Inner.Close() }
