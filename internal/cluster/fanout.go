package cluster

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the concurrent scatter-gather primitive every multi-shard
// call site in the package is built on, plus the per-RPC observability
// counters (Client.Metrics) it feeds.
//
// A hop of a mini-batch touches up to P servers. Issuing those sub-requests
// sequentially prices the hop at shards x RTT; scatterGather launches them
// together so the hop costs max(RTT) regardless of shard count. The
// determinism story does not depend on arrival order: every sub-request
// writes only its own reply slot, and the caller stitches replies back in
// ascending part order on its own goroutine after the whole round lands —
// so cache admissions, span observations, degraded-draw counting and error
// selection happen in exactly the order a sequential client would produce.

// scatterGather runs call(0..n-1) and returns the per-call errors. With
// limit == 1 (or a single call) the calls run inline in index order — the
// sequential mode benchmarks compare against. Otherwise every call gets its
// own goroutine, with at most limit in flight when limit > 1 (limit <= 0
// launches all at once). The returned slice is indexed like the calls; the
// caller decides how errors aggregate (by convention: the lowest-index
// failure wins, so retries and tests stay deterministic).
func scatterGather(n, limit int, call func(i int) error) []error {
	errs := make([]error, n)
	if n <= 1 || limit == 1 {
		for i := 0; i < n; i++ {
			errs[i] = call(i)
		}
		return errs
	}
	var sem chan struct{}
	if limit > 1 && limit < n {
		sem = make(chan struct{}, limit)
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if sem != nil {
				sem <- struct{}{}
				defer func() { <-sem }()
			}
			errs[i] = call(i)
		}(i)
	}
	wg.Wait()
	return errs
}

// firstError returns the lowest-index non-nil error — the deterministic
// aggregate of a scatter round's failures.
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// sortedParts returns the keys of a part-keyed map in ascending order, so
// every scatter round (and its gather) is reproducible regardless of map
// iteration order.
func sortedParts[V any](m map[int]V) []int {
	parts := make([]int, 0, len(m))
	for p := range m {
		parts = append(parts, p)
	}
	sort.Ints(parts)
	return parts
}

// allParts returns [0, p).
func allParts(p int) []int {
	parts := make([]int, p)
	for i := range parts {
		parts[i] = i
	}
	return parts
}

// rpcMethod indexes the per-method counters of clientMetrics.
type rpcMethod int

const (
	mNeighbors rpcMethod = iota
	mSampleNeighbors
	mSampleEdges
	mNegativePool
	mStats
	mAttrs
	mLease
	mRelease
	methodCount
)

var methodNames = [methodCount]string{
	"Neighbors", "SampleNeighbors", "SampleEdges", "NegativePool",
	"Stats", "Attrs", "Lease", "Release",
}

// methodCounters accumulates one RPC method's call count, error count and
// cumulative wall-clock latency (including the retry layer's attempts and
// backoff, since the client times the whole transport call).
type methodCounters struct {
	calls  atomic.Int64
	errors atomic.Int64
	nanos  atomic.Int64
}

// clientMetrics is the always-on per-RPC observability state of a Client:
// lock-free counters on the call path, snapshotted by Client.Metrics. This
// is the seed of the adaptive sampling planner (ROADMAP item 4) — per-hop
// strategy choices need per-method timings to choose against.
type clientMetrics struct {
	methods  [methodCount]methodCounters
	fanouts  atomic.Int64 // scatter rounds spanning more than one shard
	fanWidth atomic.Int64 // cumulative sub-requests across those rounds
}

// MethodMetrics is one RPC method's cumulative counters.
type MethodMetrics struct {
	Calls   int64
	Errors  int64
	Latency time.Duration // cumulative wall clock across Calls
}

// Metrics is a snapshot of a Client's per-RPC observability counters. RPCs
// counts per-shard sub-requests as the client issued them; Retries and
// FastFails are pulled from the retry layer when the client's transport
// provides one (RetryStats). FanoutWidth is the average number of shards a
// multi-shard scatter round spanned — with concurrent fan-out enabled, the
// latency of such a round is max over those shards rather than their sum.
type Metrics struct {
	RPCs          int64
	Retries       int64
	FastFails     int64
	DegradedDraws int64
	Fanouts       int64
	FanoutWidth   float64
	Methods       map[string]MethodMetrics
}

// RetryStats is implemented by policy-layer transports (RetryTransport)
// that can report retry activity; Client.Metrics surfaces it when present.
type RetryStats interface {
	Retries() int64
	FastFails() int64
}

// String formats the snapshot for CLIs (aligraph-train -stats) and logs.
func (m Metrics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rpc: %d sub-requests, %d retries, %d fast-fails, %d degraded draws\n",
		m.RPCs, m.Retries, m.FastFails, m.DegradedDraws)
	fmt.Fprintf(&b, "fan-out: %d multi-shard rounds, avg width %.2f\n", m.Fanouts, m.FanoutWidth)
	names := make([]string, 0, len(m.Methods))
	for name, mm := range m.Methods {
		if mm.Calls > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		mm := m.Methods[name]
		avg := time.Duration(0)
		if mm.Calls > 0 {
			avg = mm.Latency / time.Duration(mm.Calls)
		}
		fmt.Fprintf(&b, "  %-16s calls=%-7d errors=%-4d total=%-12v avg=%v\n",
			name, mm.Calls, mm.Errors, mm.Latency.Round(time.Microsecond), avg.Round(time.Microsecond))
	}
	return b.String()
}

// timed wraps one per-shard transport call with the method's counters.
func (c *Client) timed(m rpcMethod, call func() error) error {
	start := time.Now()
	err := call()
	mc := &c.met.methods[m]
	mc.calls.Add(1)
	mc.nanos.Add(int64(time.Since(start)))
	if err != nil {
		mc.errors.Add(1)
	}
	return err
}

// scatter is the Client's fan-out entry point: call(i, parts[i]) runs for
// every target shard, concurrently up to the client's Fanout limit, and the
// per-part errors come back indexed like parts. Callers gather replies in
// parts order afterwards (parts are pre-sorted), which keeps every
// aggregation deterministic.
func (c *Client) scatter(parts []int, call func(i, part int) error) []error {
	if len(parts) > 1 {
		c.met.fanouts.Add(1)
		c.met.fanWidth.Add(int64(len(parts)))
	}
	return scatterGather(len(parts), c.Fanout, func(i int) error { return call(i, parts[i]) })
}

// Metrics snapshots the client's per-RPC counters. Safe to call
// concurrently with training; counters are cumulative since NewClient.
func (c *Client) Metrics() Metrics {
	m := Metrics{
		DegradedDraws: c.degradedDraws.Load(),
		Fanouts:       c.met.fanouts.Load(),
		Methods:       make(map[string]MethodMetrics, methodCount),
	}
	for i := rpcMethod(0); i < methodCount; i++ {
		mc := &c.met.methods[i]
		mm := MethodMetrics{
			Calls:   mc.calls.Load(),
			Errors:  mc.errors.Load(),
			Latency: time.Duration(mc.nanos.Load()),
		}
		m.Methods[methodNames[i]] = mm
		m.RPCs += mm.Calls
	}
	if m.Fanouts > 0 {
		m.FanoutWidth = float64(c.met.fanWidth.Load()) / float64(m.Fanouts)
	}
	if rs, ok := c.T.(RetryStats); ok {
		m.Retries = rs.Retries()
		m.FastFails = rs.FastFails()
	}
	return m
}
