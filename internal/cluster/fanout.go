package cluster

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
)

// This file is the concurrent scatter-gather primitive every multi-shard
// call site in the package is built on, plus the per-RPC observability
// counters (Client.Metrics) it feeds.
//
// A hop of a mini-batch touches up to P servers. Issuing those sub-requests
// sequentially prices the hop at shards x RTT; scatterGather launches them
// together so the hop costs max(RTT) regardless of shard count. The
// determinism story does not depend on arrival order: every sub-request
// writes only its own reply slot, and the caller stitches replies back in
// ascending part order on its own goroutine after the whole round lands —
// so cache admissions, span observations, degraded-draw counting and error
// selection happen in exactly the order a sequential client would produce.

// scatterGather runs call(0..n-1) and returns the per-call errors. With
// limit == 1 (or a single call) the calls run inline in index order — the
// sequential mode benchmarks compare against. Otherwise every call gets its
// own goroutine, with at most limit in flight when limit > 1 (limit <= 0
// launches all at once). The returned slice is indexed like the calls; the
// caller decides how errors aggregate (by convention: the lowest-index
// failure wins, so retries and tests stay deterministic).
func scatterGather(n, limit int, call func(i int) error) []error {
	errs := make([]error, n)
	if n <= 1 || limit == 1 {
		for i := 0; i < n; i++ {
			errs[i] = call(i)
		}
		return errs
	}
	var sem chan struct{}
	if limit > 1 && limit < n {
		sem = make(chan struct{}, limit)
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if sem != nil {
				sem <- struct{}{}
				defer func() { <-sem }()
			}
			errs[i] = call(i)
		}(i)
	}
	wg.Wait()
	return errs
}

// firstError returns the lowest-index non-nil error — the deterministic
// aggregate of a scatter round's failures.
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// sortedParts returns the keys of a part-keyed map in ascending order, so
// every scatter round (and its gather) is reproducible regardless of map
// iteration order.
func sortedParts[V any](m map[int]V) []int {
	parts := make([]int, 0, len(m))
	for p := range m {
		parts = append(parts, p)
	}
	sort.Ints(parts)
	return parts
}

// allParts returns [0, p).
func allParts(p int) []int {
	parts := make([]int, p)
	for i := range parts {
		parts[i] = i
	}
	return parts
}

// rpcMethod indexes the per-method counters of clientMetrics.
type rpcMethod int

const (
	mNeighbors rpcMethod = iota
	mSampleNeighbors
	mSampleEdges
	mNegativePool
	mStats
	mAttrs
	mLease
	mRelease
	methodCount
)

var methodNames = [methodCount]string{
	"Neighbors", "SampleNeighbors", "SampleEdges", "NegativePool",
	"Stats", "Attrs", "Lease", "Release",
}

// methodCounters accumulates one RPC method's error count and wall-clock
// latency distribution (including the retry layer's attempts and backoff,
// since the client times the whole transport call). The call count is the
// histogram's observation count — latency moved from a cumulative-only
// counter to an obs.Histogram so tail questions (p50/p99/max) are
// answerable; the old cumulative Latency field survives as the histogram
// sum.
type methodCounters struct {
	errors obs.Counter
	lat    obs.Histogram
}

// clientMetrics is the always-on per-RPC observability state of a Client:
// lock-free counters and histograms on the call path, snapshotted by
// Client.Metrics. This is the seed of the adaptive sampling planner
// (ROADMAP item 4) — per-hop strategy choices need per-method timings to
// choose against.
type clientMetrics struct {
	methods  [methodCount]methodCounters
	fanouts  obs.Counter // scatter rounds spanning more than one shard
	fanWidth obs.Counter // cumulative sub-requests across those rounds
}

// MethodMetrics is one RPC method's cumulative counters. Calls and Latency
// are derived from the latency histogram (count and sum), keeping the
// pre-histogram fields intact; P50/P99 are <2x-upper-bound estimates from
// the log buckets and Max is exact.
type MethodMetrics struct {
	Calls   int64
	Errors  int64
	Latency time.Duration // cumulative wall clock across Calls (histogram sum)
	P50     time.Duration
	P99     time.Duration
	Max     time.Duration
}

// hopStats is one (edge type, hop) sampling lane's always-on counters: every
// batch expansion the client executes is attributed to the hop the
// NEIGHBORHOOD sampler tagged (sampling.HopTagged; hop 0 collects direct,
// untagged calls). Time, per-shard sub-request counts and cache outcomes per
// lane are exactly the per-operator annotations ROADMAP item 4's planner
// needs to choose between cached draws, server-side sampling and full-list
// admission per lane.
type hopStats struct {
	calls     obs.Counter // batch expansions (one per SampleBatch/NeighborsBatch)
	slots     obs.Counter // batch slots across those calls (len(vs))
	rpcs      obs.Counter // per-shard sub-requests issued
	lookups   obs.Counter // cache probes (one per unique vertex probed)
	cacheHits obs.Counter // unique vertices served from the neighbor cache
	epochMiss obs.Counter // cache probes that failed only on epoch validity
	degraded  obs.Counter // draws served from stale cache state (shard down)
	nanos     obs.Counter // wall clock, whole expansions
}

// hopMetrics is a copy-on-write map of (edge type, hop) -> *hopStats. The
// hot path pays one atomic load plus a small-map lookup; inserting a lane
// (first time a (type, hop) pair is seen — a handful per training run)
// copies the map under the mutex.
type hopMetrics struct {
	mu sync.Mutex
	m  atomic.Pointer[map[uint32]*hopStats]
}

func hopLaneKey(t graph.EdgeType, hop int) uint32 {
	return uint32(uint16(t))<<8 | uint32(hop&0xff)
}

// get returns the lane for (t, hop), creating it on first use.
func (h *hopMetrics) get(t graph.EdgeType, hop int) *hopStats {
	key := hopLaneKey(t, hop)
	if m := h.m.Load(); m != nil {
		if hs := (*m)[key]; hs != nil {
			return hs
		}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	old := h.m.Load()
	if old != nil {
		if hs := (*old)[key]; hs != nil {
			return hs
		}
	}
	next := make(map[uint32]*hopStats)
	if old != nil {
		for k, v := range *old {
			next[k] = v
		}
	}
	hs := &hopStats{}
	next[key] = hs
	h.m.Store(&next)
	return hs
}

// snapshot returns the current lane map (nil when nothing was recorded).
func (h *hopMetrics) snapshot() map[uint32]*hopStats {
	if m := h.m.Load(); m != nil {
		return *m
	}
	return nil
}

// HopMetrics is one (edge type, hop) lane's cumulative counters as exposed
// by Client.Metrics, annotated with the lane's current plan choice
// (Strategy/Admit — what the active sampling plan resolves for it right
// now, "hybrid"+admit when no plan is installed).
type HopMetrics struct {
	Calls       int64
	Slots       int64
	RPCs        int64
	Lookups     int64
	CacheHits   int64
	EpochMisses int64
	Degraded    int64
	Time        time.Duration
	Strategy    string
	Admit       bool
}

// Metrics is a snapshot of a Client's per-RPC observability counters. RPCs
// counts per-shard sub-requests as the client issued them; Retries and
// FastFails are pulled from the retry layer when the client's transport
// provides one (RetryStats). FanoutWidth is the average number of shards a
// multi-shard scatter round spanned — with concurrent fan-out enabled, the
// latency of such a round is max over those shards rather than their sum.
type Metrics struct {
	RPCs          int64
	Retries       int64
	FastFails     int64
	DegradedDraws int64
	Fanouts       int64
	FanoutWidth   float64
	Methods       map[string]MethodMetrics
	// Hops breaks the sampling work down per (edge type, hop) lane, keyed
	// "t<type>.h<hop>" (hop 0 collects direct calls made outside a tagged
	// NEIGHBORHOOD expansion).
	Hops map[string]HopMetrics
}

// RetryStats is implemented by policy-layer transports (RetryTransport)
// that can report retry activity; Client.Metrics surfaces it when present.
type RetryStats interface {
	Retries() int64
	FastFails() int64
}

// String formats the snapshot for CLIs (aligraph-train -stats) and logs.
func (m Metrics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rpc: %d sub-requests, %d retries, %d fast-fails, %d degraded draws\n",
		m.RPCs, m.Retries, m.FastFails, m.DegradedDraws)
	fmt.Fprintf(&b, "fan-out: %d multi-shard rounds, avg width %.2f\n", m.Fanouts, m.FanoutWidth)
	names := make([]string, 0, len(m.Methods))
	for name, mm := range m.Methods {
		if mm.Calls > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		mm := m.Methods[name]
		avg := time.Duration(0)
		if mm.Calls > 0 {
			avg = mm.Latency / time.Duration(mm.Calls)
		}
		fmt.Fprintf(&b, "  %-16s calls=%-7d errors=%-4d total=%-12v avg=%-10v p50=%-10v p99=%-10v max=%v\n",
			name, mm.Calls, mm.Errors, mm.Latency.Round(time.Microsecond), avg.Round(time.Microsecond),
			mm.P50.Round(time.Microsecond), mm.P99.Round(time.Microsecond), mm.Max.Round(time.Microsecond))
	}
	if len(m.Hops) > 0 {
		fmt.Fprintf(&b, "sampling lanes (edge type x hop):\n")
		lanes := make([]string, 0, len(m.Hops))
		for lane := range m.Hops {
			lanes = append(lanes, lane)
		}
		sort.Strings(lanes)
		for _, lane := range lanes {
			hm := m.Hops[lane]
			avg := time.Duration(0)
			if hm.Calls > 0 {
				avg = hm.Time / time.Duration(hm.Calls)
			}
			planStr := hm.Strategy
			if hm.Admit {
				planStr += "+admit"
			}
			fmt.Fprintf(&b, "  %-8s calls=%-7d slots=%-8d rpcs=%-7d cache-hits=%-8d epoch-miss=%-6d degraded=%-6d avg=%-10v plan=%s\n",
				lane, hm.Calls, hm.Slots, hm.RPCs, hm.CacheHits, hm.EpochMisses, hm.Degraded, avg.Round(time.Microsecond), planStr)
		}
	}
	return b.String()
}

// timed wraps one per-shard transport call with the method's counters.
func (c *Client) timed(m rpcMethod, call func() error) error {
	start := time.Now()
	err := call()
	mc := &c.met.methods[m]
	mc.lat.Observe(int64(time.Since(start)))
	if err != nil {
		mc.errors.Inc()
	}
	return err
}

// scatter is the Client's fan-out entry point: call(i, parts[i]) runs for
// every target shard, concurrently up to the client's Fanout limit, and the
// per-part errors come back indexed like parts. Callers gather replies in
// parts order afterwards (parts are pre-sorted), which keeps every
// aggregation deterministic.
func (c *Client) scatter(parts []int, call func(i, part int) error) []error {
	if len(parts) > 1 {
		c.met.fanouts.Add(1)
		c.met.fanWidth.Add(int64(len(parts)))
	}
	return scatterGather(len(parts), c.Fanout, func(i int) error { return call(i, parts[i]) })
}

// Metrics snapshots the client's per-RPC counters. Safe to call
// concurrently with training; counters are cumulative since NewClient.
func (c *Client) Metrics() Metrics {
	m := Metrics{
		DegradedDraws: c.degradedDraws.Load(),
		Fanouts:       c.met.fanouts.Load(),
		Methods:       make(map[string]MethodMetrics, methodCount),
	}
	for i := rpcMethod(0); i < methodCount; i++ {
		mc := &c.met.methods[i]
		hs := mc.lat.Snapshot()
		mm := MethodMetrics{
			Calls:   hs.Count,
			Errors:  mc.errors.Load(),
			Latency: time.Duration(hs.Sum),
			P50:     time.Duration(hs.P50),
			P99:     time.Duration(hs.P99),
			Max:     time.Duration(hs.Max),
		}
		m.Methods[methodNames[i]] = mm
		m.RPCs += mm.Calls
	}
	if m.Fanouts > 0 {
		m.FanoutWidth = float64(c.met.fanWidth.Load()) / float64(m.Fanouts)
	}
	if rs, ok := c.T.(RetryStats); ok {
		m.Retries = rs.Retries()
		m.FastFails = rs.FastFails()
	}
	if lanes := c.hops.snapshot(); len(lanes) > 0 {
		m.Hops = make(map[string]HopMetrics, len(lanes))
		for key, hs := range lanes {
			lp := c.lanePlan(graph.EdgeType(key>>8), int(key&0xff))
			m.Hops[fmt.Sprintf("t%d.h%d", key>>8, key&0xff)] = HopMetrics{
				Calls:       hs.calls.Load(),
				Slots:       hs.slots.Load(),
				RPCs:        hs.rpcs.Load(),
				Lookups:     hs.lookups.Load(),
				CacheHits:   hs.cacheHits.Load(),
				EpochMisses: hs.epochMiss.Load(),
				Degraded:    hs.degraded.Load(),
				Time:        time.Duration(hs.nanos.Load()),
				Strategy:    lp.Strategy.String(),
				Admit:       lp.Admit,
			}
		}
	}
	return m
}

// RegisterObs names the client's always-on instruments in r: per-method RPC
// latency histograms and error counters (cluster.client.rpc.<Method>.*),
// fan-out and degraded-draw counters, retry-layer and cache gauges, and a
// collector emitting the per-(edge type, hop) sampling lanes as
// cluster.client.sample.t<type>.h<hop>.* series. Registration is one-time
// setup; the hot paths keep writing the same instruments whether or not a
// registry ever reads them.
func (c *Client) RegisterObs(r *obs.Registry) {
	for i := rpcMethod(0); i < methodCount; i++ {
		mc := &c.met.methods[i]
		r.RegisterHistogram("cluster.client.rpc."+methodNames[i]+".latency", &mc.lat)
		r.RegisterCounter("cluster.client.rpc."+methodNames[i]+".errors", &mc.errors)
	}
	r.RegisterCounter("cluster.client.fanout.rounds", &c.met.fanouts)
	r.RegisterCounter("cluster.client.fanout.width_sum", &c.met.fanWidth)
	r.RegisterCounter("cluster.client.degraded_draws", &c.degradedDraws)
	if rs, ok := c.T.(RetryStats); ok {
		r.Gauge("cluster.client.retries", rs.Retries)
		r.Gauge("cluster.client.fast_fails", rs.FastFails)
	}
	r.Gauge("cluster.client.cache.vertices", func() int64 { return int64(c.Cache.CachedVertices()) })
	if cc, ok := c.Cache.(interface{ Counters() (int64, int64, int64) }); ok {
		r.Gauge("cluster.client.cache.hits", func() int64 { h, _, _ := cc.Counters(); return h })
		r.Gauge("cluster.client.cache.misses", func() int64 { _, m, _ := cc.Counters(); return m })
		r.Gauge("cluster.client.cache.epoch_misses", func() int64 { _, _, e := cc.Counters(); return e })
	}
	r.Collect(func(emit func(name string, v int64)) {
		for key, hs := range c.hops.snapshot() {
			p := fmt.Sprintf("cluster.client.sample.t%d.h%d.", key>>8, key&0xff)
			emit(p+"calls", hs.calls.Load())
			emit(p+"slots", hs.slots.Load())
			emit(p+"rpcs", hs.rpcs.Load())
			emit(p+"lookups", hs.lookups.Load())
			emit(p+"cache_hits", hs.cacheHits.Load())
			emit(p+"epoch_misses", hs.epochMiss.Load())
			emit(p+"degraded", hs.degraded.Load())
			emit(p+"nanos", hs.nanos.Load())
			// The lane's resolved plan choice rides with its counters:
			// strategy is the internal/plan enum (hybrid=1, client=2,
			// server=3), so any planned lane reads non-zero.
			lp := c.lanePlan(graph.EdgeType(key>>8), int(key&0xff))
			emit(fmt.Sprintf("cluster.client.plan.t%d.h%d.strategy", key>>8, key&0xff), int64(lp.Strategy))
			admit := int64(0)
			if lp.Admit {
				admit = 1
			}
			emit(fmt.Sprintf("cluster.client.plan.t%d.h%d.admit", key>>8, key&0xff), admit)
		}
	})
}
