package cluster

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/storage"
)

// newFaultTrainer wires a deterministic 2-shard cluster trainer over g,
// letting the caller interpose fault/retry layers on the transport and
// choose the trainer config. Same seed and same effective reply stream =>
// same draws, which is the property every chaos test below leans on.
func newFaultTrainer(t *testing.T, g *graph.Graph, seed int64, cache storage.NeighborCache,
	wrap func(Transport) Transport, cfg core.TrainerConfig) (*core.LinkTrainer, *Client, []*Server) {
	t.Helper()
	a, err := (partition.HashPartitioner{}).Partition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	servers := FromGraph(g, a)
	var tr Transport = NewLocalTransport(servers, 0, 0)
	if wrap != nil {
		tr = wrap(tr)
	}
	c := NewClient(a, tr, cache)
	rng := rand.New(rand.NewSource(seed))
	enc := churnEncoder(g.NumVertices(), cfg.HopNums, rng)
	trn, err := core.NewLinkTrainerOver(NewEnv(c, 1), c, enc, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	return trn, c, servers
}

func faultTrainerConfig() core.TrainerConfig {
	return core.TrainerConfig{EdgeType: 0, HopNums: []int{3, 2}, Batch: 16, NegK: 2, LR: 0.05}
}

// TestChaosTrainingBitIdentical is the tentpole acceptance test: depth-4
// pipelined training through a RetryTransport over a seeded FaultTransport
// injecting drops, lost replies, latency spikes, one long shard blackout
// with recovery, and one short error burst. Because every read is slot- or
// seed-pure and retried batches replay against the same pin and seeds, the
// per-step losses must be BIT-identical to a fault-free run — retries and
// parking paper over the faults without consuming a single extra draw.
func TestChaosTrainingBitIdentical(t *testing.T) {
	const steps = 30
	g := churnTestGraph(200)

	// Reference: identical trainer over a pristine transport.
	quiet, _, _ := newFaultTrainer(t, g, 42, storage.NoCache{}, nil, faultTrainerConfig())
	qpl := core.NewPipeline(quiet, core.PipelineConfig{Depth: 4, Workers: 3})
	quiet.SetSource(qpl)
	want, err := quiet.Train(steps)
	if cerr := qpl.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if err != nil {
		t.Fatal(err)
	}

	// Chaos run: same seed, faults everywhere.
	var ft *FaultTransport
	var rt *RetryTransport
	trn, _, _ := newFaultTrainer(t, g, 42, storage.NoCache{}, func(inner Transport) Transport {
		ft = NewFaultTransport(inner, 2, FaultConfig{
			Seed:          99,
			DropRate:      0.03,
			ReplyDropRate: 0.01,
			LatencyRate:   0.05,
			Latency:       2 * time.Millisecond,
			Outages: []Outage{
				{Part: 1, From: 40, Len: 25}, // blackout with scheduled recovery
				{Part: 0, From: 80, Len: 5},  // short error burst
			},
		})
		rt = NewRetryTransport(ft, 2, CallPolicy{
			Timeout:       2 * time.Second,
			Attempts:      4,
			Backoff:       200 * time.Microsecond,
			MaxBackoff:    2 * time.Millisecond,
			FailThreshold: 3,
			Cooldown:      2 * time.Millisecond,
		}, 7)
		return rt
	}, faultTrainerConfig())
	pl := core.NewPipeline(trn, core.PipelineConfig{Depth: 4, Workers: 3})
	trn.SetSource(pl)
	got, err := trn.Train(steps)
	if cerr := pl.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if err != nil {
		t.Fatalf("chaos training failed: %v", err)
	}

	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("step %d: loss diverged under faults: quiet %v, chaos %v", i, want[i], got[i])
		}
	}
	drops, replyDrops, spikes, outages := ft.Injected()
	if drops+replyDrops+outages == 0 {
		t.Fatalf("fault harness injected nothing (drops=%d replyDrops=%d spikes=%d outages=%d); test proves nothing",
			drops, replyDrops, spikes, outages)
	}
	if rt.Retries() == 0 {
		t.Fatal("no retries issued despite injected faults")
	}
	t.Logf("injected: %d drops, %d reply drops, %d spikes, %d outage hits; %d retries, %d fast-fails",
		drops, replyDrops, spikes, outages, rt.Retries(), rt.FastFails())
}

// TestPermanentShardBlackoutDegrades kills one shard for good mid-training
// with Client.Degrade set: training must continue on cache-served stale
// lists (counted in DegradedDraws) instead of crashing, and the dead
// shard's breaker must open so its calls fast-fail rather than burn the
// full retry budget every batch.
func TestPermanentShardBlackoutDegrades(t *testing.T) {
	g := churnTestGraph(200)
	var ft *FaultTransport
	var rt *RetryTransport
	cache := storage.NewLRUNeighborCache(4096)
	trn, c, _ := newFaultTrainer(t, g, 11, cache, func(inner Transport) Transport {
		ft = NewFaultTransport(inner, 2, FaultConfig{Seed: 1})
		rt = NewRetryTransport(ft, 2, CallPolicy{
			Timeout:       time.Second,
			Attempts:      2,
			Backoff:       100 * time.Microsecond,
			MaxBackoff:    time.Millisecond,
			FailThreshold: 2,
			Cooldown:      50 * time.Millisecond,
		}, 3)
		return rt
	}, faultTrainerConfig())
	c.Degrade = true

	// Warm phase: both shards healthy, caches admit hot lists.
	warm, err := trn.Train(10)
	if err != nil {
		t.Fatal(err)
	}
	if c.DegradedDraws() != 0 {
		t.Fatalf("degraded draws before any fault: %d", c.DegradedDraws())
	}

	ft.KillShard(1)

	after, err := trn.Train(20)
	if err != nil {
		t.Fatalf("training died on a permanently dead shard despite Degrade: %v", err)
	}
	for i, l := range append(warm, after...) {
		if math.IsNaN(l) || math.IsInf(l, 0) {
			t.Fatalf("step %d: non-finite loss %v", i, l)
		}
	}
	if c.DegradedDraws() == 0 {
		t.Fatal("no degraded draws counted while a shard was dead")
	}
	if !rt.BreakerOpen(1) {
		t.Error("dead shard's breaker never opened")
	}
	if rt.FastFails() == 0 {
		t.Error("open breaker never fast-failed a call")
	}
	t.Logf("degraded draws: %d, fast-fails: %d", c.DegradedDraws(), rt.FastFails())
}

// TestNegativePoolEpochRefresh: with NegRefresh set, the trainer rebuilds
// its negative pool once the observed head epoch outruns the pool by the
// threshold — the pool follows a streaming graph instead of staying frozen
// at construction.
func TestNegativePoolEpochRefresh(t *testing.T) {
	g := churnTestGraph(160)
	cfg := faultTrainerConfig()
	cfg.NegRefresh = 2
	trn, c, servers := newFaultTrainer(t, g, 21, storage.NoCache{}, nil, cfg)

	if _, err := trn.Train(3); err != nil {
		t.Fatal(err)
	}
	if trn.NegRebuilds() != 0 {
		t.Fatalf("pool rebuilt before any update: %d", trn.NegRebuilds())
	}

	// Advance shard epochs past the threshold with churn-type updates on
	// vertices each server owns.
	for part, srv := range servers {
		local := make([]graph.ID, 0, 2)
		for v := range c.Assign.Of {
			if c.Assign.Of[v] == part {
				local = append(local, graph.ID(v))
				if len(local) == 2 {
					break
				}
			}
		}
		for i := 0; i < 3; i++ {
			req := UpdateRequest{Add: []RawEdge{{Src: local[0], Dst: local[1], Type: 1, Weight: 1}}}
			if err := srv.ServeUpdate(req, &UpdateReply{}); err != nil {
				t.Fatal(err)
			}
		}
	}

	// The first post-update batch observes the new heads (reply watermarks),
	// and the next one refreshes the pool.
	if _, err := trn.Train(4); err != nil {
		t.Fatal(err)
	}
	if trn.NegRebuilds() == 0 {
		t.Fatalf("observed head advanced to %d but the negative pool was never rebuilt", c.MaxObservedHead())
	}
}

// errStats wraps a Transport, failing Stats with a non-transient
// application error.
type errStats struct {
	Transport
	calls int
}

func (e *errStats) Stats(part int, req StatsRequest, reply *StatsReply) error {
	e.calls++
	return errors.New("cluster: synthetic application error")
}

// TestRetryTransportBudgetAndClassification: transient failures are retried
// up to the budget and surface as ShardDownError; application errors pass
// through on the first attempt, unretried and unwrapped.
func TestRetryTransportBudgetAndClassification(t *testing.T) {
	g := churnTestGraph(60)
	a, err := (partition.HashPartitioner{}).Partition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	servers := FromGraph(g, a)
	local := NewLocalTransport(servers, 0, 0)

	// Outage over the first 2 calls to shard 0: attempts 1-2 fail, 3 lands.
	ft := NewFaultTransport(local, 2, FaultConfig{Outages: []Outage{{Part: 0, From: 0, Len: 2}}})
	rt := NewRetryTransport(ft, 2, CallPolicy{Attempts: 4, Backoff: 50 * time.Microsecond, MaxBackoff: time.Millisecond}, 1)
	var sr StatsReply
	if err := rt.Stats(0, StatsRequest{}, &sr); err != nil {
		t.Fatalf("retries should have outlasted the burst: %v", err)
	}
	if rt.Retries() != 2 {
		t.Fatalf("retries = %d, want 2", rt.Retries())
	}

	// Permanent outage: the budget exhausts into a ShardDownError that
	// classifies as transient (pipelines park on it) and names the shard.
	ft2 := NewFaultTransport(local, 2, FaultConfig{Outages: []Outage{{Part: 1, From: 0}}})
	rt2 := NewRetryTransport(ft2, 2, CallPolicy{Attempts: 3, Backoff: 50 * time.Microsecond, MaxBackoff: time.Millisecond}, 1)
	err = rt2.Stats(1, StatsRequest{}, &sr)
	var sde *ShardDownError
	if !errors.As(err, &sde) || sde.Part != 1 {
		t.Fatalf("want ShardDownError{Part: 1}, got %v", err)
	}
	if !IsTransient(err) || !IsShardDown(err) {
		t.Fatalf("ShardDownError misclassified: transient=%v shardDown=%v", IsTransient(err), IsShardDown(err))
	}

	// Application errors: one attempt, error unchanged.
	es := &errStats{Transport: local}
	rt3 := NewRetryTransport(es, 2, CallPolicy{Attempts: 4}, 1)
	err = rt3.Stats(0, StatsRequest{}, &sr)
	if err == nil || IsTransient(err) {
		t.Fatalf("application error misclassified: %v", err)
	}
	if es.calls != 1 {
		t.Fatalf("application error retried: %d calls", es.calls)
	}
	if rt3.Retries() != 0 {
		t.Fatalf("retries counted for an application error: %d", rt3.Retries())
	}
}

// TestBreakerTransitions drives one breaker through closed -> open ->
// half-open -> closed and the half-open -> re-open failure path.
func TestBreakerTransitions(t *testing.T) {
	p := CallPolicy{FailThreshold: 2, Cooldown: time.Hour}
	var b breaker
	now := time.Now()

	if !b.allow(&p, now) {
		t.Fatal("closed breaker must allow")
	}
	b.failure(&p, now)
	if b.current() != breakerClosed {
		t.Fatal("one failure below threshold must not open")
	}
	b.failure(&p, now)
	if b.current() != breakerOpen {
		t.Fatal("threshold failures must open")
	}
	if b.allow(&p, now.Add(time.Minute)) {
		t.Fatal("open breaker within cooldown must fast-fail")
	}
	if !b.allow(&p, now.Add(2*time.Hour)) {
		t.Fatal("cooldown elapsed: one half-open probe must pass")
	}
	if b.allow(&p, now.Add(2*time.Hour)) {
		t.Fatal("second concurrent half-open probe must be rejected")
	}
	b.failure(&p, now.Add(2*time.Hour))
	if b.current() != breakerOpen {
		t.Fatal("failed probe must re-open")
	}
	if !b.allow(&p, now.Add(5*time.Hour)) {
		t.Fatal("second cooldown elapsed: probe must pass")
	}
	b.success()
	if b.current() != breakerClosed {
		t.Fatal("successful probe must close")
	}
	if !b.allow(&p, now.Add(5*time.Hour)) {
		t.Fatal("closed-again breaker must allow")
	}

	// FailThreshold 0 disables the breaker entirely.
	off := CallPolicy{}
	var b2 breaker
	for i := 0; i < 10; i++ {
		b2.failure(&off, now)
	}
	if !b2.allow(&off, now) {
		t.Fatal("disabled breaker must always allow")
	}
}

// replyLossOnce executes Update but reports the first reply as lost — the
// exact failure idempotency tokens exist for.
type replyLossOnce struct {
	Transport
	lost bool
}

func (w *replyLossOnce) Update(part int, req UpdateRequest, reply *UpdateReply) error {
	err := w.Transport.Update(part, req, reply)
	if err == nil && !w.lost {
		w.lost = true
		return lostReply(part)
	}
	return err
}

// TestUpdateTokenDedup: a retried Update whose first attempt executed (reply
// lost) must not re-apply the batch — the server returns the recorded reply
// under the idempotency token RetryTransport stamped.
func TestUpdateTokenDedup(t *testing.T) {
	g := churnTestGraph(60)
	a, err := (partition.HashPartitioner{}).Partition(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv := FromGraph(g, a)[0]
	head0 := srv.store.Head()

	w := &replyLossOnce{Transport: NewLocalTransport([]*Server{srv}, 0, 0)}
	rt := NewRetryTransport(w, 1, CallPolicy{Attempts: 3}, 9)
	var v0, v1 graph.ID = 0, 1
	var rep UpdateReply
	err = rt.Update(0, UpdateRequest{Add: []RawEdge{{Src: v0, Dst: v1, Type: 1, Weight: 1}}}, &rep)
	if err != nil {
		t.Fatalf("update through reply loss: %v", err)
	}
	if rep.Added != 1 {
		t.Fatalf("added = %d, want 1", rep.Added)
	}
	if head := srv.store.Head(); head != head0+1 {
		t.Fatalf("head advanced to %d (from %d): the retried batch double-applied", head, head0)
	}

	// Direct double-submit with one token: second call is a pure replay.
	var r1, r2 UpdateReply
	req := UpdateRequest{Add: []RawEdge{{Src: v0, Dst: v1, Type: 1, Weight: 2}}, Token: 0xFEED}
	if err := srv.ServeUpdate(req, &r1); err != nil {
		t.Fatal(err)
	}
	if err := srv.ServeUpdate(req, &r2); err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatalf("replayed reply differs: %+v vs %+v", r1, r2)
	}
	if head := srv.store.Head(); head != head0+2 {
		t.Fatalf("head = %d, want %d: tokened replay re-applied", head, head0+2)
	}

	// Dedup disabled: the same token applies twice.
	srv.SetUpdateDedup(0)
	if err := srv.ServeUpdate(req, &r1); err != nil {
		t.Fatal(err)
	}
	if err := srv.ServeUpdate(req, &r2); err != nil {
		t.Fatal(err)
	}
	if head := srv.store.Head(); head != head0+4 {
		t.Fatalf("head = %d, want %d with dedup disabled", head, head0+4)
	}
}

// TestLeaseReleaseTokenDedup: a replayed Lease must not leak a second
// lease refcount, and a replayed Release must not drop someone else's.
func TestLeaseReleaseTokenDedup(t *testing.T) {
	g := churnTestGraph(60)
	a, err := (partition.HashPartitioner{}).Partition(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv := FromGraph(g, a)[0]

	var l1, l2 LeaseReply
	lr := LeaseRequest{Token: 0xBEEF}
	if err := srv.ServeLease(lr, &l1); err != nil {
		t.Fatal(err)
	}
	if err := srv.ServeLease(lr, &l2); err != nil {
		t.Fatal(err)
	}
	if l1.Epoch != l2.Epoch || l1.Head != l2.Head || l1.AttrHead != l2.AttrHead {
		t.Fatalf("replayed lease reply differs: %+v vs %+v", l1, l2)
	}

	// One release (replayed) must balance the one effective lease.
	rr := ReleaseRequest{Epoch: l1.Epoch, Token: 0xCAFE}
	if err := srv.ServeRelease(rr, &ReleaseReply{}); err != nil {
		t.Fatal(err)
	}
	if err := srv.ServeRelease(rr, &ReleaseReply{}); err != nil {
		t.Fatal(err)
	}
}

// TestTokenNoncesUniqueAcrossClients: two RetryTransports constructed with
// the SAME seed (the common case — every worker passes the same fixed seed)
// must mint disjoint idempotency-token streams. If they shared a nonce,
// workers sharing shard servers would alias each other's entries in the
// server dedup ring: worker B's first Lease would return worker A's recorded
// reply without taking a lease, and a colliding Update would be silently
// dropped.
func TestTokenNoncesUniqueAcrossClients(t *testing.T) {
	g := churnTestGraph(40)
	a, err := (partition.HashPartitioner{}).Partition(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	local := NewLocalTransport(FromGraph(g, a), 0, 0)
	ta := NewRetryTransport(local, 1, CallPolicy{}, 1)
	tb := NewRetryTransport(local, 1, CallPolicy{}, 1)

	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		for _, tr := range []*RetryTransport{ta, tb} {
			tok := tr.nextToken()
			if tok == 0 {
				t.Fatal("token 0 minted (reserved for legacy callers)")
			}
			if seen[tok] {
				t.Fatalf("token %#x minted twice across clients with identical seeds", tok)
			}
			seen[tok] = true
		}
	}
}

// releaseSpy counts Release RPCs per shard.
type releaseSpy struct {
	Transport
	mu       sync.Mutex
	releases map[int]int
}

func (s *releaseSpy) Release(part int, req ReleaseRequest, reply *ReleaseReply) error {
	s.mu.Lock()
	s.releases[part]++
	s.mu.Unlock()
	return s.Transport.Release(part, req, reply)
}

func (s *releaseSpy) count(part int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.releases[part]
}

// TestDegradedPinReleaseSkipsUnleasedShard: a degraded Pin records a down
// shard's last observed head WITHOUT taking a lease; releasing that pin must
// not send Release for the unleased shard — the epoch it recorded is the one
// an earlier live pin still holds a lease on, and a spurious Release would
// decrement that pin's refcount and let the server evict an epoch in use.
func TestDegradedPinReleaseSkipsUnleasedShard(t *testing.T) {
	g := churnTestGraph(80)
	a, err := (partition.HashPartitioner{}).Partition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	servers := FromGraph(g, a)
	spy := &releaseSpy{Transport: NewLocalTransport(servers, 0, 0), releases: make(map[int]int)}
	ft := NewFaultTransport(spy, 2, FaultConfig{})
	rt := NewRetryTransport(ft, 2, CallPolicy{Attempts: 2}, 3)
	c := NewClient(a, rt, storage.NoCache{})
	c.Degrade = true

	p1, err := c.Pin() // live: leases both shards
	if err != nil {
		t.Fatal(err)
	}
	ft.KillShard(1)

	// Force staleness so the next Pin re-leases instead of reusing p1.
	advance(&c.pins.heads[0], p1.Epochs[0]+1)
	p2, err := c.Pin() // degraded: leases shard 0, records shard 1 unleased
	if err != nil {
		t.Fatalf("degraded pin failed: %v", err)
	}
	if p2.Epochs[1] != p1.Epochs[1] {
		t.Fatalf("degraded pin recorded epoch %d for the dead shard, want last observed %d",
			p2.Epochs[1], p1.Epochs[1])
	}

	// Supersede p2 so dropping its last reference releases its leases.
	advance(&c.pins.heads[0], p2.Epochs[0]+1)
	if _, err := c.Pin(); err != nil {
		t.Fatal(err)
	}

	r0, r1 := spy.count(0), spy.count(1)
	c.Unpin(p2)
	if got := spy.count(1); got != r1 {
		t.Fatalf("degraded pin sent %d Release(s) to the dead shard for a lease it never took", got-r1)
	}
	if got := spy.count(0); got != r0+1 {
		t.Fatalf("degraded pin released %d leases on the live shard, want 1", got-r0)
	}
}
