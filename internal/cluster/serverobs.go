package cluster

import (
	"fmt"
	"time"

	"repro/internal/obs"
)

// Serve-side observability: every RPC handler records its wall-clock latency
// into an always-on obs.Histogram, compactions (threshold-triggered and
// RPC-triggered alike) record their fold time, and ServeUpdate counts
// applied operations. RegisterObs names the instruments plus snapshot-store
// gauges (head/floor/base epochs, overlay-ring occupancy, lease counts) in a
// registry; recording happens whether or not a registry ever reads them, at
// the cost of one clock read and a few atomic adds per RPC — invisible next
// to the handler's own work, and measured by the benchmarks that must stay
// within noise with instrumentation on.

// serverMetrics is one Server's always-on instrument set.
type serverMetrics struct {
	neighbors       obs.Histogram
	attrs           obs.Histogram
	sampleNeighbors obs.Histogram
	sampleEdges     obs.Histogram
	negPool         obs.Histogram
	stats           obs.Histogram
	lease           obs.Histogram
	release         obs.Histogram
	update          obs.Histogram
	compactRPC      obs.Histogram
	// compaction times the store fold itself (both triggers), separate from
	// the Compact RPC envelope so threshold-triggered folds are visible too.
	compaction     obs.Histogram
	updatesApplied obs.Counter // edge/attr operations applied via ServeUpdate
	updateBatches  obs.Counter // update batches that advanced the epoch
}

// obsSince records the elapsed time since start; used as
// `defer obsSince(&h, time.Now())` at handler entry.
func obsSince(h *obs.Histogram, start time.Time) {
	h.Observe(int64(time.Since(start)))
}

// RegisterObs names the server's instruments in r under
// cluster.server.<ID>.*: per-RPC serve latency histograms
// (rpc.<Method>.latency), compaction timings, applied-update counters, and
// snapshot-store gauges (epoch head/floor/base, overlay-ring occupancy and
// entry counts, lease totals, completed compactions). Gauges read the store
// under its own lock at snapshot time; nothing here touches the RPC path.
func (s *Server) RegisterObs(r *obs.Registry) {
	pre := fmt.Sprintf("cluster.server.%d.", s.ID)
	for _, h := range []struct {
		name string
		hist *obs.Histogram
	}{
		{"Neighbors", &s.met.neighbors},
		{"Attrs", &s.met.attrs},
		{"SampleNeighbors", &s.met.sampleNeighbors},
		{"SampleEdges", &s.met.sampleEdges},
		{"NegativePool", &s.met.negPool},
		{"Stats", &s.met.stats},
		{"Lease", &s.met.lease},
		{"Release", &s.met.release},
		{"Update", &s.met.update},
		{"Compact", &s.met.compactRPC},
	} {
		r.RegisterHistogram(pre+"rpc."+h.name+".latency", h.hist)
	}
	r.RegisterHistogram(pre+"compaction.latency", &s.met.compaction)
	r.RegisterCounter(pre+"updates.applied_ops", &s.met.updatesApplied)
	r.RegisterCounter(pre+"updates.batches", &s.met.updateBatches)
	st := s.store
	r.Gauge(pre+"epoch.head", func() int64 { return int64(st.Head()) })
	r.Gauge(pre+"epoch.floor", func() int64 { return int64(st.Floor()) })
	r.Gauge(pre+"epoch.base", func() int64 { return int64(st.BaseEpoch()) })
	r.Gauge(pre+"ring.epochs", func() int64 { return int64(st.Overlay().Epochs) })
	r.Gauge(pre+"ring.adj_entries", func() int64 { return int64(st.Overlay().AdjEntries) })
	r.Gauge(pre+"ring.attr_entries", func() int64 { return int64(st.Overlay().AttrEntries) })
	r.Gauge(pre+"leases.total", func() int64 { t, _ := st.LeaseStats(); return t })
	r.Gauge(pre+"leases.epochs", func() int64 { _, e := st.LeaseStats(); return int64(e) })
	r.Gauge(pre+"compactions", st.Compactions)
}
