package cluster

import (
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/rpc"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sampling"
)

// This file is the fault-tolerance policy layer of the transport seam:
// RetryTransport wraps any Transport with per-call deadlines, bounded
// exponential backoff with deterministic jitter, a retry budget, and a
// per-shard three-state breaker (closed/open/half-open). Re-issuing a read
// is safe because every sampling draw is slot- or seed-pure (the reply to a
// retried request is bit-identical to the lost one at the same pinned
// epoch), and Update/Lease/Release are made retry-safe by idempotency
// tokens the server deduplicates. See the package comment for the full
// failure model.

// unreachableMarker survives net/rpc's error flattening, mirroring the
// version package's marker discipline, so transient-failure classification
// works on both wrapped errors and reconstituted string errors.
const unreachableMarker = "shard unreachable"

// ErrUnreachable marks a transport-level delivery failure: the request (or
// its reply) never made it to/from a live server. Calls failing with it are
// safe to retry; the request may or may not have executed, which is why
// non-idempotent RPCs carry dedup tokens.
var ErrUnreachable = errors.New("cluster: " + unreachableMarker)

// errBreakerOpen is the fast-fail result while a shard's breaker is open.
var errBreakerOpen = errors.New("cluster: breaker open: " + unreachableMarker)

// ShardDownError is returned by RetryTransport once a call's retry budget is
// exhausted (or immediately, while the shard's breaker is open). It carries
// the shard so degradation layers can count and scope stale serving, and it
// reports Transient() so pipeline layers above (which cannot import this
// package's helpers) can classify it through an interface assertion.
type ShardDownError struct {
	Part int
	Err  error
}

func (e *ShardDownError) Error() string {
	return fmt.Sprintf("cluster: shard %d down (%s): %v", e.Part, unreachableMarker, e.Err)
}

// Unwrap exposes the final attempt's error.
func (e *ShardDownError) Unwrap() error { return e.Err }

// Transient reports that the failure is a delivery failure, not an
// application error: waiting and retrying (or degrading) is legal.
func (e *ShardDownError) Transient() bool { return true }

// IsShardDown reports whether err is a retry-budget-exhausted (or
// breaker-fast-failed) shard failure.
func IsShardDown(err error) bool {
	var sde *ShardDownError
	return errors.As(err, &sde)
}

// IsTransient reports whether err is a transport-level delivery failure —
// retrying the call is legal and may succeed. Application errors from a
// live server (unknown vertex, evicted epoch) are NOT transient: the server
// answered, so retrying verbatim would return the same error.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrUnreachable) || errors.Is(err, rpc.ErrShutdown) ||
		errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	var te interface{ Transient() bool }
	if errors.As(err, &te) {
		return te.Transient()
	}
	// Flattened (stringified) forms: rpc.ServerError and friends.
	s := err.Error()
	return strings.Contains(s, unreachableMarker) ||
		strings.Contains(s, rpc.ErrShutdown.Error()) ||
		strings.Contains(s, "connection refused") ||
		strings.Contains(s, "connection reset")
}

// CallPolicy tunes RetryTransport: per-attempt deadline, retry budget,
// backoff shape, and breaker thresholds.
type CallPolicy struct {
	// Timeout bounds each attempt; 0 disables the deadline.
	Timeout time.Duration
	// Attempts is the total attempts per call (minimum 1).
	Attempts int
	// Backoff is the base delay before the second attempt; successive
	// attempts double it (with jitter) up to MaxBackoff. 0 retries
	// immediately.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// FailThreshold is how many consecutive transport failures open a
	// shard's breaker (0 disables the breaker).
	FailThreshold int
	// Cooldown is how long an open breaker waits before letting one
	// half-open probe through.
	Cooldown time.Duration
}

// DefaultCallPolicy returns production-shaped defaults: 5s deadlines, 4
// attempts with 10ms..1s jittered backoff, breaker at 3 consecutive
// failures with a 500ms cooldown.
func DefaultCallPolicy() CallPolicy {
	return CallPolicy{
		Timeout:       5 * time.Second,
		Attempts:      4,
		Backoff:       10 * time.Millisecond,
		MaxBackoff:    time.Second,
		FailThreshold: 3,
		Cooldown:      500 * time.Millisecond,
	}
}

// breaker states.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is one shard's three-state health tracker. Closed passes calls
// through; FailThreshold consecutive transport failures open it; after
// Cooldown a single half-open probe is admitted — success closes the
// breaker, failure re-opens it for another cooldown.
type breaker struct {
	mu       sync.Mutex
	state    int
	fails    int
	openedAt time.Time
	probing  bool
}

// allow reports whether a call may proceed now.
func (b *breaker) allow(p *CallPolicy, now time.Time) bool {
	if p.FailThreshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Sub(b.openedAt) < p.Cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

func (b *breaker) success() {
	b.mu.Lock()
	b.state = breakerClosed
	b.fails = 0
	b.probing = false
	b.mu.Unlock()
}

func (b *breaker) failure(p *CallPolicy, now time.Time) {
	if p.FailThreshold <= 0 {
		return
	}
	b.mu.Lock()
	b.fails++
	b.probing = false
	if b.state == breakerHalfOpen || b.fails >= p.FailThreshold {
		b.state = breakerOpen
		b.openedAt = now
	}
	b.mu.Unlock()
}

func (b *breaker) current() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// ShardHealth is a shareable per-shard breaker view. Every RetryTransport
// owns one, but several transports may share a single instance
// (NewRetryTransportShared): a serving tier running separate lookup and
// update-push transports against the same shard fleet wants one transport's
// discovery of a dead shard to fast-fail the others immediately, instead of
// each client burning its own probe budget against the corpse. Breaker
// transitions are applied by whichever sharing transport observes them,
// under each breaker's own lock; policies are per-transport, so sharing
// transports should use compatible FailThreshold/Cooldown settings.
type ShardHealth struct {
	breakers []breaker
}

// NewShardHealth creates a health view over parts shards, all closed.
func NewShardHealth(parts int) *ShardHealth {
	if parts < 1 {
		parts = 1
	}
	return &ShardHealth{breakers: make([]breaker, parts)}
}

// Parts reports how many shards the view tracks.
func (h *ShardHealth) Parts() int { return len(h.breakers) }

// Open reports whether part's breaker is currently open (fast-failing).
func (h *ShardHealth) Open(part int) bool {
	if part < 0 || part >= len(h.breakers) {
		return false
	}
	return h.breakers[part].current() == breakerOpen
}

// breakerFor returns part's breaker, clamping out-of-range parts.
func (h *ShardHealth) breakerFor(part int) *breaker {
	return &h.breakers[min(max(part, 0), len(h.breakers)-1)]
}

// RetryTransport applies a CallPolicy to every RPC of an inner Transport.
// Reads are idempotent by construction (slot-/seed-pure draws at pinned
// epochs); Update, Lease and Release are stamped with idempotency tokens the
// server deduplicates, so "the request executed but the reply was lost"
// retries cannot double-apply a mutation or leak a lease. Per-shard breakers
// convert a persistently failing shard into immediate ShardDownError
// fast-fails, which the client's degradation layer (Client.Degrade) turns
// into cache-served draws.
type RetryTransport struct {
	Inner  Transport
	Policy CallPolicy

	health *ShardHealth

	mu  sync.Mutex
	rng sampling.Rng // deterministic backoff jitter

	tokens atomic.Uint64
	nonce  uint64

	retries   atomic.Int64
	fastFails atomic.Int64
}

// NewRetryTransport wraps inner (serving parts shards) with policy. Seed
// drives only the backoff-jitter stream (deterministic so chaos tests are
// reproducible — jitter affects timing, never data). The idempotency-token
// nonce is deliberately NOT derived from seed: it is drawn from crypto/rand
// per transport, so multiple worker processes sharing the same shard servers
// (which all tend to pass the same fixed seed) can never mint colliding
// token sequences and alias each other's entries in the server dedup ring.
func NewRetryTransport(inner Transport, parts int, policy CallPolicy, seed uint64) *RetryTransport {
	return NewRetryTransportShared(inner, policy, seed, NewShardHealth(parts))
}

// NewRetryTransportShared is NewRetryTransport with a caller-supplied
// ShardHealth, so several transports against the same shard fleet share one
// breaker view: a breaker any of them opens fast-fails all of them, and a
// successful half-open probe by one closes it for all. Retry/fast-fail
// counters and token nonces stay per-transport.
func NewRetryTransportShared(inner Transport, policy CallPolicy, seed uint64, health *ShardHealth) *RetryTransport {
	if policy.Attempts < 1 {
		policy.Attempts = 1
	}
	if policy.MaxBackoff < policy.Backoff {
		policy.MaxBackoff = policy.Backoff
	}
	if health == nil {
		health = NewShardHealth(1)
	}
	t := &RetryTransport{
		Inner:  inner,
		Policy: policy,
		health: health,
		rng:    *sampling.NewRng(seed ^ 0x9E3779B97F4A7C15),
		nonce:  randomNonce(seed),
	}
	return t
}

// Health returns the transport's shard-health view (shareable via
// NewRetryTransportShared).
func (t *RetryTransport) Health() *ShardHealth { return t.health }

// randomNonce draws a process-unique 64-bit token nonce, falling back to a
// seed-mixed constant only if the system entropy source is unavailable.
func randomNonce(seed uint64) uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		return seed*0x2545F4914F6CDD1D + 0x9E3779B97F4A7C15
	}
	return binary.LittleEndian.Uint64(b[:])
}

// Retries reports how many retry attempts (beyond first attempts) the
// transport has issued.
func (t *RetryTransport) Retries() int64 { return t.retries.Load() }

// FastFails reports how many calls were rejected immediately by an open
// breaker.
func (t *RetryTransport) FastFails() int64 { return t.fastFails.Load() }

// BreakerOpen reports whether part's breaker is currently open (tests,
// diagnostics).
func (t *RetryTransport) BreakerOpen(part int) bool {
	return t.health.Open(part)
}

// nextToken mints a client-unique idempotency token (never 0). The full
// 64-bit counter is XOR-mixed with the random nonce, so tokens cannot wrap
// and repeat within a process lifetime (a reused token still sitting in the
// server dedup ring would return a stale recorded reply), and two clients
// collide only if their random nonces differ exactly by the XOR of two small
// counters — vanishingly unlikely at a 64-bit nonce.
func (t *RetryTransport) nextToken() uint64 {
	tok := t.nonce ^ t.tokens.Add(1)
	if tok == 0 {
		tok = 1
	}
	return tok
}

// sleepBackoff waits the jittered exponential backoff before retry attempt
// `attempt` (0-based count of completed attempts).
func (t *RetryTransport) sleepBackoff(attempt int) {
	b := t.Policy.Backoff
	if b <= 0 {
		return
	}
	d := b << uint(min(attempt, 20))
	if d > t.Policy.MaxBackoff || d < b {
		d = t.Policy.MaxBackoff
	}
	t.mu.Lock()
	j := t.rng.Float64()
	t.mu.Unlock()
	time.Sleep(time.Duration(float64(d) * (0.5 + 0.5*j)))
}

// Kicker is implemented by transports that can proactively sever a shard's
// underlying connection (RPCTransport does; wrapping transports forward it).
// RetryTransport kicks a shard on deadline expiry: without it, a silently
// partitioned connection (no FIN/RST) would keep every retry queued on the
// same hung conn and leak one goroutine per abandoned attempt.
type Kicker interface {
	Kick(part int)
}

// withDeadline runs call against part, bounding it by the policy's
// per-attempt timeout. The attempt runs on its own goroutine; an abandoned
// (timed-out) attempt keeps writing only to its own reply value, never the
// caller's. On expiry the shard's connection is severed (Kick) so the
// abandoned attempt unblocks with a connection error — its goroutine exits
// instead of leaking — and the next attempt redials afresh instead of
// re-queueing on a dead conn.
func (t *RetryTransport) withDeadline(part int, call func() error) error {
	d := t.Policy.Timeout
	if d <= 0 {
		return call()
	}
	done := make(chan error, 1)
	go func() { done <- call() }()
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case err := <-done:
		return err
	case <-timer.C:
		if k, ok := t.Inner.(Kicker); ok {
			k.Kick(part)
		}
		return fmt.Errorf("cluster: call exceeded %v deadline: %w", d, ErrUnreachable)
	}
}

// doCall is the shared retry loop. Each attempt gets a fresh reply value; the
// caller's reply is written exactly once, on the caller goroutine, after a
// successful attempt — so a deadline-abandoned attempt can never race the
// caller.
func doCall[Req any, Rep any](t *RetryTransport, part int, req Req, reply *Rep, call func(int, Req, *Rep) error) error {
	br := t.health.breakerFor(part)
	var last error
	for attempt := 0; ; attempt++ {
		if !br.allow(&t.Policy, time.Now()) {
			t.fastFails.Add(1)
			if last == nil {
				last = errBreakerOpen
			}
			return &ShardDownError{Part: part, Err: last}
		}
		var r Rep
		err := t.withDeadline(part, func() error { return call(part, req, &r) })
		if err == nil {
			br.success()
			*reply = r
			return nil
		}
		if !IsTransient(err) {
			// The server answered with an application error (unknown vertex,
			// evicted epoch): the shard is healthy and a verbatim retry would
			// fail identically. Surface it unchanged.
			br.success()
			return err
		}
		br.failure(&t.Policy, time.Now())
		last = err
		if attempt+1 >= t.Policy.Attempts {
			break
		}
		t.retries.Add(1)
		t.sleepBackoff(attempt)
	}
	return &ShardDownError{Part: part, Err: last}
}

// Neighbors implements Transport.
func (t *RetryTransport) Neighbors(part int, req NeighborsRequest, reply *NeighborsReply) error {
	return doCall(t, part, req, reply, t.Inner.Neighbors)
}

// SampleNeighbors implements Transport.
func (t *RetryTransport) SampleNeighbors(part int, req SampleRequest, reply *SampleReply) error {
	return doCall(t, part, req, reply, t.Inner.SampleNeighbors)
}

// SampleEdges implements Transport.
func (t *RetryTransport) SampleEdges(part int, req EdgesRequest, reply *EdgesReply) error {
	return doCall(t, part, req, reply, t.Inner.SampleEdges)
}

// NegativePool implements Transport.
func (t *RetryTransport) NegativePool(part int, req NegPoolRequest, reply *NegPoolReply) error {
	return doCall(t, part, req, reply, t.Inner.NegativePool)
}

// Stats implements Transport.
func (t *RetryTransport) Stats(part int, req StatsRequest, reply *StatsReply) error {
	return doCall(t, part, req, reply, t.Inner.Stats)
}

// Attrs implements Transport.
func (t *RetryTransport) Attrs(part int, req AttrsRequest, reply *AttrsReply) error {
	return doCall(t, part, req, reply, t.Inner.Attrs)
}

// Bootstrap implements Transport.
func (t *RetryTransport) Bootstrap(part int, req BootstrapRequest, reply *BootstrapReply) error {
	return doCall(t, part, req, reply, t.Inner.Bootstrap)
}

// Update implements Transport. The request is stamped with an idempotency
// token before the first attempt, so a retry whose predecessor executed
// (reply lost) returns the server's recorded reply instead of re-applying
// the batch.
func (t *RetryTransport) Update(part int, req UpdateRequest, reply *UpdateReply) error {
	if req.Token == 0 {
		req.Token = t.nextToken()
	}
	return doCall(t, part, req, reply, t.Inner.Update)
}

// Lease implements Transport, with an idempotency token so a retried lease
// whose predecessor landed does not pin a second lease server-side.
func (t *RetryTransport) Lease(part int, req LeaseRequest, reply *LeaseReply) error {
	if req.Token == 0 {
		req.Token = t.nextToken()
	}
	return doCall(t, part, req, reply, t.Inner.Lease)
}

// Release implements Transport, token-stamped for the same reason: leases
// are refcounted, so a doubled release could drop another pin's lease.
func (t *RetryTransport) Release(part int, req ReleaseRequest, reply *ReleaseReply) error {
	if req.Token == 0 {
		req.Token = t.nextToken()
	}
	return doCall(t, part, req, reply, t.Inner.Release)
}

// Compact implements Transport. Compaction is idempotent (folding an
// already-folded floor is a no-op), so no token is needed.
func (t *RetryTransport) Compact(part int, req CompactRequest, reply *CompactReply) error {
	return doCall(t, part, req, reply, t.Inner.Compact)
}

// Close implements Transport, closing the inner transport (no retries).
func (t *RetryTransport) Close() error { return t.Inner.Close() }
