package cluster

import (
	"sort"
	"sync"

	"repro/internal/partition"
)

// UpdateStream is the cluster implementation of core.UpdateFeed: a
// concurrent queue of per-server update batches, drained between training
// batches and delivered through the transport's Update RPC. Producers
// (ingest goroutines, connectors, tests) Push batches at any rate; the
// training loop applies them at its own cadence. Each batch applies
// atomically on its shard and advances that shard's epoch, which the
// client's pin manager observes on the next sampling reply — so training
// batches scheduled after an applied update pin the new snapshot
// automatically.
type UpdateStream struct {
	T Transport

	// Fanout bounds how many shards one Apply tick pushes to concurrently:
	// 0 (default) delivers to every touched shard at once, 1 restores
	// sequential delivery. Batches bound for the SAME shard always deliver
	// in FIFO order regardless — only cross-shard deliveries (which were
	// never ordered: different servers, independent epochs) overlap.
	Fanout int

	mu      sync.Mutex
	queue   []streamBatch
	applied int
}

type streamBatch struct {
	part int
	req  UpdateRequest
}

// NewUpdateStream creates a feed delivering through t.
func NewUpdateStream(t Transport) *UpdateStream {
	return &UpdateStream{T: t}
}

// Push enqueues one update batch for the server owning part. Safe for
// concurrent use.
func (s *UpdateStream) Push(part int, req UpdateRequest) {
	s.mu.Lock()
	s.queue = append(s.queue, streamBatch{part: part, req: req})
	s.mu.Unlock()
}

// PushEdges groups raw edges by owning partition (edges live with their
// source) and enqueues one batch per touched server: adds, removes and
// attribute rewrites keep the all-or-nothing per-server contract.
func (s *UpdateStream) PushEdges(assign *partition.Assignment, add, remove []RawEdge, attrs []AttrUpdate) {
	reqs := groupByPartition(assign.Part, add, remove, attrs)
	s.mu.Lock()
	for p, r := range reqs {
		s.queue = append(s.queue, streamBatch{part: p, req: *r})
	}
	s.mu.Unlock()
}

// Pending reports how many update batches are queued.
func (s *UpdateStream) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// Applied reports how many update batches have been delivered.
func (s *UpdateStream) Applied() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applied
}

// Apply implements core.UpdateFeed: deliver up to max queued batches to
// their owning servers. Batches for distinct shards are pushed in one
// concurrent scatter round (bounded by Fanout); batches for one shard keep
// their queue order. On a delivery error the failed batch — and everything
// queued behind it for the same shard — returns to the front of the queue
// in original order, the successes still count, and the lowest-part
// failure surfaces (deterministic regardless of delivery interleaving).
// Apply is single-consumer (the training loop); Push stays safe from any
// goroutine.
func (s *UpdateStream) Apply(max int) (int, error) {
	if max <= 0 {
		return 0, nil
	}
	s.mu.Lock()
	take := len(s.queue)
	if take > max {
		take = max
	}
	taken := make([]streamBatch, take)
	copy(taken, s.queue)
	s.queue = s.queue[take:]
	s.mu.Unlock()
	if take == 0 {
		return 0, nil
	}

	// Group by owning shard, preserving per-shard FIFO order.
	byPart := make(map[int][]int) // part -> indices into taken, ascending
	for i, b := range taken {
		byPart[b.part] = append(byPart[b.part], i)
	}
	parts := sortedParts(byPart)
	done := make([]int, len(parts)) // delivered prefix length per part
	errs := scatterGather(len(parts), s.Fanout, func(i int) error {
		for _, k := range byPart[parts[i]] {
			var reply UpdateReply
			if err := s.T.Update(taken[k].part, taken[k].req, &reply); err != nil {
				return err
			}
			done[i]++
		}
		return nil
	})

	delivered := 0
	var undelivered []int
	for i := range parts {
		delivered += done[i]
		undelivered = append(undelivered, byPart[parts[i]][done[i]:]...)
	}
	sort.Ints(undelivered) // restore original queue order across shards
	s.mu.Lock()
	if len(undelivered) > 0 {
		redo := make([]streamBatch, 0, len(undelivered)+len(s.queue))
		for _, k := range undelivered {
			redo = append(redo, taken[k])
		}
		s.queue = append(redo, s.queue...)
	}
	s.applied += delivered
	s.mu.Unlock()
	return delivered, firstError(errs)
}
