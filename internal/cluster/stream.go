package cluster

import (
	"sync"

	"repro/internal/partition"
)

// UpdateStream is the cluster implementation of core.UpdateFeed: a
// concurrent queue of per-server update batches, drained between training
// batches and delivered through the transport's Update RPC. Producers
// (ingest goroutines, connectors, tests) Push batches at any rate; the
// training loop applies them at its own cadence. Each batch applies
// atomically on its shard and advances that shard's epoch, which the
// client's pin manager observes on the next sampling reply — so training
// batches scheduled after an applied update pin the new snapshot
// automatically.
type UpdateStream struct {
	T Transport

	mu      sync.Mutex
	queue   []streamBatch
	applied int
}

type streamBatch struct {
	part int
	req  UpdateRequest
}

// NewUpdateStream creates a feed delivering through t.
func NewUpdateStream(t Transport) *UpdateStream {
	return &UpdateStream{T: t}
}

// Push enqueues one update batch for the server owning part. Safe for
// concurrent use.
func (s *UpdateStream) Push(part int, req UpdateRequest) {
	s.mu.Lock()
	s.queue = append(s.queue, streamBatch{part: part, req: req})
	s.mu.Unlock()
}

// PushEdges groups raw edges by owning partition (edges live with their
// source) and enqueues one batch per touched server: adds, removes and
// attribute rewrites keep the all-or-nothing per-server contract.
func (s *UpdateStream) PushEdges(assign *partition.Assignment, add, remove []RawEdge, attrs []AttrUpdate) {
	reqs := groupByPartition(assign.Part, add, remove, attrs)
	s.mu.Lock()
	for p, r := range reqs {
		s.queue = append(s.queue, streamBatch{part: p, req: *r})
	}
	s.mu.Unlock()
}

// Pending reports how many update batches are queued.
func (s *UpdateStream) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// Applied reports how many update batches have been delivered.
func (s *UpdateStream) Applied() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applied
}

// Apply implements core.UpdateFeed: deliver up to max queued batches to
// their owning servers. A delivery error leaves the failed batch at the
// front of the queue and surfaces the error.
func (s *UpdateStream) Apply(max int) (int, error) {
	n := 0
	for n < max {
		s.mu.Lock()
		if len(s.queue) == 0 {
			s.mu.Unlock()
			return n, nil
		}
		b := s.queue[0]
		s.mu.Unlock()

		var reply UpdateReply
		if err := s.T.Update(b.part, b.req, &reply); err != nil {
			return n, err
		}

		s.mu.Lock()
		// Producers only append; the head we delivered is still index 0.
		s.queue = s.queue[1:]
		s.applied++
		s.mu.Unlock()
		n++
	}
	return n, nil
}
