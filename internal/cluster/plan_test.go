package cluster

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/plan"
	"repro/internal/storage"
)

// newPlanCluster wires a client over fresh servers for g with a
// caller-chosen shard count and neighbor cache — the plan tests sweep
// both topology and strategy, so unlike newChurnTrainerCache nothing is
// fixed here.
func newPlanCluster(t *testing.T, g *graph.Graph, shards int, cache storage.NeighborCache) *Client {
	t.Helper()
	a, err := (partition.HashPartitioner{}).Partition(g, shards)
	if err != nil {
		t.Fatal(err)
	}
	servers := FromGraph(g, a)
	return NewClient(a, NewLocalTransport(servers, 0, 0), cache)
}

func newPlanTrainer(t *testing.T, g *graph.Graph, seed int64, c *Client) *core.LinkTrainer {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	enc := churnEncoder(g.NumVertices(), []int{3, 2}, rng)
	cfg := core.TrainerConfig{EdgeType: 0, HopNums: []int{3, 2}, Batch: 16, NegK: 2, LR: 0.05}
	trn, err := core.NewLinkTrainerOver(NewEnv(c, 1), c, enc, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	return trn
}

// TestForcedPlanMatrixBitIdentical is the slot-purity acceptance test: a
// fixed-seed depth-4 pipelined training run must produce bit-identical
// losses under every forced strategy AND under a mid-run plan switch,
// on both a 1-shard and a 2-shard cluster. A strategy may only change
// where a draw executes, never its value. Run with -race: plan swaps
// land concurrently with pipeline prefetch workers.
func TestForcedPlanMatrixBitIdentical(t *testing.T) {
	const steps = 24
	g := churnTestGraph(200)

	run := func(shards int, p *plan.Plan, mid *plan.Plan) []float64 {
		t.Helper()
		c := newPlanCluster(t, g, shards, storage.NewLRUNeighborCache(256))
		c.SetPlan(p)
		trn := newPlanTrainer(t, g, 42, c)
		pl := core.NewPipeline(trn, core.PipelineConfig{Depth: 4, Workers: 3})
		trn.SetSource(pl)
		defer pl.Close()
		losses := make([]float64, 0, steps)
		for i := 0; i < steps; i++ {
			if i == steps/2 && mid != nil {
				c.SetPlan(mid)
			}
			mb, err := pl.Next()
			if err != nil {
				t.Fatal(err)
			}
			l, err := trn.Step(mb)
			if err != nil {
				t.Fatal(err)
			}
			pl.Recycle(mb)
			losses = append(losses, l)
		}
		return losses
	}

	// Loss curves are compared within a topology only: TRAVERSE splits
	// (and therefore negative pools) legitimately differ across shard
	// counts.
	for _, shards := range []int{1, 2} {
		want := run(shards, nil, nil)
		for _, s := range []plan.Strategy{plan.Hybrid, plan.ClientDraws, plan.ServerDraws} {
			got := run(shards, plan.Uniform(s), nil)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("shards=%d plan=%v step %d: loss %g != baseline %g", shards, s, i, got[i], want[i])
				}
			}
		}
		// Mid-run switch across the two extreme strategies: the plan swap
		// must be invisible in the loss stream.
		got := run(shards, plan.Uniform(plan.ClientDraws), plan.Uniform(plan.ServerDraws))
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shards=%d mid-run switch step %d: loss %g != baseline %g", shards, i, got[i], want[i])
			}
		}
	}
}

// TestPlanAdmissionGate: a lane the plan marks non-admitting must leave a
// replacing cache untouched, and flipping the plan back must let it fill
// — admission control is live, per-lane, and reversible.
func TestPlanAdmissionGate(t *testing.T) {
	g := churnTestGraph(120)
	lru := storage.NewLRUNeighborCache(128)
	c := newPlanCluster(t, g, 2, lru)

	vs := make([]graph.ID, 16)
	for i := range vs {
		vs[i] = graph.ID(i)
	}
	dst := make([]graph.ID, len(vs)*2)

	c.SetPlan(plan.Uniform(plan.ServerDraws))
	if err := c.SampleBatch(dst, vs, 0, 2, false, 7); err != nil {
		t.Fatal(err)
	}
	if n := lru.CachedVertices(); n != 0 {
		t.Fatalf("ServerDraws lane admitted %d entries into a replacing cache", n)
	}

	c.SetPlan(nil) // default hybrid: admission on
	if err := c.SampleBatch(dst, vs, 0, 2, false, 7); err != nil {
		t.Fatal(err)
	}
	if n := lru.CachedVertices(); n == 0 {
		t.Fatal("hybrid lane admitted nothing after the gate was lifted")
	}
}

// TestClientDrawsDegradesWithoutAdmission: forcing ClientDraws on a client
// whose cache cannot retain anything must resolve to Hybrid — fetching
// full lists nothing keeps would be strictly worse than server draws.
func TestClientDrawsDegradesWithoutAdmission(t *testing.T) {
	g := churnTestGraph(60)
	c := newPlanCluster(t, g, 2, storage.NoCache{})
	c.SetPlan(plan.Uniform(plan.ClientDraws))
	if lp := c.lanePlan(0, 1); lp.Strategy != plan.Hybrid {
		t.Fatalf("ClientDraws over NoCache resolved to %v, want hybrid", lp.Strategy)
	}
	lru := newPlanCluster(t, g, 2, storage.NewLRUNeighborCache(8))
	lru.SetPlan(plan.Uniform(plan.ClientDraws))
	if lp := lru.lanePlan(0, 1); lp.Strategy != plan.ClientDraws {
		t.Fatalf("ClientDraws over an admitting cache resolved to %v", lp.Strategy)
	}
}

// skewTestGraph builds the two-lane workload graph: type 0 ("hot") edges
// among a small hub set that every round resamples, type 1 ("cold") edges
// among a long tail each touched once.
func skewTestGraph(nHot, nCold int) *graph.Graph {
	s := graph.MustSchema([]string{"v"}, []string{"hot", "cold"})
	b := graph.NewBuilder(s, true)
	n := nHot + nCold
	for i := 0; i < n; i++ {
		b.AddVertex(0, []float64{float64(i), 1})
	}
	for v := 0; v < nHot; v++ {
		for e := 1; e <= 4; e++ {
			b.AddEdge(graph.ID(v), graph.ID((v+e)%nHot), 0, 1)
		}
	}
	for v := nHot; v < n; v++ {
		for e := 1; e <= 4; e++ {
			b.AddEdge(graph.ID(v), graph.ID(nHot+(v-nHot+e)%nCold), 1, 1)
		}
	}
	return b.Finalize()
}

// TestAdaptivePlanBeatsFixedUnderSkew is the perf acceptance test: on a
// workload with one hub-heavy reused lane and one churn-only lane sharing
// a too-small LRU, the adaptive planner must (a) settle ClientDraws for
// the hot lane and ServerDraws for the cold one, and (b) finish with
// strictly fewer RPCs than EVERY fixed uniform strategy — no single
// static choice serves both lanes well, which is the planner's reason to
// exist.
func TestAdaptivePlanBeatsFixedUnderSkew(t *testing.T) {
	const (
		nHot     = 8
		coldPer  = 12 // cold vertices touched per round; > cap-nHot so admissions churn the hot set
		rounds   = 60
		nCold    = coldPer * rounds // never repeats: the cold lane truly has no reuse
		width    = 4 // >= hub degree, so hybrid replies carry admissible full lists
		cacheCap = 16 // hot set fits alone; one cold round's admissions flush it
	)
	g := skewTestGraph(nHot, nCold)

	hotVs := make([]graph.ID, nHot)
	for i := range hotVs {
		hotVs[i] = graph.ID(i)
	}
	hotDst := make([]graph.ID, nHot*width)
	coldVs := make([]graph.ID, coldPer)
	coldDst := make([]graph.ID, coldPer*width)

	// runSkew drives the workload against a fresh cluster and reports its
	// total transport calls. Cold before hot each round, so under a plan
	// that stops cold admissions the hot set is resident at round end.
	runSkew := func(setup func(*Client), perRound func(*Client)) int64 {
		t.Helper()
		c := newPlanCluster(t, g, 2, storage.NewLRUNeighborCache(cacheCap))
		if setup != nil {
			setup(c)
		}
		for r := 0; r < rounds; r++ {
			for i := range coldVs {
				coldVs[i] = graph.ID(nHot + r*coldPer + i)
			}
			if err := c.SampleBatch(coldDst, coldVs, 1, width, false, uint64(r)); err != nil {
				t.Fatal(err)
			}
			if err := c.SampleBatch(hotDst, hotVs, 0, width, false, uint64(r)); err != nil {
				t.Fatal(err)
			}
			if perRound != nil {
				perRound(c)
			}
		}
		local, remote := c.T.(*LocalTransport).Calls()
		return local + remote
	}

	fixed := map[string]int64{}
	for _, s := range []plan.Strategy{plan.Hybrid, plan.ClientDraws, plan.ServerDraws} {
		fixed[s.String()] = runSkew(func(c *Client) { c.SetPlan(plan.Uniform(s)) }, nil)
	}

	var pln *plan.Planner
	adaptive := runSkew(func(c *Client) {
		pln = c.NewPlanner(plan.Config{MinSlots: 1, MinLookups: 1, Hysteresis: 2, ProbeEvery: 3})
	}, func(c *Client) { pln.Step() })

	// The published plan shows Hybrid during a lane's probe window; step a
	// few quiet windows (too quiet to re-judge, so choices hold) until both
	// settled strategies are visible at once.
	var final *plan.Plan
	converged := false
	for i := 0; i < 6 && !converged; i++ {
		final = pln.Step()
		converged = final.For(0, 0).Strategy == plan.ClientDraws &&
			final.For(1, 0).Strategy == plan.ServerDraws
	}
	if !converged {
		t.Fatalf("planner did not settle client(hot)/server(cold): %s", final)
	}
	if lp := final.For(1, 0); lp.Admit {
		t.Fatalf("cold lane still admitting: %+v", lp)
	}
	for name, n := range fixed {
		if adaptive >= n {
			t.Errorf("adaptive plan used %d calls, fixed %s used %d — no win", adaptive, name, n)
		}
	}
	t.Logf("transport calls: adaptive=%d fixed=%v (%s)", adaptive, fixed, pln.Summary())
}
