package cluster

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Transport delivers requests to graph servers. The client treats partition
// "home" (its own worker) as free and any other partition as a remote call;
// implementations decide what a remote call costs.
type Transport interface {
	// Neighbors fetches out-neighbor lists from the server owning part.
	Neighbors(part int, req NeighborsRequest, reply *NeighborsReply) error
	// SampleNeighbors draws fixed-width neighbor samples on the server
	// owning part, returning width IDs per requested slot instead of full
	// adjacency lists.
	SampleNeighbors(part int, req SampleRequest, reply *SampleReply) error
	// SampleEdges draws uniform local edges from the server owning part.
	SampleEdges(part int, req EdgesRequest, reply *EdgesReply) error
	// NegativePool fetches local negative-candidate counts from part.
	NegativePool(part int, req NegPoolRequest, reply *NegPoolReply) error
	// Stats fetches the local size counters of part.
	Stats(part int, req StatsRequest, reply *StatsReply) error
	// Attrs fetches attribute vectors from the server owning part.
	Attrs(part int, req AttrsRequest, reply *AttrsReply) error
	// Bootstrap fetches the cluster bootstrap information (partition
	// assignment, schema) from the server owning part.
	Bootstrap(part int, req BootstrapRequest, reply *BootstrapReply) error
	// Update applies an atomic mutation batch on the server owning part.
	Update(part int, req UpdateRequest, reply *UpdateReply) error
	// Lease pins a snapshot epoch on the server owning part.
	Lease(part int, req LeaseRequest, reply *LeaseReply) error
	// Release drops a snapshot lease on the server owning part.
	Release(part int, req ReleaseRequest, reply *ReleaseReply) error
	// Compact folds old overlays into a fresh base on the server owning
	// part (operator/tooling surface; servers also self-trigger on an
	// overlay-size threshold).
	Compact(part int, req CompactRequest, reply *CompactReply) error
	// Close releases transport resources.
	Close() error
}

// LocalTransport serves requests by direct method calls on in-process
// servers, optionally sleeping RemoteLatency per call to any partition other
// than Home. It also counts calls so benchmarks can report deterministic
// remote-trip numbers independent of wall-clock noise.
type LocalTransport struct {
	Servers []*Server
	// Home is the caller's own partition; calls to it are free.
	Home int
	// RemoteLatency is added to every call to a non-Home partition.
	RemoteLatency time.Duration

	localCalls  int64
	remoteCalls int64
}

// NewLocalTransport wraps in-process servers.
func NewLocalTransport(servers []*Server, home int, remoteLatency time.Duration) *LocalTransport {
	return &LocalTransport{Servers: servers, Home: home, RemoteLatency: remoteLatency}
}

func (t *LocalTransport) pay(part int) error {
	if part < 0 || part >= len(t.Servers) {
		return fmt.Errorf("cluster: no server for partition %d", part)
	}
	if part == t.Home {
		atomic.AddInt64(&t.localCalls, 1)
		return nil
	}
	atomic.AddInt64(&t.remoteCalls, 1)
	if t.RemoteLatency > 0 {
		time.Sleep(t.RemoteLatency)
	}
	return nil
}

// Neighbors implements Transport.
func (t *LocalTransport) Neighbors(part int, req NeighborsRequest, reply *NeighborsReply) error {
	if err := t.pay(part); err != nil {
		return err
	}
	return t.Servers[part].ServeNeighbors(req, reply)
}

// SampleNeighbors implements Transport.
func (t *LocalTransport) SampleNeighbors(part int, req SampleRequest, reply *SampleReply) error {
	if err := t.pay(part); err != nil {
		return err
	}
	return t.Servers[part].ServeSampleNeighbors(req, reply)
}

// SampleEdges implements Transport.
func (t *LocalTransport) SampleEdges(part int, req EdgesRequest, reply *EdgesReply) error {
	if err := t.pay(part); err != nil {
		return err
	}
	return t.Servers[part].ServeSampleEdges(req, reply)
}

// NegativePool implements Transport.
func (t *LocalTransport) NegativePool(part int, req NegPoolRequest, reply *NegPoolReply) error {
	if err := t.pay(part); err != nil {
		return err
	}
	return t.Servers[part].ServeNegativePool(req, reply)
}

// Stats implements Transport.
func (t *LocalTransport) Stats(part int, req StatsRequest, reply *StatsReply) error {
	if err := t.pay(part); err != nil {
		return err
	}
	return t.Servers[part].ServeStats(req, reply)
}

// Attrs implements Transport.
func (t *LocalTransport) Attrs(part int, req AttrsRequest, reply *AttrsReply) error {
	if err := t.pay(part); err != nil {
		return err
	}
	return t.Servers[part].ServeAttrs(req, reply)
}

// Bootstrap implements Transport.
func (t *LocalTransport) Bootstrap(part int, req BootstrapRequest, reply *BootstrapReply) error {
	if err := t.pay(part); err != nil {
		return err
	}
	return t.Servers[part].ServeBootstrap(req, reply)
}

// Update implements Transport.
func (t *LocalTransport) Update(part int, req UpdateRequest, reply *UpdateReply) error {
	if err := t.pay(part); err != nil {
		return err
	}
	return t.Servers[part].ServeUpdate(req, reply)
}

// Lease implements Transport.
func (t *LocalTransport) Lease(part int, req LeaseRequest, reply *LeaseReply) error {
	if err := t.pay(part); err != nil {
		return err
	}
	return t.Servers[part].ServeLease(req, reply)
}

// Release implements Transport.
func (t *LocalTransport) Release(part int, req ReleaseRequest, reply *ReleaseReply) error {
	if err := t.pay(part); err != nil {
		return err
	}
	return t.Servers[part].ServeRelease(req, reply)
}

// Compact implements Transport.
func (t *LocalTransport) Compact(part int, req CompactRequest, reply *CompactReply) error {
	if err := t.pay(part); err != nil {
		return err
	}
	return t.Servers[part].ServeCompact(req, reply)
}

// Close implements Transport.
func (t *LocalTransport) Close() error { return nil }

// Calls reports cumulative local and remote call counts.
func (t *LocalTransport) Calls() (local, remote int64) {
	return atomic.LoadInt64(&t.localCalls), atomic.LoadInt64(&t.remoteCalls)
}

// ResetCalls zeroes the call counters.
func (t *LocalTransport) ResetCalls() {
	atomic.StoreInt64(&t.localCalls, 0)
	atomic.StoreInt64(&t.remoteCalls, 0)
}

// LatencyTransport injects a fixed delay before every call on any inner
// transport, simulating a network round trip to every partition (including
// the caller's own). Benchmarks use it to measure how much graph-service
// latency a prefetching pipeline hides behind compute.
type LatencyTransport struct {
	Inner Transport
	Delay time.Duration

	calls int64
}

// NewLatencyTransport wraps inner with a per-call delay.
func NewLatencyTransport(inner Transport, d time.Duration) *LatencyTransport {
	return &LatencyTransport{Inner: inner, Delay: d}
}

func (t *LatencyTransport) pay() {
	atomic.AddInt64(&t.calls, 1)
	if t.Delay > 0 {
		time.Sleep(t.Delay)
	}
}

// Calls reports how many calls paid the delay.
func (t *LatencyTransport) Calls() int64 { return atomic.LoadInt64(&t.calls) }

// Neighbors implements Transport.
func (t *LatencyTransport) Neighbors(part int, req NeighborsRequest, reply *NeighborsReply) error {
	t.pay()
	return t.Inner.Neighbors(part, req, reply)
}

// SampleNeighbors implements Transport.
func (t *LatencyTransport) SampleNeighbors(part int, req SampleRequest, reply *SampleReply) error {
	t.pay()
	return t.Inner.SampleNeighbors(part, req, reply)
}

// SampleEdges implements Transport.
func (t *LatencyTransport) SampleEdges(part int, req EdgesRequest, reply *EdgesReply) error {
	t.pay()
	return t.Inner.SampleEdges(part, req, reply)
}

// NegativePool implements Transport.
func (t *LatencyTransport) NegativePool(part int, req NegPoolRequest, reply *NegPoolReply) error {
	t.pay()
	return t.Inner.NegativePool(part, req, reply)
}

// Stats implements Transport.
func (t *LatencyTransport) Stats(part int, req StatsRequest, reply *StatsReply) error {
	t.pay()
	return t.Inner.Stats(part, req, reply)
}

// Attrs implements Transport.
func (t *LatencyTransport) Attrs(part int, req AttrsRequest, reply *AttrsReply) error {
	t.pay()
	return t.Inner.Attrs(part, req, reply)
}

// Bootstrap implements Transport.
func (t *LatencyTransport) Bootstrap(part int, req BootstrapRequest, reply *BootstrapReply) error {
	t.pay()
	return t.Inner.Bootstrap(part, req, reply)
}

// Update implements Transport.
func (t *LatencyTransport) Update(part int, req UpdateRequest, reply *UpdateReply) error {
	t.pay()
	return t.Inner.Update(part, req, reply)
}

// Lease implements Transport.
func (t *LatencyTransport) Lease(part int, req LeaseRequest, reply *LeaseReply) error {
	t.pay()
	return t.Inner.Lease(part, req, reply)
}

// Release implements Transport.
func (t *LatencyTransport) Release(part int, req ReleaseRequest, reply *ReleaseReply) error {
	t.pay()
	return t.Inner.Release(part, req, reply)
}

// Compact implements Transport.
func (t *LatencyTransport) Compact(part int, req CompactRequest, reply *CompactReply) error {
	t.pay()
	return t.Inner.Compact(part, req, reply)
}

// Kick forwards a connection-sever request to the inner transport.
func (t *LatencyTransport) Kick(part int) {
	if k, ok := t.Inner.(Kicker); ok {
		k.Kick(part)
	}
}

// Close implements Transport.
func (t *LatencyTransport) Close() error { return t.Inner.Close() }
