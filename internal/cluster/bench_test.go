package cluster

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/plan"
	"repro/internal/sampling"
	"repro/internal/storage"
)

// BenchmarkClusterSample measures one NEIGHBORHOOD mini-batch hop sequence
// (batch 256, hops 5x3) over the batched cluster client on the in-memory
// transport, across shard counts and with/without the importance cache.
// The rpc/op metric is the deterministic transport call count per
// mini-batch; before/after numbers live in CHANGES.md.
func BenchmarkClusterSample(b *testing.B) {
	g := powerLawTestGraph(2000)
	batch := make([]graph.ID, 256)
	rnd := rand.New(rand.NewSource(3))
	for i := range batch {
		batch[i] = graph.ID(rnd.Intn(g.NumVertices()))
	}
	hops := []int{5, 3}

	for _, shards := range []int{2, 4} {
		a, err := (partition.HashPartitioner{}).Partition(g, shards)
		if err != nil {
			b.Fatal(err)
		}
		servers := FromGraph(g, a)
		for _, kind := range []string{"none", "importance", "lru"} {
			var mk func() storage.NeighborCache
			switch kind {
			case "importance":
				imp := storage.NewImportanceCacheTopFraction(g, 2, 0.2)
				mk = func() storage.NeighborCache { return imp }
			case "lru":
				mk = func() storage.NeighborCache { return storage.NewLRUNeighborCache(g.NumVertices() / 5) }
			default:
				mk = func() storage.NeighborCache { return storage.NoCache{} }
			}
			b.Run(fmt.Sprintf("shards=%d/cache=%s", shards, kind), func(b *testing.B) {
				tr := NewLocalTransport(servers, 0, 0)
				cache := mk()
				c := NewClient(a, tr, cache)
				nbr := sampling.NewNeighborhood(c, rand.New(rand.NewSource(1)))
				var ctx sampling.Context
				rng := sampling.NewRng(1)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := nbr.SampleInto(&ctx, 0, batch, hops, rng); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				local, remote := tr.Calls()
				b.ReportMetric(float64(local+remote)/float64(b.N), "rpc/op")
				// Cache efficiency: hit rate plus the epoch-miss rate (the
				// extra re-validation fetches version safety costs under
				// churn; zero on this quiescent workload).
				if lru, ok := cache.(*storage.LRUNeighborCache); ok {
					hits, misses, epochMisses := lru.Counters()
					if total := hits + misses + epochMisses; total > 0 {
						b.ReportMetric(float64(hits)/float64(total), "cacheHitRate")
						b.ReportMetric(float64(epochMisses)/float64(total), "epochMissRate")
					}
				}
			})
		}
	}

	// Fan-out: the same hop sequence with 200µs injected per-call latency
	// (LatencyTransport), sequential versus concurrent scatter. Sequential
	// prices a hop at shards x RTT; concurrent at max(RTT) — so the par
	// variants should hold roughly flat as shards double while seq scales
	// linearly.
	for _, shards := range []int{2, 4} {
		a, err := (partition.HashPartitioner{}).Partition(g, shards)
		if err != nil {
			b.Fatal(err)
		}
		servers := FromGraph(g, a)
		for _, mode := range []string{"seq", "par"} {
			b.Run(fmt.Sprintf("shards=%d/fanout=%s", shards, mode), func(b *testing.B) {
				tr := NewLatencyTransport(NewLocalTransport(servers, 0, 0), 200*time.Microsecond)
				c := NewClient(a, tr, storage.NoCache{})
				if mode == "seq" {
					c.Fanout = 1
				}
				nbr := sampling.NewNeighborhood(c, rand.New(rand.NewSource(1)))
				var ctx sampling.Context
				rng := sampling.NewRng(1)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := nbr.SampleInto(&ctx, 0, batch, hops, rng); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				m := c.Metrics()
				if m.Fanouts > 0 {
					b.ReportMetric(m.FanoutWidth, "fanWidth")
				}
			})
		}
	}

	// Sampling plans: the skewed two-lane workload (one hub set resampled
	// every op, one never-repeating cold stream, both squeezed through a
	// too-small LRU) under the built-in static hybrid versus the adaptive
	// planner. rpc/op is the separating metric: the planner learns to pin
	// the hub lane client-side and stop the cold lane's cache pollution.
	{
		const nHot, coldPer, width, planCap = 8, 12, 4, 16
		nCold := coldPer * 1024
		sg := skewTestGraph(nHot, nCold)
		sa, err := (partition.HashPartitioner{}).Partition(sg, 2)
		if err != nil {
			b.Fatal(err)
		}
		sservers := FromGraph(sg, sa)
		hotVs := make([]graph.ID, nHot)
		for i := range hotVs {
			hotVs[i] = graph.ID(i)
		}
		hotDst := make([]graph.ID, nHot*width)
		coldVs := make([]graph.ID, coldPer)
		coldDst := make([]graph.ID, coldPer*width)
		for _, mode := range []string{"static", "adaptive"} {
			b.Run(fmt.Sprintf("shards=2/skew/plan=%s", mode), func(b *testing.B) {
				tr := NewLocalTransport(sservers, 0, 0)
				c := NewClient(sa, tr, storage.NewLRUNeighborCache(planCap))
				var pln *plan.Planner
				if mode == "adaptive" {
					pln = c.NewPlanner(plan.Config{MinSlots: 1, MinLookups: 1, Hysteresis: 2, ProbeEvery: 3})
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for j := range coldVs {
						coldVs[j] = graph.ID(nHot + (i*coldPer+j)%nCold)
					}
					if err := c.SampleBatch(coldDst, coldVs, 1, width, false, uint64(i)); err != nil {
						b.Fatal(err)
					}
					if err := c.SampleBatch(hotDst, hotVs, 0, width, false, uint64(i)); err != nil {
						b.Fatal(err)
					}
					if pln != nil {
						pln.Step()
					}
				}
				b.StopTimer()
				local, remote := tr.Calls()
				b.ReportMetric(float64(local+remote)/float64(b.N), "rpc/op")
			})
		}
	}

	// Fault-tolerance overhead: the same hop sequence through the retry
	// layer over a seeded 1% request-drop fault rate — what the policy
	// stack costs when the network is imperfect but alive. retries/op
	// reports how many re-issued calls papered over the drops.
	for _, shards := range []int{2} {
		a, err := (partition.HashPartitioner{}).Partition(g, shards)
		if err != nil {
			b.Fatal(err)
		}
		servers := FromGraph(g, a)
		b.Run(fmt.Sprintf("shards=%d/cache=none/faults=1%%", shards), func(b *testing.B) {
			ft := NewFaultTransport(NewLocalTransport(servers, 0, 0), shards, FaultConfig{Seed: 17, DropRate: 0.01})
			rt := NewRetryTransport(ft, shards, CallPolicy{
				Attempts:   4,
				Backoff:    50 * time.Microsecond,
				MaxBackoff: time.Millisecond,
			}, 17)
			c := NewClient(a, rt, storage.NoCache{})
			nbr := sampling.NewNeighborhood(c, rand.New(rand.NewSource(1)))
			var ctx sampling.Context
			rng := sampling.NewRng(1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := nbr.SampleInto(&ctx, 0, batch, hops, rng); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(rt.Retries())/float64(b.N), "retries/op")
		})
	}
}
