package cluster

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/sampling"
	"repro/internal/storage"
	"repro/internal/version"
)

// TestCacheEpochKeyedUnderUpdate: the neighbor cache is version-keyed end
// to end — an entry fetched at one epoch must not serve a pinned read at a
// later one (a touched vertex would be stale), and a re-validating fetch
// restores the hit for the new epoch.
func TestCacheEpochKeyedUnderUpdate(t *testing.T) {
	g := testGraph(t)
	a, _ := partition.HashPartitioner{}.Partition(g, 2)
	servers := FromGraph(g, a)
	cache := storage.NewLRUNeighborCache(64)
	c := NewClient(a, NewLocalTransport(servers, 0, 0), cache)

	pin1, err := c.Pin()
	if err != nil {
		t.Fatal(err)
	}
	view := c.EpochView()
	view.SetPin(pin1)
	vbs := view.(sampling.BatchSampler)
	batch := []graph.ID{0, 2}
	dst := make([]graph.ID, len(batch)*3)
	if err := vbs.SampleBatch(dst, batch, 0, 3, false, 7); err != nil {
		t.Fatal(err)
	}
	// Click degree 2 <= width 3: both lists were shipped short and admitted
	// at epoch 0.
	if _, ok := cache.Get(0, 0, 1, 0); !ok {
		t.Fatal("warm-up did not admit vertex 0 at epoch 0")
	}

	// Rewrite vertex 0's click list on its owning shard (epoch 1 there).
	var reply UpdateReply
	if err := servers[0].ServeUpdate(UpdateRequest{Add: []RawEdge{{Src: 0, Dst: 6, Type: 0, Weight: 1}}}, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.Epoch != 1 {
		t.Fatalf("update epoch = %d", reply.Epoch)
	}

	// The epoch-0 entry must not answer an epoch-1 read.
	if _, ok := cache.Get(0, 0, 1, 1); ok {
		t.Fatal("stale epoch-0 neighbor list served for an epoch-1 read")
	}

	// Let the client observe the new head, then pin the post-update
	// snapshot and re-sample: the cache must re-fetch, not serve stale.
	c.Unpin(pin1)
	if _, err := c.Neighbors(0, 1); err != nil { // any reply carries Head
		t.Fatal(err)
	}
	pin2, err := c.Pin()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Unpin(pin2)
	if pin2.Epochs[0] != 1 {
		t.Fatalf("re-pin epochs = %v, want shard 0 at 1", pin2.Epochs)
	}
	view.SetPin(pin2)
	dst2 := make([]graph.ID, len(batch)*4)
	if err := vbs.SampleBatch(dst2, batch, 0, 4, false, 8); err != nil {
		t.Fatal(err)
	}
	// Vertex 0's fresh entry is the rewritten 3-neighbor list...
	ns, ok := cache.Get(0, 0, 1, 1)
	if !ok || len(ns) != 3 {
		t.Fatalf("post-update entry = %v ok=%v, want rewritten 3-list", ns, ok)
	}
	// ...and the untouched vertex 2 was cheaply re-validated, not replaced.
	if _, ok := cache.Get(2, 0, 1, 1); !ok {
		t.Fatal("untouched vertex not re-validated at the new epoch")
	}
	if _, _, epochMisses := cache.Counters(); epochMisses == 0 {
		t.Fatal("epoch misses not counted across the update")
	}
	// Draw validity at the pinned epoch.
	for i, v := range batch {
		for _, u := range dst2[i*4 : (i+1)*4] {
			if v == 0 && u == 6 {
				continue // the dynamically inserted edge
			}
			if !g.HasEdge(v, u, 0) {
				t.Fatalf("%d -> %d is not an edge at the pinned epoch", v, u)
			}
		}
	}
}

// TestPinnedTraverseSplitUsesPinnedStats: the cross-server TRAVERSE split
// of a pinned batch must come from the pinned epoch's edge counters (they
// ride the Lease reply), not the moving head's — otherwise a shard that
// grew after the pin would be asked for edges its pinned snapshot does not
// have, and the batch would come back short.
func TestPinnedTraverseSplitUsesPinnedStats(t *testing.T) {
	s := graph.MustSchema([]string{"v"}, []string{"e"})
	b := graph.NewBuilder(s, true)
	b.AddVertices(0, 8)
	for v := graph.ID(0); v < 8; v += 2 {
		b.AddEdge(v, v+1, 0, 1) // all epoch-0 edges live on even vertices (shard 0)
	}
	g := b.Finalize()
	a, _ := partition.HashPartitioner{}.Partition(g, 2)
	servers := FromGraph(g, a)
	c := NewClient(a, NewLocalTransport(servers, 0, 0), storage.NoCache{})

	pin, err := c.Pin()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Unpin(pin)

	// Shard 1 grows 50 edges AFTER the pin; the head stats now say it holds
	// nearly all the mass.
	for i := 0; i < 50; i++ {
		var reply UpdateReply
		req := UpdateRequest{Add: []RawEdge{{Src: graph.ID(1 + 2*(i%4)), Dst: graph.ID(i % 8), Type: 0, Weight: 1}}}
		if err := servers[1].ServeUpdate(req, &reply); err != nil {
			t.Fatal(err)
		}
	}

	var span sampling.EpochSpan
	edges, err := c.AppendSampleEdges(nil, 0, 32, 7, pin, &span)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 32 {
		t.Fatalf("pinned TRAVERSE returned %d/32 edges (head-stats split starved the batch)", len(edges))
	}
	for _, e := range edges {
		if e.Src%2 != 0 {
			t.Fatalf("pinned batch drew post-pin edge (%d,%d)", e.Src, e.Dst)
		}
	}
	if span.Mixed() {
		t.Fatalf("pinned batch span mixed: %+v", span)
	}
}

// TestDistributedWeightedTraverseChiSquare: SampleEdgesWeighted draws edges
// across shards proportionally to edge weight, matching the statistics of
// a local weighted draw over the whole graph — chi-square goodness-of-fit
// on both, p=0.001 critical value, deterministic seeds.
func TestDistributedWeightedTraverseChiSquare(t *testing.T) {
	weights := []float64{1, 2, 3, 4, 10, 5}
	s := graph.MustSchema([]string{"v"}, []string{"e"})
	b := graph.NewBuilder(s, true)
	b.AddVertices(0, len(weights))
	for i, w := range weights {
		b.AddEdge(graph.ID(i), graph.ID((i+1)%len(weights)), 0, w)
	}
	g := b.Finalize()
	a, _ := partition.HashPartitioner{}.Partition(g, 2)
	servers := FromGraph(g, a)
	tr := NewLocalTransport(servers, 0, 0)
	c := NewClient(a, tr, nil)

	const draws = 60000
	total := 0.0
	for _, w := range weights {
		total += w
	}
	chi2Of := func(counts []int) float64 {
		chi2 := 0.0
		for i, n := range counts {
			exp := draws * weights[i] / total
			d := float64(n) - exp
			chi2 += d * d / exp
		}
		return chi2
	}

	edges, err := c.SampleEdgesWeighted(0, draws, 12345)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != draws {
		t.Fatalf("drew %d/%d edges", len(edges), draws)
	}
	distCounts := make([]int, len(weights))
	for _, e := range edges {
		if !g.HasEdge(e.Src, e.Dst, 0) {
			t.Fatalf("sampled non-edge (%d,%d)", e.Src, e.Dst)
		}
		distCounts[e.Src]++
	}

	// Local reference: the same weighted draw over the whole (unsharded)
	// edge set.
	localCounts := make([]int, len(weights))
	al := sampling.NewAlias(weights)
	rng := sampling.NewRng(999)
	for i := 0; i < draws; i++ {
		localCounts[al.DrawRng(rng)]++
	}

	// Chi-square with df=5 at p=0.001 is 20.52: both the distributed and
	// the local draw must fit the weight distribution.
	if chi2 := chi2Of(distCounts); chi2 > 20.52 {
		t.Fatalf("distributed weighted draw chi-square %.2f > 20.52; counts %v", chi2, distCounts)
	}
	if chi2 := chi2Of(localCounts); chi2 > 20.52 {
		t.Fatalf("local weighted draw chi-square %.2f > 20.52; counts %v", chi2, localCounts)
	}
	// Cost: one Stats round plus at most one SampleEdges RPC per server.
	if local, remote := tr.Calls(); local+remote > 2*int64(a.P) {
		t.Fatalf("weighted TRAVERSE cost %d RPCs, want <= %d", local+remote, 2*a.P)
	}
}

// TestPipelineLRUMatchesDepth0Cluster: depth-4 pipelined training over a
// cluster with a replacing LRU neighbor cache produces losses bit-identical
// to depth 0 — the PR 3 "statistical match only" caveat upgraded to an
// invariant. Draws are slot-pure, so cache warm-up timing and admission
// order across pipeline workers cannot perturb the values.
func TestPipelineLRUMatchesDepth0Cluster(t *testing.T) {
	g := churnTestGraph(200)
	lru := func([]*Server, *partition.Assignment) storage.NeighborCache {
		return storage.NewLRUNeighborCache(128)
	}

	base, _ := newChurnTrainerCache(t, g, 42, lru)
	want, err := base.Train(25)
	if err != nil {
		t.Fatal(err)
	}

	trn, _ := newChurnTrainerCache(t, g, 42, lru)
	pl := core.NewPipeline(trn, core.PipelineConfig{Depth: 4, Workers: 3})
	trn.SetSource(pl)
	got, err := trn.Train(25)
	if cerr := pl.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("step %d: depth-4 LRU loss %g != depth-0 LRU loss %g", i, got[i], want[i])
		}
	}
}

// verifyingLRU wraps an LRU neighbor cache and cross-checks every hop-1
// hit against the owning server's snapshot store at the epoch the lookup
// was keyed by: if the cache ever serves a list that differs from the
// store's adjacency at that exact epoch, a pinned batch consumed a
// stale-generation list and the test fails.
type verifyingLRU struct {
	t       *testing.T
	inner   *storage.LRUNeighborCache
	servers []*Server
	assign  *partition.Assignment
	checked atomic.Int64
}

func (v *verifyingLRU) Get(x graph.ID, et graph.EdgeType, h int, epoch uint64) ([]graph.ID, bool) {
	ns, ok := v.inner.Get(x, et, h, epoch)
	if ok && h == 1 {
		srv := v.servers[v.assign.Part(x)]
		view, err := srv.Store().At(epoch)
		switch {
		case version.IsUnavailable(err):
			// The epoch fell out between lookup and check; nothing to verify.
		case err != nil:
			v.t.Errorf("verify At(%d): %v", epoch, err)
		default:
			want, _, okv := view.Neighbors(x, et)
			if !okv {
				v.t.Errorf("verify: server does not own %d", x)
				return ns, ok
			}
			if len(ns) != len(want) {
				v.t.Errorf("STALE CACHE: vertex %d type %d epoch %d: cached %v, store %v", x, et, epoch, ns, want)
				return ns, ok
			}
			for i := range want {
				if ns[i] != want[i] {
					v.t.Errorf("STALE CACHE: vertex %d type %d epoch %d: cached %v, store %v", x, et, epoch, ns, want)
					return ns, ok
				}
			}
			v.checked.Add(1)
		}
	}
	return ns, ok
}

func (v *verifyingLRU) Observe(x graph.ID, et graph.EdgeType, h int, epoch, since uint64, nbrs []graph.ID) {
	v.inner.Observe(x, et, h, epoch, since, nbrs)
}

func (v *verifyingLRU) Admits() bool        { return true }
func (v *verifyingLRU) Name() string        { return "verifying-lru" }
func (v *verifyingLRU) CachedVertices() int { return v.inner.CachedVertices() }

// TestPinnedTrainingUnderChurnLRU is the churn acceptance test with a
// replacing LRU neighbor cache enabled (run with -race): depth-4 pipelined
// training while update storms hammer a second edge type must (a) never
// consume a neighbor list fetched at a different epoch than the batch's pin
// (every cache hit is cross-checked against the store at the lookup epoch),
// (b) keep every batch single-valued, and (c) produce losses bit-identical
// to a quiesced run with the same cache configuration — cache warm-up,
// epoch misses and re-validations shift RPCs, never values.
func TestPinnedTrainingUnderChurnLRU(t *testing.T) {
	const steps = 30
	g := churnTestGraph(200)

	// Reference: identical trainer + LRU cache, no churn.
	quiet, _ := newChurnTrainerCache(t, g, 42, func([]*Server, *partition.Assignment) storage.NeighborCache {
		return storage.NewLRUNeighborCache(256)
	})
	qpl := core.NewPipeline(quiet, core.PipelineConfig{Depth: 4, Workers: 3})
	quiet.SetSource(qpl)
	want, err := quiet.Train(steps)
	if cerr := qpl.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if err != nil {
		t.Fatal(err)
	}

	// Churned: same seed, verifying LRU, update storms on edge type 1.
	inner := storage.NewLRUNeighborCache(256)
	vc := &verifyingLRU{t: t, inner: inner}
	trn, servers := newChurnTrainerCache(t, g, 42, func(srvs []*Server, a *partition.Assignment) storage.NeighborCache {
		vc.servers, vc.assign = srvs, a
		return vc
	})
	pl := core.NewPipeline(trn, core.PipelineConfig{Depth: 4, Workers: 3})
	trn.SetSource(pl)
	defer pl.Close()

	stop := make(chan struct{})
	var storm sync.WaitGroup
	for w := 0; w < 4; w++ {
		storm.Add(1)
		go func(seed int64) {
			defer storm.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				srv := servers[rng.Intn(len(servers))]
				local := srv.LocalVertices()
				src := local[rng.Intn(len(local))]
				req := UpdateRequest{Add: []RawEdge{{Src: src, Dst: graph.ID(rng.Intn(200)), Type: 1, Weight: 1}}}
				if i%3 == 0 {
					req.Remove = []RawEdge{{Src: src, Dst: graph.ID(rng.Intn(200)), Type: 1}}
				}
				var reply UpdateReply
				if err := srv.ServeUpdate(req, &reply); err != nil {
					t.Errorf("storm update: %v", err)
					return
				}
			}
		}(int64(w + 1))
	}

	var got []float64
	maxStamp := uint64(0)
	for i := 0; i < steps; i++ {
		mb, err := pl.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !mb.Epochs.Seen || mb.Epochs.Mixed() {
			t.Fatalf("step %d: batch span %+v, want single-valued", i, mb.Epochs)
		}
		if mb.Pin == nil {
			t.Fatalf("step %d: batch not pinned", i)
		}
		if s := mb.Epochs.Min; s > maxStamp {
			maxStamp = s
		}
		l, err := trn.Step(mb)
		if err != nil {
			t.Fatal(err)
		}
		pl.Recycle(mb)
		got = append(got, l)
	}
	close(stop)
	storm.Wait()

	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("step %d: churned LRU loss %g != quiesced LRU loss %g", i, got[i], want[i])
		}
	}
	if maxStamp < 2 {
		t.Fatalf("pin stamp never advanced past %d under continuous churn", maxStamp)
	}
	if vc.checked.Load() == 0 {
		t.Fatal("verifier never cross-checked a cache hit")
	}
	if _, _, epochMisses := inner.Counters(); epochMisses == 0 {
		t.Fatal("no epoch miss ever recorded: cache entries rode across epochs unchecked")
	}
}

// TestServerCompactTrigger: the overlay-size threshold folds the store
// from the update path, and the Compact RPC reports the fold; training
// reads keep answering across it.
func TestServerCompactTrigger(t *testing.T) {
	g := testGraph(t)
	a, _ := partition.HashPartitioner{}.Partition(g, 2)
	servers := FromGraph(g, a)
	servers[0].SetCompactThreshold(3)
	defer servers[0].Close()
	tr := NewLocalTransport(servers, 0, 0)

	for i := 0; i < 20; i++ {
		var reply UpdateReply
		src := servers[0].LocalVertices()[i%4]
		req := UpdateRequest{Add: []RawEdge{{Src: src, Dst: graph.ID(i % 8), Type: 1, Weight: 1}}}
		if err := servers[0].ServeUpdate(req, &reply); err != nil {
			t.Fatal(err)
		}
	}
	// The fold runs on the background compactor now — ServeUpdate only
	// signals — so wait for the trigger's effect instead of asserting it
	// inline. The buffered kick token guarantees the state after the last
	// update is re-examined, so the overlay must eventually shrink below
	// the bound the old synchronous trigger maintained.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		ov := servers[0].Store().Overlay()
		if servers[0].Store().Compactions() > 0 && ov.AdjEntries <= 3+version.DefaultRetain {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if servers[0].Store().Compactions() == 0 {
		t.Fatal("threshold trigger never compacted")
	}
	if ov := servers[0].Store().Overlay(); ov.AdjEntries > 3+version.DefaultRetain {
		t.Fatalf("head overlay still holds %d entries past the threshold", ov.AdjEntries)
	}
	// The explicit RPC surface works too and reads survive the fold.
	var creply CompactReply
	if err := tr.Compact(0, CompactRequest{}, &creply); err != nil {
		t.Fatal(err)
	}
	if creply.BaseEpoch == 0 {
		t.Fatal("Compact RPC reports no fold ever happened")
	}
	c := NewClient(a, tr, storage.NewLRUNeighborCache(16))
	ns, err := c.Neighbors(servers[0].LocalVertices()[0], 0)
	if err != nil || len(ns) == 0 {
		t.Fatalf("post-compaction read: %v %v", ns, err)
	}
}

// TestCacheFlushOnServerRestart: a shard restart resets its epoch
// numbering, making cached validity intervals from the old incarnation
// incomparable with the new one — the lease round that discovers the head
// regression must flush the neighbor cache so an old [since, through]
// entry can never wrongly hit once the fresh store's epochs catch up.
func TestCacheFlushOnServerRestart(t *testing.T) {
	g := testGraph(t)
	a, _ := partition.HashPartitioner{}.Partition(g, 2)
	build := func() []*Server { return FromGraph(g, a) }
	tr := NewLocalTransport(build(), 0, 0)
	cache := storage.NewLRUNeighborCache(64)
	c := NewClient(a, tr, cache)

	// Advance shard 0 to epoch 2 and pin it.
	for i := 0; i < 2; i++ {
		var reply UpdateReply
		if err := tr.Servers[0].ServeUpdate(UpdateRequest{Add: []RawEdge{{Src: 0, Dst: graph.ID(4 + i), Type: 1, Weight: 1}}}, &reply); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Neighbors(0, 1); err != nil { // observe head 2
		t.Fatal(err)
	}
	pin, err := c.Pin()
	if err != nil {
		t.Fatal(err)
	}
	if pin.Epochs[0] != 2 {
		t.Fatalf("pin = %v, want shard 0 at 2", pin.Epochs)
	}
	// Warm an entry valid under the old incarnation's numbering.
	view := c.EpochView()
	view.SetPin(pin)
	dst := make([]graph.ID, 3)
	if err := view.(sampling.BatchSampler).SampleBatch(dst, []graph.ID{0}, 0, 3, false, 7); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.Get(0, 0, 1, 2); !ok {
		t.Fatal("warm-up did not admit under the old incarnation")
	}

	// Restart shard 0 (fresh store at epoch 0) and force the re-pin the
	// real flow performs when the dead pin surfaces ErrFuture.
	tr.Servers[0] = build()[0]
	c.Discard(pin)
	c.Unpin(pin)
	pin2, err := c.Pin()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Unpin(pin2)
	if pin2.Epochs[0] != 0 {
		t.Fatalf("post-restart pin = %v, want the fresh head", pin2.Epochs)
	}
	// The lease round saw the head regress: the cache must be empty, so a
	// read at any new-incarnation epoch refetches instead of hitting the
	// old entry.
	if n := cache.CachedVertices(); n != 0 {
		t.Fatalf("cache still holds %d old-incarnation entries after restart", n)
	}
	if _, ok := cache.Get(0, 0, 1, 2); ok {
		t.Fatal("old-incarnation entry survived the restart flush")
	}
}
