package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates vertices and edges and produces an immutable Graph.
// It is not safe for concurrent use; the distributed build pipeline in
// internal/cluster shards edges across builders and merges.
type Builder struct {
	schema   *Schema
	directed bool

	vtype []VertexType
	vattr [][]float64

	edges []Edge
}

// NewBuilder creates a builder for the given schema. When directed is false
// every added edge is stored in both directions at finalize time.
func NewBuilder(schema *Schema, directed bool) *Builder {
	return &Builder{schema: schema, directed: directed}
}

// AddVertex registers a vertex of type t with an optional attribute vector
// and returns its dense ID.
func (b *Builder) AddVertex(t VertexType, attr []float64) ID {
	if int(t) >= b.schema.NumVertexTypes() || t < 0 {
		panic(fmt.Sprintf("graph: vertex type %d out of range", t))
	}
	id := ID(len(b.vtype))
	b.vtype = append(b.vtype, t)
	b.vattr = append(b.vattr, attr)
	return id
}

// AddVertices registers cnt attribute-less vertices of type t and returns
// the first assigned ID.
func (b *Builder) AddVertices(t VertexType, cnt int) ID {
	first := ID(len(b.vtype))
	for i := 0; i < cnt; i++ {
		b.AddVertex(t, nil)
	}
	return first
}

// NumVertices reports the number of vertices added so far.
func (b *Builder) NumVertices() int { return len(b.vtype) }

// AddEdge adds an edge from src to dst with weight w. Both endpoints must
// already exist.
func (b *Builder) AddEdge(src, dst ID, t EdgeType, w float64) {
	b.AddEdgeAttr(src, dst, t, w, nil)
}

// AddEdgeAttr adds an edge carrying an attribute vector.
func (b *Builder) AddEdgeAttr(src, dst ID, t EdgeType, w float64, attr []float64) {
	if int(t) >= b.schema.NumEdgeTypes() || t < 0 {
		panic(fmt.Sprintf("graph: edge type %d out of range", t))
	}
	if src < 0 || int(src) >= len(b.vtype) || dst < 0 || int(dst) >= len(b.vtype) {
		panic(fmt.Sprintf("graph: edge (%d,%d) references unknown vertex", src, dst))
	}
	b.edges = append(b.edges, Edge{Src: src, Dst: dst, Type: t, Weight: w, Attr: attr})
}

// NumEdges reports the number of edges added so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// Finalize builds the immutable CSR graph. The builder may be reused
// afterwards, but further mutation does not affect the returned graph.
func (b *Builder) Finalize() *Graph {
	n := len(b.vtype)
	nt := b.schema.NumEdgeTypes()

	g := &Graph{
		schema:   b.schema,
		directed: b.directed,
		n:        n,
		m:        len(b.edges),
		vtype:    append([]VertexType(nil), b.vtype...),
		vattr:    append([][]float64(nil), b.vattr...),
		out:      make([]adjacency, nt),
		in:       make([]adjacency, nt),
	}

	g.byVType = make([][]ID, b.schema.NumVertexTypes())
	for v, t := range g.vtype {
		g.byVType[t] = append(g.byVType[t], ID(v))
	}

	// Expand undirected edges into both directions.
	type dirEdge struct {
		src, dst ID
		w        float64
		attr     int32
	}
	perType := make([][]dirEdge, nt)
	hasAttr := false
	for _, e := range b.edges {
		if e.Attr != nil {
			hasAttr = true
		}
	}
	attrIdx := int32(-1)
	for _, e := range b.edges {
		ai := int32(-1)
		if e.Attr != nil {
			g.edgeAttrs = append(g.edgeAttrs, e.Attr)
			attrIdx++
			ai = attrIdx
		}
		perType[e.Type] = append(perType[e.Type], dirEdge{e.Src, e.Dst, e.Weight, ai})
		if !b.directed && e.Src != e.Dst {
			perType[e.Type] = append(perType[e.Type], dirEdge{e.Dst, e.Src, e.Weight, ai})
		}
	}

	for t := 0; t < nt; t++ {
		es := perType[t]
		sort.Slice(es, func(i, j int) bool {
			if es[i].src != es[j].src {
				return es[i].src < es[j].src
			}
			return es[i].dst < es[j].dst
		})
		out := adjacency{
			offs: make([]int64, n+1),
			dst:  make([]ID, len(es)),
			w:    make([]float64, len(es)),
		}
		if hasAttr {
			out.attr = make([]int32, len(es))
		}
		for _, e := range es {
			out.offs[e.src+1]++
		}
		for v := 0; v < n; v++ {
			out.offs[v+1] += out.offs[v]
		}
		pos := make([]int64, n)
		copy(pos, out.offs[:n])
		for _, e := range es {
			p := pos[e.src]
			out.dst[p] = e.dst
			out.w[p] = e.w
			if hasAttr {
				out.attr[p] = e.attr
			}
			pos[e.src]++
		}
		g.out[EdgeType(t)] = out

		// Reverse direction for in-neighbors.
		in := adjacency{
			offs: make([]int64, n+1),
			dst:  make([]ID, len(es)),
			w:    make([]float64, len(es)),
		}
		for _, e := range es {
			in.offs[e.dst+1]++
		}
		for v := 0; v < n; v++ {
			in.offs[v+1] += in.offs[v]
		}
		copy(pos, in.offs[:n])
		for _, e := range es {
			p := pos[e.dst]
			in.dst[p] = e.src
			in.w[p] = e.w
			pos[e.dst]++
		}
		// Keep in-neighbor lists sorted too.
		for v := 0; v < n; v++ {
			lo, hi := in.offs[v], in.offs[v+1]
			seg := in.dst[lo:hi]
			wseg := in.w[lo:hi]
			sort.Sort(&pairSort{seg, wseg})
		}
		g.in[EdgeType(t)] = in
	}
	return g
}

type pairSort struct {
	ids []ID
	ws  []float64
}

func (p *pairSort) Len() int           { return len(p.ids) }
func (p *pairSort) Less(i, j int) bool { return p.ids[i] < p.ids[j] }
func (p *pairSort) Swap(i, j int) {
	p.ids[i], p.ids[j] = p.ids[j], p.ids[i]
	p.ws[i], p.ws[j] = p.ws[j], p.ws[i]
}
