package graph

// This file implements the k-hop neighborhood counting utilities behind the
// importance metric of Section 3.2:
//
//	Imp^(k)(v) = D_i^(k)(v) / D_o^(k)(v)
//
// where D_i^(k)(v) and D_o^(k)(v) are the numbers of distinct k-hop in- and
// out-neighbors of v. The storage layer caches the out-neighbors of vertices
// whose importance exceeds a threshold (Algorithm 2, lines 5-9).
//
// The BFS underneath is the epoch-stamped, buffer-reusing expansion in
// scratch.go: the convenience methods here acquire a pooled Scratch, so
// steady-state counting allocates nothing and the slice-returning variants
// allocate only their result copy.

// KHopOut returns the set of vertices reachable from v in exactly 1..k hops
// following out-edges of any type (v itself excluded). The result is a
// deduplicated slice in discovery order, owned by the caller.
func (g *Graph) KHopOut(v ID, k int) []ID {
	s := g.AcquireScratch()
	out := append([]ID(nil), g.KHopOutScratch(v, k, s)...)
	g.ReleaseScratch(s)
	return out
}

// KHopIn returns the set of vertices that reach v in 1..k hops following
// out-edges (equivalently, v's k-hop in-neighborhood).
func (g *Graph) KHopIn(v ID, k int) []ID {
	s := g.AcquireScratch()
	out := append([]ID(nil), g.KHopInScratch(v, k, s)...)
	g.ReleaseScratch(s)
	return out
}

// KHopOutCount returns D_o^(k)(v).
func (g *Graph) KHopOutCount(v ID, k int) int {
	s := g.AcquireScratch()
	n := len(g.KHopOutScratch(v, k, s))
	g.ReleaseScratch(s)
	return n
}

// KHopInCount returns D_i^(k)(v).
func (g *Graph) KHopInCount(v ID, k int) int {
	s := g.AcquireScratch()
	n := len(g.KHopInScratch(v, k, s))
	g.ReleaseScratch(s)
	return n
}

// Importance returns Imp^(k)(v) = D_i^(k)(v) / D_o^(k)(v), the benefit/cost
// ratio of caching v's out-neighborhood. A vertex with no k-hop
// out-neighbors has importance 0: there is no neighborhood to cache, so it
// can never repay a cache slot.
func (g *Graph) Importance(v ID, k int) float64 {
	s := g.AcquireScratch()
	imp := g.ImportanceScratch(v, k, s)
	g.ReleaseScratch(s)
	return imp
}

// ImportanceAll computes Imp^(k) for every vertex, in parallel over
// GOMAXPROCS workers; it is the batch form used by the storage layer when
// deciding the cache set. Use ImportanceAllParallel to pick the worker count.
func (g *Graph) ImportanceAll(k int) []float64 {
	return g.ImportanceAllParallel(k, 0)
}
