package graph

// This file implements the k-hop neighborhood counting utilities behind the
// importance metric of Section 3.2:
//
//	Imp^(k)(v) = D_i^(k)(v) / D_o^(k)(v)
//
// where D_i^(k)(v) and D_o^(k)(v) are the numbers of distinct k-hop in- and
// out-neighbors of v. The storage layer caches the out-neighbors of vertices
// whose importance exceeds a threshold (Algorithm 2, lines 5-9).

// KHopOut returns the set of vertices reachable from v in exactly 1..k hops
// following out-edges of any type (v itself excluded). The result is a
// deduplicated slice in discovery order.
func (g *Graph) KHopOut(v ID, k int) []ID {
	return g.khop(v, k, g.outNeighborsAll)
}

// KHopIn returns the set of vertices that reach v in 1..k hops following
// out-edges (equivalently, v's k-hop in-neighborhood).
func (g *Graph) KHopIn(v ID, k int) []ID {
	return g.khop(v, k, g.inNeighborsAll)
}

// KHopOutCount returns D_o^(k)(v).
func (g *Graph) KHopOutCount(v ID, k int) int { return len(g.KHopOut(v, k)) }

// KHopInCount returns D_i^(k)(v).
func (g *Graph) KHopInCount(v ID, k int) int { return len(g.KHopIn(v, k)) }

// Importance returns Imp^(k)(v) = D_i^(k)(v) / D_o^(k)(v), the benefit/cost
// ratio of caching v's out-neighborhood. A vertex with no k-hop
// out-neighbors has importance 0: there is no neighborhood to cache, so it
// can never repay a cache slot.
func (g *Graph) Importance(v ID, k int) float64 {
	do := g.KHopOutCount(v, k)
	if do == 0 {
		return 0
	}
	return float64(g.KHopInCount(v, k)) / float64(do)
}

func (g *Graph) outNeighborsAll(v ID, buf []ID) []ID {
	for t := range g.out {
		buf = append(buf, g.out[t].neighbors(v)...)
	}
	return buf
}

func (g *Graph) inNeighborsAll(v ID, buf []ID) []ID {
	for t := range g.in {
		buf = append(buf, g.in[t].neighbors(v)...)
	}
	return buf
}

// khop runs a breadth-first expansion up to depth k using the supplied
// neighbor function, returning distinct visited vertices excluding v.
func (g *Graph) khop(v ID, k int, nbrs func(ID, []ID) []ID) []ID {
	if k <= 0 {
		return nil
	}
	seen := map[ID]struct{}{v: {}}
	frontier := []ID{v}
	var result []ID
	var buf []ID
	for hop := 0; hop < k && len(frontier) > 0; hop++ {
		var next []ID
		for _, u := range frontier {
			buf = nbrs(u, buf[:0])
			for _, w := range buf {
				if _, ok := seen[w]; ok {
					continue
				}
				seen[w] = struct{}{}
				next = append(next, w)
				result = append(result, w)
			}
		}
		frontier = next
	}
	return result
}

// ImportanceAll computes Imp^(k) for every vertex. It is the batch form used
// by the storage layer when deciding the cache set; the per-vertex BFS is
// embarrassingly parallel but kept sequential here — callers that need
// parallelism (the cluster build pipeline) shard the vertex range.
func (g *Graph) ImportanceAll(k int) []float64 {
	imp := make([]float64, g.n)
	for v := 0; v < g.n; v++ {
		imp[v] = g.Importance(ID(v), k)
	}
	return imp
}
