package graph

import "testing"

// Before/after numbers for these benchmarks are tracked in CHANGES.md; the
// "before" implementation was a map[ID]struct{} BFS per call and a
// sequential ImportanceAll.

func BenchmarkKHop(b *testing.B) {
	g := randomGraph(5000, 8, 42)
	s := NewScratch(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.KHopOutScratch(ID(i%5000), 2, s)
	}
}

func BenchmarkKHopAlloc(b *testing.B) {
	// The copying convenience wrapper, for comparison with KHopOutScratch.
	g := randomGraph(5000, 8, 42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.KHopOut(ID(i%5000), 2)
	}
}

func BenchmarkImportanceAllParallel(b *testing.B) {
	g := randomGraph(2000, 8, 42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ImportanceAllParallel(2, 0)
	}
}

func BenchmarkImportanceAllSequential(b *testing.B) {
	g := randomGraph(2000, 8, 42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ImportanceAllParallel(2, 1)
	}
}
