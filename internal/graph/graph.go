// Package graph provides the logical graph data model used throughout the
// AliGraph reproduction: simple directed/undirected graphs, Attributed
// Heterogeneous Graphs (AHGs) with typed vertices and edges carrying
// attribute vectors, and dynamic graphs as snapshot series.
//
// A Graph is an immutable, CSR-backed structure produced by a Builder.
// Physical concerns — deduplicated attribute indices, caches, partitions —
// live in internal/storage and internal/partition; this package only models
// the data, per Section 2 of the paper.
package graph

import (
	"fmt"
	"sort"
	"sync"
)

// ID identifies a vertex. IDs are dense: a finalized graph with n vertices
// uses IDs 0..n-1.
type ID = int64

// VertexType identifies one of the registered vertex types of a schema.
type VertexType int32

// EdgeType identifies one of the registered edge types of a schema.
type EdgeType int32

// Schema names the vertex and edge types of an attributed heterogeneous
// graph. A simple graph has exactly one vertex type and one edge type.
type Schema struct {
	vertexTypes []string
	edgeTypes   []string
}

// NewSchema creates a schema with the given type names. Both lists must be
// non-empty; per the AHG definition an AHG has |F_V| >= 2 and/or |F_E| >= 2,
// but simple graphs (one of each) are also representable.
func NewSchema(vertexTypes, edgeTypes []string) (*Schema, error) {
	if len(vertexTypes) == 0 || len(edgeTypes) == 0 {
		return nil, fmt.Errorf("graph: schema requires at least one vertex type and one edge type")
	}
	s := &Schema{
		vertexTypes: append([]string(nil), vertexTypes...),
		edgeTypes:   append([]string(nil), edgeTypes...),
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; intended for tests and
// static schemas.
func MustSchema(vertexTypes, edgeTypes []string) *Schema {
	s, err := NewSchema(vertexTypes, edgeTypes)
	if err != nil {
		panic(err)
	}
	return s
}

// SimpleSchema is the schema of a plain graph: one vertex type "vertex" and
// one edge type "edge".
func SimpleSchema() *Schema { return MustSchema([]string{"vertex"}, []string{"edge"}) }

// NumVertexTypes reports the number of vertex types.
func (s *Schema) NumVertexTypes() int { return len(s.vertexTypes) }

// NumEdgeTypes reports the number of edge types.
func (s *Schema) NumEdgeTypes() int { return len(s.edgeTypes) }

// VertexTypeName returns the name of vertex type t.
func (s *Schema) VertexTypeName(t VertexType) string { return s.vertexTypes[t] }

// EdgeTypeName returns the name of edge type t.
func (s *Schema) EdgeTypeName(t EdgeType) string { return s.edgeTypes[t] }

// VertexTypeByName resolves a vertex type name; ok is false if absent.
func (s *Schema) VertexTypeByName(name string) (VertexType, bool) {
	for i, n := range s.vertexTypes {
		if n == name {
			return VertexType(i), true
		}
	}
	return 0, false
}

// EdgeTypeByName resolves an edge type name; ok is false if absent.
func (s *Schema) EdgeTypeByName(name string) (EdgeType, bool) {
	for i, n := range s.edgeTypes {
		if n == name {
			return EdgeType(i), true
		}
	}
	return 0, false
}

// Heterogeneous reports whether the schema satisfies the AHG heterogeneity
// requirement |F_V| >= 2 and/or |F_E| >= 2.
func (s *Schema) Heterogeneous() bool {
	return len(s.vertexTypes) >= 2 || len(s.edgeTypes) >= 2
}

// Edge is a typed, weighted edge with an optional attribute vector.
type Edge struct {
	Src, Dst ID
	Type     EdgeType
	Weight   float64
	Attr     []float64
}

// adjacency is one direction of a CSR structure for a single edge type.
type adjacency struct {
	offs []int64   // len n+1
	dst  []ID      // len m_t
	w    []float64 // len m_t
	attr []int32   // index into edge attr pool; -1 if none; len m_t or nil
}

func (a *adjacency) neighbors(v ID) []ID {
	return a.dst[a.offs[v]:a.offs[v+1]]
}

func (a *adjacency) weights(v ID) []float64 {
	return a.w[a.offs[v]:a.offs[v+1]]
}

func (a *adjacency) degree(v ID) int {
	return int(a.offs[v+1] - a.offs[v])
}

// Graph is an immutable attributed heterogeneous graph with CSR adjacency
// per edge type and direction. Construct with a Builder.
type Graph struct {
	schema   *Schema
	directed bool

	n int
	m int

	vtype []VertexType
	vattr [][]float64 // raw per-vertex attribute vectors; nil entries allowed

	byVType [][]ID // vertices grouped by type

	out []adjacency // indexed by EdgeType
	in  []adjacency

	edgeAttrs [][]float64 // pool of edge attribute vectors

	scratch sync.Pool // of *Scratch, recycled across k-hop expansions
}

// Schema returns the graph's schema.
func (g *Graph) Schema() *Schema { return g.schema }

// Directed reports whether the graph is directed.
func (g *Graph) Directed() bool { return g.directed }

// NumVertices returns n = |V|.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges returns m = |E| (logical edges; for undirected graphs each edge
// counts once even though it is stored in both directions).
func (g *Graph) NumEdges() int { return g.m }

// VertexType returns the type of vertex v.
func (g *Graph) VertexType(v ID) VertexType { return g.vtype[v] }

// VertexAttr returns the raw attribute vector of v (may be nil). The slice
// is shared; callers must not modify it.
func (g *Graph) VertexAttr(v ID) []float64 { return g.vattr[v] }

// VerticesOfType returns the IDs of all vertices with type t. The slice is
// shared; callers must not modify it.
func (g *Graph) VerticesOfType(t VertexType) []ID { return g.byVType[t] }

// OutNeighbors returns the out-neighbors of v along edges of type t.
// For undirected graphs the full neighborhood is returned.
func (g *Graph) OutNeighbors(v ID, t EdgeType) []ID { return g.out[t].neighbors(v) }

// OutWeights returns the weights aligned with OutNeighbors(v, t).
func (g *Graph) OutWeights(v ID, t EdgeType) []float64 { return g.out[t].weights(v) }

// InNeighbors returns the in-neighbors of v along edges of type t.
func (g *Graph) InNeighbors(v ID, t EdgeType) []ID { return g.in[t].neighbors(v) }

// InWeights returns the weights aligned with InNeighbors(v, t).
func (g *Graph) InWeights(v ID, t EdgeType) []float64 { return g.in[t].weights(v) }

// OutDegree returns the out-degree of v restricted to edge type t.
func (g *Graph) OutDegree(v ID, t EdgeType) int { return g.out[t].degree(v) }

// InDegree returns the in-degree of v restricted to edge type t.
func (g *Graph) InDegree(v ID, t EdgeType) int { return g.in[t].degree(v) }

// TotalOutDegree returns the out-degree of v summed across all edge types.
func (g *Graph) TotalOutDegree(v ID) int {
	d := 0
	for t := range g.out {
		d += g.out[t].degree(v)
	}
	return d
}

// TotalInDegree returns the in-degree of v summed across all edge types.
func (g *Graph) TotalInDegree(v ID) int {
	d := 0
	for t := range g.in {
		d += g.in[t].degree(v)
	}
	return d
}

// Neighbors returns Nb(v): the union (with multiplicity) of out-neighbors of
// v across all edge types. For undirected graphs this is the full
// neighborhood; for directed graphs use both Neighbors and InNeighbors per
// type for the in/out split.
func (g *Graph) Neighbors(v ID) []ID {
	n := make([]ID, 0, g.TotalOutDegree(v))
	for t := range g.out {
		n = append(n, g.out[t].neighbors(v)...)
	}
	return n
}

// EdgeAttr returns the attribute vector of the i-th out-edge of v under type
// t, or nil when the edge carries no attributes.
func (g *Graph) EdgeAttr(v ID, t EdgeType, i int) []float64 {
	a := g.out[t]
	if a.attr == nil {
		return nil
	}
	idx := a.attr[a.offs[v]+int64(i)]
	if idx < 0 {
		return nil
	}
	return g.edgeAttrs[idx]
}

// EdgesOfType calls fn for every stored edge of type t (one direction only
// for undirected graphs is not distinguished; every CSR entry is visited, so
// undirected edges are visited twice unless fn filters src < dst).
func (g *Graph) EdgesOfType(t EdgeType, fn func(src, dst ID, w float64) bool) {
	a := &g.out[t]
	for v := ID(0); v < ID(g.n); v++ {
		lo, hi := a.offs[v], a.offs[v+1]
		for i := lo; i < hi; i++ {
			if !fn(v, a.dst[i], a.w[i]) {
				return
			}
		}
	}
}

// NumEdgesOfType returns the number of CSR entries for edge type t
// (undirected edges count twice).
func (g *Graph) NumEdgesOfType(t EdgeType) int { return len(g.out[t].dst) }

// HasEdge reports whether an edge (u, v) of type t exists.
func (g *Graph) HasEdge(u, v ID, t EdgeType) bool {
	ns := g.out[t].neighbors(u)
	// CSR neighbor lists are sorted by destination at finalize time.
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= v })
	return i < len(ns) && ns[i] == v
}

// Degrees returns the total out-degree of every vertex; useful for
// distribution analysis and negative-sampling tables.
func (g *Graph) Degrees() []int {
	d := make([]int, g.n)
	for v := 0; v < g.n; v++ {
		d[v] = g.TotalOutDegree(ID(v))
	}
	return d
}
