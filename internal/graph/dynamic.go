package graph

// Dynamic models a dynamic graph G^(1), ..., G^(T) as a series of immutable
// snapshots over a shared vertex universe (Section 2). Snapshot t may add or
// remove edges relative to t-1; the Evolving GNN consumes the per-step edge
// deltas, split into "normal evolution" and "burst" links (Section 4.2).
type Dynamic struct {
	Snapshots []*Graph
}

// T returns the number of timestamps.
func (d *Dynamic) T() int { return len(d.Snapshots) }

// At returns G^(t) for 1-based timestamp t, matching the paper's indexing.
func (d *Dynamic) At(t int) *Graph { return d.Snapshots[t-1] }

// EdgeDelta describes the edge changes from one snapshot to the next.
type EdgeDelta struct {
	Added   []Edge
	Removed []Edge
}

// Delta computes the edge delta between snapshots t and t+1 (1-based) for
// the given edge type. Both snapshots must share the vertex universe.
func (d *Dynamic) Delta(t int, et EdgeType) EdgeDelta {
	prev, next := d.At(t), d.At(t+1)
	prevSet := edgeSet(prev, et)
	nextSet := edgeSet(next, et)
	var delta EdgeDelta
	for k, w := range nextSet {
		if _, ok := prevSet[k]; !ok {
			delta.Added = append(delta.Added, Edge{Src: k.src, Dst: k.dst, Type: et, Weight: w})
		}
	}
	for k, w := range prevSet {
		if _, ok := nextSet[k]; !ok {
			delta.Removed = append(delta.Removed, Edge{Src: k.src, Dst: k.dst, Type: et, Weight: w})
		}
	}
	return delta
}

type edgeKey struct{ src, dst ID }

func edgeSet(g *Graph, et EdgeType) map[edgeKey]float64 {
	s := make(map[edgeKey]float64)
	g.EdgesOfType(et, func(src, dst ID, w float64) bool {
		if !g.Directed() && src > dst {
			return true // visit undirected edges once
		}
		s[edgeKey{src, dst}] = w
		return true
	})
	return s
}
