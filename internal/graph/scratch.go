package graph

import (
	"math"
	"runtime"
	"sync"
)

// Scratch holds the reusable state of a k-hop BFS: an epoch-stamped visited
// array plus frontier and result buffers. Reusing one Scratch across many
// expansions makes the steady-state hot path allocation-free — the visited
// set is cleared in O(1) by bumping the epoch instead of reallocating a map.
//
// A Scratch is not safe for concurrent use; give each goroutine its own
// (AcquireScratch/ReleaseScratch pool them per graph). Slices returned by
// the *Scratch k-hop methods alias the scratch buffers and are only valid
// until the next call that uses the same Scratch.
type Scratch struct {
	stamp    []int32 // visited iff stamp[v] == epoch
	epoch    int32
	frontier []ID
	next     []ID
	result   []ID
}

// NewScratch returns a Scratch sized for g. Scratches grow on demand, so the
// zero value also works; sizing up front just avoids the first growth.
func NewScratch(g *Graph) *Scratch {
	return &Scratch{stamp: make([]int32, g.n)}
}

// begin prepares the scratch for a BFS over n vertices: it grows the stamp
// array if needed and opens a fresh epoch, clearing only on epoch wraparound.
func (s *Scratch) begin(n int) {
	if len(s.stamp) < n {
		s.stamp = make([]int32, n)
		s.epoch = 0
	}
	if s.epoch == math.MaxInt32 {
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.epoch = 0
	}
	s.epoch++
}

// AcquireScratch returns a pooled Scratch for BFS over g. Pair with
// ReleaseScratch when done; scratches are recycled across callers, which is
// what keeps steady-state k-hop expansion allocation-free.
func (g *Graph) AcquireScratch() *Scratch {
	if s, ok := g.scratch.Get().(*Scratch); ok {
		return s
	}
	return &Scratch{}
}

// ReleaseScratch returns s to g's pool. The caller must not use s (or any
// slice obtained from it) afterwards.
func (g *Graph) ReleaseScratch(s *Scratch) { g.scratch.Put(s) }

// khopScratch runs the breadth-first expansion of khop over the given
// adjacency direction, writing distinct visited vertices (excluding v) into
// s.result in discovery order. The returned slice aliases s.result.
func (g *Graph) khopScratch(v ID, k int, s *Scratch, adj []adjacency) []ID {
	s.result = s.result[:0]
	if k <= 0 {
		return s.result
	}
	s.begin(g.n)
	s.stamp[v] = s.epoch
	s.frontier = append(s.frontier[:0], v)
	for hop := 0; hop < k && len(s.frontier) > 0; hop++ {
		s.next = s.next[:0]
		for _, u := range s.frontier {
			for t := range adj {
				for _, w := range adj[t].neighbors(u) {
					if s.stamp[w] == s.epoch {
						continue
					}
					s.stamp[w] = s.epoch
					s.next = append(s.next, w)
					s.result = append(s.result, w)
				}
			}
		}
		s.frontier, s.next = s.next, s.frontier
	}
	return s.result
}

// KHopOutScratch is KHopOut using caller-provided scratch; the returned
// slice aliases the scratch and is valid until its next use.
func (g *Graph) KHopOutScratch(v ID, k int, s *Scratch) []ID {
	return g.khopScratch(v, k, s, g.out)
}

// KHopInScratch is KHopIn using caller-provided scratch; the returned slice
// aliases the scratch and is valid until its next use.
func (g *Graph) KHopInScratch(v ID, k int, s *Scratch) []ID {
	return g.khopScratch(v, k, s, g.in)
}

// KHopFrontier returns the vertices exactly h hops from v along out-edges of
// any type (not the 1..h union); per-hop frontiers are what NEIGHBORHOOD
// sampling and the storage caches consume. The returned slice aliases the
// scratch and is valid until its next use; callers that retain it must copy.
// h == 0 returns {v} itself.
func (g *Graph) KHopFrontier(v ID, h int, s *Scratch) []ID {
	s.begin(g.n)
	s.stamp[v] = s.epoch
	s.frontier = append(s.frontier[:0], v)
	for hop := 0; hop < h && len(s.frontier) > 0; hop++ {
		s.next = s.next[:0]
		for _, u := range s.frontier {
			for t := range g.out {
				for _, w := range g.out[t].neighbors(u) {
					if s.stamp[w] == s.epoch {
						continue
					}
					s.stamp[w] = s.epoch
					s.next = append(s.next, w)
				}
			}
		}
		s.frontier, s.next = s.next, s.frontier
	}
	s.result = append(s.result[:0], s.frontier...)
	return s.result
}

// KHopFrontierType is KHopFrontier restricted to out-edges of one type:
// the vertices exactly h hops from v along type-t edges. Per-type frontiers
// are what the neighbor caches serve to typed NEIGHBORHOOD queries. The
// returned slice aliases the scratch; h == 0 returns {v}.
func (g *Graph) KHopFrontierType(v ID, t EdgeType, h int, s *Scratch) []ID {
	s.begin(g.n)
	s.stamp[v] = s.epoch
	s.frontier = append(s.frontier[:0], v)
	for hop := 0; hop < h && len(s.frontier) > 0; hop++ {
		s.next = s.next[:0]
		for _, u := range s.frontier {
			for _, w := range g.out[t].neighbors(u) {
				if s.stamp[w] == s.epoch {
					continue
				}
				s.stamp[w] = s.epoch
				s.next = append(s.next, w)
			}
		}
		s.frontier, s.next = s.next, s.frontier
	}
	s.result = append(s.result[:0], s.frontier...)
	return s.result
}

// ImportanceScratch computes Imp^(k)(v) with caller-provided scratch,
// allocation-free in steady state.
func (g *Graph) ImportanceScratch(v ID, k int, s *Scratch) float64 {
	do := len(g.khopScratch(v, k, s, g.out))
	if do == 0 {
		return 0
	}
	return float64(len(g.khopScratch(v, k, s, g.in))) / float64(do)
}

// ImportanceAllParallel computes Imp^(k) for every vertex, sharding the
// vertex range over workers goroutines, each with its own Scratch. The
// per-vertex BFS is embarrassingly parallel (the graph is immutable), so
// speedup is near-linear until memory bandwidth saturates. workers <= 0
// selects GOMAXPROCS.
func (g *Graph) ImportanceAllParallel(k, workers int) []float64 {
	imp := make([]float64, g.n)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > g.n {
		workers = g.n
	}
	if workers <= 1 {
		s := g.AcquireScratch()
		for v := 0; v < g.n; v++ {
			imp[v] = g.ImportanceScratch(ID(v), k, s)
		}
		g.ReleaseScratch(s)
		return imp
	}
	var wg sync.WaitGroup
	chunk := (g.n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > g.n {
			hi = g.n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			s := g.AcquireScratch()
			for v := lo; v < hi; v++ {
				imp[v] = g.ImportanceScratch(ID(v), k, s)
			}
			g.ReleaseScratch(s)
		}(lo, hi)
	}
	wg.Wait()
	return imp
}
