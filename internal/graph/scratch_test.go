package graph

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// randomGraph builds a directed random graph for scratch/BFS tests.
func randomGraph(n, deg int, seed int64) *Graph {
	b := NewBuilder(SimpleSchema(), true)
	b.AddVertices(0, n)
	rng := rand.New(rand.NewSource(seed))
	for v := 0; v < n; v++ {
		for j := 0; j < deg; j++ {
			b.AddEdge(ID(v), ID(rng.Intn(n)), 0, 1+rng.Float64())
		}
	}
	return b.Finalize()
}

// khopReference is the original map-based BFS, kept as an oracle for the
// epoch-stamped implementation.
func khopReference(g *Graph, v ID, k int, out bool) []ID {
	if k <= 0 {
		return nil
	}
	nbrs := func(u ID) []ID {
		if out {
			return g.Neighbors(u)
		}
		var ns []ID
		for t := 0; t < g.Schema().NumEdgeTypes(); t++ {
			ns = append(ns, g.InNeighbors(u, EdgeType(t))...)
		}
		return ns
	}
	seen := map[ID]struct{}{v: {}}
	frontier := []ID{v}
	var result []ID
	for hop := 0; hop < k && len(frontier) > 0; hop++ {
		var next []ID
		for _, u := range frontier {
			for _, w := range nbrs(u) {
				if _, ok := seen[w]; ok {
					continue
				}
				seen[w] = struct{}{}
				next = append(next, w)
				result = append(result, w)
			}
		}
		frontier = next
	}
	return result
}

func TestKHopScratchMatchesReference(t *testing.T) {
	g := randomGraph(300, 4, 11)
	s := NewScratch(g)
	for _, k := range []int{0, 1, 2, 3} {
		for v := ID(0); v < 50; v++ {
			got := append([]ID(nil), g.KHopOutScratch(v, k, s)...)
			want := khopReference(g, v, k, true)
			if len(got) != len(want) {
				t.Fatalf("k=%d v=%d: out size %d != %d", k, v, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("k=%d v=%d: out[%d] = %d, want %d", k, v, i, got[i], want[i])
				}
			}
			gotIn := len(g.KHopInScratch(v, k, s))
			if wantIn := len(khopReference(g, v, k, false)); gotIn != wantIn {
				t.Fatalf("k=%d v=%d: in count %d != %d", k, v, gotIn, wantIn)
			}
		}
	}
}

func TestKHopConvenienceUsesScratch(t *testing.T) {
	g := randomGraph(200, 4, 5)
	for v := ID(0); v < 20; v++ {
		if got, want := g.KHopOutCount(v, 2), len(g.KHopOut(v, 2)); got != want {
			t.Fatalf("v=%d: count %d != len %d", v, got, want)
		}
	}
}

func TestKHopFrontier(t *testing.T) {
	// Chain 0 -> 1 -> 2 -> 3 plus a shortcut 0 -> 2: vertex 2 is reached at
	// hop 1, so the hop-2 frontier from 0 is exactly {3}.
	b := NewBuilder(SimpleSchema(), true)
	b.AddVertices(0, 4)
	b.AddEdge(0, 1, 0, 1)
	b.AddEdge(1, 2, 0, 1)
	b.AddEdge(2, 3, 0, 1)
	b.AddEdge(0, 2, 0, 1)
	g := b.Finalize()
	s := NewScratch(g)

	if fr := g.KHopFrontier(0, 0, s); len(fr) != 1 || fr[0] != 0 {
		t.Fatalf("hop-0 frontier = %v, want [0]", fr)
	}
	fr := append([]ID(nil), g.KHopFrontier(0, 1, s)...)
	sort.Slice(fr, func(i, j int) bool { return fr[i] < fr[j] })
	if len(fr) != 2 || fr[0] != 1 || fr[1] != 2 {
		t.Fatalf("hop-1 frontier = %v, want [1 2]", fr)
	}
	if fr := g.KHopFrontier(0, 2, s); len(fr) != 1 || fr[0] != 3 {
		t.Fatalf("hop-2 frontier = %v, want [3]", fr)
	}
	if fr := g.KHopFrontier(0, 3, s); len(fr) != 0 {
		t.Fatalf("hop-3 frontier = %v, want empty", fr)
	}
}

func TestImportanceAllParallelMatchesSequential(t *testing.T) {
	g := randomGraph(250, 3, 7)
	seq := g.ImportanceAllParallel(2, 1)
	for _, workers := range []int{2, 4, 9, 1000} {
		par := g.ImportanceAllParallel(2, workers)
		for v := range seq {
			if seq[v] != par[v] {
				t.Fatalf("workers=%d v=%d: %f != %f", workers, v, par[v], seq[v])
			}
		}
	}
	// And against the single-vertex path.
	for v := ID(0); v < 25; v++ {
		if got := g.Importance(v, 2); got != seq[v] {
			t.Fatalf("Importance(%d) = %f, want %f", v, got, seq[v])
		}
	}
}

// TestScratchConcurrent drives the pooled-scratch BFS and the parallel
// importance sweep from many goroutines at once; run with -race.
func TestScratchConcurrent(t *testing.T) {
	g := randomGraph(400, 4, 3)
	want := g.ImportanceAllParallel(2, 1)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				v := ID(rng.Intn(g.NumVertices()))
				if got := g.Importance(v, 2); got != want[v] {
					t.Errorf("concurrent Importance(%d) = %f, want %f", v, got, want[v])
					return
				}
			}
		}(int64(w))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			par := g.ImportanceAllParallel(2, 4)
			for v := range want {
				if par[v] != want[v] {
					t.Errorf("concurrent sweep v=%d: %f != %f", v, par[v], want[v])
					return
				}
			}
		}
	}()
	wg.Wait()
}

func TestScratchSteadyStateAllocFree(t *testing.T) {
	g := randomGraph(500, 6, 1)
	s := NewScratch(g)
	// Warm the buffers to steady-state size.
	for v := ID(0); v < 100; v++ {
		g.KHopOutScratch(v, 2, s)
	}
	allocs := testing.AllocsPerRun(200, func() {
		g.KHopOutScratch(7, 2, s)
		g.KHopFrontier(7, 2, s)
		g.ImportanceScratch(7, 2, s)
	})
	if allocs > 0 {
		t.Fatalf("steady-state scratch BFS allocates %.1f allocs/op, want 0", allocs)
	}
}
