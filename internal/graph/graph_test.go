package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func buildTriangle(t *testing.T, directed bool) *Graph {
	t.Helper()
	b := NewBuilder(SimpleSchema(), directed)
	b.AddVertices(0, 3)
	b.AddEdge(0, 1, 0, 1.0)
	b.AddEdge(1, 2, 0, 2.0)
	b.AddEdge(2, 0, 0, 3.0)
	return b.Finalize()
}

func TestSchemaBasics(t *testing.T) {
	s := MustSchema([]string{"user", "item"}, []string{"click", "buy"})
	if s.NumVertexTypes() != 2 || s.NumEdgeTypes() != 2 {
		t.Fatalf("type counts = %d,%d", s.NumVertexTypes(), s.NumEdgeTypes())
	}
	if !s.Heterogeneous() {
		t.Fatal("expected heterogeneous schema")
	}
	if SimpleSchema().Heterogeneous() {
		t.Fatal("simple schema must not be heterogeneous")
	}
	vt, ok := s.VertexTypeByName("item")
	if !ok || vt != 1 {
		t.Fatalf("VertexTypeByName(item) = %d,%v", vt, ok)
	}
	if _, ok := s.EdgeTypeByName("nope"); ok {
		t.Fatal("unexpected edge type resolution")
	}
	if s.VertexTypeName(0) != "user" || s.EdgeTypeName(1) != "buy" {
		t.Fatal("type name mismatch")
	}
}

func TestNewSchemaErrors(t *testing.T) {
	if _, err := NewSchema(nil, []string{"e"}); err == nil {
		t.Fatal("expected error for empty vertex types")
	}
	if _, err := NewSchema([]string{"v"}, nil); err == nil {
		t.Fatal("expected error for empty edge types")
	}
}

func TestDirectedTriangle(t *testing.T) {
	g := buildTriangle(t, true)
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if got := g.OutNeighbors(0, 0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("out(0) = %v", got)
	}
	if got := g.InNeighbors(0, 0); len(got) != 1 || got[0] != 2 {
		t.Fatalf("in(0) = %v", got)
	}
	if w := g.OutWeights(2, 0); len(w) != 1 || w[0] != 3.0 {
		t.Fatalf("weights(2) = %v", w)
	}
	if !g.HasEdge(0, 1, 0) || g.HasEdge(1, 0, 0) {
		t.Fatal("HasEdge direction wrong")
	}
}

func TestUndirectedTriangle(t *testing.T) {
	g := buildTriangle(t, false)
	if g.NumEdges() != 3 {
		t.Fatalf("m = %d", g.NumEdges())
	}
	for v := ID(0); v < 3; v++ {
		if d := g.OutDegree(v, 0); d != 2 {
			t.Fatalf("degree(%d) = %d", v, d)
		}
	}
	if !g.HasEdge(1, 0, 0) {
		t.Fatal("undirected edge should exist in both directions")
	}
}

func TestVerticesOfTypeAndAttrs(t *testing.T) {
	s := MustSchema([]string{"user", "item"}, []string{"click"})
	b := NewBuilder(s, true)
	u := b.AddVertex(0, []float64{1, 2, 3})
	i1 := b.AddVertex(1, []float64{4})
	i2 := b.AddVertex(1, nil)
	b.AddEdge(u, i1, 0, 1)
	b.AddEdge(u, i2, 0, 1)
	g := b.Finalize()

	users := g.VerticesOfType(0)
	items := g.VerticesOfType(1)
	if len(users) != 1 || len(items) != 2 {
		t.Fatalf("groups: %v %v", users, items)
	}
	if got := g.VertexAttr(u); len(got) != 3 || got[2] != 3 {
		t.Fatalf("attr(u) = %v", got)
	}
	if g.VertexAttr(i2) != nil {
		t.Fatal("expected nil attr")
	}
	if g.VertexType(i1) != 1 {
		t.Fatal("vertex type mismatch")
	}
}

func TestEdgeAttrs(t *testing.T) {
	b := NewBuilder(SimpleSchema(), true)
	b.AddVertices(0, 2)
	b.AddEdgeAttr(0, 1, 0, 1.0, []float64{9, 8})
	b.AddEdge(1, 0, 0, 1.0)
	g := b.Finalize()
	if a := g.EdgeAttr(0, 0, 0); len(a) != 2 || a[0] != 9 {
		t.Fatalf("edge attr = %v", a)
	}
	if a := g.EdgeAttr(1, 0, 0); a != nil {
		t.Fatalf("expected nil edge attr, got %v", a)
	}
}

func TestEdgesOfTypeIteration(t *testing.T) {
	g := buildTriangle(t, true)
	var cnt int
	var totalW float64
	g.EdgesOfType(0, func(src, dst ID, w float64) bool {
		cnt++
		totalW += w
		return true
	})
	if cnt != 3 || totalW != 6.0 {
		t.Fatalf("cnt=%d w=%f", cnt, totalW)
	}
	// Early termination.
	cnt = 0
	g.EdgesOfType(0, func(src, dst ID, w float64) bool {
		cnt++
		return false
	})
	if cnt != 1 {
		t.Fatalf("early stop visited %d", cnt)
	}
}

func TestKHop(t *testing.T) {
	// Path 0 -> 1 -> 2 -> 3
	b := NewBuilder(SimpleSchema(), true)
	b.AddVertices(0, 4)
	b.AddEdge(0, 1, 0, 1)
	b.AddEdge(1, 2, 0, 1)
	b.AddEdge(2, 3, 0, 1)
	g := b.Finalize()

	if got := g.KHopOutCount(0, 1); got != 1 {
		t.Fatalf("D_o^1(0) = %d", got)
	}
	if got := g.KHopOutCount(0, 2); got != 2 {
		t.Fatalf("D_o^2(0) = %d", got)
	}
	if got := g.KHopOutCount(0, 3); got != 3 {
		t.Fatalf("D_o^3(0) = %d", got)
	}
	if got := g.KHopInCount(3, 2); got != 2 {
		t.Fatalf("D_i^2(3) = %d", got)
	}
	if got := g.KHopOut(3, 2); len(got) != 0 {
		t.Fatalf("sink should have no out-neighbors, got %v", got)
	}
}

func TestKHopDedup(t *testing.T) {
	// Diamond: 0->1, 0->2, 1->3, 2->3. D_o^2(0) must be 3 (1,2,3), not 4.
	b := NewBuilder(SimpleSchema(), true)
	b.AddVertices(0, 4)
	b.AddEdge(0, 1, 0, 1)
	b.AddEdge(0, 2, 0, 1)
	b.AddEdge(1, 3, 0, 1)
	b.AddEdge(2, 3, 0, 1)
	g := b.Finalize()
	if got := g.KHopOutCount(0, 2); got != 3 {
		t.Fatalf("D_o^2(0) = %d, want 3", got)
	}
}

func TestImportance(t *testing.T) {
	// Hub: many in-neighbors, one out-neighbor => high importance.
	b := NewBuilder(SimpleSchema(), true)
	hub := b.AddVertex(0, nil)
	sink := b.AddVertex(0, nil)
	b.AddEdge(hub, sink, 0, 1)
	for i := 0; i < 10; i++ {
		v := b.AddVertex(0, nil)
		b.AddEdge(v, hub, 0, 1)
	}
	g := b.Finalize()
	if imp := g.Importance(hub, 1); imp != 10.0 {
		t.Fatalf("Imp^1(hub) = %f, want 10", imp)
	}
	if imp := g.Importance(sink, 1); imp != 0 {
		t.Fatalf("Imp^1(sink) = %f, want 0 (nothing to cache)", imp)
	}
	imps := g.ImportanceAll(1)
	if imps[hub] != g.Importance(hub, 1) {
		t.Fatal("ImportanceAll mismatch")
	}
}

func TestPowerLawFit(t *testing.T) {
	// Synthesize an exact power law histogram: count(v) = C * v^-2.
	hist := make(map[int]int)
	for v := 1; v <= 50; v++ {
		hist[v] = int(1e6 / float64(v*v))
	}
	fit := FitPowerLaw(hist)
	if fit.Alpha < 1.8 || fit.Alpha > 2.2 {
		t.Fatalf("alpha = %f, want ~2", fit.Alpha)
	}
	if fit.R2 < 0.99 {
		t.Fatalf("r2 = %f", fit.R2)
	}
}

func TestPowerLawFitDegenerate(t *testing.T) {
	if fit := FitPowerLaw(map[int]int{1: 5}); fit.Alpha != 0 {
		t.Fatalf("degenerate fit alpha = %f", fit.Alpha)
	}
	if fit := FitPowerLaw(nil); fit.N != 0 {
		t.Fatal("nil histogram")
	}
}

func TestDegreePowerLawOnScaleFree(t *testing.T) {
	// Preferential-attachment graph should have a heavy-tailed degree
	// distribution with a plausible power-law exponent.
	rng := rand.New(rand.NewSource(7))
	b := NewBuilder(SimpleSchema(), true)
	const n = 3000
	b.AddVertices(0, n)
	targets := []ID{0, 1}
	b.AddEdge(1, 0, 0, 1)
	for v := ID(2); v < n; v++ {
		for e := 0; e < 2; e++ {
			dst := targets[rng.Intn(len(targets))]
			if dst == v {
				continue
			}
			b.AddEdge(v, dst, 0, 1)
			targets = append(targets, dst, v)
		}
	}
	g := b.Finalize()
	fit := FitPowerLaw(Histogram(degreesIn(g)))
	if fit.Alpha < 1.0 || fit.Alpha > 4.0 {
		t.Fatalf("implausible alpha %f", fit.Alpha)
	}
}

func degreesIn(g *Graph) []int {
	d := make([]int, g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		d[v] = g.TotalInDegree(ID(v))
	}
	return d
}

func TestDynamicDelta(t *testing.T) {
	mk := func(edges [][2]ID) *Graph {
		b := NewBuilder(SimpleSchema(), true)
		b.AddVertices(0, 5)
		for _, e := range edges {
			b.AddEdge(e[0], e[1], 0, 1)
		}
		return b.Finalize()
	}
	d := &Dynamic{Snapshots: []*Graph{
		mk([][2]ID{{0, 1}, {1, 2}}),
		mk([][2]ID{{1, 2}, {2, 3}, {3, 4}}),
	}}
	if d.T() != 2 {
		t.Fatalf("T = %d", d.T())
	}
	delta := d.Delta(1, 0)
	if len(delta.Added) != 2 || len(delta.Removed) != 1 {
		t.Fatalf("delta = +%d -%d", len(delta.Added), len(delta.Removed))
	}
	if delta.Removed[0].Src != 0 || delta.Removed[0].Dst != 1 {
		t.Fatalf("removed = %+v", delta.Removed[0])
	}
}

func TestBuilderPanics(t *testing.T) {
	b := NewBuilder(SimpleSchema(), true)
	b.AddVertices(0, 1)
	mustPanic(t, func() { b.AddEdge(0, 5, 0, 1) })
	mustPanic(t, func() { b.AddEdge(0, 0, 9, 1) })
	mustPanic(t, func() { b.AddVertex(3, nil) })
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}

// Property: for any random directed graph, every out-edge (u,v) appears as
// an in-edge of v, and degree sums match edge counts.
func TestQuickCSRSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		b := NewBuilder(SimpleSchema(), true)
		b.AddVertices(0, n)
		m := rng.Intn(120)
		for i := 0; i < m; i++ {
			b.AddEdge(ID(rng.Intn(n)), ID(rng.Intn(n)), 0, 1)
		}
		g := b.Finalize()
		outSum, inSum := 0, 0
		for v := 0; v < n; v++ {
			outSum += g.OutDegree(ID(v), 0)
			inSum += g.InDegree(ID(v), 0)
		}
		if outSum != m || inSum != m {
			return false
		}
		for v := ID(0); v < ID(n); v++ {
			for _, u := range g.OutNeighbors(v, 0) {
				found := false
				for _, w := range g.InNeighbors(u, 0) {
					if w == v {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: neighbor lists are sorted after finalize (HasEdge relies on it).
func TestQuickSortedNeighbors(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		b := NewBuilder(SimpleSchema(), false)
		b.AddVertices(0, n)
		for i := 0; i < 80; i++ {
			b.AddEdge(ID(rng.Intn(n)), ID(rng.Intn(n)), 0, 1)
		}
		g := b.Finalize()
		for v := ID(0); v < ID(n); v++ {
			ns := g.OutNeighbors(v, 0)
			for i := 1; i < len(ns); i++ {
				if ns[i-1] > ns[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
