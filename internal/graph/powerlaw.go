package graph

import "math"

// This file provides the empirical power-law analysis used to validate
// Theorems 1 and 2 of the paper: if the in/out-degree distributions are
// power-law, then k-hop neighborhood sizes and the importance metric are
// power-law too — which is why caching only a small set of important
// vertices captures most remote traffic.

// Histogram counts occurrences of each value in xs; zero values are dropped
// (log-log fits are undefined at zero).
func Histogram(xs []int) map[int]int {
	h := make(map[int]int)
	for _, x := range xs {
		if x > 0 {
			h[x]++
		}
	}
	return h
}

// PowerLawFit holds the result of a least-squares fit of log(count) against
// log(value): count ∝ value^(-Alpha). R2 is the coefficient of
// determination of the log-log regression; values near 1 indicate a good
// power-law fit.
type PowerLawFit struct {
	Alpha float64
	R2    float64
	N     int // number of distinct histogram points used
}

// FitPowerLaw fits a power law to a histogram of positive integer
// observations via linear regression in log-log space. It returns a zero
// fit when fewer than three distinct values are present.
func FitPowerLaw(hist map[int]int) PowerLawFit {
	if len(hist) < 3 {
		return PowerLawFit{N: len(hist)}
	}
	var sx, sy, sxx, sxy float64
	n := 0
	for v, c := range hist {
		if v <= 0 || c <= 0 {
			continue
		}
		x := math.Log(float64(v))
		y := math.Log(float64(c))
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		n++
	}
	if n < 3 {
		return PowerLawFit{N: n}
	}
	fn := float64(n)
	denom := fn*sxx - sx*sx
	if denom == 0 {
		return PowerLawFit{N: n}
	}
	slope := (fn*sxy - sx*sy) / denom
	intercept := (sy - slope*sx) / fn

	// R^2 of the log-log fit.
	meanY := sy / fn
	var ssTot, ssRes float64
	for v, c := range hist {
		if v <= 0 || c <= 0 {
			continue
		}
		x := math.Log(float64(v))
		y := math.Log(float64(c))
		pred := intercept + slope*x
		ssRes += (y - pred) * (y - pred)
		ssTot += (y - meanY) * (y - meanY)
	}
	r2 := 0.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return PowerLawFit{Alpha: -slope, R2: r2, N: n}
}

// DegreePowerLaw fits a power law to the total out-degree distribution.
func (g *Graph) DegreePowerLaw() PowerLawFit {
	return FitPowerLaw(Histogram(g.Degrees()))
}

// ImportancePowerLaw fits a power law to the bucketed Imp^(k) distribution,
// validating Theorem 2 empirically. Importances are bucketed at resolution
// 0.1 and shifted to positive integers.
func (g *Graph) ImportancePowerLaw(k int) PowerLawFit {
	imps := g.ImportanceAll(k)
	buckets := make([]int, 0, len(imps))
	for _, x := range imps {
		b := int(x*10) + 1
		buckets = append(buckets, b)
	}
	return FitPowerLaw(Histogram(buckets))
}
