package storage

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestLRUBasic(t *testing.T) {
	c := NewLRU(2)
	c.Put(1, "a")
	c.Put(2, "b")
	if v, ok := c.Get(1); !ok || v.(string) != "a" {
		t.Fatalf("get(1) = %v,%v", v, ok)
	}
	c.Put(3, "c") // evicts 2 (1 was just used)
	if _, ok := c.Get(2); ok {
		t.Fatal("2 should be evicted")
	}
	if _, ok := c.Get(1); !ok {
		t.Fatal("1 should remain")
	}
	if _, ok := c.Get(3); !ok {
		t.Fatal("3 should be cached")
	}
	hits, misses, ev := c.Stats()
	if hits != 3 || misses != 1 || ev != 1 {
		t.Fatalf("stats = %d,%d,%d", hits, misses, ev)
	}
	if hr := c.HitRate(); hr != 0.75 {
		t.Fatalf("hit rate = %f", hr)
	}
}

func TestLRUUpdateExisting(t *testing.T) {
	c := NewLRU(2)
	c.Put(1, "a")
	c.Put(1, "a2")
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
	if v, _ := c.Get(1); v.(string) != "a2" {
		t.Fatalf("v = %v", v)
	}
}

func TestLRUZeroCapacity(t *testing.T) {
	c := NewLRU(0)
	c.Put(1, "a")
	if _, ok := c.Get(1); ok {
		t.Fatal("zero-cap cache must store nothing")
	}
	if c.HitRate() != 0 {
		t.Fatal("hit rate should be 0")
	}
}

// Property: LRU never exceeds capacity and most-recent insertions survive.
func TestQuickLRUCapacity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		capn := 1 + rng.Intn(16)
		c := NewLRU(capn)
		var last int64
		for i := 0; i < 200; i++ {
			k := int64(rng.Intn(64))
			c.Put(k, k)
			last = k
			if c.Len() > capn {
				return false
			}
		}
		_, ok := c.Get(last)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAttributeIndexDedup(t *testing.T) {
	ai := NewAttributeIndex(8)
	a := ai.Intern([]float64{1, 2})
	b := ai.Intern([]float64{1, 2})
	c := ai.Intern([]float64{3})
	if a != b {
		t.Fatalf("identical vectors should dedup: %d vs %d", a, b)
	}
	if a == c {
		t.Fatal("distinct vectors must not collide")
	}
	if ai.NumDistinct() != 2 {
		t.Fatalf("distinct = %d", ai.NumDistinct())
	}
	if ai.Intern(nil) != -1 {
		t.Fatal("nil must intern to -1")
	}
	if ai.Lookup(-1) != nil || ai.Direct(-1) != nil {
		t.Fatal("index -1 must resolve to nil")
	}
	if got := ai.Lookup(a); len(got) != 2 || got[1] != 2 {
		t.Fatalf("lookup = %v", got)
	}
	if ai.Bytes() != 8*3 {
		t.Fatalf("bytes = %d", ai.Bytes())
	}
}

func TestAttributeIndexNoFloatCollision(t *testing.T) {
	ai := NewAttributeIndex(8)
	a := ai.Intern([]float64{1.0})
	b := ai.Intern([]float64{1.0000000001})
	if a == b {
		t.Fatal("nearby floats must not dedup")
	}
}

func buildUserItem(t *testing.T) *graph.Graph {
	t.Helper()
	s := graph.MustSchema([]string{"user", "item"}, []string{"click", "buy"})
	b := graph.NewBuilder(s, true)
	// 4 users sharing 2 distinct attribute vectors; 2 items.
	maleAttr := []float64{1, 0}
	femaleAttr := []float64{0, 1}
	u0 := b.AddVertex(0, maleAttr)
	u1 := b.AddVertex(0, maleAttr)
	u2 := b.AddVertex(0, femaleAttr)
	u3 := b.AddVertex(0, femaleAttr)
	i0 := b.AddVertex(1, []float64{100})
	i1 := b.AddVertex(1, []float64{200})
	for _, u := range []graph.ID{u0, u1, u2, u3} {
		b.AddEdge(u, i0, 0, 1)
	}
	b.AddEdge(u0, i1, 1, 1)
	return b.Finalize()
}

func TestStoreDedupAndSpace(t *testing.T) {
	g := buildUserItem(t)
	s := BuildStore(g, DefaultStoreOptions())
	if s.VIndex.NumDistinct() != 4 { // male, female, item100, item200
		t.Fatalf("distinct vertex attrs = %d", s.VIndex.NumDistinct())
	}
	if s.VertexAttrIndex(0) != s.VertexAttrIndex(1) {
		t.Fatal("shared attrs must share index")
	}
	if got := s.VertexAttr(2); len(got) != 2 || got[1] != 1 {
		t.Fatalf("attr(u2) = %v", got)
	}
	rep := s.Space()
	if rep.DedupBytes <= 0 || rep.InlineBytes <= 0 {
		t.Fatalf("space report: %+v", rep)
	}
	if rep.Ratio <= 1.0 {
		t.Fatalf("dedup should save space on this graph: ratio=%f", rep.Ratio)
	}
}

func hubGraph(nSpokes int) *graph.Graph {
	b := graph.NewBuilder(graph.SimpleSchema(), true)
	hub := b.AddVertex(0, nil)
	sink := b.AddVertex(0, nil)
	b.AddEdge(hub, sink, 0, 1)
	for i := 0; i < nSpokes; i++ {
		v := b.AddVertex(0, nil)
		b.AddEdge(v, hub, 0, 1)
	}
	return b.Finalize()
}

func TestSelectImportant(t *testing.T) {
	g := hubGraph(10)
	// Hub has Imp^1 = 10/1 = 10; spokes have Imp^1 = 0/1 = 0; sink = 1/0 -> 1.
	sel := SelectImportant(g, 1, 5.0)
	if len(sel) != 1 || sel[0] != 0 {
		t.Fatalf("selected = %v", sel)
	}
}

func TestImportanceCache(t *testing.T) {
	g := hubGraph(10)
	c := NewImportanceCache(g, []float64{5.0, 5.0})
	if c.CachedVertices() != 1 {
		t.Fatalf("cached = %d", c.CachedVertices())
	}
	ns, ok := c.Get(0, 0, 1, 0)
	if !ok || len(ns) != 1 || ns[0] != 1 {
		t.Fatalf("hop1(hub) = %v,%v", ns, ok)
	}
	// Hop 2 of the hub is empty (sink has no out-edges) but must be cached.
	ns2, ok2 := c.Get(0, 0, 2, 0)
	if !ok2 || len(ns2) != 0 {
		t.Fatalf("hop2(hub) = %v,%v", ns2, ok2)
	}
	if _, ok := c.Get(2, 0, 1, 0); ok {
		t.Fatal("spoke should not be cached")
	}
	if CacheRate(c, g.NumVertices()) <= 0 {
		t.Fatal("cache rate must be positive")
	}
}

func TestImportanceCacheTopFraction(t *testing.T) {
	g := hubGraph(20)
	c := NewImportanceCacheTopFraction(g, 2, 0.1)
	want := int(0.1 * float64(g.NumVertices()))
	if c.CachedVertices() != want {
		t.Fatalf("cached = %d want %d", c.CachedVertices(), want)
	}
	// The hub must rank first.
	if _, ok := c.Get(0, 0, 1, 0); !ok {
		t.Fatal("hub should be among the top fraction")
	}
}

func TestRandomCache(t *testing.T) {
	g := hubGraph(20)
	rng := rand.New(rand.NewSource(1))
	c := NewRandomCache(g, 2, 0.5, rng)
	want := int(0.5 * float64(g.NumVertices()))
	if c.CachedVertices() != want {
		t.Fatalf("cached = %d want %d", c.CachedVertices(), want)
	}
}

func TestLRUNeighborCache(t *testing.T) {
	c := NewLRUNeighborCache(2)
	if _, ok := c.Get(1, 0, 1, 0); ok {
		t.Fatal("empty cache hit")
	}
	c.Observe(1, 0, 1, 0, 0, []graph.ID{2})
	c.Observe(2, 0, 1, 0, 0, []graph.ID{3})
	c.Observe(3, 0, 1, 0, 0, []graph.ID{4}) // evicts (1,0,1)
	if _, ok := c.Get(1, 0, 1, 0); ok {
		t.Fatal("expected eviction of oldest entry")
	}
	if ns, ok := c.Get(3, 0, 1, 0); !ok || ns[0] != 4 {
		t.Fatalf("get(3) = %v,%v", ns, ok)
	}
	// Entries are keyed by edge type: type 1 of vertex 3 is a miss.
	if _, ok := c.Get(3, 1, 1, 0); ok {
		t.Fatal("cross-type cache hit")
	}
}

func TestNoCache(t *testing.T) {
	var c NoCache
	if _, ok := c.Get(1, 0, 1, 0); ok {
		t.Fatal("NoCache must always miss")
	}
	c.Observe(1, 0, 1, 0, 0, nil)
	if c.CachedVertices() != 0 || c.Name() != "none" {
		t.Fatal("NoCache identity")
	}
}

func TestCacheRateDecreasesWithThreshold(t *testing.T) {
	// On a power-law-ish graph, raising tau must not increase cache rate
	// (Figure 8 shape).
	rng := rand.New(rand.NewSource(42))
	b := graph.NewBuilder(graph.SimpleSchema(), true)
	const n = 400
	b.AddVertices(0, n)
	targets := []graph.ID{0, 1}
	b.AddEdge(1, 0, 0, 1)
	for v := graph.ID(2); v < n; v++ {
		for e := 0; e < 2; e++ {
			dst := targets[rng.Intn(len(targets))]
			if dst != v {
				b.AddEdge(v, dst, 0, 1)
				targets = append(targets, dst, v)
			}
		}
	}
	g := b.Finalize()
	prev := 2.0
	for _, tau := range []float64{0.05, 0.2, 0.45} {
		c := NewImportanceCache(g, []float64{tau, tau})
		rate := CacheRate(c, g.NumVertices())
		if rate > prev {
			t.Fatalf("cache rate increased with threshold: %f > %f at tau=%f", rate, prev, tau)
		}
		prev = rate
	}
}

// TestLRUNeighborCacheEpochValidity: entries carry [since, through]
// validity; a Get outside the interval is an epoch miss, a re-validating
// Observe extends it, and a newer install stamp supersedes the entry.
func TestLRUNeighborCacheEpochValidity(t *testing.T) {
	c := NewLRUNeighborCache(8)
	old := []graph.ID{2, 3}
	c.Observe(1, 0, 1, 0, 0, old) // fetched at epoch 0, installed at 0
	if _, ok := c.Get(1, 0, 1, 0); !ok {
		t.Fatal("entry must be valid at its fetch epoch")
	}
	// Epoch 3 is past the entry's known-unchanged horizon: epoch miss.
	if _, ok := c.Get(1, 0, 1, 3); ok {
		t.Fatal("entry served past its validity interval")
	}
	if h, m, em := c.Counters(); h != 1 || m != 0 || em != 1 {
		t.Fatalf("counters = %d/%d/%d, want 1 hit, 0 misses, 1 epoch miss", h, m, em)
	}
	// Re-validation: same install stamp observed at epoch 3 extends.
	c.Observe(1, 0, 1, 3, 0, old)
	for e := uint64(0); e <= 3; e++ {
		if ns, ok := c.Get(1, 0, 1, e); !ok || ns[0] != 2 {
			t.Fatalf("re-validated entry invalid at epoch %d", e)
		}
	}
	// Supersede: the vertex was rewritten at epoch 5.
	rewritten := []graph.ID{9}
	c.Observe(1, 0, 1, 5, 5, rewritten)
	if _, ok := c.Get(1, 0, 1, 3); ok {
		t.Fatal("pre-rewrite epoch served the rewritten list")
	}
	if ns, ok := c.Get(1, 0, 1, 5); !ok || ns[0] != 9 {
		t.Fatalf("rewritten entry not served at its epoch: %v %v", ns, ok)
	}
	if c.HitRate() <= 0 {
		t.Fatal("hit rate not tracked")
	}
}

// TestStaticCacheEpochRevalidation: static caches answer later epochs only
// after a fetch confirmed the vertex untouched there (Since == 0 extends),
// never admit new keys, and drop out for vertices an update rewrote.
func TestStaticCacheEpochRevalidation(t *testing.T) {
	g := hubGraph(10)
	c := NewImportanceCache(g, []float64{5.0})
	if _, ok := c.Get(0, 0, 1, 0); !ok {
		t.Fatal("hub not cached at build epoch")
	}
	// A later epoch misses until re-validated.
	if _, ok := c.Get(0, 0, 1, 2); ok {
		t.Fatal("static cache answered an unvalidated epoch")
	}
	c.Observe(0, 0, 1, 2, 0, nil) // reply: still the epoch-0 list at epoch 2
	if _, ok := c.Get(0, 0, 1, 2); !ok {
		t.Fatal("re-validated static entry still missing")
	}
	if _, ok := c.Get(0, 0, 1, 1); !ok {
		t.Fatal("interval [0,2] must cover epoch 1")
	}
	// The vertex was rewritten at epoch 4: the stamp mismatch means the
	// static entry can never re-validate past it.
	c.Observe(0, 0, 1, 4, 4, []graph.ID{5})
	if _, ok := c.Get(0, 0, 1, 4); ok {
		t.Fatal("static cache served a vertex an update rewrote")
	}
	// Static membership: observes never admit new keys.
	c.Observe(2, 0, 1, 0, 0, []graph.ID{0})
	if _, ok := c.Get(2, 0, 1, 0); ok {
		t.Fatal("static cache admitted a new entry")
	}
	if ad, ok := interface{}(c).(Admitter); !ok || ad.Admits() {
		t.Fatal("static cache must report Admits() == false")
	}
}
