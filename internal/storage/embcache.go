package storage

import (
	"container/list"
	"sort"
	"sync"

	"repro/internal/graph"
)

// EmbeddingCache is the serving tier's epoch-aware embedding store: the
// validity-interval seam the neighbor caches established (PR 5), applied to
// computed embeddings instead of adjacency lists. An entry is an embedding
// vector plus the exact dependency set it was computed from (the sampled
// k-hop context) and a per-shard basis — the newest epoch of each shard at
// which the entry is PROVEN current. Three clocks interact:
//
//   - heads: the newest epoch observed per shard, by any means (reply
//     stamps, head probes). The staleness clock.
//   - basis (per entry): epochs at which the entry's dependencies were
//     known unchanged — its admission snapshot, raised by revalidation
//     proofs (Client.SinceOf) without recomputing the embedding.
//   - covered: the invalidation frontier — the newest epoch per shard whose
//     touched-vertex set has been fully applied to the cache. Entries that
//     survive an Invalidate round are implicitly proven current at that
//     round's epoch, so scoped invalidation ("only the k-hop in-neighborhood
//     of touched vertices") does not silently age every OTHER entry out of
//     its lag budget.
//
// Get serves an entry only while max over shards of (heads - effective
// basis) is within the caller's lag budget, where effective basis is
// max(entry basis, covered): a served embedding can never be more than
// maxLag update epochs older than the newest state observed anywhere. Epochs
// applied out-of-band (by writers that do not route through Invalidate)
// leave covered behind, the lag grows, and the bound forces recomputation —
// exactly the fallback a shared live graph needs.
//
// Invalidated and lag-expired vertices accumulate in a hotness-ranked dirty
// queue (TakeDirty) for a background refresher to re-embed ahead of demand.
//
// SetImportance installs the paper's Imp^(k) admission idea on top of the
// LRU: evictions prefer dropping low-importance entries (a bounded scan of
// the LRU tail), and the dirty queue ranks by importance-weighted hotness,
// so the refresher re-embeds the vertices whose misses would cost the
// most. With no scorer the cache is the pure hits-and-recency LRU it
// always was.
//
// All methods are safe for concurrent use.
type EmbeddingCache struct {
	mu sync.Mutex

	cap     int
	entries map[graph.ID]*embEntry
	order   *list.List // front = most recently used

	// dependents inverts the dependency sets: dependency vertex -> the
	// cached vertices whose embeddings consumed it. An update touching d
	// invalidates exactly dependents[d] — the cached part of d's k-hop
	// in-neighborhood — and nothing else.
	dependents map[graph.ID]map[graph.ID]struct{}

	heads   []uint64
	covered []uint64

	// rounds is a bounded ring of recent invalidation rounds. Admissions
	// are checked against it: an entry whose basis snapshot predates a
	// round that touched one of its dependencies was computed from data of
	// unknown generation and is rejected. ringFloor tracks, per shard, the
	// newest epoch evicted from the ring; a basis older than the floor can
	// no longer be checked and is rejected too (conservative).
	rounds    []invalRound
	ringHead  int
	ringFloor []uint64

	dirty map[graph.ID]float64 // vertex -> importance-weighted hotness at drop time

	// scorer, when set, scores a vertex's expected reuse (Imp^(k) hotness):
	// it weighs eviction-victim choice and dirty-queue ranking. Scored once
	// per admission (entries keep their admission-time importance).
	scorer func(graph.ID) float64

	stats EmbeddingCacheStats
}

type embEntry struct {
	v     graph.ID
	vec   []float64
	deps  []graph.ID
	basis []uint64
	elem  *list.Element
	hits  int64
	imp   float64 // admission-time importance score (0 without a scorer)
}

type invalRound struct {
	part    int
	epoch   uint64
	touched map[graph.ID]struct{}
}

// EmbeddingCacheStats are the cache's cumulative counters (plus the current
// entry and dirty-queue sizes).
type EmbeddingCacheStats struct {
	Hits, Misses, StaleRejects    int64
	Admits, AdmitRejects, Evicted int64
	Invalidated                   int64
	Entries, Dirty                int
}

// invalRingCap bounds the invalidation-round ring; 256 rounds comfortably
// covers every admission in flight during a churn storm.
const invalRingCap = 256

// NewEmbeddingCache creates a cache over parts shards holding at most cap
// entries (cap <= 0 means 1).
func NewEmbeddingCache(parts, cap int) *EmbeddingCache {
	if parts < 1 {
		parts = 1
	}
	if cap < 1 {
		cap = 1
	}
	return &EmbeddingCache{
		cap:        cap,
		entries:    make(map[graph.ID]*embEntry),
		order:      list.New(),
		dependents: make(map[graph.ID]map[graph.ID]struct{}),
		heads:      make([]uint64, parts),
		covered:    make([]uint64, parts),
		ringFloor:  make([]uint64, parts),
		dirty:      make(map[graph.ID]float64),
	}
}

// SetImportance installs (or, with nil, removes) the importance scorer.
// It applies to subsequent admissions and dirty-queue rankings; already
// resident entries keep the score they were admitted with.
func (c *EmbeddingCache) SetImportance(f func(graph.ID) float64) {
	c.mu.Lock()
	c.scorer = f
	c.mu.Unlock()
}

// hotLocked is the dirty-queue rank of v: demand (hits so far, plus one
// for the event queueing it) scaled by importance when a scorer is set —
// the re-embed order AliGraph's Imp^(k) admission implies.
func (c *EmbeddingCache) hotLocked(v graph.ID, hits int64) float64 {
	h := float64(hits + 1)
	if c.scorer != nil {
		h *= 1 + c.scorer(v)
	}
	return h
}

// InitCovered seeds the heads clock AND the invalidation frontier from a
// startup head probe: epochs at or below the probe predate every cache
// entry, so they count as processed. Call once, before serving.
func (c *EmbeddingCache) InitCovered(heads []uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for p := 0; p < len(c.heads) && p < len(heads); p++ {
		if heads[p] > c.heads[p] {
			c.heads[p] = heads[p]
		}
		if heads[p] > c.covered[p] {
			c.covered[p] = heads[p]
		}
		if heads[p] > c.ringFloor[p] {
			c.ringFloor[p] = heads[p]
		}
	}
}

// NoteHeads raises the per-shard staleness clock to the observed heads.
func (c *EmbeddingCache) NoteHeads(heads []uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for p := 0; p < len(c.heads) && p < len(heads); p++ {
		if heads[p] > c.heads[p] {
			c.heads[p] = heads[p]
		}
	}
}

// lagLocked reports the entry's worst-shard staleness: max over shards of
// heads minus the effective (basis-or-covered) proven epoch.
func (c *EmbeddingCache) lagLocked(e *embEntry) uint64 {
	lag := uint64(0)
	for p := range c.heads {
		valid := e.basis[p]
		if c.covered[p] > valid {
			valid = c.covered[p]
		}
		if c.heads[p] > valid && c.heads[p]-valid > lag {
			lag = c.heads[p] - valid
		}
	}
	return lag
}

// Get returns v's cached embedding if it is present and within maxLag
// update epochs of every shard's newest observed head. A stale entry is not
// served; it is queued dirty so a refresher can revalidate or re-embed it.
// The returned slice is shared — callers must not mutate it.
func (c *EmbeddingCache) Get(v graph.ID, maxLag uint64) ([]float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[v]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	if c.lagLocked(e) > maxLag {
		c.stats.StaleRejects++
		if h := c.hotLocked(v, e.hits); h > c.dirty[v] {
			c.dirty[v] = h
		}
		return nil, false
	}
	e.hits++
	c.order.MoveToFront(e.elem)
	c.stats.Hits++
	return e.vec, true
}

// Admit installs v's embedding, computed from deps (the sampled context,
// including v itself) with the per-shard basis snapshot taken BEFORE the
// computation read any graph data. The admission is rejected when an
// invalidation round newer than the basis touched one of the deps — the
// computation may have consumed data of an unknown generation — or when the
// basis is too old for the retained ring to prove otherwise.
func (c *EmbeddingCache) Admit(v graph.ID, vec []float64, deps []graph.ID, basis []uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	b := make([]uint64, len(c.heads))
	for p := range b {
		if p < len(basis) {
			b[p] = basis[p]
		}
		if b[p] < c.ringFloor[p] {
			// Rounds the basis would need checking against are gone.
			c.stats.AdmitRejects++
			return false
		}
	}
	for _, r := range c.rounds {
		if r.touched == nil || r.epoch <= b[r.part] {
			continue
		}
		for _, d := range deps {
			if _, hit := r.touched[d]; hit {
				c.stats.AdmitRejects++
				return false
			}
		}
	}

	if old, ok := c.entries[v]; ok {
		c.removeLocked(old)
	}
	for c.len() >= c.cap {
		victim := c.evictionVictimLocked()
		if victim == nil {
			break
		}
		c.removeLocked(victim)
		c.stats.Evicted++
	}
	e := &embEntry{v: v, vec: vec, deps: deps, basis: b}
	if c.scorer != nil {
		e.imp = c.scorer(v)
	}
	e.elem = c.order.PushFront(e)
	c.entries[v] = e
	for _, d := range deps {
		set, ok := c.dependents[d]
		if !ok {
			set = make(map[graph.ID]struct{})
			c.dependents[d] = set
		}
		set[v] = struct{}{}
	}
	delete(c.dirty, v) // freshly embedded: no longer needs refreshing
	c.stats.Admits++
	return true
}

func (c *EmbeddingCache) len() int { return len(c.entries) }

// evictScanDepth bounds the importance-weighted eviction scan: only this
// many LRU-tail entries compete for the victim slot, so eviction stays
// O(1) whatever the capacity.
const evictScanDepth = 8

// evictionVictimLocked picks the entry to evict: the plain LRU tail
// without a scorer; with one, the lowest-importance entry among the
// evictScanDepth least recently used (strict < keeps the tail-most entry
// on ties, so equal-importance workloads still evict in exact LRU order).
// A high-importance hub that drifts to the tail is spared while any
// colder entry is in scan range — the embedding analogue of the neighbor
// caches' Imp^(k) admission.
func (c *EmbeddingCache) evictionVictimLocked() *embEntry {
	back := c.order.Back()
	if back == nil {
		return nil
	}
	victim := back.Value.(*embEntry)
	if c.scorer == nil {
		return victim
	}
	depth := 1
	for el := back.Prev(); el != nil && depth < evictScanDepth; el = el.Prev() {
		if e := el.Value.(*embEntry); e.imp < victim.imp {
			victim = e
		}
		depth++
	}
	return victim
}

// removeLocked unlinks e from the entry map, the LRU order and the
// dependency index.
func (c *EmbeddingCache) removeLocked(e *embEntry) {
	delete(c.entries, e.v)
	c.order.Remove(e.elem)
	for _, d := range e.deps {
		if set, ok := c.dependents[d]; ok {
			delete(set, e.v)
			if len(set) == 0 {
				delete(c.dependents, d)
			}
		}
	}
}

// Invalidate applies one update round: epoch is the new head epoch of part,
// touched are the vertices whose adjacency or attributes the round rewrote.
// Exactly the cached entries depending on a touched vertex — the cached
// part of the touched set's k-hop in-neighborhood — are dropped (and queued
// dirty, hotness-ranked, for proactive re-embedding); every other entry is
// untouched and, when the round extends the contiguous frontier, implicitly
// revalidated at epoch. Returns how many entries were dropped.
func (c *EmbeddingCache) Invalidate(part int, epoch uint64, touched []graph.ID) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if part < 0 || part >= len(c.heads) {
		return 0
	}
	dropped := 0
	for _, d := range touched {
		set, ok := c.dependents[d]
		if !ok {
			continue
		}
		for v := range set {
			e := c.entries[v]
			if h := c.hotLocked(v, e.hits); h > c.dirty[v] {
				c.dirty[v] = h
			}
			c.removeLocked(e)
			dropped++
		}
	}
	c.stats.Invalidated += int64(dropped)
	if epoch > c.heads[part] {
		c.heads[part] = epoch
	}
	if epoch == c.covered[part]+1 {
		// Contiguous: every epoch <= epoch is now fully processed, so the
		// surviving entries are proven current at it. A gap means a foreign
		// writer's epochs were never routed through here; covered stays put
		// and the lag bound takes over.
		c.covered[part] = epoch
	}
	// Record the round for admission-race checks.
	ts := make(map[graph.ID]struct{}, len(touched))
	for _, d := range touched {
		ts[d] = struct{}{}
	}
	r := invalRound{part: part, epoch: epoch, touched: ts}
	if len(c.rounds) < invalRingCap {
		c.rounds = append(c.rounds, r)
	} else {
		old := c.rounds[c.ringHead]
		if old.epoch > c.ringFloor[old.part] {
			c.ringFloor[old.part] = old.epoch
		}
		c.rounds[c.ringHead] = r
		c.ringHead = (c.ringHead + 1) % invalRingCap
	}
	return dropped
}

// TakeDirty pops up to max invalidated or lag-expired vertices, hottest
// first (importance-weighted when a scorer is set) — the refresher's work
// queue for re-embedding ahead of demand.
func (c *EmbeddingCache) TakeDirty(max int) []graph.ID {
	c.mu.Lock()
	defer c.mu.Unlock()
	if max <= 0 || len(c.dirty) == 0 {
		return nil
	}
	type hv struct {
		v graph.ID
		h float64
	}
	all := make([]hv, 0, len(c.dirty))
	for v, h := range c.dirty {
		all = append(all, hv{v, h})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].h != all[j].h {
			return all[i].h > all[j].h
		}
		return all[i].v < all[j].v
	})
	if max > len(all) {
		max = len(all)
	}
	out := make([]graph.ID, max)
	for i := 0; i < max; i++ {
		out[i] = all[i].v
		delete(c.dirty, all[i].v)
	}
	return out
}

// StaleEntry describes a cached-but-lag-expired entry for revalidation.
type StaleEntry struct {
	V    graph.ID
	Deps []graph.ID
	// Basis is the entry's effective proven epoch per shard.
	Basis []uint64
}

// Stale returns up to max entries whose lag exceeds maxLag — present, not
// serveable. A refresher can revalidate them with one SinceOf round instead
// of recomputing: if every dependency's install stamp is at or below the
// entry's basis, the embedding is still exact and SetBasis restores it.
func (c *EmbeddingCache) Stale(maxLag uint64, max int) []StaleEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []StaleEntry
	for el := c.order.Front(); el != nil && len(out) < max; el = el.Next() {
		e := el.Value.(*embEntry)
		if c.lagLocked(e) <= maxLag {
			continue
		}
		basis := make([]uint64, len(e.basis))
		for p := range basis {
			basis[p] = e.basis[p]
			if c.covered[p] > basis[p] {
				basis[p] = c.covered[p]
			}
		}
		out = append(out, StaleEntry{V: e.v, Deps: e.deps, Basis: basis})
	}
	return out
}

// SetBasis raises v's per-shard proven epochs after a revalidation proof
// (never lowers them). No-op when v is no longer cached.
func (c *EmbeddingCache) SetBasis(v graph.ID, basis []uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[v]
	if !ok {
		return
	}
	for p := 0; p < len(e.basis) && p < len(basis); p++ {
		if basis[p] > e.basis[p] {
			e.basis[p] = basis[p]
		}
	}
	delete(c.dirty, v)
}

// Contains reports whether v is cached, regardless of staleness (tests
// assert invalidation scope with it; it does not touch LRU order or stats).
func (c *EmbeddingCache) Contains(v graph.ID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[v]
	return ok
}

// Len reports the current entry count.
func (c *EmbeddingCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats snapshots the cache counters.
func (c *EmbeddingCache) Stats() EmbeddingCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Entries = len(c.entries)
	st.Dirty = len(c.dirty)
	return st
}

// Flush drops every entry and the dirty queue (epoch-numbering restarts).
func (c *EmbeddingCache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[graph.ID]*embEntry)
	c.order.Init()
	c.dependents = make(map[graph.ID]map[graph.ID]struct{})
	c.dirty = make(map[graph.ID]float64)
}
