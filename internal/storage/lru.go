// Package storage implements the AliGraph storage layer (Section 3.2):
// separate structural and attribute storage with deduplicating attribute
// indices I_V and I_E fronted by LRU caches, and neighbor caching of
// important vertices selected by the Imp^(k) metric (Algorithm 2).
//
// # Epoch-aware neighbor-cache seam
//
// The NeighborCache seam is version-aware: Get takes the update epoch the
// caller is reading at (a pinned snapshot's epoch, or the newest head the
// client has observed) and Observe records, for every fetched list, the
// epoch it was served at plus the epoch it was installed at (the Since
// stamp on sampling replies, backed by internal/version's per-entry
// stamps). Entries therefore carry an exact validity interval
// [since, through]: static caches re-validate their fixed membership when
// replies confirm a vertex untouched, the LRU tags entries and misses on
// mismatch, and no strategy can ever serve a pinned batch a neighbor list
// fetched at a different update generation. Because batched draws are
// slot-pure (sampling.SlotRng), these conservative misses change RPC
// traffic but never the values a fixed-seed training run consumes.
package storage

import "container/list"

// LRU is a fixed-capacity least-recently-used cache from int64 keys to
// arbitrary values. It is not safe for concurrent use; callers that share a
// cache across goroutines wrap it (the graph-server request buckets
// serialize access instead, see internal/sampling).
type LRU struct {
	cap   int
	ll    *list.List
	items map[int64]*list.Element

	hits, misses, evictions int64
}

type lruEntry struct {
	key int64
	val interface{}
}

// NewLRU creates an LRU cache holding at most capacity entries.
// A capacity <= 0 yields a cache that stores nothing.
func NewLRU(capacity int) *LRU {
	return &LRU{cap: capacity, ll: list.New(), items: make(map[int64]*list.Element)}
}

// Get returns the cached value for key and whether it was present,
// promoting the entry to most-recently-used.
func (c *LRU) Get(key int64) (interface{}, bool) {
	if e, ok := c.items[key]; ok {
		c.ll.MoveToFront(e)
		c.hits++
		return e.Value.(*lruEntry).val, true
	}
	c.misses++
	return nil, false
}

// Put inserts or refreshes key, evicting the least-recently-used entry when
// over capacity.
func (c *LRU) Put(key int64, val interface{}) {
	if c.cap <= 0 {
		return
	}
	if e, ok := c.items[key]; ok {
		c.ll.MoveToFront(e)
		e.Value.(*lruEntry).val = val
		return
	}
	e := c.ll.PushFront(&lruEntry{key, val})
	c.items[key] = e
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		if oldest != nil {
			c.ll.Remove(oldest)
			delete(c.items, oldest.Value.(*lruEntry).key)
			c.evictions++
		}
	}
}

// Len reports the number of cached entries.
func (c *LRU) Len() int { return c.ll.Len() }

// Flush drops every cached entry, keeping the cumulative counters; used for
// generation-style invalidation (e.g. an attribute-epoch advance).
func (c *LRU) Flush() {
	c.ll.Init()
	c.items = make(map[int64]*list.Element)
}

// Stats returns cumulative hit/miss/eviction counters.
func (c *LRU) Stats() (hits, misses, evictions int64) {
	return c.hits, c.misses, c.evictions
}

// HitRate returns hits / (hits+misses), or 0 before any access.
func (c *LRU) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}
