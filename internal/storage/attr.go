package storage

import (
	"encoding/binary"
	"math"
)

// AttributeIndex is the deduplicating attribute store of Section 3.2: each
// distinct attribute vector is stored once and referenced from the adjacency
// table by a compact index. Attributes in real e-commerce graphs overlap
// heavily (many vertices share "gender=male" style vectors), so separating
// them reduces space from O(n*N_D*N_L) to O(n*N_D + N_A*N_L).
//
// A small LRU cache fronts lookups to model the paper's cache of frequently
// accessed items; Lookup goes through the cache while Direct bypasses it
// (used to measure the benefit).
type AttributeIndex struct {
	keys  map[string]int32
	vecs  [][]float64
	cache *LRU
}

// NewAttributeIndex creates an index whose access cache holds cacheCap
// entries.
func NewAttributeIndex(cacheCap int) *AttributeIndex {
	return &AttributeIndex{
		keys:  make(map[string]int32),
		cache: NewLRU(cacheCap),
	}
}

// vecKey encodes a float64 vector into a compact byte-string map key.
func vecKey(v []float64) string {
	buf := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(x))
	}
	return string(buf)
}

// Intern stores vec if unseen and returns its index. A nil vector interns
// to -1. The stored vector is shared with the caller; do not mutate it.
func (ai *AttributeIndex) Intern(vec []float64) int32 {
	if vec == nil {
		return -1
	}
	k := vecKey(vec)
	if idx, ok := ai.keys[k]; ok {
		return idx
	}
	idx := int32(len(ai.vecs))
	ai.keys[k] = idx
	ai.vecs = append(ai.vecs, vec)
	return idx
}

// Lookup returns the attribute vector at idx through the LRU cache.
// Index -1 returns nil.
func (ai *AttributeIndex) Lookup(idx int32) []float64 {
	if idx < 0 {
		return nil
	}
	if v, ok := ai.cache.Get(int64(idx)); ok {
		return v.([]float64)
	}
	v := ai.vecs[idx]
	ai.cache.Put(int64(idx), v)
	return v
}

// Direct returns the attribute vector at idx bypassing the cache.
func (ai *AttributeIndex) Direct(idx int32) []float64 {
	if idx < 0 {
		return nil
	}
	return ai.vecs[idx]
}

// NumDistinct reports N_A, the number of distinct attribute vectors stored.
func (ai *AttributeIndex) NumDistinct() int { return len(ai.vecs) }

// CacheHitRate exposes the LRU cache hit rate.
func (ai *AttributeIndex) CacheHitRate() float64 { return ai.cache.HitRate() }

// Bytes estimates the storage footprint of the deduplicated vectors.
func (ai *AttributeIndex) Bytes() int64 {
	var b int64
	for _, v := range ai.vecs {
		b += int64(8 * len(v))
	}
	return b
}
