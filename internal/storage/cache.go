package storage

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/graph"
)

// NeighborCache is the pluggable neighbor-caching strategy evaluated in
// Figure 9 of the paper: the importance-based cache (AliGraph's strategy),
// a random static cache, and an LRU replacing cache. A cache answers
// "do I hold the hop-h out-neighbors of v under edge type t locally?"; on
// a miss the caller pays a remote fetch. Entries are keyed by
// (vertex, edge type, hop) — heterogeneous graphs must never serve one
// type's neighbor list to a query about another.
type NeighborCache interface {
	// Get returns the cached hop-h type-t out-neighbor list of v (h is
	// 1-based) and whether it was present.
	Get(v graph.ID, t graph.EdgeType, h int) ([]graph.ID, bool)
	// Observe notifies the cache of a fetch result so replacing strategies
	// can admit it.
	Observe(v graph.ID, t graph.EdgeType, h int, nbrs []graph.ID)
	// Name identifies the strategy in reports.
	Name() string
	// CachedVertices reports how many vertices currently have hop-1
	// neighborhoods cached.
	CachedVertices() int
}

// Admitter is an optional NeighborCache capability reporting whether
// Observe can ever admit new entries. Static caches (importance, random,
// none) return false, letting data producers skip preparing admission
// payloads for consumers that will drop them.
type Admitter interface {
	Admits() bool
}

// hopKey packs (vertex, edge type, hop) into an int64 cache key. Hops are
// tiny (h <= 7); edge types get 13 bits, so schemas are bounded to
// MaxCacheEdgeTypes — checkEdgeTypes enforces it at cache construction
// rather than letting oversized schemas silently collide keys.
func hopKey(v graph.ID, t graph.EdgeType, h int) int64 {
	return int64(v)<<16 | int64(t&0x1fff)<<3 | int64(h&0x7)
}

// MaxCacheEdgeTypes is the largest edge-type count the cache key can
// distinguish.
const MaxCacheEdgeTypes = 1 << 13

func checkEdgeTypes(n int) {
	if n >= MaxCacheEdgeTypes {
		panic(fmt.Sprintf("storage: %d edge types exceed the neighbor-cache key space (%d)", n, MaxCacheEdgeTypes))
	}
}

// ---------------------------------------------------------------------------
// Importance-based cache (Algorithm 2 lines 5-9)

// ImportanceCache statically caches the 1..k-hop out-neighborhoods of
// vertices whose importance Imp^(k)(v) = D_i^(k)(v)/D_o^(k)(v) meets the
// per-depth thresholds tau[k-1], one frontier per edge type. Theorem 2
// shows importance is power-law distributed, so a small threshold already
// restricts the cache to a small vertex fraction.
type ImportanceCache struct {
	entries map[int64][]graph.ID
	hop1    int
}

// SelectImportant returns the vertices with Imp^(h)(v) >= tau, for depth h.
// Importance is computed for all vertices in one parallel batch (shared
// scratch BFS per worker) rather than one map-based BFS per vertex.
func SelectImportant(g *graph.Graph, h int, tau float64) []graph.ID {
	imps := g.ImportanceAll(h)
	var out []graph.ID
	for v, imp := range imps {
		if imp >= tau {
			out = append(out, graph.ID(v))
		}
	}
	return out
}

// NewImportanceCache builds the static cache: for each depth k in 1..len(tau),
// every vertex with Imp^(k) >= tau[k-1] has its 1..k-hop out-neighborhoods
// cached (Algorithm 2).
func NewImportanceCache(g *graph.Graph, tau []float64) *ImportanceCache {
	c := &ImportanceCache{entries: make(map[int64][]graph.ID)}
	s := g.AcquireScratch()
	defer g.ReleaseScratch(s)
	nt := g.Schema().NumEdgeTypes()
	checkEdgeTypes(nt)
	for k := 1; k <= len(tau); k++ {
		for _, v := range SelectImportant(g, k, tau[k-1]) {
			counted := false
			for h := 1; h <= k; h++ {
				for t := 0; t < nt; t++ {
					key := hopKey(v, graph.EdgeType(t), h)
					if _, ok := c.entries[key]; ok {
						if h == 1 {
							counted = true
						}
						continue
					}
					c.entries[key] = append([]graph.ID(nil), g.KHopFrontierType(v, graph.EdgeType(t), h, s)...)
				}
			}
			if !counted {
				c.hop1++
			}
		}
	}
	return c
}

// NewImportanceCacheTopFraction caches the top-frac fraction of vertices
// ranked by Imp^(h); used by the Figure 9 sweep where the x-axis is the
// cached-vertex percentage rather than the threshold.
func NewImportanceCacheTopFraction(g *graph.Graph, h int, frac float64) *ImportanceCache {
	imps := g.ImportanceAll(h)
	order := make([]int, len(imps))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return imps[order[a]] > imps[order[b]] })
	k := int(frac * float64(len(order)))
	c := &ImportanceCache{entries: make(map[int64][]graph.ID)}
	s := g.AcquireScratch()
	defer g.ReleaseScratch(s)
	nt := g.Schema().NumEdgeTypes()
	checkEdgeTypes(nt)
	for _, vi := range order[:k] {
		v := graph.ID(vi)
		for hh := 1; hh <= h; hh++ {
			for t := 0; t < nt; t++ {
				c.entries[hopKey(v, graph.EdgeType(t), hh)] = append([]graph.ID(nil), g.KHopFrontierType(v, graph.EdgeType(t), hh, s)...)
			}
		}
		c.hop1++
	}
	return c
}

func (c *ImportanceCache) Get(v graph.ID, t graph.EdgeType, h int) ([]graph.ID, bool) {
	ns, ok := c.entries[hopKey(v, t, h)]
	return ns, ok
}

func (c *ImportanceCache) Observe(graph.ID, graph.EdgeType, int, []graph.ID) {} // static

func (c *ImportanceCache) Admits() bool { return false }

func (c *ImportanceCache) Name() string { return "importance" }

func (c *ImportanceCache) CachedVertices() int { return c.hop1 }

// ---------------------------------------------------------------------------
// Random static cache (Figure 9 baseline)

// RandomCache statically caches the neighborhoods of a uniformly random
// vertex fraction. Randomly selected vertices are unlikely to be the hubs
// other vertices route through, which is why this baseline loses.
type RandomCache struct {
	entries map[int64][]graph.ID
	hop1    int
}

// NewRandomCache caches hops 1..h of a frac fraction of vertices drawn with
// rng.
func NewRandomCache(g *graph.Graph, h int, frac float64, rng *rand.Rand) *RandomCache {
	c := &RandomCache{entries: make(map[int64][]graph.ID)}
	n := g.NumVertices()
	k := int(frac * float64(n))
	perm := rng.Perm(n)
	s := g.AcquireScratch()
	defer g.ReleaseScratch(s)
	nt := g.Schema().NumEdgeTypes()
	checkEdgeTypes(nt)
	for _, vi := range perm[:k] {
		v := graph.ID(vi)
		for hh := 1; hh <= h; hh++ {
			for t := 0; t < nt; t++ {
				c.entries[hopKey(v, graph.EdgeType(t), hh)] = append([]graph.ID(nil), g.KHopFrontierType(v, graph.EdgeType(t), hh, s)...)
			}
		}
		c.hop1++
	}
	return c
}

func (c *RandomCache) Get(v graph.ID, t graph.EdgeType, h int) ([]graph.ID, bool) {
	ns, ok := c.entries[hopKey(v, t, h)]
	return ns, ok
}

func (c *RandomCache) Observe(graph.ID, graph.EdgeType, int, []graph.ID) {}

func (c *RandomCache) Admits() bool { return false }

func (c *RandomCache) Name() string { return "random" }

func (c *RandomCache) CachedVertices() int { return c.hop1 }

// ---------------------------------------------------------------------------
// LRU replacing cache (Figure 9 baseline)

// LRUNeighborCache admits every fetched neighborhood and evicts the least
// recently used, holding at most capacity (vertex, hop) entries. Frequent
// replacement churn is its cost relative to the static importance cache.
// Unlike the static caches (which are immutable after construction), every
// LRU access mutates recency state, so operations are serialized by a
// mutex; this keeps a shared cluster.Client safe for concurrent samplers.
type LRUNeighborCache struct {
	mu   sync.Mutex
	lru  *LRU
	hop1 map[graph.ID]struct{}
}

// NewLRUNeighborCache creates an LRU neighbor cache with the given entry
// capacity.
func NewLRUNeighborCache(capacity int) *LRUNeighborCache {
	return &LRUNeighborCache{lru: NewLRU(capacity), hop1: make(map[graph.ID]struct{})}
}

func (c *LRUNeighborCache) Get(v graph.ID, t graph.EdgeType, h int) ([]graph.ID, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if x, ok := c.lru.Get(hopKey(v, t, h)); ok {
		return x.([]graph.ID), true
	}
	return nil, false
}

func (c *LRUNeighborCache) Observe(v graph.ID, t graph.EdgeType, h int, nbrs []graph.ID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lru.Put(hopKey(v, t, h), nbrs)
	if h == 1 {
		c.hop1[v] = struct{}{}
	}
}

func (c *LRUNeighborCache) Name() string { return "lru" }

func (c *LRUNeighborCache) CachedVertices() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// NoCache disables neighbor caching; every access is remote.
type NoCache struct{}

func (NoCache) Get(graph.ID, graph.EdgeType, int) ([]graph.ID, bool) { return nil, false }
func (NoCache) Observe(graph.ID, graph.EdgeType, int, []graph.ID)    {}
func (NoCache) Admits() bool                         { return false }
func (NoCache) Name() string                         { return "none" }
func (NoCache) CachedVertices() int                  { return 0 }

// CacheRate returns the fraction of vertices whose hop-1 neighborhood the
// cache holds; this is the y-axis of Figure 8.
func CacheRate(c NeighborCache, n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(c.CachedVertices()) / float64(n)
}
