package storage

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// NeighborCache is the pluggable neighbor-caching strategy evaluated in
// Figure 9 of the paper: the importance-based cache (AliGraph's strategy),
// a random static cache, and an LRU replacing cache. A cache answers
// "do I hold the hop-h out-neighbors of v under edge type t locally, valid
// at update epoch `epoch`?"; on a miss the caller pays a remote fetch.
// Entries are keyed by (vertex, edge type, hop) — heterogeneous graphs must
// never serve one type's neighbor list to a query about another — and carry
// an epoch-validity interval, so under churn a pinned batch is never served
// a neighbor list fetched at a different update generation.
//
// Validity model: every entry holds [since, through] — `since` is the epoch
// the served list was installed at (the Since stamp servers put on replies;
// 0 for lists predating every update) and `through` the newest epoch the
// list is known unchanged at (the epoch of the latest fetch that returned
// it). A Get at epoch e hits only when since <= e <= through; an Observe of
// the same list at a newer epoch cheaply extends `through` (re-validation),
// while an Observe with a newer `since` supersedes the entry. Because the
// batched draw engine is slot-pure (sampling.SlotRng), a conservative
// epoch miss costs one re-validating fetch but can never change the values
// a fixed-seed training run consumes.
type NeighborCache interface {
	// Get returns the cached hop-h type-t out-neighbor list of v (h is
	// 1-based) valid at update epoch `epoch`, and whether it was present
	// and valid.
	Get(v graph.ID, t graph.EdgeType, h int, epoch uint64) ([]graph.ID, bool)
	// Observe notifies the cache of a fetch result so replacing strategies
	// can admit it and every strategy can track validity: the list was
	// served at `epoch` and was installed at `since` (since <= epoch).
	Observe(v graph.ID, t graph.EdgeType, h int, epoch, since uint64, nbrs []graph.ID)
	// Name identifies the strategy in reports.
	Name() string
	// CachedVertices reports how many vertices currently have hop-1
	// neighborhoods cached.
	CachedVertices() int
}

// Admitter is an optional NeighborCache capability reporting whether
// Observe can ever admit new entries. Static caches (importance, random,
// none) return false — they only re-validate entries they already hold —
// letting data producers skip preparing admission payloads for consumers
// that will drop them.
type Admitter interface {
	Admits() bool
}

// StaleReader is an optional NeighborCache capability serving an entry
// regardless of its epoch validity. Clients use it only for graceful
// degradation while a shard is unreachable: a stale neighbor list beats
// failing the batch, and every such read is counted (Client.DegradedDraws)
// so the staleness is visible rather than silent.
type StaleReader interface {
	// GetStale returns the cached hop-h type-t list of v ignoring epoch
	// validity, and whether any entry was present.
	GetStale(v graph.ID, t graph.EdgeType, h int) ([]graph.ID, bool)
}

// GetKind classifies one cache lookup for instrumentation.
type GetKind uint8

const (
	// KindMiss: no entry for the key.
	KindMiss GetKind = iota
	// KindHit: entry present and valid at the requested epoch.
	KindHit
	// KindEpochMiss: entry present but invalid at the requested epoch — the
	// price of version safety under churn.
	KindEpochMiss
)

// KindedGetter is an optional NeighborCache capability: GetKinded is Get
// plus the miss classification, so per-(edge type, hop) instrumentation can
// split absent-entry misses from epoch misses without a second probe.
// GetKinded counts toward the cache's cumulative counters exactly like Get.
type KindedGetter interface {
	GetKinded(v graph.ID, t graph.EdgeType, h int, epoch uint64) ([]graph.ID, GetKind)
}

// Flusher is an optional NeighborCache capability dropping all runtime
// validity state. Clients call it when a shard's epoch numbering restarts
// (a lease reply reveals a head regression): intervals recorded under the
// old incarnation are incomparable with the new one, so replacing caches
// drop their entries and static caches reset their re-validation
// watermarks to the build epoch.
type Flusher interface {
	Flush()
}

// hopKey packs (vertex, edge type, hop) into an int64 cache key. Hops are
// tiny (h <= 7); edge types get 13 bits, so schemas are bounded to
// MaxCacheEdgeTypes — checkEdgeTypes enforces it at cache construction
// rather than letting oversized schemas silently collide keys.
func hopKey(v graph.ID, t graph.EdgeType, h int) int64 {
	return int64(v)<<16 | int64(t&0x1fff)<<3 | int64(h&0x7)
}

// MaxCacheEdgeTypes is the largest edge-type count the cache key can
// distinguish.
const MaxCacheEdgeTypes = 1 << 13

func checkEdgeTypes(n int) {
	if n >= MaxCacheEdgeTypes {
		panic(fmt.Sprintf("storage: %d edge types exceed the neighbor-cache key space (%d)", n, MaxCacheEdgeTypes))
	}
}

// staticEntry is one static-cache neighbor list with its epoch validity.
// The list and `since` are fixed at construction (or by a superseding
// Observe under the owner's rules); `through` is a monotone watermark
// advanced lock-free by concurrent re-validations.
type staticEntry struct {
	nbrs    []graph.ID
	since   uint64
	through atomic.Uint64
}

func (e *staticEntry) validAt(epoch uint64) bool {
	return e.since <= epoch && epoch <= e.through.Load()
}

// extendThrough raises the unchanged-through watermark to epoch.
func (e *staticEntry) extendThrough(epoch uint64) {
	for {
		old := e.through.Load()
		if epoch <= old || e.through.CompareAndSwap(old, epoch) {
			return
		}
	}
}

// staticObserve is the shared Observe logic of the static caches: an
// existing entry whose install stamp matches the reply's Since is the same
// list — extend its validity to the serving epoch; anything else is
// ignored (membership is fixed at construction, and multi-hop entries
// cannot be re-validated from a hop-1 reply).
func staticObserve(entries map[int64]*staticEntry, v graph.ID, t graph.EdgeType, h int, epoch, since uint64) {
	if h != 1 {
		return
	}
	if e, ok := entries[hopKey(v, t, h)]; ok && e.since == since {
		e.extendThrough(epoch)
	}
}

// ---------------------------------------------------------------------------
// Importance-based cache (Algorithm 2 lines 5-9)

// ImportanceCache statically caches the 1..k-hop out-neighborhoods of
// vertices whose importance Imp^(k)(v) = D_i^(k)(v)/D_o^(k)(v) meets the
// per-depth thresholds tau[k-1], one frontier per edge type. Theorem 2
// shows importance is power-law distributed, so a small threshold already
// restricts the cache to a small vertex fraction.
//
// Entries are built from the epoch-0 graph (since = through = 0): the cache
// answers a query at a later epoch only after a fetch re-validated that the
// vertex is still untouched there (Observe with Since == 0 extends the
// entry). Multi-hop entries are never extended — a hop-1 reply cannot vouch
// for the whole frontier — so MultiHop falls back to fetches once the
// observed head moves.
type ImportanceCache struct {
	entries map[int64]*staticEntry
	hop1    int
}

// SelectImportant returns the vertices with Imp^(h)(v) >= tau, for depth h.
// Importance is computed for all vertices in one parallel batch (shared
// scratch BFS per worker) rather than one map-based BFS per vertex.
func SelectImportant(g *graph.Graph, h int, tau float64) []graph.ID {
	imps := g.ImportanceAll(h)
	var out []graph.ID
	for v, imp := range imps {
		if imp >= tau {
			out = append(out, graph.ID(v))
		}
	}
	return out
}

// NewImportanceCache builds the static cache: for each depth k in 1..len(tau),
// every vertex with Imp^(k) >= tau[k-1] has its 1..k-hop out-neighborhoods
// cached (Algorithm 2).
func NewImportanceCache(g *graph.Graph, tau []float64) *ImportanceCache {
	c := &ImportanceCache{entries: make(map[int64]*staticEntry)}
	s := g.AcquireScratch()
	defer g.ReleaseScratch(s)
	nt := g.Schema().NumEdgeTypes()
	checkEdgeTypes(nt)
	for k := 1; k <= len(tau); k++ {
		for _, v := range SelectImportant(g, k, tau[k-1]) {
			counted := false
			for h := 1; h <= k; h++ {
				for t := 0; t < nt; t++ {
					key := hopKey(v, graph.EdgeType(t), h)
					if _, ok := c.entries[key]; ok {
						if h == 1 {
							counted = true
						}
						continue
					}
					c.entries[key] = &staticEntry{nbrs: append([]graph.ID(nil), g.KHopFrontierType(v, graph.EdgeType(t), h, s)...)}
				}
			}
			if !counted {
				c.hop1++
			}
		}
	}
	return c
}

// NewImportanceCacheTopFraction caches the top-frac fraction of vertices
// ranked by Imp^(h); used by the Figure 9 sweep where the x-axis is the
// cached-vertex percentage rather than the threshold.
func NewImportanceCacheTopFraction(g *graph.Graph, h int, frac float64) *ImportanceCache {
	imps := g.ImportanceAll(h)
	order := make([]int, len(imps))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return imps[order[a]] > imps[order[b]] })
	k := int(frac * float64(len(order)))
	c := &ImportanceCache{entries: make(map[int64]*staticEntry)}
	s := g.AcquireScratch()
	defer g.ReleaseScratch(s)
	nt := g.Schema().NumEdgeTypes()
	checkEdgeTypes(nt)
	for _, vi := range order[:k] {
		v := graph.ID(vi)
		for hh := 1; hh <= h; hh++ {
			for t := 0; t < nt; t++ {
				c.entries[hopKey(v, graph.EdgeType(t), hh)] = &staticEntry{nbrs: append([]graph.ID(nil), g.KHopFrontierType(v, graph.EdgeType(t), hh, s)...)}
			}
		}
		c.hop1++
	}
	return c
}

func (c *ImportanceCache) Get(v graph.ID, t graph.EdgeType, h int, epoch uint64) ([]graph.ID, bool) {
	if e, ok := c.entries[hopKey(v, t, h)]; ok && e.validAt(epoch) {
		return e.nbrs, true
	}
	return nil, false
}

// GetKinded implements KindedGetter.
func (c *ImportanceCache) GetKinded(v graph.ID, t graph.EdgeType, h int, epoch uint64) ([]graph.ID, GetKind) {
	e, ok := c.entries[hopKey(v, t, h)]
	switch {
	case !ok:
		return nil, KindMiss
	case e.validAt(epoch):
		return e.nbrs, KindHit
	default:
		return nil, KindEpochMiss
	}
}

func (c *ImportanceCache) Observe(v graph.ID, t graph.EdgeType, h int, epoch, since uint64, _ []graph.ID) {
	staticObserve(c.entries, v, t, h, epoch, since)
}

func (c *ImportanceCache) Admits() bool { return false }

// GetStale implements StaleReader (degraded reads while a shard is down).
func (c *ImportanceCache) GetStale(v graph.ID, t graph.EdgeType, h int) ([]graph.ID, bool) {
	if e, ok := c.entries[hopKey(v, t, h)]; ok {
		return e.nbrs, true
	}
	return nil, false
}

// Flush resets every entry's re-validation watermark to the build epoch.
func (c *ImportanceCache) Flush() {
	for _, e := range c.entries {
		e.through.Store(0)
	}
}

func (c *ImportanceCache) Name() string { return "importance" }

func (c *ImportanceCache) CachedVertices() int { return c.hop1 }

// ---------------------------------------------------------------------------
// Random static cache (Figure 9 baseline)

// RandomCache statically caches the neighborhoods of a uniformly random
// vertex fraction. Randomly selected vertices are unlikely to be the hubs
// other vertices route through, which is why this baseline loses. Epoch
// validity follows the same re-validation rules as ImportanceCache.
type RandomCache struct {
	entries map[int64]*staticEntry
	hop1    int
}

// NewRandomCache caches hops 1..h of a frac fraction of vertices drawn with
// rng.
func NewRandomCache(g *graph.Graph, h int, frac float64, rng *rand.Rand) *RandomCache {
	c := &RandomCache{entries: make(map[int64]*staticEntry)}
	n := g.NumVertices()
	k := int(frac * float64(n))
	perm := rng.Perm(n)
	s := g.AcquireScratch()
	defer g.ReleaseScratch(s)
	nt := g.Schema().NumEdgeTypes()
	checkEdgeTypes(nt)
	for _, vi := range perm[:k] {
		v := graph.ID(vi)
		for hh := 1; hh <= h; hh++ {
			for t := 0; t < nt; t++ {
				c.entries[hopKey(v, graph.EdgeType(t), hh)] = &staticEntry{nbrs: append([]graph.ID(nil), g.KHopFrontierType(v, graph.EdgeType(t), hh, s)...)}
			}
		}
		c.hop1++
	}
	return c
}

func (c *RandomCache) Get(v graph.ID, t graph.EdgeType, h int, epoch uint64) ([]graph.ID, bool) {
	if e, ok := c.entries[hopKey(v, t, h)]; ok && e.validAt(epoch) {
		return e.nbrs, true
	}
	return nil, false
}

// GetKinded implements KindedGetter.
func (c *RandomCache) GetKinded(v graph.ID, t graph.EdgeType, h int, epoch uint64) ([]graph.ID, GetKind) {
	e, ok := c.entries[hopKey(v, t, h)]
	switch {
	case !ok:
		return nil, KindMiss
	case e.validAt(epoch):
		return e.nbrs, KindHit
	default:
		return nil, KindEpochMiss
	}
}

func (c *RandomCache) Observe(v graph.ID, t graph.EdgeType, h int, epoch, since uint64, _ []graph.ID) {
	staticObserve(c.entries, v, t, h, epoch, since)
}

func (c *RandomCache) Admits() bool { return false }

// GetStale implements StaleReader (degraded reads while a shard is down).
func (c *RandomCache) GetStale(v graph.ID, t graph.EdgeType, h int) ([]graph.ID, bool) {
	if e, ok := c.entries[hopKey(v, t, h)]; ok {
		return e.nbrs, true
	}
	return nil, false
}

// Flush resets every entry's re-validation watermark to the build epoch.
func (c *RandomCache) Flush() {
	for _, e := range c.entries {
		e.through.Store(0)
	}
}

func (c *RandomCache) Name() string { return "random" }

func (c *RandomCache) CachedVertices() int { return c.hop1 }

// ---------------------------------------------------------------------------
// LRU replacing cache (Figure 9 baseline)

// lruEntryVal is one LRU neighbor-cache value: the list plus its epoch
// validity interval. Values are replaced whole under the cache mutex, so no
// atomics are needed here.
type lruEntryVal struct {
	nbrs           []graph.ID
	since, through uint64
}

// LRUNeighborCache admits every fetched neighborhood and evicts the least
// recently used, holding at most capacity (vertex, hop) entries. Frequent
// replacement churn is its cost relative to the static importance cache.
// Entries are epoch-tagged: a Get at an epoch outside an entry's validity
// interval misses (counted separately as an epoch miss) and the
// re-validating fetch either extends the entry or supersedes it — the
// "tags entries and misses on mismatch" discipline, which keeps the cache
// warm across epochs for untouched vertices instead of flushing wholesale.
// Unlike the static caches, every access mutates recency state, so
// operations are serialized by a mutex; this keeps a shared cluster.Client
// safe for concurrent samplers.
type LRUNeighborCache struct {
	mu  sync.Mutex
	lru *LRU

	hits, misses, epochMisses int64
}

// NewLRUNeighborCache creates an LRU neighbor cache with the given entry
// capacity.
func NewLRUNeighborCache(capacity int) *LRUNeighborCache {
	return &LRUNeighborCache{lru: NewLRU(capacity)}
}

func (c *LRUNeighborCache) Get(v graph.ID, t graph.EdgeType, h int, epoch uint64) ([]graph.ID, bool) {
	ns, kind := c.GetKinded(v, t, h, epoch)
	return ns, kind == KindHit
}

// GetKinded implements KindedGetter (Get with the miss classified).
func (c *LRUNeighborCache) GetKinded(v graph.ID, t graph.EdgeType, h int, epoch uint64) ([]graph.ID, GetKind) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if x, ok := c.lru.Get(hopKey(v, t, h)); ok {
		e := x.(*lruEntryVal)
		if e.since <= epoch && epoch <= e.through {
			c.hits++
			return e.nbrs, KindHit
		}
		c.epochMisses++
		return nil, KindEpochMiss
	}
	c.misses++
	return nil, KindMiss
}

func (c *LRUNeighborCache) Observe(v graph.ID, t graph.EdgeType, h int, epoch, since uint64, nbrs []graph.ID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := hopKey(v, t, h)
	if x, ok := c.lru.Get(key); ok {
		e := x.(*lruEntryVal)
		if e.since == since {
			// Same installed list observed at a newer epoch: re-validate.
			if epoch > e.through {
				e.through = epoch
			}
			return
		}
		if since < e.since {
			// An older-generation fetch (a pinned batch still recycling at
			// an epoch the entry's list supersedes) must not evict the
			// newer entry — replacing it would ping-pong re-validation
			// fetches between the pin and the head for the pin's lifetime.
			return
		}
	}
	c.lru.Put(key, &lruEntryVal{nbrs: nbrs, since: since, through: epoch})
}

// GetStale implements StaleReader (degraded reads while a shard is down);
// it counts as neither hit nor miss, since no valid-at-epoch answer was
// requested.
func (c *LRUNeighborCache) GetStale(v graph.ID, t graph.EdgeType, h int) ([]graph.ID, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if x, ok := c.lru.Get(hopKey(v, t, h)); ok {
		return x.(*lruEntryVal).nbrs, true
	}
	return nil, false
}

// Flush drops every entry (epoch numbering restarted on a shard); the
// cumulative counters survive.
func (c *LRUNeighborCache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lru.Flush()
}

func (c *LRUNeighborCache) Name() string { return "lru" }

// CachedVertices reports the resident entry count — (vertex, type, hop)
// keys, an upper bound on distinct hop-1 vertices (unchanged semantics
// from the pre-versioned cache).
func (c *LRUNeighborCache) CachedVertices() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Counters reports cumulative hits, plain misses (entry absent) and epoch
// misses (entry present but invalid at the requested epoch). The epoch-miss
// rate is the price of version safety under churn; benchmarks report it
// alongside the hit rate.
func (c *LRUNeighborCache) Counters() (hits, misses, epochMisses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.epochMisses
}

// HitRate reports hits / (hits + misses + epochMisses), or 0 before any
// access.
func (c *LRUNeighborCache) HitRate() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := c.hits + c.misses + c.epochMisses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// NoCache disables neighbor caching; every access is remote.
type NoCache struct{}

func (NoCache) Get(graph.ID, graph.EdgeType, int, uint64) ([]graph.ID, bool)      { return nil, false }
func (NoCache) Observe(graph.ID, graph.EdgeType, int, uint64, uint64, []graph.ID) {}
func (NoCache) Admits() bool                                                      { return false }
func (NoCache) Name() string                                                      { return "none" }
func (NoCache) CachedVertices() int                                               { return 0 }

// CacheRate returns the fraction of vertices whose hop-1 neighborhood the
// cache holds; this is the y-axis of Figure 8.
func CacheRate(c NeighborCache, n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(c.CachedVertices()) / float64(n)
}
