package storage

import (
	"testing"

	"repro/internal/graph"
)

func ids(vs ...graph.ID) []graph.ID { return vs }

// TestEmbCacheInvalidationScope: an update round drops exactly the entries
// whose dependency sets contain a touched vertex, and contiguous rounds
// implicitly revalidate the survivors (covered advances).
func TestEmbCacheInvalidationScope(t *testing.T) {
	c := NewEmbeddingCache(2, 16)
	// v10 depends on {10, 1, 2}; v20 on {20, 2, 3}; v30 on {30, 4}.
	c.Admit(10, []float64{1}, ids(10, 1, 2), []uint64{0, 0})
	c.Admit(20, []float64{2}, ids(20, 2, 3), []uint64{0, 0})
	c.Admit(30, []float64{3}, ids(30, 4), []uint64{0, 0})

	if n := c.Invalidate(0, 1, ids(2)); n != 2 {
		t.Fatalf("touch(2) dropped %d entries, want 2", n)
	}
	if c.Contains(10) || c.Contains(20) {
		t.Fatal("dependents of touched vertex still cached")
	}
	if !c.Contains(30) {
		t.Fatal("unrelated entry was dropped")
	}
	// Survivor is implicitly proven at the new epoch: zero lag, still served.
	if _, ok := c.Get(30, 0); !ok {
		t.Fatal("survivor not served at lag 0 after contiguous round")
	}
	// Dropped vertices are queued dirty for the refresher.
	dirty := c.TakeDirty(8)
	if len(dirty) != 2 {
		t.Fatalf("dirty = %v, want the two dropped vertices", dirty)
	}
}

// TestEmbCacheCoveredContiguity: an epoch gap (a round applied out-of-band,
// never routed through Invalidate) stalls the covered frontier, so entries
// age out by the lag bound instead of being wrongly revalidated.
func TestEmbCacheCoveredContiguity(t *testing.T) {
	c := NewEmbeddingCache(1, 16)
	c.Admit(1, []float64{1}, ids(1), []uint64{0})

	// Epoch 1 was applied out-of-band: only its head is observed.
	c.NoteHeads([]uint64{1})
	// Epoch 2 routes through Invalidate but is non-contiguous: covered must
	// not advance past the unobserved round.
	c.Invalidate(0, 2, ids(99))
	if _, ok := c.Get(1, 1); ok {
		t.Fatal("entry served within lag 1 despite unprocessed epoch 1")
	}
	if _, ok := c.Get(1, 2); !ok {
		t.Fatal("entry refused at lag 2; heads=2, basis=0")
	}

	// A contiguous history advances covered all the way.
	c2 := NewEmbeddingCache(1, 16)
	c2.Admit(1, []float64{1}, ids(1), []uint64{0})
	c2.Invalidate(0, 1, ids(99))
	c2.Invalidate(0, 2, ids(98))
	if _, ok := c2.Get(1, 0); !ok {
		t.Fatal("entry not served at lag 0 after contiguous rounds")
	}
}

// TestEmbCacheAdmissionRace: an embedding computed from a basis snapshot
// older than a round that touched one of its dependencies must not be
// admitted — it may mix data generations.
func TestEmbCacheAdmissionRace(t *testing.T) {
	c := NewEmbeddingCache(1, 16)
	c.Invalidate(0, 1, ids(7))

	if c.Admit(10, []float64{1}, ids(10, 7), []uint64{0}) {
		t.Fatal("admitted an entry whose dep was touched after its basis")
	}
	if c.Admit(11, []float64{1}, ids(11, 8), []uint64{0}) != true {
		t.Fatal("rejected an entry whose deps the round did not touch")
	}
	if !c.Admit(12, []float64{1}, ids(12, 7), []uint64{1}) {
		t.Fatal("rejected an entry whose basis already covers the round")
	}
	st := c.Stats()
	if st.AdmitRejects != 1 {
		t.Fatalf("AdmitRejects = %d, want 1", st.AdmitRejects)
	}
}

// TestEmbCacheInitCovered: seeding from a startup probe makes bases below
// the probe unverifiable (ring floor) while post-probe admissions work.
func TestEmbCacheInitCovered(t *testing.T) {
	c := NewEmbeddingCache(1, 16)
	c.InitCovered([]uint64{5})
	if c.Admit(1, []float64{1}, ids(1), []uint64{4}) {
		t.Fatal("admitted a basis below the startup floor")
	}
	if !c.Admit(1, []float64{1}, ids(1), []uint64{5}) {
		t.Fatal("rejected a basis at the startup floor")
	}
	if _, ok := c.Get(1, 0); !ok {
		t.Fatal("entry at the frontier not served at lag 0")
	}
}

// TestEmbCacheLRUDirtyBasis: capacity eviction is LRU, TakeDirty pops
// hottest-first, SetBasis only raises.
func TestEmbCacheLRUDirtyBasis(t *testing.T) {
	c := NewEmbeddingCache(1, 2)
	c.Admit(1, []float64{1}, ids(1), []uint64{0})
	c.Admit(2, []float64{2}, ids(2), []uint64{0})
	c.Get(1, 0) // 1 is now MRU
	c.Admit(3, []float64{3}, ids(3), []uint64{0})
	if c.Contains(2) || !c.Contains(1) || !c.Contains(3) {
		t.Fatal("LRU eviction dropped the wrong entry")
	}

	// Hotness ranking: hammer 3, then invalidate both.
	for i := 0; i < 5; i++ {
		c.Get(3, 0)
	}
	c.Invalidate(0, 1, ids(1, 3))
	dirty := c.TakeDirty(1)
	if len(dirty) != 1 || dirty[0] != 3 {
		t.Fatalf("TakeDirty = %v, want the hottest vertex 3", dirty)
	}

	c.Admit(4, []float64{4}, ids(4), []uint64{3})
	c.SetBasis(4, []uint64{2}) // lower: ignored
	c.NoteHeads([]uint64{3})
	if _, ok := c.Get(4, 0); !ok {
		t.Fatal("SetBasis lowered an entry's proven epoch")
	}
	c.SetBasis(4, []uint64{9})
	c.NoteHeads([]uint64{9})
	if _, ok := c.Get(4, 0); !ok {
		t.Fatal("SetBasis did not raise the proven epoch")
	}
}

// TestEmbCacheImportanceEviction: with a scorer installed, eviction spares
// high-importance entries within the tail scan — the LRU-most entry is
// passed over when a colder-by-importance entry sits near the tail — and
// without a scorer eviction is exact LRU.
func TestEmbCacheImportanceEviction(t *testing.T) {
	imp := map[graph.ID]float64{1: 10, 2: 0, 3: 0, 4: 0}
	c := NewEmbeddingCache(1, 3)
	c.SetImportance(func(v graph.ID) float64 { return imp[v] })
	c.Admit(1, []float64{1}, ids(1), []uint64{0}) // hub, least recently used
	c.Admit(2, []float64{2}, ids(2), []uint64{0})
	c.Admit(3, []float64{3}, ids(3), []uint64{0})
	// Cache full. Admitting 4 must evict a zero-importance entry (2, the
	// least recent of them), not the LRU-tail hub 1.
	c.Admit(4, []float64{4}, ids(4), []uint64{0})
	if !c.Contains(1) {
		t.Fatal("eviction dropped the high-importance hub")
	}
	if c.Contains(2) {
		t.Fatal("eviction spared the coldest zero-importance entry")
	}
	if !c.Contains(3) || !c.Contains(4) {
		t.Fatal("eviction dropped more than one entry")
	}

	// Ties (all importance 0) must preserve exact LRU order.
	c2 := NewEmbeddingCache(1, 2)
	c2.SetImportance(func(graph.ID) float64 { return 0 })
	c2.Admit(1, []float64{1}, ids(1), []uint64{0})
	c2.Admit(2, []float64{2}, ids(2), []uint64{0})
	c2.Get(1, 0)
	c2.Admit(3, []float64{3}, ids(3), []uint64{0})
	if c2.Contains(2) || !c2.Contains(1) {
		t.Fatal("tied importance broke LRU eviction order")
	}
}

// TestEmbCacheImportanceDirtyRank: the dirty queue ranks by importance-
// weighted hotness, so a moderately hit hub outranks a hammered cold
// vertex when its importance justifies it.
func TestEmbCacheImportanceDirtyRank(t *testing.T) {
	imp := map[graph.ID]float64{1: 9, 2: 0}
	c := NewEmbeddingCache(1, 8)
	c.SetImportance(func(v graph.ID) float64 { return imp[v] })
	c.Admit(1, []float64{1}, ids(1), []uint64{0})
	c.Admit(2, []float64{2}, ids(2), []uint64{0})
	c.Get(1, 0) // hub: 1 hit -> hotness (1+1)*(1+9) = 20
	for i := 0; i < 5; i++ {
		c.Get(2, 0) // cold: 5 hits -> hotness (5+1)*(1+0) = 6
	}
	c.Invalidate(0, 1, ids(1, 2))
	dirty := c.TakeDirty(2)
	if len(dirty) != 2 || dirty[0] != 1 || dirty[1] != 2 {
		t.Fatalf("TakeDirty = %v, want importance-weighted order [1 2]", dirty)
	}
}
