package storage

import (
	"repro/internal/graph"
)

// Store is the physical organization of one graph partition: an adjacency
// table (delegated to the CSR graph) whose vertex and edge entries reference
// deduplicated attribute vectors in the indices I_V and I_E.
type Store struct {
	G *graph.Graph

	VIndex *AttributeIndex // I_V: vertex attributes
	EIndex *AttributeIndex // I_E: edge attributes

	vattrIdx []int32 // per-vertex index into VIndex, -1 when absent
}

// StoreOptions configures store construction.
type StoreOptions struct {
	// VertexAttrCache and EdgeAttrCache size the LRU caches fronting I_V
	// and I_E. Zero disables caching.
	VertexAttrCache int
	EdgeAttrCache   int
}

// DefaultStoreOptions mirrors the production defaults: small caches that
// capture the frequently accessed head of the attribute distribution.
func DefaultStoreOptions() StoreOptions {
	return StoreOptions{VertexAttrCache: 4096, EdgeAttrCache: 4096}
}

// BuildStore constructs the physical store for g, interning every vertex
// attribute vector into I_V. Edge attributes are interned lazily because the
// CSR already pools them; I_E is populated on first access patterns via
// InternEdgeAttr.
func BuildStore(g *graph.Graph, opts StoreOptions) *Store {
	s := &Store{
		G:        g,
		VIndex:   NewAttributeIndex(opts.VertexAttrCache),
		EIndex:   NewAttributeIndex(opts.EdgeAttrCache),
		vattrIdx: make([]int32, g.NumVertices()),
	}
	for v := 0; v < g.NumVertices(); v++ {
		s.vattrIdx[v] = s.VIndex.Intern(g.VertexAttr(graph.ID(v)))
	}
	return s
}

// VertexAttr fetches the attributes of v through I_V's cache.
func (s *Store) VertexAttr(v graph.ID) []float64 {
	return s.VIndex.Lookup(s.vattrIdx[v])
}

// VertexAttrIndex exposes the I_V index of v, matching the adjacency-table
// layout in Figure 4 of the paper.
func (s *Store) VertexAttrIndex(v graph.ID) int32 { return s.vattrIdx[v] }

// SpaceReport quantifies the separate-storage saving: bytes to store every
// attribute inline in the adjacency table versus the deduplicated layout.
type SpaceReport struct {
	InlineBytes int64 // O(n * N_D * N_L): attrs copied per adjacency entry
	DedupBytes  int64 // O(n * N_D + N_A * N_L): 4-byte indices + distinct vectors
	Distinct    int   // N_A
	Ratio       float64
}

// Space computes the space report for the current store.
func (s *Store) Space() SpaceReport {
	g := s.G
	var inline int64
	for v := 0; v < g.NumVertices(); v++ {
		attrLen := int64(len(g.VertexAttr(graph.ID(v))))
		// Inline layout repeats a vertex's attributes in the adjacency list
		// of each of its in-neighbors (neighbors materialize attrs locally).
		repeats := int64(g.TotalInDegree(graph.ID(v))) + 1
		inline += repeats * attrLen * 8
	}
	dedup := int64(4*g.NumVertices()) + s.VIndex.Bytes()
	r := SpaceReport{InlineBytes: inline, DedupBytes: dedup, Distinct: s.VIndex.NumDistinct()}
	if dedup > 0 {
		r.Ratio = float64(inline) / float64(dedup)
	}
	return r
}
