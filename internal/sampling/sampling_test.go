package sampling

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestAliasUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewAlias([]float64{1, 1, 1, 1})
	counts := make([]int, 4)
	for i := 0; i < 40000; i++ {
		counts[a.Draw(rng)]++
	}
	for i, c := range counts {
		if c < 9000 || c > 11000 {
			t.Fatalf("uniform alias skewed: counts[%d]=%d", i, c)
		}
	}
}

func TestAliasWeighted(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := NewAlias([]float64{1, 3})
	counts := make([]int, 2)
	for i := 0; i < 40000; i++ {
		counts[a.Draw(rng)]++
	}
	ratio := float64(counts[1]) / float64(counts[0])
	if ratio < 2.6 || ratio > 3.4 {
		t.Fatalf("ratio = %f, want ~3", ratio)
	}
}

func TestAliasEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if NewAlias(nil).Draw(rng) != -1 {
		t.Fatal("empty alias must return -1")
	}
	// All-zero weights degrade to uniform.
	a := NewAlias([]float64{0, 0, 0})
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		seen[a.Draw(rng)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("zero-weight alias not uniform: %v", seen)
	}
	// Negative weights treated as zero.
	b := NewAlias([]float64{-5, 1})
	for i := 0; i < 100; i++ {
		if b.Draw(rng) == 0 {
			t.Fatal("negative-weight item drawn")
		}
	}
}

// Property: alias table draws every positive-weight item eventually and
// never draws zero-weight ones (when positive mass exists).
func TestQuickAliasSupport(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		ws := make([]float64, n)
		anyPos := false
		for i := range ws {
			if rng.Float64() < 0.5 {
				ws[i] = rng.Float64() + 0.1
				anyPos = true
			}
		}
		if !anyPos {
			ws[0] = 1
		}
		a := NewAlias(ws)
		for i := 0; i < 2000; i++ {
			d := a.Draw(rng)
			if ws[d] <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func userItemGraph() *graph.Graph {
	s := graph.MustSchema([]string{"user", "item"}, []string{"click", "buy"})
	b := graph.NewBuilder(s, true)
	for i := 0; i < 6; i++ {
		b.AddVertex(0, nil)
	}
	for i := 0; i < 4; i++ {
		b.AddVertex(1, nil)
	}
	rng := rand.New(rand.NewSource(7))
	for u := graph.ID(0); u < 6; u++ {
		for k := 0; k < 3; k++ {
			b.AddEdge(u, 6+graph.ID(rng.Intn(4)), 0, 1+rng.Float64())
		}
		b.AddEdge(u, 6+graph.ID(rng.Intn(4)), 1, 1)
	}
	return b.Finalize()
}

func TestTraverseVertices(t *testing.T) {
	g := userItemGraph()
	s := NewTraverse(g, rand.New(rand.NewSource(1)))
	batch := s.SampleVertices(0, 16)
	if len(batch) != 16 {
		t.Fatalf("batch = %d", len(batch))
	}
	for _, v := range batch {
		if g.OutDegree(v, 0) == 0 {
			t.Fatalf("sampled vertex %d has no click edges", v)
		}
	}
}

func TestTraverseVerticesOfType(t *testing.T) {
	g := userItemGraph()
	s := NewTraverse(g, rand.New(rand.NewSource(1)))
	for _, v := range s.SampleVerticesOfType(1, 8) {
		if g.VertexType(v) != 1 {
			t.Fatalf("vertex %d is not an item", v)
		}
	}
}

func TestTraverseEdges(t *testing.T) {
	g := userItemGraph()
	s := NewTraverse(g, rand.New(rand.NewSource(1)))
	es := s.SampleEdges(1, 10)
	if len(es) != 10 {
		t.Fatalf("edges = %d", len(es))
	}
	for _, e := range es {
		if !g.HasEdge(e.Src, e.Dst, 1) {
			t.Fatalf("sampled nonexistent edge %+v", e)
		}
	}
}

func TestTraverseEpoch(t *testing.T) {
	g := userItemGraph()
	s := NewTraverse(g, rand.New(rand.NewSource(1)))
	ep := s.EpochVertices(0)
	if len(ep) != 6 {
		t.Fatalf("epoch = %v", ep)
	}
}

func TestNeighborhoodAlignment(t *testing.T) {
	g := userItemGraph()
	s := NewNeighborhood(NewGraphSource(g), rand.New(rand.NewSource(1)))
	batch := []graph.ID{0, 1, 2}
	ctx, err := s.Sample(0, batch, []int{4, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(ctx.Layers[0]) != 3 || len(ctx.Layers[1]) != 12 || len(ctx.Layers[2]) != 24 {
		t.Fatalf("layer sizes: %d %d %d", len(ctx.Layers[0]), len(ctx.Layers[1]), len(ctx.Layers[2]))
	}
	// Hop-1 samples must be actual neighbors.
	for i, v := range batch {
		for _, u := range ctx.NeighborsOf(0, i) {
			if !g.HasEdge(v, u, 0) {
				t.Fatalf("%d -> %d is not a click edge", v, u)
			}
		}
	}
}

func TestNeighborhoodPadsIsolated(t *testing.T) {
	g := userItemGraph()
	s := NewNeighborhood(NewGraphSource(g), rand.New(rand.NewSource(1)))
	// Items have no out-edges: their samples must be themselves.
	ctx, err := s.Sample(0, []graph.ID{6}, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range ctx.Layers[1] {
		if u != 6 {
			t.Fatalf("isolated vertex padded with %d", u)
		}
	}
}

func TestNeighborhoodByWeight(t *testing.T) {
	// Vertex 0 has two neighbors with weights 1 and 99; weighted sampling
	// must strongly prefer the heavy one.
	b := graph.NewBuilder(graph.SimpleSchema(), true)
	b.AddVertices(0, 3)
	b.AddEdge(0, 1, 0, 1)
	b.AddEdge(0, 2, 0, 99)
	g := b.Finalize()
	s := NewNeighborhood(NewGraphSource(g), rand.New(rand.NewSource(1)))
	s.ByWeight = true
	ctx, _ := s.Sample(0, []graph.ID{0}, []int{200})
	heavy := 0
	for _, u := range ctx.Layers[1] {
		if u == 2 {
			heavy++
		}
	}
	if heavy < 180 {
		t.Fatalf("weighted sampling picked heavy neighbor only %d/200", heavy)
	}
}

func TestNegativeSampler(t *testing.T) {
	g := userItemGraph()
	rng := rand.New(rand.NewSource(5))
	neg := NewNegative(g, 0, rng)
	if neg.NumCandidates() == 0 {
		t.Fatal("no candidates")
	}
	batch := []graph.ID{0, 1}
	out := neg.Sample(batch, 5)
	if len(out) != 10 {
		t.Fatalf("out = %d", len(out))
	}
	for _, v := range out {
		if g.VertexType(v) != 1 {
			t.Fatalf("negative %d is not an item (candidates must have in-edges)", v)
		}
	}
}

func TestNegativeAvoiding(t *testing.T) {
	g := userItemGraph()
	neg := NewNegative(g, 0, rand.New(rand.NewSource(5)))
	exclude := map[graph.ID]struct{}{6: {}, 7: {}}
	for _, v := range neg.SampleAvoiding(exclude, 50) {
		if _, bad := exclude[v]; bad {
			t.Fatalf("excluded vertex %d sampled", v)
		}
	}
}

func TestNegativeDistributionFollowsDegree(t *testing.T) {
	// Item in-degree differences should shape negative sampling frequency.
	b := graph.NewBuilder(graph.MustSchema([]string{"u", "i"}, []string{"e"}), true)
	for i := 0; i < 20; i++ {
		b.AddVertex(0, nil)
	}
	hot := b.AddVertex(1, nil)
	cold := b.AddVertex(1, nil)
	for u := graph.ID(0); u < 20; u++ {
		b.AddEdge(u, hot, 0, 1)
	}
	b.AddEdge(0, cold, 0, 1)
	g := b.Finalize()
	neg := NewNegative(g, 0, rand.New(rand.NewSource(5)))
	counts := map[graph.ID]int{}
	for _, v := range neg.Sample([]graph.ID{1}, 4000) {
		counts[v]++
	}
	// Expected ratio (20/1)^0.75 ~ 9.5.
	ratio := float64(counts[hot]) / math.Max(1, float64(counts[cold]))
	if ratio < 5 || ratio > 16 {
		t.Fatalf("unigram^0.75 ratio = %f", ratio)
	}
}

func TestWeightedSamplerDrawAndSet(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := NewWeighted([]float64{1, 0, 3}, 3)
	if s.Total() != 4 {
		t.Fatalf("total = %f", s.Total())
	}
	counts := make([]int, 3)
	for i := 0; i < 8000; i++ {
		counts[s.Draw(rng)]++
	}
	if counts[1] != 0 {
		t.Fatal("zero-weight item drawn")
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("ratio = %f", ratio)
	}
	s.Set(1, 10)
	if s.Weight(1) != 10 || s.Total() != 14 {
		t.Fatalf("after set: w=%f total=%f", s.Weight(1), s.Total())
	}
}

func TestWeightedSamplerBackward(t *testing.T) {
	s := NewWeighted(nil, 4)
	// No registered gradient: Backward is a no-op.
	s.Backward(0, 1.0)
	if s.Weight(0) != 1 {
		t.Fatal("backward without gradient changed weights")
	}
	// Register: each backward adds signal * 0.5.
	s.RegisterGradient(func(idx int, signal float64) float64 { return 0.5 * signal })
	s.Backward(0, 2.0)
	if s.Weight(0) != 2.0 {
		t.Fatalf("w0 = %f", s.Weight(0))
	}
	// Weight floors at zero.
	s.Backward(1, -100)
	if s.Weight(1) != 0 {
		t.Fatalf("w1 = %f", s.Weight(1))
	}
}

func TestWeightedAllZero(t *testing.T) {
	s := NewWeighted([]float64{0, 0}, 2)
	if s.Draw(rand.New(rand.NewSource(1))) != -1 {
		t.Fatal("all-zero sampler must return -1")
	}
}

func TestMPSCQueue(t *testing.T) {
	q := newMPSCQueue()
	if q.pop() != nil {
		t.Fatal("empty pop")
	}
	sum := 0
	q.push(func() { sum += 1 })
	q.push(func() { sum += 2 })
	for op := q.pop(); op != nil; op = q.pop() {
		op()
	}
	if sum != 3 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestBucketsSerializePerVertex(t *testing.T) {
	b := NewBuckets(4)
	defer b.Close()

	// Concurrent unsynchronized increments to per-vertex counters: the
	// bucket serialization is the only thing preventing a data race (run
	// with -race) and lost updates.
	const perVertex = 500
	counters := make([]int, 8) // vertices 0..7
	var wg sync.WaitGroup
	for v := graph.ID(0); v < 8; v++ {
		for p := 0; p < 4; p++ { // 4 producers per vertex
			wg.Add(1)
			go func(v graph.ID) {
				defer wg.Done()
				for i := 0; i < perVertex/4; i++ {
					b.SubmitWait(v, func() { counters[v]++ })
				}
			}(v)
		}
	}
	wg.Wait()
	for v, c := range counters {
		if c != perVertex {
			t.Fatalf("counter[%d] = %d, want %d (lost updates)", v, c, perVertex)
		}
	}
	if b.Processed() != int64(8*perVertex) {
		t.Fatalf("processed = %d", b.Processed())
	}
}

func TestBucketsCloseDrains(t *testing.T) {
	b := NewBuckets(2)
	done := make([]bool, 100)
	for i := 0; i < 100; i++ {
		i := i
		b.Submit(graph.ID(i), func() { done[i] = true })
	}
	b.Close()
	for i, d := range done {
		if !d {
			t.Fatalf("op %d not drained on close", i)
		}
	}
}

func TestBucketOfStable(t *testing.T) {
	b := NewBuckets(3)
	defer b.Close()
	for v := graph.ID(0); v < 100; v++ {
		if b.bucketOf(v) != b.bucketOf(v) {
			t.Fatal("bucketOf must be deterministic")
		}
		if i := b.bucketOf(v); i < 0 || i >= 3 {
			t.Fatalf("bucket out of range: %d", i)
		}
	}
}
