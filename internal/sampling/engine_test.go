package sampling

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/graph"
)

// weightedStar builds a graph whose vertex 0 has out-neighbors 1..n with the
// given weights, for distribution tests.
func weightedStar(weights []float64) *graph.Graph {
	b := graph.NewBuilder(graph.SimpleSchema(), true)
	b.AddVertices(0, len(weights)+1)
	for i, w := range weights {
		b.AddEdge(0, graph.ID(i+1), 0, w)
	}
	return b.Finalize()
}

// TestAliasIndexChiSquare verifies that AliasIndex draws follow the edge
// weights: a chi-square goodness-of-fit on 60k draws against expected
// frequencies, with the p=0.001 critical value for the relevant degrees of
// freedom. Failure probability under a correct sampler is ~0.1%, and the
// Rng is deterministic, so the test is stable.
func TestAliasIndexChiSquare(t *testing.T) {
	weights := []float64{1, 2, 3, 4, 10}
	g := weightedStar(weights)
	ai := NewAliasIndex(g, 0)
	rng := NewRng(12345)

	const draws = 60000
	counts := make([]int, len(weights))
	for i := 0; i < draws; i++ {
		d := ai.Draw(0, rng)
		if d < 0 || d >= len(weights) {
			t.Fatalf("draw out of range: %d", d)
		}
		counts[d]++
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	chi2 := 0.0
	for i, c := range counts {
		exp := float64(draws) * weights[i] / total
		chi2 += (float64(c) - exp) * (float64(c) - exp) / exp
	}
	// Critical value of chi-square with df=4 at p=0.001.
	if chi2 > 18.47 {
		t.Fatalf("chi-square = %.2f > 18.47; counts = %v", chi2, counts)
	}
}

func TestAliasIndexEmptyAndUniform(t *testing.T) {
	// Vertex with no out-edges draws -1; zero weights degrade to uniform.
	b := graph.NewBuilder(graph.SimpleSchema(), true)
	b.AddVertices(0, 4)
	b.AddEdge(0, 1, 0, 0)
	b.AddEdge(0, 2, 0, 0)
	g := b.Finalize()
	ai := NewAliasIndex(g, 0)
	rng := NewRng(1)
	if ai.Draw(3, rng) != -1 {
		t.Fatal("edge-less vertex must draw -1")
	}
	if ai.Degree(0) != 2 || ai.Degree(3) != 0 {
		t.Fatalf("degrees: %d %d", ai.Degree(0), ai.Degree(3))
	}
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		seen[ai.Draw(0, rng)] = true
	}
	if !seen[0] || !seen[1] {
		t.Fatalf("zero-weight draws not uniform: %v", seen)
	}
}

func TestSampleIntoMatchesSampleSemantics(t *testing.T) {
	g := userItemGraph()
	s := NewNeighborhood(NewGraphSource(g), rand.New(rand.NewSource(1)))
	var ctx Context
	rng := NewRng(9)
	batch := []graph.ID{0, 1, 2}
	if err := s.SampleInto(&ctx, 0, batch, []int{4, 2}, rng); err != nil {
		t.Fatal(err)
	}
	if len(ctx.Layers[0]) != 3 || len(ctx.Layers[1]) != 12 || len(ctx.Layers[2]) != 24 {
		t.Fatalf("layer sizes: %d %d %d", len(ctx.Layers[0]), len(ctx.Layers[1]), len(ctx.Layers[2]))
	}
	for i, v := range batch {
		for _, u := range ctx.NeighborsOf(0, i) {
			if !g.HasEdge(v, u, 0) {
				t.Fatalf("%d -> %d is not a click edge", v, u)
			}
		}
	}
	// Isolated vertices pad with themselves, same as Sample.
	if err := s.SampleInto(&ctx, 0, []graph.ID{6}, []int{3}, rng); err != nil {
		t.Fatal(err)
	}
	for _, u := range ctx.Layers[1] {
		if u != 6 {
			t.Fatalf("isolated vertex padded with %d", u)
		}
	}
	// Reuse shrinks layers correctly: a narrower second call must not leak
	// stale entries.
	if got := len(ctx.Layers); got != 2 {
		t.Fatalf("layers after narrower call = %d, want 2", got)
	}
}

func TestSampleIntoWeighted(t *testing.T) {
	g := weightedStar([]float64{1, 99})
	s := NewNeighborhood(NewGraphSource(g), rand.New(rand.NewSource(1)))
	s.ByWeight = true
	var ctx Context
	if err := s.SampleInto(&ctx, 0, []graph.ID{0}, []int{400}, NewRng(3)); err != nil {
		t.Fatal(err)
	}
	heavy := 0
	for _, u := range ctx.Layers[1] {
		if u == 2 {
			heavy++
		}
	}
	if heavy < 360 {
		t.Fatalf("weighted SampleInto picked heavy neighbor only %d/400", heavy)
	}
}

// TestSampleIntoConcurrent shares one Neighborhood (and its lazily built
// AliasIndex) across goroutines, each with its own Context and Rng; run
// with -race to validate the sharing contract.
func TestSampleIntoConcurrent(t *testing.T) {
	g := userItemGraph()
	s := NewNeighborhood(NewGraphSource(g), rand.New(rand.NewSource(1)))
	s.ByWeight = true // exercises the concurrent lazy index build
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			var ctx Context
			rng := NewRng(seed)
			batch := []graph.ID{0, 1, 2, 3}
			for i := 0; i < 200; i++ {
				if err := s.SampleInto(&ctx, 0, batch, []int{4, 2}, rng); err != nil {
					t.Errorf("SampleInto: %v", err)
					return
				}
				if len(ctx.Layers[2]) != 4*4*2 {
					t.Errorf("misaligned layer: %d", len(ctx.Layers[2]))
					return
				}
			}
		}(uint64(w + 1))
	}
	wg.Wait()
}

func TestSampleIntoSteadyStateAllocFree(t *testing.T) {
	g := weightedStar([]float64{1, 2, 3, 4})
	s := NewNeighborhood(NewGraphSource(g), rand.New(rand.NewSource(1)))
	s.ByWeight = true
	var ctx Context
	rng := NewRng(7)
	batch := []graph.ID{0, 0, 0, 0}
	hops := []int{5, 3}
	// Warm: builds the alias index and grows the layer buffers.
	for i := 0; i < 4; i++ {
		if err := s.SampleInto(&ctx, 0, batch, hops, rng); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := s.SampleInto(&ctx, 0, batch, hops, rng); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state SampleInto allocates %.1f allocs/op, want 0", allocs)
	}
}

// listSource is a minimal Source without the BatchSampler capability,
// standing in for exotic backends that only serve neighbor lists.
type listSource struct {
	g *graph.Graph
}

func (s listSource) NeighborsBatch(dst [][]graph.ID, vs []graph.ID, t graph.EdgeType) error {
	for i, v := range vs {
		dst[i] = s.g.OutNeighbors(v, t)
	}
	return nil
}

// TestSampleIntoGenericSource exercises the NeighborsBatch fallback path:
// uniform sampling works (and pads isolated vertices), weighted sampling is
// an explicit error since weights never leave a batch source.
func TestSampleIntoGenericSource(t *testing.T) {
	g := userItemGraph()
	s := NewNeighborhood(listSource{g}, rand.New(rand.NewSource(1)))
	var ctx Context
	rng := NewRng(5)
	batch := []graph.ID{0, 1, 6}
	if err := s.SampleInto(&ctx, 0, batch, []int{3, 2}, rng); err != nil {
		t.Fatal(err)
	}
	if len(ctx.Layers[1]) != 9 || len(ctx.Layers[2]) != 18 {
		t.Fatalf("layer sizes %d %d", len(ctx.Layers[1]), len(ctx.Layers[2]))
	}
	for i, v := range batch {
		for _, u := range ctx.NeighborsOf(0, i) {
			if u != v && !g.HasEdge(v, u, 0) {
				t.Fatalf("%d -> %d is not an edge", v, u)
			}
		}
	}
	// Vertex 6 is isolated: its draws must be itself.
	for _, u := range ctx.NeighborsOf(0, 2) {
		if u != 6 {
			t.Fatalf("isolated vertex padded with %d", u)
		}
	}
	s.ByWeight = true
	if err := s.SampleInto(&ctx, 0, batch, []int{2}, rng); err != ErrWeightedUnsupported {
		t.Fatalf("weighted over generic source: %v, want ErrWeightedUnsupported", err)
	}
}

func TestSampleVerticesEmptyPool(t *testing.T) {
	// Edge type 1 ("buy") exists in the schema but carries no edges: the old
	// rejection loop would spin forever here.
	s := graph.MustSchema([]string{"v"}, []string{"click", "buy"})
	b := graph.NewBuilder(s, true)
	b.AddVertices(0, 5)
	b.AddEdge(0, 1, 0, 1)
	g := b.Finalize()
	tr := NewTraverse(g, rand.New(rand.NewSource(1)))
	if got := tr.SampleVertices(1, 8); len(got) != 0 {
		t.Fatalf("empty pool must yield empty batch, got %v", got)
	}
	if got := tr.SampleEdges(1, 8); len(got) != 0 {
		t.Fatalf("empty edge set must yield empty batch, got %v", got)
	}
	// And the non-empty type still works.
	if got := tr.SampleVertices(0, 8); len(got) != 8 {
		t.Fatalf("batch = %d, want 8", len(got))
	}
}

func TestSampleVerticesOfTypeEmptyPool(t *testing.T) {
	s := graph.MustSchema([]string{"user", "item"}, []string{"e"})
	b := graph.NewBuilder(s, true)
	b.AddVertex(0, nil) // users only; item pool is empty
	g := b.Finalize()
	tr := NewTraverse(g, rand.New(rand.NewSource(1)))
	if got := tr.SampleVerticesOfType(1, 4); len(got) != 0 {
		t.Fatalf("empty type pool must yield empty batch, got %v", got)
	}
}

func TestRngBasics(t *testing.T) {
	rng := NewRng(1)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		n := rng.Intn(10)
		if n < 0 || n >= 10 {
			t.Fatalf("Intn out of range: %d", n)
		}
		counts[n]++
	}
	for i, c := range counts {
		if c < 9000 || c > 11000 {
			t.Fatalf("Intn skewed: counts[%d] = %d", i, c)
		}
	}
	for i := 0; i < 1000; i++ {
		if f := rng.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %f", f)
		}
	}
	// Distinct seeds give distinct streams.
	a, b := NewRng(1), NewRng(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams from distinct seeds collided %d/100 times", same)
	}
}
