package sampling

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// Before/after numbers for these benchmarks are tracked in CHANGES.md; the
// "before" weighted path constructed a fresh alias table per vertex per hop.

func benchSampleGraph(n, deg int) *graph.Graph {
	b := graph.NewBuilder(graph.SimpleSchema(), true)
	b.AddVertices(0, n)
	rng := rand.New(rand.NewSource(42))
	for v := 0; v < n; v++ {
		for j := 0; j < deg; j++ {
			b.AddEdge(graph.ID(v), graph.ID(rng.Intn(n)), 0, 1+rng.Float64())
		}
	}
	return b.Finalize()
}

func BenchmarkNeighborhoodSample(b *testing.B) {
	g := benchSampleGraph(5000, 16)
	batch := make([]graph.ID, 512)
	for i := range batch {
		batch[i] = graph.ID(i)
	}
	hops := []int{5, 3}
	for _, w := range []bool{false, true} {
		name := "uniform"
		if w {
			name = "weighted"
		}
		b.Run(name, func(b *testing.B) {
			s := NewNeighborhood(NewGraphSource(g), rand.New(rand.NewSource(1)))
			s.ByWeight = w
			var ctx Context
			rng := NewRng(1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.SampleInto(&ctx, 0, batch, hops, rng); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAliasIndexBuild(b *testing.B) {
	g := benchSampleGraph(5000, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewAliasIndex(g, 0)
	}
}

func BenchmarkRng(b *testing.B) {
	b.Run("splitmix", func(b *testing.B) {
		rng := NewRng(1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rng.Intn(16)
		}
	})
	b.Run("mathrand", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rng.Intn(16)
		}
	})
}
