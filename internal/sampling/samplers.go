package sampling

import (
	"math"
	"math/rand"

	"repro/internal/graph"
)

// Source abstracts where neighbor lists come from: a local graph, a graph
// server partition, or a distributed client with caching. Weights may be nil
// (uniform).
type Source interface {
	SampleNeighbors(v graph.ID, t graph.EdgeType) (ns []graph.ID, ws []float64, err error)
}

// GraphSource serves neighbors from an in-memory graph.
type GraphSource struct {
	G *graph.Graph
}

// SampleNeighbors implements Source.
func (s GraphSource) SampleNeighbors(v graph.ID, t graph.EdgeType) ([]graph.ID, []float64, error) {
	return s.G.OutNeighbors(v, t), s.G.OutWeights(v, t), nil
}

// ---------------------------------------------------------------------------
// TRAVERSE sampler

// Traverse samples batches of vertices or edges of a given type from the
// (partitioned sub)graph; it is the entry point of every training loop
// (Figure 5: vertex = s1.sample(edge_type, batch_size)).
type Traverse struct {
	G   *graph.Graph
	Rng *rand.Rand
}

// NewTraverse creates a TRAVERSE sampler over g.
func NewTraverse(g *graph.Graph, rng *rand.Rand) *Traverse {
	return &Traverse{G: g, Rng: rng}
}

// SampleVertices draws batch source vertices uniformly among vertices that
// have at least one out-edge of type t.
func (s *Traverse) SampleVertices(t graph.EdgeType, batch int) []graph.ID {
	out := make([]graph.ID, 0, batch)
	n := s.G.NumVertices()
	for len(out) < batch {
		v := graph.ID(s.Rng.Intn(n))
		if s.G.OutDegree(v, t) > 0 {
			out = append(out, v)
		}
	}
	return out
}

// SampleVerticesOfType draws batch vertices uniformly among vertices of
// vertex type vt.
func (s *Traverse) SampleVerticesOfType(vt graph.VertexType, batch int) []graph.ID {
	pool := s.G.VerticesOfType(vt)
	out := make([]graph.ID, batch)
	for i := range out {
		out[i] = pool[s.Rng.Intn(len(pool))]
	}
	return out
}

// SampleEdges draws batch edges of type t uniformly, weighted by nothing
// but presence (uniform over CSR entries).
func (s *Traverse) SampleEdges(t graph.EdgeType, batch int) []graph.Edge {
	out := make([]graph.Edge, 0, batch)
	total := s.G.NumEdgesOfType(t)
	if total == 0 {
		return out
	}
	for len(out) < batch {
		// Pick a random CSR entry via a random source vertex weighted by
		// degree: draw a vertex proportional to its type-t out-degree by
		// rejection on a uniform entry index.
		v := graph.ID(s.Rng.Intn(s.G.NumVertices()))
		d := s.G.OutDegree(v, t)
		if d == 0 {
			continue
		}
		i := s.Rng.Intn(d)
		out = append(out, graph.Edge{
			Src:    v,
			Dst:    s.G.OutNeighbors(v, t)[i],
			Type:   t,
			Weight: s.G.OutWeights(v, t)[i],
		})
	}
	return out
}

// EpochVertices returns all vertices with out-edges of type t in shuffled
// order, for full-epoch traversal.
func (s *Traverse) EpochVertices(t graph.EdgeType) []graph.ID {
	var out []graph.ID
	for v := 0; v < s.G.NumVertices(); v++ {
		if s.G.OutDegree(graph.ID(v), t) > 0 {
			out = append(out, graph.ID(v))
		}
	}
	s.Rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// ---------------------------------------------------------------------------
// NEIGHBORHOOD sampler

// Context is the sampled multi-hop neighborhood of a vertex batch: Layers[0]
// is the batch itself; Layers[h] holds, for each vertex of Layers[h-1],
// exactly HopNums[h-1] sampled neighbors, flattened in order.
type Context struct {
	HopNums []int
	Layers  [][]graph.ID
}

// NeighborsOf returns the sampled neighbors of the i-th vertex of layer h
// (the slice aliases the layer storage).
func (c *Context) NeighborsOf(h, i int) []graph.ID {
	width := c.HopNums[h]
	return c.Layers[h+1][i*width : (i+1)*width]
}

// Neighborhood samples aligned fixed-size neighborhoods
// (Figure 5: context = s2.sample(edge_type, vertex, hop_nums)).
type Neighborhood struct {
	Src Source
	Rng *rand.Rand
	// ByWeight selects neighbors proportionally to edge weight instead of
	// uniformly.
	ByWeight bool
}

// NewNeighborhood creates a NEIGHBORHOOD sampler over src.
func NewNeighborhood(src Source, rng *rand.Rand) *Neighborhood {
	return &Neighborhood{Src: src, Rng: rng}
}

// Sample expands the batch hop by hop. Vertices with no neighbors under t
// are padded with themselves, keeping every layer perfectly aligned (the
// aligned output is what makes the downstream AGGREGATE batched).
func (s *Neighborhood) Sample(t graph.EdgeType, batch []graph.ID, hopNums []int) (*Context, error) {
	ctx := &Context{HopNums: hopNums, Layers: make([][]graph.ID, len(hopNums)+1)}
	ctx.Layers[0] = batch
	cur := batch
	for h, width := range hopNums {
		next := make([]graph.ID, 0, len(cur)*width)
		for _, v := range cur {
			ns, ws, err := s.Src.SampleNeighbors(v, t)
			if err != nil {
				return nil, err
			}
			if len(ns) == 0 {
				for i := 0; i < width; i++ {
					next = append(next, v)
				}
				continue
			}
			if s.ByWeight && ws != nil {
				alias := NewAlias(ws)
				for i := 0; i < width; i++ {
					next = append(next, ns[alias.Draw(s.Rng)])
				}
			} else {
				for i := 0; i < width; i++ {
					next = append(next, ns[s.Rng.Intn(len(ns))])
				}
			}
		}
		ctx.Layers[h+1] = next
		cur = next
	}
	return ctx, nil
}

// ---------------------------------------------------------------------------
// NEGATIVE sampler

// Negative draws negative examples from the smoothed unigram distribution
// P(v) ∝ deg(v)^power over candidate destination vertices of an edge type
// (Figure 5: neg = s3.sample(edge_type, vertex, neg_num)).
type Negative struct {
	Rng        *rand.Rand
	candidates []graph.ID
	table      *Alias
}

// NegativePower is the standard unigram smoothing exponent from word2vec,
// which the paper's negative samplers inherit.
const NegativePower = 0.75

// NewNegative builds a negative sampler for edge type t of g: candidates are
// all vertices with at least one in-edge of type t, weighted by
// in-degree^power.
func NewNegative(g *graph.Graph, t graph.EdgeType, rng *rand.Rand) *Negative {
	var cands []graph.ID
	var ws []float64
	for v := 0; v < g.NumVertices(); v++ {
		d := g.InDegree(graph.ID(v), t)
		if d > 0 {
			cands = append(cands, graph.ID(v))
			ws = append(ws, math.Pow(float64(d), NegativePower))
		}
	}
	return &Negative{Rng: rng, candidates: cands, table: NewAlias(ws)}
}

// Sample draws n negatives for each vertex of batch, avoiding the trivial
// collision with the vertex itself. Results are flattened batch-major.
func (s *Negative) Sample(batch []graph.ID, n int) []graph.ID {
	out := make([]graph.ID, 0, len(batch)*n)
	for _, v := range batch {
		for i := 0; i < n; i++ {
			out = append(out, s.drawAvoiding(v))
		}
	}
	return out
}

// SampleAvoiding draws n negatives avoiding every vertex in the exclusion
// set (e.g. the true positives of the current example).
func (s *Negative) SampleAvoiding(exclude map[graph.ID]struct{}, n int) []graph.ID {
	out := make([]graph.ID, 0, n)
	for len(out) < n {
		c := s.candidates[s.table.Draw(s.Rng)]
		if _, bad := exclude[c]; bad && len(s.candidates) > len(exclude) {
			continue
		}
		out = append(out, c)
	}
	return out
}

func (s *Negative) drawAvoiding(v graph.ID) graph.ID {
	for tries := 0; tries < 8; tries++ {
		c := s.candidates[s.table.Draw(s.Rng)]
		if c != v {
			return c
		}
	}
	return s.candidates[s.table.Draw(s.Rng)]
}

// NumCandidates reports the candidate pool size.
func (s *Negative) NumCandidates() int { return len(s.candidates) }
