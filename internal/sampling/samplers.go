package sampling

import (
	"math"
	"math/rand"

	"repro/internal/graph"
)

// ---------------------------------------------------------------------------
// TRAVERSE sampler

// Traverse samples batches of vertices or edges of a given type from the
// (partitioned sub)graph; it is the entry point of every training loop
// (Figure 5: vertex = s1.sample(edge_type, batch_size)).
type Traverse struct {
	G   *graph.Graph
	Rng *rand.Rand

	// eligible caches, per edge type, the vertices with at least one
	// out-edge of that type. Built on first use; a rejection loop over the
	// whole vertex range would degenerate (or never terminate when the pool
	// is empty) on sparse edge types.
	eligible map[graph.EdgeType][]graph.ID
	// edgeAlias caches, per edge type, an alias table over the eligible
	// vertices weighted by out-degree, making SampleEdges uniform over CSR
	// entries in O(1) per draw.
	edgeAlias map[graph.EdgeType]*Alias
}

// NewTraverse creates a TRAVERSE sampler over g.
func NewTraverse(g *graph.Graph, rng *rand.Rand) *Traverse {
	return &Traverse{G: g, Rng: rng}
}

// pool returns (building lazily) the vertices with out-edges of type t.
func (s *Traverse) pool(t graph.EdgeType) []graph.ID {
	if p, ok := s.eligible[t]; ok {
		return p
	}
	var p []graph.ID
	for v := 0; v < s.G.NumVertices(); v++ {
		if s.G.OutDegree(graph.ID(v), t) > 0 {
			p = append(p, graph.ID(v))
		}
	}
	if s.eligible == nil {
		s.eligible = make(map[graph.EdgeType][]graph.ID)
	}
	s.eligible[t] = p
	return p
}

// SampleVertices draws batch source vertices uniformly among vertices that
// have at least one out-edge of type t. When no vertex qualifies the batch
// is empty rather than looping forever.
func (s *Traverse) SampleVertices(t graph.EdgeType, batch int) []graph.ID {
	pool := s.pool(t)
	if len(pool) == 0 {
		return nil
	}
	out := make([]graph.ID, batch)
	for i := range out {
		out[i] = pool[s.Rng.Intn(len(pool))]
	}
	return out
}

// SampleVerticesOfType draws batch vertices uniformly among vertices of
// vertex type vt; empty when the graph has no such vertices.
func (s *Traverse) SampleVerticesOfType(vt graph.VertexType, batch int) []graph.ID {
	pool := s.G.VerticesOfType(vt)
	if len(pool) == 0 {
		return nil
	}
	out := make([]graph.ID, batch)
	for i := range out {
		out[i] = pool[s.Rng.Intn(len(pool))]
	}
	return out
}

// SampleEdges draws batch edges of type t uniformly over CSR entries: a
// source vertex proportional to its type-t out-degree (via the cached
// degree alias table), then a uniform entry of that vertex.
func (s *Traverse) SampleEdges(t graph.EdgeType, batch int) []graph.Edge {
	return s.AppendEdges(make([]graph.Edge, 0, batch), t, batch)
}

// AppendEdges is SampleEdges into a caller-owned buffer: batch draws are
// appended to dst and the grown slice returned, so a steady-state training
// loop recycling its MiniBatch buffers performs no per-batch allocation.
// The draw sequence is identical to SampleEdges'.
func (s *Traverse) AppendEdges(dst []graph.Edge, t graph.EdgeType, batch int) []graph.Edge {
	out := dst
	if s.G.NumEdgesOfType(t) == 0 {
		return out
	}
	pool := s.pool(t)
	al, ok := s.edgeAlias[t]
	if !ok {
		ws := make([]float64, len(pool))
		for i, v := range pool {
			ws[i] = float64(s.G.OutDegree(v, t))
		}
		al = NewAlias(ws)
		if s.edgeAlias == nil {
			s.edgeAlias = make(map[graph.EdgeType]*Alias)
		}
		s.edgeAlias[t] = al
	}
	want := len(out) + batch
	for len(out) < want {
		v := pool[al.Draw(s.Rng)]
		i := s.Rng.Intn(s.G.OutDegree(v, t))
		out = append(out, graph.Edge{
			Src:    v,
			Dst:    s.G.OutNeighbors(v, t)[i],
			Type:   t,
			Weight: s.G.OutWeights(v, t)[i],
		})
	}
	return out
}

// EpochVertices returns all vertices with out-edges of type t in shuffled
// order, for full-epoch traversal.
func (s *Traverse) EpochVertices(t graph.EdgeType) []graph.ID {
	out := append([]graph.ID(nil), s.pool(t)...)
	s.Rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// ---------------------------------------------------------------------------
// NEIGHBORHOOD sampler

// Context is the sampled multi-hop neighborhood of a vertex batch: Layers[0]
// is the batch itself; Layers[h] holds, for each vertex of Layers[h-1],
// exactly HopNums[h-1] sampled neighbors, flattened in order.
//
// A zero Context is ready for use with SampleInto, which reuses the layer
// buffers across calls; one Context must not be shared between goroutines.
type Context struct {
	HopNums []int
	Layers  [][]graph.ID

	// nbrs is scratch for the generic (non-BatchSampler) source path: one
	// neighbor-list slot per current-layer vertex, reused across hops.
	nbrs [][]graph.ID
}

// NeighborsOf returns the sampled neighbors of the i-th vertex of layer h
// (the slice aliases the layer storage).
func (c *Context) NeighborsOf(h, i int) []graph.ID {
	width := c.HopNums[h]
	return c.Layers[h+1][i*width : (i+1)*width]
}

// Neighborhood samples aligned fixed-size neighborhoods
// (Figure 5: context = s2.sample(edge_type, vertex, hop_nums)).
//
// A Neighborhood is safe for concurrent SampleInto calls as long as each
// goroutine supplies its own Context and Rng; per-source shared state (like
// GraphSource's lazily built AliasIndex) carries its own synchronization.
type Neighborhood struct {
	Src Source
	Rng *rand.Rand
	// ByWeight selects neighbors proportionally to edge weight instead of
	// uniformly; it requires Src to implement BatchSampler (weights never
	// leave the source).
	ByWeight bool
}

// NewNeighborhood creates a NEIGHBORHOOD sampler over src.
func NewNeighborhood(src Source, rng *rand.Rand) *Neighborhood {
	return &Neighborhood{Src: src, Rng: rng}
}

// Sample expands the batch hop by hop. Vertices with no neighbors under t
// are padded with themselves, keeping every layer perfectly aligned (the
// aligned output is what makes the downstream AGGREGATE batched).
//
// Sample allocates a fresh Context per call; hot loops should hold a
// Context and an Rng and call SampleInto instead.
func (s *Neighborhood) Sample(t graph.EdgeType, batch []graph.ID, hopNums []int) (*Context, error) {
	ctx := &Context{}
	if err := s.SampleInto(ctx, t, batch, hopNums, NewRng(uint64(s.Rng.Int63()))); err != nil {
		return nil, err
	}
	return ctx, nil
}

// SampleInto is Sample with caller-owned state: layer buffers are reused
// from ctx (growing only until steady state) and randomness comes from rng,
// so a warm call performs zero allocations. ctx and rng must not be shared
// between goroutines; s itself may be.
//
// Each hop is one SampleBatch call when the source has the capability
// (local graphs draw in place; distributed clients dedup hubs and pay at
// most one RPC per owning server), and one NeighborsBatch call plus
// client-side uniform draws otherwise.
func (s *Neighborhood) SampleInto(ctx *Context, t graph.EdgeType, batch []graph.ID, hopNums []int, rng *Rng) error {
	ctx.HopNums = append(ctx.HopNums[:0], hopNums...)
	for len(ctx.Layers) < len(hopNums)+1 {
		ctx.Layers = append(ctx.Layers, nil)
	}
	ctx.Layers = ctx.Layers[:len(hopNums)+1]
	ctx.Layers[0] = append(ctx.Layers[0][:0], batch...)

	sampler, batched := s.Src.(BatchSampler)
	ht, _ := s.Src.(HopTagged)
	if ht != nil {
		defer ht.SetHop(0)
	}
	cur := ctx.Layers[0]
	for h, width := range hopNums {
		if ht != nil {
			ht.SetHop(h + 1)
		}
		need := len(cur) * width
		next := ctx.Layers[h+1]
		if cap(next) < need {
			next = make([]graph.ID, need)
		} else {
			next = next[:need]
		}
		if batched {
			if err := sampler.SampleBatch(next, cur, t, width, s.ByWeight, rng.Uint64()); err != nil {
				return err
			}
		} else if err := s.sampleGeneric(ctx, next, cur, t, width, rng); err != nil {
			return err
		}
		ctx.Layers[h+1] = next
		cur = next
	}
	return nil
}

// sampleGeneric draws client-side from full neighbor lists fetched with one
// NeighborsBatch call per hop; it is the fallback for sources without the
// BatchSampler capability. dst must hold len(cur)*width entries.
func (s *Neighborhood) sampleGeneric(ctx *Context, dst, cur []graph.ID, t graph.EdgeType, width int, rng *Rng) error {
	if s.ByWeight {
		return ErrWeightedUnsupported
	}
	if cap(ctx.nbrs) < len(cur) {
		ctx.nbrs = make([][]graph.ID, len(cur))
	}
	nbrs := ctx.nbrs[:len(cur)]
	if err := s.Src.NeighborsBatch(nbrs, cur, t); err != nil {
		return err
	}
	o := 0
	for i, v := range cur {
		ns := nbrs[i]
		if len(ns) == 0 {
			for k := 0; k < width; k++ {
				dst[o] = v
				o++
			}
			continue
		}
		for k := 0; k < width; k++ {
			dst[o] = ns[rng.Intn(len(ns))]
			o++
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// NEGATIVE sampler

// Negative draws negative examples from the smoothed unigram distribution
// P(v) ∝ deg(v)^power over candidate destination vertices of an edge type
// (Figure 5: neg = s3.sample(edge_type, vertex, neg_num)).
type Negative struct {
	Rng        *rand.Rand
	candidates []graph.ID
	table      *Alias
}

// NegativePower is the standard unigram smoothing exponent from word2vec,
// which the paper's negative samplers inherit.
const NegativePower = 0.75

// NegativePoolOf scans g for the negative candidates of edge type t: every
// vertex with at least one in-edge of that type, with its raw in-degree as
// the count. This is the single source of candidate eligibility for both
// the local sampler and the local trainer environment (the distributed
// equivalent merges per-server destination counts).
func NegativePoolOf(g *graph.Graph, t graph.EdgeType) (cands []graph.ID, counts []float64) {
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.InDegree(graph.ID(v), t); d > 0 {
			cands = append(cands, graph.ID(v))
			counts = append(counts, float64(d))
		}
	}
	return cands, counts
}

// UnigramWeights applies the word2vec unigram smoothing count^NegativePower
// to raw positive counts, in place-free form.
func UnigramWeights(counts []float64) []float64 {
	ws := make([]float64, len(counts))
	for i, c := range counts {
		ws[i] = math.Pow(c, NegativePower)
	}
	return ws
}

// NewNegative builds a negative sampler for edge type t of g: candidates are
// all vertices with at least one in-edge of type t, weighted by
// in-degree^power.
func NewNegative(g *graph.Graph, t graph.EdgeType, rng *rand.Rand) *Negative {
	cands, counts := NegativePoolOf(g, t)
	return NewNegativeFromPool(cands, UnigramWeights(counts), rng)
}

// NewNegativeFromPool builds a negative sampler over an explicit candidate
// pool with unnormalized weights. Distributed trainers merge per-server
// destination counts into such a pool (the counts summed across servers are
// exactly the global in-degrees, since every edge lives with its source).
func NewNegativeFromPool(cands []graph.ID, ws []float64, rng *rand.Rand) *Negative {
	return &Negative{Rng: rng, candidates: cands, table: NewAlias(ws)}
}

// Sample draws n negatives for each vertex of batch, avoiding the trivial
// collision with the vertex itself. Results are flattened batch-major.
func (s *Negative) Sample(batch []graph.ID, n int) []graph.ID {
	return s.AppendSample(make([]graph.ID, 0, len(batch)*n), batch, n)
}

// AppendSample is Sample into a caller-owned buffer (appended and returned),
// with a draw sequence identical to Sample's; recycled mini-batch buffers
// make steady-state negative sampling allocation-free.
func (s *Negative) AppendSample(dst []graph.ID, batch []graph.ID, n int) []graph.ID {
	for _, v := range batch {
		for i := 0; i < n; i++ {
			dst = append(dst, s.drawAvoiding(v))
		}
	}
	return dst
}

// SampleAvoiding draws n negatives avoiding every vertex in the exclusion
// set (e.g. the true positives of the current example).
func (s *Negative) SampleAvoiding(exclude map[graph.ID]struct{}, n int) []graph.ID {
	out := make([]graph.ID, 0, n)
	for len(out) < n {
		c := s.candidates[s.table.Draw(s.Rng)]
		if _, bad := exclude[c]; bad && len(s.candidates) > len(exclude) {
			continue
		}
		out = append(out, c)
	}
	return out
}

func (s *Negative) drawAvoiding(v graph.ID) graph.ID {
	for tries := 0; tries < 8; tries++ {
		c := s.candidates[s.table.Draw(s.Rng)]
		if c != v {
			return c
		}
	}
	return s.candidates[s.table.Draw(s.Rng)]
}

// NumCandidates reports the candidate pool size.
func (s *Negative) NumCandidates() int { return len(s.candidates) }
