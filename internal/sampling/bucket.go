package sampling

import (
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// This file implements the lock-free graph operations of Section 3.3 /
// Figure 6: vertices on a graph server are split into groups; each group is
// bound to a request-flow bucket — a lock-free multi-producer single-
// consumer queue drained by one dedicated goroutine — so that all reads and
// weight updates touching a group execute sequentially without locking.

// mpscNode is a node of the Vyukov MPSC intrusive queue.
type mpscNode struct {
	next atomic.Pointer[mpscNode]
	op   func()
}

// mpscQueue is a lock-free multi-producer single-consumer queue. Producers
// only touch tail with an atomic swap; the single consumer owns head.
type mpscQueue struct {
	head *mpscNode // consumer-owned
	tail atomic.Pointer[mpscNode]
	stub mpscNode
}

func newMPSCQueue() *mpscQueue {
	q := &mpscQueue{}
	q.head = &q.stub
	q.tail.Store(&q.stub)
	return q
}

// push enqueues op; safe for concurrent producers.
func (q *mpscQueue) push(op func()) {
	n := &mpscNode{op: op}
	prev := q.tail.Swap(n)
	prev.next.Store(n)
}

// pop dequeues one op; only the single consumer may call it. It returns nil
// when the queue is (momentarily) empty.
func (q *mpscQueue) pop() func() {
	head := q.head
	next := head.next.Load()
	if next == nil {
		return nil
	}
	q.head = next
	op := next.op
	next.op = nil
	return op
}

// Buckets partitions vertex operations across lock-free request-flow
// buckets, one consumer goroutine per bucket (the paper binds each to a CPU
// core). Operations on the same vertex group are serialized; operations on
// different groups run in parallel.
type Buckets struct {
	n      int
	queues []*mpscQueue
	wake   []chan struct{}
	done   chan struct{}
	wg     sync.WaitGroup

	processed atomic.Int64
}

// NewBuckets starts n bucket consumers.
func NewBuckets(n int) *Buckets {
	b := &Buckets{
		n:      n,
		queues: make([]*mpscQueue, n),
		wake:   make([]chan struct{}, n),
		done:   make(chan struct{}),
	}
	for i := 0; i < n; i++ {
		b.queues[i] = newMPSCQueue()
		b.wake[i] = make(chan struct{}, 1)
		b.wg.Add(1)
		go b.consume(i)
	}
	return b
}

func (b *Buckets) consume(i int) {
	defer b.wg.Done()
	q := b.queues[i]
	for {
		if op := q.pop(); op != nil {
			op()
			b.processed.Add(1)
			continue
		}
		select {
		case <-b.wake[i]:
		case <-b.done:
			// Drain remaining ops before exiting.
			for op := q.pop(); op != nil; op = q.pop() {
				op()
				b.processed.Add(1)
			}
			return
		}
	}
}

// bucketOf maps a vertex to its group's bucket. The graph is partitioned by
// source vertex, so grouping by ID keeps each vertex's reads and updates on
// one bucket.
func (b *Buckets) bucketOf(v graph.ID) int {
	h := uint64(v) * 0x9E3779B97F4A7C15 // Fibonacci hashing
	return int(h % uint64(b.n))
}

// Submit enqueues op on v's bucket and returns immediately.
func (b *Buckets) Submit(v graph.ID, op func()) {
	i := b.bucketOf(v)
	b.queues[i].push(op)
	select {
	case b.wake[i] <- struct{}{}:
	default:
	}
}

// SubmitWait enqueues op on v's bucket and blocks until it has run.
func (b *Buckets) SubmitWait(v graph.ID, op func()) {
	ch := make(chan struct{})
	b.Submit(v, func() {
		op()
		close(ch)
	})
	<-ch
}

// Processed reports how many operations have completed.
func (b *Buckets) Processed() int64 { return b.processed.Load() }

// Close stops all consumers after draining queued operations.
func (b *Buckets) Close() {
	close(b.done)
	b.wg.Wait()
}
