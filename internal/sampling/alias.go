// Package sampling implements AliGraph's sampling layer (Section 3.3): the
// three sampler classes TRAVERSE, NEIGHBORHOOD and NEGATIVE, weighted
// samplers with dynamic weight updates (a sampler "backward" pass), and the
// lock-free per-group request-flow buckets that serialize reads and updates
// without locking (Figure 6).
package sampling

import (
	"math/rand"
)

// Alias is a Walker alias table: O(n) construction, O(1) weighted sampling.
// It is the workhorse behind NEGATIVE sampling (unigram^0.75 distributions)
// and weighted neighbor selection.
type Alias struct {
	prob  []float64
	alias []int32
}

// NewAlias builds an alias table over the given non-negative weights. A nil
// or all-zero weight vector yields a uniform table.
func NewAlias(weights []float64) *Alias {
	n := len(weights)
	if n == 0 {
		return &Alias{}
	}
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	a := &Alias{prob: make([]float64, n), alias: make([]int32, n)}
	if total == 0 {
		for i := range a.prob {
			a.prob[i] = 1
			a.alias[i] = int32(i)
		}
		return a
	}
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		if w < 0 {
			w = 0
		}
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = int32(i)
	}
	for _, i := range small {
		a.prob[i] = 1
		a.alias[i] = int32(i)
	}
	return a
}

// Draw samples an index according to the table's weights.
func (a *Alias) Draw(rng *rand.Rand) int {
	if len(a.prob) == 0 {
		return -1
	}
	i := rng.Intn(len(a.prob))
	if rng.Float64() < a.prob[i] {
		return i
	}
	return int(a.alias[i])
}

// Len reports the table size.
func (a *Alias) Len() int { return len(a.prob) }
