// Package sampling implements AliGraph's sampling layer (Section 3.3): the
// three sampler classes TRAVERSE, NEIGHBORHOOD and NEGATIVE, weighted
// samplers with dynamic weight updates (a sampler "backward" pass), and the
// lock-free per-group request-flow buckets that serialize reads and updates
// without locking (Figure 6).
//
// # Sampling engine
//
// The hot path is batched, parallel and allocation-free in steady state:
//
//   - Source is batch-first: one NeighborsBatch (or fixed-width SampleBatch,
//     via the optional BatchSampler capability) call covers a whole hop of a
//     mini-batch. The in-memory graph (GraphSource) and the distributed
//     cluster client are two implementations of the same seam; the remote
//     one dedups hub vertices and pays at most one round trip per owning
//     server per hop.
//   - AliasIndex precomputes one Walker alias table per vertex for a
//     (graph, edge type) pair, flattened into CSR-aligned arrays, so a
//     weighted neighbor draw is O(1) with zero per-draw construction.
//     Neighborhood builds the index lazily on first weighted use and shares
//     it across goroutines (it is immutable once built).
//   - Neighborhood.SampleInto reuses the layer buffers of a caller-owned
//     Context across mini-batches, so steady-state expansion performs no
//     allocation at all.
//   - Rng is a one-word splitmix64 generator; each worker goroutine owns
//     one, eliminating the rand.Rand mutex from the draw path.
//
// The graph side of the same engine (epoch-stamped k-hop BFS, pooled
// Scratch, ImportanceAllParallel) lives in internal/graph.
package sampling

import (
	"math/rand"
)

// Alias is a Walker alias table: O(n) construction, O(1) weighted sampling.
// It is the workhorse behind NEGATIVE sampling (unigram^0.75 distributions)
// and weighted neighbor selection.
type Alias struct {
	prob  []float64
	alias []int32
}

// aliasScratch holds the worklists reused across fillAlias calls so that
// batch construction (AliasIndex) performs no per-vertex allocation.
type aliasScratch struct {
	scaled []float64
	small  []int32
	large  []int32
}

// fillAlias builds a Walker alias table over weights into prob and alias
// (both len(weights)). Negative weights count as zero; an all-zero or empty
// weight vector degrades to uniform. Indices stored in alias are local to
// this table (0..len(weights)-1).
func fillAlias(prob []float64, alias []int32, weights []float64, s *aliasScratch) {
	n := len(weights)
	if n == 0 {
		return
	}
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total == 0 {
		for i := 0; i < n; i++ {
			prob[i] = 1
			alias[i] = int32(i)
		}
		return
	}
	if cap(s.scaled) < n {
		s.scaled = make([]float64, n)
		s.small = make([]int32, 0, n)
		s.large = make([]int32, 0, n)
	}
	scaled := s.scaled[:n]
	small := s.small[:0]
	large := s.large[:0]
	for i, w := range weights {
		if w < 0 {
			w = 0
		}
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		sm := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		prob[sm] = scaled[sm]
		alias[sm] = l
		scaled[l] -= 1 - scaled[sm]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		prob[i] = 1
		alias[i] = int32(i)
	}
	for _, i := range small {
		prob[i] = 1
		alias[i] = int32(i)
	}
	s.small = small[:0]
	s.large = large[:0]
}

// NewAlias builds an alias table over the given non-negative weights. A nil
// or all-zero weight vector yields a uniform table.
func NewAlias(weights []float64) *Alias {
	n := len(weights)
	if n == 0 {
		return &Alias{}
	}
	a := &Alias{prob: make([]float64, n), alias: make([]int32, n)}
	fillAlias(a.prob, a.alias, weights, &aliasScratch{})
	return a
}

// drawAlias resolves one probe of a Walker table: keep slot i with
// probability prob[i], otherwise redirect to its alias. Both Alias draw
// variants funnel through this; AliasIndex.Draw repeats the two lines
// inline because constructing segment subslices costs ~15% on the weighted
// sampling hot path.
func drawAlias(prob []float64, alias []int32, i int, u float64) int {
	if u < prob[i] {
		return i
	}
	return int(alias[i])
}

// Draw samples an index according to the table's weights.
func (a *Alias) Draw(rng *rand.Rand) int {
	if len(a.prob) == 0 {
		return -1
	}
	return drawAlias(a.prob, a.alias, rng.Intn(len(a.prob)), rng.Float64())
}

// DrawRng is Draw over the engine's lock-free Rng.
func (a *Alias) DrawRng(rng *Rng) int {
	if len(a.prob) == 0 {
		return -1
	}
	return drawAlias(a.prob, a.alias, rng.Intn(len(a.prob)), rng.Float64())
}

// Len reports the table size.
func (a *Alias) Len() int { return len(a.prob) }
