package sampling

import (
	"repro/internal/graph"
)

// AliasIndex holds one Walker alias table per vertex for the out-edges of a
// single (graph, edge type) pair, flattened into two CSR-aligned arrays.
// Construction costs one pass over the type's edges; afterwards a weighted
// neighbor draw is O(1) with zero allocation — the per-draw NewAlias
// construction the naive path pays (O(deg) time and two allocations per
// vertex per hop) disappears entirely.
//
// An AliasIndex is immutable after construction and safe for concurrent
// Draw from any number of goroutines (each with its own Rng).
type AliasIndex struct {
	offs  []int64   // len n+1, CSR offsets into prob/alias
	prob  []float64 // len m_t
	alias []int32   // len m_t; indices local to each vertex's segment
}

// NewAliasIndex precomputes the per-vertex alias tables for out-edges of
// type t in g.
func NewAliasIndex(g *graph.Graph, t graph.EdgeType) *AliasIndex {
	n := g.NumVertices()
	offs := make([]int64, n+1)
	for v := 0; v < n; v++ {
		offs[v+1] = offs[v] + int64(g.OutDegree(graph.ID(v), t))
	}
	m := offs[n]
	ai := &AliasIndex{offs: offs, prob: make([]float64, m), alias: make([]int32, m)}
	var scratch aliasScratch
	for v := 0; v < n; v++ {
		lo, hi := offs[v], offs[v+1]
		if lo == hi {
			continue
		}
		fillAlias(ai.prob[lo:hi], ai.alias[lo:hi], g.OutWeights(graph.ID(v), t), &scratch)
	}
	return ai
}

// NewAliasIndexFromWeights builds an AliasIndex over explicit per-slot
// weight vectors: slot i covers weights[i], and Draw(graph.ID(i), rng)
// samples within it. Graph servers use this to answer weighted
// SampleNeighbors RPCs over their local adjacency, which lives in maps
// rather than a CSR graph.
func NewAliasIndexFromWeights(weights [][]float64) *AliasIndex {
	n := len(weights)
	offs := make([]int64, n+1)
	for i, ws := range weights {
		offs[i+1] = offs[i] + int64(len(ws))
	}
	m := offs[n]
	ai := &AliasIndex{offs: offs, prob: make([]float64, m), alias: make([]int32, m)}
	var scratch aliasScratch
	for i, ws := range weights {
		lo, hi := offs[i], offs[i+1]
		if lo == hi {
			continue
		}
		fillAlias(ai.prob[lo:hi], ai.alias[lo:hi], ws, &scratch)
	}
	return ai
}

// Draw samples an out-edge slot of v proportionally to edge weight and
// returns its local index (0..deg-1), or -1 when v has no out-edges of this
// type. The caller indexes its neighbor slice with the result.
func (ai *AliasIndex) Draw(v graph.ID, rng *Rng) int {
	lo, hi := ai.offs[v], ai.offs[v+1]
	deg := int(hi - lo)
	if deg == 0 {
		return -1
	}
	i := lo + int64(rng.Intn(deg))
	if rng.Float64() < ai.prob[i] {
		return int(i - lo)
	}
	return int(ai.alias[i])
}

// Degree reports the number of type-t out-edges of v covered by the index.
func (ai *AliasIndex) Degree(v graph.ID) int {
	return int(ai.offs[v+1] - ai.offs[v])
}
