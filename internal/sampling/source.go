package sampling

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/graph"
)

// Source is the batch-first contract between NEIGHBORHOOD sampling and
// whatever holds the adjacency: an in-memory graph, a graph-server
// partition, or a distributed client stitching per-server sub-batches
// (Section 3.3). One call covers one whole hop of a mini-batch, which is
// what lets remote implementations dedup hub vertices and pay one round
// trip per owning server instead of one per vertex.
type Source interface {
	// NeighborsBatch fills dst[i] with the out-neighbor list of vs[i] under
	// edge type t; len(dst) must equal len(vs). The returned slices may
	// alias source-owned (or cache-owned) memory and must be treated as
	// read-only by the caller.
	NeighborsBatch(dst [][]graph.ID, vs []graph.ID, t graph.EdgeType) error
}

// BatchSampler is an optional Source capability: fixed-width neighbor draws
// executed where the adjacency lives, so a remote source ships width
// sampled IDs per vertex instead of full hub adjacency lists. Weighted
// draws (edge-weight proportional) are part of the capability; sources
// without it only serve uniform selection through NeighborsBatch.
type BatchSampler interface {
	// SampleBatch fills dst (len(vs)*width entries, batch-major) with width
	// neighbor draws per vertex of vs under edge type t. Vertices with no
	// type-t out-edges are padded with themselves, keeping the output
	// aligned. seed makes the draw deterministic for a given source state;
	// callers advance their own Rng to produce per-hop seeds.
	//
	// Draws are slot-pure: the samples filling dst[i*width:(i+1)*width]
	// come from SlotRng(seed, i) and are therefore a pure function of
	// (seed, i, the neighbor list of vs[i]). Every implementation over the
	// same adjacency produces identical output — whether a slot was served
	// from an in-memory graph, a neighbor cache, or a remote shard — which
	// is what lets replacing caches, shard layouts and admission timing
	// vary without perturbing a fixed-seed training run.
	SampleBatch(dst []graph.ID, vs []graph.ID, t graph.EdgeType, width int, byWeight bool, seed uint64) error
}

// ErrWeightedUnsupported is returned when weighted neighborhood sampling is
// requested from a Source that does not implement BatchSampler.
var ErrWeightedUnsupported = errors.New("sampling: weighted draws require a Source implementing BatchSampler")

// EpochSpan accumulates the min/max update epochs observed in the replies
// that served a unit of work (one mini-batch). Distributed sources stamp
// every sampling reply with the serving shard's update epoch; a span whose
// bounds differ saw shards at different update generations — the
// mixed-epoch condition that snapshot-consistent training must detect.
// The zero EpochSpan is empty.
type EpochSpan struct {
	Min, Max uint64
	Seen     bool
}

// Observe folds one reply epoch into the span.
func (s *EpochSpan) Observe(e uint64) {
	if !s.Seen {
		s.Min, s.Max, s.Seen = e, e, true
		return
	}
	if e < s.Min {
		s.Min = e
	}
	if e > s.Max {
		s.Max = e
	}
}

// Merge folds another span into s.
func (s *EpochSpan) Merge(o EpochSpan) {
	if !o.Seen {
		return
	}
	s.Observe(o.Min)
	s.Observe(o.Max)
}

// Reset empties the span.
func (s *EpochSpan) Reset() { *s = EpochSpan{} }

// Mixed reports whether the span saw more than one update epoch: the batch
// mixes pre- and post-update draws (or shards at different generations) and
// is not snapshot-consistent.
func (s EpochSpan) Mixed() bool { return s.Seen && s.Min != s.Max }

// Pin identifies one leased, consistent snapshot of an epoched backend: a
// logical stamp plus the per-shard epochs the backend leased for it. While
// a batch samples under a pin, every read answers from the pinned epoch of
// the serving shard and the batch's span records Stamp — one value, so
// Mixed() holds as an invariant (a pinned batch that completes is
// snapshot-consistent by construction, never merely by luck).
//
// Pins are shared and reference-counted by the issuing PinSource: Pin
// returns the current pin (leasing a fresh snapshot only when updates made
// the previous one stale), Unpin drops one reference, and the backend
// leases are released when the last reference to a superseded pin goes.
type Pin struct {
	// Stamp is the pin's logical identity, strictly increasing per source.
	Stamp uint64
	// Epochs holds the leased epoch of each backend shard, by partition.
	Epochs []uint64
}

// PinSource is an optional Source capability for backends that can lease
// snapshot epochs. The scheduler of a batch pipeline pins the snapshot
// current at schedule time and stamps the batch with it; every stage of the
// batch then reads that snapshot.
type PinSource interface {
	Source
	// Pin acquires a reference to a pin of the backend's current snapshot.
	Pin() (*Pin, error)
	// Unpin releases one reference to p.
	Unpin(p *Pin)
	// Discard marks p unusable — its lease was observed lost (eviction on a
	// shard), so the next Pin call must lease a fresh snapshot. References
	// still held must be released with Unpin as usual.
	Discard(p *Pin)
}

// HopTagged is an optional Source capability for per-hop attribution:
// SetHop tells the source which (1-based) hop of a neighborhood expansion
// the following batch calls serve, so instrumented sources can break their
// always-on metrics down per (edge type, hop) — the breakdown the adaptive
// sampling planner (internal/plan) chooses per-lane execution strategies
// and cache-admission policy against. SetHop(0) clears the tag
// (direct, unattributed calls). A hop tag is single-consumer state, so the
// capability belongs on per-consumer views (EpochView), not on shared
// sources; Neighborhood.SampleInto tags its source when the capability is
// present and always clears it on the way out.
type HopTagged interface {
	SetHop(h int)
}

// EpochedSource is an optional Source capability for backends whose replies
// are stamped with update epochs. EpochView returns a private view of the
// source for one consumer (e.g. one pipeline worker): the view serves the
// same data but records the epochs it observes, so concurrent consumers of
// a shared source each get a per-batch span without synchronization.
type EpochedSource interface {
	Source
	EpochView() EpochView
}

// EpochView is a single-consumer Source view that records observed reply
// epochs. Views are not safe for concurrent use; the source behind them is.
// Views of epoched sources that also implement BatchSampler implement it
// too, preserving the server-side fixed-width draw path.
type EpochView interface {
	Source
	// Span returns the epochs observed since the last ResetSpan.
	Span() EpochSpan
	// ResetSpan empties the view's span (called between mini-batches).
	ResetSpan()
	// SetPin makes subsequent reads answer from p's snapshot (nil reverts
	// to head reads). While pinned the span records p.Stamp, so a completed
	// batch's span is single-valued — Mixed() becomes an invariant.
	SetPin(p *Pin)
}

// GraphSource serves neighbors from an in-memory graph. It implements both
// Source and BatchSampler; weighted draws go through a lazily built
// per-edge-type AliasIndex that is shared, immutable once built, and safe
// for concurrent use.
type GraphSource struct {
	G *graph.Graph

	mu      sync.RWMutex
	indexes map[graph.EdgeType]*AliasIndex
}

// NewGraphSource wraps an in-memory graph as a batch Source.
func NewGraphSource(g *graph.Graph) *GraphSource { return &GraphSource{G: g} }

// NeighborsBatch implements Source; the filled slices alias the graph's CSR
// storage.
func (s *GraphSource) NeighborsBatch(dst [][]graph.ID, vs []graph.ID, t graph.EdgeType) error {
	if len(dst) != len(vs) {
		return fmt.Errorf("sampling: NeighborsBatch dst length %d, want %d", len(dst), len(vs))
	}
	for i, v := range vs {
		dst[i] = s.G.OutNeighbors(v, t)
	}
	return nil
}

// SampleBatch implements BatchSampler. Warm calls perform zero allocations:
// the Rng lives on the stack and the alias index is reused across calls.
func (s *GraphSource) SampleBatch(dst []graph.ID, vs []graph.ID, t graph.EdgeType, width int, byWeight bool, seed uint64) error {
	if len(dst) != len(vs)*width {
		return fmt.Errorf("sampling: SampleBatch dst length %d, want %d", len(dst), len(vs)*width)
	}
	var ai *AliasIndex
	if byWeight {
		ai = s.aliasIndex(t)
	}
	o := 0
	for slot, v := range vs {
		ns := s.G.OutNeighbors(v, t)
		rng := SlotRng(seed, slot)
		switch {
		case len(ns) == 0:
			for i := 0; i < width; i++ {
				dst[o] = v
				o++
			}
		case ai != nil:
			for i := 0; i < width; i++ {
				dst[o] = ns[ai.Draw(v, &rng)]
				o++
			}
		default:
			for i := 0; i < width; i++ {
				dst[o] = ns[rng.Intn(len(ns))]
				o++
			}
		}
	}
	return nil
}

// aliasIndex returns the shared alias index for edge type t, building it on
// first use. Safe for concurrent callers.
func (s *GraphSource) aliasIndex(t graph.EdgeType) *AliasIndex {
	s.mu.RLock()
	ai := s.indexes[t]
	s.mu.RUnlock()
	if ai != nil {
		return ai
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if ai = s.indexes[t]; ai != nil {
		return ai
	}
	ai = NewAliasIndex(s.G, t)
	if s.indexes == nil {
		s.indexes = make(map[graph.EdgeType]*AliasIndex)
	}
	s.indexes[t] = ai
	return ai
}
