package sampling

// Rng is a tiny splitmix64 pseudo-random generator: a single uint64 of
// state, no locks, no allocation. math/rand's global functions serialize on
// a mutex and even per-goroutine *rand.Rand values are 5x+ slower per draw
// than this; giving each sampling worker its own Rng is what lets the
// batched engine scale linearly with cores. Not cryptographically secure —
// sampling only.
//
// An Rng must not be shared between goroutines.
type Rng struct {
	state uint64
}

// NewRng returns an Rng seeded with seed. Distinct seeds yield uncorrelated
// streams (splitmix64 is the stream-splitting generator recommended for
// seeding xoshiro and friends).
func NewRng(seed uint64) *Rng {
	return &Rng{state: seed}
}

// Uint64 advances the generator and returns 64 random bits.
func (r *Rng) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0, matching
// math/rand. Uses Lemire's multiply-shift reduction (no modulo, no division)
// on the high 32 bits; n must fit in 32 bits, which every neighbor list and
// vertex-pool size here does.
func (r *Rng) Intn(n int) int {
	if n <= 0 {
		panic("sampling: Intn on non-positive n")
	}
	return int(((r.Uint64() >> 32) * uint64(n)) >> 32)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rng) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// SlotRng derives an independent draw stream for one batch slot from a
// per-call seed: the state is a full splitmix64 scramble of (seed, slot), so
// nearby slots are uncorrelated rather than shifted copies of one stream.
// This is the mechanism behind cache-oblivious batched draws: every
// BatchSampler implementation fills slot i from SlotRng(seed, i), which
// makes the samples a pure function of (seed, slot, neighbor list) — the
// same values whether a slot was served from a local graph, a neighbor
// cache, or a remote shard, and regardless of which other slots hit or
// missed a cache.
func SlotRng(seed uint64, slot int) Rng {
	z := seed + (uint64(slot)+1)*0xBF58476D1CE4E5B9
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return Rng{state: z ^ (z >> 31)}
}

// Snapshot returns a copy of the generator that will produce exactly the
// draws r would produce next, advancing independently. Combined with Skip it
// lets a sequential scheduler hand each parallel worker the precise slice of
// the stream it would have consumed inline — the mechanism behind the
// prefetch pipeline's bit-reproducible batches.
func (r *Rng) Snapshot() Rng { return *r }

// Skip advances the generator by n draws without producing output.
func (r *Rng) Skip(n int) {
	r.state += 0x9E3779B97F4A7C15 * uint64(n)
}
