package sampling

import (
	"math"
	"math/rand"
	"sort"
)

// Weighted is a dynamically re-weightable sampler: training can register a
// gradient function so that the sampler's weights are updated in its
// backward computation, "just like gradient back propagation of an
// operator" (Section 3.3). Sampling uses a Fenwick (binary indexed) tree so
// both Draw and Update are O(log n) — an alias table would need a full
// O(n) rebuild per update.
type Weighted struct {
	n    int
	tree []float64 // Fenwick tree over weights
	w    []float64

	// grad is the registered backward function mapping (index, signal) to a
	// weight delta.
	grad func(idx int, signal float64) float64
}

// NewWeighted creates a sampler over n items with the given initial weights
// (nil means uniform 1.0).
func NewWeighted(weights []float64, n int) *Weighted {
	s := &Weighted{n: n, tree: make([]float64, n+1), w: make([]float64, n)}
	for i := 0; i < n; i++ {
		wi := 1.0
		if weights != nil {
			wi = math.Max(0, weights[i])
		}
		s.w[i] = wi
		s.add(i, wi)
	}
	return s
}

func (s *Weighted) add(i int, delta float64) {
	for j := i + 1; j <= s.n; j += j & (-j) {
		s.tree[j] += delta
	}
}

func (s *Weighted) prefix(i int) float64 {
	t := 0.0
	for j := i; j > 0; j -= j & (-j) {
		t += s.tree[j]
	}
	return t
}

// Total returns the current weight mass.
func (s *Weighted) Total() float64 { return s.prefix(s.n) }

// Weight returns the current weight of item i.
func (s *Weighted) Weight(i int) float64 { return s.w[i] }

// Draw samples an index proportional to current weights; -1 when all
// weights are zero.
func (s *Weighted) Draw(rng *rand.Rand) int {
	total := s.Total()
	if total <= 0 {
		return -1
	}
	target := rng.Float64() * total
	// Binary search on prefix sums.
	idx := sort.Search(s.n, func(i int) bool { return s.prefix(i+1) > target })
	if idx >= s.n {
		idx = s.n - 1
	}
	return idx
}

// Set replaces the weight of item i.
func (s *Weighted) Set(i int, w float64) {
	if w < 0 {
		w = 0
	}
	s.add(i, w-s.w[i])
	s.w[i] = w
}

// RegisterGradient installs the backward function. Subsequent Backward
// calls apply fn's delta to the item's weight, clamped at zero.
func (s *Weighted) RegisterGradient(fn func(idx int, signal float64) float64) {
	s.grad = fn
}

// Backward applies the registered gradient for item idx with the given
// training signal (e.g. the loss contribution of the sample). Without a
// registered gradient it is a no-op, mirroring samplers that do not learn.
func (s *Weighted) Backward(idx int, signal float64) {
	if s.grad == nil {
		return
	}
	s.Set(idx, s.w[idx]+s.grad(idx, signal))
}
