package bench

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/sampling"
	"repro/internal/storage"
)

// This file holds the ablation benchmarks called out in DESIGN.md: they
// probe the design choices of the system layer rather than reproducing a
// specific paper figure.

// AblationLockFree compares the lock-free request-flow buckets against a
// single global mutex for mixed read/update traffic.
func AblationLockFree(ops int, producers int) string {
	state := make([]int64, 1024)

	// Mutex variant.
	var mu sync.Mutex
	start := time.Now()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < ops/producers; i++ {
				v := graph.ID((p*31 + i) % 1024)
				mu.Lock()
				state[v]++
				mu.Unlock()
			}
		}(p)
	}
	wg.Wait()
	mutexTime := time.Since(start)

	// Bucket variant.
	for i := range state {
		state[i] = 0
	}
	buckets := sampling.NewBuckets(4)
	start = time.Now()
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < ops/producers; i++ {
				v := graph.ID((p*31 + i) % 1024)
				buckets.Submit(v, func() { state[v]++ })
			}
		}(p)
	}
	wg.Wait()
	buckets.Close()
	bucketTime := time.Since(start)

	return fmt.Sprintf("Ablation: lock-free buckets %v vs global mutex %v over %d ops (%d producers)\n",
		bucketTime.Round(time.Microsecond), mutexTime.Round(time.Microsecond), ops, producers)
}

// AblationAttrStorage reports the space saving of the deduplicated
// attribute indices versus inline storage.
func AblationAttrStorage(scale float64) string {
	g := dataset.Taobao(dataset.TaobaoSmallConfig(scale))
	s := storage.BuildStore(g, storage.DefaultStoreOptions())
	rep := s.Space()
	return fmt.Sprintf(
		"Ablation: attribute storage inline %.1fMB vs dedup %.1fMB (%.1fx, %d distinct vectors)\n",
		float64(rep.InlineBytes)/1e6, float64(rep.DedupBytes)/1e6, rep.Ratio, rep.Distinct)
}

// AblationPartitioners compares the cut quality of the built-in
// partitioners on a Taobao-sim graph.
func AblationPartitioners(scale float64, p int) string {
	g := dataset.Taobao(dataset.TaobaoSmallConfig(scale))
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: partitioner cut fraction (p=%d)\n", p)
	fmt.Fprintf(&b, "%-12s %10s %10s %12s\n", "partitioner", "cut", "imbalance", "time")
	for _, name := range []string{"hash", "metis", "streaming", "edgecut"} {
		pt, err := partition.ByName(name)
		if err != nil {
			panic(err)
		}
		start := time.Now()
		a, err := pt.Partition(g, p)
		if err != nil {
			panic(err)
		}
		fmt.Fprintf(&b, "%-12s %9.1f%% %10.2f %12s\n",
			name, 100*a.CutFraction(g), a.Imbalance(), time.Since(start).Round(time.Microsecond))
	}
	// Edge-placement partitioners: report replication factor instead.
	for _, ep := range []partition.EdgePartitioner{partition.VertexCut{}, partition.Grid2D{}} {
		start := time.Now()
		ea, err := ep.PartitionEdges(g, p)
		if err != nil {
			panic(err)
		}
		fmt.Fprintf(&b, "%-12s repl=%.2f %22s\n", ep.Name(), ea.ReplicationFactor(), time.Since(start).Round(time.Microsecond))
	}
	return b.String()
}

// AblationNegativeSampling compares alias-table negative sampling against a
// naive linear scan over the cumulative distribution.
func AblationNegativeSampling(n, draws int) string {
	rng := rand.New(rand.NewSource(1))
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = rng.Float64() + 0.01
	}

	alias := sampling.NewAlias(weights)
	start := time.Now()
	for i := 0; i < draws; i++ {
		alias.Draw(rng)
	}
	aliasTime := time.Since(start)

	// Linear scan baseline.
	total := 0.0
	for _, w := range weights {
		total += w
	}
	start = time.Now()
	for i := 0; i < draws; i++ {
		target := rng.Float64() * total
		acc := 0.0
		for _, w := range weights {
			acc += w
			if acc >= target {
				break
			}
		}
	}
	linearTime := time.Since(start)

	return fmt.Sprintf("Ablation: negative sampling %d draws over %d candidates — alias %v vs linear %v (%.0fx)\n",
		draws, n, aliasTime.Round(time.Microsecond), linearTime.Round(time.Microsecond),
		float64(linearTime)/float64(aliasTime))
}
