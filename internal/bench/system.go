// Package bench is the experiment harness: every table and figure of the
// paper's evaluation (Section 5) has a Run function here that generates the
// workload, executes the measurement and returns a formatted report. The
// testing.B wrappers live in the repository root (bench_test.go) and
// cmd/aligraph-bench drives the same functions from the command line.
//
// Scale: every experiment takes a scale factor (1.0 = the default laptop
// calibration). Absolute numbers differ from the paper — our substrate is a
// simulator, not Alibaba's production cluster — but each experiment
// preserves the paper's comparison shape (who wins, by what rough factor).
package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/sampling"
	"repro/internal/storage"
)

// Table3 reports the system dataset census (paper Table 3).
func Table3(scale float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: system datasets (scale %.2f)\n", scale)
	fmt.Fprintf(&b, "%-14s %12s %12s %14s %14s %10s %10s\n",
		"dataset", "#user", "#item", "#user-item", "#item-item", "u-attrs", "i-attrs")
	for _, d := range []struct {
		name string
		cfg  dataset.TaobaoConfig
	}{
		{"Taobao-small", dataset.TaobaoSmallConfig(scale)},
		{"Taobao-large", dataset.TaobaoLargeConfig(scale)},
	} {
		st := dataset.Census(dataset.Taobao(d.cfg))
		fmt.Fprintf(&b, "%-14s %12d %12d %14d %14d %10d %10d\n",
			d.name, st.UserVertices, st.ItemVertices, st.UserItemEdges, st.ItemItemEdges,
			st.UserAttrs, st.ItemAttrs)
	}
	return b.String()
}

// Figure7Row is one point of the graph-building experiment.
type Figure7Row struct {
	Dataset string
	Workers int
	Elapsed time.Duration
}

// Figure7 measures graph build time versus worker count (paper Figure 7:
// build time decreases with workers; large graphs build in minutes, not
// PowerGraph's hours).
func Figure7(scale float64, workerCounts []int) []Figure7Row {
	if workerCounts == nil {
		workerCounts = []int{1, 2, 4, 8}
	}
	var rows []Figure7Row
	for _, d := range []struct {
		name string
		cfg  dataset.TaobaoConfig
	}{
		{"Taobao-small", dataset.TaobaoSmallConfig(scale)},
		{"Taobao-large", dataset.TaobaoLargeConfig(scale)},
	} {
		g := dataset.Taobao(d.cfg)
		vs, es := cluster.Extract(g)
		for _, w := range workerCounts {
			parts := w
			start := time.Now()
			cluster.BuildServers(vs, es, cluster.BuildConfig{
				NumPartitions: parts,
				NumWorkers:    w,
				NumEdgeTypes:  g.Schema().NumEdgeTypes(),
				Assign:        func(v graph.ID) int { return int(v) % parts },
			})
			rows = append(rows, Figure7Row{d.name, w, time.Since(start)})
		}
	}
	return rows
}

// FormatFigure7 renders the rows.
func FormatFigure7(rows []Figure7Row) string {
	var b strings.Builder
	b.WriteString("Figure 7: graph building time vs workers\n")
	fmt.Fprintf(&b, "%-14s %8s %12s\n", "dataset", "workers", "time")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %8d %12s\n", r.Dataset, r.Workers, r.Elapsed.Round(time.Microsecond))
	}
	return b.String()
}

// Figure8Row is one point of the cache-rate sweep.
type Figure8Row struct {
	Threshold float64
	CacheRate float64
}

// Figure8 sweeps the importance threshold and reports the fraction of
// vertices whose 2-hop neighborhoods would be cached (paper Figure 8: the
// rate falls steeply until ~0.2 then flattens, because importance is
// power-law distributed). Selection uses depth-1 importance: at simulation
// scale 2-hop neighborhood sets saturate toward the whole graph, washing
// their in/out ratios toward 1 — a scale artifact the production graph
// does not have (see EXPERIMENTS.md).
func Figure8(scale float64) []Figure8Row {
	g := dataset.Taobao(dataset.TaobaoSmallConfig(scale))
	n := g.NumVertices()
	var rows []Figure8Row
	for _, tau := range []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45} {
		sel := storage.SelectImportant(g, 1, tau)
		rows = append(rows, Figure8Row{tau, float64(len(sel)) / float64(n)})
	}
	return rows
}

// FormatFigure8 renders the sweep.
func FormatFigure8(rows []Figure8Row) string {
	var b strings.Builder
	b.WriteString("Figure 8: cached-vertex percentage vs importance threshold\n")
	fmt.Fprintf(&b, "%10s %12s\n", "threshold", "cache-rate")
	for _, r := range rows {
		fmt.Fprintf(&b, "%10.2f %11.1f%%\n", r.Threshold, 100*r.CacheRate)
	}
	return b.String()
}

// Figure9Row is one point of the cache-strategy comparison.
type Figure9Row struct {
	Strategy    string
	CachedFrac  float64
	Elapsed     time.Duration
	RemoteCalls int64
}

// Figure9 compares the importance cache against random and LRU caches at
// matched cache sizes, measuring multi-hop access cost over a partitioned
// graph with simulated remote latency (paper Figure 9: importance caching
// saves 40-60% versus the baselines).
func Figure9(scale float64, latency time.Duration) []Figure9Row {
	if latency == 0 {
		latency = 50 * time.Microsecond
	}
	g := dataset.Taobao(dataset.TaobaoSmallConfig(scale))
	a, err := partition.HashPartitioner{}.Partition(g, 4)
	if err != nil {
		panic(err)
	}
	servers := cluster.FromGraph(g, a)
	users := g.VerticesOfType(0)

	run := func(name string, cache storage.NeighborCache, frac float64) Figure9Row {
		tr := cluster.NewLocalTransport(servers, 0, latency)
		c := cluster.NewClient(a, tr, cache)
		rng := rand.New(rand.NewSource(1))
		start := time.Now()
		for i := 0; i < 200; i++ {
			v := users[rng.Intn(len(users))]
			if _, err := c.MultiHop(v, 0, 2); err != nil {
				panic(err)
			}
		}
		_, remote := tr.Calls()
		return Figure9Row{name, frac, time.Since(start), remote}
	}

	var rows []Figure9Row
	for _, frac := range []float64{0.1, 0.2, 0.3, 0.4} {
		rows = append(rows, run("importance", storage.NewImportanceCacheTopFraction(g, 2, frac), frac))
		rng := rand.New(rand.NewSource(2))
		rows = append(rows, run("random", storage.NewRandomCache(g, 2, frac, rng), frac))
		capEntries := int(frac * float64(g.NumVertices()))
		rows = append(rows, run("lru", storage.NewLRUNeighborCache(capEntries), frac))
	}
	return rows
}

// FormatFigure9 renders the comparison.
func FormatFigure9(rows []Figure9Row) string {
	var b strings.Builder
	b.WriteString("Figure 9: multi-hop access cost vs cached fraction, by strategy\n")
	fmt.Fprintf(&b, "%-12s %8s %12s %12s\n", "strategy", "cached", "time", "remote-calls")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %7.0f%% %12s %12d\n",
			r.Strategy, 100*r.CachedFrac, r.Elapsed.Round(time.Microsecond), r.RemoteCalls)
	}
	return b.String()
}

// Table4Row is one sampler latency measurement.
type Table4Row struct {
	Dataset  string
	Sampler  string
	PerBatch time.Duration
}

// Table4 measures the three sampler classes with batch size 512 (paper
// Table 4: all samplers finish within tens of milliseconds and grow slowly
// with graph size).
func Table4(scale float64) []Table4Row {
	var rows []Table4Row
	for _, d := range []struct {
		name string
		cfg  dataset.TaobaoConfig
	}{
		{"Taobao-small", dataset.TaobaoSmallConfig(scale)},
		{"Taobao-large", dataset.TaobaoLargeConfig(scale)},
	} {
		g := dataset.Taobao(d.cfg)
		rng := rand.New(rand.NewSource(1))
		const batch = 512
		const iters = 20

		// Warm the eligible-vertex pool outside the timed region; Table 4
		// reports steady-state per-batch cost, not the one-time scan.
		trav := sampling.NewTraverse(g, rng)
		vs := trav.SampleVertices(0, batch)
		start := time.Now()
		for i := 0; i < iters; i++ {
			trav.SampleVertices(0, batch)
		}
		rows = append(rows, Table4Row{d.name, "TRAVERSE", time.Since(start) / iters})

		// NEIGHBORHOOD runs through the steady-state engine: a reused
		// Context and a per-worker Rng, as a training loop would.
		nbr := sampling.NewNeighborhood(sampling.NewGraphSource(g), rng)
		hopNums := []int{5, 3}
		var ctx sampling.Context
		srng := sampling.NewRng(1)
		start = time.Now()
		for i := 0; i < iters; i++ {
			if err := nbr.SampleInto(&ctx, 0, vs, hopNums, srng); err != nil {
				panic(err)
			}
		}
		rows = append(rows, Table4Row{d.name, "NEIGHBORHOOD", time.Since(start) / iters})

		neg := sampling.NewNegative(g, 0, rng)
		start = time.Now()
		for i := 0; i < iters; i++ {
			neg.Sample(vs, 4)
		}
		rows = append(rows, Table4Row{d.name, "NEGATIVE", time.Since(start) / iters})
	}
	return rows
}

// FormatTable4 renders the measurements.
func FormatTable4(rows []Table4Row) string {
	var b strings.Builder
	b.WriteString("Table 4: sampling time per batch of 512\n")
	fmt.Fprintf(&b, "%-14s %-14s %12s\n", "dataset", "sampler", "time/batch")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %-14s %12s\n", r.Dataset, r.Sampler, r.PerBatch.Round(time.Microsecond))
	}
	return b.String()
}

// GOMAXPROCSNote is included in reports so recorded numbers carry their
// hardware context.
func GOMAXPROCSNote() string {
	return fmt.Sprintf("(GOMAXPROCS=%d)", runtime.GOMAXPROCS(0))
}
