package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"repro/internal/algo"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/graph"
)

// algoDataset builds the 4-edge-type Taobao-sim used by the algorithm
// experiments (Table 6's variant, without item-item edges unless asked).
func algoDataset(scale float64, itemItem bool) *graph.Graph {
	cfg := dataset.TaobaoSmallConfig(scale)
	if !itemItem {
		cfg.ItemItemEdges = 0
	}
	return dataset.Taobao(cfg)
}

// Table7Row is one model of the AHEP comparison.
type Table7Row struct {
	Model     string
	ROCAUC    float64
	F1        float64
	PerBatch  time.Duration
	BatchMemB uint64
}

// Table7 compares AHEP against HEP on Taobao-sim link prediction (paper
// Table 7 and Figure 10: AHEP approaches HEP's quality at a fraction of the
// time and memory per batch).
func Table7(scale float64) []Table7Row {
	g := algoDataset(scale, false)
	rng := rand.New(rand.NewSource(1))
	sp := dataset.SplitLinks(g, 0, 0.2, rng)

	run := func(m *algo.HEP) Table7Row {
		met, err := algo.EvalLinkPrediction(m, sp.Train, 0, sp.TestPos, sp.TestNeg)
		if err != nil {
			panic(err)
		}
		// Per-batch cost: re-run a fixed number of training batches while
		// tracking wall time and allocation.
		var ms1, ms2 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms1)
		start := time.Now()
		probe := *m
		probe.Steps = 10
		if err := probe.Fit(sp.Train); err != nil {
			panic(err)
		}
		elapsed := time.Since(start) / 10
		runtime.ReadMemStats(&ms2)
		return Table7Row{
			Model: m.Name(), ROCAUC: 100 * met.ROCAUC, F1: 100 * met.F1,
			PerBatch: elapsed, BatchMemB: (ms2.TotalAlloc - ms1.TotalAlloc) / 10,
		}
	}

	hep := algo.NewHEP(16)
	hep.Steps = 60
	ahep := algo.NewAHEP(16, 4)
	ahep.Steps = 60
	return []Table7Row{run(hep), run(ahep)}
}

// FormatTable7 renders the comparison (also the data behind Figure 10).
func FormatTable7(rows []Table7Row) string {
	var b strings.Builder
	b.WriteString("Table 7 / Figure 10: AHEP vs HEP on Taobao-sim\n")
	fmt.Fprintf(&b, "%-8s %10s %10s %14s %14s\n", "model", "ROC-AUC", "F1", "time/batch", "alloc/batch")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %9.2f%% %9.2f%% %14s %13.1fKB\n",
			r.Model, r.ROCAUC, r.F1, r.PerBatch.Round(time.Microsecond), float64(r.BatchMemB)/1024)
	}
	b.WriteString("(Structural2Vec/GCN/FastGCN/GraphSAGE: N.A. at production scale; AS-GCN: O.O.M. — see paper)\n")
	return b.String()
}

// Table8Row is one (model, dataset) cell group of the GATNE comparison.
type Table8Row struct {
	Model   string
	Dataset string
	Metrics eval.LinkMetrics
}

// Table8 compares GATNE against the baseline families on Amazon-sim and
// Taobao-sim (paper Table 8: GATNE wins on all metrics). Metrics are
// averaged across edge types, matching the paper's protocol.
func Table8(scale float64, includeTaobao bool) []Table8Row {
	var rows []Table8Row
	type ds struct {
		name string
		g    *graph.Graph
	}
	sets := []ds{{"Amazon", dataset.Amazon(scale)}}
	if includeTaobao {
		sets = append(sets, ds{"Taobao-small", algoDataset(scale*0.5, false)})
	}
	for _, d := range sets {
		rng := rand.New(rand.NewSource(2))
		// Average over every edge type's link-prediction task.
		splits := make([]*dataset.LinkSplit, d.g.Schema().NumEdgeTypes())
		for t := range splits {
			splits[t] = dataset.SplitLinks(d.g, graph.EdgeType(t), 0.15, rng)
		}
		wcfg := algo.DefaultWalkConfig()
		gatne := algo.NewGATNE(wcfg.SG.Dim)
		gatne.Walks = wcfg
		models := []algo.Embedder{
			algo.NewDeepWalk(wcfg),
			algo.NewNode2Vec(wcfg, 0.5, 2),
			algo.NewLINE(wcfg),
			algo.NewANRL(wcfg.SG.Dim),
			algo.NewMetapath2Vec(wcfg, nil),
			algo.NewPMNE(wcfg, algo.PMNEn),
			algo.NewPMNE(wcfg, algo.PMNEr),
			algo.NewPMNE(wcfg, algo.PMNEc),
			algo.NewMVE(wcfg),
			algo.NewMNE(wcfg, 8),
			gatne,
		}
		for _, m := range models {
			// Train once per edge-type split and average (each split hides a
			// different layer's edges).
			var agg eval.LinkMetrics
			n := 0
			for t, sp := range splits {
				if len(sp.TestPos) == 0 {
					continue
				}
				met, err := algo.EvalLinkPrediction(m, sp.Train, graph.EdgeType(t), sp.TestPos, sp.TestNeg)
				if err != nil {
					panic(err)
				}
				agg.ROCAUC += met.ROCAUC
				agg.PRAUC += met.PRAUC
				agg.F1 += met.F1
				n++
			}
			if n > 0 {
				agg.ROCAUC /= float64(n)
				agg.PRAUC /= float64(n)
				agg.F1 /= float64(n)
			}
			rows = append(rows, Table8Row{m.Name(), d.name, agg})
		}
	}
	return rows
}

// FormatTable8 renders the comparison.
func FormatTable8(rows []Table8Row) string {
	var b strings.Builder
	b.WriteString("Table 8: GATNE vs baselines (metrics averaged over edge types)\n")
	fmt.Fprintf(&b, "%-14s %-14s %10s %10s %10s\n", "model", "dataset", "ROC-AUC", "PR-AUC", "F1")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %-14s %9.2f%% %9.2f%% %9.2f%%\n",
			r.Model, r.Dataset, 100*r.Metrics.ROCAUC, 100*r.Metrics.PRAUC, 100*r.Metrics.F1)
	}
	return b.String()
}

// Table9Row is one recommender of the Mixture GNN comparison.
type Table9Row struct {
	Model      string
	HR20, HR50 float64
}

// Table9 compares Mixture GNN against DAE and β-VAE on leave-one-out
// recommendation (paper Table 9: Mixture GNN lifts HR@k by ~2 points).
// The item catalogue is widened relative to the link-prediction dataset so
// HR@20/@50 sit in the paper's non-saturated range.
func Table9(scale float64) []Table9Row {
	cfg := dataset.TaobaoSmallConfig(scale)
	cfg.ItemItemEdges = 0
	cfg.Items *= 10                           // wide catalogue: HR@k must not saturate
	cfg.UserModes = 2                         // polysemous users — the Mixture GNN setting
	cfg.EdgesPerUser = [4]float64{3, 1, 1, 1} // sparse interactions
	g := dataset.Taobao(cfg)
	rng := rand.New(rand.NewSource(3))
	sp := algo.SplitRec(g, 0, rng)

	var rows []Table9Row

	dae := algo.NewDAE(32)
	if err := dae.FitRec(sp); err != nil {
		panic(err)
	}
	rD := sp.RankItems(dae.RankScorer())
	rows = append(rows, Table9Row{"DAE", eval.HitRate(rD, sp.Truth(), 20), eval.HitRate(rD, sp.Truth(), 50)})

	vae := algo.NewBetaVAE(32, 16, 0.5)
	if err := vae.FitRec(sp); err != nil {
		panic(err)
	}
	rV := sp.RankItems(vae.RankScorer())
	rows = append(rows, Table9Row{"beta-VAE", eval.HitRate(rV, sp.Truth(), 20), eval.HitRate(rV, sp.Truth(), 50)})

	mix := algo.NewMixture(32, 2)
	mix.Walks.WalksPerVertex = 8
	mix.Epochs = 3
	if err := mix.Fit(sp.Train); err != nil {
		panic(err)
	}
	rM := sp.RankItems(mix.ScoreMaxSense)
	rows = append(rows, Table9Row{"Mixture GNN", eval.HitRate(rM, sp.Truth(), 20), eval.HitRate(rM, sp.Truth(), 50)})
	return rows
}

// FormatTable9 renders the comparison.
func FormatTable9(rows []Table9Row) string {
	var b strings.Builder
	b.WriteString("Table 9: Mixture GNN vs recommenders (leave-one-out)\n")
	fmt.Fprintf(&b, "%-14s %10s %10s\n", "model", "HR@20", "HR@50")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %10.5f %10.5f\n", r.Model, r.HR20, r.HR50)
	}
	return b.String()
}

// Table10Row is one model of the Hierarchical GNN comparison.
type Table10Row struct {
	Model   string
	Metrics eval.LinkMetrics
}

// Table10 compares Hierarchical GNN against GraphSAGE (paper Table 10:
// hierarchy lifts F1 by ~7.5 points).
func Table10(scale float64) []Table10Row {
	amzScale := scale * 0.5
	if amzScale < 0.05 {
		amzScale = 0.05 // the dense coarsening algebra needs >= ~500 vertices
	}
	g := dataset.Amazon(amzScale)
	rng := rand.New(rand.NewSource(4))
	sp := dataset.SplitLinks(g, 0, 0.2, rng)

	sage := algo.NewGraphSAGE(algo.DefaultGNNConfig(), algo.SAGEMean)
	mS, err := algo.EvalLinkPrediction(sage, sp.Train, 0, sp.TestPos, sp.TestNeg)
	if err != nil {
		panic(err)
	}
	hier := algo.NewHierarchical(32, 12)
	hier.Steps = 300
	mH, err := algo.EvalLinkPrediction(hier, sp.Train, 0, sp.TestPos, sp.TestNeg)
	if err != nil {
		panic(err)
	}
	return []Table10Row{{"GraphSAGE", mS}, {"Hierarchical GNN", mH}}
}

// FormatTable10 renders the comparison.
func FormatTable10(rows []Table10Row) string {
	var b strings.Builder
	b.WriteString("Table 10: Hierarchical GNN vs GraphSAGE\n")
	fmt.Fprintf(&b, "%-18s %10s %10s %10s\n", "model", "ROC-AUC", "PR-AUC", "F1")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %9.2f%% %9.2f%% %9.2f%%\n",
			r.Model, 100*r.Metrics.ROCAUC, 100*r.Metrics.PRAUC, 100*r.Metrics.F1)
	}
	return b.String()
}

// Table11Row is one (model, setting) of the Evolving GNN comparison.
type Table11Row struct {
	Model   string
	Setting string
	Micro   float64
	Macro   float64
}

// Table11 compares Evolving GNN against TNE and static GraphSAGE on
// multi-class link prediction under normal evolution and burst change
// (paper Table 11: Evolving GNN wins on all four columns).
func Table11(scale float64) []Table11Row {
	normalCfg := dataset.DynamicDefaultConfig()
	normalCfg.Vertices = int(float64(normalCfg.Vertices) * scale)
	normalCfg.BurstAt = nil
	burstCfg := dataset.DynamicDefaultConfig()
	burstCfg.Vertices = normalCfg.Vertices
	burstCfg.BurstAt = []int{burstCfg.T - 1, burstCfg.T}
	burstCfg.Seed = 5

	var rows []Table11Row
	for _, setting := range []struct {
		name string
		cfg  dataset.DynamicConfig
	}{{"normal", normalCfg}, {"burst", burstCfg}} {
		s := dataset.Dynamic(setting.cfg)
		for _, m := range []algo.DynamicModel{algo.NewTNE(32), algo.NewStaticSAGE(32), algo.NewEvolving(32)} {
			micro, macro, err := algo.MultiClassLinkEval(m, s, 1)
			if err != nil {
				panic(err)
			}
			rows = append(rows, Table11Row{m.Name(), setting.name, 100 * micro, 100 * macro})
		}
	}
	return rows
}

// FormatTable11 renders the comparison.
func FormatTable11(rows []Table11Row) string {
	var b strings.Builder
	b.WriteString("Table 11: Evolving GNN vs competitors (multi-class link prediction)\n")
	fmt.Fprintf(&b, "%-14s %-10s %12s %12s\n", "model", "setting", "micro-F1", "macro-F1")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %-10s %11.1f%% %11.1f%%\n", r.Model, r.Setting, r.Micro, r.Macro)
	}
	return b.String()
}

// Table12Row is one (granularity, edge-type, k) cell pair of the Bayesian
// GNN comparison.
type Table12Row struct {
	Granularity string
	Behaviour   string
	K           int
	SAGE        float64
	Bayesian    float64
}

// Table12 compares GraphSAGE with and without the Bayesian knowledge
// correction at brand and category granularity for click and buy
// recommendation (paper Table 12: the correction lifts HR by 1-3 points).
func Table12(scale float64) []Table12Row {
	tcfg := dataset.TaobaoSmallConfig(scale)
	tcfg.Items *= 8           // wide catalogue so group-level HR@k does not saturate
	g := dataset.Taobao(tcfg) // keeps the item-item knowledge edges
	comm := tcfg.Communities
	userCount := len(g.VerticesOfType(0))

	// Brand = planted item community (from the attribute indicator);
	// category = coarser grouping of brands.
	brandOf := func(item graph.ID) int {
		attrs := g.VertexAttr(item)
		best, bestV := 0, -1.0
		for j := 0; j < comm && j < len(attrs); j++ {
			if attrs[j] > bestV {
				best, bestV = j, attrs[j]
			}
		}
		return best
	}
	categoryOf := func(item graph.ID) int { return brandOf(item) / 2 }
	_ = userCount

	var rows []Table12Row
	for _, beh := range []struct {
		name string
		et   graph.EdgeType
	}{{"Click", 0}, {"Buy", 3}} {
		rng := rand.New(rand.NewSource(6))
		sp := algo.SplitRec(g, beh.et, rng)

		cfg := algo.DefaultGNNConfig()
		cfg.EdgeType = beh.et
		base := algo.NewGraphSAGE(cfg, algo.SAGEMean)
		if err := base.Fit(sp.Train); err != nil {
			panic(err)
		}
		baseRank := sp.RankItems(func(u, it graph.ID) float64 { return algo.Score(base, u, it, beh.et) })

		cfgB := cfg
		bayes := algo.NewBayesian(algo.NewGraphSAGE(cfgB, algo.SAGEMean), 4, 16)
		if err := bayes.Fit(sp.Train); err != nil {
			panic(err)
		}
		bayesRank := sp.RankItems(bayes.RecScorer(sp.Train))

		groupHR := func(ranked [][]int, groupOf func(graph.ID) int, k int) float64 {
			hits := 0
			for ui := range ranked {
				truthGroup := groupOf(sp.Heldout[ui])
				limit := k
				if limit > len(ranked[ui]) {
					limit = len(ranked[ui])
				}
				for _, it := range ranked[ui][:limit] {
					if groupOf(graph.ID(it)) == truthGroup {
						hits++
						break
					}
				}
			}
			if len(ranked) == 0 {
				return 0
			}
			return float64(hits) / float64(len(ranked))
		}

		for _, gran := range []struct {
			name string
			fn   func(graph.ID) int
		}{{"Brand", brandOf}, {"Category", categoryOf}} {
			for _, k := range []int{10, 30, 50} {
				rows = append(rows, Table12Row{
					Granularity: gran.name, Behaviour: beh.name, K: k,
					SAGE:     100 * groupHR(baseRank, gran.fn, k),
					Bayesian: 100 * groupHR(bayesRank, gran.fn, k),
				})
			}
		}
	}
	return rows
}

// FormatTable12 renders the comparison.
func FormatTable12(rows []Table12Row) string {
	var b strings.Builder
	b.WriteString("Table 12: Bayesian GNN hit recall (group granularity)\n")
	fmt.Fprintf(&b, "%-10s %-8s %4s %12s %16s\n", "gran.", "behav.", "k", "GraphSAGE", "SAGE+Bayesian")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-8s %4d %11.2f%% %15.2f%%\n",
			r.Granularity, r.Behaviour, r.K, r.SAGE, r.Bayesian)
	}
	return b.String()
}

// Figure1Row is one in-house model's normalized lift.
type Figure1Row struct {
	Model      string
	Ours       float64 // normalized (best competitor = 1.0 baseline)
	Competitor float64
	LiftPct    float64
}

// Figure1 summarizes the headline lifts of the five in-house models from
// the per-table results (paper Figure 1).
func Figure1(t8 []Table8Row, t9 []Table9Row, t10 []Table10Row, t11 []Table11Row, t12 []Table12Row) []Figure1Row {
	var rows []Figure1Row

	// GATNE: F1 vs best competitor (Amazon rows).
	var gatne, bestComp float64
	for _, r := range t8 {
		if r.Dataset != "Amazon" {
			continue
		}
		if r.Model == "GATNE" {
			gatne = r.Metrics.F1
		} else if r.Metrics.F1 > bestComp {
			bestComp = r.Metrics.F1
		}
	}
	rows = append(rows, normRow("GATNE", gatne, bestComp))

	// Mixture GNN: HR@20 vs best competitor.
	var mix, mixComp float64
	for _, r := range t9 {
		if r.Model == "Mixture GNN" {
			mix = r.HR20
		} else if r.HR20 > mixComp {
			mixComp = r.HR20
		}
	}
	rows = append(rows, normRow("Mixture GNN", mix, mixComp))

	// Hierarchical GNN: F1 vs GraphSAGE.
	var hier, hierComp float64
	for _, r := range t10 {
		if r.Model == "Hierarchical GNN" {
			hier = r.Metrics.F1
		} else {
			hierComp = r.Metrics.F1
		}
	}
	rows = append(rows, normRow("Hierarchical GNN", hier, hierComp))

	// Evolving GNN: burst micro-F1 vs best competitor.
	var evo, evoComp float64
	for _, r := range t11 {
		if r.Setting != "burst" {
			continue
		}
		if r.Model == "EvolvingGNN" {
			evo = r.Micro
		} else if r.Micro > evoComp {
			evoComp = r.Micro
		}
	}
	rows = append(rows, normRow("Evolving GNN", evo, evoComp))

	// Bayesian GNN: mean HR lift across cells.
	var bay, bayComp float64
	for _, r := range t12 {
		bay += r.Bayesian
		bayComp += r.SAGE
	}
	if len(t12) > 0 {
		bay /= float64(len(t12))
		bayComp /= float64(len(t12))
	}
	rows = append(rows, normRow("Bayesian GNN", bay, bayComp))
	return rows
}

func normRow(name string, ours, comp float64) Figure1Row {
	r := Figure1Row{Model: name, Competitor: 1}
	if comp > 0 {
		r.Ours = ours / comp
		r.LiftPct = 100 * (ours - comp) / comp
	}
	return r
}

// FormatFigure1 renders the summary.
func FormatFigure1(rows []Figure1Row) string {
	var b strings.Builder
	b.WriteString("Figure 1: normalized evaluation metric, in-house models vs best competitor\n")
	fmt.Fprintf(&b, "%-18s %12s %12s %10s\n", "model", "ours(norm)", "competitor", "lift")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %12.3f %12.3f %+9.2f%%\n", r.Model, r.Ours, r.Competitor, r.LiftPct)
	}
	return b.String()
}
