package bench

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/operator"
	"repro/internal/sampling"
)

// Table5Result compares the AGGREGATE/COMBINE pipeline with and without the
// intermediate-vector materialization cache of Section 3.4.
type Table5Result struct {
	Dataset string
	Without time.Duration // per mini-batch, recomputing every occurrence
	With    time.Duration // per mini-batch, sharing ĥ^(k) per distinct vertex
	Speedup float64
}

// Table5 measures the operator optimization (paper Table 5: an order of
// magnitude speedup from caching intermediate embedding vectors). The
// workload is a hub-heavy sampled context where the same hot vertices
// recur throughout the mini-batch, which is exactly the redundancy the
// materialization removes.
func Table5(scale float64) []Table5Result {
	var out []Table5Result
	for _, d := range []struct {
		name string
		cfg  dataset.TaobaoConfig
	}{
		{"Taobao-small", dataset.TaobaoSmallConfig(scale)},
		{"Taobao-large", dataset.TaobaoLargeConfig(scale)},
	} {
		g := dataset.Taobao(d.cfg)
		rng := rand.New(rand.NewSource(1))

		feat := core.NewTableFeatures("emb", g.NumVertices(), 32, rng)
		enc := &core.Encoder{Features: feat, Normalize: true}
		in := 32
		for k := 0; k < 2; k++ {
			enc.Agg = append(enc.Agg, operator.NewMeanAggregator("agg", in, 32, rng))
			enc.Comb = append(enc.Comb, operator.NewConcatCombiner("comb", in, 32, 32, rng))
			in = 32
		}

		trav := sampling.NewTraverse(g, rng)
		nbr := sampling.NewNeighborhood(sampling.NewGraphSource(g), rng)
		batch := trav.SampleVertices(0, 64)
		ctx, err := nbr.Sample(0, batch, []int{10, 5})
		if err != nil {
			panic(err)
		}

		const iters = 10
		enc.Materialize = false
		start := time.Now()
		for i := 0; i < iters; i++ {
			t := nn.NewTape()
			enc.Encode(t, ctx)
		}
		without := time.Since(start) / iters

		enc.Materialize = true
		start = time.Now()
		for i := 0; i < iters; i++ {
			t := nn.NewTape()
			enc.Encode(t, ctx)
		}
		with := time.Since(start) / iters

		out = append(out, Table5Result{
			Dataset: d.name, Without: without, With: with,
			Speedup: float64(without) / float64(with),
		})
	}
	return out
}

// FormatTable5 renders the comparison.
func FormatTable5(rows []Table5Result) string {
	var b strings.Builder
	b.WriteString("Table 5: operator time per mini-batch, w/o vs w/ materialization cache\n")
	fmt.Fprintf(&b, "%-14s %14s %14s %10s\n", "dataset", "w/o cache", "w/ cache", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %14s %14s %9.1fx\n",
			r.Dataset, r.Without.Round(time.Microsecond), r.With.Round(time.Microsecond), r.Speedup)
	}
	return b.String()
}

// Table6 reports the algorithm-evaluation dataset census (paper Table 6).
func Table6(scale float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 6: algorithm datasets (scale %.2f)\n", scale)
	fmt.Fprintf(&b, "%-14s %10s %10s %8s %8s\n", "dataset", "#vertices", "#edges", "v-types", "e-types")
	am := dataset.Census(dataset.Amazon(scale))
	fmt.Fprintf(&b, "%-14s %10d %10d %8d %8d\n", "Amazon", am.Vertices, am.Edges, am.VertexTypes, am.EdgeTypes)
	cfg := dataset.TaobaoSmallConfig(scale)
	cfg.ItemItemEdges = 0 // Table 6's Taobao-small has the 4 behaviour types
	ts := dataset.Census(dataset.Taobao(cfg))
	fmt.Fprintf(&b, "%-14s %10d %10d %8d %8d\n", "Taobao-small", ts.Vertices, ts.Edges, ts.VertexTypes, ts.EdgeTypes)
	return b.String()
}
