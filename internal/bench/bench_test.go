package bench

import (
	"strings"
	"testing"
)

// These tests run each experiment at tiny scale to guarantee the harness
// stays runnable; the real measurements live in the root bench_test.go.

const tiny = 0.05

func TestTable3AndTable6(t *testing.T) {
	if s := Table3(tiny); !strings.Contains(s, "Taobao-large") {
		t.Fatalf("table 3: %s", s)
	}
	if s := Table6(tiny); !strings.Contains(s, "Amazon") {
		t.Fatalf("table 6: %s", s)
	}
}

func TestFigure7ShrinksWithWorkers(t *testing.T) {
	rows := Figure7(tiny, []int{1, 4})
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	s := FormatFigure7(rows)
	if !strings.Contains(s, "workers") {
		t.Fatal(s)
	}
}

func TestFigure8Monotone(t *testing.T) {
	rows := Figure8(tiny)
	for i := 1; i < len(rows); i++ {
		if rows[i].CacheRate > rows[i-1].CacheRate+1e-9 {
			t.Fatalf("cache rate increased with threshold: %+v", rows)
		}
	}
	_ = FormatFigure8(rows)
}

func TestFigure9ImportanceWins(t *testing.T) {
	rows := Figure9(tiny, 0) // latency 0: compare remote call counts
	byStrategy := map[string]int64{}
	for _, r := range rows {
		byStrategy[r.Strategy] += r.RemoteCalls
	}
	if byStrategy["importance"] >= byStrategy["random"] {
		t.Fatalf("importance cache should beat random: %+v", byStrategy)
	}
	_ = FormatFigure9(rows)
}

func TestTable4Runs(t *testing.T) {
	rows := Table4(tiny)
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.PerBatch <= 0 {
			t.Fatalf("non-positive time: %+v", r)
		}
	}
	_ = FormatTable4(rows)
}

func TestTable5MaterializationWins(t *testing.T) {
	rows := Table5(tiny)
	for _, r := range rows {
		if r.Speedup <= 1.0 {
			t.Fatalf("materialization did not speed up %s: %+v", r.Dataset, r)
		}
	}
	_ = FormatTable5(rows)
}

func TestTable7AHEPFaster(t *testing.T) {
	rows := Table7(tiny)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	hep, ahep := rows[0], rows[1]
	if ahep.PerBatch >= hep.PerBatch {
		t.Fatalf("AHEP per-batch %v should be below HEP %v", ahep.PerBatch, hep.PerBatch)
	}
	_ = FormatTable7(rows)
}

func TestTable9Runs(t *testing.T) {
	rows := Table9(tiny)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	_ = FormatTable9(rows)
}

func TestTable11Runs(t *testing.T) {
	rows := Table11(0.3)
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	_ = FormatTable11(rows)
}

func TestAblations(t *testing.T) {
	if s := AblationLockFree(2000, 4); !strings.Contains(s, "lock-free") {
		t.Fatal(s)
	}
	if s := AblationAttrStorage(tiny); !strings.Contains(s, "dedup") {
		t.Fatal(s)
	}
	if s := AblationPartitioners(tiny, 4); !strings.Contains(s, "metis") {
		t.Fatal(s)
	}
	if s := AblationNegativeSampling(1000, 2000); !strings.Contains(s, "alias") {
		t.Fatal(s)
	}
}
