package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestNewAndAccessors(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatal("set/at")
	}
	if len(m.Row(1)) != 3 || m.Row(1)[2] != 5 {
		t.Fatal("row view")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 0 {
		t.Fatal("clone must not alias")
	}
}

func TestFromSliceValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice(2, 2, []float64{1})
}

func TestMatMul(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if !almostEq(c.Data[i], w) {
			t.Fatalf("matmul[%d] = %f want %f", i, c.Data[i], w)
		}
	}
}

func TestMatMulTransforms(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(4, 3)
	b := New(4, 5)
	a.GaussianInit(rng, 1)
	b.GaussianInit(rng, 1)
	// aᵀ @ b two ways.
	got := MatMulTransA(a, b)
	want := MatMul(a.Transpose(), b)
	for i := range want.Data {
		if !almostEq(got.Data[i], want.Data[i]) {
			t.Fatal("MatMulTransA mismatch")
		}
	}
	c := New(5, 3)
	c.GaussianInit(rng, 1)
	got2 := MatMulTransB(a, c) // a @ cᵀ : 4x5
	want2 := MatMul(a, c.Transpose())
	for i := range want2.Data {
		if !almostEq(got2.Data[i], want2.Data[i]) {
			t.Fatal("MatMulTransB mismatch")
		}
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice(1, 3, []float64{1, 2, 3})
	b := FromSlice(1, 3, []float64{4, 5, 6})
	sum := a.Clone()
	sum.AddInPlace(b)
	if sum.Data[2] != 9 {
		t.Fatal("add")
	}
	sub := a.Clone()
	sub.SubInPlace(b)
	if sub.Data[0] != -3 {
		t.Fatal("sub")
	}
	mul := a.Clone()
	mul.MulInPlace(b)
	if mul.Data[1] != 10 {
		t.Fatal("mul")
	}
	sc := a.Clone()
	sc.ScaleInPlace(2)
	if sc.Data[2] != 6 {
		t.Fatal("scale")
	}
	ax := a.Clone()
	ax.Axpy(10, b)
	if ax.Data[0] != 41 {
		t.Fatal("axpy")
	}
	if Dot(a, b) != 32 {
		t.Fatal("dot")
	}
	if !almostEq(a.Norm2(), math.Sqrt(14)) {
		t.Fatal("norm")
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a := New(2, 2)
	b := New(2, 3)
	a.AddInPlace(b)
}

func TestRowL2Normalize(t *testing.T) {
	m := FromSlice(2, 2, []float64{3, 4, 0, 0})
	m.RowL2Normalize()
	if !almostEq(m.At(0, 0), 0.6) || !almostEq(m.At(0, 1), 0.8) {
		t.Fatalf("row0 = %v", m.Row(0))
	}
	if m.At(1, 0) != 0 || m.At(1, 1) != 0 {
		t.Fatal("zero row must stay zero")
	}
}

func TestConcatCols(t *testing.T) {
	a := FromSlice(2, 1, []float64{1, 2})
	b := FromSlice(2, 2, []float64{3, 4, 5, 6})
	c := ConcatCols(a, b)
	if c.Rows != 2 || c.Cols != 3 {
		t.Fatalf("shape %dx%d", c.Rows, c.Cols)
	}
	if c.At(1, 0) != 2 || c.At(1, 2) != 6 {
		t.Fatalf("data %v", c.Data)
	}
}

func TestGatherRows(t *testing.T) {
	src := FromSlice(3, 2, []float64{1, 2, 3, 4, 5, 6})
	g := GatherRows(src, []int{2, 0, 2})
	if g.Rows != 3 || g.At(0, 1) != 6 || g.At(1, 0) != 1 || g.At(2, 0) != 5 {
		t.Fatalf("gather %v", g.Data)
	}
}

func TestMeanRows(t *testing.T) {
	m := FromSlice(2, 2, []float64{1, 2, 3, 4})
	mean := m.MeanRows()
	if !almostEq(mean.At(0, 0), 2) || !almostEq(mean.At(0, 1), 3) {
		t.Fatalf("mean %v", mean.Data)
	}
	empty := New(0, 2).MeanRows()
	if empty.At(0, 0) != 0 {
		t.Fatal("empty mean")
	}
}

func TestInits(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := New(50, 50)
	m.XavierInit(rng)
	limit := math.Sqrt(6.0 / 100)
	for _, v := range m.Data {
		if v < -limit || v > limit {
			t.Fatalf("xavier out of range: %f", v)
		}
	}
	g := New(100, 100)
	g.GaussianInit(rng, 0.5)
	var sum, sumSq float64
	for _, v := range g.Data {
		sum += v
		sumSq += v * v
	}
	n := float64(len(g.Data))
	if math.Abs(sum/n) > 0.05 {
		t.Fatalf("gaussian mean %f", sum/n)
	}
	std := math.Sqrt(sumSq/n - (sum/n)*(sum/n))
	if std < 0.4 || std > 0.6 {
		t.Fatalf("gaussian std %f", std)
	}
}

// Property: (AB)ᵀ = BᵀAᵀ.
func TestQuickTransposeProduct(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, k, c := 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(5)
		a, b := New(r, k), New(k, c)
		a.GaussianInit(rng, 1)
		b.GaussianInit(rng, 1)
		left := MatMul(a, b).Transpose()
		right := MatMul(b.Transpose(), a.Transpose())
		for i := range left.Data {
			if math.Abs(left.Data[i]-right.Data[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: matmul distributes over addition: A(B+C) = AB + AC.
func TestQuickDistributive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, k, c := 1+rng.Intn(4), 1+rng.Intn(4), 1+rng.Intn(4)
		a := New(r, k)
		b, cm := New(k, c), New(k, c)
		a.GaussianInit(rng, 1)
		b.GaussianInit(rng, 1)
		cm.GaussianInit(rng, 1)
		bc := b.Clone()
		bc.AddInPlace(cm)
		left := MatMul(a, bc)
		right := MatMul(a, b)
		right.AddInPlace(MatMul(a, cm))
		for i := range left.Data {
			if math.Abs(left.Data[i]-right.Data[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
