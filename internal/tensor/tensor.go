// Package tensor provides the dense matrix type underlying the NN substrate
// (internal/nn). AliGraph's production deployment trains with TensorFlow;
// this reproduction substitutes a small, allocation-conscious float64 matrix
// library — the models in the paper are small MLPs, attention heads, LSTM
// cells and VAEs over sampled mini-batches, all expressible as dense matrix
// programs.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major float64 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New allocates a zero matrix of the given shape.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (len rows*cols) without copying.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data len %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// FromRow copies a vector into a 1 x n matrix.
func FromRow(v []float64) *Matrix {
	m := New(1, len(v))
	copy(m.Data, v)
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a shared slice.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero resets all elements in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// SameShape reports whether m and o have identical dimensions.
func (m *Matrix) SameShape(o *Matrix) bool { return m.Rows == o.Rows && m.Cols == o.Cols }

func (m *Matrix) shapeCheck(o *Matrix, op string) {
	if !m.SameShape(o) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %dx%d vs %dx%d", op, m.Rows, m.Cols, o.Rows, o.Cols))
	}
}

// AddInPlace adds o element-wise into m.
func (m *Matrix) AddInPlace(o *Matrix) {
	m.shapeCheck(o, "add")
	for i, v := range o.Data {
		m.Data[i] += v
	}
}

// SubInPlace subtracts o element-wise from m.
func (m *Matrix) SubInPlace(o *Matrix) {
	m.shapeCheck(o, "sub")
	for i, v := range o.Data {
		m.Data[i] -= v
	}
}

// MulInPlace multiplies element-wise by o.
func (m *Matrix) MulInPlace(o *Matrix) {
	m.shapeCheck(o, "mul")
	for i, v := range o.Data {
		m.Data[i] *= v
	}
}

// ScaleInPlace multiplies every element by s.
func (m *Matrix) ScaleInPlace(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// Axpy adds a*x into m (BLAS axpy).
func (m *Matrix) Axpy(a float64, x *Matrix) {
	m.shapeCheck(x, "axpy")
	for i, v := range x.Data {
		m.Data[i] += a * v
	}
}

// MatMul computes a @ b into a fresh matrix.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul %dx%d @ %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes a @ b into out (ikj loop order for cache locality).
func MatMulInto(out, a, b *Matrix) {
	if out.Rows != a.Rows || out.Cols != b.Cols || a.Cols != b.Rows {
		panic("tensor: matmul shape mismatch")
	}
	out.Zero()
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k := 0; k < a.Cols; k++ {
			av := arow[k]
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j := range brow {
				orow[j] += av * brow[j]
			}
		}
	}
}

// MatMulTransA computes aᵀ @ b.
func MatMulTransA(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic("tensor: matmulTransA shape mismatch")
	}
	out := New(a.Cols, b.Cols)
	for k := 0; k < a.Rows; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Row(i)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulTransB computes a @ bᵀ.
func MatMulTransB(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic("tensor: matmulTransB shape mismatch")
	}
	out := New(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			s := 0.0
			for k, av := range arow {
				s += av * brow[k]
			}
			orow[j] = s
		}
	}
	return out
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*m.Rows+i] = m.Data[i*m.Cols+j]
		}
	}
	return out
}

// Dot computes the Frobenius inner product of two same-shape matrices.
func Dot(a, b *Matrix) float64 {
	a.shapeCheck(b, "dot")
	s := 0.0
	for i, v := range a.Data {
		s += v * b.Data[i]
	}
	return s
}

// Norm2 returns the Frobenius norm.
func (m *Matrix) Norm2() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Apply maps fn over all elements into a fresh matrix.
func (m *Matrix) Apply(fn func(float64) float64) *Matrix {
	out := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = fn(v)
	}
	return out
}

// XavierInit fills m with Glorot-uniform values for fanIn/fanOut.
func (m *Matrix) XavierInit(rng *rand.Rand) {
	limit := math.Sqrt(6.0 / float64(m.Rows+m.Cols))
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * limit
	}
}

// GaussianInit fills m with N(0, std^2) values.
func (m *Matrix) GaussianInit(rng *rand.Rand, std float64) {
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64() * std
	}
}

// RowL2Normalize normalizes each row to unit L2 norm in place (the
// per-hop normalization step of Algorithm 1 line 7). Zero rows are left
// untouched.
func (m *Matrix) RowL2Normalize() {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		s := 0.0
		for _, v := range row {
			s += v * v
		}
		if s == 0 {
			continue
		}
		inv := 1 / math.Sqrt(s)
		for j := range row {
			row[j] *= inv
		}
	}
}

// ConcatCols horizontally concatenates matrices with equal row counts.
func ConcatCols(ms ...*Matrix) *Matrix {
	if len(ms) == 0 {
		return New(0, 0)
	}
	rows := ms[0].Rows
	cols := 0
	for _, m := range ms {
		if m.Rows != rows {
			panic("tensor: concat row mismatch")
		}
		cols += m.Cols
	}
	out := New(rows, cols)
	for i := 0; i < rows; i++ {
		orow := out.Row(i)
		off := 0
		for _, m := range ms {
			copy(orow[off:off+m.Cols], m.Row(i))
			off += m.Cols
		}
	}
	return out
}

// GatherRows builds a matrix whose i-th row is src.Row(idx[i]).
func GatherRows(src *Matrix, idx []int) *Matrix {
	out := New(len(idx), src.Cols)
	for i, r := range idx {
		copy(out.Row(i), src.Row(r))
	}
	return out
}

// MeanRows returns the 1 x Cols column-wise mean.
func (m *Matrix) MeanRows() *Matrix {
	out := New(1, m.Cols)
	if m.Rows == 0 {
		return out
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j] += v
		}
	}
	out.ScaleInPlace(1 / float64(m.Rows))
	return out
}
