// Package dataset provides the synthetic data substitutes for the paper's
// proprietary workloads: Taobao-small/large-sim (attributed heterogeneous
// user-item graphs with power-law degrees, 4 user-item behaviour edge types
// and optional item-item edges, matching Table 3's shape at configurable
// scale), Amazon-sim (the public co-view/co-buy product graph of Table 6),
// dynamic snapshot series with normal and burst evolution (Evolving GNN),
// and train/test link splitting.
//
// The generators plant community structure that is (a) partially distinct
// per edge type — so multiplex-aware models beat merged-graph baselines,
// and (b) correlated with vertex attributes — so attributed models beat
// purely structural ones. Both properties hold in the real Taobao data and
// are what Tables 7-12 exercise.
package dataset

import (
	"math"
	"math/rand"

	"repro/internal/graph"
)

// TaobaoEdgeTypes are the four behaviour edge types of Figure 2.
var TaobaoEdgeTypes = []string{"click", "collect", "cart", "buy"}

// TaobaoConfig parameterizes the Taobao-sim generator.
type TaobaoConfig struct {
	Users, Items int
	Communities  int
	// EdgesPerUser is the mean number of edges per user per edge type;
	// actual degrees are power-law distributed around it.
	EdgesPerUser [4]float64
	// InCommunity is the probability an edge stays inside the (per-type)
	// community; the remainder is popularity-biased noise.
	InCommunity float64
	// DegreeExponent shapes the user activity power law (larger = more
	// skewed toward a few heavy users).
	DegreeExponent float64
	// ItemItemEdges adds a fifth "similar" item-item edge type with this
	// mean degree per item (0 disables; Table 3 includes item-item edges,
	// Table 6's algorithm dataset does not).
	ItemItemEdges float64
	// AttrNoise is the probability a community-indicator attribute bit is
	// flipped.
	AttrNoise float64
	// ReverseProb adds item->user reverse edges ("viewed-by") so traversal
	// can continue past items, weighted by a per-user authority power law.
	// This is what makes the importance metric Imp^(k) = D_i/D_o power-law
	// distributed on both vertex sides, as Theorem 2 requires of real data.
	// Zero disables reverse edges (pure user->item behaviour layers).
	ReverseProb float64
	// UserModes gives each user this many interest communities (>= 1);
	// each edge draws one of them. Multi-modal users are the polysemy the
	// Mixture GNN models (Section 4.2).
	UserModes int
	Seed      int64
}

// TaobaoSmallConfig returns a laptop-scale Taobao-small-sim: same schema
// and distribution shape as the 147.9M-user original at 1/scale size.
func TaobaoSmallConfig(scale float64) TaobaoConfig {
	if scale <= 0 {
		scale = 1
	}
	return TaobaoConfig{
		Users:          int(4000 * scale),
		Items:          int(400 * scale),
		Communities:    8,
		EdgesPerUser:   [4]float64{6, 2, 2, 2}, // click dominates, as in Table 3
		InCommunity:    0.8,
		DegreeExponent: 2.1,
		ItemItemEdges:  2,
		AttrNoise:      0.1,
		ReverseProb:    0.3,
		Seed:           1,
	}
}

// TaobaoLargeConfig is ~6x the edge volume of Taobao-small-sim, mirroring
// the 6x storage ratio reported in Table 3.
func TaobaoLargeConfig(scale float64) TaobaoConfig {
	c := TaobaoSmallConfig(scale)
	c.Users *= 3
	c.EdgesPerUser = [4]float64{12, 4, 4, 4}
	c.Seed = 2
	return c
}

// UserAttrDim and ItemAttrDim match Table 3 (27 user and 32 item
// attributes).
const (
	UserAttrDim = 27
	ItemAttrDim = 32
)

// Taobao generates a Taobao-sim AHG. Vertex type 0 is user, 1 is item;
// edge types 0-3 are click/collect/cart/buy (+ type 4 "similar" item-item
// when configured). User IDs precede item IDs.
func Taobao(cfg TaobaoConfig) *graph.Graph {
	rng := rand.New(rand.NewSource(cfg.Seed))
	edgeTypes := append([]string(nil), TaobaoEdgeTypes...)
	if cfg.ItemItemEdges > 0 {
		edgeTypes = append(edgeTypes, "similar")
	}
	schema := graph.MustSchema([]string{"user", "item"}, edgeTypes)
	b := graph.NewBuilder(schema, true)

	c := cfg.Communities
	modes := cfg.UserModes
	if modes < 1 {
		modes = 1
	}
	userComm := make([][]int, cfg.Users) // each user's interest communities
	itemComm := make([]int, cfg.Items)

	// Users with community-correlated attributes (attributes indicate the
	// primary interest).
	for u := 0; u < cfg.Users; u++ {
		interests := make([]int, modes)
		for m := range interests {
			interests[m] = rng.Intn(c)
		}
		userComm[u] = interests
		b.AddVertex(0, communityAttr(interests[0], c, UserAttrDim, cfg.AttrNoise, rng))
	}
	// Items, popularity power-law.
	itemPop := make([]float64, cfg.Items)
	itemsByComm := make([][]graph.ID, c)
	for i := 0; i < cfg.Items; i++ {
		comm := rng.Intn(c)
		itemComm[i] = comm
		id := b.AddVertex(1, communityAttr(comm, c, ItemAttrDim, cfg.AttrNoise, rng))
		itemPop[i] = powerLaw(rng, cfg.DegreeExponent)
		itemsByComm[comm] = append(itemsByComm[comm], id)
	}
	allItems := make([]graph.ID, cfg.Items)
	for i := range allItems {
		allItems[i] = graph.ID(cfg.Users + i)
	}

	// Behaviour edges. Each edge type rotates the user community mapping so
	// the multiplex layers carry distinct information. Duplicate draws are
	// skipped so the graph is simple (multi-edges would break link-split
	// holdout semantics).
	type ek struct {
		u, v graph.ID
		t    graph.EdgeType
	}
	seen := make(map[ek]bool)
	// Per-user authority: how often other traffic flows back through the
	// user. A power law independent of activity spreads Imp^(k) = D_i/D_o
	// across orders of magnitude.
	authority := make([]float64, cfg.Users)
	for u := range authority {
		authority[u] = powerLaw(rng, cfg.DegreeExponent)
	}
	for t := 0; t < 4; t++ {
		rot := t * (c / 4)
		for u := 0; u < cfg.Users; u++ {
			deg := int(cfg.EdgesPerUser[t] * powerLaw(rng, cfg.DegreeExponent))
			if deg < 1 {
				deg = 1
			}
			for e := 0; e < deg; e++ {
				// Each interaction draws one of the user's interests.
				comm := (userComm[u][rng.Intn(len(userComm[u]))] + rot) % c
				var item graph.ID
				if rng.Float64() < cfg.InCommunity && len(itemsByComm[comm]) > 0 {
					item = pickPopular(itemsByComm[comm], itemPop, cfg.Users, rng)
				} else {
					item = pickPopular(allItems, itemPop, cfg.Users, rng)
				}
				k := ek{graph.ID(u), item, graph.EdgeType(t)}
				if seen[k] {
					continue
				}
				seen[k] = true
				b.AddEdge(graph.ID(u), item, graph.EdgeType(t), 1)
				if cfg.ReverseProb > 0 && rng.Float64() < cfg.ReverseProb*authority[u]/10 {
					rk := ek{item, graph.ID(u), graph.EdgeType(t)}
					if !seen[rk] {
						seen[rk] = true
						b.AddEdge(item, graph.ID(u), graph.EdgeType(t), 1)
					}
				}
			}
		}
	}

	// Item-item similarity edges within communities.
	if cfg.ItemItemEdges > 0 {
		et := graph.EdgeType(4)
		for i := 0; i < cfg.Items; i++ {
			deg := int(cfg.ItemItemEdges * powerLaw(rng, cfg.DegreeExponent))
			pool := itemsByComm[itemComm[i]]
			for e := 0; e < deg && len(pool) > 1; e++ {
				j := pool[rng.Intn(len(pool))]
				k := ek{graph.ID(cfg.Users + i), j, et}
				if j != graph.ID(cfg.Users+i) && !seen[k] {
					seen[k] = true
					b.AddEdge(graph.ID(cfg.Users+i), j, et, 1)
				}
			}
		}
	}
	return b.Finalize()
}

// communityAttr builds an attribute vector whose first c entries are a
// noisy community indicator and whose remainder are random binary
// demographics.
func communityAttr(comm, c, dim int, noise float64, rng *rand.Rand) []float64 {
	a := make([]float64, dim)
	for j := 0; j < c && j < dim; j++ {
		bit := 0.0
		if j == comm {
			bit = 1
		}
		if rng.Float64() < noise {
			bit = 1 - bit
		}
		a[j] = bit
	}
	for j := c; j < dim; j++ {
		if rng.Float64() < 0.3 {
			a[j] = 1
		}
	}
	return a
}

// powerLaw draws a Pareto-distributed multiplier with minimum 1 and
// exponent alpha.
func powerLaw(rng *rand.Rand, alpha float64) float64 {
	u := rng.Float64()
	if u == 0 {
		u = 1e-12
	}
	v := math.Pow(u, -1/(alpha-1))
	if v > 200 { // cap the tail so laptop runs stay bounded
		v = 200
	}
	return v
}

// pickPopular selects an item from pool proportional to popularity.
func pickPopular(pool []graph.ID, pop []float64, userCount int, rng *rand.Rand) graph.ID {
	// Rejection sampling against the max population weight would need a
	// precomputed max; pools are small so a two-candidate tournament biased
	// by popularity is a cheap approximation.
	a := pool[rng.Intn(len(pool))]
	bb := pool[rng.Intn(len(pool))]
	pa, pb := pop[int(a)-userCount], pop[int(bb)-userCount]
	if pa >= pb {
		return a
	}
	return bb
}
