package dataset

import (
	"math/rand"

	"repro/internal/graph"
)

// AmazonConfig parameterizes the Amazon-sim generator: a single-vertex-type
// product graph with two multiplex edge types (co-view, co-buy), planted
// category communities and product attributes — the shape of the public
// electronics-category metadata graph used for Table 8 (10,166 vertices,
// 148,865 edges, 1 vertex type, 2 edge types).
type AmazonConfig struct {
	Products    int
	Communities int
	// MeanDegree per edge type.
	MeanDegree [2]float64
	// InCommunity is the intra-category edge probability.
	InCommunity float64
	AttrDim     int
	AttrNoise   float64
	Seed        int64
}

// AmazonDefaultConfig mirrors the paper's dataset statistics at full size;
// pass scale < 1 to Amazon for laptop-quick benchmarks.
func AmazonDefaultConfig() AmazonConfig {
	return AmazonConfig{
		Products:    10166,
		Communities: 12,
		// 148,865 edges over 10,166 vertices across two types ≈ 14.6
		// edges/vertex; co-view dominates co-buy.
		MeanDegree:  [2]float64{10, 4.6},
		InCommunity: 0.85,
		AttrDim:     16,
		AttrNoise:   0.1,
		Seed:        3,
	}
}

// Amazon generates an Amazon-sim graph scaled by scale (1.0 = paper size).
// Edge type 0 is co-view, 1 is co-buy. The two layers share communities but
// co-buy uses a coarser grouping (pairs of categories), so multiplex models
// gain from modeling them separately.
func Amazon(scale float64) *graph.Graph {
	cfg := AmazonDefaultConfig()
	if scale > 0 && scale != 1 {
		cfg.Products = int(float64(cfg.Products) * scale)
	}
	return AmazonWith(cfg)
}

// AmazonWith generates an Amazon-sim graph from an explicit config.
func AmazonWith(cfg AmazonConfig) *graph.Graph {
	rng := rand.New(rand.NewSource(cfg.Seed))
	schema := graph.MustSchema([]string{"product"}, []string{"coview", "cobuy"})
	b := graph.NewBuilder(schema, false)

	c := cfg.Communities
	comm := make([]int, cfg.Products)
	byComm := make([][]graph.ID, c)
	for i := 0; i < cfg.Products; i++ {
		comm[i] = rng.Intn(c)
		id := b.AddVertex(0, communityAttr(comm[i], c, cfg.AttrDim, cfg.AttrNoise, rng))
		byComm[comm[i]] = append(byComm[comm[i]], id)
	}
	all := make([]graph.ID, cfg.Products)
	for i := range all {
		all[i] = graph.ID(i)
	}

	type ek struct {
		u, v graph.ID
		t    graph.EdgeType
	}
	seen := make(map[ek]bool)
	for t := 0; t < 2; t++ {
		for i := 0; i < cfg.Products; i++ {
			deg := int(cfg.MeanDegree[t] / 2 * powerLaw(rng, 2.3)) // /2: undirected doubles
			grp := comm[i]
			if t == 1 {
				grp = grp / 2 * 2 // co-buy groups category pairs
			}
			for e := 0; e < deg; e++ {
				var j graph.ID
				if rng.Float64() < cfg.InCommunity {
					pool := byComm[grp%c]
					if t == 1 && grp+1 < c && rng.Float64() < 0.5 {
						pool = byComm[grp+1]
					}
					if len(pool) == 0 {
						continue
					}
					j = pool[rng.Intn(len(pool))]
				} else {
					j = all[rng.Intn(len(all))]
				}
				if j == graph.ID(i) {
					continue
				}
				lo, hi := graph.ID(i), j
				if lo > hi {
					lo, hi = hi, lo
				}
				k := ek{lo, hi, graph.EdgeType(t)}
				if seen[k] {
					continue
				}
				seen[k] = true
				b.AddEdge(graph.ID(i), j, graph.EdgeType(t), 1)
			}
		}
	}
	return b.Finalize()
}
