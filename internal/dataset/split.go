package dataset

import (
	"math/rand"

	"repro/internal/graph"
)

// LinkSplit is a train/test split for link prediction on one edge type:
// Train is the input graph with the test edges removed; TestPos are the
// held-out edges; TestNeg are sampled non-edges with the same endpoint-type
// signature.
type LinkSplit struct {
	Train    *graph.Graph
	EdgeType graph.EdgeType
	TestPos  [][2]graph.ID
	TestNeg  [][2]graph.ID
}

// SplitLinks removes a testFrac fraction of type-et edges from g (keeping
// at least one out-edge per vertex so sampling stays well-defined) and
// samples an equal number of negatives.
func SplitLinks(g *graph.Graph, et graph.EdgeType, testFrac float64, rng *rand.Rand) *LinkSplit {
	type edge struct {
		src, dst graph.ID
		t        graph.EdgeType
		w        float64
	}
	var all []edge
	var candidates []int // indices of type-et edges eligible for holdout
	outDeg := make([]int, g.NumVertices())
	for t := 0; t < g.Schema().NumEdgeTypes(); t++ {
		g.EdgesOfType(graph.EdgeType(t), func(src, dst graph.ID, w float64) bool {
			if !g.Directed() && src > dst {
				return true
			}
			all = append(all, edge{src, dst, graph.EdgeType(t), w})
			if graph.EdgeType(t) == et {
				candidates = append(candidates, len(all)-1)
			}
			if graph.EdgeType(t) == et {
				outDeg[src]++
			}
			return true
		})
	}

	rng.Shuffle(len(candidates), func(i, j int) { candidates[i], candidates[j] = candidates[j], candidates[i] })
	want := int(testFrac * float64(len(candidates)))
	held := make(map[int]bool, want)
	for _, ci := range candidates {
		if len(held) >= want {
			break
		}
		e := all[ci]
		if outDeg[e.src] <= 1 {
			continue // keep the vertex connected
		}
		held[ci] = true
		outDeg[e.src]--
	}

	// Rebuild the train graph.
	b := graph.NewBuilder(g.Schema(), g.Directed())
	for v := 0; v < g.NumVertices(); v++ {
		b.AddVertex(g.VertexType(graph.ID(v)), g.VertexAttr(graph.ID(v)))
	}
	split := &LinkSplit{EdgeType: et}
	for i, e := range all {
		if held[i] {
			split.TestPos = append(split.TestPos, [2]graph.ID{e.src, e.dst})
			continue
		}
		b.AddEdge(e.src, e.dst, e.t, e.w)
	}
	split.Train = b.Finalize()

	// Negatives: same endpoint-type signature as the held-out positives,
	// rejecting existing edges.
	exists := make(map[[2]graph.ID]bool)
	g.EdgesOfType(et, func(src, dst graph.ID, _ float64) bool {
		exists[[2]graph.ID{src, dst}] = true
		return true
	})
	for _, pos := range split.TestPos {
		st := g.VertexType(pos[0])
		dt := g.VertexType(pos[1])
		srcs := g.VerticesOfType(st)
		dsts := g.VerticesOfType(dt)
		for tries := 0; tries < 64; tries++ {
			u := srcs[rng.Intn(len(srcs))]
			v := dsts[rng.Intn(len(dsts))]
			if u == v || exists[[2]graph.ID{u, v}] {
				continue
			}
			split.TestNeg = append(split.TestNeg, [2]graph.ID{u, v})
			break
		}
	}
	return split
}

// Stats is a dataset census matching the columns of Tables 3 and 6.
type Stats struct {
	Vertices      int
	Edges         int
	VertexTypes   int
	EdgeTypes     int
	UserVertices  int
	ItemVertices  int
	UserItemEdges int
	ItemItemEdges int
	UserAttrs     int
	ItemAttrs     int
}

// Census computes the statistics of a generated graph. User/item rows are
// zero for single-type graphs.
func Census(g *graph.Graph) Stats {
	s := Stats{
		Vertices:    g.NumVertices(),
		Edges:       g.NumEdges(),
		VertexTypes: g.Schema().NumVertexTypes(),
		EdgeTypes:   g.Schema().NumEdgeTypes(),
	}
	if ut, ok := g.Schema().VertexTypeByName("user"); ok {
		s.UserVertices = len(g.VerticesOfType(ut))
		if len(g.VerticesOfType(ut)) > 0 {
			s.UserAttrs = len(g.VertexAttr(g.VerticesOfType(ut)[0]))
		}
	}
	if it, ok := g.Schema().VertexTypeByName("item"); ok {
		s.ItemVertices = len(g.VerticesOfType(it))
		if len(g.VerticesOfType(it)) > 0 {
			s.ItemAttrs = len(g.VertexAttr(g.VerticesOfType(it)[0]))
		}
	}
	for t := 0; t < g.Schema().NumEdgeTypes(); t++ {
		n := g.NumEdgesOfType(graph.EdgeType(t))
		if !g.Directed() {
			n /= 2
		}
		if g.Schema().EdgeTypeName(graph.EdgeType(t)) == "similar" {
			s.ItemItemEdges += n
		} else {
			s.UserItemEdges += n
		}
	}
	return s
}
