package dataset

import (
	"math/rand"

	"repro/internal/graph"
)

// DynamicConfig parameterizes the dynamic snapshot generator used for the
// Evolving GNN experiments (Table 11). The series starts from a community
// graph and evolves in two modes, following the paper's taxonomy:
//   - normal evolution: gradual intra-community edge churn each step;
//   - burst change: at designated timestamps a small set of "burst"
//     vertices suddenly gains many cross-community edges.
type DynamicConfig struct {
	Vertices    int
	Communities int
	T           int // number of snapshots
	BaseDegree  float64
	// ChurnFrac is the fraction of edges added (and removed) per step under
	// normal evolution.
	ChurnFrac float64
	// BurstAt lists the 1-based timestamps at which bursts occur.
	BurstAt []int
	// BurstVertices and BurstEdges size each burst.
	BurstVertices, BurstEdges int
	Seed                      int64
}

// DynamicDefaultConfig returns a laptop-scale dynamic series.
func DynamicDefaultConfig() DynamicConfig {
	return DynamicConfig{
		Vertices:      800,
		Communities:   6,
		T:             6,
		BaseDegree:    6,
		ChurnFrac:     0.05,
		BurstAt:       []int{4},
		BurstVertices: 20,
		BurstEdges:    30,
		Seed:          4,
	}
}

// DynamicSeries holds the generated snapshots plus ground truth for the
// multi-class link prediction task: each vertex's community label and which
// edges are burst edges at each timestamp.
type DynamicSeries struct {
	D          *graph.Dynamic
	Comm       []int // vertex -> community
	BurstEdges []map[[2]graph.ID]bool
}

// Dynamic generates the snapshot series.
func Dynamic(cfg DynamicConfig) *DynamicSeries {
	rng := rand.New(rand.NewSource(cfg.Seed))
	comm := make([]int, cfg.Vertices)
	byComm := make([][]graph.ID, cfg.Communities)
	for v := 0; v < cfg.Vertices; v++ {
		comm[v] = rng.Intn(cfg.Communities)
		byComm[comm[v]] = append(byComm[comm[v]], graph.ID(v))
	}

	type ek = [2]graph.ID
	edges := make(map[ek]bool)
	addIntra := func(n int) {
		for i := 0; i < n; i++ {
			c := rng.Intn(cfg.Communities)
			pool := byComm[c]
			if len(pool) < 2 {
				continue
			}
			u, v := pool[rng.Intn(len(pool))], pool[rng.Intn(len(pool))]
			if u != v {
				edges[ek{u, v}] = true
			}
		}
	}
	addIntra(int(cfg.BaseDegree * float64(cfg.Vertices) / 2))

	series := &DynamicSeries{Comm: comm}
	burstSet := make(map[int]bool)
	for _, t := range cfg.BurstAt {
		burstSet[t] = true
	}

	snapshot := func(burst map[ek]bool) *graph.Graph {
		b := graph.NewBuilder(graph.SimpleSchema(), true)
		b.AddVertices(0, cfg.Vertices)
		for e := range edges {
			b.AddEdge(e[0], e[1], 0, 1)
		}
		for e := range burst {
			b.AddEdge(e[0], e[1], 0, 1)
		}
		return b.Finalize()
	}

	for t := 1; t <= cfg.T; t++ {
		// Normal churn: remove then add a ChurnFrac of edges.
		churn := int(cfg.ChurnFrac * float64(len(edges)))
		removed := 0
		for e := range edges {
			if removed >= churn {
				break
			}
			delete(edges, e)
			removed++
		}
		addIntra(churn)

		burst := make(map[ek]bool)
		if burstSet[t] {
			for i := 0; i < cfg.BurstVertices; i++ {
				u := graph.ID(rng.Intn(cfg.Vertices))
				for e := 0; e < cfg.BurstEdges/cfg.BurstVertices+1; e++ {
					// Cross-community target.
					c := (comm[u] + 1 + rng.Intn(cfg.Communities-1)) % cfg.Communities
					pool := byComm[c]
					if len(pool) == 0 {
						continue
					}
					v := pool[rng.Intn(len(pool))]
					burst[ek{u, v}] = true
				}
			}
		}
		series.D = appendSnapshot(series.D, snapshot(burst))
		bm := make(map[[2]graph.ID]bool, len(burst))
		for e := range burst {
			bm[e] = true
		}
		series.BurstEdges = append(series.BurstEdges, bm)
	}
	return series
}

func appendSnapshot(d *graph.Dynamic, g *graph.Graph) *graph.Dynamic {
	if d == nil {
		d = &graph.Dynamic{}
	}
	d.Snapshots = append(d.Snapshots, g)
	return d
}
