package dataset

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestTaobaoShape(t *testing.T) {
	g := Taobao(TaobaoSmallConfig(0.25))
	st := Census(g)
	if st.UserVertices == 0 || st.ItemVertices == 0 {
		t.Fatalf("census: %+v", st)
	}
	if st.VertexTypes != 2 || st.EdgeTypes != 5 {
		t.Fatalf("types: %+v", st)
	}
	if st.UserAttrs != UserAttrDim || st.ItemAttrs != ItemAttrDim {
		t.Fatalf("attr dims: %+v", st)
	}
	if st.UserItemEdges == 0 || st.ItemItemEdges == 0 {
		t.Fatalf("edges: %+v", st)
	}
	// Without reverse edges, behaviour edges go strictly user -> item.
	cfgNoRev := TaobaoSmallConfig(0.25)
	cfgNoRev.ReverseProb = 0
	gNoRev := Taobao(cfgNoRev)
	for tt := 0; tt < 4; tt++ {
		gNoRev.EdgesOfType(graph.EdgeType(tt), func(src, dst graph.ID, _ float64) bool {
			if gNoRev.VertexType(src) != 0 || gNoRev.VertexType(dst) != 1 {
				t.Fatalf("edge type %d connects %d->%d types %d->%d", tt, src, dst,
					gNoRev.VertexType(src), gNoRev.VertexType(dst))
			}
			return true
		})
	}
	// With reverse edges, every behaviour edge connects a user and an item.
	for tt := 0; tt < 4; tt++ {
		g.EdgesOfType(graph.EdgeType(tt), func(src, dst graph.ID, _ float64) bool {
			if g.VertexType(src) == g.VertexType(dst) {
				t.Fatalf("behaviour edge %d->%d connects same-type vertices", src, dst)
			}
			return true
		})
	}
	// Similar edges go item -> item.
	g.EdgesOfType(4, func(src, dst graph.ID, _ float64) bool {
		if g.VertexType(src) != 1 || g.VertexType(dst) != 1 {
			t.Fatal("similar edge endpoints must be items")
		}
		return true
	})
}

func TestTaobaoLargeIsBigger(t *testing.T) {
	small := Census(Taobao(TaobaoSmallConfig(0.2)))
	large := Census(Taobao(TaobaoLargeConfig(0.2)))
	ratio := float64(large.UserItemEdges) / float64(small.UserItemEdges)
	if ratio < 3 {
		t.Fatalf("large/small edge ratio = %f, want >= 3 (paper: ~6x storage)", ratio)
	}
}

func TestTaobaoDeterministic(t *testing.T) {
	a := Census(Taobao(TaobaoSmallConfig(0.1)))
	b := Census(Taobao(TaobaoSmallConfig(0.1)))
	if a != b {
		t.Fatalf("generator not deterministic: %+v vs %+v", a, b)
	}
}

func TestTaobaoPowerLaw(t *testing.T) {
	// User-side activity and authority must both be power-law distributed
	// (the mixed user+item histogram is bimodal, so fit each side).
	g := Taobao(TaobaoSmallConfig(0.5))
	users := g.VerticesOfType(0)
	var out, in []int
	for _, u := range users {
		out = append(out, g.TotalOutDegree(u))
		in = append(in, g.TotalInDegree(u))
	}
	fitOut := graph.FitPowerLaw(graph.Histogram(out))
	if fitOut.Alpha < 0.8 || fitOut.Alpha > 5 || fitOut.R2 < 0.5 {
		t.Fatalf("user out-degree: alpha=%f r2=%f", fitOut.Alpha, fitOut.R2)
	}
	fitIn := graph.FitPowerLaw(graph.Histogram(in))
	if fitIn.R2 < 0.5 {
		t.Fatalf("user in-degree: alpha=%f r2=%f", fitIn.Alpha, fitIn.R2)
	}
}

func TestAmazonShape(t *testing.T) {
	g := Amazon(0.2)
	st := Census(g)
	if st.VertexTypes != 1 || st.EdgeTypes != 2 {
		t.Fatalf("census: %+v", st)
	}
	scale := 0.2
	if g.NumVertices() != int(float64(10166)*scale) {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	// Edge density should be in the ballpark of the paper's 14.6
	// edges/vertex (generated as undirected, so count logical edges).
	ratio := float64(g.NumEdges()) / float64(g.NumVertices())
	if ratio < 4 || ratio > 30 {
		t.Fatalf("edges/vertex = %f", ratio)
	}
}

func TestDynamicSeries(t *testing.T) {
	cfg := DynamicDefaultConfig()
	cfg.Vertices = 200
	cfg.T = 5
	cfg.BurstAt = []int{3}
	s := Dynamic(cfg)
	if s.D.T() != 5 {
		t.Fatalf("T = %d", s.D.T())
	}
	if len(s.Comm) != 200 || len(s.BurstEdges) != 5 {
		t.Fatalf("metadata sizes: %d %d", len(s.Comm), len(s.BurstEdges))
	}
	// Burst only at t=3.
	for tt := 1; tt <= 5; tt++ {
		n := len(s.BurstEdges[tt-1])
		if tt == 3 && n == 0 {
			t.Fatal("expected burst edges at t=3")
		}
		if tt != 3 && n != 0 {
			t.Fatalf("unexpected burst at t=%d", tt)
		}
	}
	// Burst edges must be cross-community.
	for e := range s.BurstEdges[2] {
		if s.Comm[e[0]] == s.Comm[e[1]] {
			t.Fatal("burst edge inside a community")
		}
	}
	// Snapshots evolve: consecutive snapshots differ.
	d := s.D.Delta(1, 0)
	if len(d.Added) == 0 && len(d.Removed) == 0 {
		t.Fatal("no churn between snapshots")
	}
}

func TestSplitLinks(t *testing.T) {
	g := Taobao(TaobaoSmallConfig(0.1))
	rng := rand.New(rand.NewSource(1))
	sp := SplitLinks(g, 0, 0.2, rng)
	if len(sp.TestPos) == 0 {
		t.Fatal("no held-out positives")
	}
	if len(sp.TestNeg) < len(sp.TestPos)*9/10 {
		t.Fatalf("negatives %d << positives %d", len(sp.TestNeg), len(sp.TestPos))
	}
	// Held-out edges must not be in the train graph.
	for _, e := range sp.TestPos[:min(50, len(sp.TestPos))] {
		if sp.Train.HasEdge(e[0], e[1], 0) {
			t.Fatalf("held-out edge %v still present", e)
		}
		if !g.HasEdge(e[0], e[1], 0) {
			t.Fatalf("held-out edge %v never existed", e)
		}
	}
	// Negatives must be true non-edges of the original graph.
	for _, e := range sp.TestNeg[:min(50, len(sp.TestNeg))] {
		if g.HasEdge(e[0], e[1], 0) {
			t.Fatalf("negative %v is a real edge", e)
		}
	}
	// No vertex lost all its type-0 out-edges.
	sawZero := false
	for v := 0; v < sp.Train.NumVertices(); v++ {
		if g.OutDegree(graph.ID(v), 0) > 0 && sp.Train.OutDegree(graph.ID(v), 0) == 0 {
			sawZero = true
		}
	}
	if sawZero {
		t.Fatal("split disconnected a vertex")
	}
	// Other edge types untouched.
	if sp.Train.NumEdgesOfType(1) != g.NumEdgesOfType(1) {
		t.Fatal("non-target edge type modified")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
