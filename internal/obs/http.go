package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry over HTTP:
//
//	/metrics        flat text, one "name value" line per series
//	/metrics.json   the Snapshot as JSON
//	/debug/pprof/   the standard runtime profiles
//
// pprof handlers are mounted explicitly (not via http.DefaultServeMux) so
// embedding programs keep their own mux clean.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = r.Snapshot().WriteText(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		b, err := r.Snapshot().JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(b)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the metrics endpoint on addr in a background goroutine and
// returns the listening server (Close to stop). The bound address is
// available as srv.Addr (useful with ":0").
func Serve(addr string, r *Registry) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Addr: ln.Addr().String(), Handler: Handler(r)}
	go func() { _ = srv.Serve(ln) }()
	return srv, nil
}
