package obs

import (
	"math/bits"
	"sync/atomic"
)

// histBuckets is the fixed bucket count: bucket i holds observations v with
// bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i) (bucket 0 holds v <= 0).
// Values are typically nanoseconds, so 64 power-of-two buckets span from
// 1ns past three centuries with bounded, allocation-free state.
const histBuckets = 64

// Histogram is a lock-free log-bucket histogram with exact count, sum and
// max and <2x-relative-error upper-bound quantiles. The zero value is ready
// to use; Observe is safe from any goroutine and never allocates.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketOf maps an observation to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	i := bits.Len64(uint64(v))
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// bucketUpper is the inclusive upper bound of bucket i's value range.
func bucketUpper(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return int64(^uint64(0) >> 1) // MaxInt64
	}
	return int64(1)<<uint(i) - 1
}

// Observe records one value (negative values clamp into bucket 0).
func (h *Histogram) Observe(v int64) {
	h.count.Add(1)
	if v > 0 {
		h.sum.Add(v)
	}
	h.buckets[bucketOf(v)].Add(1)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all positive observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest observation (0 if none).
func (h *Histogram) Max() int64 { return h.max.Load() }

// Quantile returns an upper-bound estimate of the q-th quantile (0 < q <=
// 1): the inclusive upper bound of the log bucket holding the ceil(q*count)-th
// smallest observation, so the estimate is never below the true quantile and
// less than 2x above it. Returns 0 on an empty histogram.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen >= rank {
			u := bucketUpper(i)
			if m := h.max.Load(); m < u {
				return m // tighten the top bucket with the exact max
			}
			return u
		}
	}
	return h.max.Load()
}

// HistogramSnapshot is a point-in-time reading of one histogram.
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Max   int64 `json:"max"`
	P50   int64 `json:"p50"`
	P99   int64 `json:"p99"`
}

// Snapshot reads the histogram. Concurrent Observes may land between field
// reads; each field is individually correct.
func (h *Histogram) Snapshot() HistogramSnapshot {
	return HistogramSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		Max:   h.Max(),
		P50:   h.Quantile(0.50),
		P99:   h.Quantile(0.99),
	}
}
