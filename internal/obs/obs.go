// Package obs is the shared instrumentation core: lock-free counters,
// bounded log-bucket latency histograms, and a labeled registry with one
// snapshot API.
//
// The design splits the hot path from the reporting path. Components own
// their instruments directly (a Counter is one atomic.Int64; a Histogram is
// a fixed array of them), so recording costs one or two uncontended atomic
// adds and never allocates, locks, or touches the registry. The registry is
// only a naming layer: components register instrument pointers (or
// snapshot-time collector functions for dynamic series) once at setup, and
// Registry.Snapshot walks them on demand. Instrumentation therefore stays
// always-on: it reads clocks and bumps atomics but never consumes random
// draws, so training determinism is bit-neutral to it.
//
// Snapshots serialize to JSON (Snapshot) or a flat "name value" text form
// (Snapshot.WriteText); Handler serves both over HTTP together with
// net/http/pprof.
package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonic lock-free counter. The zero value is ready to use,
// and Add/Inc are safe from any goroutine and never allocate.
type Counter struct{ v atomic.Int64 }

// Add adds n to the counter.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Registry names instruments and produces snapshots. All methods are safe
// for concurrent use; none of them sit on a hot path — components keep
// direct pointers to their instruments and only Snapshot takes the lock.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	hists      map[string]*Histogram
	gauges     map[string]func() int64
	collectors []func(emit func(name string, v int64))
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
		gauges:   make(map[string]func() int64),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// RegisterCounter names an existing counter. The last registration of a
// name wins.
func (r *Registry) RegisterCounter(name string, c *Counter) {
	r.mu.Lock()
	r.counters[name] = c
	r.mu.Unlock()
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// RegisterHistogram names an existing histogram.
func (r *Registry) RegisterHistogram(name string, h *Histogram) {
	r.mu.Lock()
	r.hists[name] = h
	r.mu.Unlock()
}

// Gauge registers a function evaluated at snapshot time (occupancy, lease
// counts, cache sizes — anything already tracked elsewhere).
func (r *Registry) Gauge(name string, f func() int64) {
	r.mu.Lock()
	r.gauges[name] = f
	r.mu.Unlock()
}

// Collect registers a collector for dynamic series: at snapshot time f is
// called with an emit function and every emitted (name, value) pair lands in
// the snapshot's counter section. Components with label spaces discovered at
// runtime (per-(edge type, hop) breakdowns) register one collector instead
// of pre-registering every combination.
func (r *Registry) Collect(f func(emit func(name string, v int64))) {
	r.mu.Lock()
	r.collectors = append(r.collectors, f)
	r.mu.Unlock()
}

// Snapshot is a point-in-time reading of every registered instrument.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot reads every instrument. Concurrent recording continues during the
// walk; each value is individually atomic but the set is not a consistent
// cut (fine for monitoring).
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, f := range r.gauges {
		s.Gauges[name] = f()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	for _, f := range r.collectors {
		f(func(name string, v int64) { s.Counters[name] = v })
	}
	return s
}

// MarshalJSON is the /metrics.json wire form.
func (s Snapshot) JSON() ([]byte, error) { return json.MarshalIndent(s, "", "  ") }

// WriteText writes the flat "name value" form, one series per line, sorted
// by name. Histograms expand to .count/.sum/.avg/.p50/.p99/.max lines.
func (s Snapshot) WriteText(w io.Writer) error {
	lines := make([]string, 0, len(s.Counters)+len(s.Gauges)+6*len(s.Histograms))
	for name, v := range s.Counters {
		lines = append(lines, name+" "+strconv.FormatInt(v, 10))
	}
	for name, v := range s.Gauges {
		lines = append(lines, name+" "+strconv.FormatInt(v, 10))
	}
	for name, h := range s.Histograms {
		avg := int64(0)
		if h.Count > 0 {
			avg = h.Sum / h.Count
		}
		lines = append(lines,
			name+".count "+strconv.FormatInt(h.Count, 10),
			name+".sum "+strconv.FormatInt(h.Sum, 10),
			name+".avg "+strconv.FormatInt(avg, 10),
			name+".p50 "+strconv.FormatInt(h.P50, 10),
			name+".p99 "+strconv.FormatInt(h.P99, 10),
			name+".max "+strconv.FormatInt(h.Max, 10),
		)
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := io.WriteString(w, l+"\n"); err != nil {
			return err
		}
	}
	return nil
}
