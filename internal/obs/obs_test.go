package obs

import (
	"encoding/json"
	"io"
	"math/rand"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestHistogramBuckets pins the bucket boundaries: bucket i holds values in
// [2^(i-1), 2^i), bucket 0 holds non-positives.
func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{255, 8}, {256, 9}, {1 << 40, 41}, {int64(^uint64(0) >> 1), 63},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.bucket)
		}
	}
	// Upper bounds are inclusive: bucketUpper(i) is the largest v with
	// bucketOf(v) == i.
	for i := 1; i < 63; i++ {
		u := bucketUpper(i)
		if bucketOf(u) != i {
			t.Errorf("bucketOf(bucketUpper(%d)=%d) = %d", i, u, bucketOf(u))
		}
		if bucketOf(u+1) != i+1 {
			t.Errorf("bucketOf(%d) = %d, want %d", u+1, bucketOf(u+1), i+1)
		}
	}
}

// TestHistogramCountSumMax checks the exact aggregates.
func TestHistogramCountSumMax(t *testing.T) {
	var h Histogram
	for _, v := range []int64{5, 1, 100, 7, -3} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 113 { // negatives clamp out of the sum
		t.Errorf("sum = %d, want 113", h.Sum())
	}
	if h.Max() != 100 {
		t.Errorf("max = %d, want 100", h.Max())
	}
}

// TestHistogramQuantileAccuracy: quantile estimates are upper bounds within
// a factor of two of the true quantile, by construction of the log buckets.
func TestHistogramQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h Histogram
	vals := make([]int64, 0, 10000)
	for i := 0; i < 10000; i++ {
		v := int64(1 + rng.ExpFloat64()*50000) // long-tailed, like latencies
		vals = append(vals, v)
		h.Observe(v)
	}
	sortInt64(vals)
	for _, q := range []float64{0.5, 0.9, 0.99, 1.0} {
		rank := int(q * float64(len(vals)))
		if rank < 1 {
			rank = 1
		}
		truth := vals[rank-1]
		est := h.Quantile(q)
		if est < truth {
			t.Errorf("q=%g: estimate %d below true %d", q, est, truth)
		}
		if est >= 2*truth {
			t.Errorf("q=%g: estimate %d not within 2x of true %d", q, est, truth)
		}
	}
	if h.Quantile(1.0) != h.Max() && h.Quantile(1.0) < vals[len(vals)-1] {
		t.Errorf("p100 = %d, max = %d", h.Quantile(1.0), h.Max())
	}
}

func sortInt64(s []int64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// TestHistogramQuantileEmpty guards the zero cases.
func TestHistogramQuantileEmpty(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Max() != 0 || h.Count() != 0 {
		t.Error("empty histogram must read zero")
	}
	h.Observe(0)
	if h.Quantile(0.99) != 0 {
		t.Errorf("all-zero histogram p99 = %d", h.Quantile(0.99))
	}
}

// TestRegistryConcurrent hammers one registry from many goroutines (counters,
// histograms, snapshots all interleaved) — run under -race in CI.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits")
	h := r.Histogram("lat")
	var dyn Counter
	r.Collect(func(emit func(string, int64)) { emit("dyn.total", dyn.Load()) })
	r.Gauge("g", func() int64 { return c.Load() })

	const goroutines, ops = 16, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				c.Inc()
				h.Observe(int64(g*ops + i + 1))
				dyn.Inc()
				if i%500 == 0 {
					_ = r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	s := r.Snapshot()
	want := int64(goroutines * ops)
	if s.Counters["hits"] != want {
		t.Errorf("hits = %d, want %d", s.Counters["hits"], want)
	}
	if s.Counters["dyn.total"] != want {
		t.Errorf("dyn.total = %d, want %d", s.Counters["dyn.total"], want)
	}
	if s.Histograms["lat"].Count != want {
		t.Errorf("lat.count = %d, want %d", s.Histograms["lat"].Count, want)
	}
	if s.Histograms["lat"].Max != want {
		t.Errorf("lat.max = %d, want %d", s.Histograms["lat"].Max, want)
	}
	if s.Gauges["g"] != want {
		t.Errorf("gauge = %d, want %d", s.Gauges["g"], want)
	}
}

// TestZeroAllocHotPath proves Counter.Add and Histogram.Observe are
// allocation-free at steady state — the property that lets instrumentation
// stay always-on in the sampling hot loops.
func TestZeroAllocHotPath(t *testing.T) {
	var c Counter
	var h Histogram
	if n := testing.AllocsPerRun(1000, func() { c.Add(3) }); n != 0 {
		t.Errorf("Counter.Add allocates %v/op", n)
	}
	v := int64(1)
	if n := testing.AllocsPerRun(1000, func() { h.Observe(v); v += 97 }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v/op", n)
	}
}

// TestSnapshotSerialization: JSON round-trips and the text form lists every
// series.
func TestSnapshotSerialization(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.calls").Add(7)
	r.Histogram("a.lat").Observe(1000)
	r.Gauge("a.depth", func() int64 { return 3 })

	s := r.Snapshot()
	b, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["a.calls"] != 7 || back.Gauges["a.depth"] != 3 || back.Histograms["a.lat"].Count != 1 {
		t.Errorf("round-trip mismatch: %+v", back)
	}

	var sb strings.Builder
	if err := s.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"a.calls 7", "a.depth 3", "a.lat.count 1", "a.lat.p99 "} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("text form missing %q:\n%s", want, sb.String())
		}
	}
}

// TestHandler exercises /metrics and /metrics.json end to end.
func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs").Add(5)
	ts := httptest.NewServer(Handler(r))
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "reqs 5") {
		t.Errorf("/metrics missing series: %s", body)
	}

	resp, err = ts.Client().Get(ts.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Counters["reqs"] != 5 {
		t.Errorf("/metrics.json reqs = %d", snap.Counters["reqs"])
	}
}

// BenchmarkObsCounterAdd and BenchmarkObsHistogramObserve put numbers behind
// the "always-on is free" claim: both are a handful of nanoseconds and zero
// allocations, so the instrumented hot paths keep their performance profile
// with recording enabled (the CI bench smoke runs these alongside the
// sampling and training benchmarks).
func BenchmarkObsCounterAdd(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkObsHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i)*119 + 1)
	}
}

func BenchmarkObsHistogramObserveParallel(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := int64(1)
		for pb.Next() {
			h.Observe(v)
			v += 131
		}
	})
}
