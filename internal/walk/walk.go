// Package walk generates random-walk corpora over graphs: uniform walks
// (DeepWalk), second-order p/q-biased walks (Node2Vec), meta-path
// constrained walks (Metapath2Vec) and per-layer multiplex walks
// (PMNE/MNE/MVE/GATNE). A corpus is a slice of vertex sequences fed to the
// skip-gram trainer in internal/skipgram.
package walk

import (
	"math/rand"

	"repro/internal/graph"
)

// Corpus is a set of random-walk sequences.
type Corpus [][]graph.ID

// Uniform performs a uniform random walk of the given length from start,
// following out-edges of edge type et. The walk stops early at dead ends.
func Uniform(g *graph.Graph, start graph.ID, length int, et graph.EdgeType, rng *rand.Rand) []graph.ID {
	w := make([]graph.ID, 0, length)
	w = append(w, start)
	cur := start
	for len(w) < length {
		ns := g.OutNeighbors(cur, et)
		if len(ns) == 0 {
			break
		}
		cur = ns[rng.Intn(len(ns))]
		w = append(w, cur)
	}
	return w
}

// UniformAllTypes walks following out-edges of any type, choosing uniformly
// among the union of typed neighbor lists.
func UniformAllTypes(g *graph.Graph, start graph.ID, length int, rng *rand.Rand) []graph.ID {
	w := make([]graph.ID, 0, length)
	w = append(w, start)
	cur := start
	for len(w) < length {
		ns := g.Neighbors(cur)
		if len(ns) == 0 {
			break
		}
		cur = ns[rng.Intn(len(ns))]
		w = append(w, cur)
	}
	return w
}

// UniformCorpus generates walksPerVertex uniform walks from every vertex.
func UniformCorpus(g *graph.Graph, walksPerVertex, length int, et graph.EdgeType, rng *rand.Rand) Corpus {
	var c Corpus
	for r := 0; r < walksPerVertex; r++ {
		for v := 0; v < g.NumVertices(); v++ {
			if g.OutDegree(graph.ID(v), et) == 0 {
				continue
			}
			c = append(c, Uniform(g, graph.ID(v), length, et, rng))
		}
	}
	return c
}

// MergedCorpus generates walks over the union of all edge types (the
// "merge layers then embed" strategy, e.g. PMNE-n's network-aggregation
// baseline and DeepWalk on heterogeneous graphs).
func MergedCorpus(g *graph.Graph, walksPerVertex, length int, rng *rand.Rand) Corpus {
	var c Corpus
	for r := 0; r < walksPerVertex; r++ {
		for v := 0; v < g.NumVertices(); v++ {
			if g.TotalOutDegree(graph.ID(v)) == 0 {
				continue
			}
			c = append(c, UniformAllTypes(g, graph.ID(v), length, rng))
		}
	}
	return c
}

// Node2Vec performs a second-order biased walk with return parameter p and
// in-out parameter q (Grover & Leskovec). Bias is applied by rejection
// sampling against the unnormalized transition weights.
func Node2Vec(g *graph.Graph, start graph.ID, length int, et graph.EdgeType, p, q float64, rng *rand.Rand) []graph.ID {
	w := make([]graph.ID, 0, length)
	w = append(w, start)
	if length == 1 {
		return w
	}
	ns := g.OutNeighbors(start, et)
	if len(ns) == 0 {
		return w
	}
	cur := ns[rng.Intn(len(ns))]
	w = append(w, cur)
	prev := start
	maxBias := max3(1/p, 1, 1/q)
	for len(w) < length {
		ns := g.OutNeighbors(cur, et)
		if len(ns) == 0 {
			break
		}
		// Rejection sampling on the p/q bias.
		var next graph.ID
		for {
			cand := ns[rng.Intn(len(ns))]
			var bias float64
			switch {
			case cand == prev:
				bias = 1 / p
			case g.HasEdge(prev, cand, et):
				bias = 1
			default:
				bias = 1 / q
			}
			if rng.Float64() < bias/maxBias {
				next = cand
				break
			}
		}
		w = append(w, next)
		prev, cur = cur, next
	}
	return w
}

// Node2VecCorpus generates biased walks from every vertex.
func Node2VecCorpus(g *graph.Graph, walksPerVertex, length int, et graph.EdgeType, p, q float64, rng *rand.Rand) Corpus {
	var c Corpus
	for r := 0; r < walksPerVertex; r++ {
		for v := 0; v < g.NumVertices(); v++ {
			if g.OutDegree(graph.ID(v), et) == 0 {
				continue
			}
			c = append(c, Node2Vec(g, graph.ID(v), length, et, p, q, rng))
		}
	}
	return c
}

// MetaPath performs a walk constrained to follow the given vertex-type
// pattern cyclically (e.g. user-item-user). At each step only neighbors of
// the next required type are candidates; the walk stops when none exist.
func MetaPath(g *graph.Graph, start graph.ID, length int, pattern []graph.VertexType, rng *rand.Rand) []graph.ID {
	w := make([]graph.ID, 0, length)
	w = append(w, start)
	cur := start
	pos := 0 // position of cur in the pattern
	for len(w) < length {
		want := pattern[(pos+1)%len(pattern)]
		var cands []graph.ID
		for _, u := range g.Neighbors(cur) {
			if g.VertexType(u) == want {
				cands = append(cands, u)
			}
		}
		if len(cands) == 0 {
			break
		}
		cur = cands[rng.Intn(len(cands))]
		pos++
		w = append(w, cur)
	}
	return w
}

// MetaPathCorpus generates meta-path walks starting from every vertex whose
// type matches the head of the pattern.
func MetaPathCorpus(g *graph.Graph, walksPerVertex, length int, pattern []graph.VertexType, rng *rand.Rand) Corpus {
	var c Corpus
	for r := 0; r < walksPerVertex; r++ {
		for _, v := range g.VerticesOfType(pattern[0]) {
			c = append(c, MetaPath(g, v, length, pattern, rng))
		}
	}
	return c
}

// PerTypeCorpora generates one uniform-walk corpus per edge type (the
// multiplex decomposition used by PMNE, MNE, MVE and GATNE).
func PerTypeCorpora(g *graph.Graph, walksPerVertex, length int, rng *rand.Rand) []Corpus {
	out := make([]Corpus, g.Schema().NumEdgeTypes())
	for t := range out {
		out[t] = UniformCorpus(g, walksPerVertex, length, graph.EdgeType(t), rng)
	}
	return out
}

func max3(a, b, c float64) float64 {
	m := a
	if b > m {
		m = b
	}
	if c > m {
		m = c
	}
	return m
}
