package walk

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func lineGraph(n int) *graph.Graph {
	b := graph.NewBuilder(graph.SimpleSchema(), true)
	b.AddVertices(0, n)
	for v := 0; v < n-1; v++ {
		b.AddEdge(graph.ID(v), graph.ID(v+1), 0, 1)
	}
	return b.Finalize()
}

func bipartite() *graph.Graph {
	s := graph.MustSchema([]string{"user", "item"}, []string{"e"})
	b := graph.NewBuilder(s, false)
	for i := 0; i < 3; i++ {
		b.AddVertex(0, nil)
	}
	for i := 0; i < 3; i++ {
		b.AddVertex(1, nil)
	}
	for u := graph.ID(0); u < 3; u++ {
		for v := graph.ID(3); v < 6; v++ {
			b.AddEdge(u, v, 0, 1)
		}
	}
	return b.Finalize()
}

func TestUniformWalkFollowsEdges(t *testing.T) {
	g := lineGraph(6)
	rng := rand.New(rand.NewSource(1))
	w := Uniform(g, 0, 10, 0, rng)
	// On a line, the walk is deterministic: 0,1,2,3,4,5 then stops.
	if len(w) != 6 {
		t.Fatalf("walk = %v", w)
	}
	for i, v := range w {
		if v != graph.ID(i) {
			t.Fatalf("walk = %v", w)
		}
	}
}

func TestUniformWalkDeadEnd(t *testing.T) {
	g := lineGraph(2)
	rng := rand.New(rand.NewSource(1))
	w := Uniform(g, 1, 5, 0, rng)
	if len(w) != 1 || w[0] != 1 {
		t.Fatalf("dead-end walk = %v", w)
	}
}

func TestUniformCorpusSkipsIsolated(t *testing.T) {
	g := lineGraph(4)
	rng := rand.New(rand.NewSource(1))
	c := UniformCorpus(g, 2, 3, 0, rng)
	// Vertex 3 has no out-edges: 3 eligible vertices x 2 reps.
	if len(c) != 6 {
		t.Fatalf("corpus size = %d", len(c))
	}
}

func TestNode2VecReturnBias(t *testing.T) {
	// Triangle with tail. With very small p (return cheap) the walk should
	// backtrack often; with huge p rarely. Count immediate returns.
	b := graph.NewBuilder(graph.SimpleSchema(), false)
	b.AddVertices(0, 4)
	b.AddEdge(0, 1, 0, 1)
	b.AddEdge(1, 2, 0, 1)
	b.AddEdge(2, 0, 0, 1)
	b.AddEdge(1, 3, 0, 1)
	g := b.Finalize()

	countReturns := func(p float64, seed int64) int {
		rng := rand.New(rand.NewSource(seed))
		returns := 0
		for i := 0; i < 200; i++ {
			w := Node2Vec(g, 0, 20, 0, p, 1.0, rng)
			for j := 2; j < len(w); j++ {
				if w[j] == w[j-2] {
					returns++
				}
			}
		}
		return returns
	}
	low := countReturns(0.1, 7)
	high := countReturns(10, 7)
	if low <= high {
		t.Fatalf("return bias inverted: p=0.1 gives %d returns, p=10 gives %d", low, high)
	}
}

func TestMetaPathRespectsPattern(t *testing.T) {
	g := bipartite()
	rng := rand.New(rand.NewSource(2))
	pattern := []graph.VertexType{0, 1} // user-item-user-item...
	w := MetaPath(g, 0, 9, pattern, rng)
	if len(w) != 9 {
		t.Fatalf("walk len = %d", len(w))
	}
	for i, v := range w {
		want := pattern[i%2]
		if g.VertexType(v) != want {
			t.Fatalf("position %d: type %d want %d", i, g.VertexType(v), want)
		}
	}
}

func TestMetaPathCorpusStartsAtHeads(t *testing.T) {
	g := bipartite()
	rng := rand.New(rand.NewSource(3))
	c := MetaPathCorpus(g, 1, 5, []graph.VertexType{1, 0}, rng)
	if len(c) != 3 {
		t.Fatalf("corpus = %d", len(c))
	}
	for _, w := range c {
		if g.VertexType(w[0]) != 1 {
			t.Fatal("walk must start at an item")
		}
	}
}

func TestPerTypeCorpora(t *testing.T) {
	s := graph.MustSchema([]string{"v"}, []string{"a", "b"})
	b := graph.NewBuilder(s, true)
	b.AddVertices(0, 3)
	b.AddEdge(0, 1, 0, 1)
	b.AddEdge(1, 2, 1, 1)
	g := b.Finalize()
	rng := rand.New(rand.NewSource(4))
	cs := PerTypeCorpora(g, 1, 3, rng)
	if len(cs) != 2 {
		t.Fatalf("corpora = %d", len(cs))
	}
	if len(cs[0]) != 1 || len(cs[1]) != 1 {
		t.Fatalf("sizes = %d, %d", len(cs[0]), len(cs[1]))
	}
	if cs[0][0][0] != 0 || cs[1][0][0] != 1 {
		t.Fatal("walks start at wrong vertices")
	}
}

func TestMergedCorpusUsesAllTypes(t *testing.T) {
	s := graph.MustSchema([]string{"v"}, []string{"a", "b"})
	b := graph.NewBuilder(s, true)
	b.AddVertices(0, 3)
	b.AddEdge(0, 1, 0, 1)
	b.AddEdge(0, 2, 1, 1)
	g := b.Finalize()
	rng := rand.New(rand.NewSource(5))
	saw := map[graph.ID]bool{}
	for i := 0; i < 50; i++ {
		for _, w := range MergedCorpus(g, 1, 2, rng) {
			if len(w) > 1 {
				saw[w[1]] = true
			}
		}
	}
	if !saw[1] || !saw[2] {
		t.Fatalf("merged walk ignored an edge type: %v", saw)
	}
}
