package algo

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/graph"
	"repro/internal/sampling"
	"repro/internal/tensor"
	"repro/internal/walk"
)

// Mixture GNN (Section 4.2) extends skip-gram to polysemous vertices: each
// node owns multiple sense embeddings and a known sense distribution P.
// The intractable polysemous likelihood (Equation 6) is replaced by a lower
// bound whose terms factor through single senses, so training reduces to
// SGNS with a sense sampled from P per update — "slightly modifying the
// sampling process in existing work such as DeepWalk".
type Mixture struct {
	Dim    int
	Senses int
	Walks  WalkConfig
	Epochs int
	NegK   int
	LR     float64
	Seed   int64

	sense *tensor.Matrix // (n*Senses) x Dim
	ctx   *tensor.Matrix // n x Dim
}

// NewMixture creates the model.
func NewMixture(dim, senses int) *Mixture {
	return &Mixture{Dim: dim, Senses: senses, Walks: DefaultWalkConfig(), Epochs: 2, NegK: 4, LR: 0.05, Seed: 1}
}

// Name implements Embedder.
func (m *Mixture) Name() string { return "MixtureGNN" }

// Fit implements Embedder.
func (m *Mixture) Fit(g *graph.Graph) error {
	rng := rand.New(rand.NewSource(m.Seed))
	n := g.NumVertices()
	m.sense = tensor.New(n*m.Senses, m.Dim)
	m.ctx = tensor.New(n, m.Dim)
	for i := range m.sense.Data {
		m.sense.Data[i] = (rng.Float64() - 0.5) / float64(m.Dim)
	}

	corpus := walk.MergedCorpus(g, m.Walks.WalksPerVertex, m.Walks.WalkLength, rng)
	counts := make([]float64, n)
	for _, w := range corpus {
		for _, v := range w {
			counts[v]++
		}
	}
	for i := range counts {
		if counts[i] > 0 {
			counts[i] = math.Pow(counts[i], sampling.NegativePower)
		}
	}
	table := sampling.NewAlias(counts)

	window := m.Walks.SG.Window
	if window == 0 {
		window = 4
	}
	for ep := 0; ep < m.Epochs; ep++ {
		for _, w := range corpus {
			for i, center := range w {
				lo, hi := i-window, i+window
				if lo < 0 {
					lo = 0
				}
				if hi >= len(w) {
					hi = len(w) - 1
				}
				for j := lo; j <= hi; j++ {
					if j == i {
						continue
					}
					// Sense responsibility: pick the sense that best
					// explains the context (hard-EM flavour of the lower
					// bound); ties broken by the P prior (uniform).
					s := m.bestSense(center, w[j], rng)
					m.sgnsUpdate(center, s, w[j], 1)
					for k := 0; k < m.NegK; k++ {
						neg := graph.ID(table.Draw(rng))
						if neg != w[j] {
							m.sgnsUpdate(center, s, neg, 0)
						}
					}
				}
			}
		}
	}
	return nil
}

func (m *Mixture) bestSense(v, ctx graph.ID, rng *rand.Rand) int {
	best, bestDot := 0, -1e18
	for s := 0; s < m.Senses; s++ {
		d := dotRows(m.sense.Row(int(v)*m.Senses+s), m.ctx.Row(int(ctx)))
		if d > bestDot {
			best, bestDot = s, d
		}
	}
	// Exploration mass from the prior keeps unused senses alive.
	if rng.Float64() < 0.1 {
		return rng.Intn(m.Senses)
	}
	return best
}

func (m *Mixture) sgnsUpdate(v graph.ID, s int, ctx graph.ID, label float64) {
	in := m.sense.Row(int(v)*m.Senses + s)
	out := m.ctx.Row(int(ctx))
	g := (label - sigmoidf(dotRows(in, out))) * m.LR
	for d := 0; d < m.Dim; d++ {
		ig := g * out[d]
		out[d] += g * in[d]
		in[d] += ig
	}
}

// Embedding implements Embedder: the concatenation of all sense embeddings.
func (m *Mixture) Embedding(v graph.ID, _ graph.EdgeType) []float64 {
	out := make([]float64, 0, m.Senses*m.Dim)
	for s := 0; s < m.Senses; s++ {
		out = append(out, m.sense.Row(int(v)*m.Senses+s)...)
	}
	return out
}

// ScoreMaxSense scores (u, item) by the best-matching sense — the
// multi-mode recommendation score.
func (m *Mixture) ScoreMaxSense(u, item graph.ID) float64 {
	best := -1e18
	for s := 0; s < m.Senses; s++ {
		d := dotRows(m.sense.Row(int(u)*m.Senses+s), m.ctx.Row(int(item)))
		if d > best {
			best = d
		}
	}
	return best
}

// ---------------------------------------------------------------------------
// Recommendation harness shared by Tables 9 and 12

// RecSplit is a leave-one-out recommendation split on one edge type: for
// each eligible user one interaction is held out.
type RecSplit struct {
	Train    *graph.Graph
	Users    []graph.ID
	Heldout  []graph.ID // aligned with Users
	Items    []graph.ID // all candidate items
	EdgeType graph.EdgeType
}

// SplitRec builds a leave-one-out split over type-et edges from users
// (vertex type 0) to items (vertex type 1).
func SplitRec(g *graph.Graph, et graph.EdgeType, rng *rand.Rand) *RecSplit {
	b := graph.NewBuilder(g.Schema(), g.Directed())
	for v := 0; v < g.NumVertices(); v++ {
		b.AddVertex(g.VertexType(graph.ID(v)), g.VertexAttr(graph.ID(v)))
	}
	sp := &RecSplit{EdgeType: et, Items: g.VerticesOfType(1)}
	held := make(map[graph.ID]graph.ID)
	for _, u := range g.VerticesOfType(0) {
		ns := g.OutNeighbors(u, et)
		if len(ns) >= 2 {
			held[u] = ns[rng.Intn(len(ns))]
			sp.Users = append(sp.Users, u)
			sp.Heldout = append(sp.Heldout, held[u])
		}
	}
	for t := 0; t < g.Schema().NumEdgeTypes(); t++ {
		g.EdgesOfType(graph.EdgeType(t), func(src, dst graph.ID, w float64) bool {
			if graph.EdgeType(t) == et {
				if h, ok := held[src]; ok && h == dst {
					return true // held out
				}
			}
			b.AddEdge(src, dst, graph.EdgeType(t), w)
			return true
		})
	}
	sp.Train = b.Finalize()
	return sp
}

// RankItems returns each user's candidate items sorted by score descending,
// excluding items the user already interacted with in training.
func (sp *RecSplit) RankItems(score func(u, item graph.ID) float64) [][]int {
	out := make([][]int, len(sp.Users))
	for ui, u := range sp.Users {
		seen := make(map[graph.ID]bool)
		for _, it := range sp.Train.OutNeighbors(u, sp.EdgeType) {
			seen[it] = true
		}
		type scored struct {
			item graph.ID
			s    float64
		}
		cands := make([]scored, 0, len(sp.Items))
		for _, it := range sp.Items {
			if seen[it] {
				continue
			}
			cands = append(cands, scored{it, score(u, it)})
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].s > cands[j].s })
		ranked := make([]int, len(cands))
		for i, c := range cands {
			ranked[i] = int(c.item)
		}
		out[ui] = ranked
	}
	return out
}

// Truth returns the held-out item indices aligned with Users.
func (sp *RecSplit) Truth() []int {
	out := make([]int, len(sp.Heldout))
	for i, h := range sp.Heldout {
		out[i] = int(h)
	}
	return out
}

func dotRows(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func sigmoidf(x float64) float64 {
	if x > 8 {
		return 1
	}
	if x < -8 {
		return 0
	}
	return 1 / (1 + math.Exp(-x))
}
