package algo

import (
	"math/rand"

	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/sampling"
	"repro/internal/tensor"
	"repro/internal/walk"
)

// GATNE (Section 4.2) — General Attributed Multiplex HeTerogeneous Network
// Embedding — is the flagship in-house model. The type-c embedding of
// vertex v is (Equation 3):
//
//	h_{v,c} = b_v + α_c·M_cᵀ·(U_v·a_c) + β_c·Dᵀ·x_v
//
// where b_v is the general (base) embedding, U_v stacks the meta-specific
// edge embeddings g_{v,t'} (one s-dimensional row per edge type), a_c are
// self-attention coefficients over those rows, M_c maps the attended edge
// embedding into the base space, and D projects the raw attributes x_v.
// Training follows Equation 4: per-type random walks with skip-gram over
// type-specific context tables, approximated by negative sampling.
type GATNE struct {
	Dim     int // d: base/output dimension
	EdgeDim int // s: meta-specific edge embedding dimension
	AttnDim int // da: attention hidden units
	AttrDim int
	Alpha   float64 // α_c (shared across types here)
	Beta    float64 // β_c
	Walks   WalkConfig
	Steps   int
	Batch   int
	NegK    int
	LR      float64
	Seed    int64

	numTypes int
	base     *nn.Param   // n x d
	edgeEmb  []*nn.Param // per type: n x s
	attnW1   []*nn.Param // per type: s x da
	attnW2   []*nn.Param // per type: da x 1
	mc       []*nn.Param // per type: s x d
	dproj    *nn.Param   // attrDim x d
	ctx      []*nn.Param // per type context tables: n x d

	g   *graph.Graph
	emb []*tensor.Matrix // materialized h_{v,c} per type
}

// NewGATNE creates the model with laptop-scale defaults.
func NewGATNE(dim int) *GATNE {
	return &GATNE{
		Dim: dim, EdgeDim: 8, AttnDim: 8, AttrDim: 16,
		Alpha: 1, Beta: 1,
		Walks: DefaultWalkConfig(),
		Steps: 200, Batch: 64, NegK: 4, LR: 0.02, Seed: 1,
	}
}

// Name implements Embedder.
func (m *GATNE) Name() string { return "GATNE" }

// Fit implements Embedder.
func (m *GATNE) Fit(g *graph.Graph) error {
	rng := rand.New(rand.NewSource(m.Seed))
	m.g = g
	n := g.NumVertices()
	m.numTypes = g.Schema().NumEdgeTypes()

	m.base = nn.NewParamGaussian("gatne.base", n, m.Dim, 0.1, rng)
	m.dproj = nn.NewParam("gatne.D", m.AttrDim, m.Dim, rng)
	m.edgeEmb = nil
	m.attnW1, m.attnW2, m.mc, m.ctx = nil, nil, nil, nil
	params := []*nn.Param{m.base, m.dproj}
	for c := 0; c < m.numTypes; c++ {
		ee := nn.NewParamGaussian("gatne.edge", n, m.EdgeDim, 0.1, rng)
		w1 := nn.NewParam("gatne.attnW1", m.EdgeDim, m.AttnDim, rng)
		w2 := nn.NewParam("gatne.attnW2", m.AttnDim, 1, rng)
		mc := nn.NewParam("gatne.Mc", m.EdgeDim, m.Dim, rng)
		cx := nn.NewParamGaussian("gatne.ctx", n, m.Dim, 0.1, rng)
		m.edgeEmb = append(m.edgeEmb, ee)
		m.attnW1 = append(m.attnW1, w1)
		m.attnW2 = append(m.attnW2, w2)
		m.mc = append(m.mc, mc)
		m.ctx = append(m.ctx, cx)
		params = append(params, ee, w1, w2, mc, cx)
	}

	// Per-type random walk corpora (Equation 4's random walk contexts).
	corpora := walk.PerTypeCorpora(g, m.Walks.WalksPerVertex, m.Walks.WalkLength, rng)
	type pair struct{ center, ctx graph.ID }
	pairsByType := make([][]pair, m.numTypes)
	for c := 0; c < m.numTypes; c++ {
		for _, w := range corpora[c] {
			for i := range w {
				lo, hi := i-2, i+2
				if lo < 0 {
					lo = 0
				}
				if hi >= len(w) {
					hi = len(w) - 1
				}
				for j := lo; j <= hi; j++ {
					if j != i {
						pairsByType[c] = append(pairsByType[c], pair{w[i], w[j]})
					}
				}
			}
		}
	}

	// Per-type negative samplers over in-degree.
	negs := make([]*sampling.Negative, m.numTypes)
	for c := 0; c < m.numTypes; c++ {
		if g.NumEdgesOfType(graph.EdgeType(c)) > 0 {
			negs[c] = sampling.NewNegative(g, graph.EdgeType(c), rng)
		}
	}

	opt := nn.NewAdam(m.LR)
	for step := 0; step < m.Steps; step++ {
		c := step % m.numTypes
		if len(pairsByType[c]) == 0 || negs[c] == nil {
			continue
		}
		centers := make([]graph.ID, m.Batch)
		ctxIdx := make([]int, m.Batch)
		for i := 0; i < m.Batch; i++ {
			p := pairsByType[c][rng.Intn(len(pairsByType[c]))]
			centers[i] = p.center
			ctxIdx[i] = int(p.ctx)
		}
		negIDs := negs[c].Sample(centers, m.NegK)

		t := nn.NewTape()
		h := m.typeEmbedding(t, centers, c)
		pos := t.RowDot(h, t.Gather(t.Use(m.ctx[c]), ctxIdx))
		rep := make([]int, len(negIDs))
		negIdx := make([]int, len(negIDs))
		for i, u := range negIDs {
			rep[i] = i / m.NegK
			negIdx[i] = int(u)
		}
		neg := t.RowDot(t.Gather(h, rep), t.Gather(t.Use(m.ctx[c]), negIdx))
		loss := t.NegSamplingLoss(pos, neg)
		t.Backward(loss)
		nn.ClipGrad(params, 5)
		opt.Step(params)
	}

	// Materialize h_{v,c} for every vertex and type.
	m.emb = make([]*tensor.Matrix, m.numTypes)
	for c := 0; c < m.numTypes; c++ {
		m.emb[c] = tensor.New(n, m.Dim)
		const chunk = 512
		for lo := 0; lo < n; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			vs := make([]graph.ID, hi-lo)
			for i := range vs {
				vs[i] = graph.ID(lo + i)
			}
			t := nn.NewTape()
			h := m.typeEmbedding(t, vs, c)
			for i := 0; i < h.Val.Rows; i++ {
				copy(m.emb[c].Row(lo+i), h.Val.Row(i))
			}
		}
	}
	return nil
}

// typeEmbedding assembles Equation 3 for a batch of vertices under type c.
func (m *GATNE) typeEmbedding(t *nn.Tape, vs []graph.ID, c int) *nn.Node {
	idx := toInts(vs)
	base := t.Gather(t.Use(m.base), idx)

	// Edge-embedding stack U_v: per vertex, numTypes rows of dim s. Batch
	// the attention by flattening: rows are grouped per vertex.
	flatRows := make([]*nn.Node, m.numTypes)
	for tt := 0; tt < m.numTypes; tt++ {
		flatRows[tt] = t.Gather(t.Use(m.edgeEmb[tt]), idx) // B x s each
	}
	// Attention scores per type: score_t = w2ᵀ tanh(U W1) computed per type
	// slab, then softmax across types per vertex.
	scores := make([]*nn.Node, m.numTypes)
	for tt := 0; tt < m.numTypes; tt++ {
		scores[tt] = t.MatMul(t.Tanh(t.MatMul(flatRows[tt], t.Use(m.attnW1[c]))), t.Use(m.attnW2[c])) // B x 1
	}
	att := t.Softmax(t.Concat(scores...)) // B x numTypes, rows sum to 1
	// Attended edge embedding: Σ_t att[:,t] * U_t  (B x s).
	var attended *nn.Node
	for tt := 0; tt < m.numTypes; tt++ {
		w := t.SliceCols(att, tt, tt+1) // B x 1
		// Broadcast multiply: expand w across s columns via MatMul with a
		// ones row is wasteful; use Mul with a gathered repeat instead.
		wRep := t.MatMul(w, t.Input(onesRow(m.EdgeDim)))
		term := t.Mul(wRep, flatRows[tt])
		if attended == nil {
			attended = term
		} else {
			attended = t.Add(attended, term)
		}
	}
	spec := t.MatMul(attended, t.Use(m.mc[c])) // B x d

	// Attribute projection Dᵀ x_v.
	attrs := tensor.New(len(vs), m.AttrDim)
	for i, v := range vs {
		av := m.g.VertexAttr(v)
		row := attrs.Row(i)
		for j := 0; j < len(av) && j < m.AttrDim; j++ {
			row[j] = av[j]
		}
	}
	attr := t.MatMul(t.Input(attrs), t.Use(m.dproj))

	return t.Add(base, t.Add(t.Scale(spec, m.Alpha), t.Scale(attr, m.Beta)))
}

func onesRow(n int) *tensor.Matrix {
	m := tensor.New(1, n)
	m.Fill(1)
	return m
}

// Embedding implements Embedder: the type-aware embedding h_{v,c}.
func (m *GATNE) Embedding(v graph.ID, et graph.EdgeType) []float64 {
	c := int(et)
	if c >= len(m.emb) {
		c = 0
	}
	return m.emb[c].Row(int(v))
}
