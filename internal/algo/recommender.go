package algo

import (
	"math/rand"

	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// This file implements the recommendation baselines of Table 9: a denoising
// autoencoder (DAE, Vincent et al.) and a β-VAE collaborative-filtering
// model (Liang et al.) over user interaction vectors.

// interactionMatrix builds the dense users x items binary matrix of type-et
// edges from the training graph; row index = position in users, column =
// position in items.
func interactionMatrix(g *graph.Graph, users, items []graph.ID, et graph.EdgeType) *tensor.Matrix {
	col := make(map[graph.ID]int, len(items))
	for j, it := range items {
		col[it] = j
	}
	m := tensor.New(len(users), len(items))
	for i, u := range users {
		for _, it := range g.OutNeighbors(u, et) {
			if j, ok := col[it]; ok {
				m.Set(i, j, 1)
			}
		}
	}
	return m
}

// DAE is the denoising-autoencoder recommender: interaction vectors are
// corrupted by dropout, reconstructed through a bottleneck, and items are
// ranked by reconstruction score.
type DAE struct {
	Hidden int
	Drop   float64
	Epochs int
	LR     float64
	Seed   int64

	users  map[graph.ID]int
	items  []graph.ID
	mlpIn  *nn.Dense
	mlpOut *nn.Dense
	inter  *tensor.Matrix
}

// NewDAE creates the baseline.
func NewDAE(hidden int) *DAE {
	return &DAE{Hidden: hidden, Drop: 0.3, Epochs: 60, LR: 0.01, Seed: 1}
}

// Name identifies the model.
func (d *DAE) Name() string { return "DAE" }

// FitRec trains on the recommendation split.
func (d *DAE) FitRec(sp *RecSplit) error {
	rng := rand.New(rand.NewSource(d.Seed))
	d.items = sp.Items
	d.users = make(map[graph.ID]int, len(sp.Users))
	for i, u := range sp.Users {
		d.users[u] = i
	}
	d.inter = interactionMatrix(sp.Train, sp.Users, sp.Items, sp.EdgeType)
	nItems := len(sp.Items)
	d.mlpIn = nn.NewDense("dae.enc", nItems, d.Hidden, nn.ActTanh, rng)
	d.mlpOut = nn.NewDense("dae.dec", d.Hidden, nItems, nil, rng)
	params := append(d.mlpIn.Params(), d.mlpOut.Params()...)
	opt := nn.NewAdam(d.LR)

	for ep := 0; ep < d.Epochs; ep++ {
		corrupted := d.inter.Clone()
		for i := range corrupted.Data {
			if corrupted.Data[i] > 0 && rng.Float64() < d.Drop {
				corrupted.Data[i] = 0
			}
		}
		t := nn.NewTape()
		z := d.mlpIn.Forward(t, t.Input(corrupted))
		recon := d.mlpOut.Forward(t, z)
		loss := t.BCEWithLogits(recon, d.inter)
		t.Backward(loss)
		opt.Step(params)
	}
	return nil
}

// ScoreRec ranks item it for user u by reconstruction logit.
func (d *DAE) ScoreRec(u, it graph.ID) float64 {
	ui, ok := d.users[u]
	if !ok {
		return 0
	}
	t := nn.NewTape()
	row := tensor.New(1, d.inter.Cols)
	copy(row.Row(0), d.inter.Row(ui))
	recon := d.mlpOut.Forward(t, d.mlpIn.Forward(t, t.Input(row)))
	for j, item := range d.items {
		if item == it {
			return recon.Val.At(0, j)
		}
	}
	return 0
}

// scoreAll returns all item logits for one user (used by the harness to
// avoid per-item forward passes).
func (d *DAE) scoreAll(u graph.ID) []float64 {
	ui, ok := d.users[u]
	if !ok {
		return make([]float64, d.inter.Cols)
	}
	t := nn.NewTape()
	row := tensor.New(1, d.inter.Cols)
	copy(row.Row(0), d.inter.Row(ui))
	recon := d.mlpOut.Forward(t, d.mlpIn.Forward(t, t.Input(row)))
	return recon.Val.Row(0)
}

// RankScorer returns an efficient score function over the split's items.
func (d *DAE) RankScorer() func(u, it graph.ID) float64 {
	cache := make(map[graph.ID][]float64)
	idx := make(map[graph.ID]int, len(d.items))
	for j, it := range d.items {
		idx[it] = j
	}
	return func(u, it graph.ID) float64 {
		s, ok := cache[u]
		if !ok {
			s = d.scoreAll(u)
			cache[u] = s
		}
		return s[idx[it]]
	}
}

// BetaVAE is the variational recommender: a Gaussian bottleneck with
// β-weighted KL regularization.
type BetaVAE struct {
	Hidden int
	Latent int
	Beta   float64
	Epochs int
	LR     float64
	Seed   int64

	users  map[graph.ID]int
	items  []graph.ID
	enc    *nn.Dense
	mu     *nn.Dense
	logvar *nn.Dense
	dec    *nn.MLP
	inter  *tensor.Matrix
}

// NewBetaVAE creates the baseline.
func NewBetaVAE(hidden, latent int, beta float64) *BetaVAE {
	return &BetaVAE{Hidden: hidden, Latent: latent, Beta: beta, Epochs: 60, LR: 0.01, Seed: 1}
}

// Name identifies the model.
func (v *BetaVAE) Name() string { return "beta-VAE" }

// FitRec trains on the recommendation split.
func (v *BetaVAE) FitRec(sp *RecSplit) error {
	rng := rand.New(rand.NewSource(v.Seed))
	v.items = sp.Items
	v.users = make(map[graph.ID]int, len(sp.Users))
	for i, u := range sp.Users {
		v.users[u] = i
	}
	v.inter = interactionMatrix(sp.Train, sp.Users, sp.Items, sp.EdgeType)
	nItems := len(sp.Items)
	v.enc = nn.NewDense("vae.enc", nItems, v.Hidden, nn.ActTanh, rng)
	v.mu = nn.NewDense("vae.mu", v.Hidden, v.Latent, nil, rng)
	v.logvar = nn.NewDense("vae.logvar", v.Hidden, v.Latent, nil, rng)
	v.dec = nn.NewMLP("vae.dec", []int{v.Latent, v.Hidden, nItems}, nn.ActTanh, rng)
	params := append(append(append(v.enc.Params(), v.mu.Params()...), v.logvar.Params()...), v.dec.Params()...)
	opt := nn.NewAdam(v.LR)

	for ep := 0; ep < v.Epochs; ep++ {
		t := nn.NewTape()
		h := v.enc.Forward(t, t.Input(v.inter))
		mu := v.mu.Forward(t, h)
		logvar := v.logvar.Forward(t, h)
		// Reparameterization: z = mu + exp(logvar/2) * eps.
		eps := tensor.New(mu.Val.Rows, mu.Val.Cols)
		eps.GaussianInit(rng, 1)
		z := t.Add(mu, t.Mul(t.Exp(t.Scale(logvar, 0.5)), t.Input(eps)))
		recon := v.dec.Forward(t, z)
		lossRecon := t.BCEWithLogits(recon, v.inter)
		// KL(N(mu, sigma) || N(0,1)) = -0.5 * mean(1 + logvar - mu² - e^logvar)
		one := tensor.New(mu.Val.Rows, mu.Val.Cols)
		one.Fill(1)
		kl := t.Scale(t.MeanAll(t.Sub(t.Add(t.Input(one), logvar), t.Add(t.Mul(mu, mu), t.Exp(logvar)))), -0.5)
		loss := t.AddScalars(lossRecon, t.Scale(kl, v.Beta))
		t.Backward(loss)
		nn.ClipGrad(params, 5)
		opt.Step(params)
	}
	return nil
}

func (v *BetaVAE) scoreAll(u graph.ID) []float64 {
	ui, ok := v.users[u]
	if !ok {
		return make([]float64, v.inter.Cols)
	}
	t := nn.NewTape()
	row := tensor.New(1, v.inter.Cols)
	copy(row.Row(0), v.inter.Row(ui))
	h := v.enc.Forward(t, t.Input(row))
	mu := v.mu.Forward(t, h) // use the posterior mean at inference
	recon := v.dec.Forward(t, mu)
	return recon.Val.Row(0)
}

// RankScorer returns an efficient score function over the split's items.
func (v *BetaVAE) RankScorer() func(u, it graph.ID) float64 {
	cache := make(map[graph.ID][]float64)
	idx := make(map[graph.ID]int, len(v.items))
	for j, it := range v.items {
		idx[it] = j
	}
	return func(u, it graph.ID) float64 {
		s, ok := cache[u]
		if !ok {
			s = v.scoreAll(u)
			cache[u] = s
		}
		return s[idx[it]]
	}
}
