package algo

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/graph"
	"repro/internal/skipgram"
)

// tinyMultiplex builds a small two-community multiplex graph: edge type 0
// follows the base communities, edge type 1 follows shifted communities.
func tinyMultiplex(n int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	s := graph.MustSchema([]string{"v"}, []string{"a", "b"})
	b := graph.NewBuilder(s, false)
	b.AddVertices(0, n)
	half := n / 2
	commOf := func(v int, shift int) int { return ((v + shift*half/2) / half) % 2 }
	for t := 0; t < 2; t++ {
		for v := 0; v < n; v++ {
			for e := 0; e < 3; e++ {
				// pick a partner in the same (type-shifted) community
				for tries := 0; tries < 10; tries++ {
					u := rng.Intn(n)
					if u != v && commOf(u, t) == commOf(v, t) {
						b.AddEdge(graph.ID(v), graph.ID(u), graph.EdgeType(t), 1)
						break
					}
				}
			}
		}
	}
	return b.Finalize()
}

func smallWalkCfg() WalkConfig {
	return WalkConfig{
		WalksPerVertex: 2, WalkLength: 6,
		SG:   skipgram.Config{Dim: 8, Window: 2, Negative: 2, Epochs: 1, LR: 0.05},
		Seed: 1,
	}
}

func TestClassicBaselines(t *testing.T) {
	g := tinyMultiplex(40, 1)
	models := []Embedder{
		NewDeepWalk(smallWalkCfg()),
		NewNode2Vec(smallWalkCfg(), 0.5, 2.0),
		NewLINE(smallWalkCfg()),
		NewMetapath2Vec(smallWalkCfg(), []graph.VertexType{0}),
	}
	for _, m := range models {
		if err := m.Fit(g); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		e := m.Embedding(0, 0)
		if len(e) == 0 {
			t.Fatalf("%s: empty embedding", m.Name())
		}
		// Per-type concatenation for homogeneous baselines on a 2-type graph.
		switch m.Name() {
		case "DeepWalk", "Node2Vec", "LINE":
			if len(e) != 16 {
				t.Fatalf("%s: dim %d want 16 (2 types x 8)", m.Name(), len(e))
			}
		}
	}
}

func TestPMNEVariants(t *testing.T) {
	g := tinyMultiplex(30, 2)
	for _, v := range []PMNEVariant{PMNEn, PMNEr, PMNEc} {
		m := NewPMNE(smallWalkCfg(), v)
		if err := m.Fit(g); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		e := m.Embedding(3, 0)
		want := 8
		if v == PMNEr {
			want = 16
		}
		if len(e) != want {
			t.Fatalf("%s: dim %d want %d", m.Name(), len(e), want)
		}
	}
	if NewPMNE(smallWalkCfg(), PMNEn).Name() != "PMNE-n" {
		t.Fatal("name")
	}
}

func TestMVEWeightsNormalized(t *testing.T) {
	g := tinyMultiplex(30, 3)
	m := NewMVE(smallWalkCfg())
	if err := m.Fit(g); err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, w := range m.weights {
		if w < 0 {
			t.Fatalf("negative view weight %f", w)
		}
		sum += w
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("weights sum = %f", sum)
	}
	if len(m.Embedding(0, 0)) != 8 {
		t.Fatal("MVE embedding dim")
	}
}

func TestMNETypeAware(t *testing.T) {
	g := tinyMultiplex(30, 4)
	m := NewMNE(smallWalkCfg(), 4)
	if err := m.Fit(g); err != nil {
		t.Fatal(err)
	}
	e0 := m.Embedding(5, 0)
	e1 := m.Embedding(5, 1)
	if len(e0) != 12 { // 8 common + 4 specific
		t.Fatalf("dim = %d", len(e0))
	}
	same := true
	for i := range e0 {
		if e0[i] != e1[i] {
			same = false
		}
	}
	if same {
		t.Fatal("MNE embeddings must differ across edge types")
	}
	// Common part shared.
	for i := 0; i < 8; i++ {
		if e0[i] != e1[i] {
			t.Fatal("common part must be shared")
		}
	}
}

func TestANRL(t *testing.T) {
	g := dataset.Taobao(dataset.TaobaoSmallConfig(0.02))
	m := NewANRL(8)
	m.Steps = 30
	if err := m.Fit(g); err != nil {
		t.Fatal(err)
	}
	if len(m.Embedding(0, 0)) != 8 {
		t.Fatal("ANRL dim")
	}
}

func quickGNNConfig() GNNConfig {
	return GNNConfig{Dim: 8, HopNums: []int{3, 2}, Batch: 16, NegK: 2, Steps: 25, LR: 0.05, Seed: 1}
}

func TestGNNModels(t *testing.T) {
	g := tinyMultiplex(40, 5)
	models := []Embedder{
		NewGraphSAGE(quickGNNConfig(), SAGEMean),
		NewGraphSAGE(quickGNNConfig(), SAGEPool),
		NewGCN(quickGNNConfig()),
		NewFastGCN(quickGNNConfig()),
	}
	for _, m := range models {
		if err := m.Fit(g); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if len(m.Embedding(1, 0)) != 8 {
			t.Fatalf("%s: wrong dim", m.Name())
		}
	}
}

func TestGraphSAGELearnsStructure(t *testing.T) {
	g := tinyMultiplex(60, 6)
	cfg := quickGNNConfig()
	cfg.Steps = 80
	m := NewGraphSAGE(cfg, SAGEMean)
	rng := rand.New(rand.NewSource(7))
	sp := dataset.SplitLinks(g, 0, 0.2, rng)
	metrics, err := EvalLinkPrediction(m, sp.Train, 0, sp.TestPos, sp.TestNeg)
	if err != nil {
		t.Fatal(err)
	}
	if metrics.ROCAUC < 0.6 {
		t.Fatalf("GraphSAGE AUC = %f, want > 0.6", metrics.ROCAUC)
	}
}

func TestHEPAndAHEP(t *testing.T) {
	g := dataset.Taobao(dataset.TaobaoSmallConfig(0.02))
	hep := NewHEP(8)
	hep.Steps = 20
	if err := hep.Fit(g); err != nil {
		t.Fatal(err)
	}
	ahep := NewAHEP(8, 3)
	ahep.Steps = 20
	if err := ahep.Fit(g); err != nil {
		t.Fatal(err)
	}
	if hep.Name() != "HEP" || ahep.Name() != "AHEP" {
		t.Fatal("names")
	}
	if ahep.NeighborsVisited >= hep.NeighborsVisited {
		t.Fatalf("AHEP visited %d neighbors, HEP %d — sampling should reduce work",
			ahep.NeighborsVisited, hep.NeighborsVisited)
	}
	if len(hep.Embedding(0, 0)) != 8 {
		t.Fatal("HEP dim")
	}
}

func TestGATNE(t *testing.T) {
	g := tinyMultiplex(40, 8)
	m := NewGATNE(8)
	m.Steps = 30
	m.Walks = smallWalkCfg()
	if err := m.Fit(g); err != nil {
		t.Fatal(err)
	}
	e0 := m.Embedding(3, 0)
	e1 := m.Embedding(3, 1)
	if len(e0) != 8 || len(e1) != 8 {
		t.Fatal("GATNE dims")
	}
	diff := 0.0
	for i := range e0 {
		d := e0[i] - e1[i]
		diff += d * d
	}
	if diff == 0 {
		t.Fatal("GATNE type embeddings must differ")
	}
}

func TestMixtureAndRecSplit(t *testing.T) {
	g := dataset.Taobao(dataset.TaobaoSmallConfig(0.02))
	rng := rand.New(rand.NewSource(9))
	sp := SplitRec(g, 3, rng) // "buy"
	if len(sp.Users) == 0 {
		t.Fatal("no eligible users")
	}
	// Held-out edges absent from train.
	for i, u := range sp.Users[:min(10, len(sp.Users))] {
		if sp.Train.HasEdge(u, sp.Heldout[i], 3) {
			t.Fatal("held-out interaction still in train graph")
		}
	}

	m := NewMixture(8, 2)
	m.Epochs = 1
	if err := m.Fit(sp.Train); err != nil {
		t.Fatal(err)
	}
	if len(m.Embedding(0, 0)) != 16 {
		t.Fatal("mixture concat dim")
	}
	ranked := sp.RankItems(m.ScoreMaxSense)
	hr := eval.HitRate(ranked, sp.Truth(), 50)
	if hr < 0 || hr > 1 {
		t.Fatalf("hr = %f", hr)
	}
}

func TestDAEAndVAE(t *testing.T) {
	g := dataset.Taobao(dataset.TaobaoSmallConfig(0.02))
	rng := rand.New(rand.NewSource(10))
	sp := SplitRec(g, 0, rng)

	d := NewDAE(16)
	d.Epochs = 15
	if err := d.FitRec(sp); err != nil {
		t.Fatal(err)
	}
	rankedD := sp.RankItems(d.RankScorer())
	hrD := eval.HitRate(rankedD, sp.Truth(), 20)

	v := NewBetaVAE(16, 8, 0.5)
	v.Epochs = 15
	if err := v.FitRec(sp); err != nil {
		t.Fatal(err)
	}
	rankedV := sp.RankItems(v.RankScorer())
	hrV := eval.HitRate(rankedV, sp.Truth(), 20)

	if hrD < 0 || hrD > 1 || hrV < 0 || hrV > 1 {
		t.Fatalf("hr out of range: %f %f", hrD, hrV)
	}
	// A trained DAE should beat random ranking: with ~80 items, random
	// HR@20 ≈ 0.25; allow slack but require signal.
	if hrD == 0 && hrV == 0 {
		t.Fatal("both recommenders scored zero hits")
	}
}

func TestHierarchical(t *testing.T) {
	g := tinyMultiplex(40, 11)
	m := NewHierarchical(8, 4)
	m.Steps = 30
	if err := m.Fit(g); err != nil {
		t.Fatal(err)
	}
	if len(m.Embedding(0, 0)) != 8 {
		t.Fatal("hierarchical dim")
	}
}

func TestDynamicModels(t *testing.T) {
	cfg := dataset.DynamicDefaultConfig()
	cfg.Vertices = 150
	cfg.T = 4
	cfg.BurstAt = []int{4}
	s := dataset.Dynamic(cfg)

	for _, m := range []DynamicModel{NewEvolving(8), NewTNE(8), NewStaticSAGE(8)} {
		micro, macro, err := MultiClassLinkEval(m, s, 1)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if micro < 0 || micro > 1 || macro < 0 || macro > 1 {
			t.Fatalf("%s: f1 out of range %f %f", m.Name(), micro, macro)
		}
	}
}

func TestBayesian(t *testing.T) {
	g := dataset.Taobao(dataset.TaobaoSmallConfig(0.02))
	base := NewGraphSAGE(quickGNNConfig(), SAGEMean)
	base.Cfg.EdgeType = 3 // buy
	base.Cfg.Steps = 20
	b := NewBayesian(base, 4, 8) // type 4 = item-item "similar"
	b.Steps = 20
	if err := b.Fit(g); err != nil {
		t.Fatal(err)
	}
	u := g.VerticesOfType(0)[0]
	it := g.VerticesOfType(1)[0]
	s := b.ScoreRec(u, it)
	if s != s { // NaN guard
		t.Fatal("NaN score")
	}
}

func TestScoreHelper(t *testing.T) {
	g := tinyMultiplex(20, 12)
	m := NewDeepWalk(smallWalkCfg())
	if err := m.Fit(g); err != nil {
		t.Fatal(err)
	}
	s := Score(m, 0, 1, 0)
	if s != eval.Dot(m.Embedding(0, 0), m.Embedding(1, 0)) {
		t.Fatal("Score must be the embedding dot product")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestASGCN(t *testing.T) {
	g := dataset.Taobao(dataset.TaobaoSmallConfig(0.02))
	cfg := quickGNNConfig()
	cfg.UseAttrs = true
	m := NewASGCN(cfg)
	if err := m.Fit(g); err != nil {
		t.Fatal(err)
	}
	if m.Name() != "AS-GCN" {
		t.Fatal("name")
	}
	if len(m.Embedding(0, 0)) != cfg.Dim {
		t.Fatal("AS-GCN dim")
	}
}

func TestBayesianRecScorer(t *testing.T) {
	g := dataset.Taobao(dataset.TaobaoSmallConfig(0.02))
	base := NewGraphSAGE(quickGNNConfig(), SAGEMean)
	base.Cfg.EdgeType = 0
	b := NewBayesian(base, 4, 8)
	b.Steps = 15
	if err := b.Fit(g); err != nil {
		t.Fatal(err)
	}
	score := b.RecScorer(g)
	u := g.VerticesOfType(0)[0]
	i1 := g.VerticesOfType(1)[0]
	i2 := g.VerticesOfType(1)[1]
	s1, s2 := score(u, i1), score(u, i2)
	if s1 != s1 || s2 != s2 {
		t.Fatal("NaN scores")
	}
	// Profile must be non-zero for users with interactions.
	p := b.Profile(g, u)
	nonzero := false
	for _, x := range p {
		if x != 0 {
			nonzero = true
		}
	}
	if g.OutDegree(u, 0) > 0 && !nonzero {
		t.Fatal("empty profile for active user")
	}
}
