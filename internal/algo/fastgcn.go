package algo

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sampling"
)

// newLayerwiseTrainer builds a LinkTrainer whose SAMPLE strategy is
// FastGCN's layer-wise importance sampling: each hop draws one shared pool
// of vertices with probability proportional to squared degree, and every
// vertex of the previous layer fills its aligned slots from the members of
// the pool it is actually connected to (falling back to itself when none
// are, keeping layers aligned).
func newLayerwiseTrainer(g *graph.Graph, enc *core.Encoder, cfg GNNConfig, rng *rand.Rand) *core.LinkTrainer {
	tcfg := core.TrainerConfig{EdgeType: cfg.EdgeType, HopNums: cfg.HopNums, Batch: cfg.Batch, NegK: cfg.NegK, LR: cfg.LR}
	tr := core.NewLinkTrainer(g, enc, tcfg, rng)

	// q(v) ∝ deg(v)²: the FastGCN proposal distribution.
	weights := make([]float64, g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		d := float64(g.OutDegree(graph.ID(v), cfg.EdgeType) + g.InDegree(graph.ID(v), cfg.EdgeType))
		weights[v] = d * d
	}
	pool := sampling.NewAlias(weights)

	tr.ContextFn = func(vs []graph.ID) (*sampling.Context, error) {
		ctx := &sampling.Context{HopNums: cfg.HopNums, Layers: make([][]graph.ID, len(cfg.HopNums)+1)}
		ctx.Layers[0] = vs
		cur := vs
		for h, width := range cfg.HopNums {
			// Layer-wise shared pool for this hop.
			poolSize := width * 4
			layerPool := make([]graph.ID, poolSize)
			inPool := make(map[graph.ID]bool, poolSize)
			for i := range layerPool {
				layerPool[i] = graph.ID(pool.Draw(rng))
				inPool[layerPool[i]] = true
			}
			next := make([]graph.ID, 0, len(cur)*width)
			for _, v := range cur {
				// Neighbors of v that landed in the pool.
				var cands []graph.ID
				for _, u := range g.OutNeighbors(v, cfg.EdgeType) {
					if inPool[u] {
						cands = append(cands, u)
					}
				}
				for i := 0; i < width; i++ {
					switch {
					case len(cands) > 0:
						next = append(next, cands[rng.Intn(len(cands))])
					default:
						next = append(next, v) // aligned padding
					}
				}
			}
			ctx.Layers[h+1] = next
			cur = next
		}
		return ctx, nil
	}
	return tr
}
