package algo

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/operator"
	"repro/internal/tensor"
)

// This file implements the GNN baselines of category C4 by instantiating
// the Algorithm 1 framework with different SAMPLE / AGGREGATE / COMBINE
// strategies, exactly as Section 4.1 prescribes ("in other GNN methods such
// as GCN, FastGCN and AS-GCN, we can replace different strategies on
// SAMPLING, AGGREGATE and COMBINE").

// SAGEAggregator selects the GraphSAGE aggregator flavour.
type SAGEAggregator int

// GraphSAGE aggregator flavours.
const (
	SAGEMean SAGEAggregator = iota
	SAGEPool
	SAGELSTM
)

// GNNConfig bundles the shared GNN hyper-parameters.
type GNNConfig struct {
	Dim      int
	HopNums  []int
	Batch    int
	NegK     int
	Steps    int
	LR       float64
	EdgeType graph.EdgeType
	Seed     int64
	// UseAttrs feeds vertex attributes alongside the learnable table
	// (inductive+transductive mix); without attributes the model is purely
	// transductive.
	UseAttrs bool
	AttrDim  int
}

// DefaultGNNConfig returns laptop-scale defaults.
func DefaultGNNConfig() GNNConfig {
	return GNNConfig{Dim: 32, HopNums: []int{4, 3}, Batch: 64, NegK: 4, Steps: 150, LR: 0.02, Seed: 1}
}

// GraphSAGE is the inductive GNN of Hamilton et al., built directly on the
// platform: node-wise NEIGHBORHOOD sampling, mean/pool/LSTM AGGREGATE and
// concat COMBINE, with the Section 3.4 materialization enabled.
type GraphSAGE struct {
	Cfg GNNConfig
	Agg SAGEAggregator

	emb *tensor.Matrix
}

// NewGraphSAGE creates a GraphSAGE model.
func NewGraphSAGE(cfg GNNConfig, agg SAGEAggregator) *GraphSAGE {
	return &GraphSAGE{Cfg: cfg, Agg: agg}
}

// Name implements Embedder.
func (s *GraphSAGE) Name() string { return "GraphSAGE" }

// Fit implements Embedder.
func (s *GraphSAGE) Fit(g *graph.Graph) error {
	rng := rand.New(rand.NewSource(s.Cfg.Seed))
	enc := buildEncoder(g, s.Cfg, func(name string, in, out int) operator.Aggregator {
		switch s.Agg {
		case SAGEPool:
			return operator.NewMaxPoolAggregator(name, in, out, rng)
		case SAGELSTM:
			return operator.NewLSTMAggregator(name, in, out, rng)
		default:
			return operator.NewMeanAggregator(name, in, out, rng)
		}
	}, rng)
	return fitEncoder(g, enc, s.Cfg, rng, &s.emb)
}

// Embedding implements Embedder.
func (s *GraphSAGE) Embedding(v graph.ID, _ graph.EdgeType) []float64 { return s.emb.Row(int(v)) }

// GCN approximates Kipf & Welling's graph convolution in the sampled
// framework: wide weighted NEIGHBORHOOD sampling, sum AGGREGATE (the
// unnormalized convolution) and sum COMBINE (self-loop added to the
// aggregate), per the framework-instantiation argument of Section 4.1.
type GCN struct {
	Cfg GNNConfig
	emb *tensor.Matrix
}

// NewGCN creates a GCN model.
func NewGCN(cfg GNNConfig) *GCN { return &GCN{Cfg: cfg} }

// Name implements Embedder.
func (m *GCN) Name() string { return "GCN" }

// Fit implements Embedder.
func (m *GCN) Fit(g *graph.Graph) error {
	rng := rand.New(rand.NewSource(m.Cfg.Seed))
	cfg := m.Cfg
	// GCN convolves over the full neighborhood; emulate with wider sampling.
	widened := make([]int, len(cfg.HopNums))
	for i, h := range cfg.HopNums {
		widened[i] = h * 2
	}
	cfg.HopNums = widened
	enc := &core.Encoder{Features: features(g, cfg, rng), Materialize: true, Normalize: true}
	in := enc.Features.Dim()
	for range cfg.HopNums {
		enc.Agg = append(enc.Agg, operator.NewMeanAggregator("gcn.agg", in, cfg.Dim, rng))
		enc.Comb = append(enc.Comb, operator.NewSumCombinerProj("gcn.comb", in, cfg.Dim, rng))
		in = cfg.Dim
	}
	return fitEncoder(g, enc, cfg, rng, &m.emb)
}

// Embedding implements Embedder.
func (m *GCN) Embedding(v graph.ID, _ graph.EdgeType) []float64 { return m.emb.Row(int(v)) }

// FastGCN replaces node-wise sampling with layer-wise importance sampling:
// a fixed budget of vertices is drawn per layer proportional to squared
// degree (the q(v) ∝ ||A(:,v)||² proposal of Chen et al.), shared by the
// whole mini-batch. In this framework that is a SAMPLE-strategy swap: the
// NEIGHBORHOOD layers are filled from the importance sample.
type FastGCN struct {
	Cfg GNNConfig
	emb *tensor.Matrix
}

// NewFastGCN creates a FastGCN model.
func NewFastGCN(cfg GNNConfig) *FastGCN { return &FastGCN{Cfg: cfg} }

// Name implements Embedder.
func (m *FastGCN) Name() string { return "FastGCN" }

// Fit implements Embedder.
func (m *FastGCN) Fit(g *graph.Graph) error {
	rng := rand.New(rand.NewSource(m.Cfg.Seed))
	enc := buildEncoder(g, m.Cfg, func(name string, in, out int) operator.Aggregator {
		return operator.NewMeanAggregator(name, in, out, rng)
	}, rng)
	tr := newLayerwiseTrainer(g, enc, m.Cfg, rng)
	for i := 0; i < m.Cfg.Steps; i++ {
		if _, err := tr.StepNext(); err != nil {
			return err
		}
	}
	emb, err := tr.EmbedAll()
	if err != nil {
		return err
	}
	m.emb = emb
	return nil
}

// Embedding implements Embedder.
func (m *FastGCN) Embedding(v graph.ID, _ graph.EdgeType) []float64 { return m.emb.Row(int(v)) }

// ---------------------------------------------------------------------------
// Shared construction helpers

func features(g *graph.Graph, cfg GNNConfig, rng *rand.Rand) core.FeatureSource {
	table := core.NewTableFeatures("emb", g.NumVertices(), cfg.Dim, rng)
	if !cfg.UseAttrs {
		return table
	}
	ad := cfg.AttrDim
	if ad == 0 {
		ad = 16
	}
	return &core.ConcatFeatures{Srcs: []core.FeatureSource{core.NewAttrFeatures(g, ad), table}}
}

func buildEncoder(g *graph.Graph, cfg GNNConfig, mkAgg func(name string, in, out int) operator.Aggregator, rng *rand.Rand) *core.Encoder {
	enc := &core.Encoder{Features: features(g, cfg, rng), Materialize: true, Normalize: true}
	in := enc.Features.Dim()
	for k := range cfg.HopNums {
		agg := mkAgg("agg", in, cfg.Dim)
		enc.Agg = append(enc.Agg, agg)
		act := nn.ActReLU
		if k == len(cfg.HopNums)-1 {
			act = nil // linear output layer
		}
		enc.Comb = append(enc.Comb, operator.NewConcatCombinerAct("comb", in, agg.OutDim(), cfg.Dim, act, rng))
		in = cfg.Dim
	}
	return enc
}

func fitEncoder(g *graph.Graph, enc *core.Encoder, cfg GNNConfig, rng *rand.Rand, out **tensor.Matrix) error {
	tcfg := core.TrainerConfig{EdgeType: cfg.EdgeType, HopNums: cfg.HopNums, Batch: cfg.Batch, NegK: cfg.NegK, LR: cfg.LR}
	tr := core.NewLinkTrainer(g, enc, tcfg, rng)
	if _, err := tr.Train(cfg.Steps); err != nil {
		return err
	}
	emb, err := tr.EmbedAll()
	if err != nil {
		return err
	}
	*out = emb
	return nil
}
