package algo

import (
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/operator"
	"repro/internal/sampling"
	"repro/internal/tensor"
)

// ASGCN approximates adaptive-sampling GCN (Huang et al.): like FastGCN it
// samples per layer rather than per node, but the proposal adapts to the
// current batch — candidate vertices are scored by connectivity to the
// previous layer *and* by their feature magnitude, the self-dependent
// component of AS-GCN's learned sampler. In the Algorithm 1 framework this
// is, once more, purely a SAMPLE-strategy swap (Section 4.1).
type ASGCN struct {
	Cfg GNNConfig
	emb *tensor.Matrix
}

// NewASGCN creates the model.
func NewASGCN(cfg GNNConfig) *ASGCN { return &ASGCN{Cfg: cfg} }

// Name implements Embedder.
func (m *ASGCN) Name() string { return "AS-GCN" }

// Fit implements Embedder.
func (m *ASGCN) Fit(g *graph.Graph) error {
	rng := rand.New(rand.NewSource(m.Cfg.Seed))
	enc := buildEncoder(g, m.Cfg, func(name string, in, out int) operator.Aggregator {
		return operator.NewMeanAggregator(name, in, out, rng)
	}, rng)
	tcfg := core.TrainerConfig{
		EdgeType: m.Cfg.EdgeType, HopNums: m.Cfg.HopNums,
		Batch: m.Cfg.Batch, NegK: m.Cfg.NegK, LR: m.Cfg.LR,
	}
	tr := core.NewLinkTrainer(g, enc, tcfg, rng)
	tr.ContextFn = adaptiveContext(g, m.Cfg.EdgeType, m.Cfg.HopNums, featureNorms(g), rng)
	for i := 0; i < m.Cfg.Steps; i++ {
		if _, err := tr.StepNext(); err != nil {
			return err
		}
	}
	emb, err := tr.EmbedAll()
	if err != nil {
		return err
	}
	m.emb = emb
	return nil
}

// Embedding implements Embedder.
func (m *ASGCN) Embedding(v graph.ID, _ graph.EdgeType) []float64 { return m.emb.Row(int(v)) }

// featureNorms precomputes per-vertex attribute norms, the self-dependent
// term of the adaptive proposal. Attribute-less vertices get a small
// constant so they remain sampleable.
func featureNorms(g *graph.Graph) []float64 {
	out := make([]float64, g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		s := 0.0
		for _, x := range g.VertexAttr(graph.ID(v)) {
			s += x * x
		}
		out[v] = math.Sqrt(s) + 1e-3
	}
	return out
}

// adaptiveContext builds the AS-GCN layer-wise context: the candidate pool
// of each hop is drawn from the previous layer's united neighborhood with
// probability proportional to (links from the previous layer) x
// (feature norm); each vertex then fills its aligned slots from the pool
// members it is actually connected to, padding with itself when none are.
func adaptiveContext(g *graph.Graph, et graph.EdgeType, hopNums []int, norms []float64, rng *rand.Rand) func(vs []graph.ID) (*sampling.Context, error) {
	return func(vs []graph.ID) (*sampling.Context, error) {
		ctx := &sampling.Context{HopNums: hopNums, Layers: make([][]graph.ID, len(hopNums)+1)}
		ctx.Layers[0] = vs
		cur := vs
		for h, width := range hopNums {
			score := make(map[graph.ID]float64)
			for _, v := range cur {
				for _, u := range g.OutNeighbors(v, et) {
					score[u] += norms[u]
				}
			}
			inPool := make(map[graph.ID]bool)
			if len(score) > 0 {
				cands := make([]graph.ID, 0, len(score))
				weights := make([]float64, 0, len(score))
				for u, s := range score {
					cands = append(cands, u)
					weights = append(weights, s)
				}
				al := sampling.NewAlias(weights)
				for i := 0; i < width*4; i++ {
					inPool[cands[al.Draw(rng)]] = true
				}
			}
			next := make([]graph.ID, 0, len(cur)*width)
			for _, v := range cur {
				var hits []graph.ID
				for _, u := range g.OutNeighbors(v, et) {
					if inPool[u] {
						hits = append(hits, u)
					}
				}
				for i := 0; i < width; i++ {
					if len(hits) > 0 {
						next = append(next, hits[rng.Intn(len(hits))])
					} else {
						next = append(next, v)
					}
				}
			}
			ctx.Layers[h+1] = next
			cur = next
		}
		return ctx, nil
	}
}
