// Package algo is the algorithm layer of the AliGraph platform (Section 4):
// the six in-house models — AHEP, GATNE, Mixture GNN, Hierarchical GNN,
// Evolving GNN and Bayesian GNN — together with the published baselines they
// are compared against in Tables 7-12 (DeepWalk, Node2Vec, LINE, ANRL,
// Metapath2Vec, PMNE, MVE, MNE, GCN, FastGCN, GraphSAGE, HEP, TNE, DAE and
// a β-VAE recommender). Every model is a plugin over the system layers:
// TRAVERSE/NEIGHBORHOOD/NEGATIVE samplers, AGGREGATE/COMBINE operators and
// the storage layer.
package algo

import (
	"fmt"

	"repro/internal/eval"
	"repro/internal/graph"
)

// Embedder is a model that produces one embedding per vertex, possibly
// specialized per edge type (heterogeneous models return type-aware
// embeddings; homogeneous ones ignore the type).
type Embedder interface {
	Name() string
	// Fit trains the model on g.
	Fit(g *graph.Graph) error
	// Embedding returns the type-aware embedding of v. Models without
	// type-specific embeddings return the same vector for every type.
	Embedding(v graph.ID, et graph.EdgeType) []float64
}

// Score computes the link score of (u, v) under edge type et as the dot
// product of type-aware embeddings, the convention used across the paper's
// link-prediction tables.
func Score(m Embedder, u, v graph.ID, et graph.EdgeType) float64 {
	return eval.Dot(m.Embedding(u, et), m.Embedding(v, et))
}

// EvalLinkPrediction trains m on the split's train graph and evaluates
// ROC-AUC / PR-AUC / F1 on the held-out edges.
func EvalLinkPrediction(m Embedder, train *graph.Graph, et graph.EdgeType, pos, neg [][2]graph.ID) (eval.LinkMetrics, error) {
	if err := m.Fit(train); err != nil {
		return eval.LinkMetrics{}, fmt.Errorf("algo: fit %s: %w", m.Name(), err)
	}
	score := func(u, v int64) float64 { return Score(m, u, v, et) }
	p := make([][2]int64, len(pos))
	for i, e := range pos {
		p[i] = [2]int64{e[0], e[1]}
	}
	n := make([][2]int64, len(neg))
	for i, e := range neg {
		n[i] = [2]int64{e[0], e[1]}
	}
	return eval.EvalLinks(score, p, n), nil
}

// concat joins per-type embeddings into one vector (the paper's protocol
// for homogeneous methods on heterogeneous graphs: "generate the embedding
// for each subgraph with the same type of edges and concatenate").
func concat(vecs ...[]float64) []float64 {
	n := 0
	for _, v := range vecs {
		n += len(v)
	}
	out := make([]float64, 0, n)
	for _, v := range vecs {
		out = append(out, v...)
	}
	return out
}
