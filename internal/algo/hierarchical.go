package algo

import (
	"math/rand"

	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/sampling"
	"repro/internal/tensor"
)

// Hierarchical GNN (Section 4.2) learns layered representations DiffPool-
// style: a single-layer GNN produces embeddings Z^(l) on adjacency A^(l);
// a pooling GNN plus softmax yields the assignment matrix S^(l); the graph
// is coarsened as A^(l+1) = S^(l)ᵀ A^(l) S^(l), X^(l+1) = S^(l)ᵀ Z^(l); and
// the next layer runs on the coarsened graph. A vertex's final embedding
// combines its own Z with the embedding of its cluster, giving the model
// the hierarchical expressive power flat GNNs lack.
type Hierarchical struct {
	Dim      int
	Clusters int
	Steps    int
	NegK     int
	LR       float64
	EdgeType graph.EdgeType
	Seed     int64

	emb *tensor.Matrix
}

// NewHierarchical creates the model.
func NewHierarchical(dim, clusters int) *Hierarchical {
	return &Hierarchical{Dim: dim, Clusters: clusters, Steps: 120, NegK: 4, LR: 0.02, Seed: 1}
}

// Name implements Embedder.
func (h *Hierarchical) Name() string { return "HierarchicalGNN" }

// Fit implements Embedder. The model is transductive and dense (the
// coarsening algebra is matrix-valued), so it targets graphs of up to a few
// thousand vertices — the scale of its Table 10 comparison.
func (h *Hierarchical) Fit(g *graph.Graph) error {
	rng := rand.New(rand.NewSource(h.Seed))
	n := g.NumVertices()

	// Row-normalized adjacency with self loops over the target edge type
	// (merged with all types so the hierarchy sees the full structure).
	adj := tensor.New(n, n)
	for t := 0; t < g.Schema().NumEdgeTypes(); t++ {
		g.EdgesOfType(graph.EdgeType(t), func(src, dst graph.ID, w float64) bool {
			adj.Set(int(src), int(dst), adj.At(int(src), int(dst))+w)
			adj.Set(int(dst), int(src), adj.At(int(dst), int(src))+w)
			return true
		})
	}
	for i := 0; i < n; i++ {
		adj.Set(i, i, adj.At(i, i)+1)
	}
	for i := 0; i < n; i++ {
		row := adj.Row(i)
		s := 0.0
		for _, v := range row {
			s += v
		}
		for j := range row {
			row[j] /= s
		}
	}

	x := nn.NewParamGaussian("hier.x", n, h.Dim, 0.1, rng)
	gnn1 := nn.NewDense("hier.gnn1", h.Dim, h.Dim, nn.ActReLU, rng)
	pool := nn.NewDense("hier.pool", h.Dim, h.Clusters, nil, rng)
	gnn2 := nn.NewDense("hier.gnn2", h.Dim, h.Dim, nn.ActReLU, rng)
	out := nn.NewDense("hier.out", 2*h.Dim, h.Dim, nil, rng)
	params := []*nn.Param{x}
	for _, l := range []*nn.Dense{gnn1, pool, gnn2, out} {
		params = append(params, l.Params()...)
	}
	opt := nn.NewAdam(h.LR)

	trav := sampling.NewTraverse(g, rng)
	neg := sampling.NewNegative(g, h.EdgeType, rng)

	forward := func(t *nn.Tape) *nn.Node {
		a := t.Input(adj)
		// Layer 1: Z = GNN1(A, X), S = softmax(Pool(A, X)).
		ax := t.MatMul(a, t.Use(x))
		z := gnn1.Forward(t, ax)
		s := t.Softmax(pool.Forward(t, ax)) // n x K
		// Coarsen: A2 = Sᵀ A S, X2 = Sᵀ Z.
		st := t.TransposeNode(s)
		a2 := t.MatMul(t.MatMul(st, a), s)
		x2 := t.MatMul(st, z)
		// Layer 2 on the coarse graph.
		z2 := gnn2.Forward(t, t.MatMul(a2, x2)) // K x d
		// Distribute cluster embeddings back: S @ Z2 (n x d).
		up := t.MatMul(s, z2)
		return out.Forward(t, t.Concat(z, up))
	}

	for step := 0; step < h.Steps; step++ {
		edges := trav.SampleEdges(h.EdgeType, 64)
		t := nn.NewTape()
		all := forward(t)
		si := make([]int, len(edges))
		di := make([]int, len(edges))
		srcIDs := make([]graph.ID, len(edges))
		for i, e := range edges {
			si[i] = int(e.Src)
			di[i] = int(e.Dst)
			srcIDs[i] = e.Src
		}
		negIDs := neg.Sample(srcIDs, h.NegK)
		rep := make([]int, len(negIDs))
		ni := make([]int, len(negIDs))
		for i, u := range negIDs {
			rep[i] = si[i/h.NegK]
			ni[i] = int(u)
		}
		pos := t.RowDot(t.Gather(all, si), t.Gather(all, di))
		ngs := t.RowDot(t.Gather(all, rep), t.Gather(all, ni))
		loss := t.NegSamplingLoss(pos, ngs)
		t.Backward(loss)
		nn.ClipGrad(params, 5)
		opt.Step(params)
	}

	t := nn.NewTape()
	h.emb = forward(t).Val.Clone()
	return nil
}

// Embedding implements Embedder.
func (h *Hierarchical) Embedding(v graph.ID, _ graph.EdgeType) []float64 {
	return h.emb.Row(int(v))
}
