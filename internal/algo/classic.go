package algo

import (
	"math/rand"

	"repro/internal/graph"
	"repro/internal/skipgram"
	"repro/internal/walk"
)

// This file implements the classic homogeneous graph-embedding baselines of
// category C1 (Table 8): DeepWalk, Node2Vec and LINE, plus Metapath2Vec
// from C3. Homogeneous methods follow the paper's evaluation protocol:
// embed each edge-type subgraph separately and concatenate.

// WalkConfig bundles the walk+SGNS hyper-parameters shared by the
// random-walk baselines.
type WalkConfig struct {
	WalksPerVertex int
	WalkLength     int
	SG             skipgram.Config
	Seed           int64
}

// DefaultWalkConfig returns laptop-scale defaults.
func DefaultWalkConfig() WalkConfig {
	return WalkConfig{WalksPerVertex: 4, WalkLength: 8, SG: skipgram.DefaultConfig(), Seed: 1}
}

// DeepWalk embeds each edge-type layer with uniform random walks + SGNS and
// concatenates the per-layer embeddings.
type DeepWalk struct {
	Cfg    WalkConfig
	models []*skipgram.Model
}

// NewDeepWalk creates a DeepWalk baseline.
func NewDeepWalk(cfg WalkConfig) *DeepWalk { return &DeepWalk{Cfg: cfg} }

// Name implements Embedder.
func (d *DeepWalk) Name() string { return "DeepWalk" }

// Fit implements Embedder.
func (d *DeepWalk) Fit(g *graph.Graph) error {
	rng := rand.New(rand.NewSource(d.Cfg.Seed))
	d.models = nil
	for t := 0; t < g.Schema().NumEdgeTypes(); t++ {
		corpus := walk.UniformCorpus(g, d.Cfg.WalksPerVertex, d.Cfg.WalkLength, graph.EdgeType(t), rng)
		d.models = append(d.models, skipgram.TrainCorpus(g.NumVertices(), corpus, d.Cfg.SG, rng))
	}
	return nil
}

// Embedding implements Embedder: concatenation of per-layer embeddings.
func (d *DeepWalk) Embedding(v graph.ID, _ graph.EdgeType) []float64 {
	vecs := make([][]float64, len(d.models))
	for i, m := range d.models {
		vecs[i] = m.Embedding(v)
	}
	return concat(vecs...)
}

// Node2Vec embeds each layer with p/q-biased second-order walks + SGNS.
type Node2Vec struct {
	Cfg    WalkConfig
	P, Q   float64
	models []*skipgram.Model
}

// NewNode2Vec creates a Node2Vec baseline with the given return (p) and
// in-out (q) parameters.
func NewNode2Vec(cfg WalkConfig, p, q float64) *Node2Vec {
	return &Node2Vec{Cfg: cfg, P: p, Q: q}
}

// Name implements Embedder.
func (n *Node2Vec) Name() string { return "Node2Vec" }

// Fit implements Embedder.
func (n *Node2Vec) Fit(g *graph.Graph) error {
	rng := rand.New(rand.NewSource(n.Cfg.Seed))
	n.models = nil
	for t := 0; t < g.Schema().NumEdgeTypes(); t++ {
		corpus := walk.Node2VecCorpus(g, n.Cfg.WalksPerVertex, n.Cfg.WalkLength, graph.EdgeType(t), n.P, n.Q, rng)
		n.models = append(n.models, skipgram.TrainCorpus(g.NumVertices(), corpus, n.Cfg.SG, rng))
	}
	return nil
}

// Embedding implements Embedder.
func (n *Node2Vec) Embedding(v graph.ID, _ graph.EdgeType) []float64 {
	vecs := make([][]float64, len(n.models))
	for i, m := range n.models {
		vecs[i] = m.Embedding(v)
	}
	return concat(vecs...)
}

// LINE preserves first- and second-order proximity by SGNS over an edge
// corpus (each "walk" is a single edge, window 1): the second-order LINE
// objective with negative sampling is exactly SGNS restricted to direct
// neighbors.
type LINE struct {
	Cfg    WalkConfig
	models []*skipgram.Model
}

// NewLINE creates a LINE baseline.
func NewLINE(cfg WalkConfig) *LINE { return &LINE{Cfg: cfg} }

// Name implements Embedder.
func (l *LINE) Name() string { return "LINE" }

// Fit implements Embedder.
func (l *LINE) Fit(g *graph.Graph) error {
	rng := rand.New(rand.NewSource(l.Cfg.Seed))
	l.models = nil
	cfg := l.Cfg.SG
	cfg.Window = 1
	for t := 0; t < g.Schema().NumEdgeTypes(); t++ {
		var corpus walk.Corpus
		g.EdgesOfType(graph.EdgeType(t), func(src, dst graph.ID, _ float64) bool {
			corpus = append(corpus, []graph.ID{src, dst})
			return true
		})
		l.models = append(l.models, skipgram.TrainCorpus(g.NumVertices(), corpus, cfg, rng))
	}
	return nil
}

// Embedding implements Embedder.
func (l *LINE) Embedding(v graph.ID, _ graph.EdgeType) []float64 {
	vecs := make([][]float64, len(l.models))
	for i, m := range l.models {
		vecs[i] = m.Embedding(v)
	}
	return concat(vecs...)
}

// Metapath2Vec runs meta-path constrained walks (default user-item-user on
// bipartite graphs, or the single vertex type on homogeneous ones) and
// trains one SGNS model.
type Metapath2Vec struct {
	Cfg     WalkConfig
	Pattern []graph.VertexType
	model   *skipgram.Model
}

// NewMetapath2Vec creates the baseline; a nil pattern defaults to
// alternating the first two vertex types (or staying on type 0).
func NewMetapath2Vec(cfg WalkConfig, pattern []graph.VertexType) *Metapath2Vec {
	return &Metapath2Vec{Cfg: cfg, Pattern: pattern}
}

// Name implements Embedder.
func (m *Metapath2Vec) Name() string { return "Metapath2Vec" }

// Fit implements Embedder.
func (m *Metapath2Vec) Fit(g *graph.Graph) error {
	rng := rand.New(rand.NewSource(m.Cfg.Seed))
	pattern := m.Pattern
	if pattern == nil {
		if g.Schema().NumVertexTypes() >= 2 {
			pattern = []graph.VertexType{0, 1}
		} else {
			pattern = []graph.VertexType{0}
		}
	}
	corpus := walk.MetaPathCorpus(g, m.Cfg.WalksPerVertex, m.Cfg.WalkLength, pattern, rng)
	m.model = skipgram.TrainCorpus(g.NumVertices(), corpus, m.Cfg.SG, rng)
	return nil
}

// Embedding implements Embedder.
func (m *Metapath2Vec) Embedding(v graph.ID, _ graph.EdgeType) []float64 {
	return m.model.Embedding(v)
}
