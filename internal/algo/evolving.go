package algo

import (
	"math"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/skipgram"
	"repro/internal/tensor"
	"repro/internal/walk"
)

// Evolving GNN (Section 4.2) embeds vertices of a dynamic graph series
// G^(1)..G^(T). Evolving links are split into normal evolution and burst
// links; embeddings are learned in an interleaved manner — each snapshot's
// structure (with burst links identified and handled separately) refines
// the running per-vertex state, and a sequence model over the per-snapshot
// embeddings predicts forward. Here the per-snapshot embeddings come from
// SGNS (the GraphSAGE stand-in at this scale), the temporal state is a
// recency-weighted recurrence, and burst edges are excluded from the
// normal-structure corpus and routed into a burst indicator channel —
// the denoising role the paper assigns to the VAE/RNN pair.
type Evolving struct {
	Dim   int
	Walks WalkConfig
	Decay float64 // temporal recurrence weight
	Seed  int64

	emb   *tensor.Matrix
	burst []float64 // per-vertex burst involvement indicator
}

// NewEvolving creates the model.
func NewEvolving(dim int) *Evolving {
	return &Evolving{Dim: dim, Walks: DefaultWalkConfig(), Decay: 0.6, Seed: 1}
}

// Name identifies the model.
func (e *Evolving) Name() string { return "EvolvingGNN" }

// FitDynamic trains over the snapshot series. One skip-gram model is
// warm-started across snapshots (the paper's "interleaved manner"): the
// embedding space stays aligned over time, so the running state integrates
// the whole history with recency weighting — a freshly trained model per
// snapshot would live in an arbitrary rotation of the space and could not
// be blended.
func (e *Evolving) FitDynamic(s *dataset.DynamicSeries) error {
	rng := rand.New(rand.NewSource(e.Seed))
	n := s.D.At(1).NumVertices()
	e.emb = tensor.New(n, e.Dim)
	e.burst = make([]float64, n)
	m := skipgram.NewModel(n, e.Dim, rng)

	for t := 1; t <= s.D.T(); t++ {
		g := s.D.At(t)
		// Normal-structure corpus: walks on the snapshot, with burst edges
		// filtered out of the transition choices by rejecting burst
		// endpoints (the denoising step).
		burstAt := s.BurstEdges[t-1]
		corpus := e.denoisedCorpus(g, burstAt, rng)
		m.Train(corpus, skipgram.Config{
			Dim: e.Dim, Window: e.Walks.SG.Window, Negative: e.Walks.SG.Negative,
			Epochs: 1, LR: e.Walks.SG.LR,
		}, rng)
		// Temporal recurrence: running state = decay*state + (1-decay)*new.
		for v := 0; v < n; v++ {
			row := e.emb.Row(v)
			nv := m.Embedding(graph.ID(v))
			for d := 0; d < e.Dim; d++ {
				row[d] = e.Decay*row[d] + (1-e.Decay)*nv[d]
			}
		}
		// Burst channel: vertices touched by burst links get a decaying
		// indicator.
		for v := range e.burst {
			e.burst[v] *= e.Decay
		}
		for edge := range burstAt {
			e.burst[edge[0]] += 1
			e.burst[edge[1]] += 1
		}
	}
	return nil
}

func (e *Evolving) denoisedCorpus(g *graph.Graph, burst map[[2]graph.ID]bool, rng *rand.Rand) walk.Corpus {
	isBurst := func(u, v graph.ID) bool {
		return burst[[2]graph.ID{u, v}] || burst[[2]graph.ID{v, u}]
	}
	var corpus walk.Corpus
	for r := 0; r < e.Walks.WalksPerVertex; r++ {
		for v := 0; v < g.NumVertices(); v++ {
			if g.TotalOutDegree(graph.ID(v)) == 0 {
				continue
			}
			w := []graph.ID{graph.ID(v)}
			cur := graph.ID(v)
			for len(w) < e.Walks.WalkLength {
				ns := g.Neighbors(cur)
				if len(ns) == 0 {
					break
				}
				next := ns[rng.Intn(len(ns))]
				if isBurst(cur, next) && rng.Float64() < 0.8 {
					continue // reject burst transitions most of the time
				}
				w = append(w, next)
				cur = next
			}
			if len(w) > 1 {
				corpus = append(corpus, w)
			}
		}
	}
	return corpus
}

// Features returns the classifier features for an edge (u, v): both
// temporal embeddings plus the burst indicators.
func (e *Evolving) Features(u, v graph.ID) []float64 {
	out := make([]float64, 0, 2*e.Dim+2)
	out = append(out, e.emb.Row(int(u))...)
	out = append(out, e.emb.Row(int(v))...)
	out = append(out, math.Tanh(e.burst[u]), math.Tanh(e.burst[v]))
	return out
}

// TNE is the temporal network embedding baseline of Table 11: independent
// per-snapshot embeddings averaged over time — temporal smoothing without
// burst awareness.
type TNE struct {
	Dim   int
	Walks WalkConfig
	Seed  int64
	emb   *tensor.Matrix
}

// NewTNE creates the baseline.
func NewTNE(dim int) *TNE { return &TNE{Dim: dim, Walks: DefaultWalkConfig(), Seed: 1} }

// Name identifies the model.
func (m *TNE) Name() string { return "TNE" }

// FitDynamic trains on the series.
func (m *TNE) FitDynamic(s *dataset.DynamicSeries) error {
	rng := rand.New(rand.NewSource(m.Seed))
	n := s.D.At(1).NumVertices()
	m.emb = tensor.New(n, m.Dim)
	for t := 1; t <= s.D.T(); t++ {
		g := s.D.At(t)
		corpus := walk.MergedCorpus(g, m.Walks.WalksPerVertex, m.Walks.WalkLength, rng)
		sg := skipgram.TrainCorpus(n, corpus, skipgram.Config{
			Dim: m.Dim, Window: m.Walks.SG.Window, Negative: m.Walks.SG.Negative,
			Epochs: 1, LR: m.Walks.SG.LR,
		}, rng)
		for v := 0; v < n; v++ {
			row := m.emb.Row(v)
			for d, x := range sg.Embedding(graph.ID(v)) {
				row[d] += x / float64(s.D.T())
			}
		}
	}
	return nil
}

// Features returns the classifier features for an edge.
func (m *TNE) Features(u, v graph.ID) []float64 {
	return concat(m.emb.Row(int(u)), m.emb.Row(int(v)))
}

// StaticSAGE is the "run the static algorithm on the final snapshot" mode
// of the Table 11 comparison, using SGNS as the embedding engine (same
// engine as the dynamic models, so the comparison isolates temporal
// modeling).
type StaticSAGE struct {
	Dim   int
	Walks WalkConfig
	Seed  int64
	emb   *tensor.Matrix
}

// NewStaticSAGE creates the baseline.
func NewStaticSAGE(dim int) *StaticSAGE {
	return &StaticSAGE{Dim: dim, Walks: DefaultWalkConfig(), Seed: 1}
}

// Name identifies the model.
func (m *StaticSAGE) Name() string { return "GraphSAGE" }

// FitDynamic embeds only the final snapshot.
func (m *StaticSAGE) FitDynamic(s *dataset.DynamicSeries) error {
	rng := rand.New(rand.NewSource(m.Seed))
	g := s.D.At(s.D.T())
	n := g.NumVertices()
	corpus := walk.MergedCorpus(g, m.Walks.WalksPerVertex, m.Walks.WalkLength, rng)
	sg := skipgram.TrainCorpus(n, corpus, skipgram.Config{
		Dim: m.Dim, Window: m.Walks.SG.Window, Negative: m.Walks.SG.Negative,
		Epochs: 2, LR: m.Walks.SG.LR,
	}, rng)
	m.emb = sg.In.Clone()
	return nil
}

// Features returns the classifier features for an edge.
func (m *StaticSAGE) Features(u, v graph.ID) []float64 {
	return concat(m.emb.Row(int(u)), m.emb.Row(int(v)))
}

// DynamicModel is any model usable in the Table 11 comparison.
type DynamicModel interface {
	Name() string
	FitDynamic(s *dataset.DynamicSeries) error
	Features(u, v graph.ID) []float64
}

// MultiClassLinkEval runs the Table 11 task: new edges of the last snapshot
// are classified into community classes (same-community c, or the
// cross-community class C). A softmax classifier is trained on the
// second-to-last snapshot's new edges and tested on the last snapshot's.
// It returns micro and macro F1.
func MultiClassLinkEval(m DynamicModel, s *dataset.DynamicSeries, seed int64) (micro, macro float64, err error) {
	if err := m.FitDynamic(s); err != nil {
		return 0, 0, err
	}
	comm := s.Comm
	numComm := 0
	for _, c := range comm {
		if c+1 > numComm {
			numComm = c + 1
		}
	}
	classes := numComm + 1 // + cross-community class
	label := func(u, v graph.ID) int {
		if comm[u] == comm[v] {
			return comm[u]
		}
		return numComm
	}
	edgesAt := func(t int) [][2]graph.ID {
		delta := s.D.Delta(t-1, 0)
		out := make([][2]graph.ID, 0, len(delta.Added))
		for _, e := range delta.Added {
			out = append(out, [2]graph.ID{e.Src, e.Dst})
		}
		for e := range s.BurstEdges[t-1] {
			out = append(out, e)
		}
		return out
	}
	T := s.D.T()
	trainEdges := edgesAt(T - 1)
	testEdges := edgesAt(T)
	if len(trainEdges) == 0 || len(testEdges) == 0 {
		return 0, 0, nil
	}

	rng := rand.New(rand.NewSource(seed))
	featDim := len(m.Features(0, 0))
	clf := nn.NewDense("clf", featDim, classes, nil, rng)
	opt := nn.NewAdam(0.05)
	X := tensor.New(len(trainEdges), featDim)
	y := make([]int, len(trainEdges))
	for i, e := range trainEdges {
		copy(X.Row(i), m.Features(e[0], e[1]))
		y[i] = label(e[0], e[1])
	}
	for step := 0; step < 150; step++ {
		t := nn.NewTape()
		logits := clf.Forward(t, t.Input(X))
		loss := t.SoftmaxCE(logits, y)
		t.Backward(loss)
		opt.Step(clf.Params())
	}

	Xt := tensor.New(len(testEdges), featDim)
	truth := make([]int, len(testEdges))
	for i, e := range testEdges {
		copy(Xt.Row(i), m.Features(e[0], e[1]))
		truth[i] = label(e[0], e[1])
	}
	t := nn.NewTape()
	logits := clf.Forward(t, t.Input(Xt))
	pred := make([]int, len(testEdges))
	for i := 0; i < logits.Val.Rows; i++ {
		best, bestV := 0, math.Inf(-1)
		for j, v := range logits.Val.Row(i) {
			if v > bestV {
				best, bestV = j, v
			}
		}
		pred[i] = best
	}
	micro, macro = eval.MicroMacroF1(pred, truth, classes)
	return micro, macro, nil
}
