package algo

import (
	"math/rand"

	"repro/internal/eval"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/sampling"
	"repro/internal/skipgram"
	"repro/internal/tensor"
	"repro/internal/walk"
)

// Bayesian GNN (Section 4.2) integrates knowledge-graph information with
// behavior-graph embeddings through a Bayesian correction: each entity's
// prior embedding h_v (learned from the knowledge graph alone) is adjusted
// by a per-entity correction δ_v drawn from a Gaussian prior, and a
// nonlinear f maps the corrected prior into the task space (Equation 7:
// z_v ≈ f(h_v + δ_v)). Training recovers the posterior-mean correction
// (the Gaussian prior appears as L2 shrinkage on δ) and f's parameters; at
// inference the corrected knowledge embedding augments the behaviour score.
type Bayesian struct {
	Base *GraphSAGE // behaviour-graph model being corrected
	// KGEdgeType names the knowledge-graph relation (item-item "similar").
	KGEdgeType graph.EdgeType
	Dim        int
	Steps      int
	LR         float64
	// PriorVar is the Gaussian prior variance of δ (shrinkage = 1/PriorVar).
	PriorVar float64
	// Gamma weighs the corrected knowledge score against the behaviour
	// score.
	Gamma float64
	Seed  int64

	kgEmb  *tensor.Matrix // prior embeddings h_v
	delta  *nn.Param      // corrections δ_v
	f      *nn.Dense      // the nonlinear projection f
	zCache *tensor.Matrix
}

// NewBayesian wraps base with the knowledge correction.
func NewBayesian(base *GraphSAGE, kgEdge graph.EdgeType, dim int) *Bayesian {
	return &Bayesian{
		Base: base, KGEdgeType: kgEdge, Dim: dim,
		Steps: 150, LR: 0.02, PriorVar: 10, Gamma: 0.25, Seed: 1,
	}
}

// Name implements Embedder.
func (b *Bayesian) Name() string { return "GraphSAGE+Bayesian" }

// Fit implements Embedder: trains the behaviour base, learns the knowledge
// prior, then fits f and the posterior corrections on the task edges.
func (b *Bayesian) Fit(g *graph.Graph) error {
	if err := b.Base.Fit(g); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(b.Seed))
	n := g.NumVertices()

	// Knowledge prior: SGNS over knowledge-graph walks.
	corpus := walk.UniformCorpus(g, 4, 8, b.KGEdgeType, rng)
	kg := skipgram.TrainCorpus(n, corpus, skipgram.Config{Dim: b.Dim, Window: 3, Negative: 4, Epochs: 2, LR: 0.05}, rng)
	b.kgEmb = kg.In.Clone()

	// Posterior correction + projection f, fitted on the knowledge-graph
	// relations: corrected embeddings z = f(h + δ) of related entities are
	// pulled together (the task-specific adjustment of Equation 7), with
	// the Gaussian prior on δ appearing as L2 shrinkage.
	b.delta = nn.NewParamZero("bayes.delta", n, b.Dim)
	b.f = nn.NewDense("bayes.f", b.Dim, b.Dim, nn.ActTanh, rng)
	params := append([]*nn.Param{b.delta}, b.f.Params()...)
	opt := nn.NewAdam(b.LR)

	trav := sampling.NewTraverse(g, rng)
	neg := sampling.NewNegative(g, b.KGEdgeType, rng)

	for step := 0; step < b.Steps; step++ {
		edges := trav.SampleEdges(b.KGEdgeType, 64)
		srcIdx := make([]int, len(edges))
		dstIdx := make([]int, len(edges))
		src := make([]graph.ID, len(edges))
		for i, e := range edges {
			srcIdx[i] = int(e.Src)
			dstIdx[i] = int(e.Dst)
			src[i] = e.Src
		}
		negIDs := neg.Sample(src, 3)
		rep := make([]int, len(negIDs))
		ni := make([]int, len(negIDs))
		for i, u := range negIDs {
			rep[i] = i / 3
			ni[i] = int(u)
		}

		t := nn.NewTape()
		zs := b.corrected(t, srcIdx)
		zd := b.corrected(t, dstIdx)
		zn := b.corrected(t, ni)
		pos := t.RowDot(zs, zd)
		negScore := t.RowDot(t.Gather(zs, rep), zn)
		loss := t.AddScalars(
			t.NegSamplingLoss(pos, negScore),
			t.L2Penalty(1/b.PriorVar, b.delta),
		)
		t.Backward(loss)
		nn.ClipGrad(params, 5)
		opt.Step(params)
	}

	// Materialize corrected task embeddings f(h_v + µ̂_v).
	b.zCache = tensor.New(n, b.Dim)
	const chunk = 512
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		idx := make([]int, hi-lo)
		for i := range idx {
			idx[i] = lo + i
		}
		t := nn.NewTape()
		z := b.corrected(t, idx)
		for i := 0; i < z.Val.Rows; i++ {
			copy(b.zCache.Row(lo+i), z.Val.Row(i))
		}
	}
	return nil
}

// Profile returns the user's knowledge profile: the mean corrected
// embedding of the items the user interacted with in training.
func (b *Bayesian) Profile(g *graph.Graph, u graph.ID) []float64 {
	items := g.OutNeighbors(u, b.Base.Cfg.EdgeType)
	prof := make([]float64, b.Dim)
	if len(items) == 0 {
		return prof
	}
	for _, it := range items {
		for d, x := range b.zCache.Row(int(it)) {
			prof[d] += x
		}
	}
	for d := range prof {
		prof[d] /= float64(len(items))
	}
	return prof
}

// corrected builds f(h + δ) rows for the given vertex indices.
func (b *Bayesian) corrected(t *nn.Tape, idx []int) *nn.Node {
	h := tensor.GatherRows(b.kgEmb, idx)
	d := t.Gather(t.Use(b.delta), idx)
	return b.f.Forward(t, t.Add(t.Input(h), d))
}

// Embedding implements Embedder: behaviour embedding (the correction enters
// through Score).
func (b *Bayesian) Embedding(v graph.ID, et graph.EdgeType) []float64 {
	return b.Base.Embedding(v, et)
}

// RecScorer returns the corrected recommendation score function over the
// training graph: behaviour dot product plus γ times the similarity of the
// candidate's corrected knowledge embedding to the user's knowledge
// profile. User profiles are cached.
func (b *Bayesian) RecScorer(g *graph.Graph) func(u, item graph.ID) float64 {
	profiles := make(map[graph.ID][]float64)
	return func(u, item graph.ID) float64 {
		et := b.Base.Cfg.EdgeType
		base := eval.Dot(b.Base.Embedding(u, et), b.Base.Embedding(item, et))
		p, ok := profiles[u]
		if !ok {
			p = b.Profile(g, u)
			profiles[u] = p
		}
		return base + b.Gamma*eval.Cosine(p, b.zCache.Row(int(item)))
	}
}

// ScoreRec scores one pair using only the behaviour embeddings; the
// knowledge correction needs the training graph, so ranking sweeps should
// use RecScorer.
func (b *Bayesian) ScoreRec(u, item graph.ID) float64 {
	et := b.Base.Cfg.EdgeType
	return eval.Dot(b.Base.Embedding(u, et), b.Base.Embedding(item, et))
}
