package algo

import (
	"math/rand"

	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/sampling"
	"repro/internal/tensor"
)

// HEP (Zheng et al.) is heterogeneous embedding propagation: in each hop,
// for every vertex v and every vertex type c, the type-c neighbors of v
// propagate their embeddings to reconstruct h'_{v,c}; the embedding of v is
// updated by concatenating h'_{v,c} across types. HEP consumes the FULL
// neighborhood, which is what makes it expensive — AHEP (the in-house
// variant, Section 4.2) samples important neighbors instead and adds the
// composite loss L = L_SL + α·L_EP + β·Ω(Θ) of Equation 2.
type HEP struct {
	Dim   int
	Steps int
	Batch int
	NegK  int
	LR    float64
	Seed  int64

	// Sample activates AHEP: per type, at most Sample neighbors are used,
	// drawn by the importance distribution (degree-weighted, minimizing
	// sampling variance). Zero means full neighborhoods (HEP).
	Sample int
	// Alpha and Beta weight the EP loss and the regularizer (Equation 2).
	Alpha, Beta float64

	table *nn.Param   // base embeddings
	trans []*nn.Dense // per-vertex-type propagation transform
	emb   *tensor.Matrix

	// cost accounting for Figure 10
	NeighborsVisited int64
}

// NewHEP creates the full-neighborhood HEP baseline.
func NewHEP(dim int) *HEP {
	return &HEP{Dim: dim, Steps: 120, Batch: 32, NegK: 3, LR: 0.02, Seed: 1, Alpha: 1, Beta: 1e-4}
}

// NewAHEP creates the adaptive-sampling AHEP variant with the given
// per-type neighbor budget.
func NewAHEP(dim, sample int) *HEP {
	h := NewHEP(dim)
	h.Sample = sample
	return h
}

// Name implements Embedder.
func (h *HEP) Name() string {
	if h.Sample > 0 {
		return "AHEP"
	}
	return "HEP"
}

// Fit implements Embedder.
func (h *HEP) Fit(g *graph.Graph) error {
	rng := rand.New(rand.NewSource(h.Seed))
	nvt := g.Schema().NumVertexTypes()
	h.table = nn.NewParamGaussian("hep.emb", g.NumVertices(), h.Dim, 0.1, rng)
	h.trans = make([]*nn.Dense, nvt)
	params := []*nn.Param{h.table}
	for c := 0; c < nvt; c++ {
		h.trans[c] = nn.NewDense("hep.trans", h.Dim, h.Dim, nn.ActTanh, rng)
		params = append(params, h.trans[c].Params()...)
	}
	opt := nn.NewAdam(h.LR)
	h.NeighborsVisited = 0

	// Importance distribution for AHEP sampling: degree-weighted (vertices
	// with high degree carry more of the EP signal; weighting by the
	// propagation mass minimizes the sampling variance).
	imp := make([]float64, g.NumVertices())
	for v := range imp {
		imp[v] = float64(g.TotalOutDegree(graph.ID(v))+g.TotalInDegree(graph.ID(v))) + 1
	}

	trav := sampling.NewTraverse(g, rng)
	negByType := make([]*sampling.Negative, g.Schema().NumEdgeTypes())

	for step := 0; step < h.Steps; step++ {
		et := graph.EdgeType(step % g.Schema().NumEdgeTypes())
		if g.NumEdgesOfType(et) == 0 {
			continue
		}
		edges := trav.SampleEdges(et, h.Batch)
		if negByType[et] == nil {
			negByType[et] = sampling.NewNegative(g, et, rng)
		}

		t := nn.NewTape()
		// Reconstructed embeddings h'_v for batch sources via typed
		// propagation.
		src := make([]graph.ID, len(edges))
		dst := make([]graph.ID, len(edges))
		for i, e := range edges {
			src[i] = e.Src
			dst[i] = e.Dst
		}
		hSrc := h.propagate(t, g, src, imp, rng)
		hDst := h.gatherBase(t, dst)
		negs := negByType[et].Sample(src, h.NegK)
		hNeg := h.gatherBase(t, negs)

		rep := make([]int, len(negs))
		for i := range rep {
			rep[i] = i / h.NegK
		}
		// Supervised link loss (L_SL).
		pos := t.RowDot(hSrc, hDst)
		neg := t.RowDot(t.Gather(hSrc, rep), hNeg)
		lossSL := t.NegSamplingLoss(pos, neg)
		// EP loss: reconstruction should stay close to the base embedding.
		lossEP := t.MSE(hSrc, tensor.GatherRows(h.table.Val, toInts(src)))
		loss := t.AddScalars(lossSL, t.Scale(lossEP, h.Alpha), t.L2Penalty(h.Beta, h.table))
		t.Backward(loss)
		nn.ClipGrad(params, 5)
		opt.Step(params)
	}

	// Materialize final embeddings: propagate every vertex once.
	h.emb = tensor.New(g.NumVertices(), h.Dim)
	const chunk = 256
	for lo := 0; lo < g.NumVertices(); lo += chunk {
		hi := lo + chunk
		if hi > g.NumVertices() {
			hi = g.NumVertices()
		}
		vs := make([]graph.ID, hi-lo)
		for i := range vs {
			vs[i] = graph.ID(lo + i)
		}
		t := nn.NewTape()
		hv := h.propagate(t, g, vs, imp, rng)
		for i := 0; i < hv.Val.Rows; i++ {
			copy(h.emb.Row(lo+i), hv.Val.Row(i))
		}
	}
	return nil
}

// propagate reconstructs h'_v for each v: per vertex type c, aggregate the
// (sampled) type-c neighbors through the type transform, then average the
// per-type reconstructions with the base embedding.
func (h *HEP) propagate(t *nn.Tape, g *graph.Graph, vs []graph.ID, imp []float64, rng *rand.Rand) *nn.Node {
	nvt := g.Schema().NumVertexTypes()
	base := h.gatherBase(t, vs)
	acc := base
	for c := 0; c < nvt; c++ {
		idx := make([]int, 0, len(vs))
		rows := make([]int, 0, len(vs))
		for i, v := range vs {
			ns := typedNeighbors(g, v, graph.VertexType(c))
			if len(ns) == 0 {
				continue
			}
			if h.Sample > 0 && len(ns) > h.Sample {
				ns = sampleByImportance(ns, imp, h.Sample, rng)
			}
			h.NeighborsVisited += int64(len(ns))
			for _, u := range ns {
				idx = append(idx, int(u))
				rows = append(rows, i)
			}
		}
		if len(idx) == 0 {
			continue
		}
		// Mean-aggregate neighbor embeddings per batch row; rows have
		// varying neighbor counts, so use the scatter-mean reduction.
		gathered := t.Gather(t.Use(h.table), idx)
		pooled := t.ScatterMean(gathered, rows, len(vs))
		acc = t.Add(acc, h.trans[c].Forward(t, pooled))
	}
	return t.RowL2Normalize(acc)
}

func (h *HEP) gatherBase(t *nn.Tape, vs []graph.ID) *nn.Node {
	return t.Gather(t.Use(h.table), toInts(vs))
}

// Embedding implements Embedder.
func (h *HEP) Embedding(v graph.ID, _ graph.EdgeType) []float64 { return h.emb.Row(int(v)) }

// typedNeighbors returns the neighbors of v whose vertex type is c, across
// all edge types.
func typedNeighbors(g *graph.Graph, v graph.ID, c graph.VertexType) []graph.ID {
	var out []graph.ID
	for _, u := range g.Neighbors(v) {
		if g.VertexType(u) == c {
			out = append(out, u)
		}
	}
	return out
}

// sampleByImportance draws k distinct-ish neighbors proportional to
// importance weight.
func sampleByImportance(ns []graph.ID, imp []float64, k int, rng *rand.Rand) []graph.ID {
	ws := make([]float64, len(ns))
	for i, u := range ns {
		ws[i] = imp[u]
	}
	al := sampling.NewAlias(ws)
	out := make([]graph.ID, k)
	for i := range out {
		out[i] = ns[al.Draw(rng)]
	}
	return out
}

func toInts(vs []graph.ID) []int {
	out := make([]int, len(vs))
	for i, v := range vs {
		out[i] = int(v)
	}
	return out
}
