package algo

import (
	"math/rand"

	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/sampling"
	"repro/internal/tensor"
	"repro/internal/walk"
)

// ANRL (Zhang et al., IJCAI'18) is the attributed baseline of category C2:
// a neighbor-enhancement autoencoder models attribute information (encode a
// vertex's attributes, decode the aggregate attributes of its neighbors)
// while a skip-gram component ties the encoder output to graph structure.
// The final embedding is the encoder bottleneck.
type ANRL struct {
	Dim     int
	Hidden  int
	AttrDim int
	Steps   int
	Batch   int
	NegK    int
	LR      float64
	Seed    int64

	enc *nn.MLP
	dec *nn.MLP
	ctx *nn.Param // skip-gram context table
	emb *tensor.Matrix
}

// NewANRL creates the baseline with laptop-scale defaults.
func NewANRL(dim int) *ANRL {
	return &ANRL{Dim: dim, Hidden: 2 * dim, AttrDim: 16, Steps: 150, Batch: 64, NegK: 3, LR: 0.01, Seed: 1}
}

// Name implements Embedder.
func (a *ANRL) Name() string { return "ANRL" }

// Fit implements Embedder.
func (a *ANRL) Fit(g *graph.Graph) error {
	rng := rand.New(rand.NewSource(a.Seed))
	a.enc = nn.NewMLP("anrl.enc", []int{a.AttrDim, a.Hidden, a.Dim}, nn.ActTanh, rng)
	a.dec = nn.NewMLP("anrl.dec", []int{a.Dim, a.Hidden, a.AttrDim}, nn.ActTanh, rng)
	a.ctx = nn.NewParamGaussian("anrl.ctx", g.NumVertices(), a.Dim, 0.1, rng)
	params := append(append(a.enc.Params(), a.dec.Params()...), a.ctx)
	opt := nn.NewAdam(a.LR)

	attr := func(vs []graph.ID) *tensor.Matrix {
		m := tensor.New(len(vs), a.AttrDim)
		for i, v := range vs {
			row := m.Row(i)
			av := g.VertexAttr(v)
			for j := 0; j < len(av) && j < a.AttrDim; j++ {
				row[j] = av[j]
			}
		}
		return m
	}
	neighborMeanAttr := func(vs []graph.ID) *tensor.Matrix {
		m := tensor.New(len(vs), a.AttrDim)
		for i, v := range vs {
			ns := g.Neighbors(v)
			if len(ns) == 0 {
				ns = []graph.ID{v}
			}
			row := m.Row(i)
			for _, u := range ns {
				av := g.VertexAttr(u)
				for j := 0; j < len(av) && j < a.AttrDim; j++ {
					row[j] += av[j]
				}
			}
			for j := range row {
				row[j] /= float64(len(ns))
			}
		}
		return m
	}

	// Structure pairs from merged walks.
	corpus := walk.MergedCorpus(g, 2, 6, rng)
	var pairs [][2]graph.ID
	for _, w := range corpus {
		for i := 0; i+1 < len(w); i++ {
			pairs = append(pairs, [2]graph.ID{w[i], w[i+1]})
		}
	}
	if len(pairs) == 0 {
		pairs = [][2]graph.ID{{0, 0}}
	}
	// Unigram table for negatives.
	deg := make([]float64, g.NumVertices())
	for v := range deg {
		deg[v] = float64(g.TotalOutDegree(graph.ID(v))) + 1
	}
	negTable := sampling.NewAlias(deg)

	for step := 0; step < a.Steps; step++ {
		batch := make([]graph.ID, a.Batch)
		ctxs := make([]int, a.Batch)
		for i := range batch {
			p := pairs[rng.Intn(len(pairs))]
			batch[i] = p[0]
			ctxs[i] = int(p[1])
		}
		t := nn.NewTape()
		z := a.enc.Forward(t, t.Input(attr(batch)))
		// Neighbor-enhancement reconstruction.
		recon := a.dec.Forward(t, z)
		lossAE := t.MSE(recon, neighborMeanAttr(batch))
		// Skip-gram with negatives.
		pos := t.RowDot(z, t.Gather(t.Use(a.ctx), ctxs))
		negIdx := make([]int, a.Batch*a.NegK)
		rep := make([]int, a.Batch*a.NegK)
		for i := range negIdx {
			negIdx[i] = negTable.Draw(rng)
			rep[i] = i / a.NegK
		}
		neg := t.RowDot(t.Gather(z, rep), t.Gather(t.Use(a.ctx), negIdx))
		lossSG := t.NegSamplingLoss(pos, neg)
		loss := t.AddScalars(lossAE, lossSG)
		t.Backward(loss)
		nn.ClipGrad(params, 5)
		opt.Step(params)
	}

	// Materialize all embeddings.
	a.emb = tensor.New(g.NumVertices(), a.Dim)
	const chunk = 512
	for lo := 0; lo < g.NumVertices(); lo += chunk {
		hi := lo + chunk
		if hi > g.NumVertices() {
			hi = g.NumVertices()
		}
		vs := make([]graph.ID, hi-lo)
		for i := range vs {
			vs[i] = graph.ID(lo + i)
		}
		t := nn.NewTape()
		z := a.enc.Forward(t, t.Input(attr(vs)))
		for i := 0; i < z.Val.Rows; i++ {
			copy(a.emb.Row(lo+i), z.Val.Row(i))
		}
	}
	return nil
}

// Embedding implements Embedder.
func (a *ANRL) Embedding(v graph.ID, _ graph.EdgeType) []float64 { return a.emb.Row(int(v)) }
