package algo

import (
	"math/rand"

	"repro/internal/eval"
	"repro/internal/graph"
	"repro/internal/skipgram"
	"repro/internal/walk"
)

// This file implements the heterogeneous multiplex baselines of category C3
// (Table 8): the three PMNE variants, MVE and MNE.

// PMNEVariant selects among the three PMNE approaches of Liu et al.
type PMNEVariant int

// The three published PMNE variants.
const (
	// PMNEn ("network aggregation") merges all layers into one network and
	// embeds it once.
	PMNEn PMNEVariant = iota
	// PMNEr ("results aggregation") embeds each layer independently and
	// concatenates.
	PMNEr
	// PMNEc ("layer co-analysis") trains one shared embedding across layer
	// corpora so layers regularize each other.
	PMNEc
)

// PMNE is the principled multilayer network embedding baseline.
type PMNE struct {
	Cfg     WalkConfig
	Variant PMNEVariant
	models  []*skipgram.Model
}

// NewPMNE creates a PMNE baseline of the given variant.
func NewPMNE(cfg WalkConfig, v PMNEVariant) *PMNE { return &PMNE{Cfg: cfg, Variant: v} }

// Name implements Embedder.
func (p *PMNE) Name() string {
	switch p.Variant {
	case PMNEn:
		return "PMNE-n"
	case PMNEr:
		return "PMNE-r"
	default:
		return "PMNE-c"
	}
}

// Fit implements Embedder.
func (p *PMNE) Fit(g *graph.Graph) error {
	rng := rand.New(rand.NewSource(p.Cfg.Seed))
	p.models = nil
	switch p.Variant {
	case PMNEn:
		corpus := walk.MergedCorpus(g, p.Cfg.WalksPerVertex, p.Cfg.WalkLength, rng)
		p.models = []*skipgram.Model{skipgram.TrainCorpus(g.NumVertices(), corpus, p.Cfg.SG, rng)}
	case PMNEr:
		for t := 0; t < g.Schema().NumEdgeTypes(); t++ {
			corpus := walk.UniformCorpus(g, p.Cfg.WalksPerVertex, p.Cfg.WalkLength, graph.EdgeType(t), rng)
			p.models = append(p.models, skipgram.TrainCorpus(g.NumVertices(), corpus, p.Cfg.SG, rng))
		}
	case PMNEc:
		// One shared model trained over every layer's corpus in turn; the
		// cross-layer co-analysis is the shared parameterization.
		m := skipgram.NewModel(g.NumVertices(), p.Cfg.SG.Dim, rng)
		for t := 0; t < g.Schema().NumEdgeTypes(); t++ {
			corpus := walk.UniformCorpus(g, p.Cfg.WalksPerVertex, p.Cfg.WalkLength, graph.EdgeType(t), rng)
			m.Train(corpus, p.Cfg.SG, rng)
		}
		p.models = []*skipgram.Model{m}
	}
	return nil
}

// Embedding implements Embedder.
func (p *PMNE) Embedding(v graph.ID, _ graph.EdgeType) []float64 {
	if len(p.models) == 1 {
		return p.models[0].Embedding(v)
	}
	vecs := make([][]float64, len(p.models))
	for i, m := range p.models {
		vecs[i] = m.Embedding(v)
	}
	return concat(vecs...)
}

// MVE embeds each view (edge type) separately and combines them with
// per-view attention weights estimated from each view's fit to the training
// edges (a closed-form stand-in for the trained attention of Qu et al.).
type MVE struct {
	Cfg     WalkConfig
	models  []*skipgram.Model
	weights []float64
}

// NewMVE creates an MVE baseline.
func NewMVE(cfg WalkConfig) *MVE { return &MVE{Cfg: cfg} }

// Name implements Embedder.
func (m *MVE) Name() string { return "MVE" }

// Fit implements Embedder.
func (m *MVE) Fit(g *graph.Graph) error {
	rng := rand.New(rand.NewSource(m.Cfg.Seed))
	m.models = nil
	m.weights = nil
	var total float64
	for t := 0; t < g.Schema().NumEdgeTypes(); t++ {
		corpus := walk.UniformCorpus(g, m.Cfg.WalksPerVertex, m.Cfg.WalkLength, graph.EdgeType(t), rng)
		model := skipgram.TrainCorpus(g.NumVertices(), corpus, m.Cfg.SG, rng)
		m.models = append(m.models, model)
		// Attention weight: view quality measured by mean positive-edge
		// cosine on a sample of training edges.
		w := viewQuality(g, graph.EdgeType(t), model, rng) + 1e-3
		m.weights = append(m.weights, w)
		total += w
	}
	for i := range m.weights {
		m.weights[i] /= total
	}
	return nil
}

func viewQuality(g *graph.Graph, et graph.EdgeType, model *skipgram.Model, rng *rand.Rand) float64 {
	sum, n := 0.0, 0
	g.EdgesOfType(et, func(src, dst graph.ID, _ float64) bool {
		if n >= 200 {
			return false
		}
		sum += eval.Cosine(model.Embedding(src), model.Embedding(dst))
		n++
		return true
	})
	if n == 0 {
		return 0
	}
	q := sum / float64(n)
	if q < 0 {
		return 0
	}
	return q
}

// Embedding implements Embedder: the attention-weighted sum of view
// embeddings (the "single collaborated embedding" of MVE).
func (m *MVE) Embedding(v graph.ID, _ graph.EdgeType) []float64 {
	out := make([]float64, m.Cfg.SG.Dim)
	for i, model := range m.models {
		e := model.Embedding(v)
		w := m.weights[i]
		for j := range out {
			out[j] += w * e[j]
		}
	}
	return out
}

// MNE learns one common embedding plus a low-dimensional per-type
// embedding for each node (Zhang et al.): h_{v,t} = common_v ⊕ specific_{v,t}.
type MNE struct {
	Cfg      WalkConfig
	SpecDim  int
	common   *skipgram.Model
	specific []*skipgram.Model
}

// NewMNE creates an MNE baseline; specDim is the per-type embedding size.
func NewMNE(cfg WalkConfig, specDim int) *MNE { return &MNE{Cfg: cfg, SpecDim: specDim} }

// Name implements Embedder.
func (m *MNE) Name() string { return "MNE" }

// Fit implements Embedder.
func (m *MNE) Fit(g *graph.Graph) error {
	rng := rand.New(rand.NewSource(m.Cfg.Seed))
	merged := walk.MergedCorpus(g, m.Cfg.WalksPerVertex, m.Cfg.WalkLength, rng)
	m.common = skipgram.TrainCorpus(g.NumVertices(), merged, m.Cfg.SG, rng)
	m.specific = nil
	specCfg := m.Cfg.SG
	specCfg.Dim = m.SpecDim
	for t := 0; t < g.Schema().NumEdgeTypes(); t++ {
		corpus := walk.UniformCorpus(g, m.Cfg.WalksPerVertex, m.Cfg.WalkLength, graph.EdgeType(t), rng)
		m.specific = append(m.specific, skipgram.TrainCorpus(g.NumVertices(), corpus, specCfg, rng))
	}
	return nil
}

// Embedding implements Embedder: common plus the type's specific embedding.
func (m *MNE) Embedding(v graph.ID, et graph.EdgeType) []float64 {
	if int(et) >= len(m.specific) {
		et = 0
	}
	return concat(m.common.Embedding(v), m.specific[et].Embedding(v))
}
