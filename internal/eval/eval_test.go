package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestROCAUCPerfect(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []bool{true, true, false, false}
	if auc := ROCAUC(scores, labels); auc != 1.0 {
		t.Fatalf("auc = %f", auc)
	}
	// Inverted scores -> 0.
	if auc := ROCAUC([]float64{0.1, 0.2, 0.8, 0.9}, labels); auc != 0.0 {
		t.Fatalf("inverted auc = %f", auc)
	}
}

func TestROCAUCTiesAndDegenerate(t *testing.T) {
	// All equal scores: AUC must be 0.5 via midranks.
	if auc := ROCAUC([]float64{1, 1, 1, 1}, []bool{true, false, true, false}); auc != 0.5 {
		t.Fatalf("tied auc = %f", auc)
	}
	if auc := ROCAUC([]float64{1, 2}, []bool{true, true}); auc != 0.5 {
		t.Fatalf("single-class auc = %f", auc)
	}
}

func TestPRAUC(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []bool{true, true, false, false}
	if pr := PRAUC(scores, labels); pr != 1.0 {
		t.Fatalf("perfect pr-auc = %f", pr)
	}
	if pr := PRAUC(scores, []bool{false, false, false, false}); pr != 0 {
		t.Fatalf("no-positives pr-auc = %f", pr)
	}
	// Worst case: positives ranked last. AP = (1/3 + 2/4)/2 = 5/12.
	got := PRAUC([]float64{0.9, 0.8, 0.2, 0.1}, []bool{false, false, true, true})
	if math.Abs(got-5.0/12) > 1e-9 {
		t.Fatalf("pr-auc = %f want %f", got, 5.0/12)
	}
}

func TestF1AtThreshold(t *testing.T) {
	scores := []float64{0.9, 0.6, 0.4, 0.1}
	labels := []bool{true, false, true, false}
	p, r, f1 := F1AtThreshold(scores, labels, 0.5)
	if p != 0.5 || r != 0.5 || f1 != 0.5 {
		t.Fatalf("p=%f r=%f f1=%f", p, r, f1)
	}
	// Threshold below everything: recall 1.
	_, r, _ = F1AtThreshold(scores, labels, 0)
	if r != 1 {
		t.Fatalf("recall = %f", r)
	}
}

func TestBestF1(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.3, 0.1}
	labels := []bool{true, true, false, false}
	if f1 := BestF1(scores, labels); f1 != 1.0 {
		t.Fatalf("best f1 = %f", f1)
	}
}

func TestHitRate(t *testing.T) {
	ranked := [][]int{
		{5, 3, 1}, // truth 3 at rank 2
		{7, 2, 9}, // truth 9 at rank 3
		{4, 4, 4}, // truth 0 never
	}
	truth := []int{3, 9, 0}
	if hr := HitRate(ranked, truth, 1); hr != 0 {
		t.Fatalf("hr@1 = %f", hr)
	}
	if hr := HitRate(ranked, truth, 2); math.Abs(hr-1.0/3) > 1e-9 {
		t.Fatalf("hr@2 = %f", hr)
	}
	if hr := HitRate(ranked, truth, 3); math.Abs(hr-2.0/3) > 1e-9 {
		t.Fatalf("hr@3 = %f", hr)
	}
	if HitRate(nil, nil, 5) != 0 {
		t.Fatal("empty hit rate")
	}
}

func TestMicroMacroF1(t *testing.T) {
	// Perfect prediction.
	micro, macro := MicroMacroF1([]int{0, 1, 2}, []int{0, 1, 2}, 3)
	if micro != 1 || macro != 1 {
		t.Fatalf("perfect: micro=%f macro=%f", micro, macro)
	}
	// Skewed: class 0 dominant and always right; class 1 always wrong.
	pred := []int{0, 0, 0, 0, 0}
	truth := []int{0, 0, 0, 0, 1}
	micro, macro = MicroMacroF1(pred, truth, 2)
	if micro <= macro {
		t.Fatalf("micro %f should exceed macro %f on skewed classes", micro, macro)
	}
}

func TestDotAndCosine(t *testing.T) {
	a := []float64{1, 0}
	b := []float64{0, 1}
	if Dot(a, b) != 0 {
		t.Fatal("dot")
	}
	if Cosine(a, a) != 1 {
		t.Fatal("cosine self")
	}
	if Cosine(a, b) != 0 {
		t.Fatal("cosine orthogonal")
	}
	if Cosine(a, []float64{0, 0}) != 0 {
		t.Fatal("cosine zero vector")
	}
}

func TestEvalLinks(t *testing.T) {
	emb := map[int64][]float64{
		1: {1, 0}, 2: {1, 0.1}, 3: {0, 1}, 4: {0.1, 1},
	}
	score := func(u, v int64) float64 { return Dot(emb[u], emb[v]) }
	pos := [][2]int64{{1, 2}, {3, 4}}
	neg := [][2]int64{{1, 3}, {2, 4}}
	m := EvalLinks(score, pos, neg)
	if m.ROCAUC != 1.0 {
		t.Fatalf("auc = %f", m.ROCAUC)
	}
	if m.F1 != 1.0 || m.PRAUC != 1.0 {
		t.Fatalf("metrics = %+v", m)
	}
}

// Property: ROC-AUC is invariant under strictly monotone score transforms.
func TestQuickAUCMonotoneInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(50)
		scores := make([]float64, n)
		labels := make([]bool, n)
		for i := range scores {
			scores[i] = rng.NormFloat64()
			labels[i] = rng.Float64() < 0.5
		}
		trans := make([]float64, n)
		for i, s := range scores {
			trans[i] = math.Exp(2*s) + 1
		}
		return math.Abs(ROCAUC(scores, labels)-ROCAUC(trans, labels)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: AUC of random scores concentrates near 0.5.
func TestQuickAUCRandomNearHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 4000
	scores := make([]float64, n)
	labels := make([]bool, n)
	for i := range scores {
		scores[i] = rng.Float64()
		labels[i] = rng.Float64() < 0.5
	}
	if auc := ROCAUC(scores, labels); auc < 0.45 || auc > 0.55 {
		t.Fatalf("random auc = %f", auc)
	}
}
