// Package eval implements the evaluation metrics of Section 5.2: ROC-AUC,
// PR-AUC, F1-score, hit recall rate (HR@k) and micro/macro F1, plus the
// link-prediction evaluation harness shared by every algorithm benchmark.
package eval

import (
	"math"
	"sort"
)

// ROCAUC computes the area under the ROC curve from scores and binary
// labels via the rank statistic (Mann-Whitney U), with midrank handling of
// ties. Returns 0.5 when either class is empty.
func ROCAUC(scores []float64, labels []bool) float64 {
	n := len(scores)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })

	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && scores[idx[j+1]] == scores[idx[i]] {
			j++
		}
		mid := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = mid
		}
		i = j + 1
	}
	var sumPos float64
	nPos, nNeg := 0, 0
	for i, l := range labels {
		if l {
			sumPos += ranks[i]
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0.5
	}
	u := sumPos - float64(nPos)*float64(nPos+1)/2
	return u / (float64(nPos) * float64(nNeg))
}

// PRAUC computes the area under the precision-recall curve using the
// average-precision formulation.
func PRAUC(scores []float64, labels []bool) float64 {
	n := len(scores)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	nPos := 0
	for _, l := range labels {
		if l {
			nPos++
		}
	}
	if nPos == 0 {
		return 0
	}
	tp := 0
	ap := 0.0
	for rank, i := range idx {
		if labels[i] {
			tp++
			ap += float64(tp) / float64(rank+1)
		}
	}
	return ap / float64(nPos)
}

// F1AtThreshold computes precision, recall and F1 classifying score >= thr
// as positive.
func F1AtThreshold(scores []float64, labels []bool, thr float64) (precision, recall, f1 float64) {
	tp, fp, fn := 0, 0, 0
	for i, s := range scores {
		pred := s >= thr
		switch {
		case pred && labels[i]:
			tp++
		case pred && !labels[i]:
			fp++
		case !pred && labels[i]:
			fn++
		}
	}
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		recall = float64(tp) / float64(tp+fn)
	}
	if precision+recall > 0 {
		f1 = 2 * precision * recall / (precision + recall)
	}
	return
}

// BestF1 sweeps all candidate thresholds and returns the maximum F1, the
// convention used for reporting F1-score in the paper's tables.
func BestF1(scores []float64, labels []bool) float64 {
	uniq := append([]float64(nil), scores...)
	sort.Float64s(uniq)
	best := 0.0
	for i := 0; i < len(uniq); i++ {
		if i > 0 && uniq[i] == uniq[i-1] {
			continue
		}
		_, _, f1 := F1AtThreshold(scores, labels, uniq[i])
		if f1 > best {
			best = f1
		}
	}
	return best
}

// HitRate computes HR@k: the fraction of test users whose held-out item
// appears in their top-k recommendation list. ranked[u] is u's ranked item
// list; truth[u] the held-out item index.
func HitRate(ranked [][]int, truth []int, k int) float64 {
	if len(ranked) == 0 {
		return 0
	}
	hits := 0
	for u, list := range ranked {
		limit := k
		if limit > len(list) {
			limit = len(list)
		}
		for _, item := range list[:limit] {
			if item == truth[u] {
				hits++
				break
			}
		}
	}
	return float64(hits) / float64(len(ranked))
}

// MicroMacroF1 computes micro and macro F1 for multi-class predictions.
func MicroMacroF1(pred, truth []int, numClasses int) (micro, macro float64) {
	tp := make([]int, numClasses)
	fp := make([]int, numClasses)
	fn := make([]int, numClasses)
	for i := range pred {
		if pred[i] == truth[i] {
			tp[truth[i]]++
		} else {
			fp[pred[i]]++
			fn[truth[i]]++
		}
	}
	var sumTP, sumFP, sumFN int
	macroSum := 0.0
	nonEmpty := 0
	for c := 0; c < numClasses; c++ {
		sumTP += tp[c]
		sumFP += fp[c]
		sumFN += fn[c]
		if tp[c]+fp[c]+fn[c] == 0 {
			continue
		}
		nonEmpty++
		p, r := 0.0, 0.0
		if tp[c]+fp[c] > 0 {
			p = float64(tp[c]) / float64(tp[c]+fp[c])
		}
		if tp[c]+fn[c] > 0 {
			r = float64(tp[c]) / float64(tp[c]+fn[c])
		}
		if p+r > 0 {
			macroSum += 2 * p * r / (p + r)
		}
	}
	if nonEmpty > 0 {
		macro = macroSum / float64(nonEmpty)
	}
	if 2*sumTP+sumFP+sumFN > 0 {
		micro = 2 * float64(sumTP) / float64(2*sumTP+sumFP+sumFN)
	}
	return
}

// Dot is the embedding link score used across all models.
func Dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Cosine returns the cosine similarity of two vectors (0 when either is
// zero).
func Cosine(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// LinkMetrics bundles the three headline link-prediction numbers of the
// paper's tables.
type LinkMetrics struct {
	ROCAUC float64
	PRAUC  float64
	F1     float64
}

// EvalLinks scores positive and negative test pairs with score and computes
// the metric bundle.
func EvalLinks(score func(u, v int64) float64, pos, neg [][2]int64) LinkMetrics {
	scores := make([]float64, 0, len(pos)+len(neg))
	labels := make([]bool, 0, len(pos)+len(neg))
	for _, e := range pos {
		scores = append(scores, score(e[0], e[1]))
		labels = append(labels, true)
	}
	for _, e := range neg {
		scores = append(scores, score(e[0], e[1]))
		labels = append(labels, false)
	}
	return LinkMetrics{
		ROCAUC: ROCAUC(scores, labels),
		PRAUC:  PRAUC(scores, labels),
		F1:     BestF1(scores, labels),
	}
}
