// Package version implements the multi-version adjacency and attribute
// store behind dynamic graph serving: an immutable base snapshot (CSR
// adjacency flattened at Seal time) plus per-epoch delta overlays kept in a
// bounded ring of the last K epochs. It is the snapshot-isolation split an
// HTAP-style graph service needs between its update path and its analytical
// readers: ServeUpdate-style writers append whole delta batches (advancing
// the head epoch), while samplers read through At(epoch) views that never
// observe a torn or in-progress mutation.
//
// Design:
//
//   - The base is immutable once Seal runs. An overlay is immutable once
//     Append installs it. A View therefore reads entirely lock-free after
//     the single lock acquisition that resolved it — and it stays valid
//     even if its epoch is later evicted from the ring, because eviction
//     only drops the ring's reference.
//   - Overlays are cumulative: the overlay of epoch e maps every vertex
//     touched since the base to its full post-update adjacency (and every
//     re-written attribute row to its value), so resolving a read is one
//     map probe plus a base fallback regardless of how many epochs back
//     the base is. Append clones the head overlay's index maps (cost
//     proportional to the total touched set, not the graph) and installs a
//     new one; removal copies the touched vertex's slices instead of
//     rewriting shared backing arrays in place.
//   - Append applies a Delta all-or-nothing: the batch is staged into the
//     candidate overlay and validated as it goes; any error (for example a
//     non-local source vertex) discards the whole overlay, leaves the head
//     epoch unchanged and reports zero applied operations.
//   - The ring retains the last Retain epochs. Older epochs are evicted —
//     unless leased: Lease(epoch)/Release(epoch) reference-count readers
//     that pinned a snapshot, and an epoch with live leases survives any
//     number of Appends. Reads of an evicted epoch fail with ErrEvicted,
//     which IsEvicted recognizes even after an error crosses an net/rpc
//     boundary as a flattened string; clients react by re-pinning the
//     current head and retrying.
//   - Weighted neighbor draws stay O(1) on untouched vertices at every
//     epoch: the base AliasIndex (built lazily, slot-indexed, immutable) is
//     valid for any vertex whose adjacency a view resolves from the base,
//     which is exactly the per-vertex invalidation scope an update has.
//     Touched vertices take a linear-scan weighted draw over their overlay
//     list. Uniform edge draws (TRAVERSE) mix a per-overlay sampler over
//     the touched vertices with the immutable base degree alias.
package version

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/sampling"
)

// DefaultRetain is the default ring bound: how many update epochs stay
// readable without a lease.
const DefaultRetain = 8

// evictedMarker and futureMarker are the substrings the Is* helpers match
// on; they must appear in every corresponding error, including those
// flattened to strings by net/rpc.
const (
	evictedMarker = "epoch evicted"
	futureMarker  = "epoch not reached"
)

// ErrEvicted reports a read of an epoch that fell out of the retention ring
// with no lease holding it.
var ErrEvicted = errors.New("version: " + evictedMarker)

// ErrFuture reports a read of an epoch the store has not reached yet — on a
// live cluster typically a pin outliving a server restart (the fresh store
// restarts at epoch 0).
var ErrFuture = errors.New("version: " + futureMarker)

// IsEvicted reports whether err marks an evicted epoch. It matches both the
// in-process sentinel and errors that crossed an RPC boundary as strings.
func IsEvicted(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, ErrEvicted) || strings.Contains(err.Error(), evictedMarker)
}

// IsFuture reports whether err marks an epoch the serving store has not
// reached, RPC-flattened or not.
func IsFuture(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, ErrFuture) || strings.Contains(err.Error(), futureMarker)
}

// IsUnavailable reports whether err means the requested snapshot epoch
// cannot be served at all — evicted from the ring, or never reached (a
// restarted server). Both are recoverable the same way: discard the pin,
// lease the current snapshot, retry.
func IsUnavailable(err error) bool {
	return IsEvicted(err) || IsFuture(err)
}

// EdgeOp is one edge mutation of a Delta.
type EdgeOp struct {
	Src, Dst graph.ID
	Type     graph.EdgeType
	Weight   float64
}

// AttrOp replaces the attribute row of one vertex.
type AttrOp struct {
	V    graph.ID
	Attr []float64
}

// Delta is one atomic update batch: edge insertions, edge removals
// (idempotent: removing an absent edge is a no-op) and attribute rewrites.
type Delta struct {
	Add     []EdgeOp
	Remove  []EdgeOp
	SetAttr []AttrOp
}

// akey addresses one vertex's adjacency under one edge type.
type akey struct {
	v graph.ID
	t graph.EdgeType
}

// adjList is one vertex's overlay adjacency: a full replacement of its
// base list, immutable once installed.
type adjList struct {
	nbr []graph.ID
	wts []float64
}

// baseCSR is the sealed adjacency of one edge type: slot-aligned offsets
// into flat neighbor/weight arrays.
type baseCSR struct {
	offs []int64
	nbr  []graph.ID
	wts  []float64
}

// overlay is the cumulative diff-versus-base at one epoch. All fields
// except the lazily built edge samplers are immutable after Append.
type overlay struct {
	epoch uint64
	adj   map[akey]adjList
	attrs map[graph.ID][]float64
	// attrEpoch is the most recent epoch <= this one that rewrote any
	// attribute row; attribute caches invalidate on its advance.
	attrEpoch uint64
	// edgeCount is the per-type total of local edges at this epoch.
	edgeCount []int64

	smu      sync.Mutex
	samplers []*edgeSampler // per edge type, built lazily
}

// Store is the multi-version store. Build it like a plain server shard:
// AddVertex/AddEdge during loading, then Seal exactly once; afterwards all
// mutation goes through Append.
type Store struct {
	numTypes int
	retain   int

	mu     sync.RWMutex
	sealed bool

	// Pre-Seal building state.
	bAdj []map[graph.ID][]graph.ID
	bWts []map[graph.ID][]float64

	// Immutable base (built by Seal).
	local     []graph.ID
	pos       map[graph.ID]int
	dense     bool // local[i] == i for all i: slot lookup is arithmetic
	base      []baseCSR
	baseAttrs map[graph.ID][]float64
	baseEdges []int64

	head     uint64
	overlays map[uint64]*overlay
	leases   map[uint64]int

	aliasMu      sync.Mutex
	baseAlias    []atomic.Pointer[sampling.AliasIndex] // per type; slot-indexed, immutable
	baseDegAlias []atomic.Pointer[baseDegree]          // per type
}

// baseDegree pairs the degree-proportional slot alias of one edge type with
// the slot order backing it (slots with base degree > 0).
type baseDegree struct {
	al   *sampling.Alias
	pool []int32
}

// NewStore creates an empty store for numEdgeTypes edge types with the
// default retention window.
func NewStore(numEdgeTypes int) *Store {
	return NewStoreRetain(numEdgeTypes, DefaultRetain)
}

// NewStoreRetain creates a store retaining the last retain epochs (minimum
// 1: the head is always readable).
func NewStoreRetain(numEdgeTypes, retain int) *Store {
	if retain < 1 {
		retain = 1
	}
	s := &Store{
		numTypes:     numEdgeTypes,
		retain:       retain,
		bAdj:         make([]map[graph.ID][]graph.ID, numEdgeTypes),
		bWts:         make([]map[graph.ID][]float64, numEdgeTypes),
		baseAttrs:    make(map[graph.ID][]float64),
		overlays:     make(map[uint64]*overlay),
		leases:       make(map[uint64]int),
		baseAlias:    make([]atomic.Pointer[sampling.AliasIndex], numEdgeTypes),
		baseDegAlias: make([]atomic.Pointer[baseDegree], numEdgeTypes),
	}
	for t := range s.bAdj {
		s.bAdj[t] = make(map[graph.ID][]graph.ID)
		s.bWts[t] = make(map[graph.ID][]float64)
	}
	return s
}

// NumEdgeTypes reports the schema width the store was built for.
func (s *Store) NumEdgeTypes() int { return s.numTypes }

// Retain reports the ring bound K.
func (s *Store) Retain() int { return s.retain }

// AddVertex registers a local vertex with its attribute row. Only legal
// before Seal; post-Seal attribute changes go through Append.
func (s *Store) AddVertex(v graph.ID, attr []float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sealed {
		panic("version: AddVertex after Seal")
	}
	if _, ok := s.baseAttrs[v]; !ok {
		s.local = append(s.local, v)
	}
	s.baseAttrs[v] = attr
}

// AddEdge appends an out-edge during loading. Only legal before Seal.
func (s *Store) AddEdge(src, dst graph.ID, t graph.EdgeType, w float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sealed {
		panic("version: AddEdge after Seal")
	}
	s.bAdj[t][src] = append(s.bAdj[t][src], dst)
	s.bWts[t][src] = append(s.bWts[t][src], w)
}

// Seal freezes the loaded data as the immutable epoch-0 base: local IDs are
// sorted, adjacency is flattened into per-type CSR arrays and the building
// maps are dropped. Idempotent.
func (s *Store) Seal() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sealed {
		return
	}
	sort.Slice(s.local, func(i, j int) bool { return s.local[i] < s.local[j] })
	s.pos = make(map[graph.ID]int, len(s.local))
	s.dense = true
	for i, v := range s.local {
		s.pos[v] = i
		if v != graph.ID(i) {
			s.dense = false
		}
	}
	s.base = make([]baseCSR, s.numTypes)
	s.baseEdges = make([]int64, s.numTypes)
	for t := 0; t < s.numTypes; t++ {
		c := baseCSR{offs: make([]int64, len(s.local)+1)}
		for i, v := range s.local {
			c.offs[i+1] = c.offs[i] + int64(len(s.bAdj[t][v]))
		}
		m := c.offs[len(s.local)]
		c.nbr = make([]graph.ID, 0, m)
		c.wts = make([]float64, 0, m)
		for _, v := range s.local {
			c.nbr = append(c.nbr, s.bAdj[t][v]...)
			c.wts = append(c.wts, s.bWts[t][v]...)
		}
		s.base[t] = c
		s.baseEdges[t] = m
	}
	s.bAdj, s.bWts = nil, nil
	s.sealed = true
}

// Sealed reports whether the base has been frozen.
func (s *Store) Sealed() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sealed
}

// LocalVertices returns the sorted local vertex IDs (shared slice; do not
// mutate). Before Seal the order is insertion order.
func (s *Store) LocalVertices() []graph.ID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.local
}

// NumVertices reports how many vertices the store owns.
func (s *Store) NumVertices() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.local)
}

// Head reports the current (newest) epoch.
func (s *Store) Head() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.head
}

// Floor reports the oldest epoch readable without a lease.
func (s *Store) Floor() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.floorLocked()
}

func (s *Store) floorLocked() uint64 {
	if s.head+1 <= uint64(s.retain) {
		return 0
	}
	return s.head + 1 - uint64(s.retain)
}

// slot returns the base slot of v, or -1 when v is not local. Stores whose
// local IDs are dense (0..n-1, the single-shard and benchmark case) resolve
// by arithmetic instead of a map probe.
func (s *Store) slot(v graph.ID) int {
	if s.dense {
		if v < 0 || int(v) >= len(s.local) {
			return -1
		}
		return int(v)
	}
	if i, ok := s.pos[v]; ok {
		return i
	}
	return -1
}

// BaseAlias returns the immutable slot-indexed weighted-draw index over the
// base adjacency of type t (built lazily on first use). It is valid at
// every epoch for any vertex whose NeighborsSlot reports touched == false;
// fetch it once per request and draw without further synchronization.
func (s *Store) BaseAlias(t graph.EdgeType) *sampling.AliasIndex {
	return s.baseAliasIndex(t)
}

// At resolves a read view of the given epoch. The returned View reads
// lock-free and stays consistent even if the epoch is evicted afterwards;
// At itself fails with ErrEvicted (or ErrFuture) when the epoch is already
// outside the readable window.
func (s *Store) At(epoch uint64) (View, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.sealed {
		return View{}, errors.New("version: read before Seal")
	}
	if epoch > s.head {
		return View{}, fmt.Errorf("version: epoch %d not reached (head %d): %w", epoch, s.head, ErrFuture)
	}
	if epoch == 0 {
		if s.floorLocked() > 0 && s.leases[0] == 0 {
			return View{}, fmt.Errorf("version: %w: epoch 0 (floor %d, head %d)", ErrEvicted, s.floorLocked(), s.head)
		}
		return View{s: s, epoch: 0}, nil
	}
	ov, ok := s.overlays[epoch]
	if !ok {
		return View{}, fmt.Errorf("version: %w: epoch %d (floor %d, head %d)", ErrEvicted, epoch, s.floorLocked(), s.head)
	}
	return View{s: s, epoch: epoch, ov: ov}, nil
}

// HeadView resolves the newest epoch's view.
func (s *Store) HeadView() View {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return View{s: s, epoch: s.head, ov: s.overlays[s.head]}
}

// Lease pins epoch against eviction until a matching Release. It fails if
// the epoch is already unreadable.
func (s *Store) Lease(epoch uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if epoch > s.head {
		return fmt.Errorf("version: lease of epoch %d not reached (head %d): %w", epoch, s.head, ErrFuture)
	}
	// The epoch must still be readable — overlay present for epochs >= 1
	// (wherever they sit relative to the floor: a force-evicted in-window
	// epoch is just as gone), base retained for epoch 0.
	if epoch != 0 {
		if _, ok := s.overlays[epoch]; !ok {
			return fmt.Errorf("version: %w: lease of epoch %d (floor %d)", ErrEvicted, epoch, s.floorLocked())
		}
	} else if s.floorLocked() > 0 && s.leases[0] == 0 {
		return fmt.Errorf("version: %w: lease of epoch 0 (floor %d)", ErrEvicted, s.floorLocked())
	}
	s.leases[epoch]++
	return nil
}

// LeaseHead pins the current head epoch and returns it.
func (s *Store) LeaseHead() uint64 {
	e, _ := s.LeaseHeadInfo()
	return e
}

// LeaseHeadInfo pins the current head epoch and returns it together with
// the head's attribute epoch, read under one lock acquisition so the pair
// is consistent even under concurrent Appends.
func (s *Store) LeaseHeadInfo() (epoch, attrEpoch uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.leases[s.head]++
	if ov := s.overlays[s.head]; ov != nil {
		attrEpoch = ov.attrEpoch
	}
	return s.head, attrEpoch
}

// Release drops one lease on epoch; when the last lease on an epoch behind
// the retention floor goes, the epoch is evicted. Releasing an unleased
// epoch is a no-op.
func (s *Store) Release(epoch uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.leases[epoch] == 0 {
		return
	}
	s.leases[epoch]--
	if s.leases[epoch] == 0 {
		delete(s.leases, epoch)
		if epoch != 0 && epoch < s.floorLocked() {
			delete(s.overlays, epoch)
		}
	}
}

// Leases reports the live lease count of epoch.
func (s *Store) Leases(epoch uint64) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.leases[epoch]
}

// Evict force-drops epoch from the ring regardless of leases, simulating a
// server that lost its lease table (restart, operator intervention). Reads
// of the epoch then fail with ErrEvicted; clients holding pins on it must
// re-pin and retry. The head epoch cannot be evicted.
func (s *Store) Evict(epoch uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if epoch == s.head {
		return
	}
	delete(s.leases, epoch)
	if epoch != 0 {
		delete(s.overlays, epoch)
	} else {
		// Epoch 0 has no overlay; mark it unreadable by ensuring the floor
		// check fails. Nothing to do when the floor is still 0 — within the
		// ring the base stays readable by construction.
		_ = epoch
	}
}

// Append stages delta against the head state, validates it, and — only if
// every operation is legal — installs it as the next epoch, all-or-nothing.
// Removals of absent edges are idempotent no-ops. An effectively empty
// delta (nothing added, removed or rewritten) does not advance the epoch.
func (s *Store) Append(delta Delta) (epoch uint64, added, removed, attrsSet int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.sealed {
		return s.head, 0, 0, 0, errors.New("version: Append before Seal")
	}
	prev := s.overlays[s.head]

	// Stage the candidate overlay. Maps are cloned from the head overlay
	// (cumulative diff-versus-base); entry slices are copied on first touch
	// this round so installed overlays and the base stay immutable.
	adj := make(map[akey]adjList, mapLen(prev))
	attrs := make(map[graph.ID][]float64, attrLen(prev))
	counts := make([]int64, s.numTypes)
	if prev != nil {
		for k, l := range prev.adj {
			adj[k] = l
		}
		for v, a := range prev.attrs {
			attrs[v] = a
		}
		copy(counts, prev.edgeCount)
	} else {
		copy(counts, s.baseEdges)
	}
	fresh := make(map[akey]struct{})

	cur := func(k akey) adjList {
		if l, ok := adj[k]; ok {
			return l
		}
		slot := s.slot(k.v)
		c := &s.base[k.t]
		lo, hi := c.offs[slot], c.offs[slot+1]
		return adjList{nbr: c.nbr[lo:hi], wts: c.wts[lo:hi]}
	}
	// own returns k's staged list with this-round-private backing arrays.
	own := func(k akey) adjList {
		l := cur(k)
		if _, ok := fresh[k]; !ok {
			l = adjList{
				nbr: append(make([]graph.ID, 0, len(l.nbr)+1), l.nbr...),
				wts: append(make([]float64, 0, len(l.wts)+1), l.wts...),
			}
			fresh[k] = struct{}{}
		}
		return l
	}

	for _, e := range delta.Add {
		if s.slot(e.Src) < 0 {
			return s.head, 0, 0, 0, fmt.Errorf("version: source vertex %d is not local", e.Src)
		}
		if int(e.Type) < 0 || int(e.Type) >= s.numTypes {
			return s.head, 0, 0, 0, fmt.Errorf("version: edge type %d out of range", e.Type)
		}
		k := akey{e.Src, e.Type}
		l := own(k)
		l.nbr = append(l.nbr, e.Dst)
		l.wts = append(l.wts, e.Weight)
		adj[k] = l
		counts[e.Type]++
		added++
	}
	for _, e := range delta.Remove {
		if int(e.Type) < 0 || int(e.Type) >= s.numTypes {
			return s.head, 0, 0, 0, fmt.Errorf("version: edge type %d out of range", e.Type)
		}
		if s.slot(e.Src) < 0 {
			continue // idempotent: nothing of this source here
		}
		k := akey{e.Src, e.Type}
		l := cur(k)
		hit := -1
		for i, u := range l.nbr {
			if u == e.Dst {
				hit = i
				break
			}
		}
		if hit < 0 {
			continue
		}
		l = own(k)
		l.nbr = append(l.nbr[:hit], l.nbr[hit+1:]...)
		l.wts = append(l.wts[:hit], l.wts[hit+1:]...)
		adj[k] = l
		counts[e.Type]--
		removed++
	}
	for _, a := range delta.SetAttr {
		if s.slot(a.V) < 0 {
			return s.head, 0, 0, 0, fmt.Errorf("version: vertex %d is not local", a.V)
		}
		attrs[a.V] = append([]float64(nil), a.Attr...)
		attrsSet++
	}

	if added+removed+attrsSet == 0 {
		return s.head, 0, 0, 0, nil
	}

	next := s.head + 1
	ov := &overlay{
		epoch:     next,
		adj:       adj,
		attrs:     attrs,
		edgeCount: counts,
		samplers:  make([]*edgeSampler, s.numTypes),
	}
	if attrsSet > 0 {
		ov.attrEpoch = next
	} else if prev != nil {
		ov.attrEpoch = prev.attrEpoch
	}
	s.head = next
	s.overlays[next] = ov

	// Ring GC: epochs behind the floor are evicted unless leased.
	floor := s.floorLocked()
	for e := range s.overlays {
		if e < floor && s.leases[e] == 0 {
			delete(s.overlays, e)
		}
	}
	return next, added, removed, attrsSet, nil
}

func mapLen(ov *overlay) int {
	if ov == nil {
		return 0
	}
	return len(ov.adj) + 1
}

func attrLen(ov *overlay) int {
	if ov == nil {
		return 0
	}
	return len(ov.attrs) + 1
}

// baseAliasIndex lazily builds (once; immutable afterwards) the slot-indexed
// weighted-draw alias tables over the base adjacency of type t. It is valid
// at every epoch for vertices the view resolves from the base, and the hot
// read path is a single atomic load.
func (s *Store) baseAliasIndex(t graph.EdgeType) *sampling.AliasIndex {
	if ai := s.baseAlias[t].Load(); ai != nil {
		return ai
	}
	s.aliasMu.Lock()
	defer s.aliasMu.Unlock()
	if ai := s.baseAlias[t].Load(); ai != nil {
		return ai
	}
	c := &s.base[t]
	ws := make([][]float64, len(s.local))
	for i := range s.local {
		ws[i] = c.wts[c.offs[i]:c.offs[i+1]]
	}
	ai := sampling.NewAliasIndexFromWeights(ws)
	s.baseAlias[t].Store(ai)
	return ai
}

// degreeTable lazily builds the degree-proportional vertex table over base
// slots with at least one type-t out-edge; drawing a slot from it and then
// a uniform adjacency entry is a uniform draw over the base edge set.
func (s *Store) degreeTable(t graph.EdgeType) *baseDegree {
	if d := s.baseDegAlias[t].Load(); d != nil {
		return d
	}
	s.aliasMu.Lock()
	defer s.aliasMu.Unlock()
	if d := s.baseDegAlias[t].Load(); d != nil {
		return d
	}
	c := &s.base[t]
	var pool []int32
	var ws []float64
	for i := range s.local {
		if d := c.offs[i+1] - c.offs[i]; d > 0 {
			pool = append(pool, int32(i))
			ws = append(ws, float64(d))
		}
	}
	d := &baseDegree{al: sampling.NewAlias(ws), pool: pool}
	s.baseDegAlias[t].Store(d)
	return d
}
