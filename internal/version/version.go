// Package version implements the multi-version adjacency and attribute
// store behind dynamic graph serving: an immutable base snapshot (CSR
// adjacency flattened at Seal time) plus per-epoch delta overlays kept in a
// bounded ring of the last K epochs. It is the snapshot-isolation split an
// HTAP-style graph service needs between its update path and its analytical
// readers: ServeUpdate-style writers append whole delta batches (advancing
// the head epoch), while samplers read through At(epoch) views that never
// observe a torn or in-progress mutation.
//
// Design:
//
//   - Base snapshots are immutable. A baseState freezes the whole shard at
//     one epoch (CSR adjacency, attribute rows, edge/weight totals, lazily
//     built alias and degree tables); the original one is built by Seal at
//     epoch 0 and later ones by Compact. An overlay is immutable once
//     Append installs it, and it permanently pairs with the base it was
//     built against, so a View (base pointer + overlay pointer) reads
//     entirely lock-free after the single lock acquisition that resolved
//     it — and it stays valid even if its epoch is later evicted from the
//     ring or the store's current base is swapped by a compaction.
//   - Overlays are cumulative: the overlay of epoch e maps every vertex
//     touched since its base to its full post-update adjacency (and every
//     re-written attribute row to its value), so resolving a read is one
//     map probe plus a base fallback regardless of how many epochs back
//     the base is. Append clones the head overlay's index maps (cost
//     proportional to the total touched set, not the graph) and installs a
//     new one; removal copies the touched vertex's slices instead of
//     rewriting shared backing arrays in place. Every overlay entry is
//     stamped with the epoch that installed it; the stamps drive both
//     client-side cache validity (the Since field on sampling replies) and
//     compaction's pruning.
//   - Append applies a Delta all-or-nothing: the batch is staged into the
//     candidate overlay and validated as it goes; any error (for example a
//     non-local source vertex) discards the whole overlay, leaves the head
//     epoch unchanged and reports zero applied operations.
//   - The ring retains the last Retain epochs. Older epochs are evicted —
//     unless leased: Lease(epoch)/Release(epoch) reference-count readers
//     that pinned a snapshot, and an epoch with live leases survives any
//     number of Appends. Reads of an evicted epoch fail with ErrEvicted,
//     which IsEvicted recognizes even after an error crosses an net/rpc
//     boundary as a flattened string; clients react by re-pinning the
//     current head and retrying.
//   - Compact bounds memory under an unbounded update stream: it folds the
//     state at the retention floor into a freshly sealed base (CSR, degree
//     tables and alias indexes rebuilt off-lock from immutable inputs,
//     then atomically swapped in) and rebases the retained overlays by
//     pruning every entry whose stamp the new base already covers, so the
//     cumulative maps stop growing monotonically. Leased epochs below the
//     floor keep their old overlay and old base pointer and stay readable
//     throughout; live Views are untouched. Clients never notice: the head
//     epoch does not move and every retained epoch answers exactly as
//     before.
//   - Weighted neighbor draws stay O(1) on untouched vertices at every
//     epoch: the base AliasIndex (built lazily, slot-indexed, immutable) is
//     valid for any vertex whose adjacency a view resolves from its base,
//     which is exactly the per-vertex invalidation scope an update has.
//     Touched vertices take a linear-scan weighted draw over their overlay
//     list. Uniform edge draws (TRAVERSE) mix a per-overlay sampler over
//     the touched vertices with the immutable base degree alias, and
//     weight-proportional edge draws mix the same two regions by weight
//     mass (SampleEdgeWeighted) — the server side of the distributed
//     weighted TRAVERSE.
package version

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/sampling"
)

// DefaultRetain is the default ring bound: how many update epochs stay
// readable without a lease.
const DefaultRetain = 8

// evictedMarker and futureMarker are the substrings the Is* helpers match
// on; they must appear in every corresponding error, including those
// flattened to strings by net/rpc.
const (
	evictedMarker = "epoch evicted"
	futureMarker  = "epoch not reached"
)

// ErrEvicted reports a read of an epoch that fell out of the retention ring
// with no lease holding it.
var ErrEvicted = errors.New("version: " + evictedMarker)

// ErrFuture reports a read of an epoch the store has not reached yet — on a
// live cluster typically a pin outliving a server restart (the fresh store
// restarts at epoch 0).
var ErrFuture = errors.New("version: " + futureMarker)

// IsEvicted reports whether err marks an evicted epoch. It matches both the
// in-process sentinel and errors that crossed an RPC boundary as strings.
func IsEvicted(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, ErrEvicted) || strings.Contains(err.Error(), evictedMarker)
}

// IsFuture reports whether err marks an epoch the serving store has not
// reached, RPC-flattened or not.
func IsFuture(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, ErrFuture) || strings.Contains(err.Error(), futureMarker)
}

// IsUnavailable reports whether err means the requested snapshot epoch
// cannot be served at all — evicted from the ring, or never reached (a
// restarted server). Both are recoverable the same way: discard the pin,
// lease the current snapshot, retry.
func IsUnavailable(err error) bool {
	return IsEvicted(err) || IsFuture(err)
}

// EdgeOp is one edge mutation of a Delta.
type EdgeOp struct {
	Src, Dst graph.ID
	Type     graph.EdgeType
	Weight   float64
}

// AttrOp replaces the attribute row of one vertex.
type AttrOp struct {
	V    graph.ID
	Attr []float64
}

// Delta is one atomic update batch: edge insertions, edge removals
// (idempotent: removing an absent edge is a no-op) and attribute rewrites.
type Delta struct {
	Add     []EdgeOp
	Remove  []EdgeOp
	SetAttr []AttrOp
}

// akey addresses one vertex's adjacency under one edge type.
type akey struct {
	v graph.ID
	t graph.EdgeType
}

// adjList is one vertex's overlay adjacency: a full replacement of its
// base list, immutable once installed. epoch stamps the update epoch that
// installed this exact list — the validity boundary cache layers key on and
// compaction prunes by.
type adjList struct {
	nbr   []graph.ID
	wts   []float64
	epoch uint64
}

// attrRow is one vertex's overlay attribute row with its install stamp.
type attrRow struct {
	row   []float64
	epoch uint64
}

// baseCSR is the sealed adjacency of one edge type: slot-aligned offsets
// into flat neighbor/weight arrays.
type baseCSR struct {
	offs []int64
	nbr  []graph.ID
	wts  []float64
}

// baseState freezes the whole shard at one epoch. It is immutable after
// construction except for the lazily built (atomic, build-once) alias and
// degree tables; Views and overlays hold baseState pointers, so a
// compaction installing a newer base never disturbs an existing reader.
type baseState struct {
	epoch uint64 // the update epoch whose state this base freezes

	local []graph.ID
	pos   map[graph.ID]int
	dense bool // local[i] == i for all i: slot lookup is arithmetic

	csr     []baseCSR
	attrs   map[graph.ID][]float64
	edges   []int64   // per-type edge totals at epoch
	weights []float64 // per-type edge-weight totals at epoch
	// weightsPos caches the per-type positive-weight mass so edge samplers
	// derive their base remainder in O(touched), not an O(E) rescan.
	weightsPos []float64

	// since records, for entries folded out of overlays by compaction, the
	// epoch at which the vertex's current list was installed (absent = the
	// list predates every update). Serving layers report it as the Since
	// stamp on replies, so cache entries never claim validity across an
	// update the base has absorbed. attrSince is the same discipline for
	// attribute rows rewritten by SetAttr and later folded into the base.
	since     map[akey]uint64
	attrSince map[graph.ID]uint64

	aliasMu  sync.Mutex
	alias    []atomic.Pointer[sampling.AliasIndex] // per type; slot-indexed, immutable
	degAlias []atomic.Pointer[baseDegree]          // per type, degree-proportional
	wtAlias  []atomic.Pointer[baseDegree]          // per type, weight-proportional
}

// overlay is the cumulative diff-versus-base at one epoch. All fields
// except the lazily built edge samplers are immutable after Append.
type overlay struct {
	epoch uint64
	base  *baseState // the base this overlay's maps diff against
	adj   map[akey]adjList
	attrs map[graph.ID]attrRow
	// attrEpoch is the most recent epoch <= this one that rewrote any
	// attribute row; attribute caches invalidate on its advance.
	attrEpoch uint64
	// edgeCount / weightSum are the per-type totals of local edges and edge
	// weight at this epoch (absolute, so they survive rebasing unchanged).
	edgeCount []int64
	weightSum []float64

	smu      sync.Mutex
	samplers []*edgeSampler // per edge type, built lazily
}

// Store is the multi-version store. Build it like a plain server shard:
// AddVertex/AddEdge during loading, then Seal exactly once; afterwards all
// mutation goes through Append (and memory is bounded by Compact).
type Store struct {
	numTypes int
	retain   int

	mu     sync.RWMutex
	sealed bool

	// Pre-Seal building state.
	bAdj []map[graph.ID][]graph.ID
	bWts []map[graph.ID][]float64

	// cur is the base new Appends and head reads resolve against; zero is
	// the original epoch-0 base, kept only while epoch 0 is readable.
	cur  *baseState
	zero *baseState

	head     uint64
	overlays map[uint64]*overlay
	leases   map[uint64]int

	// compactMu serializes compactions (the expensive rebuild runs outside
	// the store lock; two interleaved rebuilds would waste work).
	compactMu   sync.Mutex
	compactions int64
}

// baseDegree pairs a proportional slot alias of one edge type with the slot
// order backing it (slots with positive mass).
type baseDegree struct {
	al   *sampling.Alias
	pool []int32
}

// NewStore creates an empty store for numEdgeTypes edge types with the
// default retention window.
func NewStore(numEdgeTypes int) *Store {
	return NewStoreRetain(numEdgeTypes, DefaultRetain)
}

// NewStoreRetain creates a store retaining the last retain epochs (minimum
// 1: the head is always readable).
func NewStoreRetain(numEdgeTypes, retain int) *Store {
	if retain < 1 {
		retain = 1
	}
	s := &Store{
		numTypes: numEdgeTypes,
		retain:   retain,
		bAdj:     make([]map[graph.ID][]graph.ID, numEdgeTypes),
		bWts:     make([]map[graph.ID][]float64, numEdgeTypes),
		cur:      &baseState{attrs: make(map[graph.ID][]float64)},
		overlays: make(map[uint64]*overlay),
		leases:   make(map[uint64]int),
	}
	for t := range s.bAdj {
		s.bAdj[t] = make(map[graph.ID][]graph.ID)
		s.bWts[t] = make(map[graph.ID][]float64)
	}
	return s
}

// NumEdgeTypes reports the schema width the store was built for.
func (s *Store) NumEdgeTypes() int { return s.numTypes }

// Retain reports the ring bound K.
func (s *Store) Retain() int { return s.retain }

// AddVertex registers a local vertex with its attribute row. Only legal
// before Seal; post-Seal attribute changes go through Append.
func (s *Store) AddVertex(v graph.ID, attr []float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sealed {
		panic("version: AddVertex after Seal")
	}
	if _, ok := s.cur.attrs[v]; !ok {
		s.cur.local = append(s.cur.local, v)
	}
	s.cur.attrs[v] = attr
}

// AddEdge appends an out-edge during loading. Only legal before Seal.
func (s *Store) AddEdge(src, dst graph.ID, t graph.EdgeType, w float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sealed {
		panic("version: AddEdge after Seal")
	}
	s.bAdj[t][src] = append(s.bAdj[t][src], dst)
	s.bWts[t][src] = append(s.bWts[t][src], w)
}

// Seal freezes the loaded data as the immutable epoch-0 base: local IDs are
// sorted, adjacency is flattened into per-type CSR arrays and the building
// maps are dropped. Idempotent.
func (s *Store) Seal() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sealed {
		return
	}
	b := s.cur
	sort.Slice(b.local, func(i, j int) bool { return b.local[i] < b.local[j] })
	b.pos = make(map[graph.ID]int, len(b.local))
	b.dense = true
	for i, v := range b.local {
		b.pos[v] = i
		if v != graph.ID(i) {
			b.dense = false
		}
	}
	b.csr = make([]baseCSR, s.numTypes)
	b.edges = make([]int64, s.numTypes)
	b.weights = make([]float64, s.numTypes)
	b.weightsPos = make([]float64, s.numTypes)
	for t := 0; t < s.numTypes; t++ {
		c := baseCSR{offs: make([]int64, len(b.local)+1)}
		for i, v := range b.local {
			c.offs[i+1] = c.offs[i] + int64(len(s.bAdj[t][v]))
		}
		m := c.offs[len(b.local)]
		c.nbr = make([]graph.ID, 0, m)
		c.wts = make([]float64, 0, m)
		for _, v := range b.local {
			c.nbr = append(c.nbr, s.bAdj[t][v]...)
			c.wts = append(c.wts, s.bWts[t][v]...)
		}
		b.csr[t] = c
		b.edges[t] = m
		for _, w := range c.wts {
			b.weights[t] += w
			if w > 0 {
				b.weightsPos[t] += w
			}
		}
	}
	b.alias = make([]atomic.Pointer[sampling.AliasIndex], s.numTypes)
	b.degAlias = make([]atomic.Pointer[baseDegree], s.numTypes)
	b.wtAlias = make([]atomic.Pointer[baseDegree], s.numTypes)
	s.bAdj, s.bWts = nil, nil
	s.zero = b
	s.sealed = true
}

// Sealed reports whether the base has been frozen.
func (s *Store) Sealed() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sealed
}

// LocalVertices returns the sorted local vertex IDs (shared slice; do not
// mutate). Before Seal the order is insertion order. The vertex set is
// fixed at Seal, so it is identical across compactions.
func (s *Store) LocalVertices() []graph.ID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cur.local
}

// NumVertices reports how many vertices the store owns.
func (s *Store) NumVertices() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.cur.local)
}

// Head reports the current (newest) epoch.
func (s *Store) Head() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.head
}

// Floor reports the oldest epoch readable without a lease.
func (s *Store) Floor() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.floorLocked()
}

// BaseEpoch reports the epoch the current base freezes (0 until the first
// compaction folds overlays forward).
func (s *Store) BaseEpoch() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cur.epoch
}

// Compactions reports how many Compact calls have installed a new base.
func (s *Store) Compactions() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.compactions
}

func (s *Store) floorLocked() uint64 {
	if s.head+1 <= uint64(s.retain) {
		return 0
	}
	return s.head + 1 - uint64(s.retain)
}

// slot returns the base slot of v, or -1 when v is not local. Stores whose
// local IDs are dense (0..n-1, the single-shard and benchmark case) resolve
// by arithmetic instead of a map probe. The slot numbering is fixed at Seal
// (updates cannot add vertices), so slots mean the same thing under every
// base generation.
func (b *baseState) slot(v graph.ID) int {
	if b.dense {
		if v < 0 || int(v) >= len(b.local) {
			return -1
		}
		return int(v)
	}
	if i, ok := b.pos[v]; ok {
		return i
	}
	return -1
}

// At resolves a read view of the given epoch. The returned View reads
// lock-free and stays consistent even if the epoch is evicted afterwards or
// a compaction swaps the store's base; At itself fails with ErrEvicted (or
// ErrFuture) when the epoch is already outside the readable window.
func (s *Store) At(epoch uint64) (View, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.sealed {
		return View{}, errors.New("version: read before Seal")
	}
	if epoch > s.head {
		return View{}, fmt.Errorf("version: epoch %d not reached (head %d): %w", epoch, s.head, ErrFuture)
	}
	if epoch == 0 {
		if s.zero == nil || (s.floorLocked() > 0 && s.leases[0] == 0) {
			return View{}, fmt.Errorf("version: %w: epoch 0 (floor %d, head %d)", ErrEvicted, s.floorLocked(), s.head)
		}
		return View{s: s, b: s.zero, epoch: 0}, nil
	}
	ov, ok := s.overlays[epoch]
	if !ok {
		return View{}, fmt.Errorf("version: %w: epoch %d (floor %d, head %d)", ErrEvicted, epoch, s.floorLocked(), s.head)
	}
	return View{s: s, b: ov.base, epoch: epoch, ov: ov}, nil
}

// HeadView resolves the newest epoch's view.
func (s *Store) HeadView() View {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.headViewLocked()
}

func (s *Store) headViewLocked() View {
	if ov := s.overlays[s.head]; ov != nil {
		return View{s: s, b: ov.base, epoch: s.head, ov: ov}
	}
	return View{s: s, b: s.cur, epoch: s.head}
}

// Lease pins epoch against eviction until a matching Release. It fails if
// the epoch is already unreadable.
func (s *Store) Lease(epoch uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if epoch > s.head {
		return fmt.Errorf("version: lease of epoch %d not reached (head %d): %w", epoch, s.head, ErrFuture)
	}
	// The epoch must still be readable — overlay present for epochs >= 1
	// (wherever they sit relative to the floor: a force-evicted in-window
	// epoch is just as gone), base retained for epoch 0.
	if epoch != 0 {
		if _, ok := s.overlays[epoch]; !ok {
			return fmt.Errorf("version: %w: lease of epoch %d (floor %d)", ErrEvicted, epoch, s.floorLocked())
		}
	} else if s.zero == nil || (s.floorLocked() > 0 && s.leases[0] == 0) {
		return fmt.Errorf("version: %w: lease of epoch 0 (floor %d)", ErrEvicted, s.floorLocked())
	}
	s.leases[epoch]++
	return nil
}

// LeaseHead pins the current head epoch and returns it.
func (s *Store) LeaseHead() uint64 {
	e, _ := s.LeaseHeadInfo()
	return e
}

// LeaseHeadInfo pins the current head epoch and returns it together with
// the head's attribute epoch, read under one lock acquisition so the pair
// is consistent even under concurrent Appends.
func (s *Store) LeaseHeadInfo() (epoch, attrEpoch uint64) {
	e, a, _, _ := s.LeaseHeadStats()
	return e, a
}

// LeaseHeadStats is LeaseHeadInfo extended with the head epoch's per-type
// edge counts and edge-weight sums, all from one lock acquisition. Lease
// replies carry them so clients can split pinned TRAVERSE batches across
// shards using the counters of the snapshot they actually sample — not the
// moving head's.
func (s *Store) LeaseHeadStats() (epoch, attrEpoch uint64, edges []int64, weights []float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.leases[s.head]++
	if ov := s.overlays[s.head]; ov != nil {
		attrEpoch = ov.attrEpoch
		edges = append([]int64(nil), ov.edgeCount...)
		weights = append([]float64(nil), ov.weightSum...)
	} else {
		edges = append([]int64(nil), s.cur.edges...)
		weights = append([]float64(nil), s.cur.weights...)
	}
	return s.head, attrEpoch, edges, weights
}

// Release drops one lease on epoch; when the last lease on an epoch behind
// the retention floor goes, the epoch is evicted. Releasing an unleased
// epoch is a no-op.
func (s *Store) Release(epoch uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.leases[epoch] == 0 {
		return
	}
	s.leases[epoch]--
	if s.leases[epoch] == 0 {
		delete(s.leases, epoch)
		if epoch != 0 && epoch < s.floorLocked() {
			delete(s.overlays, epoch)
		}
	}
}

// Leases reports the live lease count of epoch.
func (s *Store) Leases(epoch uint64) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.leases[epoch]
}

// LeaseStats reports the total live lease count across all epochs and the
// number of distinct leased epochs — the occupancy gauges a serving shard
// exports (retained-ring pressure is leased epochs the floor cannot pass).
func (s *Store) LeaseStats() (total int64, epochs int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, n := range s.leases {
		if n > 0 {
			total += int64(n)
			epochs++
		}
	}
	return total, epochs
}

// Evict force-drops epoch from the ring regardless of leases, simulating a
// server that lost its lease table (restart, operator intervention). Reads
// of the epoch then fail with ErrEvicted; clients holding pins on it must
// re-pin and retry. The head epoch cannot be evicted.
func (s *Store) Evict(epoch uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if epoch == s.head {
		return
	}
	delete(s.leases, epoch)
	if epoch != 0 {
		delete(s.overlays, epoch)
	}
	// Epoch 0 has no overlay; once the floor passes it, the lease check in
	// At already fails. Within the ring the base stays readable by
	// construction.
}

// OverlayStats describes the resident overlay footprint: how many epochs
// the ring currently holds and how many adjacency/attribute entries the
// HEAD overlay's cumulative maps carry (the monotone-growth metric a
// compaction trigger watches).
type OverlayStats struct {
	Epochs      int
	AdjEntries  int
	AttrEntries int
	BaseEpoch   uint64
}

// Overlay reports the resident overlay footprint.
func (s *Store) Overlay() OverlayStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := OverlayStats{Epochs: len(s.overlays), BaseEpoch: s.cur.epoch}
	if ov := s.overlays[s.head]; ov != nil {
		st.AdjEntries = len(ov.adj)
		st.AttrEntries = len(ov.attrs)
	}
	return st
}

// Append stages delta against the head state, validates it, and — only if
// every operation is legal — installs it as the next epoch, all-or-nothing.
// Removals of absent edges are idempotent no-ops. An effectively empty
// delta (nothing added, removed or rewritten) does not advance the epoch.
func (s *Store) Append(delta Delta) (epoch uint64, added, removed, attrsSet int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.sealed {
		return s.head, 0, 0, 0, errors.New("version: Append before Seal")
	}
	prev := s.overlays[s.head]
	base := s.cur
	if prev != nil {
		base = prev.base
	}

	// Stage the candidate overlay. Maps are cloned from the head overlay
	// (cumulative diff-versus-base); entry slices are copied on first touch
	// this round so installed overlays and the base stay immutable.
	adj := make(map[akey]adjList, mapLen(prev))
	attrs := make(map[graph.ID]attrRow, attrLen(prev))
	counts := make([]int64, s.numTypes)
	wsums := make([]float64, s.numTypes)
	if prev != nil {
		for k, l := range prev.adj {
			adj[k] = l
		}
		for v, a := range prev.attrs {
			attrs[v] = a
		}
		copy(counts, prev.edgeCount)
		copy(wsums, prev.weightSum)
	} else {
		copy(counts, base.edges)
		copy(wsums, base.weights)
	}
	fresh := make(map[akey]struct{})

	cur := func(k akey) adjList {
		if l, ok := adj[k]; ok {
			return l
		}
		slot := base.slot(k.v)
		c := &base.csr[k.t]
		lo, hi := c.offs[slot], c.offs[slot+1]
		return adjList{nbr: c.nbr[lo:hi], wts: c.wts[lo:hi], epoch: base.since[akey{k.v, k.t}]}
	}
	// own returns k's staged list with this-round-private backing arrays.
	own := func(k akey) adjList {
		l := cur(k)
		if _, ok := fresh[k]; !ok {
			l = adjList{
				nbr: append(make([]graph.ID, 0, len(l.nbr)+1), l.nbr...),
				wts: append(make([]float64, 0, len(l.wts)+1), l.wts...),
			}
			fresh[k] = struct{}{}
		}
		return l
	}

	for _, e := range delta.Add {
		if base.slot(e.Src) < 0 {
			return s.head, 0, 0, 0, fmt.Errorf("version: source vertex %d is not local", e.Src)
		}
		if int(e.Type) < 0 || int(e.Type) >= s.numTypes {
			return s.head, 0, 0, 0, fmt.Errorf("version: edge type %d out of range", e.Type)
		}
		k := akey{e.Src, e.Type}
		l := own(k)
		l.nbr = append(l.nbr, e.Dst)
		l.wts = append(l.wts, e.Weight)
		adj[k] = l
		counts[e.Type]++
		wsums[e.Type] += e.Weight
		added++
	}
	for _, e := range delta.Remove {
		if int(e.Type) < 0 || int(e.Type) >= s.numTypes {
			return s.head, 0, 0, 0, fmt.Errorf("version: edge type %d out of range", e.Type)
		}
		if base.slot(e.Src) < 0 {
			continue // idempotent: nothing of this source here
		}
		k := akey{e.Src, e.Type}
		l := cur(k)
		hit := -1
		for i, u := range l.nbr {
			if u == e.Dst {
				hit = i
				break
			}
		}
		if hit < 0 {
			continue
		}
		l = own(k)
		w := l.wts[hit]
		l.nbr = append(l.nbr[:hit], l.nbr[hit+1:]...)
		l.wts = append(l.wts[:hit], l.wts[hit+1:]...)
		adj[k] = l
		counts[e.Type]--
		wsums[e.Type] -= w
		removed++
	}
	for _, a := range delta.SetAttr {
		if base.slot(a.V) < 0 {
			return s.head, 0, 0, 0, fmt.Errorf("version: vertex %d is not local", a.V)
		}
		attrs[a.V] = attrRow{row: append([]float64(nil), a.Attr...)}
		attrsSet++
	}

	if added+removed+attrsSet == 0 {
		return s.head, 0, 0, 0, nil
	}

	next := s.head + 1
	// Stamp everything this round installed with the new epoch.
	for k := range fresh {
		l := adj[k]
		l.epoch = next
		adj[k] = l
	}
	for _, a := range delta.SetAttr {
		r := attrs[a.V]
		r.epoch = next
		attrs[a.V] = r
	}
	ov := &overlay{
		epoch:     next,
		base:      base,
		adj:       adj,
		attrs:     attrs,
		edgeCount: counts,
		weightSum: wsums,
		samplers:  make([]*edgeSampler, s.numTypes),
	}
	if attrsSet > 0 {
		ov.attrEpoch = next
	} else if prev != nil {
		ov.attrEpoch = prev.attrEpoch
	}
	s.head = next
	s.overlays[next] = ov

	// Ring GC: epochs behind the floor are evicted unless leased.
	floor := s.floorLocked()
	for e := range s.overlays {
		if e < floor && s.leases[e] == 0 {
			delete(s.overlays, e)
		}
	}
	if floor > 0 && s.leases[0] == 0 {
		s.zero = nil
	}
	return next, added, removed, attrsSet, nil
}

func mapLen(ov *overlay) int {
	if ov == nil {
		return 0
	}
	return len(ov.adj) + 1
}

func attrLen(ov *overlay) int {
	if ov == nil {
		return 0
	}
	return len(ov.attrs) + 1
}

// CompactStats reports what a Compact call did.
type CompactStats struct {
	// BaseEpoch is the epoch the (possibly new) base freezes after the call.
	BaseEpoch uint64
	// FoldedAdj / FoldedAttrs count the cumulative overlay entries the new
	// base absorbed; Pruned counts entries dropped from retained overlays.
	FoldedAdj, FoldedAttrs, Pruned int
	// Rebased counts retained overlays rewritten against the new base.
	Rebased int
}

// Compact folds the overlay state at the retention floor into a freshly
// sealed base and rebases the retained overlays against it, bounding the
// cumulative overlay maps that otherwise grow monotonically under a long
// update stream. The expensive rebuild (CSR flatten, attribute fold) runs
// off-lock against immutable inputs; only the final swap takes the store
// lock. Safety:
//
//   - Live Views are untouched: they hold their own base and overlay
//     pointers, both immutable.
//   - Leased epochs below the floor keep their old overlay (paired with
//     the old base) and remain readable — no ErrEvicted for pinned
//     readers; the old base's memory is released when the last such lease
//     goes.
//   - The head epoch does not move: retained epochs keep serving exactly
//     the same adjacency, attributes, counts and draw DISTRIBUTIONS
//     (pruned entries resurface from the new base, whose since-stamps keep
//     cache validity exact). One caveat: a vertex folded into the base
//     flips from the overlay's weighted-scan draw path to the base alias
//     path, so a fixed-seed draw stream touching folded vertices may map
//     uniforms to different (equally distributed) samples than the same
//     seed produced before the fold — making those streams bit-stable
//     would require keeping the very per-epoch history compaction exists
//     to drop. Untouched vertices and untouched edge types draw
//     bit-identically across folds, which is what the churned-vs-quiesced
//     training invariants rely on.
//
// Compact is a no-op when the floor has not moved past the current base.
func (s *Store) Compact() (CompactStats, error) {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()

	// Snapshot the fold point and the retained overlays.
	s.mu.RLock()
	if !s.sealed {
		s.mu.RUnlock()
		return CompactStats{}, errors.New("version: Compact before Seal")
	}
	curBase := s.cur
	head := s.head
	target := s.floorLocked()
	var fold *overlay
	for e := target; e > curBase.epoch && e > 0; e-- {
		if ov, ok := s.overlays[e]; ok {
			fold, target = ov, e
			break
		}
	}
	if fold == nil {
		s.mu.RUnlock()
		return CompactStats{BaseEpoch: curBase.epoch}, nil
	}
	retained := make(map[uint64]*overlay)
	for e, ov := range s.overlays {
		if e >= target && e <= head {
			retained[e] = ov
		}
	}
	s.mu.RUnlock()

	// Build the new base off-lock: the fold overlay applied over ITS OWN
	// base (overlays appended while an earlier Compact was building may
	// still pair with an older base than s.cur), all immutable inputs.
	oldBase := fold.base
	nb := &baseState{
		epoch:      target,
		local:      oldBase.local,
		pos:        oldBase.pos,
		dense:      oldBase.dense,
		csr:        make([]baseCSR, s.numTypes),
		edges:      append([]int64(nil), fold.edgeCount...),
		weights:    append([]float64(nil), fold.weightSum...),
		weightsPos: make([]float64, s.numTypes),
		attrs:      make(map[graph.ID][]float64, len(oldBase.attrs)),
		since:      make(map[akey]uint64, len(oldBase.since)+len(fold.adj)),
		attrSince:  make(map[graph.ID]uint64, len(oldBase.attrSince)+len(fold.attrs)),
		alias:      make([]atomic.Pointer[sampling.AliasIndex], s.numTypes),
		degAlias:   make([]atomic.Pointer[baseDegree], s.numTypes),
		wtAlias:    make([]atomic.Pointer[baseDegree], s.numTypes),
	}
	for k, e := range oldBase.since {
		nb.since[k] = e
	}
	for v, e := range oldBase.attrSince {
		nb.attrSince[v] = e
	}
	for t := 0; t < s.numTypes; t++ {
		oc := &oldBase.csr[t]
		c := baseCSR{offs: make([]int64, len(nb.local)+1)}
		for i, v := range nb.local {
			if l, ok := fold.adj[akey{v, graph.EdgeType(t)}]; ok {
				c.offs[i+1] = c.offs[i] + int64(len(l.nbr))
			} else {
				c.offs[i+1] = c.offs[i] + (oc.offs[i+1] - oc.offs[i])
			}
		}
		m := c.offs[len(nb.local)]
		c.nbr = make([]graph.ID, 0, m)
		c.wts = make([]float64, 0, m)
		for i, v := range nb.local {
			if l, ok := fold.adj[akey{v, graph.EdgeType(t)}]; ok {
				c.nbr = append(c.nbr, l.nbr...)
				c.wts = append(c.wts, l.wts...)
				if l.epoch > 0 {
					nb.since[akey{v, graph.EdgeType(t)}] = l.epoch
				}
			} else {
				c.nbr = append(c.nbr, oc.nbr[oc.offs[i]:oc.offs[i+1]]...)
				c.wts = append(c.wts, oc.wts[oc.offs[i]:oc.offs[i+1]]...)
			}
		}
		nb.csr[t] = c
		for _, w := range c.wts {
			if w > 0 {
				nb.weightsPos[t] += w
			}
		}
	}
	for v, a := range oldBase.attrs {
		nb.attrs[v] = a
	}
	for v, a := range fold.attrs {
		nb.attrs[v] = a.row
		if a.epoch > 0 {
			nb.attrSince[v] = a.epoch
		}
	}

	// Rebase the retained overlays: drop every entry the new base covers.
	stats := CompactStats{BaseEpoch: target, FoldedAdj: len(fold.adj), FoldedAttrs: len(fold.attrs)}
	rebased := make(map[uint64]*overlay, len(retained))
	for e, ov := range retained {
		nadj := make(map[akey]adjList)
		for k, l := range ov.adj {
			if l.epoch > target {
				nadj[k] = l
			} else {
				stats.Pruned++
			}
		}
		nattrs := make(map[graph.ID]attrRow)
		for v, a := range ov.attrs {
			if a.epoch > target {
				nattrs[v] = a
			} else {
				stats.Pruned++
			}
		}
		rebased[e] = &overlay{
			epoch:     e,
			base:      nb,
			adj:       nadj,
			attrs:     nattrs,
			attrEpoch: ov.attrEpoch,
			edgeCount: ov.edgeCount,
			weightSum: ov.weightSum,
			samplers:  make([]*edgeSampler, s.numTypes),
		}
		stats.Rebased++
	}

	// Swap. Overlays appended while we built keep the old base (their maps
	// are cumulative, so they read correctly against it); the next Compact
	// picks them up. An epoch evicted mid-build is skipped.
	s.mu.Lock()
	for e, nov := range rebased {
		if s.overlays[e] == retained[e] {
			s.overlays[e] = nov
		}
	}
	s.cur = nb
	if s.floorLocked() > 0 && s.leases[0] == 0 {
		s.zero = nil
	}
	s.compactions++
	s.mu.Unlock()
	return stats, nil
}

// aliasIndex lazily builds (once; immutable afterwards) the slot-indexed
// weighted-draw alias tables over this base's adjacency of type t. It is
// valid at every epoch for vertices a view of this base resolves from it,
// and the hot read path is a single atomic load.
func (b *baseState) aliasIndex(t graph.EdgeType) *sampling.AliasIndex {
	if ai := b.alias[t].Load(); ai != nil {
		return ai
	}
	b.aliasMu.Lock()
	defer b.aliasMu.Unlock()
	if ai := b.alias[t].Load(); ai != nil {
		return ai
	}
	c := &b.csr[t]
	ws := make([][]float64, len(b.local))
	for i := range b.local {
		ws[i] = c.wts[c.offs[i]:c.offs[i+1]]
	}
	ai := sampling.NewAliasIndexFromWeights(ws)
	b.alias[t].Store(ai)
	return ai
}

// degreeTable lazily builds the degree-proportional vertex table over base
// slots with at least one type-t out-edge; drawing a slot from it and then
// a uniform adjacency entry is a uniform draw over the base edge set.
func (b *baseState) degreeTable(t graph.EdgeType) *baseDegree {
	if d := b.degAlias[t].Load(); d != nil {
		return d
	}
	b.aliasMu.Lock()
	defer b.aliasMu.Unlock()
	if d := b.degAlias[t].Load(); d != nil {
		return d
	}
	c := &b.csr[t]
	var pool []int32
	var ws []float64
	for i := range b.local {
		if d := c.offs[i+1] - c.offs[i]; d > 0 {
			pool = append(pool, int32(i))
			ws = append(ws, float64(d))
		}
	}
	d := &baseDegree{al: sampling.NewAlias(ws), pool: pool}
	b.degAlias[t].Store(d)
	return d
}

// weightTable lazily builds the weight-proportional vertex table over base
// slots with positive type-t out-weight; drawing a slot from it and then a
// weighted adjacency entry (via aliasIndex) is a weight-proportional draw
// over the base edge set.
func (b *baseState) weightTable(t graph.EdgeType) *baseDegree {
	if d := b.wtAlias[t].Load(); d != nil {
		return d
	}
	b.aliasMu.Lock()
	defer b.aliasMu.Unlock()
	if d := b.wtAlias[t].Load(); d != nil {
		return d
	}
	c := &b.csr[t]
	var pool []int32
	var ws []float64
	for i := range b.local {
		sum := 0.0
		for _, w := range c.wts[c.offs[i]:c.offs[i+1]] {
			if w > 0 {
				sum += w
			}
		}
		if sum > 0 {
			pool = append(pool, int32(i))
			ws = append(ws, sum)
		}
	}
	d := &baseDegree{al: sampling.NewAlias(ws), pool: pool}
	b.wtAlias[t].Store(d)
	return d
}
