package version

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/sampling"
)

// benchGraph builds the same preferential-attachment graph shape the
// cluster benchmarks use, plus a version store holding it.
func benchGraph(n int) (*graph.Graph, *Store) {
	rng := rand.New(rand.NewSource(9))
	b := graph.NewBuilder(graph.SimpleSchema(), true)
	b.AddVertices(0, n)
	targets := []graph.ID{0, 1}
	b.AddEdge(1, 0, 0, 1)
	for v := graph.ID(2); v < graph.ID(n); v++ {
		for e := 0; e < 3; e++ {
			dst := targets[rng.Intn(len(targets))]
			if dst != v {
				b.AddEdge(v, dst, 0, 1+rng.Float64())
				targets = append(targets, dst, v)
			}
		}
	}
	g := b.Finalize()
	s := NewStore(1)
	for v := 0; v < n; v++ {
		s.AddVertex(graph.ID(v), g.VertexAttr(graph.ID(v)))
	}
	for v := 0; v < n; v++ {
		ns := g.OutNeighbors(graph.ID(v), 0)
		ws := g.OutWeights(graph.ID(v), 0)
		for i, u := range ns {
			s.AddEdge(graph.ID(v), u, 0, ws[i])
		}
	}
	s.Seal()
	return g, s
}

// BenchmarkVersionedSample compares one fixed-width uniform sampling sweep
// (batch 256, width 5, the shape of a mini-batch hop) through a head-epoch
// version.View against the PR 1 unversioned path (raw CSR slices via
// graph.OutNeighbors). Both must be 0 allocs/op; the versioned head read
// adds one overlay map probe per vertex once any update epoch exists, and
// nothing at all on a store with no updates. /weighted compares the
// epoch-stable base AliasIndex draw against the unversioned AliasIndex.
func BenchmarkVersionedSample(b *testing.B) {
	const n, width = 2000, 5
	g, s := benchGraph(n)
	batch := make([]graph.ID, 256)
	brng := rand.New(rand.NewSource(3))
	for i := range batch {
		batch[i] = graph.ID(brng.Intn(n))
	}
	dst := make([]graph.ID, len(batch)*width)

	b.Run("unversioned", func(b *testing.B) {
		rng := sampling.NewRng(1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			o := 0
			for _, x := range batch {
				ns := g.OutNeighbors(x, 0)
				if len(ns) == 0 {
					for k := 0; k < width; k++ {
						dst[o] = x
						o++
					}
					continue
				}
				for k := 0; k < width; k++ {
					dst[o] = ns[rng.Intn(len(ns))]
					o++
				}
			}
		}
	})
	sampleView := func(b *testing.B, view View) {
		rng := sampling.NewRng(1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			o := 0
			for _, x := range batch {
				ns, _, _ := view.Neighbors(x, 0)
				if len(ns) == 0 {
					for k := 0; k < width; k++ {
						dst[o] = x
						o++
					}
					continue
				}
				for k := 0; k < width; k++ {
					dst[o] = ns[rng.Intn(len(ns))]
					o++
				}
			}
		}
	}
	b.Run("head/no-updates", func(b *testing.B) {
		sampleView(b, s.HeadView())
	})
	b.Run("head/after-updates", func(b *testing.B) {
		// 32 update epochs touching a few vertices each: the head view now
		// carries an overlay, costing one map probe per untouched vertex.
		for e := 0; e < 32; e++ {
			if _, _, _, _, err := s.Append(Delta{Add: []EdgeOp{{Src: graph.ID(e), Dst: graph.ID(e + 1), Type: 0, Weight: 1}}}); err != nil {
				b.Fatal(err)
			}
		}
		sampleView(b, s.HeadView())
	})
	b.Run("weighted/unversioned", func(b *testing.B) {
		ai := sampling.NewAliasIndex(g, 0)
		rng := sampling.NewRng(1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			o := 0
			for _, x := range batch {
				ns := g.OutNeighbors(x, 0)
				for k := 0; k < width; k++ {
					if d := ai.Draw(x, rng); d >= 0 {
						dst[o] = ns[d]
					} else {
						dst[o] = x
					}
					o++
				}
			}
		}
	})
	b.Run("weighted/head", func(b *testing.B) {
		rng := sampling.NewRng(1)
		view := s.HeadView()
		ai := view.AliasIndex(0) // resolved once per request, like the server
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			o := 0
			for _, x := range batch {
				ns, ws, slot, touched, _ := view.NeighborsSlot(x, 0)
				for k := 0; k < width; k++ {
					d := -1
					if touched {
						d = WeightedDraw(ws, rng)
					} else {
						d = ai.Draw(graph.ID(slot), rng)
					}
					if d >= 0 {
						dst[o] = ns[d]
					} else {
						dst[o] = x
					}
					o++
				}
			}
		}
	})
}

// BenchmarkCompact measures the steady-state cost of overlay compaction
// under a continuous update stream: each iteration applies one small update
// epoch and then folds the retention floor into a fresh base (CSR rebuild
// over the whole shard plus stamp-pruned rebasing of the retained ring).
// The head-overlay entry count is reported so regressions in the fold's
// memory bound are visible, not just its wall clock.
func BenchmarkCompact(b *testing.B) {
	const n = 2000
	_, s := benchGraph(n)
	// Pre-grow past the retention window so every iteration has a floor to
	// fold.
	for e := 0; e < DefaultRetain+2; e++ {
		if _, _, _, _, err := s.Append(Delta{Add: []EdgeOp{{Src: graph.ID(e % n), Dst: graph.ID((e + 1) % n), Type: 0, Weight: 1}}}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, _, err := s.Append(Delta{Add: []EdgeOp{{Src: graph.ID(i % n), Dst: graph.ID((i + 3) % n), Type: 0, Weight: 1}}}); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Compact(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	ov := s.Overlay()
	b.ReportMetric(float64(ov.AdjEntries), "headOverlayEntries")
	if ov.AdjEntries > 2*DefaultRetain {
		b.Fatalf("compaction failed to bound the head overlay: %d entries", ov.AdjEntries)
	}
}
