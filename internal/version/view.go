package version

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/sampling"
)

// View is a read handle on one epoch of a Store: the base snapshot that
// epoch pairs with plus its (possibly nil) overlay. It is a value (no
// allocation to create) and reads lock-free: bases and installed overlays
// are immutable, so a View resolved by At stays consistent forever — across
// concurrent Appends, ring evictions, and even Compact swapping the store's
// current base. Views are safe for concurrent use.
type View struct {
	s     *Store
	b     *baseState
	epoch uint64
	ov    *overlay
}

// Epoch reports which epoch the view reads.
func (v View) Epoch() uint64 { return v.epoch }

// AttrEpoch reports the most recent epoch <= the view's that rewrote any
// attribute row (0 when attributes are still the base's). Attribute caches
// invalidate when it advances.
func (v View) AttrEpoch() uint64 {
	if v.ov == nil {
		return 0
	}
	return v.ov.attrEpoch
}

// Owns reports whether the store holds vertex x.
func (v View) Owns(x graph.ID) bool { return v.b.slot(x) >= 0 }

// Neighbors returns x's out-neighbors and weights under edge type t at the
// view's epoch. The slices alias immutable storage (base CSR or an overlay
// entry) and must be treated as read-only. ok is false when x is not local.
func (v View) Neighbors(x graph.ID, t graph.EdgeType) (ns []graph.ID, ws []float64, ok bool) {
	slot := v.b.slot(x)
	if slot < 0 {
		return nil, nil, false
	}
	if v.ov != nil {
		if l, touched := v.ov.adj[akey{x, t}]; touched {
			return l.nbr, l.wts, true
		}
	}
	c := &v.b.csr[t]
	lo, hi := c.offs[slot], c.offs[slot+1]
	return c.nbr[lo:hi], c.wts[lo:hi], true
}

// NeighborsSlot is Neighbors fused with the per-vertex metadata a sampling
// loop needs: the base slot of x (for AliasIndex draws) and whether the
// returned list came from an overlay (touched), in which case the base
// alias does not apply and draws must weigh the returned ws directly (see
// WeightedDraw). Resolving once per vertex and drawing many times keeps the
// per-draw cost identical to the unversioned engine.
func (v View) NeighborsSlot(x graph.ID, t graph.EdgeType) (ns []graph.ID, ws []float64, slot int, touched, ok bool) {
	slot = v.b.slot(x)
	if slot < 0 {
		return nil, nil, -1, false, false
	}
	if v.ov != nil {
		if l, hit := v.ov.adj[akey{x, t}]; hit {
			return l.nbr, l.wts, slot, true, true
		}
	}
	c := &v.b.csr[t]
	lo, hi := c.offs[slot], c.offs[slot+1]
	return c.nbr[lo:hi], c.wts[lo:hi], slot, false, true
}

// ChangedAt reports the epoch at which x's type-t adjacency, as served at
// this view, was installed: the overlay entry's stamp for touched vertices,
// the base's fold stamp for vertices a compaction absorbed, and 0 for lists
// that predate every update. Serving layers stamp replies with it (the
// Since field) so a cache entry's claimed validity interval [since, fetch
// epoch] never spans an update.
func (v View) ChangedAt(x graph.ID, t graph.EdgeType) uint64 {
	if v.ov != nil {
		if l, touched := v.ov.adj[akey{x, t}]; touched {
			return l.epoch
		}
	}
	return v.b.since[akey{x, t}]
}

// AttrChangedAt reports the epoch at which x's attribute row, as served at
// this view, was installed: the overlay row's stamp for rewritten rows, the
// base's fold stamp for rows a compaction absorbed, and 0 for rows that
// predate every update. The attribute analogue of ChangedAt — serving
// layers stamp attr replies with it so an embedding cache's validity
// interval covers feature changes too, not just adjacency.
func (v View) AttrChangedAt(x graph.ID) uint64 {
	if v.ov != nil {
		if a, ok := v.ov.attrs[x]; ok {
			return a.epoch
		}
	}
	return v.b.attrSince[x]
}

// AliasIndex returns the slot-indexed weighted-draw index over THIS view's
// base (built lazily, immutable, shared). It is valid for every vertex
// whose NeighborsSlot reports touched == false; after a compaction, views
// of different epochs may pair with different bases, which is why pinned
// serving must resolve the index through the view rather than the store.
func (v View) AliasIndex(t graph.EdgeType) *sampling.AliasIndex {
	return v.b.aliasIndex(t)
}

// WeightedDraw draws an index of ws proportionally to weight by cumulative
// scan — the slow path for overlay-touched vertices, whose base alias entry
// no longer applies. Returns -1 on an empty list.
func WeightedDraw(ws []float64, rng *sampling.Rng) int {
	return weightedScan(ws, rng)
}

// Touched reports whether x's type-t adjacency at this view differs from
// its base (i.e. was rewritten by some epoch the base does not cover).
// Untouched vertices may be served by base-built indexes.
func (v View) Touched(x graph.ID, t graph.EdgeType) bool {
	if v.ov == nil {
		return false
	}
	_, touched := v.ov.adj[akey{x, t}]
	return touched
}

// Attr returns x's attribute row at the view's epoch.
func (v View) Attr(x graph.ID) ([]float64, bool) {
	if v.ov != nil {
		if a, ok := v.ov.attrs[x]; ok {
			return a.row, true
		}
	}
	a, ok := v.b.attrs[x]
	return a, ok
}

// EdgeCount reports the number of local type-t edges at the view's epoch.
func (v View) EdgeCount(t graph.EdgeType) int64 {
	if v.ov != nil {
		return v.ov.edgeCount[t]
	}
	return v.b.edges[t]
}

// EdgeWeightSum reports the total type-t edge weight at the view's epoch;
// the distributed weighted TRAVERSE splits batches across shards with it.
func (v View) EdgeWeightSum(t graph.EdgeType) float64 {
	if v.ov != nil {
		return v.ov.weightSum[t]
	}
	return v.b.weights[t]
}

// EdgeCounts appends the per-type local edge totals at the view's epoch.
func (v View) EdgeCounts(dst []int64) []int64 {
	for t := 0; t < v.s.numTypes; t++ {
		dst = append(dst, v.EdgeCount(graph.EdgeType(t)))
	}
	return dst
}

// EdgeWeightSums appends the per-type local edge-weight totals at the
// view's epoch.
func (v View) EdgeWeightSums(dst []float64) []float64 {
	for t := 0; t < v.s.numTypes; t++ {
		dst = append(dst, v.EdgeWeightSum(graph.EdgeType(t)))
	}
	return dst
}

// DrawNeighbor draws one out-edge slot of x under t proportionally to edge
// weight, returning its index into the view's neighbor list (-1 when x has
// no type-t out-edges). Untouched vertices draw O(1) through the immutable
// base AliasIndex; touched vertices pay a linear scan of their overlay
// weights — the per-vertex invalidation scope of an update.
func (v View) DrawNeighbor(x graph.ID, t graph.EdgeType, rng *sampling.Rng) int {
	slot := v.b.slot(x)
	if slot < 0 {
		return -1
	}
	if v.ov != nil {
		if l, touched := v.ov.adj[akey{x, t}]; touched {
			return weightedScan(l.wts, rng)
		}
	}
	return v.b.aliasIndex(t).Draw(graph.ID(slot), rng)
}

// weightedScan draws an index proportionally to ws by cumulative scan
// (uniform when the weights sum to zero); -1 on an empty list.
func weightedScan(ws []float64, rng *sampling.Rng) int {
	if len(ws) == 0 {
		return -1
	}
	total := 0.0
	for _, w := range ws {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return rng.Intn(len(ws))
	}
	x := rng.Float64() * total
	for i, w := range ws {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(ws) - 1
}

// edgeSampler draws local edges at one overlay's epoch by mixing two
// regions: the touched vertices' overlay lists and the untouched remainder
// of the base edge set (rejection draws through the immutable base degree
// or weight alias). It carries both the uniform (degree-mass) and the
// weight-proportional mixture, built lazily once per (overlay, edge type)
// against the overlay's own base; immutable afterwards.
type edgeSampler struct {
	b          *baseState
	touched    []graph.ID      // overlay vertices with current degree > 0
	touchedAl  *sampling.Alias // over touched, weighted by overlay degree
	overlaySum int64           // total overlay-region edges
	baseRem    int64           // base edges on untouched vertices
	// Weight-proportional mixture.
	touchedW    []graph.ID      // overlay vertices with positive weight mass
	touchedWAl  *sampling.Alias // over touchedW, weighted by list weight sum
	overlayWSum float64         // total overlay-region edge weight
	baseWRem    float64         // base edge weight on untouched vertices
	isTouched   map[int32]bool  // base slots superseded by the overlay
}

func (ov *overlay) sampler(t graph.EdgeType) *edgeSampler {
	ov.smu.Lock()
	defer ov.smu.Unlock()
	if es := ov.samplers[t]; es != nil {
		return es
	}
	b := ov.base
	es := &edgeSampler{b: b, isTouched: make(map[int32]bool)}
	var ws, wws []float64
	baseTouchedDeg := int64(0)
	baseTouchedW := 0.0
	c := &b.csr[t]
	for k, l := range ov.adj {
		if k.t != t {
			continue
		}
		slot := b.slot(k.v)
		es.isTouched[int32(slot)] = true
		baseTouchedDeg += c.offs[slot+1] - c.offs[slot]
		for _, w := range c.wts[c.offs[slot]:c.offs[slot+1]] {
			if w > 0 {
				baseTouchedW += w
			}
		}
		if len(l.nbr) > 0 {
			es.touched = append(es.touched, k.v)
			ws = append(ws, float64(len(l.nbr)))
			es.overlaySum += int64(len(l.nbr))
		}
		wsum := 0.0
		for _, w := range l.wts {
			if w > 0 {
				wsum += w
			}
		}
		if wsum > 0 {
			es.touchedW = append(es.touchedW, k.v)
			wws = append(wws, wsum)
			es.overlayWSum += wsum
		}
	}
	// Deterministic touched order for reproducible draws at a fixed seed.
	sortTouched(es.touched, ws)
	sortTouched(es.touchedW, wws)
	es.touchedAl = sampling.NewAlias(ws)
	es.touchedWAl = sampling.NewAlias(wws)
	es.baseRem = b.edges[t] - baseTouchedDeg
	// The base's positive-weight mass is precomputed (Seal/Compact), so the
	// remainder costs O(touched), not an O(E) rescan per overlay.
	es.baseWRem = b.weightsPos[t] - baseTouchedW
	ov.samplers[t] = es
	return es
}

// sortTouched co-sorts the touched vertices (and their weights) ascending.
// The touched set is cumulative and can grow large under a long update
// stream, so this must stay O(n log n).
func sortTouched(vs []graph.ID, ws []float64) {
	sort.Sort(&touchedSorter{vs: vs, ws: ws})
}

type touchedSorter struct {
	vs []graph.ID
	ws []float64
}

func (t *touchedSorter) Len() int           { return len(t.vs) }
func (t *touchedSorter) Less(i, j int) bool { return t.vs[i] < t.vs[j] }
func (t *touchedSorter) Swap(i, j int) {
	t.vs[i], t.vs[j] = t.vs[j], t.vs[i]
	t.ws[i], t.ws[j] = t.ws[j], t.ws[i]
}

// SampleEdge draws one type-t edge uniformly over the view's local edge
// set. ok is false when the view has no type-t edges. For views whose
// overlay holds no type-t entries the draw consumes exactly the random
// stream of a base-epoch draw, so updates confined to other edge types do
// not perturb a fixed-seed TRAVERSE sequence.
func (v View) SampleEdge(t graph.EdgeType, rng *sampling.Rng) (src, dst graph.ID, w float64, ok bool) {
	var es *edgeSampler
	if v.ov != nil {
		es = v.ov.sampler(t)
		if es.overlaySum == 0 && len(es.isTouched) == 0 {
			es = nil // overlay untouched for t: identical to a base draw
		}
	}
	if es == nil {
		return v.drawBaseEdge(v.b, t, rng, nil)
	}
	total := es.overlaySum + es.baseRem
	if total <= 0 {
		return 0, 0, 0, false
	}
	if es.overlaySum > 0 && int64(rng.Float64()*float64(total)) < es.overlaySum {
		x := es.touched[es.touchedAl.DrawRng(rng)]
		ns, ws, _ := v.Neighbors(x, t)
		i := rng.Intn(len(ns))
		return x, ns[i], ws[i], true
	}
	return v.drawBaseEdge(es.b, t, rng, es.isTouched)
}

// SampleEdgeWeighted draws one type-t edge proportionally to edge weight
// over the view's local edge set — the server side of the distributed
// weighted TRAVERSE. ok is false when the view carries no positive type-t
// weight. Untouched vertices draw through the base weight table plus the
// per-vertex AliasIndex (O(1)); touched vertices mix in by their exact
// overlay weight mass.
func (v View) SampleEdgeWeighted(t graph.EdgeType, rng *sampling.Rng) (src, dst graph.ID, w float64, ok bool) {
	var es *edgeSampler
	if v.ov != nil {
		es = v.ov.sampler(t)
		if es.overlayWSum == 0 && len(es.isTouched) == 0 {
			es = nil
		}
	}
	if es == nil {
		return v.drawBaseEdgeWeighted(v.b, t, rng, nil)
	}
	total := es.overlayWSum + es.baseWRem
	if total <= 0 {
		return 0, 0, 0, false
	}
	if es.overlayWSum > 0 && rng.Float64()*total < es.overlayWSum {
		x := es.touchedW[es.touchedWAl.DrawRng(rng)]
		ns, ws, _ := v.Neighbors(x, t)
		i := weightedScan(ws, rng)
		if i < 0 {
			return 0, 0, 0, false
		}
		return x, ns[i], ws[i], true
	}
	return v.drawBaseEdgeWeighted(es.b, t, rng, es.isTouched)
}

// drawBaseEdge draws uniformly over b's base edge set, skipping slots in
// skip (whose base edges are superseded by an overlay). Rejection is
// bounded; after that a deterministic linear fallback scans for the first
// eligible slot, trading uniformity for termination in the pathological
// case where overlays supersede nearly all base mass.
func (v View) drawBaseEdge(b *baseState, t graph.EdgeType, rng *sampling.Rng, skip map[int32]bool) (src, dst graph.ID, w float64, ok bool) {
	d := b.degreeTable(t)
	al, pool := d.al, d.pool
	if al.Len() == 0 {
		return 0, 0, 0, false
	}
	c := &b.csr[t]
	for tries := 0; tries < 64; tries++ {
		slot := pool[al.DrawRng(rng)]
		if skip != nil && skip[slot] {
			continue
		}
		lo, hi := c.offs[slot], c.offs[slot+1]
		i := lo + int64(rng.Intn(int(hi-lo)))
		return b.local[slot], c.nbr[i], c.wts[i], true
	}
	for _, slot := range pool {
		if skip != nil && skip[slot] {
			continue
		}
		lo, hi := c.offs[slot], c.offs[slot+1]
		i := lo + int64(rng.Intn(int(hi-lo)))
		return b.local[slot], c.nbr[i], c.wts[i], true
	}
	return 0, 0, 0, false
}

// drawBaseEdgeWeighted draws weight-proportionally over b's base edge set,
// skipping overlay-superseded slots: a slot from the weight table, then a
// weighted adjacency entry through the per-vertex alias. Same bounded
// rejection + linear fallback as the uniform path.
func (v View) drawBaseEdgeWeighted(b *baseState, t graph.EdgeType, rng *sampling.Rng, skip map[int32]bool) (src, dst graph.ID, w float64, ok bool) {
	d := b.weightTable(t)
	al, pool := d.al, d.pool
	if al.Len() == 0 {
		return 0, 0, 0, false
	}
	ai := b.aliasIndex(t)
	c := &b.csr[t]
	pick := func(slot int32) (graph.ID, graph.ID, float64, bool) {
		i := ai.Draw(graph.ID(slot), rng)
		if i < 0 {
			return 0, 0, 0, false
		}
		lo := c.offs[slot]
		return b.local[slot], c.nbr[lo+int64(i)], c.wts[lo+int64(i)], true
	}
	for tries := 0; tries < 64; tries++ {
		slot := pool[al.DrawRng(rng)]
		if skip != nil && skip[slot] {
			continue
		}
		return pick(slot)
	}
	for _, slot := range pool {
		if skip != nil && skip[slot] {
			continue
		}
		return pick(slot)
	}
	return 0, 0, 0, false
}
