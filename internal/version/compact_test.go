package version

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/sampling"
)

// shadow is an oracle: the adjacency and attrs a given epoch must serve,
// replayed independently of the store's overlay/compaction machinery.
type shadow struct {
	adj   map[akey][]graph.ID
	attrs map[graph.ID][]float64
}

func snapshotShadow(adj map[akey][]graph.ID, attrs map[graph.ID][]float64) shadow {
	s := shadow{adj: make(map[akey][]graph.ID), attrs: make(map[graph.ID][]float64)}
	for k, ns := range adj {
		s.adj[k] = append([]graph.ID(nil), ns...)
	}
	for v, a := range attrs {
		s.attrs[v] = append([]float64(nil), a...)
	}
	return s
}

func checkAgainstShadow(t *testing.T, view View, sh shadow, vertices []graph.ID, nt int) {
	t.Helper()
	for _, v := range vertices {
		for et := 0; et < nt; et++ {
			ns, _, ok := view.Neighbors(v, graph.EdgeType(et))
			if !ok {
				t.Fatalf("epoch %d: vertex %d not owned", view.Epoch(), v)
			}
			want := sh.adj[akey{v, graph.EdgeType(et)}]
			if len(ns) != len(want) {
				t.Fatalf("epoch %d: neighbors(%d,%d) = %v, want %v", view.Epoch(), v, et, ns, want)
			}
			for i := range want {
				if ns[i] != want[i] {
					t.Fatalf("epoch %d: neighbors(%d,%d) = %v, want %v", view.Epoch(), v, et, ns, want)
				}
			}
		}
		a, ok := view.Attr(v)
		if !ok || a[0] != sh.attrs[v][0] {
			t.Fatalf("epoch %d: attr(%d) = %v ok=%v, want %v", view.Epoch(), v, a, ok, sh.attrs[v])
		}
	}
}

// TestCompactLongStreamBoundedWithPinnedReader is the acceptance test for
// delta compaction: a long update stream (>= 4x DefaultRetain epochs) with
// periodic Compact calls keeps (a) every retained epoch and every LEASED
// epoch readable and byte-identical to an independently replayed oracle —
// no ErrEvicted for pinned readers, even pins far behind the floor — and
// (b) the head overlay's cumulative entry count bounded by the retention
// window's touched set instead of growing monotonically.
func TestCompactLongStreamBoundedWithPinnedReader(t *testing.T) {
	const n = 64
	s := NewStore(2) // DefaultRetain
	vertices := make([]graph.ID, n)
	adj := make(map[akey][]graph.ID)
	attrs := make(map[graph.ID][]float64)
	for i := 0; i < n; i++ {
		v := graph.ID(i)
		vertices[i] = v
		attrs[v] = []float64{float64(i)}
		s.AddVertex(v, attrs[v])
	}
	for i := 0; i < n; i++ {
		v, u := graph.ID(i), graph.ID((i+1)%n)
		s.AddEdge(v, u, 0, 1)
		adj[akey{v, 0}] = append(adj[akey{v, 0}], u)
	}
	s.Seal()

	shadows := map[uint64]shadow{0: snapshotShadow(adj, attrs)}

	// Pin an epoch early; it will fall far behind the floor.
	const pinned = uint64(3)
	leasedViewTaken := false
	var leasedView View

	steps := 4*DefaultRetain + 9
	for e := 1; e <= steps; e++ {
		// Each epoch touches a rotating pair of vertices: one edge add, one
		// remove, one attr rewrite.
		v := graph.ID(e % n)
		u := graph.ID((e * 7) % n)
		d := Delta{
			Add:     []EdgeOp{{Src: v, Dst: u, Type: 0, Weight: float64(e)}},
			SetAttr: []AttrOp{{V: u, Attr: []float64{float64(1000 + e)}}},
		}
		if e%3 == 0 {
			w := graph.ID((e + 1) % n)
			if ns := adj[akey{w, 0}]; len(ns) > 0 {
				d.Remove = []EdgeOp{{Src: w, Dst: ns[0], Type: 0}}
			}
		}
		epoch, _, _, _, err := s.Append(d)
		if err != nil {
			t.Fatal(err)
		}
		if epoch != uint64(e) {
			t.Fatalf("epoch = %d, want %d", epoch, e)
		}
		// Replay into the oracle.
		adj[akey{v, 0}] = append(adj[akey{v, 0}], u)
		attrs[u] = []float64{float64(1000 + e)}
		if len(d.Remove) > 0 {
			k := akey{d.Remove[0].Src, 0}
			for i, x := range adj[k] {
				if x == d.Remove[0].Dst {
					adj[k] = append(append([]graph.ID(nil), adj[k][:i]...), adj[k][i+1:]...)
					break
				}
			}
		}
		shadows[uint64(e)] = snapshotShadow(adj, attrs)

		if uint64(e) == pinned {
			if err := s.Lease(pinned); err != nil {
				t.Fatal(err)
			}
			lv, err := s.At(pinned)
			if err != nil {
				t.Fatal(err)
			}
			leasedView, leasedViewTaken = lv, true
		}
		if e%5 == 0 {
			if _, err := s.Compact(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if s.Compactions() == 0 {
		t.Fatal("no compaction ever installed a new base")
	}
	if be := s.BaseEpoch(); be == 0 || be > s.Floor() {
		t.Fatalf("base epoch %d outside (0, floor %d]", be, s.Floor())
	}

	// Resident epochs: the retain window plus the one leased epoch.
	if ov := s.Overlay(); ov.Epochs > DefaultRetain+1 {
		t.Fatalf("%d resident overlays, want <= retain+leased = %d", ov.Epochs, DefaultRetain+1)
	}
	// The head overlay's cumulative maps must be bounded by what the
	// retained window touched (2 adj + 1 attr entries per epoch since the
	// base), not the whole stream's touched set.
	if ov := s.Overlay(); ov.AdjEntries > 3*DefaultRetain || ov.AttrEntries > 2*DefaultRetain {
		t.Fatalf("head overlay holds %d adj + %d attr entries after compaction", ov.AdjEntries, ov.AttrEntries)
	}

	// Every retained epoch reads exactly what the oracle says.
	for e := s.Floor(); e <= s.Head(); e++ {
		view, err := s.At(e)
		if err != nil {
			t.Fatalf("At(%d): %v", e, err)
		}
		checkAgainstShadow(t, view, shadows[e], vertices, 2)
	}
	// The leased epoch is far below the floor and must still be readable —
	// both through a fresh At and through the view resolved long ago.
	if pinned >= s.Floor() {
		t.Fatalf("test setup: pinned epoch %d not below floor %d", pinned, s.Floor())
	}
	view, err := s.At(pinned)
	if err != nil {
		t.Fatalf("leased epoch %d unreadable after compactions: %v", pinned, err)
	}
	checkAgainstShadow(t, view, shadows[pinned], vertices, 2)
	if !leasedViewTaken {
		t.Fatal("leased view never taken")
	}
	checkAgainstShadow(t, leasedView, shadows[pinned], vertices, 2)

	// Unleased epochs behind the floor are gone.
	if _, err := s.At(pinned + 1); !IsEvicted(err) {
		t.Fatalf("At(%d) = %v, want evicted", pinned+1, err)
	}
	// Releasing the lease drops the last below-floor epoch.
	s.Release(pinned)
	if _, err := s.At(pinned); !IsEvicted(err) {
		t.Fatalf("released epoch still readable: %v", err)
	}

	// Draw sanity on the compacted store: every sampled edge must exist in
	// the head oracle.
	head := s.HeadView()
	sh := shadows[s.Head()]
	rng := sampling.NewRng(11)
	for i := 0; i < 500; i++ {
		src, dst, _, ok := head.SampleEdge(0, rng)
		if !ok {
			t.Fatal("no edge drawn at head")
		}
		found := false
		for _, u := range sh.adj[akey{src, 0}] {
			if u == dst {
				found = true
			}
		}
		if !found {
			t.Fatalf("drew (%d,%d) not in head edge set", src, dst)
		}
	}
}

// TestCompactSinceStampsSurviveFold: after a fold, the base must still
// report the install epoch of folded lists (ChangedAt), so cache layers
// can never claim validity across an update the base absorbed.
func TestCompactSinceStampsSurviveFold(t *testing.T) {
	s := NewStoreRetain(1, 2)
	for v := graph.ID(0); v < 4; v++ {
		s.AddVertex(v, []float64{float64(v)})
	}
	s.AddEdge(0, 1, 0, 1)
	s.AddEdge(1, 2, 0, 1)
	s.Seal()

	// Epoch 1 rewrites vertex 0; epochs 2..5 touch vertex 1 only.
	mustAppend := func(d Delta) {
		t.Helper()
		if _, _, _, _, err := s.Append(d); err != nil {
			t.Fatal(err)
		}
	}
	mustAppend(Delta{Add: []EdgeOp{{Src: 0, Dst: 2, Type: 0, Weight: 1}}})
	for i := 0; i < 4; i++ {
		mustAppend(Delta{Add: []EdgeOp{{Src: 1, Dst: 3, Type: 0, Weight: 1}}})
	}
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if s.BaseEpoch() == 0 {
		t.Fatal("compaction did not advance the base")
	}
	head := s.HeadView()
	if got := head.ChangedAt(0, 0); got != 1 {
		t.Fatalf("ChangedAt(0) after fold = %d, want 1", got)
	}
	if got := head.ChangedAt(2, 0); got != 0 {
		t.Fatalf("ChangedAt(untouched 2) = %d, want 0", got)
	}
	if got := head.ChangedAt(1, 0); got != 5 {
		t.Fatalf("ChangedAt(1) = %d, want 5", got)
	}
}

// TestSampleEdgeWeightedProportions: weighted edge draws follow edge weight
// at every epoch — base-only, with an overlay mixing in a heavy touched
// vertex, and after a compaction folded the overlay into the base.
func TestSampleEdgeWeightedProportions(t *testing.T) {
	check := func(t *testing.T, v View, want map[[2]graph.ID]float64) {
		t.Helper()
		total := 0.0
		for _, w := range want {
			total += w
		}
		const draws = 40000
		rng := sampling.NewRng(9)
		counts := make(map[[2]graph.ID]int)
		for i := 0; i < draws; i++ {
			src, dst, _, ok := v.SampleEdgeWeighted(0, rng)
			if !ok {
				t.Fatal("no weighted edge drawn")
			}
			if _, legal := want[[2]graph.ID{src, dst}]; !legal {
				t.Fatalf("drew (%d,%d) outside the epoch's edge set", src, dst)
			}
			counts[[2]graph.ID{src, dst}]++
		}
		chi2 := 0.0
		for e, w := range want {
			exp := draws * w / total
			d := float64(counts[e]) - exp
			chi2 += d * d / exp
		}
		// p=0.001 critical values for df up to 5: stay below 20.5.
		if chi2 > 20.5 {
			t.Fatalf("chi-square %.2f; counts %v", chi2, counts)
		}
	}

	build := func() *Store {
		s := NewStoreRetain(1, 2)
		for v := graph.ID(0); v < 5; v++ {
			s.AddVertex(v, nil)
		}
		s.AddEdge(0, 1, 0, 1)
		s.AddEdge(0, 2, 0, 2)
		s.AddEdge(1, 2, 0, 3)
		s.AddEdge(2, 3, 0, 4)
		s.Seal()
		return s
	}

	t.Run("base", func(t *testing.T) {
		s := build()
		check(t, s.HeadView(), map[[2]graph.ID]float64{
			{0, 1}: 1, {0, 2}: 2, {1, 2}: 3, {2, 3}: 4,
		})
	})
	t.Run("overlay", func(t *testing.T) {
		s := build()
		if _, _, _, _, err := s.Append(Delta{Add: []EdgeOp{{Src: 3, Dst: 0, Type: 0, Weight: 10}}}); err != nil {
			t.Fatal(err)
		}
		check(t, s.HeadView(), map[[2]graph.ID]float64{
			{0, 1}: 1, {0, 2}: 2, {1, 2}: 3, {2, 3}: 4, {3, 0}: 10,
		})
	})
	t.Run("after-compact", func(t *testing.T) {
		s := build()
		if _, _, _, _, err := s.Append(Delta{Add: []EdgeOp{{Src: 3, Dst: 0, Type: 0, Weight: 10}}}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if _, _, _, _, err := s.Append(Delta{Add: []EdgeOp{{Src: 4, Dst: 0, Type: 0, Weight: 1}}, Remove: []EdgeOp{{Src: 4, Dst: 0, Type: 0}}}); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := s.Compact(); err != nil {
			t.Fatal(err)
		}
		if s.BaseEpoch() == 0 {
			t.Fatal("no fold happened")
		}
		check(t, s.HeadView(), map[[2]graph.ID]float64{
			{0, 1}: 1, {0, 2}: 2, {1, 2}: 3, {2, 3}: 4, {3, 0}: 10,
		})
	})
}

// TestEdgeWeightSumsTrackEpochs: the per-type weight sums (the distributed
// weighted TRAVERSE's split mass) follow adds, removes and compactions.
func TestEdgeWeightSumsTrackEpochs(t *testing.T) {
	s := buildStore(8) // type-0 weights: 1+2+1+1 = 5, type-1: 5
	if got := s.HeadView().EdgeWeightSum(0); got != 5 {
		t.Fatalf("base weight sum = %v, want 5", got)
	}
	if got := s.HeadView().EdgeWeightSum(1); got != 5 {
		t.Fatalf("base type-1 weight sum = %v, want 5", got)
	}
	if _, _, _, _, err := s.Append(Delta{
		Add:    []EdgeOp{{Src: 0, Dst: 3, Type: 0, Weight: 7}},
		Remove: []EdgeOp{{Src: 0, Dst: 2, Type: 0}}, // weight 2
	}); err != nil {
		t.Fatal(err)
	}
	if got := s.HeadView().EdgeWeightSum(0); got != 10 {
		t.Fatalf("post-update weight sum = %v, want 10", got)
	}
	v0, err := s.At(0)
	if err != nil {
		t.Fatal(err)
	}
	if got := v0.EdgeWeightSum(0); got != 5 {
		t.Fatalf("epoch-0 weight sum = %v, want 5", got)
	}
}

// TestAttrSinceStampsSurviveFold is the attribute analogue of the adjacency
// since-stamp test: AttrChangedAt must report the exact install epoch of a
// row through overlays AND through a compaction that folds the row into the
// base.
func TestAttrSinceStampsSurviveFold(t *testing.T) {
	s := NewStoreRetain(1, 2)
	for v := graph.ID(0); v < 4; v++ {
		s.AddVertex(v, []float64{float64(v)})
	}
	s.AddEdge(0, 1, 0, 1)
	s.Seal()

	mustAppend := func(d Delta) {
		t.Helper()
		if _, _, _, _, err := s.Append(d); err != nil {
			t.Fatal(err)
		}
	}
	// Epoch 1 rewrites vertex 0's row; epochs 2..5 rewrite vertex 1's.
	mustAppend(Delta{SetAttr: []AttrOp{{V: 0, Attr: []float64{10}}}})
	for i := 0; i < 4; i++ {
		mustAppend(Delta{SetAttr: []AttrOp{{V: 1, Attr: []float64{float64(20 + i)}}}})
	}

	head := s.HeadView()
	if got := head.AttrChangedAt(0); got != 1 {
		t.Fatalf("overlay AttrChangedAt(0) = %d, want 1", got)
	}
	if got := head.AttrChangedAt(1); got != 5 {
		t.Fatalf("overlay AttrChangedAt(1) = %d, want 5", got)
	}
	if got := head.AttrChangedAt(2); got != 0 {
		t.Fatalf("AttrChangedAt(untouched 2) = %d, want 0", got)
	}

	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if s.BaseEpoch() == 0 {
		t.Fatal("compaction did not advance the base")
	}
	head = s.HeadView()
	if got := head.AttrChangedAt(0); got != 1 {
		t.Fatalf("AttrChangedAt(0) after fold = %d, want 1", got)
	}
	if got := head.AttrChangedAt(1); got != 5 {
		t.Fatalf("AttrChangedAt(1) after fold = %d, want 5", got)
	}
	if got := head.AttrChangedAt(2); got != 0 {
		t.Fatalf("AttrChangedAt(untouched 2) after fold = %d, want 0", got)
	}
	// The rows themselves folded correctly.
	if a, ok := head.Attr(0); !ok || a[0] != 10 {
		t.Fatalf("Attr(0) after fold = %v %v", a, ok)
	}
	if a, ok := head.Attr(1); !ok || a[0] != 23 {
		t.Fatalf("Attr(1) after fold = %v %v", a, ok)
	}
}
