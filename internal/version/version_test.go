package version

import (
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/sampling"
)

// buildStore seals a small 2-type store: vertices 0..3, type-0 edges
// 0->{1,2}, 1->{2}, 2->{3}, type-1 edge 0->3.
func buildStore(retain int) *Store {
	s := NewStoreRetain(2, retain)
	for v := graph.ID(0); v < 4; v++ {
		s.AddVertex(v, []float64{float64(v)})
	}
	s.AddEdge(0, 1, 0, 1)
	s.AddEdge(0, 2, 0, 2)
	s.AddEdge(1, 2, 0, 1)
	s.AddEdge(2, 3, 0, 1)
	s.AddEdge(0, 3, 1, 5)
	s.Seal()
	return s
}

func neighbors(t *testing.T, v View, x graph.ID, et graph.EdgeType) []graph.ID {
	t.Helper()
	ns, _, ok := v.Neighbors(x, et)
	if !ok {
		t.Fatalf("vertex %d not owned", x)
	}
	return ns
}

func TestViewsAreIsolatedAcrossEpochs(t *testing.T) {
	s := buildStore(8)
	v0 := s.HeadView()
	if got := neighbors(t, v0, 0, 0); len(got) != 2 {
		t.Fatalf("base neighbors(0) = %v", got)
	}

	epoch, added, removed, _, err := s.Append(Delta{
		Add:    []EdgeOp{{Src: 0, Dst: 3, Type: 0, Weight: 1}},
		Remove: []EdgeOp{{Src: 0, Dst: 1, Type: 0}},
	})
	if err != nil || epoch != 1 || added != 1 || removed != 1 {
		t.Fatalf("append: epoch=%d added=%d removed=%d err=%v", epoch, added, removed, err)
	}

	// The old view still reads the base: copy-on-write, no in-place rewrite.
	if got := neighbors(t, v0, 0, 0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("epoch-0 view changed after append: %v", got)
	}
	v1 := s.HeadView()
	got := neighbors(t, v1, 0, 0)
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("epoch-1 neighbors(0) = %v, want [2 3]", got)
	}
	// Untouched vertices fall through to the base at every epoch.
	if got := neighbors(t, v1, 1, 0); len(got) != 1 || got[0] != 2 {
		t.Fatalf("epoch-1 neighbors(1) = %v", got)
	}
	if v1.Touched(1, 0) || !v1.Touched(0, 0) {
		t.Fatal("touched set wrong")
	}
	// Edge counts follow the epoch.
	if v0.EdgeCount(0) != 4 || v1.EdgeCount(0) != 4 || v1.EdgeCount(1) != 1 {
		t.Fatalf("edge counts: v0=%d v1=%d/%d", v0.EdgeCount(0), v1.EdgeCount(0), v1.EdgeCount(1))
	}
}

func TestAppendAllOrNothing(t *testing.T) {
	s := buildStore(8)
	// Vertex 9 is not local: the whole batch must be rejected, including the
	// legal first addition, and the epoch must not advance.
	_, added, removed, set, err := s.Append(Delta{
		Add: []EdgeOp{
			{Src: 0, Dst: 3, Type: 0, Weight: 1},
			{Src: 9, Dst: 0, Type: 0, Weight: 1},
		},
	})
	if err == nil {
		t.Fatal("expected ownership error")
	}
	if added+removed+set != 0 {
		t.Fatalf("partial apply reported: %d/%d/%d", added, removed, set)
	}
	if s.Head() != 0 {
		t.Fatalf("epoch advanced to %d on failed batch", s.Head())
	}
	if got := neighbors(t, s.HeadView(), 0, 0); len(got) != 2 {
		t.Fatalf("failed batch leaked edges: %v", got)
	}

	// Idempotent removals and empty deltas do not advance the epoch.
	if _, _, _, _, err := s.Append(Delta{Remove: []EdgeOp{{Src: 0, Dst: 99, Type: 0}}}); err != nil {
		t.Fatal(err)
	}
	if s.Head() != 0 {
		t.Fatal("no-op delta advanced the epoch")
	}
}

func TestAttrOverlaysAndAttrEpoch(t *testing.T) {
	s := buildStore(8)
	if _, _, _, set, err := s.Append(Delta{Add: []EdgeOp{{Src: 1, Dst: 3, Type: 0, Weight: 1}}}); err != nil || set != 0 {
		t.Fatal(err)
	}
	if got := s.HeadView().AttrEpoch(); got != 0 {
		t.Fatalf("attr epoch after edge-only delta = %d", got)
	}
	if _, _, _, set, err := s.Append(Delta{SetAttr: []AttrOp{{V: 2, Attr: []float64{42}}}}); err != nil || set != 1 {
		t.Fatalf("set=%d err=%v", set, err)
	}
	head := s.HeadView()
	if head.AttrEpoch() != 2 {
		t.Fatalf("attr epoch = %d, want 2", head.AttrEpoch())
	}
	if a, ok := head.Attr(2); !ok || a[0] != 42 {
		t.Fatalf("attr(2) = %v", a)
	}
	if a, ok := head.Attr(3); !ok || a[0] != 3 {
		t.Fatalf("untouched attr(3) = %v", a)
	}
	// The older epoch still serves the original row.
	v1, err := s.At(1)
	if err != nil {
		t.Fatal(err)
	}
	if a, _ := v1.Attr(2); a[0] != 2 {
		t.Fatalf("epoch-1 attr(2) = %v", a)
	}
	// A later edge-only epoch keeps the attr epoch sticky.
	if _, _, _, _, err := s.Append(Delta{Add: []EdgeOp{{Src: 1, Dst: 0, Type: 0, Weight: 1}}}); err != nil {
		t.Fatal(err)
	}
	if got := s.HeadView().AttrEpoch(); got != 2 {
		t.Fatalf("attr epoch after later edge delta = %d, want 2", got)
	}
}

func TestRingEvictionAndLeases(t *testing.T) {
	s := buildStore(3) // retain the last 3 epochs
	if err := s.Lease(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, _, _, _, err := s.Append(Delta{Add: []EdgeOp{{Src: 0, Dst: graph.ID(i % 4), Type: 0, Weight: 1}}}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Head() != 6 || s.Floor() != 4 {
		t.Fatalf("head=%d floor=%d", s.Head(), s.Floor())
	}
	// Unleased epochs behind the floor are gone.
	if _, err := s.At(2); !IsEvicted(err) {
		t.Fatalf("At(2) = %v, want evicted", err)
	}
	// Epoch 0 survives: it was leased before the window moved.
	if _, err := s.At(0); err != nil {
		t.Fatalf("leased epoch 0 evicted: %v", err)
	}
	// Future epochs are rejected distinctly.
	if _, err := s.At(99); err == nil || IsEvicted(err) {
		t.Fatalf("At(99) = %v, want future error", err)
	}
	// Releasing the last lease behind the floor evicts.
	s.Release(0)
	if _, err := s.At(0); !IsEvicted(err) {
		t.Fatalf("At(0) after release = %v, want evicted", err)
	}
	// A live view resolved before eviction keeps working (immutability).
	v, err := s.At(5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, _, _, err := s.Append(Delta{Add: []EdgeOp{{Src: 1, Dst: 2, Type: 0, Weight: 1}}}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.At(5); !IsEvicted(err) {
		t.Fatal("epoch 5 should have fallen out")
	}
	if ns := neighbors(t, v, 0, 0); len(ns) != 2+5 {
		t.Fatalf("stale view sees %d neighbors, want 7 (epoch 5 = base + 5 adds)", len(ns))
	}
}

func TestLeaseOfEvictedEpochFails(t *testing.T) {
	s := buildStore(2)
	for i := 0; i < 4; i++ {
		if _, _, _, _, err := s.Append(Delta{Add: []EdgeOp{{Src: 0, Dst: 1, Type: 0, Weight: 1}}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Lease(1); !IsEvicted(err) {
		t.Fatalf("lease of evicted epoch = %v", err)
	}
	if e := s.LeaseHead(); e != 4 {
		t.Fatalf("LeaseHead = %d", e)
	}
	if s.Leases(4) != 1 {
		t.Fatalf("leases(4) = %d", s.Leases(4))
	}
}

func TestWeightedDrawsAcrossEpochs(t *testing.T) {
	s := buildStore(8)
	rng := sampling.NewRng(7)
	v0 := s.HeadView()
	// Untouched vertex: draws go through the base alias and stay in range.
	for i := 0; i < 100; i++ {
		d := v0.DrawNeighbor(0, 0, rng)
		if d < 0 || d > 1 {
			t.Fatalf("draw %d out of range", d)
		}
	}
	if _, _, _, _, err := s.Append(Delta{Add: []EdgeOp{{Src: 0, Dst: 3, Type: 0, Weight: 100}}}); err != nil {
		t.Fatal(err)
	}
	v1 := s.HeadView()
	// Touched vertex: the overlay scan path dominates toward the heavy edge.
	heavy := 0
	for i := 0; i < 1000; i++ {
		d := v1.DrawNeighbor(0, 0, rng)
		if d < 0 || d > 2 {
			t.Fatalf("draw %d out of range", d)
		}
		if d == 2 {
			heavy++
		}
	}
	if heavy < 900 {
		t.Fatalf("weight-100 edge drawn %d/1000 times", heavy)
	}
	// The old view still draws only among the base edges.
	for i := 0; i < 100; i++ {
		if d := v0.DrawNeighbor(0, 0, rng); d > 1 {
			t.Fatalf("epoch-0 draw reached overlay edge: %d", d)
		}
	}
}

func TestSampleEdgeMatchesEpoch(t *testing.T) {
	s := buildStore(8)
	if _, _, _, _, err := s.Append(Delta{
		Add:    []EdgeOp{{Src: 3, Dst: 0, Type: 0, Weight: 1}},
		Remove: []EdgeOp{{Src: 0, Dst: 1, Type: 0}},
	}); err != nil {
		t.Fatal(err)
	}
	valid := map[[2]graph.ID]bool{
		{0, 2}: true, {1, 2}: true, {2, 3}: true, {3, 0}: true,
	}
	v := s.HeadView()
	rng := sampling.NewRng(3)
	seen := map[[2]graph.ID]int{}
	for i := 0; i < 4000; i++ {
		src, dst, _, ok := v.SampleEdge(0, rng)
		if !ok {
			t.Fatal("no edge drawn")
		}
		if !valid[[2]graph.ID{src, dst}] {
			t.Fatalf("drew edge (%d,%d) not in epoch-1 edge set", src, dst)
		}
		seen[[2]graph.ID{src, dst}]++
	}
	for e := range valid {
		if seen[e] < 4000/4/2 {
			t.Fatalf("edge %v drawn %d times (non-uniform)", e, seen[e])
		}
	}
	// An update confined to another type must not perturb type-0 draws.
	quiet := buildStore(8)
	qrng, prng := sampling.NewRng(11), sampling.NewRng(11)
	if _, _, _, _, err := s.Append(Delta{Add: []EdgeOp{{Src: 0, Dst: 2, Type: 1, Weight: 1}}}); err != nil {
		t.Fatal(err)
	}
	// Replay the same structural delta on the quiet store so both stores
	// have identical type-0 edge sets, but only s has a type-1 overlay.
	if _, _, _, _, err := quiet.Append(Delta{
		Add:    []EdgeOp{{Src: 3, Dst: 0, Type: 0, Weight: 1}},
		Remove: []EdgeOp{{Src: 0, Dst: 1, Type: 0}},
	}); err != nil {
		t.Fatal(err)
	}
	hs, hq := s.HeadView(), quiet.HeadView()
	for i := 0; i < 200; i++ {
		s1, d1, _, _ := hs.SampleEdge(0, prng)
		s2, d2, _, _ := hq.SampleEdge(0, qrng)
		if s1 != s2 || d1 != d2 {
			t.Fatalf("draw %d diverged: (%d,%d) vs (%d,%d)", i, s1, d1, s2, d2)
		}
	}
}

func TestConcurrentAppendAndRead(t *testing.T) {
	s := buildStore(4)
	var writer, readers sync.WaitGroup
	stop := make(chan struct{})
	writer.Add(1)
	go func() {
		defer writer.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			d := Delta{Add: []EdgeOp{{Src: graph.ID(i % 4), Dst: graph.ID((i + 1) % 4), Type: 0, Weight: 1}}}
			if i%3 == 0 {
				d.Remove = []EdgeOp{{Src: graph.ID(i % 4), Dst: graph.ID((i + 1) % 4), Type: 0}}
			}
			if i%5 == 0 {
				d.SetAttr = []AttrOp{{V: graph.ID(i % 4), Attr: []float64{float64(i)}}}
			}
			if _, _, _, _, err := s.Append(d); err != nil {
				t.Errorf("append: %v", err)
				return
			}
		}
	}()
	for w := 0; w < 4; w++ {
		readers.Add(1)
		go func(seed uint64) {
			defer readers.Done()
			rng := sampling.NewRng(seed)
			for i := 0; i < 2000; i++ {
				e := s.LeaseHead()
				v, err := s.At(e)
				if err != nil {
					t.Errorf("At(leased %d): %v", e, err)
					s.Release(e)
					return
				}
				count := v.EdgeCount(0)
				// A view is a snapshot: repeated reads agree with themselves.
				sum := int64(0)
				for _, x := range s.LocalVertices() {
					ns, _, _ := v.Neighbors(x, 0)
					sum += int64(len(ns))
				}
				if sum != count {
					t.Errorf("epoch %d: edge count %d, adjacency sum %d", e, count, sum)
					s.Release(e)
					return
				}
				if count > 0 {
					if _, _, _, ok := v.SampleEdge(0, rng); !ok {
						t.Errorf("epoch %d: no edge drawn with count %d", e, count)
					}
				}
				v.Attr(graph.ID(i % 4))
				s.Release(e)
			}
		}(uint64(w + 1))
	}
	readers.Wait()
	close(stop)
	writer.Wait()
}
