// Package partition implements the four built-in graph partitioning
// strategies of Section 3.2: a METIS-style multilevel partitioner for sparse
// graphs, vertex-cut and edge-cut partitioning for dense graphs, 2-D grid
// partitioning for fixed worker counts, and streaming partitioning for
// frequently updated graphs. Partitioners are plugins: anything satisfying
// VertexPartitioner or EdgePartitioner can be registered with the cluster
// build pipeline (Algorithm 2, lines 1-4).
package partition

import (
	"fmt"

	"repro/internal/graph"
)

// Assignment maps every vertex to one of P workers. Edges live with their
// source vertex, matching the paper's "partitioned by source vertices".
type Assignment struct {
	P  int
	Of []int // vertex -> partition, len = |V|
}

// VertexPartitioner produces a vertex assignment into p parts.
type VertexPartitioner interface {
	Name() string
	Partition(g *graph.Graph, p int) (*Assignment, error)
}

// Part returns the partition of vertex v.
func (a *Assignment) Part(v graph.ID) int { return a.Of[v] }

// Sizes returns the number of vertices in each partition.
func (a *Assignment) Sizes() []int {
	s := make([]int, a.P)
	for _, p := range a.Of {
		s[p]++
	}
	return s
}

// EdgeCut counts edges whose endpoints lie in different partitions; this is
// the objective the partitioners minimize (cross-partition edges force
// remote hops during NEIGHBORHOOD sampling).
func (a *Assignment) EdgeCut(g *graph.Graph) int {
	cut := 0
	for t := 0; t < g.Schema().NumEdgeTypes(); t++ {
		g.EdgesOfType(graph.EdgeType(t), func(src, dst graph.ID, _ float64) bool {
			if a.Of[src] != a.Of[dst] {
				cut++
			}
			return true
		})
	}
	if !g.Directed() {
		cut /= 2
	}
	return cut
}

// CutFraction is EdgeCut normalized by total edge count.
func (a *Assignment) CutFraction(g *graph.Graph) float64 {
	if g.NumEdges() == 0 {
		return 0
	}
	return float64(a.EdgeCut(g)) / float64(g.NumEdges())
}

// Imbalance returns max part size divided by the ideal size n/P; 1.0 is a
// perfect balance.
func (a *Assignment) Imbalance() float64 {
	sizes := a.Sizes()
	max := 0
	for _, s := range sizes {
		if s > max {
			max = s
		}
	}
	ideal := float64(len(a.Of)) / float64(a.P)
	if ideal == 0 {
		return 1
	}
	return float64(max) / ideal
}

func validate(g *graph.Graph, p int) error {
	if p <= 0 {
		return fmt.Errorf("partition: p must be positive, got %d", p)
	}
	if g.NumVertices() == 0 {
		return fmt.Errorf("partition: empty graph")
	}
	return nil
}

// HashPartitioner is the trivial edge-cut baseline: vertices are assigned
// by ID modulo P. It guarantees balance but ignores locality.
type HashPartitioner struct{}

// Name implements VertexPartitioner.
func (HashPartitioner) Name() string { return "hash" }

// Partition implements VertexPartitioner.
func (HashPartitioner) Partition(g *graph.Graph, p int) (*Assignment, error) {
	if err := validate(g, p); err != nil {
		return nil, err
	}
	a := &Assignment{P: p, Of: make([]int, g.NumVertices())}
	for v := 0; v < g.NumVertices(); v++ {
		a.Of[v] = v % p
	}
	return a, nil
}

// ByName returns the built-in vertex partitioner with the given name:
// "metis", "streaming", "hash", or "edgecut".
func ByName(name string) (VertexPartitioner, error) {
	switch name {
	case "metis":
		return Metis{}, nil
	case "streaming":
		return Streaming{}, nil
	case "hash":
		return HashPartitioner{}, nil
	case "edgecut":
		return EdgeCutGreedy{}, nil
	default:
		return nil, fmt.Errorf("partition: unknown partitioner %q", name)
	}
}
