package partition

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// This file implements the two edge-placement partitioners of Section 3.2:
// PowerGraph-style vertex-cut (greedy edge placement that minimizes vertex
// replication) and 2-D grid partitioning (used when the number of workers is
// fixed, e.g. a sqrt(p) x sqrt(p) grid).

// EdgeAssignment places every edge on a worker; vertices are replicated on
// every worker holding one of their edges.
type EdgeAssignment struct {
	P      int
	Of     []int // edge index (in visit order) -> partition
	n      int
	placed []map[int]struct{} // vertex -> set of partitions holding it
}

// ReplicationFactor is the average number of copies per vertex, the
// vertex-cut quality metric from the PowerGraph paper.
func (ea *EdgeAssignment) ReplicationFactor() float64 {
	total, cnt := 0, 0
	for _, s := range ea.placed {
		if len(s) > 0 {
			total += len(s)
			cnt++
		}
	}
	if cnt == 0 {
		return 0
	}
	return float64(total) / float64(cnt)
}

// Sizes returns the number of edges per partition.
func (ea *EdgeAssignment) Sizes() []int {
	s := make([]int, ea.P)
	for _, p := range ea.Of {
		s[p]++
	}
	return s
}

// EdgePartitioner assigns edges (rather than vertices) to p workers.
type EdgePartitioner interface {
	Name() string
	PartitionEdges(g *graph.Graph, p int) (*EdgeAssignment, error)
}

// VertexCut implements PowerGraph's greedy vertex-cut heuristic: place each
// edge on a worker already holding one (ideally both) of its endpoints,
// breaking ties toward the least-loaded worker.
type VertexCut struct{}

// Name implements EdgePartitioner.
func (VertexCut) Name() string { return "vertexcut" }

// PartitionEdges implements EdgePartitioner.
func (VertexCut) PartitionEdges(g *graph.Graph, p int) (*EdgeAssignment, error) {
	if err := validate(g, p); err != nil {
		return nil, err
	}
	ea := &EdgeAssignment{P: p, n: g.NumVertices(), placed: make([]map[int]struct{}, g.NumVertices())}
	for i := range ea.placed {
		ea.placed[i] = make(map[int]struct{})
	}
	load := make([]int, p)

	place := func(src, dst graph.ID) {
		su, sv := ea.placed[src], ea.placed[dst]
		var best, bestScore = -1, math.Inf(-1)
		for q := 0; q < p; q++ {
			score := 0.0
			if _, ok := su[q]; ok {
				score += 1
			}
			if _, ok := sv[q]; ok {
				score += 1
			}
			score -= float64(load[q]) * 1e-6 // least-loaded tie break
			if score > bestScore {
				best, bestScore = q, score
			}
		}
		ea.Of = append(ea.Of, best)
		load[best]++
		su[best] = struct{}{}
		sv[best] = struct{}{}
	}

	for t := 0; t < g.Schema().NumEdgeTypes(); t++ {
		g.EdgesOfType(graph.EdgeType(t), func(src, dst graph.ID, _ float64) bool {
			if !g.Directed() && src > dst {
				return true
			}
			place(src, dst)
			return true
		})
	}
	return ea, nil
}

// Grid2D implements 2-D partitioning: workers form an r x c grid with
// r*c = p; edge (u,v) goes to worker (row(u), col(v)). Each vertex is then
// replicated on at most r+c-1 workers regardless of degree, which is why
// 2-D partitioning is preferred when p is fixed.
type Grid2D struct{}

// Name implements EdgePartitioner.
func (Grid2D) Name() string { return "2d" }

// gridShape factors p into the most square r x c grid.
func gridShape(p int) (r, c int) {
	r = int(math.Sqrt(float64(p)))
	for r > 1 && p%r != 0 {
		r--
	}
	return r, p / r
}

// PartitionEdges implements EdgePartitioner.
func (Grid2D) PartitionEdges(g *graph.Graph, p int) (*EdgeAssignment, error) {
	if err := validate(g, p); err != nil {
		return nil, err
	}
	r, c := gridShape(p)
	if r*c != p {
		return nil, fmt.Errorf("partition: cannot form grid from p=%d", p)
	}
	ea := &EdgeAssignment{P: p, n: g.NumVertices(), placed: make([]map[int]struct{}, g.NumVertices())}
	for i := range ea.placed {
		ea.placed[i] = make(map[int]struct{})
	}
	for t := 0; t < g.Schema().NumEdgeTypes(); t++ {
		g.EdgesOfType(graph.EdgeType(t), func(src, dst graph.ID, _ float64) bool {
			if !g.Directed() && src > dst {
				return true
			}
			q := int(src)%r*c + int(dst)%c
			ea.Of = append(ea.Of, q)
			ea.placed[src][q] = struct{}{}
			ea.placed[dst][q] = struct{}{}
			return true
		})
	}
	return ea, nil
}
