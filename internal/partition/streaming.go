package partition

import "repro/internal/graph"

// Streaming implements the streaming-style partitioner (Stanton & Kliot):
// vertices arrive one at a time and are placed greedily using the Linear
// Deterministic Greedy (LDG) rule, which scores each partition by the number
// of already-placed neighbors there, discounted by how full the partition
// is. As the paper notes, streaming partitioning suits graphs with frequent
// edge updates because placement needs only local state.
type Streaming struct {
	// Slack is the allowed capacity headroom; partition capacity is
	// (1+Slack)*n/p. Zero means 0.1.
	Slack float64
}

// Name implements VertexPartitioner.
func (Streaming) Name() string { return "streaming" }

// Partition implements VertexPartitioner.
func (s Streaming) Partition(g *graph.Graph, p int) (*Assignment, error) {
	if err := validate(g, p); err != nil {
		return nil, err
	}
	slack := s.Slack
	if slack == 0 {
		slack = 0.1
	}
	n := g.NumVertices()
	capacity := (1 + slack) * float64(n) / float64(p)

	part := make([]int, n)
	for i := range part {
		part[i] = -1
	}
	load := make([]int, p)

	for v := 0; v < n; v++ {
		// Count placed neighbors per partition (both directions; arriving
		// vertices see edges to already-placed vertices).
		counts := make([]int, p)
		vid := graph.ID(v)
		for t := 0; t < g.Schema().NumEdgeTypes(); t++ {
			for _, u := range g.OutNeighbors(vid, graph.EdgeType(t)) {
				if part[u] >= 0 {
					counts[part[u]]++
				}
			}
			for _, u := range g.InNeighbors(vid, graph.EdgeType(t)) {
				if part[u] >= 0 {
					counts[part[u]]++
				}
			}
		}
		best, bestScore := 0, -1.0
		for q := 0; q < p; q++ {
			penalty := 1 - float64(load[q])/capacity
			if penalty < 0 {
				penalty = 0
			}
			score := float64(counts[q]) * penalty
			// Tie-break toward the least-loaded partition so attribute-less
			// prefixes spread out.
			if score > bestScore || (score == bestScore && load[q] < load[best]) {
				best, bestScore = q, score
			}
		}
		part[v] = best
		load[best]++
	}
	return &Assignment{P: p, Of: part}, nil
}

// EdgeCutGreedy is a one-pass greedy edge-cut partitioner for dense graphs:
// like Streaming but with no capacity discounting until a hard cap, placing
// each vertex with the plurality of its neighbors. The paper groups
// vertex-cut and edge-cut partitioning as the dense-graph option.
type EdgeCutGreedy struct{}

// Name implements VertexPartitioner.
func (EdgeCutGreedy) Name() string { return "edgecut" }

// Partition implements VertexPartitioner.
func (EdgeCutGreedy) Partition(g *graph.Graph, p int) (*Assignment, error) {
	if err := validate(g, p); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	hardCap := int(1.25*float64(n)/float64(p)) + 1
	part := make([]int, n)
	for i := range part {
		part[i] = -1
	}
	load := make([]int, p)
	for v := 0; v < n; v++ {
		counts := make([]int, p)
		vid := graph.ID(v)
		for t := 0; t < g.Schema().NumEdgeTypes(); t++ {
			for _, u := range g.OutNeighbors(vid, graph.EdgeType(t)) {
				if part[u] >= 0 {
					counts[part[u]]++
				}
			}
			for _, u := range g.InNeighbors(vid, graph.EdgeType(t)) {
				if part[u] >= 0 {
					counts[part[u]]++
				}
			}
		}
		best, bestCnt := -1, -1
		for q := 0; q < p; q++ {
			if load[q] >= hardCap {
				continue
			}
			if counts[q] > bestCnt || (counts[q] == bestCnt && load[q] < load[best]) {
				best, bestCnt = q, counts[q]
			}
		}
		if best < 0 { // all full (cannot happen with cap > n/p, but be safe)
			best = v % p
		}
		part[v] = best
		load[best]++
	}
	return &Assignment{P: p, Of: part}, nil
}
