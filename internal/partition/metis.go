package partition

import (
	"sort"

	"repro/internal/graph"
)

// Metis is a METIS-style multilevel partitioner: the graph is coarsened by
// repeated heavy-edge matching, the coarsest graph is partitioned by greedy
// region growing, and the partition is projected back with boundary
// refinement at each level. As in the paper's recommendation it is the best
// choice for sparse graphs.
type Metis struct {
	// MaxCoarseVertices stops coarsening once the graph is this small;
	// zero means 8*p.
	MaxCoarseVertices int
}

// Name implements VertexPartitioner.
func (Metis) Name() string { return "metis" }

// coarseGraph is an intermediate weighted graph in the multilevel hierarchy.
type coarseGraph struct {
	n      int
	vw     []int             // vertex weights (number of original vertices)
	adj    []map[int]float64 // adjacency with accumulated edge weights
	parent []int             // fine vertex -> coarse vertex (in the *finer* graph)
}

func buildCoarse(g *graph.Graph) *coarseGraph {
	n := g.NumVertices()
	cg := &coarseGraph{n: n, vw: make([]int, n), adj: make([]map[int]float64, n)}
	for v := 0; v < n; v++ {
		cg.vw[v] = 1
		cg.adj[v] = make(map[int]float64)
	}
	for t := 0; t < g.Schema().NumEdgeTypes(); t++ {
		g.EdgesOfType(graph.EdgeType(t), func(src, dst graph.ID, w float64) bool {
			if src == dst {
				return true
			}
			cg.adj[src][int(dst)] += w
			cg.adj[dst][int(src)] += w
			return true
		})
	}
	return cg
}

// coarsen performs one level of heavy-edge matching.
func (cg *coarseGraph) coarsen() *coarseGraph {
	match := make([]int, cg.n)
	for i := range match {
		match[i] = -1
	}
	// Visit vertices in increasing degree order (small-degree first gives
	// better matchings on power-law graphs).
	order := make([]int, cg.n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return len(cg.adj[order[a]]) < len(cg.adj[order[b]]) })

	for _, v := range order {
		if match[v] != -1 {
			continue
		}
		best, bestW := -1, -1.0
		for u, w := range cg.adj[v] {
			if match[u] == -1 && w > bestW {
				best, bestW = u, w
			}
		}
		if best == -1 {
			match[v] = v
		} else {
			match[v] = best
			match[best] = v
		}
	}

	// Number coarse vertices.
	coarseID := make([]int, cg.n)
	for i := range coarseID {
		coarseID[i] = -1
	}
	next := 0
	for v := 0; v < cg.n; v++ {
		if coarseID[v] != -1 {
			continue
		}
		coarseID[v] = next
		if match[v] != v {
			coarseID[match[v]] = next
		}
		next = next + 1
	}

	out := &coarseGraph{
		n:      next,
		vw:     make([]int, next),
		adj:    make([]map[int]float64, next),
		parent: coarseID,
	}
	for i := 0; i < next; i++ {
		out.adj[i] = make(map[int]float64)
	}
	for v := 0; v < cg.n; v++ {
		out.vw[coarseID[v]] += cg.vw[v]
		for u, w := range cg.adj[v] {
			cu, cv := coarseID[u], coarseID[v]
			if cu != cv {
				out.adj[cv][cu] += w
			}
		}
	}
	return out
}

// initialPartition grows p regions greedily from seed vertices, weighting by
// vertex weight to balance original-vertex counts.
func (cg *coarseGraph) initialPartition(p int) []int {
	part := make([]int, cg.n)
	for i := range part {
		part[i] = -1
	}
	total := 0
	for _, w := range cg.vw {
		total += w
	}
	target := (total + p - 1) / p

	// Seeds: spread across the degree-sorted order.
	order := make([]int, cg.n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return len(cg.adj[order[a]]) > len(cg.adj[order[b]]) })

	load := make([]int, p)
	cur := 0
	var frontier []int
	assign := func(v, pt int) {
		part[v] = pt
		load[pt] += cg.vw[v]
		frontier = append(frontier, v)
	}
	for _, seed := range order {
		if part[seed] != -1 {
			continue
		}
		if cur >= p {
			cur = 0 // wrap: remaining components go to least-loaded region
			least := 0
			for i := 1; i < p; i++ {
				if load[i] < load[least] {
					least = i
				}
			}
			cur = least
		}
		frontier = frontier[:0]
		assign(seed, cur)
		for len(frontier) > 0 && load[cur] < target {
			v := frontier[0]
			frontier = frontier[1:]
			for u := range cg.adj[v] {
				if part[u] == -1 && load[cur] < target {
					assign(u, cur)
				}
			}
		}
		if cur < p {
			cur++
		}
	}
	// Any leftovers go to the least loaded part.
	for v := 0; v < cg.n; v++ {
		if part[v] == -1 {
			least := 0
			for i := 1; i < p; i++ {
				if load[i] < load[least] {
					least = i
				}
			}
			part[v] = least
			load[least] += cg.vw[v]
		}
	}
	return part
}

// refine performs greedy boundary refinement: move a vertex to the
// neighboring partition with the highest gain if it does not worsen balance.
func (cg *coarseGraph) refine(part []int, p int, passes int) {
	load := make([]int, p)
	for v := 0; v < cg.n; v++ {
		load[part[v]] += cg.vw[v]
	}
	total := 0
	for _, w := range cg.vw {
		total += w
	}
	maxLoad := int(1.1*float64(total)/float64(p)) + 1

	for pass := 0; pass < passes; pass++ {
		moved := 0
		for v := 0; v < cg.n; v++ {
			cur := part[v]
			// Gain of moving v to part q: sum w(v,u in q) - sum w(v,u in cur).
			gain := make(map[int]float64)
			var curW float64
			for u, w := range cg.adj[v] {
				if part[u] == cur {
					curW += w
				} else {
					gain[part[u]] += w
				}
			}
			bestQ, bestG := -1, 0.0
			for q, w := range gain {
				if g := w - curW; g > bestG && load[q]+cg.vw[v] <= maxLoad {
					bestQ, bestG = q, g
				}
			}
			if bestQ >= 0 {
				load[cur] -= cg.vw[v]
				load[bestQ] += cg.vw[v]
				part[v] = bestQ
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
}

// Partition implements VertexPartitioner.
func (m Metis) Partition(g *graph.Graph, p int) (*Assignment, error) {
	if err := validate(g, p); err != nil {
		return nil, err
	}
	if p == 1 {
		return &Assignment{P: 1, Of: make([]int, g.NumVertices())}, nil
	}
	limit := m.MaxCoarseVertices
	if limit <= 0 {
		limit = 8 * p
	}

	levels := []*coarseGraph{buildCoarse(g)}
	for levels[len(levels)-1].n > limit {
		next := levels[len(levels)-1].coarsen()
		if next.n >= levels[len(levels)-1].n {
			break // matching stalled (e.g. star graphs)
		}
		levels = append(levels, next)
	}

	coarsest := levels[len(levels)-1]
	part := coarsest.initialPartition(p)
	coarsest.refine(part, p, 4)

	// Project back through the hierarchy, refining at each level.
	for li := len(levels) - 1; li >= 1; li-- {
		finer := levels[li-1]
		proj := make([]int, finer.n)
		for v := 0; v < finer.n; v++ {
			proj[v] = part[levels[li].parent[v]]
		}
		part = proj
		finer.refine(part, p, 2)
	}

	return &Assignment{P: p, Of: part}, nil
}
