package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// twoClusters builds a graph with two dense communities joined by one edge;
// a good 2-way partitioner should cut only the bridge.
func twoClusters(size int) *graph.Graph {
	b := graph.NewBuilder(graph.SimpleSchema(), false)
	b.AddVertices(0, 2*size)
	for c := 0; c < 2; c++ {
		base := graph.ID(c * size)
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				b.AddEdge(base+graph.ID(i), base+graph.ID(j), 0, 1)
			}
		}
	}
	b.AddEdge(0, graph.ID(size), 0, 1) // bridge
	return b.Finalize()
}

func randomGraph(seed int64, n, m int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(graph.SimpleSchema(), true)
	b.AddVertices(0, n)
	for i := 0; i < m; i++ {
		b.AddEdge(graph.ID(rng.Intn(n)), graph.ID(rng.Intn(n)), 0, 1)
	}
	return b.Finalize()
}

func TestHashPartitioner(t *testing.T) {
	g := randomGraph(1, 20, 50)
	a, err := HashPartitioner{}.Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	sizes := a.Sizes()
	for _, s := range sizes {
		if s != 5 {
			t.Fatalf("hash sizes = %v", sizes)
		}
	}
	if a.Imbalance() != 1.0 {
		t.Fatalf("imbalance = %f", a.Imbalance())
	}
}

func TestMetisCutsBridgeOnly(t *testing.T) {
	g := twoClusters(12)
	a, err := Metis{}.Partition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cut := a.EdgeCut(g); cut > 3 {
		t.Fatalf("metis cut = %d, want near 1", cut)
	}
	if imb := a.Imbalance(); imb > 1.25 {
		t.Fatalf("metis imbalance = %f", imb)
	}
}

func TestMetisBeatsHashOnClustered(t *testing.T) {
	g := twoClusters(10)
	am, _ := Metis{}.Partition(g, 2)
	ah, _ := HashPartitioner{}.Partition(g, 2)
	if am.EdgeCut(g) >= ah.EdgeCut(g) {
		t.Fatalf("metis cut %d should beat hash cut %d", am.EdgeCut(g), ah.EdgeCut(g))
	}
}

func TestMetisSinglePartition(t *testing.T) {
	g := randomGraph(2, 10, 20)
	a, err := Metis{}.Partition(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.EdgeCut(g) != 0 {
		t.Fatal("p=1 must have zero cut")
	}
}

func TestStreamingLDG(t *testing.T) {
	g := twoClusters(10)
	a, err := Streaming{}.Partition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	ah, _ := HashPartitioner{}.Partition(g, 2)
	if a.EdgeCut(g) >= ah.EdgeCut(g) {
		t.Fatalf("streaming cut %d should beat hash cut %d", a.EdgeCut(g), ah.EdgeCut(g))
	}
	if a.Imbalance() > 1.5 {
		t.Fatalf("streaming imbalance = %f", a.Imbalance())
	}
}

func TestEdgeCutGreedy(t *testing.T) {
	g := twoClusters(8)
	a, err := EdgeCutGreedy{}.Partition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	sizes := a.Sizes()
	if sizes[0]+sizes[1] != g.NumVertices() {
		t.Fatalf("sizes = %v", sizes)
	}
}

func TestVertexCutReplication(t *testing.T) {
	g := randomGraph(3, 50, 400)
	ea, err := VertexCut{}.PartitionEdges(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ea.Of) != 400 {
		t.Fatalf("placed %d edges", len(ea.Of))
	}
	rf := ea.ReplicationFactor()
	if rf < 1.0 || rf > 4.0 {
		t.Fatalf("replication factor = %f", rf)
	}
	// Greedy vertex-cut should replicate less than random edge placement.
	sizes := ea.Sizes()
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != 400 {
		t.Fatalf("edge sizes sum = %d", total)
	}
}

func TestGrid2D(t *testing.T) {
	g := randomGraph(4, 30, 200)
	ea, err := Grid2D{}.PartitionEdges(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ea.Of) != 200 {
		t.Fatalf("placed %d edges", len(ea.Of))
	}
	// 2-D property: every vertex is replicated on at most r+c-1 workers.
	r, c := gridShape(4)
	max := r + c - 1
	for v, s := range ea.placed {
		if len(s) > max {
			t.Fatalf("vertex %d replicated on %d > %d workers", v, len(s), max)
		}
	}
}

func TestGridShape(t *testing.T) {
	cases := []struct{ p, r, c int }{
		{4, 2, 2}, {6, 2, 3}, {9, 3, 3}, {7, 1, 7}, {12, 3, 4},
	}
	for _, tc := range cases {
		r, c := gridShape(tc.p)
		if r != tc.r || c != tc.c {
			t.Fatalf("gridShape(%d) = %d,%d want %d,%d", tc.p, r, c, tc.r, tc.c)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"metis", "streaming", "hash", "edgecut"} {
		p, err := ByName(name)
		if err != nil || p.Name() != name {
			t.Fatalf("ByName(%s) = %v, %v", name, p, err)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Fatal("expected error for unknown partitioner")
	}
}

func TestValidation(t *testing.T) {
	g := randomGraph(5, 5, 5)
	if _, err := (Metis{}).Partition(g, 0); err == nil {
		t.Fatal("p=0 must error")
	}
	empty := graph.NewBuilder(graph.SimpleSchema(), true).Finalize()
	if _, err := (Streaming{}).Partition(empty, 2); err == nil {
		t.Fatal("empty graph must error")
	}
}

// Property: every partitioner assigns every vertex to a valid partition and
// respects reasonable balance.
func TestQuickPartitionersValid(t *testing.T) {
	parts := []VertexPartitioner{HashPartitioner{}, Metis{}, Streaming{}, EdgeCutGreedy{}}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(60)
		g := randomGraph(seed, n, n*3)
		p := 2 + rng.Intn(4)
		for _, pt := range parts {
			a, err := pt.Partition(g, p)
			if err != nil {
				return false
			}
			if len(a.Of) != n {
				return false
			}
			for _, q := range a.Of {
				if q < 0 || q >= p {
					return false
				}
			}
			if a.Imbalance() > 3.0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: cut fraction is within [0,1] and consistent with EdgeCut.
func TestQuickCutFraction(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 20, 60)
		a, err := Metis{}.Partition(g, 3)
		if err != nil {
			return false
		}
		cf := a.CutFraction(g)
		return cf >= 0 && cf <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
