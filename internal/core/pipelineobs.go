package core

import (
	"repro/internal/obs"
)

// Pipeline observability: always-on batch-lifecycle stage timings. Each
// assembled batch contributes one observation per stage it passes through —
// schedule (the scheduler's sequential work: pin, TRAVERSE, negatives, seed
// snapshots), sample (a worker's three NEIGHBORHOOD expansions), prefetch
// (the hop-0 attribute fetch, cluster sources only), and consume (how long
// the trainer held the batch between Next and Recycle). next_wait measures
// how long Next blocked before a batch was ready: near-zero means the
// producers are hiding graph-service latency completely; values tracking the
// sample stage mean the pipeline is producer-bound and Depth/Workers are the
// knobs to turn. parks and replays count fault handling (transient-failure
// backoff sleeps and batch stage re-executions after a park or a lost
// lease). Recording costs a clock read and a few atomic adds per batch —
// nothing on the per-vertex path — and never touches the trainer's random
// streams, so pipelined losses stay bit-identical with instrumentation on.
type pipelineMetrics struct {
	schedule obs.Histogram
	sample   obs.Histogram
	prefetch obs.Histogram
	consume  obs.Histogram
	nextWait obs.Histogram
	parks    obs.Counter
	replays  obs.Counter
}

// RegisterObs names the pipeline's instruments in r under core.pipeline.*:
// per-stage latency histograms, park/replay counters, occupancy gauges for
// the batch ring (ready = assembled batches waiting in order for Next,
// planned = scheduled batches waiting for a worker), and the static
// depth/workers configuration.
func (p *Pipeline) RegisterObs(r *obs.Registry) {
	r.RegisterHistogram("core.pipeline.stage.schedule.latency", &p.met.schedule)
	r.RegisterHistogram("core.pipeline.stage.sample.latency", &p.met.sample)
	r.RegisterHistogram("core.pipeline.stage.prefetch.latency", &p.met.prefetch)
	r.RegisterHistogram("core.pipeline.stage.consume.latency", &p.met.consume)
	r.RegisterHistogram("core.pipeline.next_wait.latency", &p.met.nextWait)
	r.RegisterCounter("core.pipeline.parks", &p.met.parks)
	r.RegisterCounter("core.pipeline.replays", &p.met.replays)
	r.Gauge("core.pipeline.ready", func() int64 { return int64(len(p.out)) })
	r.Gauge("core.pipeline.planned", func() int64 { return int64(len(p.plans)) })
	r.Gauge("core.pipeline.depth", func() int64 { return int64(p.cfg.Depth) })
	r.Gauge("core.pipeline.workers", func() int64 { return int64(p.cfg.Workers) })
}
