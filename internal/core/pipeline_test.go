package core

import (
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/sampling"
)

// newPipelineTestTrainer builds a deterministic trainer over g: all
// randomness descends from seed, so two trainers built with the same
// arguments draw identically.
func newPipelineTestTrainer(g *graph.Graph, seed int64) *LinkTrainer {
	rng := rand.New(rand.NewSource(seed))
	feat := NewTableFeatures("emb", g.NumVertices(), 8, rng)
	enc := newEncoder(g, feat, []int{8, 8}, true, rng)
	cfg := TrainerConfig{EdgeType: 0, HopNums: []int{3, 2}, Batch: 16, NegK: 3, LR: 0.05}
	return NewLinkTrainer(g, enc, cfg, rng)
}

// The prefetching pipeline must be invisible to the optimizer: for a fixed
// seed, every Depth/Workers setting produces the exact loss curve of the
// synchronous depth-0 source, because the scheduler draws all sequential
// randomness in batch order and workers only execute pre-seeded expansions.
func TestPipelineMatchesSyncLossesExactly(t *testing.T) {
	grng := rand.New(rand.NewSource(6))
	g := twoCommunityGraph(20, grng)

	base := newPipelineTestTrainer(g, 42)
	want, err := base.Train(30)
	if err != nil {
		t.Fatal(err)
	}

	for _, cfg := range []PipelineConfig{
		{Depth: 1, Workers: 1},
		{Depth: 4, Workers: 3},
	} {
		tr := newPipelineTestTrainer(g, 42)
		pl := NewPipeline(tr, cfg)
		tr.SetSource(pl)
		got, err := tr.Train(30)
		if cerr := pl.Close(); cerr != nil {
			t.Fatal(cerr)
		}
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("depth=%d workers=%d: step %d loss %g, sync %g",
					cfg.Depth, cfg.Workers, i, got[i], want[i])
			}
		}
	}
}

// Closing the pipeline mid-production must stop every goroutine it started,
// even while workers are busy and buffers are full.
func TestPipelineCloseLeaksNoGoroutines(t *testing.T) {
	grng := rand.New(rand.NewSource(6))
	g := twoCommunityGraph(20, grng)
	before := runtime.NumGoroutine()

	tr := newPipelineTestTrainer(g, 7)
	pl := NewPipeline(tr, PipelineConfig{Depth: 4, Workers: 3})
	tr.SetSource(pl)
	if _, err := tr.Train(3); err != nil {
		t.Fatal(err)
	}
	// Close while the producers are running ahead (buffers full or filling).
	if err := pl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pl.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := pl.Next(); !errors.Is(err, ErrPipelineClosed) {
		t.Fatalf("Next after Close: %v, want ErrPipelineClosed", err)
	}

	// The wg.Wait in Close returns just before the goroutines finish
	// exiting; give the scheduler a moment before counting.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines after Close: %d, before: %d", n, before)
	}
}

// Concurrent producers, a consuming trainer and a racing Close must be
// data-race free (run with -race).
func TestPipelineConcurrentTrainAndClose(t *testing.T) {
	grng := rand.New(rand.NewSource(6))
	g := twoCommunityGraph(20, grng)
	tr := newPipelineTestTrainer(g, 9)
	pl := NewPipeline(tr, PipelineConfig{Depth: 3, Workers: 4})
	tr.SetSource(pl)

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if _, err := tr.StepNext(); err != nil {
				if !errors.Is(err, ErrPipelineClosed) {
					t.Errorf("step: %v", err)
				}
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		time.Sleep(10 * time.Millisecond)
		pl.Close()
	}()
	wg.Wait()
}

// The pipeline's free list is a fixed ring: over a long run it must keep
// recycling the same Depth+Workers+1 MiniBatch values instead of allocating
// fresh ones — the property that carries the PR 1 zero-allocation hot path
// across the goroutine hop.
func TestPipelineRecyclesBatches(t *testing.T) {
	grng := rand.New(rand.NewSource(6))
	g := twoCommunityGraph(20, grng)
	tr := newPipelineTestTrainer(g, 11)
	cfg := PipelineConfig{Depth: 3, Workers: 2}
	pl := NewPipeline(tr, cfg)
	defer pl.Close()

	seen := make(map[*MiniBatch]struct{})
	for i := 0; i < 60; i++ {
		mb, err := pl.Next()
		if err != nil {
			t.Fatal(err)
		}
		seen[mb] = struct{}{}
		pl.Recycle(mb)
		pl.Recycle(mb)           // double recycle must be rejected, not enqueued twice
		pl.Recycle(&MiniBatch{}) // foreign batch must not enter the ring
	}
	if max := cfg.Depth + cfg.Workers + 1; len(seen) > max {
		t.Fatalf("pipeline circulated %d distinct batches, ring size is %d", len(seen), max)
	}
}

// Warm synchronous batch assembly over a local graph must be allocation
// free: TRAVERSE appends into the recycled edge buffer, NEGATIVE into the
// recycled negatives, and NEIGHBORHOOD reuses the batch's context layers.
func TestSyncSourceSteadyStateAllocs(t *testing.T) {
	grng := rand.New(rand.NewSource(6))
	g := twoCommunityGraph(20, grng)
	tr := newPipelineTestTrainer(g, 13)
	src := NewSyncSource(tr)
	for i := 0; i < 3; i++ { // warm the lazy pools and buffers
		mb, err := src.Next()
		if err != nil {
			t.Fatal(err)
		}
		src.Recycle(mb)
	}
	avg := testing.AllocsPerRun(200, func() {
		mb, err := src.Next()
		if err != nil {
			t.Fatal(err)
		}
		src.Recycle(mb)
	})
	if avg > 0.5 {
		t.Fatalf("steady-state batch assembly allocates %.1f times per batch, want 0", avg)
	}
}

// failEnv wraps a TrainEnv and fails edge sampling after n successes.
type failEnv struct {
	TrainEnv
	left int
}

func (e *failEnv) SampleEdges(t graph.EdgeType, n int) ([]graph.Edge, error) {
	if e.left <= 0 {
		return nil, errors.New("env down")
	}
	e.left--
	return e.TrainEnv.SampleEdges(t, n)
}

// An assembly error must surface from Next in sequence position and stick;
// the pipeline keeps accepting Close afterwards.
func TestPipelineErrorSticky(t *testing.T) {
	grng := rand.New(rand.NewSource(6))
	g := twoCommunityGraph(20, grng)
	tr := newPipelineTestTrainer(g, 17)
	tr.Env = &failEnv{TrainEnv: tr.Env, left: 2}
	pl := NewPipeline(tr, PipelineConfig{Depth: 2, Workers: 2})
	tr.SetSource(pl)
	defer pl.Close()

	steps := 0
	var err error
	for ; steps < 10; steps++ {
		if _, err = tr.StepNext(); err != nil {
			break
		}
	}
	if err == nil || err.Error() != "env down" {
		t.Fatalf("expected env error, got %v after %d steps", err, steps)
	}
	if steps != 2 {
		t.Fatalf("error surfaced after %d steps, want 2 (sequence order)", steps)
	}
	if _, err2 := tr.StepNext(); err2 == nil || err2.Error() != "env down" {
		t.Fatalf("error not sticky: %v", err2)
	}
}

// ContextFn trainers draw from the trainer's rand.Rand at encode time; a
// pipeline would race them, so construction must refuse loudly.
func TestPipelineRejectsContextFn(t *testing.T) {
	grng := rand.New(rand.NewSource(6))
	g := twoCommunityGraph(20, grng)
	tr := newPipelineTestTrainer(g, 23)
	tr.ContextFn = func(vs []graph.ID) (*sampling.Context, error) { return nil, nil }
	defer func() {
		if recover() == nil {
			t.Fatal("NewPipeline accepted a ContextFn trainer")
		}
	}()
	NewPipeline(tr, PipelineConfig{Depth: 1, Workers: 1})
}

// Epoch spans merge TRAVERSE and NEIGHBORHOOD observations; a local graph
// has neither, so sync batches stay unstamped.
func TestLocalBatchesUnstamped(t *testing.T) {
	grng := rand.New(rand.NewSource(6))
	g := twoCommunityGraph(20, grng)
	tr := newPipelineTestTrainer(g, 19)
	src := NewSyncSource(tr)
	mb, err := src.Next()
	if err != nil {
		t.Fatal(err)
	}
	if mb.Epochs.Seen || mb.Epochs.Mixed() {
		t.Fatalf("local batch stamped: %+v", mb.Epochs)
	}
	src.Recycle(mb)
}
